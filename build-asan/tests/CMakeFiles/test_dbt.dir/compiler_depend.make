# Empty compiler generated dependencies file for test_dbt.
# This may be replaced when dependencies are built.
