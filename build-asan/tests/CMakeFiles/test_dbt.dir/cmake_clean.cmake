file(REMOVE_RECURSE
  "CMakeFiles/test_dbt.dir/test_dbt.cc.o"
  "CMakeFiles/test_dbt.dir/test_dbt.cc.o.d"
  "test_dbt"
  "test_dbt.pdb"
  "test_dbt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
