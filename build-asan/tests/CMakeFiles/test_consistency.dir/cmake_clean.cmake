file(REMOVE_RECURSE
  "CMakeFiles/test_consistency.dir/test_consistency.cc.o"
  "CMakeFiles/test_consistency.dir/test_consistency.cc.o.d"
  "test_consistency"
  "test_consistency.pdb"
  "test_consistency[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
