# Empty dependencies file for test_plugins.
# This may be replaced when dependencies are built.
