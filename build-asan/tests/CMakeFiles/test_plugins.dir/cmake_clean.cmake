file(REMOVE_RECURSE
  "CMakeFiles/test_plugins.dir/test_plugins.cc.o"
  "CMakeFiles/test_plugins.dir/test_plugins.cc.o.d"
  "test_plugins"
  "test_plugins.pdb"
  "test_plugins[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
