# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build-asan/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build-asan/tests/test_support[1]_include.cmake")
include("/root/repo/build-asan/tests/test_expr[1]_include.cmake")
include("/root/repo/build-asan/tests/test_simplify[1]_include.cmake")
include("/root/repo/build-asan/tests/test_sat[1]_include.cmake")
include("/root/repo/build-asan/tests/test_solver[1]_include.cmake")
include("/root/repo/build-asan/tests/test_isa[1]_include.cmake")
include("/root/repo/build-asan/tests/test_assembler[1]_include.cmake")
include("/root/repo/build-asan/tests/test_dbt[1]_include.cmake")
include("/root/repo/build-asan/tests/test_engine[1]_include.cmake")
include("/root/repo/build-asan/tests/test_memory[1]_include.cmake")
include("/root/repo/build-asan/tests/test_devices[1]_include.cmake")
include("/root/repo/build-asan/tests/test_guest[1]_include.cmake")
include("/root/repo/build-asan/tests/test_perf[1]_include.cmake")
include("/root/repo/build-asan/tests/test_plugins[1]_include.cmake")
include("/root/repo/build-asan/tests/test_tools[1]_include.cmake")
include("/root/repo/build-asan/tests/test_consistency[1]_include.cmake")
