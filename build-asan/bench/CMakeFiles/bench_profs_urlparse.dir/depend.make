# Empty dependencies file for bench_profs_urlparse.
# This may be replaced when dependencies are built.
