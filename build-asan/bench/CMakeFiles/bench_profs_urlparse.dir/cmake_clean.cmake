file(REMOVE_RECURSE
  "CMakeFiles/bench_profs_urlparse.dir/bench_profs_urlparse.cc.o"
  "CMakeFiles/bench_profs_urlparse.dir/bench_profs_urlparse.cc.o.d"
  "bench_profs_urlparse"
  "bench_profs_urlparse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profs_urlparse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
