file(REMOVE_RECURSE
  "CMakeFiles/bench_simplifier_ablation.dir/bench_simplifier_ablation.cc.o"
  "CMakeFiles/bench_simplifier_ablation.dir/bench_simplifier_ablation.cc.o.d"
  "bench_simplifier_ablation"
  "bench_simplifier_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simplifier_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
