# Empty compiler generated dependencies file for bench_simplifier_ablation.
# This may be replaced when dependencies are built.
