# Empty dependencies file for bench_table4_productivity.
# This may be replaced when dependencies are built.
