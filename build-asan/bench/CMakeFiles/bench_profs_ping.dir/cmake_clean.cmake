file(REMOVE_RECURSE
  "CMakeFiles/bench_profs_ping.dir/bench_profs_ping.cc.o"
  "CMakeFiles/bench_profs_ping.dir/bench_profs_ping.cc.o.d"
  "bench_profs_ping"
  "bench_profs_ping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_profs_ping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
