# Empty dependencies file for bench_profs_ping.
# This may be replaced when dependencies are built.
