# Empty compiler generated dependencies file for bench_table6_fig789_models.
# This may be replaced when dependencies are built.
