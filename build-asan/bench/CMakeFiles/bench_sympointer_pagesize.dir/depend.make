# Empty dependencies file for bench_sympointer_pagesize.
# This may be replaced when dependencies are built.
