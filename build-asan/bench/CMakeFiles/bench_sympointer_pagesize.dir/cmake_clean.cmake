file(REMOVE_RECURSE
  "CMakeFiles/bench_sympointer_pagesize.dir/bench_sympointer_pagesize.cc.o"
  "CMakeFiles/bench_sympointer_pagesize.dir/bench_sympointer_pagesize.cc.o.d"
  "bench_sympointer_pagesize"
  "bench_sympointer_pagesize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sympointer_pagesize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
