file(REMOVE_RECURSE
  "CMakeFiles/bench_ddt_bugs.dir/bench_ddt_bugs.cc.o"
  "CMakeFiles/bench_ddt_bugs.dir/bench_ddt_bugs.cc.o.d"
  "bench_ddt_bugs"
  "bench_ddt_bugs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddt_bugs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
