# Empty dependencies file for bench_ddt_bugs.
# This may be replaced when dependencies are built.
