# Empty compiler generated dependencies file for reverse_engineering.
# This may be replaced when dependencies are built.
