file(REMOVE_RECURSE
  "CMakeFiles/reverse_engineering.dir/reverse_engineering.cpp.o"
  "CMakeFiles/reverse_engineering.dir/reverse_engineering.cpp.o.d"
  "reverse_engineering"
  "reverse_engineering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_engineering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
