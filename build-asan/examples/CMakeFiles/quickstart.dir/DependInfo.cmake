
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/tools/CMakeFiles/s2e_tools.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/plugins/CMakeFiles/s2e_plugins.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/perf/CMakeFiles/s2e_perf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/guest/CMakeFiles/s2e_guest.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/core/CMakeFiles/s2e_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dbt/CMakeFiles/s2e_dbt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/s2e_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/solver/CMakeFiles/s2e_solver.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/expr/CMakeFiles/s2e_expr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/s2e_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/s2e_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
