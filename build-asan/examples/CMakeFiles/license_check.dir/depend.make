# Empty dependencies file for license_check.
# This may be replaced when dependencies are built.
