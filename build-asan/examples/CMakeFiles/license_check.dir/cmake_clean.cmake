file(REMOVE_RECURSE
  "CMakeFiles/license_check.dir/license_check.cpp.o"
  "CMakeFiles/license_check.dir/license_check.cpp.o.d"
  "license_check"
  "license_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/license_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
