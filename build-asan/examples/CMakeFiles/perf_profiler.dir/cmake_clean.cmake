file(REMOVE_RECURSE
  "CMakeFiles/perf_profiler.dir/perf_profiler.cpp.o"
  "CMakeFiles/perf_profiler.dir/perf_profiler.cpp.o.d"
  "perf_profiler"
  "perf_profiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perf_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
