# Empty compiler generated dependencies file for perf_profiler.
# This may be replaced when dependencies are built.
