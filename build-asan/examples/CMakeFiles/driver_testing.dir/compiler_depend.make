# Empty compiler generated dependencies file for driver_testing.
# This may be replaced when dependencies are built.
