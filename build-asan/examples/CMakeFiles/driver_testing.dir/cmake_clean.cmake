file(REMOVE_RECURSE
  "CMakeFiles/driver_testing.dir/driver_testing.cpp.o"
  "CMakeFiles/driver_testing.dir/driver_testing.cpp.o.d"
  "driver_testing"
  "driver_testing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/driver_testing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
