file(REMOVE_RECURSE
  "CMakeFiles/s2e_plugins.dir/annotation.cc.o"
  "CMakeFiles/s2e_plugins.dir/annotation.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/bugcheck.cc.o"
  "CMakeFiles/s2e_plugins.dir/bugcheck.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/codeselector.cc.o"
  "CMakeFiles/s2e_plugins.dir/codeselector.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/coverage.cc.o"
  "CMakeFiles/s2e_plugins.dir/coverage.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/energy.cc.o"
  "CMakeFiles/s2e_plugins.dir/energy.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/memchecker.cc.o"
  "CMakeFiles/s2e_plugins.dir/memchecker.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/pathkiller.cc.o"
  "CMakeFiles/s2e_plugins.dir/pathkiller.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/perfprofile.cc.o"
  "CMakeFiles/s2e_plugins.dir/perfprofile.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/privacy.cc.o"
  "CMakeFiles/s2e_plugins.dir/privacy.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/racedetector.cc.o"
  "CMakeFiles/s2e_plugins.dir/racedetector.cc.o.d"
  "CMakeFiles/s2e_plugins.dir/tracer.cc.o"
  "CMakeFiles/s2e_plugins.dir/tracer.cc.o.d"
  "libs2e_plugins.a"
  "libs2e_plugins.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_plugins.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
