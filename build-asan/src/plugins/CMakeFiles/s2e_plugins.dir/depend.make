# Empty dependencies file for s2e_plugins.
# This may be replaced when dependencies are built.
