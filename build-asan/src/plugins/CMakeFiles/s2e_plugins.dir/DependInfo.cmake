
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plugins/annotation.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/annotation.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/annotation.cc.o.d"
  "/root/repo/src/plugins/bugcheck.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/bugcheck.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/bugcheck.cc.o.d"
  "/root/repo/src/plugins/codeselector.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/codeselector.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/codeselector.cc.o.d"
  "/root/repo/src/plugins/coverage.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/coverage.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/coverage.cc.o.d"
  "/root/repo/src/plugins/energy.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/energy.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/energy.cc.o.d"
  "/root/repo/src/plugins/memchecker.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/memchecker.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/memchecker.cc.o.d"
  "/root/repo/src/plugins/pathkiller.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/pathkiller.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/pathkiller.cc.o.d"
  "/root/repo/src/plugins/perfprofile.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/perfprofile.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/perfprofile.cc.o.d"
  "/root/repo/src/plugins/privacy.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/privacy.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/privacy.cc.o.d"
  "/root/repo/src/plugins/racedetector.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/racedetector.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/racedetector.cc.o.d"
  "/root/repo/src/plugins/tracer.cc" "src/plugins/CMakeFiles/s2e_plugins.dir/tracer.cc.o" "gcc" "src/plugins/CMakeFiles/s2e_plugins.dir/tracer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/core/CMakeFiles/s2e_core.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/perf/CMakeFiles/s2e_perf.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/dbt/CMakeFiles/s2e_dbt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/s2e_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/solver/CMakeFiles/s2e_solver.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/expr/CMakeFiles/s2e_expr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/s2e_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/s2e_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
