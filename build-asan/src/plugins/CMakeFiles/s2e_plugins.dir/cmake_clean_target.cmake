file(REMOVE_RECURSE
  "libs2e_plugins.a"
)
