# Empty compiler generated dependencies file for s2e_perf.
# This may be replaced when dependencies are built.
