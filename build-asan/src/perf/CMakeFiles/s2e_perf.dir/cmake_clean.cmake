file(REMOVE_RECURSE
  "CMakeFiles/s2e_perf.dir/cache.cc.o"
  "CMakeFiles/s2e_perf.dir/cache.cc.o.d"
  "libs2e_perf.a"
  "libs2e_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
