file(REMOVE_RECURSE
  "libs2e_perf.a"
)
