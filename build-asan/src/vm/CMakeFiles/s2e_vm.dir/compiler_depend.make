# Empty compiler generated dependencies file for s2e_vm.
# This may be replaced when dependencies are built.
