file(REMOVE_RECURSE
  "CMakeFiles/s2e_vm.dir/nic.cc.o"
  "CMakeFiles/s2e_vm.dir/nic.cc.o.d"
  "libs2e_vm.a"
  "libs2e_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
