file(REMOVE_RECURSE
  "libs2e_vm.a"
)
