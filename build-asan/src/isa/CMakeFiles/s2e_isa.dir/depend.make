# Empty dependencies file for s2e_isa.
# This may be replaced when dependencies are built.
