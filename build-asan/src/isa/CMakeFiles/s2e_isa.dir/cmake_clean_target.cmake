file(REMOVE_RECURSE
  "libs2e_isa.a"
)
