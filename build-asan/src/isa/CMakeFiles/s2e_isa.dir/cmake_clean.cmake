file(REMOVE_RECURSE
  "CMakeFiles/s2e_isa.dir/assembler.cc.o"
  "CMakeFiles/s2e_isa.dir/assembler.cc.o.d"
  "CMakeFiles/s2e_isa.dir/isa.cc.o"
  "CMakeFiles/s2e_isa.dir/isa.cc.o.d"
  "libs2e_isa.a"
  "libs2e_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
