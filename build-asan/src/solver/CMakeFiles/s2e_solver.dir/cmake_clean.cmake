file(REMOVE_RECURSE
  "CMakeFiles/s2e_solver.dir/bitblast.cc.o"
  "CMakeFiles/s2e_solver.dir/bitblast.cc.o.d"
  "CMakeFiles/s2e_solver.dir/sat.cc.o"
  "CMakeFiles/s2e_solver.dir/sat.cc.o.d"
  "CMakeFiles/s2e_solver.dir/solver.cc.o"
  "CMakeFiles/s2e_solver.dir/solver.cc.o.d"
  "libs2e_solver.a"
  "libs2e_solver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_solver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
