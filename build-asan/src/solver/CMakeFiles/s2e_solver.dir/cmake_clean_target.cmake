file(REMOVE_RECURSE
  "libs2e_solver.a"
)
