# Empty dependencies file for s2e_solver.
# This may be replaced when dependencies are built.
