# Empty dependencies file for s2e_expr.
# This may be replaced when dependencies are built.
