file(REMOVE_RECURSE
  "CMakeFiles/s2e_expr.dir/builder.cc.o"
  "CMakeFiles/s2e_expr.dir/builder.cc.o.d"
  "CMakeFiles/s2e_expr.dir/eval.cc.o"
  "CMakeFiles/s2e_expr.dir/eval.cc.o.d"
  "CMakeFiles/s2e_expr.dir/expr.cc.o"
  "CMakeFiles/s2e_expr.dir/expr.cc.o.d"
  "CMakeFiles/s2e_expr.dir/simplify.cc.o"
  "CMakeFiles/s2e_expr.dir/simplify.cc.o.d"
  "libs2e_expr.a"
  "libs2e_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
