file(REMOVE_RECURSE
  "libs2e_expr.a"
)
