file(REMOVE_RECURSE
  "libs2e_tools.a"
)
