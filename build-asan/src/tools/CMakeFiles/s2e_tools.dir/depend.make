# Empty dependencies file for s2e_tools.
# This may be replaced when dependencies are built.
