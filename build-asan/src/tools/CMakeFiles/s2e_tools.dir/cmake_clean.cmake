file(REMOVE_RECURSE
  "CMakeFiles/s2e_tools.dir/ddt.cc.o"
  "CMakeFiles/s2e_tools.dir/ddt.cc.o.d"
  "CMakeFiles/s2e_tools.dir/modelsweep.cc.o"
  "CMakeFiles/s2e_tools.dir/modelsweep.cc.o.d"
  "CMakeFiles/s2e_tools.dir/profs.cc.o"
  "CMakeFiles/s2e_tools.dir/profs.cc.o.d"
  "CMakeFiles/s2e_tools.dir/rev.cc.o"
  "CMakeFiles/s2e_tools.dir/rev.cc.o.d"
  "libs2e_tools.a"
  "libs2e_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
