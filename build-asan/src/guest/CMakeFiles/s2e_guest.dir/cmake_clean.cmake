file(REMOVE_RECURSE
  "CMakeFiles/s2e_guest.dir/drivers.cc.o"
  "CMakeFiles/s2e_guest.dir/drivers.cc.o.d"
  "CMakeFiles/s2e_guest.dir/kernel.cc.o"
  "CMakeFiles/s2e_guest.dir/kernel.cc.o.d"
  "CMakeFiles/s2e_guest.dir/workloads.cc.o"
  "CMakeFiles/s2e_guest.dir/workloads.cc.o.d"
  "libs2e_guest.a"
  "libs2e_guest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_guest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
