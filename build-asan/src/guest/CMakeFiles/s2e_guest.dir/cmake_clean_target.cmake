file(REMOVE_RECURSE
  "libs2e_guest.a"
)
