# Empty dependencies file for s2e_guest.
# This may be replaced when dependencies are built.
