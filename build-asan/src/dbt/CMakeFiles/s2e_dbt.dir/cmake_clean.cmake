file(REMOVE_RECURSE
  "CMakeFiles/s2e_dbt.dir/fastexec.cc.o"
  "CMakeFiles/s2e_dbt.dir/fastexec.cc.o.d"
  "CMakeFiles/s2e_dbt.dir/ir.cc.o"
  "CMakeFiles/s2e_dbt.dir/ir.cc.o.d"
  "CMakeFiles/s2e_dbt.dir/translator.cc.o"
  "CMakeFiles/s2e_dbt.dir/translator.cc.o.d"
  "libs2e_dbt.a"
  "libs2e_dbt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_dbt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
