file(REMOVE_RECURSE
  "libs2e_dbt.a"
)
