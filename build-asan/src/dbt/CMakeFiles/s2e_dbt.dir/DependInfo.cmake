
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dbt/fastexec.cc" "src/dbt/CMakeFiles/s2e_dbt.dir/fastexec.cc.o" "gcc" "src/dbt/CMakeFiles/s2e_dbt.dir/fastexec.cc.o.d"
  "/root/repo/src/dbt/ir.cc" "src/dbt/CMakeFiles/s2e_dbt.dir/ir.cc.o" "gcc" "src/dbt/CMakeFiles/s2e_dbt.dir/ir.cc.o.d"
  "/root/repo/src/dbt/translator.cc" "src/dbt/CMakeFiles/s2e_dbt.dir/translator.cc.o" "gcc" "src/dbt/CMakeFiles/s2e_dbt.dir/translator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/isa/CMakeFiles/s2e_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/s2e_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
