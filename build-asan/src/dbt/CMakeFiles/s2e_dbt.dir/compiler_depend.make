# Empty compiler generated dependencies file for s2e_dbt.
# This may be replaced when dependencies are built.
