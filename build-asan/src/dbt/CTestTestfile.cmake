# CMake generated Testfile for 
# Source directory: /root/repo/src/dbt
# Build directory: /root/repo/build-asan/src/dbt
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
