file(REMOVE_RECURSE
  "CMakeFiles/s2e_support.dir/logging.cc.o"
  "CMakeFiles/s2e_support.dir/logging.cc.o.d"
  "CMakeFiles/s2e_support.dir/stats.cc.o"
  "CMakeFiles/s2e_support.dir/stats.cc.o.d"
  "libs2e_support.a"
  "libs2e_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
