file(REMOVE_RECURSE
  "libs2e_support.a"
)
