# Empty dependencies file for s2e_support.
# This may be replaced when dependencies are built.
