# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-asan/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("expr")
subdirs("solver")
subdirs("isa")
subdirs("vm")
subdirs("dbt")
subdirs("perf")
subdirs("core")
subdirs("plugins")
subdirs("guest")
subdirs("tools")
