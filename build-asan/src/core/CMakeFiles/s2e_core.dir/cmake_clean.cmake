file(REMOVE_RECURSE
  "CMakeFiles/s2e_core.dir/consistency.cc.o"
  "CMakeFiles/s2e_core.dir/consistency.cc.o.d"
  "CMakeFiles/s2e_core.dir/engine.cc.o"
  "CMakeFiles/s2e_core.dir/engine.cc.o.d"
  "CMakeFiles/s2e_core.dir/memory.cc.o"
  "CMakeFiles/s2e_core.dir/memory.cc.o.d"
  "CMakeFiles/s2e_core.dir/state.cc.o"
  "CMakeFiles/s2e_core.dir/state.cc.o.d"
  "libs2e_core.a"
  "libs2e_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/s2e_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
