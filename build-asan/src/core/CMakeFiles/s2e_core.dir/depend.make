# Empty dependencies file for s2e_core.
# This may be replaced when dependencies are built.
