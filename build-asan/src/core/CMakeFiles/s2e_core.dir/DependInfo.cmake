
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/consistency.cc" "src/core/CMakeFiles/s2e_core.dir/consistency.cc.o" "gcc" "src/core/CMakeFiles/s2e_core.dir/consistency.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/core/CMakeFiles/s2e_core.dir/engine.cc.o" "gcc" "src/core/CMakeFiles/s2e_core.dir/engine.cc.o.d"
  "/root/repo/src/core/memory.cc" "src/core/CMakeFiles/s2e_core.dir/memory.cc.o" "gcc" "src/core/CMakeFiles/s2e_core.dir/memory.cc.o.d"
  "/root/repo/src/core/state.cc" "src/core/CMakeFiles/s2e_core.dir/state.cc.o" "gcc" "src/core/CMakeFiles/s2e_core.dir/state.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-asan/src/dbt/CMakeFiles/s2e_dbt.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/vm/CMakeFiles/s2e_vm.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/solver/CMakeFiles/s2e_solver.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/expr/CMakeFiles/s2e_expr.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/isa/CMakeFiles/s2e_isa.dir/DependInfo.cmake"
  "/root/repo/build-asan/src/support/CMakeFiles/s2e_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
