src/core/CMakeFiles/s2e_core.dir/consistency.cc.o: \
 /root/repo/src/core/consistency.cc /usr/include/stdc-predef.h \
 /root/repo/src/core/consistency.hh
