file(REMOVE_RECURSE
  "libs2e_core.a"
)
