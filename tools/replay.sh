#!/bin/sh
# One-shot witness replay: build the replay_witness CLI and replay a
# recorded `s2e.witness.v1` file purely concretely (solver
# disconnected), printing the verdict — recorded terminal reached, or
# the first mismatching nondeterminism site.
#
# Usage: tools/replay.sh WITNESS_FILE [WORKLOAD] [DRIVER] [build-dir]
#   WITNESS_FILE: a file produced by EngineConfig::witnessDir (e.g.
#                 via `replay_witness record DIR WORKLOAD`).
#   WORKLOAD:     license | ddt | rev (default: ddt) — must match the
#                 workload that recorded the witness.
#   DRIVER:       dma | pio | mmio | ring (default: dma; ddt/rev only).
#   build-dir:    existing cmake build (default: build); configured
#                 and built here if missing.
#
# Exit status: 0 replay reached the recorded terminal, 1 divergence,
# 2 unusable input (unreadable/corrupt witness, bad arguments).
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
witness=${1:?usage: tools/replay.sh WITNESS_FILE [WORKLOAD] [DRIVER] [build-dir]}
workload=${2:-ddt}
driver=${3:-dma}
build_dir=${4:-"$repo_root/build"}
jobs=$(nproc 2>/dev/null || echo 2)

if [ ! -f "$witness" ]; then
    echo "replay.sh: no such witness file: $witness" >&2
    exit 2
fi

if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -B "$build_dir" -S "$repo_root" || exit 2
fi
cmake --build "$build_dir" -j "$jobs" --target replay_witness || exit 2

exec "$build_dir/examples/replay_witness" replay "$witness" \
    "$workload" "$driver"
