#!/bin/sh
# Run the differential suites that guard the exploration core in all
# three configurations:
#   1. the default build       — `ctest -L parallel` (serial-vs-parallel),
#                                `ctest -L solver` (incremental-vs-fresh
#                                solver contexts) and `ctest -L lifecycle`
#                                (spill/merge-vs-all-resident state
#                                lifecycle)
#   2. an AddressSanitizer build — `ctest -L sanitize` under build-asan/
#                                (solver + engine resilience paths and the
#                                lifecycle suite's exactly-once resource
#                                release: solver contexts and spill files)
#   3. a ThreadSanitizer build — `ctest -L tsan` under build-tsan/
#                                (parallel, incremental and lifecycle
#                                suites all carry the tsan label)
# All must pass with zero divergences before a change to the
# exploration core, the solver pipeline or the state lifecycle lands.
#
# Usage: tools/run_checks.sh [build-dir] [tsan-build-dir] [asan-build-dir]
#   build-dir:      existing default-config build (default: build);
#                   configured+built here if missing.
#   tsan-build-dir: the -DS2E_SANITIZE=thread build (default:
#                   build-tsan); configured+built here if missing.
#   asan-build-dir: the -DS2E_SANITIZE=address build (default:
#                   build-asan); configured+built here if missing.
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
tsan_dir=${2:-"$repo_root/build-tsan"}
asan_dir=${3:-"$repo_root/build-asan"}
jobs=$(nproc 2>/dev/null || echo 2)

check_targets="test_parallel test_incremental test_lifecycle"

status=0

echo "== run_checks: default configuration ($build_dir) =="
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -B "$build_dir" -S "$repo_root" || exit 1
fi
cmake --build "$build_dir" -j "$jobs" \
    --target $check_targets || exit 1
(cd "$build_dir" && ctest -L parallel --output-on-failure) || status=1
(cd "$build_dir" && ctest -L solver --output-on-failure) || status=1
(cd "$build_dir" && ctest -L lifecycle --output-on-failure) || status=1

echo "== run_checks: AddressSanitizer configuration ($asan_dir) =="
if [ ! -f "$asan_dir/CMakeCache.txt" ]; then
    cmake -B "$asan_dir" -S "$repo_root" -DS2E_SANITIZE=address || exit 1
fi
cmake --build "$asan_dir" -j "$jobs" \
    --target test_sat test_solver test_engine test_lifecycle || exit 1
(cd "$asan_dir" && ctest -L sanitize --output-on-failure) || status=1
(cd "$asan_dir" && ctest -L lifecycle --output-on-failure) || status=1

echo "== run_checks: ThreadSanitizer configuration ($tsan_dir) =="
if [ ! -f "$tsan_dir/CMakeCache.txt" ]; then
    cmake -B "$tsan_dir" -S "$repo_root" -DS2E_SANITIZE=thread || exit 1
fi
cmake --build "$tsan_dir" -j "$jobs" \
    --target $check_targets || exit 1
(cd "$tsan_dir" && ctest -L tsan --output-on-failure) || status=1
(cd "$tsan_dir" && ctest -L lifecycle --output-on-failure) || status=1

if [ "$status" -eq 0 ]; then
    echo "run_checks: all differential checks passed"
else
    echo "run_checks: FAILURES above" >&2
fi
exit $status
