#!/bin/sh
# Run the differential suites that guard the exploration core in all
# three configurations:
#   1. the default build       — `ctest -L parallel` (serial-vs-parallel),
#                                `ctest -L solver` (incremental-vs-fresh
#                                solver contexts), `ctest -L lifecycle`
#                                (spill/merge-vs-all-resident state
#                                lifecycle), `ctest -L absint` (static
#                                value analysis vs the solver oracle) and
#                                `ctest -L replay` (record/replay witness
#                                oracle: solver-free replay differentials)
#                                and `ctest -L fiber` (fiber scheduler:
#                                park/resume units, WorkQueue idle-wait,
#                                solver-service batching and the
#                                serial-vs-fiber engine differential)
#   2. an AddressSanitizer build — `ctest -L sanitize` under build-asan/
#                                (solver + engine resilience paths and the
#                                lifecycle suite's exactly-once resource
#                                release: solver contexts and spill files)
#                                plus `ctest -L replay` there
#   3. a ThreadSanitizer build — `ctest -L tsan` under build-tsan/
#                                (parallel, incremental and lifecycle
#                                suites all carry the tsan label)
# Also gates clang-tidy (zero warnings over src/expr and src/solver,
# skipped when clang-tidy is not installed) and diffs a fresh
# bench_fork_storm report against the committed baseline: missing
# metric keys (a counter that stopped being emitted) fail hard;
# magnitude regressions stay advisory.
# All must pass with zero divergences before a change to the
# exploration core, the solver pipeline or the state lifecycle lands.
#
# Usage: tools/run_checks.sh [build-dir] [tsan-build-dir] [asan-build-dir]
#   build-dir:      existing default-config build (default: build);
#                   configured+built here if missing.
#   tsan-build-dir: the -DS2E_SANITIZE=thread build (default:
#                   build-tsan); configured+built here if missing.
#   asan-build-dir: the -DS2E_SANITIZE=address build (default:
#                   build-asan); configured+built here if missing.
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
tsan_dir=${2:-"$repo_root/build-tsan"}
asan_dir=${3:-"$repo_root/build-asan"}
jobs=$(nproc 2>/dev/null || echo 2)

check_targets="test_parallel test_incremental test_lifecycle test_absint \
test_replay test_fiber"

status=0

echo "== run_checks: default configuration ($build_dir) =="
if [ ! -f "$build_dir/CMakeCache.txt" ]; then
    cmake -B "$build_dir" -S "$repo_root" || exit 1
fi
cmake --build "$build_dir" -j "$jobs" \
    --target $check_targets || exit 1
(cd "$build_dir" && ctest -L parallel --output-on-failure) || status=1
(cd "$build_dir" && ctest -L solver --output-on-failure) || status=1
(cd "$build_dir" && ctest -L lifecycle --output-on-failure) || status=1
(cd "$build_dir" && ctest -L absint --output-on-failure) || status=1
(cd "$build_dir" && ctest -L replay --output-on-failure) || status=1
(cd "$build_dir" && ctest -L fiber --output-on-failure) || status=1

echo "== run_checks: clang-tidy gate (src/expr, src/solver) =="
# Zero-warning gate over the expression and solver layers (the static
# value analysis lives there); skips cleanly when clang-tidy is absent.
"$repo_root/tools/run_tidy.sh" "$build_dir" src/expr src/solver \
    -- --warnings-as-errors='*' || status=1

echo "== run_checks: AddressSanitizer configuration ($asan_dir) =="
if [ ! -f "$asan_dir/CMakeCache.txt" ]; then
    cmake -B "$asan_dir" -S "$repo_root" -DS2E_SANITIZE=address || exit 1
fi
cmake --build "$asan_dir" -j "$jobs" \
    --target test_sat test_solver test_engine test_lifecycle \
    test_replay test_fiber || exit 1
(cd "$asan_dir" && ctest -L sanitize --output-on-failure) || status=1
(cd "$asan_dir" && ctest -L lifecycle --output-on-failure) || status=1
(cd "$asan_dir" && ctest -L replay --output-on-failure) || status=1
(cd "$asan_dir" && ctest -L fiber --output-on-failure) || status=1

echo "== run_checks: ThreadSanitizer configuration ($tsan_dir) =="
if [ ! -f "$tsan_dir/CMakeCache.txt" ]; then
    cmake -B "$tsan_dir" -S "$repo_root" -DS2E_SANITIZE=thread || exit 1
fi
cmake --build "$tsan_dir" -j "$jobs" \
    --target $check_targets || exit 1
(cd "$tsan_dir" && ctest -L tsan --output-on-failure) || status=1
(cd "$tsan_dir" && ctest -L lifecycle --output-on-failure) || status=1

# Bench diff: regenerate each benched report and compare it against
# its committed baseline. Metric *presence* is a hard gate — a counter
# gone from the fresh report (bench_diff exit 2) means someone broke
# the metric wiring (this covers the fiber scheduler's overlap and
# utilization metrics too). Magnitude regressions (exit 1) stay
# advisory: wall-clock metrics are noisy on shared machines.
if command -v python3 >/dev/null 2>&1; then
    for bench in bench_fork_storm bench_fig6_coverage_time; do
        baseline="$repo_root/BENCH_${bench#bench_}.json"
        [ -f "$baseline" ] || continue
        echo "== run_checks: $bench diff vs committed baseline =="
        if cmake --build "$build_dir" -j "$jobs" \
                 --target "$bench" >/dev/null 2>&1; then
            bench_tmp=$(mktemp -d)
            if (cd "$bench_tmp" &&
                    "$build_dir/bench/$bench" >/dev/null 2>&1); then
                python3 "$repo_root/tools/bench_diff.py" \
                    "$baseline" \
                    "$bench_tmp/$(basename "$baseline")"
                diff_rc=$?
                if [ "$diff_rc" -ge 2 ]; then
                    echo "run_checks: $bench metric keys missing vs" \
                         "baseline — HARD FAILURE" >&2
                    status=1
                elif [ "$diff_rc" -ne 0 ]; then
                    echo "run_checks: $bench magnitude regressions" \
                         "above are ADVISORY"
                fi
            else
                echo "run_checks: $bench run failed; diff skipped"
            fi
            rm -rf "$bench_tmp"
        else
            echo "run_checks: $bench build failed; diff skipped"
        fi
    done
fi

if [ "$status" -eq 0 ]; then
    echo "run_checks: all differential checks passed"
else
    echo "run_checks: FAILURES above" >&2
fi
exit $status
