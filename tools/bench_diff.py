#!/usr/bin/env python3
"""Diff two s2e.run_report.v1 bench JSON files and flag regressions.

Compares the flat ``metrics`` map (plus top-level ``wall_seconds``) of
a freshly generated report against a committed baseline. Every metric
is classified by name into lower-is-better (times, byte counts,
failure/overhead counters), higher-is-better (rates, utilizations,
reduction factors, boolean ``_ok``/``_match`` gates) or
direction-unknown; a change past the threshold in the *bad* direction
is a regression. Direction-unknown metrics are reported but never
flagged.

Exit status:
    0  no regression exceeds the threshold
    1  magnitude regressions only (run_checks.sh treats these as
       advisory — wall-clock metrics are noisy on shared machines)
    2  schema/presence failure: a report is unreadable or not an
       s2e.run_report.v1, or a baseline metric is GONE from the fresh
       report. A counter that stopped being emitted is a wiring bug,
       not noise, so run_checks.sh gates on this hard.

Usage:
    tools/bench_diff.py BASELINE.json FRESH.json [--threshold 0.10]
"""

import argparse
import json
import sys

# Substring rules, first match wins. Wall-clock metrics are inherently
# noisy on shared machines — that is what the threshold is for.
LOWER_IS_BETTER = (
    "_seconds",
    "_micros",
    "_bytes",
    "overhead",
    "failures",
    "failure",
    "dropped",
    "retries",
    "disagreements",
    "unknown",
    "timeouts",
    "conflicts",
    "queries",
    "footprint",
)
HIGHER_IS_BETTER = (
    "_per_sec",
    "utilization",
    "reduction",
    "_match",
    "_ok",
    "_exact",
    "accounted",
    "absorbed",
    "prunes",
    "prune_rate",
    "paths",
    "coverage",
)


def direction(name):
    """-1 = lower is better, +1 = higher is better, 0 = unknown."""
    low = name.lower()
    for pat in LOWER_IS_BETTER:
        if pat in low:
            return -1
    for pat in HIGHER_IS_BETTER:
        if pat in low:
            return 1
    return 0


def load_metrics(path):
    try:
        with open(path) as f:
            report = json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_diff: {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if report.get("schema") != "s2e.run_report.v1":
        print(f"bench_diff: {path}: not an s2e.run_report.v1 report",
              file=sys.stderr)
        sys.exit(2)
    metrics = dict(report.get("metrics") or {})
    if "wall_seconds" in report:
        metrics["wall_seconds"] = report["wall_seconds"]
    return report.get("name", "?"), metrics


def main():
    ap = argparse.ArgumentParser(
        description="diff bench reports against a committed baseline")
    ap.add_argument("baseline")
    ap.add_argument("fresh")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="relative change that counts as a regression "
                         "(default 0.10 = 10%%)")
    args = ap.parse_args()

    base_name, base = load_metrics(args.baseline)
    fresh_name, fresh = load_metrics(args.fresh)
    if base_name != fresh_name:
        print(f"bench_diff: comparing different benches "
              f"({base_name} vs {fresh_name})", file=sys.stderr)

    regressions = []
    gone = []
    rows = []
    for name in sorted(set(base) | set(fresh)):
        if name not in base:
            rows.append((name, None, fresh[name], "new", ""))
            continue
        if name not in fresh:
            rows.append((name, base[name], None, "GONE", ""))
            gone.append(name)
            continue
        b, f = float(base[name]), float(fresh[name])
        if b == f:
            continue
        rel = (f - b) / abs(b) if b else float("inf")
        d = direction(name)
        bad = d != 0 and rel * d < 0 and abs(rel) > args.threshold
        tag = "REGRESSION" if bad else ("improved" if d and rel * d > 0
                                        and abs(rel) > args.threshold
                                        else "changed")
        rows.append((name, b, f, tag,
                     f"{rel:+.1%}" if rel != float("inf") else "+inf"))
        if bad:
            regressions.append(name)

    if not rows:
        print(f"bench_diff: {fresh_name}: no metric changes vs baseline")
        return 0
    width = max(len(r[0]) for r in rows)
    for name, b, f, tag, rel in rows:
        bs = "-" if b is None else f"{b:g}"
        fs = "-" if f is None else f"{f:g}"
        print(f"  {name:<{width}}  {bs:>14} -> {fs:<14} {rel:>8}  {tag}")
    if gone:
        print(f"bench_diff: {len(gone)} baseline metric(s) gone from "
              f"the fresh report: {', '.join(gone)}", file=sys.stderr)
        return 2
    if regressions:
        print(f"bench_diff: {len(regressions)} regression(s) beyond "
              f"{args.threshold:.0%}: {', '.join(regressions)}",
              file=sys.stderr)
        return 1
    print(f"bench_diff: no regressions beyond {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
