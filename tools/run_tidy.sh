#!/bin/sh
# Run clang-tidy over the source tree with the repo's .clang-tidy
# profile. Skips cleanly (exit 0) when clang-tidy is not installed, so
# minimal CI images can still run the script unconditionally.
#
# Usage: tools/run_tidy.sh [build-dir] [path...] [-- extra clang-tidy args]
#   build-dir: a CMake build directory containing
#              compile_commands.json (default: build)
#   path...:   directories (relative to the repo root or absolute) to
#              restrict the run to, e.g. `src/expr src/solver`; the
#              default sweep covers src/, bench/ and examples/
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

tidy=$(command -v clang-tidy || true)
if [ -z "$tidy" ]; then
    echo "run_tidy: clang-tidy not installed; skipping (not a failure)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: $build_dir/compile_commands.json not found;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
fi

shift 2>/dev/null || true

# Paths before a `--` narrow the sweep; everything after it goes to
# clang-tidy verbatim.
roots=""
while [ $# -gt 0 ] && [ "$1" != "--" ]; do
    case $1 in
      /*) dir=$1 ;;
      *) dir="$repo_root/$1" ;;
    esac
    if [ ! -d "$dir" ]; then
        echo "run_tidy: no such directory: $1" >&2
        exit 1
    fi
    roots="$roots $dir"
    shift
done
[ "${1:-}" = "--" ] && shift
[ -z "$roots" ] &&
    roots="$repo_root/src $repo_root/bench $repo_root/examples"

files=$(find $roots -name '*.cc' -o -name '*.cpp' | sort)

status=0
for f in $files; do
    "$tidy" -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
