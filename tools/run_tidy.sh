#!/bin/sh
# Run clang-tidy over the source tree with the repo's .clang-tidy
# profile. Skips cleanly (exit 0) when clang-tidy is not installed, so
# minimal CI images can still run the script unconditionally.
#
# Usage: tools/run_tidy.sh [build-dir] [-- extra clang-tidy args]
#   build-dir: a CMake build directory containing
#              compile_commands.json (default: build)
set -u

repo_root=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}

tidy=$(command -v clang-tidy || true)
if [ -z "$tidy" ]; then
    echo "run_tidy: clang-tidy not installed; skipping (not a failure)"
    exit 0
fi

if [ ! -f "$build_dir/compile_commands.json" ]; then
    echo "run_tidy: $build_dir/compile_commands.json not found;" \
         "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
    exit 1
fi

shift 2>/dev/null || true
[ "${1:-}" = "--" ] && shift

files=$(find "$repo_root/src" "$repo_root/bench" "$repo_root/examples" \
        -name '*.cc' -o -name '*.cpp' | sort)

status=0
for f in $files; do
    "$tidy" -p "$build_dir" --quiet "$@" "$f" || status=1
done
exit $status
