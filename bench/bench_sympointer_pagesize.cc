/**
 * @file
 * §6.2 reproduction: the symbolic-pointer page-size trade-off. When a
 * memory access uses a symbolic pointer, the engine passes the
 * contents of the containing "small page" to the solver as an
 * if-then-else chain; the page size is configurable. The paper found
 * that with 256-byte pages S2E explored 7,082 paths in an hour at
 * 0.06 s per query, while 4 KB pages dropped it to 2,000 paths at
 * 0.15 s per query. The same sweep here varies the window over a
 * fixed time budget.
 */

#include <cstdio>

#include "core/engine.hh"
#include "obs/report.hh"
#include "vm/devices.hh"

using namespace s2e;

namespace {

const char *kGuest = R"(
        .equ TABLE, 0x8000
        .entry main
    main:
        movi sp, 0x7000
        movi r9, 0            ; hit counter
        movi r10, 60          ; iterations
    loop:
        s2e_symrange r2, 0, 4000
        movi r3, TABLE
        add r3, r2
        ldb r4, [r3]          ; symbolic-pointer load
        cmpi r4, 7            ; branch over the ite chain
        jne miss
        addi r9, 1
    miss:
        subi r10, 1
        cmpi r10, 0
        jne loop
        hlt
)";

struct CellResult {
    uint64_t instructions;
    uint64_t paths;
    double avgQueryMs;
    uint64_t queries;
    double wall;
};

CellResult
runWithWindow(uint32_t window, double budget_seconds,
              obs::RunReport *report = nullptr)
{
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    isa::Program program = isa::assemble(kGuest);
    // Fill the lookup table with a sparse pattern (value 7 every 97th
    // byte) so the hit branch is feasible but rare.
    isa::Program::Section table;
    table.addr = 0x8000;
    table.bytes.resize(4096, 1);
    for (size_t i = 0; i < table.bytes.size(); i += 97)
        table.bytes[i] = 7;
    program.sections.push_back(table);
    m.program = program;
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };

    core::EngineConfig config;
    config.symPointerWindow = window;
    config.maxWallSeconds = budget_seconds;
    config.maxStatesCreated = 4096;
    core::Engine engine(m, config);
    core::RunResult r = engine.run();
    if (report)
        report->captureEngine(engine, r);

    CellResult cell;
    cell.instructions = r.totalInstructions;
    cell.paths = r.statesCreated;
    cell.queries = engine.solver().stats().get("solver.queries");
    double solver_secs = engine.solver().stats().seconds("solver.time");
    cell.avgQueryMs =
        cell.queries ? 1000.0 * solver_secs /
                           static_cast<double>(cell.queries)
                     : 0;
    cell.wall = r.wallSeconds;
    return cell;
}

} // namespace

int
main()
{
    std::setbuf(stdout, nullptr);
    const double kBudget = 4.0;
    std::printf("=== §6.2: symbolic-pointer page-size sweep "
                "(%.0fs budget per window) ===\n\n",
                kBudget);
    std::printf("(paper, 1h budget: 256-byte pages -> 7,082 paths at "
                "0.06 s/query; 4 KB pages -> 2,000 paths at 0.15 "
                "s/query)\n\n");
    std::printf("%-10s %12s %10s %14s %10s\n", "window", "instructions",
                "paths", "avg query", "queries");

    obs::RunReport report("bench_sympointer_pagesize");
    report.addNote("engine snapshot taken at the 128-byte window");
    std::vector<double> windows, paths_s, query_s;
    double small_rate = 0, large_rate = 0;
    double small_query = 0, large_query = 0;
    for (uint32_t window : {64u, 128u, 512u, 2048u, 4096u}) {
        CellResult cell = runWithWindow(window, kBudget,
                                        window == 128 ? &report
                                                      : nullptr);
        windows.push_back(window);
        paths_s.push_back(double(cell.paths));
        query_s.push_back(cell.avgQueryMs);
        std::printf("%7uB %13llu %10llu %11.3fms %10llu\n", window,
                    static_cast<unsigned long long>(cell.instructions),
                    static_cast<unsigned long long>(cell.paths),
                    cell.avgQueryMs,
                    static_cast<unsigned long long>(cell.queries));
        double rate = cell.wall > 0
                          ? static_cast<double>(cell.instructions) /
                                cell.wall
                          : 0;
        if (window == 128) {
            small_rate = rate;
            small_query = cell.avgQueryMs;
        }
        if (window == 4096) {
            large_rate = rate;
            large_query = cell.avgQueryMs;
        }
    }

    std::printf("\nShape check vs paper: small windows make faster "
                "progress than 4 KB windows: %s\n",
                small_rate > large_rate ? "YES" : "NO");
    std::printf("Shape check vs paper: average query time grows with "
                "the window: %s\n",
                large_query > small_query ? "YES" : "NO");

    report.setSeries("window_bytes", std::move(windows));
    report.setSeries("paths", std::move(paths_s));
    report.setSeries("avg_query_ms", std::move(query_s));
    report.setMetric("small_window_instr_per_sec", small_rate);
    report.setMetric("large_window_instr_per_sec", large_rate);
    report.writeBenchFile();
    return 0;
}
