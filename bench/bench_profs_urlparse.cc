/**
 * @file
 * §6.1.3 reproduction (first experiment): PROFS on the URL parser.
 * The paper explored 5,515 paths over 9.5h and found (a) ~10 extra
 * instructions per '/' character with no upper bound on parse cost,
 * and (b) a predictable total cache-miss count. The same analysis
 * here runs a smaller symbolic-URL family and prints the instruction
 * envelope grouped by the parser-reported segment count, plus the
 * cache-miss spread.
 */

#include <algorithm>
#include <cstdio>
#include <map>

#include "obs/report.hh"
#include "tools/profs.hh"

using namespace s2e;
using namespace s2e::tools;

int
main()
{
    std::setbuf(stdout, nullptr);
    ProfsConfig config;
    config.maxWallSeconds = 30;
    config.maxInstructions = 6'000'000;
    ProfsReport report = profileUrlParser(config, 5);

    std::printf("=== §6.1.3: PROFS on the URL parser (5 symbolic "
                "characters) ===\n\n");
    std::printf("paths explored: %zu (completed: %zu)\n",
                report.paths.size(), report.envelope.paths);
    std::printf("instruction envelope: [%llu, %llu]\n",
                static_cast<unsigned long long>(
                    report.envelope.minInstructions),
                static_cast<unsigned long long>(
                    report.envelope.maxInstructions));
    std::printf("cache-miss envelope:  [%llu, %llu]\n",
                static_cast<unsigned long long>(
                    report.envelope.minCacheMisses),
                static_cast<unsigned long long>(
                    report.envelope.maxCacheMisses));
    std::printf("solver time: %.2fs of %.2fs wall\n\n",
                report.solverSeconds, report.wallSeconds);

    // Group by '/'-segment count (the parser reports it via s2e_out).
    std::map<uint32_t, std::pair<uint64_t, uint64_t>> by_segments;
    for (const auto &p : report.paths) {
        if (p.status != core::StateStatus::Halted)
            continue;
        auto it = report.guestOutputs.find(p.stateId);
        if (it == report.guestOutputs.end() || it->second > 100)
            continue; // rejected URLs report 0xFFFFFFFF
        auto &slot = by_segments[it->second];
        if (slot.second == 0) {
            slot = {p.instructions, p.instructions};
        } else {
            slot.first = std::min(slot.first, p.instructions);
            slot.second = std::max(slot.second, p.instructions);
        }
    }

    std::printf("%-10s %14s %14s\n", "'/' count", "min instr",
                "max instr");
    uint64_t prev_max = 0;
    bool monotonic = true;
    std::vector<uint64_t> max_by_seg;
    for (const auto &[segments, env] : by_segments) {
        std::printf("%-10u %14llu %14llu\n", segments,
                    static_cast<unsigned long long>(env.first),
                    static_cast<unsigned long long>(env.second));
        if (prev_max && env.second <= prev_max)
            monotonic = false;
        prev_max = env.second;
        max_by_seg.push_back(env.second);
    }

    std::printf("\nper-'/' marginal cost (paper: 10 instructions):");
    for (size_t i = 1; i < max_by_seg.size(); ++i)
        std::printf(" %+lld",
                    static_cast<long long>(max_by_seg[i]) -
                        static_cast<long long>(max_by_seg[i - 1]));
    std::printf("\n");

    std::printf("\nShape check vs paper: cost strictly increases with "
                "'/' count: %s\n",
                (monotonic && by_segments.size() >= 2) ? "YES" : "NO");
    // Paper: instruction count varies with the input shape while the
    // total cache-miss count is nearly constant (15,984 +/- 20). The
    // scale here is smaller, so compare *relative* spreads instead of
    // absolute bounds.
    double instr_spread =
        report.envelope.minInstructions
            ? static_cast<double>(report.envelope.maxInstructions -
                                  report.envelope.minInstructions) /
                  static_cast<double>(report.envelope.minInstructions)
            : 0;
    double miss_spread =
        report.envelope.minCacheMisses
            ? static_cast<double>(report.envelope.maxCacheMisses -
                                  report.envelope.minCacheMisses) /
                  static_cast<double>(report.envelope.minCacheMisses)
            : 0;
    std::printf("Shape check vs paper: cache misses far more "
                "predictable than instruction count (relative spread "
                "%.0f%% vs %.0f%%): %s\n",
                miss_spread * 100, instr_spread * 100,
                miss_spread * 2 < instr_spread ? "YES" : "NO");

    obs::RunReport bench_report("bench_profs_urlparse");
    bench_report.setMetric("paths", double(report.paths.size()));
    bench_report.setMetric("min_instructions",
                           double(report.envelope.minInstructions));
    bench_report.setMetric("max_instructions",
                           double(report.envelope.maxInstructions));
    bench_report.setMetric("min_cache_misses",
                           double(report.envelope.minCacheMisses));
    bench_report.setMetric("max_cache_misses",
                           double(report.envelope.maxCacheMisses));
    bench_report.setMetric("solver_seconds", report.solverSeconds);
    bench_report.setMetric("wall_seconds", report.wallSeconds);
    bench_report.setMetric("instr_relative_spread", instr_spread);
    bench_report.setMetric("miss_relative_spread", miss_spread);
    bench_report.setSeries(
        "max_instr_by_segment_count",
        std::vector<double>(max_by_seg.begin(), max_by_seg.end()));
    bench_report.addNote(
        "profileUrlParser owns its engine: metrics/series only");
    bench_report.writeBenchFile();
    return 0;
}
