/**
 * @file
 * §6.1.1 reproduction: DDT+ bug finding on the two seeded-bug drivers
 * (the paper's RTL8029 and AMD PCnet analogs). The paper reports 7
 * bugs total: 2 discoverable under SC-SE (symbolic hardware only) and
 * 5 more once local-consistency interface annotations inject symbolic
 * registry configuration, allocator failures and ioctl arguments.
 */

#include <cstdio>

#include "obs/report.hh"
#include "tools/ddt.hh"

using namespace s2e;
using namespace s2e::tools;

namespace {

DdtResult
runOne(guest::DriverKind kind, core::ConsistencyModel model,
       bool annotations, obs::RunReport *report = nullptr)
{
    DdtConfig config;
    config.driver = kind;
    config.model = model;
    config.annotations = annotations;
    config.maxWallSeconds = 25;
    config.maxInstructions = 20'000'000;
    Ddt ddt(config);
    DdtResult result = ddt.run();
    if (report)
        report->captureEngine(ddt.engine(), result.run);
    return result;
}

void
printKinds(const DdtResult &r)
{
    for (const auto &kind : r.bugKinds)
        std::printf("      - %s\n", kind.c_str());
}

} // namespace

int
main()
{
    std::setbuf(stdout, nullptr);
    std::printf("=== §6.1.1: DDT+ automated driver testing ===\n\n");

    obs::RunReport report("bench_ddt_bugs");
    size_t scse_total = 0, lc_total = 0;
    for (guest::DriverKind kind :
         {guest::DriverKind::Dma, guest::DriverKind::Pio}) {
        std::printf("driver %s:\n", guest::driverName(kind));

        DdtResult scse =
            runOne(kind, core::ConsistencyModel::ScSe, false);
        std::printf("  SC-SE (symbolic hardware only): %zu bug classes, "
                    "%zu paths, coverage %.0f%%\n",
                    scse.bugKinds.size(), scse.pathsExplored,
                    scse.driverCoverage * 100);
        printKinds(scse);

        // Engine snapshot comes from the LC runs (the richer mode).
        DdtResult lc =
            runOne(kind, core::ConsistencyModel::Lc, true, &report);
        std::printf("  LC (+interface annotations): %zu bug classes, "
                    "%zu paths, coverage %.0f%%\n",
                    lc.bugKinds.size(), lc.pathsExplored,
                    lc.driverCoverage * 100);
        printKinds(lc);

        std::string name = guest::driverName(kind);
        report.setMetric(name + "_scse_bug_classes",
                         double(scse.bugKinds.size()));
        report.setMetric(name + "_lc_bug_classes",
                         double(lc.bugKinds.size()));
        report.setMetric(name + "_scse_paths",
                         double(scse.pathsExplored));
        report.setMetric(name + "_lc_paths", double(lc.pathsExplored));
        report.setMetric(name + "_lc_coverage", lc.driverCoverage);

        scse_total += scse.bugKinds.size();
        lc_total += lc.bugKinds.size();
        std::printf("\n");
    }

    std::printf("totals: SC-SE %zu bug classes, LC %zu bug classes "
                "(paper: 2 of 7 bugs under SC-SE, +5 with LC)\n",
                scse_total, lc_total);
    std::printf("Shape check vs paper: LC finds strictly more bug "
                "classes than SC-SE: %s\n",
                lc_total > scse_total ? "YES" : "NO");
    report.setMetric("scse_total_bug_classes", double(scse_total));
    report.setMetric("lc_total_bug_classes", double(lc_total));
    report.writeBenchFile();
    return 0;
}
