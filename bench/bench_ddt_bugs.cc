/**
 * @file
 * §6.1.1 reproduction: DDT+ bug finding on the two seeded-bug drivers
 * (the paper's RTL8029 and AMD PCnet analogs). The paper reports 7
 * bugs total: 2 discoverable under SC-SE (symbolic hardware only) and
 * 5 more once local-consistency interface annotations inject symbolic
 * registry configuration, allocator failures and ioctl arguments.
 *
 * Every run also exercises the record/replay witness oracle: each
 * terminated path emits a witness, every bug path (plus a sample of
 * non-bug paths) is re-executed solver-free from its witness, and the
 * bench checks the bug re-crashes at the same program counter.
 */

#include <cstdio>
#include <map>
#include <set>

#include "core/replay/replayer.hh"
#include "obs/report.hh"
#include "tools/ddt.hh"

using namespace s2e;
using namespace s2e::tools;

namespace {

/** Non-bug witnesses replayed per exploration run (bug paths are
 *  always replayed; this caps the extra oracle coverage). */
constexpr size_t kSampleReplays = 8;

/** The symbolic-pointer bounds check reports *may*-overflows: the
 *  solver proves some assignment escapes the chunk, but the path is
 *  not constrained to it, so the witness model need not trigger it.
 *  Those reports are excluded from the concrete re-detection check. */
bool
isMayReport(const DdtBug &bug)
{
    return bug.message.find("can escape its bounds") != std::string::npos;
}

struct BenchRun {
    DdtResult result;
    std::vector<std::shared_ptr<const core::replay::Witness>> witnesses;
    /** Paths that died crashing: pathId -> terminal crash pc. */
    std::map<std::string, uint32_t> crashPaths;
    /** Concrete (non-may) bug reports per path: pathId -> kinds. */
    std::map<std::string, std::set<std::string>> pathReports;
};

BenchRun
runOne(guest::DriverKind kind, core::ConsistencyModel model,
       bool annotations, obs::RunReport *report = nullptr)
{
    DdtConfig config;
    config.driver = kind;
    config.model = model;
    config.annotations = annotations;
    config.maxWallSeconds = 25;
    config.maxInstructions = 20'000'000;
    config.emitWitnesses = true;
    Ddt ddt(config);
    BenchRun run;
    run.result = ddt.run();
    run.witnesses = ddt.engine().witnesses();

    std::map<int, std::string> path_of;
    for (const auto &s : ddt.engine().allStates())
        path_of[s->id()] = s->pathId();
    for (const auto &c : ddt.bugCheck().crashes()) {
        if (c.kind == "kernel-panic" || c.kind == "crash")
            run.crashPaths.emplace(path_of[c.stateId], c.pc);
    }
    for (const auto &b : run.result.bugs) {
        if (!isMayReport(b))
            run.pathReports[path_of[b.stateId]].insert(b.kind);
    }
    if (report)
        report->captureEngine(ddt.engine(), run.result.run);
    return run;
}

struct ReplayOutcome {
    core::replay::ReplayResult verdict;
    /** Bug kinds the replayed run re-detected. */
    std::set<std::string> reportKinds;
};

ReplayOutcome
replayOne(guest::DriverKind kind, core::ConsistencyModel model,
          bool annotations,
          std::shared_ptr<const core::replay::Witness> witness)
{
    DdtConfig config;
    config.driver = kind;
    config.model = model;
    config.annotations = annotations;
    config.replayWitness = std::move(witness);
    Ddt ddt(config);
    DdtResult r = ddt.run();
    ReplayOutcome out;
    out.verdict = core::replay::replayVerdict(ddt.engine());
    out.verdict.instructions = r.run.totalInstructions;
    out.verdict.wallSeconds = r.run.wallSeconds;
    for (const auto &b : r.bugs)
        out.reportKinds.insert(b.kind);
    return out;
}

struct ReplayTally {
    size_t replayed = 0;
    size_t ok = 0;
    uint64_t solverQueries = 0;
    uint64_t instructions = 0;
    double wallSeconds = 0;
    size_t crashPathsTotal = 0;
    size_t crashesWithWitness = 0;
    size_t crashesRecrashed = 0;
    size_t crashesRecrashSamePc = 0;
    size_t reportsTotal = 0;
    size_t reportsRematched = 0;
    uint64_t witnessesEmitted = 0;
    uint64_t extractFailures = 0;

    void
    add(const ReplayOutcome &o)
    {
        replayed++;
        ok += o.verdict.ok ? 1 : 0;
        solverQueries += o.verdict.solverQueries;
        instructions += o.verdict.instructions;
        wallSeconds += o.verdict.wallSeconds;
    }
};

void
replayRun(guest::DriverKind kind, core::ConsistencyModel model,
          bool annotations, const BenchRun &run, ReplayTally &tally)
{
    tally.witnessesEmitted += run.result.run.witnessesEmitted;
    tally.extractFailures += run.result.run.witnessExtractFailures;

    std::map<std::string,
             std::shared_ptr<const core::replay::Witness>> by_path;
    for (const auto &w : run.witnesses)
        by_path[w->pathId] = w;

    auto check_reports = [&](const std::string &path,
                             const ReplayOutcome &o) {
        auto it = run.pathReports.find(path);
        if (it == run.pathReports.end())
            return;
        for (const auto &kind_name : it->second) {
            tally.reportsTotal++;
            if (o.reportKinds.count(kind_name))
                tally.reportsRematched++;
            else
                std::printf("    report '%s' on path %s not re-detected "
                            "by replay\n",
                            kind_name.c_str(), path.c_str());
        }
    };

    tally.crashPathsTotal += run.crashPaths.size();
    std::set<std::string> replayed_paths;
    for (const auto &[path, pc] : run.crashPaths) {
        auto it = by_path.find(path);
        if (it == by_path.end())
            continue;
        tally.crashesWithWitness++;
        ReplayOutcome o = replayOne(kind, model, annotations, it->second);
        tally.add(o);
        replayed_paths.insert(path);
        check_reports(path, o);
        if (o.verdict.ok) {
            tally.crashesRecrashed++;
            if (o.verdict.terminalPc == pc)
                tally.crashesRecrashSamePc++;
        } else {
            std::printf("    REPLAY DIVERGENCE (crash path %s): %s\n",
                        path.c_str(), o.verdict.divergence.c_str());
        }
    }

    // Report-only bug paths next, then plain paths, up to the sample
    // cap: the oracle should cover every bug class, not just crashes.
    size_t sampled = 0;
    auto sample = [&](bool want_reports) {
        for (const auto &w : run.witnesses) {
            if (sampled >= kSampleReplays)
                return;
            if (replayed_paths.count(w->pathId))
                continue;
            if (run.pathReports.count(w->pathId) != want_reports)
                continue;
            ReplayOutcome o = replayOne(kind, model, annotations, w);
            tally.add(o);
            replayed_paths.insert(w->pathId);
            check_reports(w->pathId, o);
            if (!o.verdict.ok)
                std::printf("    REPLAY DIVERGENCE (path %s): %s\n",
                            w->pathId.c_str(),
                            o.verdict.divergence.c_str());
            sampled++;
        }
    };
    sample(true);
    sample(false);
    if (run.witnesses.size() > replayed_paths.size())
        std::printf("    (replay sample capped: %zu of %zu witnesses "
                    "replayed)\n",
                    replayed_paths.size(), run.witnesses.size());
}

void
printKinds(const DdtResult &r)
{
    for (const auto &kind : r.bugKinds)
        std::printf("      - %s\n", kind.c_str());
}

} // namespace

int
main()
{
    std::setbuf(stdout, nullptr);
    std::printf("=== §6.1.1: DDT+ automated driver testing ===\n\n");

    obs::RunReport report("bench_ddt_bugs");
    size_t scse_total = 0, lc_total = 0;
    ReplayTally tally;
    for (guest::DriverKind kind :
         {guest::DriverKind::Dma, guest::DriverKind::Pio}) {
        std::printf("driver %s:\n", guest::driverName(kind));

        BenchRun scse =
            runOne(kind, core::ConsistencyModel::ScSe, false);
        std::printf("  SC-SE (symbolic hardware only): %zu bug classes, "
                    "%zu paths, coverage %.0f%%\n",
                    scse.result.bugKinds.size(),
                    scse.result.pathsExplored,
                    scse.result.driverCoverage * 100);
        printKinds(scse.result);
        replayRun(kind, core::ConsistencyModel::ScSe, false, scse,
                  tally);

        // Engine snapshot comes from the LC runs (the richer mode).
        BenchRun lc =
            runOne(kind, core::ConsistencyModel::Lc, true, &report);
        std::printf("  LC (+interface annotations): %zu bug classes, "
                    "%zu paths, coverage %.0f%%\n",
                    lc.result.bugKinds.size(), lc.result.pathsExplored,
                    lc.result.driverCoverage * 100);
        printKinds(lc.result);
        replayRun(kind, core::ConsistencyModel::Lc, true, lc, tally);

        std::string name = guest::driverName(kind);
        report.setMetric(name + "_scse_bug_classes",
                         double(scse.result.bugKinds.size()));
        report.setMetric(name + "_lc_bug_classes",
                         double(lc.result.bugKinds.size()));
        report.setMetric(name + "_scse_paths",
                         double(scse.result.pathsExplored));
        report.setMetric(name + "_lc_paths",
                         double(lc.result.pathsExplored));
        report.setMetric(name + "_lc_coverage",
                         lc.result.driverCoverage);

        scse_total += scse.result.bugKinds.size();
        lc_total += lc.result.bugKinds.size();
        std::printf("\n");
    }

    std::printf("totals: SC-SE %zu bug classes, LC %zu bug classes "
                "(paper: 2 of 7 bugs under SC-SE, +5 with LC)\n",
                scse_total, lc_total);
    std::printf("Shape check vs paper: LC finds strictly more bug "
                "classes than SC-SE: %s\n",
                lc_total > scse_total ? "YES" : "NO");

    double instr_per_sec =
        tally.wallSeconds > 0
            ? double(tally.instructions) / tally.wallSeconds
            : 0.0;
    std::printf("\nreplay oracle: %zu witnesses emitted, %zu paths "
                "replayed (%zu ok), %zu solver queries, %.0f instr/s\n",
                size_t(tally.witnessesEmitted), tally.replayed, tally.ok,
                size_t(tally.solverQueries), instr_per_sec);
    std::printf("  crashing bugs: %zu paths, %zu with witness, %zu "
                "re-crashed, %zu at the same pc\n",
                tally.crashPathsTotal, tally.crashesWithWitness,
                tally.crashesRecrashed, tally.crashesRecrashSamePc);
    std::printf("  concrete bug reports on replayed paths: %zu of %zu "
                "re-detected\n",
                tally.reportsRematched, tally.reportsTotal);
    std::printf("Replay oracle check: every crashing bug re-crashes "
                "solver-free at the recorded pc: %s\n",
                (tally.crashesWithWitness == tally.crashPathsTotal &&
                 tally.crashesRecrashSamePc == tally.crashPathsTotal)
                    ? "YES"
                    : "NO");

    report.setMetric("scse_total_bug_classes", double(scse_total));
    report.setMetric("lc_total_bug_classes", double(lc_total));
    report.setMetric("witnesses_emitted",
                     double(tally.witnessesEmitted));
    report.setMetric("witness_extract_failures",
                     double(tally.extractFailures));
    report.setMetric("replayed_paths", double(tally.replayed));
    report.setMetric("replay_ok", double(tally.ok));
    report.setMetric("replay_divergences",
                     double(tally.replayed - tally.ok));
    report.setMetric("replay_solver_queries",
                     double(tally.solverQueries));
    report.setMetric("replay_instr_per_sec", instr_per_sec);
    report.setMetric("bugs_recrashed", double(tally.crashesRecrashed));
    report.setMetric("bugs_recrash_same_pc",
                     double(tally.crashesRecrashSamePc));
    report.setMetric("bug_paths_total", double(tally.crashPathsTotal));
    report.setMetric("bug_reports_rematched",
                     double(tally.reportsRematched));
    report.setMetric("bug_reports_total", double(tally.reportsTotal));
    report.writeBenchFile();
    return 0;
}
