/**
 * @file
 * §5 ablation: the bitfield-theory expression simplifier. The DBT's
 * machine-code view of the guest produces flag-extraction expressions
 * (masks, shifts, zero-extensions); the simplifier propagates known
 * bits bottom-up and demanded bits top-down before queries reach the
 * bit-blaster. This benchmark builds that query population both ways
 * and compares node counts and end-to-end solver time, plus a whole-
 * guest run with the simplifier disabled.
 */

#include <chrono>
#include <cstdio>

#include "core/engine.hh"
#include "expr/simplify.hh"
#include "obs/report.hh"
#include "solver/solver.hh"
#include "vm/devices.hh"

using namespace s2e;

namespace {

/** Build a DBT-flag-shaped condition over symbolic byte variables. */
expr::ExprRef
flagCondition(expr::ExprBuilder &b, int salt)
{
    using expr::ExprRef;
    ExprRef x = b.freshVar("fx", 8);
    ExprRef y = b.freshVar("fy", 8);
    ExprRef wx = b.zext(x, 32);
    ExprRef wy = b.zext(y, 32);
    // res = wx - wy; flags computed the way the translator lowers them.
    ExprRef res = b.sub(wx, wy);
    ExprRef z = b.zext(b.eq(res, b.constant(0, 32)), 32);
    ExprRef n = b.zext(b.slt(res, b.constant(0, 32)), 32);
    ExprRef c = b.zext(b.ult(wx, wy), 32);
    ExprRef axb = b.bXor(wx, wy);
    ExprRef axr = b.bXor(wx, res);
    ExprRef v = b.zext(
        b.slt(b.bAnd(axb, axr), b.constant(0, 32)), 32);
    // Pack into a flags word, then extract a condition bit back out —
    // exactly the mask/shift churn the simplifier collapses.
    ExprRef flags = b.bOr(
        b.bOr(z, b.shl(n, b.constant(1, 32))),
        b.bOr(b.shl(c, b.constant(2, 32)),
              b.shl(v, b.constant(3, 32))));
    ExprRef bit = b.bAnd(
        b.lshr(flags, b.constant(static_cast<uint32_t>(salt % 4), 32)),
        b.constant(1, 32));
    return b.eq(bit, b.constant(1, 32));
}

double
solvePopulation(bool use_simplifier, size_t &nodes_blasted)
{
    expr::ExprBuilder b;
    solver::SolverOptions opts;
    opts.useSimplifier = use_simplifier;
    opts.useModelCache = false;
    solver::Solver solver(b, opts);

    nodes_blasted = 0;
    auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < 120; ++i) {
        expr::ExprRef cond = flagCondition(b, i);
        nodes_blasted += cond->nodeCount();
        (void)solver.mayBeTrue({}, cond);
        (void)solver.mustBeTrue({}, cond);
    }
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

double
guestRunSeconds(bool use_simplifier, obs::RunReport *report = nullptr)
{
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = isa::assemble(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r10, 0
    loop:
        mov r2, r1
        andi r2, 0xFF
        cmpi r2, 64           ; flag-heavy symbolic branches
        jb low
        xori r1, 0x5A
    low:
        shri r1, 1
        addi r10, 1
        cmpi r10, 6
        jb loop
        hlt
    )");
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    core::EngineConfig config;
    config.solverOptions.useSimplifier = use_simplifier;
    config.maxWallSeconds = 30;
    core::Engine engine(m, config);
    core::RunResult r = engine.run();
    if (report)
        report->captureEngine(engine, r);
    return r.wallSeconds;
}

} // namespace

int
main()
{
    std::setbuf(stdout, nullptr);
    std::printf("=== §5 ablation: bitfield-theory simplifier ===\n\n");

    // Direct measurement of expression shrinkage.
    size_t in_nodes = 0, out_nodes = 0;
    {
        expr::ExprBuilder b;
        expr::Simplifier simp(b);
        for (int i = 0; i < 40; ++i) {
            expr::ExprRef cond = flagCondition(b, i);
            in_nodes += cond->nodeCount();
            out_nodes += simp.simplify(cond)->nodeCount();
        }
        std::printf("flag-expression DAG nodes: %zu -> %zu "
                    "(%.1f%% removed by the simplifier)\n",
                    in_nodes, out_nodes,
                    100.0 * (in_nodes - out_nodes) / in_nodes);
    }

    size_t nodes_plain = 0, nodes_simplified = 0;
    double t_plain = solvePopulation(false, nodes_plain);
    double t_simplified = solvePopulation(true, nodes_simplified);
    std::printf("\nsolver time on 240 flag queries: %.3fs without vs "
                "%.3fs with the simplifier (%.2fx)\n",
                t_plain, t_simplified, t_plain / t_simplified);

    obs::RunReport report("bench_simplifier_ablation");
    double g_plain = guestRunSeconds(false);
    // Engine snapshot from the simplifier-enabled run (the default
    // configuration).
    double g_simplified = guestRunSeconds(true, &report);
    std::printf("whole-guest symbolic run: %.3fs without vs %.3fs with "
                "(%.2fx)\n",
                g_plain, g_simplified, g_plain / g_simplified);

    std::printf("\nShape check vs paper (§5): the simplifier reduces "
                "expression size on machine-code flag patterns: %s\n",
                nodes_plain >= nodes_simplified ? "YES" : "NO");
    std::printf("Shape check: no slowdown from enabling the simplifier "
                "(within 20%%): %s\n",
                t_simplified <= t_plain * 1.2 ? "YES" : "NO");

    report.setMetric("dag_nodes_in", double(in_nodes));
    report.setMetric("dag_nodes_out", double(out_nodes));
    report.setMetric("query_seconds_plain", t_plain);
    report.setMetric("query_seconds_simplified", t_simplified);
    report.setMetric("blasted_nodes_plain", double(nodes_plain));
    report.setMetric("blasted_nodes_simplified",
                     double(nodes_simplified));
    report.setMetric("guest_seconds_plain", g_plain);
    report.setMetric("guest_seconds_simplified", g_simplified);
    report.writeBenchFile();
    return 0;
}
