/**
 * @file
 * §6.3 reproduction: the consistency-model trade-off experiment
 * behind Table 6 (running time), Figure 7 (coverage), Figure 8
 * (memory high watermark) and Figure 9 (constraint-solving time).
 *
 * Two drivers (the paper's 91C111 and PCnet analogs) and the Lua-like
 * interpreter are each explored under RC-OC, LC, SC-SE and SC-UE with
 * a fixed budget; one table per metric is printed from the same runs.
 *
 * Paper shapes to reproduce:
 *  - Table 6: SC-UE finishes almost immediately (nothing to explore);
 *  - Fig 7:  coverage degrades from relaxed to strict models, with
 *            SC-UE worst;
 *  - Fig 8:  relaxed models keep the memory watermark comparable or
 *            lower than stricter ones at equal budgets;
 *  - Fig 9:  solving time concentrates where symbolic data is richest
 *            (relaxed models), and the solver share collapses for
 *            SC-UE.
 */

#include <cstdio>
#include <vector>

#include "obs/report.hh"
#include "tools/modelsweep.hh"

using namespace s2e;
using namespace s2e::tools;
using core::ConsistencyModel;

int
main()
{
    std::setbuf(stdout, nullptr);
    const ConsistencyModel models[] = {
        ConsistencyModel::RcOc,
        ConsistencyModel::Lc,
        ConsistencyModel::ScSe,
        ConsistencyModel::ScUe,
    };

    SweepBudget budget;
    budget.maxInstructions = 2'000'000;
    budget.maxWallSeconds = 12.0;
    budget.maxStates = 512;

    struct Row {
        const char *target;
        std::vector<SweepResult> cells;
    };
    std::vector<Row> rows;

    rows.push_back({"91c111", {}});
    for (ConsistencyModel m : models)
        rows.back().cells.push_back(
            runDriverSweep(guest::DriverKind::Mmio, m, budget));

    rows.push_back({"pcnet", {}});
    for (ConsistencyModel m : models)
        rows.back().cells.push_back(
            runDriverSweep(guest::DriverKind::Dma, m, budget));

    rows.push_back({"lua", {}});
    for (ConsistencyModel m : models)
        rows.back().cells.push_back(runLuaSweep(m, budget));

    auto header = [&] {
        std::printf("%-8s", "target");
        for (ConsistencyModel m : models)
            std::printf(" %10s", core::consistencyModelName(m));
        std::printf("\n");
    };

    std::printf("=== Table 6: exploration time in seconds "
                "(paper: 91C111 1400/1600/1700/5; PCnet "
                "3300/3200/1300/7; Lua 1103/1114/1148/-) ===\n");
    header();
    for (const auto &row : rows) {
        std::printf("%-8s", row.target);
        for (const auto &c : row.cells)
            std::printf(" %9.2fs", c.wallSeconds);
        std::printf("\n");
    }

    std::printf("\n=== Figure 7: basic-block coverage per model ===\n");
    header();
    for (const auto &row : rows) {
        std::printf("%-8s", row.target);
        for (const auto &c : row.cells)
            std::printf(" %9.0f%%", c.coverage * 100);
        std::printf("\n");
    }

    std::printf("\n=== Figure 8: memory high watermark (MB of state) "
                "===\n");
    header();
    for (const auto &row : rows) {
        std::printf("%-8s", row.target);
        for (const auto &c : row.cells)
            std::printf(" %9.2fM",
                        static_cast<double>(c.memoryHighWatermark) /
                            (1024.0 * 1024.0));
        std::printf("\n");
    }

    std::printf("\n=== Figure 9 (left): fraction of time in the "
                "constraint solver ===\n");
    header();
    for (const auto &row : rows) {
        std::printf("%-8s", row.target);
        for (const auto &c : row.cells)
            std::printf(" %9.0f%%", c.solverFraction * 100);
        std::printf("\n");
    }

    std::printf("\n=== Figure 9 (right): average time per solver query "
                "(ms) ===\n");
    header();
    for (const auto &row : rows) {
        std::printf("%-8s", row.target);
        for (const auto &c : row.cells)
            std::printf(" %9.3fm", c.avgQuerySeconds * 1000);
        std::printf("\n");
    }

    std::printf("\n=== paths explored per model ===\n");
    header();
    for (const auto &row : rows) {
        std::printf("%-8s", row.target);
        for (const auto &c : row.cells)
            std::printf(" %10zu", c.pathsExplored);
        std::printf("\n");
    }

    // Shape checks.
    bool scue_fastest = true;
    bool scue_worst_coverage = true;
    for (const auto &row : rows) {
        const SweepResult &scue = row.cells[3];
        for (size_t m = 0; m < 3; ++m) {
            if (scue.wallSeconds > row.cells[m].wallSeconds)
                scue_fastest = false;
            if (scue.coverage > row.cells[m].coverage + 1e-9)
                scue_worst_coverage = false;
        }
    }
    std::printf("\nShape check vs paper: SC-UE finishes fastest on "
                "every target (nothing to explore): %s\n",
                scue_fastest ? "YES" : "NO");
    std::printf("Shape check vs paper: SC-UE never exceeds the other "
                "models' coverage: %s\n",
                scue_worst_coverage ? "YES" : "NO");

    obs::RunReport report("bench_table6_fig789_models");
    report.addNote("series order: RC-OC, LC, SC-SE, SC-UE");
    report.addNote("runDriverSweep/runLuaSweep own their engines: "
                   "metrics/series only");
    for (const auto &row : rows) {
        std::vector<double> wall, cov, mem, frac, query, paths;
        for (const auto &c : row.cells) {
            wall.push_back(c.wallSeconds);
            cov.push_back(c.coverage);
            mem.push_back(double(c.memoryHighWatermark));
            frac.push_back(c.solverFraction);
            query.push_back(c.avgQuerySeconds);
            paths.push_back(double(c.pathsExplored));
        }
        std::string t = row.target;
        report.setSeries(t + "_wall_seconds", std::move(wall));
        report.setSeries(t + "_coverage", std::move(cov));
        report.setSeries(t + "_memory_high_watermark", std::move(mem));
        report.setSeries(t + "_solver_fraction", std::move(frac));
        report.setSeries(t + "_avg_query_seconds", std::move(query));
        report.setSeries(t + "_paths_explored", std::move(paths));
    }
    report.setMetric("scue_fastest", scue_fastest ? 1.0 : 0.0);
    report.setMetric("scue_worst_coverage",
                     scue_worst_coverage ? 1.0 : 0.0);
    report.writeBenchFile();
    return 0;
}
