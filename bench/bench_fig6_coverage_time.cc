/**
 * @file
 * Figure 6 reproduction: basic-block coverage over time for REV+ on
 * the four drivers. The paper plots 90 minutes; here each driver gets
 * a compressed budget and the series is printed as rows (time in
 * seconds, coverage percent). The expected shape is a steep initial
 * rise that plateaus — most blocks are discovered early, as in the
 * paper's Fig 6.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "core/replay/replayer.hh"
#include "plugins/coverage.hh"
#include "guest/layout.hh"
#include "obs/report.hh"
#include "tools/ddt.hh"
#include "tools/rev.hh"

using namespace s2e;
using namespace s2e::tools;

int
main(int argc, char **argv)
{
    unsigned workers = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            workers = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    std::setbuf(stdout, nullptr);
    const double kBudgetSeconds = 8.0;

    std::printf("=== Figure 6: REV+ basic-block coverage over time "
                "(%.0fs budget per driver) ===\n",
                kBudgetSeconds);

    obs::RunReport report("bench_fig6_coverage_time");
    uint64_t witnesses_emitted = 0, replayed = 0, replay_ok = 0;
    uint64_t replay_queries = 0, replay_instr = 0;
    double replay_wall = 0;
    for (guest::DriverKind kind : guest::allDriverKinds()) {
        RevConfig config;
        config.driver = kind;
        config.maxWallSeconds = kBudgetSeconds;
        config.maxInstructions = 4'000'000;
        config.emitWitnesses = true;
        Rev rev(config);
        RevResult result = rev.run();
        // Engine snapshot of the last driver; coverage timelines for
        // every driver ride along as series.
        report.captureEngine(rev.engine(), result.run);

        isa::Program program = driverProgram(kind);
        plugins::StaticBlocks blocks = plugins::staticBasicBlocks(
            program, guest::kDriverCode, guest::kDriverCodeEnd);
        // The timeline counts covered instructions; rescale the final
        // point to the block-coverage endpoint for a comparable axis.
        double final_cov = result.driverCoverage * 100;
        size_t final_instr = result.coverageTimeline.empty()
                                 ? 1
                                 : result.coverageTimeline.back().second;

        std::printf("\n%s (%zu static blocks, final %.0f%%):\n",
                    guest::driverName(kind), blocks.count(), final_cov);
        std::printf("  %8s %10s\n", "sec", "coverage");
        // Downsample to at most 12 rows.
        const auto &tl = result.coverageTimeline;
        size_t step = tl.size() > 12 ? tl.size() / 12 : 1;
        for (size_t i = 0; i < tl.size(); i += step) {
            double cov = final_cov * static_cast<double>(tl[i].second) /
                         static_cast<double>(final_instr);
            std::printf("  %8.2f %9.1f%%\n", tl[i].first, cov);
        }
        if (!tl.empty())
            std::printf("  %8.2f %9.1f%% (final)\n", tl.back().first,
                        final_cov);

        // Shape check: at least half of the final coverage arrives in
        // the first quarter of the run (steep rise then plateau).
        bool steep = false;
        for (const auto &[t, instr] : tl) {
            if (t <= kBudgetSeconds / 4 &&
                instr * 2 >= final_instr) {
                steep = true;
                break;
            }
        }
        std::printf("  steep-rise-then-plateau shape: %s\n",
                    steep ? "YES" : "NO");

        // Replay oracle spot check: re-execute a few recorded paths
        // concretely and verify they land on the recorded terminal.
        witnesses_emitted += result.run.witnessesEmitted;
        size_t sample = 0;
        for (const auto &w : rev.engine().witnesses()) {
            if (sample++ >= 3)
                break;
            RevConfig rc;
            rc.driver = kind;
            rc.replayWitness = w;
            Rev rrev(rc);
            RevResult rres = rrev.run();
            core::replay::ReplayResult v =
                core::replay::replayVerdict(rrev.engine());
            replayed++;
            replay_ok += v.ok ? 1 : 0;
            replay_queries += v.solverQueries;
            replay_instr += rres.run.totalInstructions;
            replay_wall += rres.run.wallSeconds;
            if (!v.ok)
                std::printf("  REPLAY DIVERGENCE (path %s): %s\n",
                            w->pathId.c_str(), v.divergence.c_str());
        }

        std::string name = guest::driverName(kind);
        report.setMetric(name + "_final_coverage",
                         result.driverCoverage);
        report.setMetric(name + "_steep_rise", steep ? 1.0 : 0.0);
        std::vector<double> secs, covered;
        for (const auto &[t, instr] : tl) {
            secs.push_back(t);
            covered.push_back(static_cast<double>(instr));
        }
        report.setSeries(name + "_timeline_seconds", std::move(secs));
        report.setSeries(name + "_timeline_covered", std::move(covered));
    }

    // Serial vs parallel: same driver, same instruction budget (so
    // both runs do the same exploration work), wall-clock compared.
    // On a multi-core host the parallel run should reach the same
    // coverage in well under the serial time; path sets are identical
    // by the differential suite either way.
    std::printf("\n=== serial vs parallel (%u workers, fixed "
                "instruction budget) ===\n",
                workers);
    auto timed_run = [](unsigned n, bool fibers = false) {
        RevConfig config;
        config.driver = guest::allDriverKinds()[0];
        config.maxWallSeconds = 0; // instruction budget only
        config.maxInstructions = 1'500'000;
        config.numWorkers = n;
        config.useFibers = fibers;
        Rev rev(config);
        return rev.run();
    };
    RevResult serial_run = timed_run(1);
    RevResult parallel_run = timed_run(workers);
    double serial_secs = serial_run.run.wallSeconds;
    double serial_cov = serial_run.driverCoverage;
    double parallel_secs = parallel_run.run.wallSeconds;
    double parallel_cov = parallel_run.driverCoverage;
    double speedup = parallel_secs > 0 ? serial_secs / parallel_secs : 0;
    std::printf("  serial   (1 worker): %7.3f s, %.1f%% coverage\n",
                serial_secs, serial_cov * 100);
    std::printf("  parallel (%u workers): %6.3f s, %.1f%% coverage\n",
                workers, parallel_secs, parallel_cov * 100);
    // Budget kills land at scheduling-dependent points, so allow a small
    // coverage delta; unconstrained runs are path-set-identical (see
    // tests/test_parallel.cc).
    std::printf("  speedup: %.2fx; coverage parity: %s\n", speedup,
                parallel_cov + 0.05 >= serial_cov ? "YES" : "NO");
    report.setMetric("parallel_workers", double(workers));
    report.setMetric("serial_wall_seconds", serial_secs);
    report.setMetric("parallel_wall_seconds", parallel_secs);
    report.setMetric("parallel_speedup_x", speedup);
    report.setMetric("serial_coverage", serial_cov);
    report.setMetric("parallel_coverage", parallel_cov);

    // Fiber scheduler on the same driver exploration: workers park at
    // solver choke points instead of blocking, so the share of worker
    // busy time spent executing (vs inside worker-local solver calls)
    // rises, and service solving overlaps guest execution — a ratio
    // that is identically zero on the blocking engine above.
    std::printf("\n=== fiber scheduler (%u workers, same instruction "
                "budget) ===\n",
                workers);
    RevResult fiber_run = timed_run(workers, /*fibers=*/true);
    const core::RunResult &fr = fiber_run.run;
    auto exec_utilization = [](const core::RunResult &r) {
        double busy = 0;
        for (double b : r.workerBusySeconds)
            busy += b;
        if (busy <= 0)
            return 0.0;
        return r.workerSolverSeconds < busy
                   ? (busy - r.workerSolverSeconds) / busy
                   : 0.0;
    };
    double blocking_util = exec_utilization(parallel_run.run);
    double fiber_util = exec_utilization(fr);
    double batched_fraction =
        fr.asyncQueries > 0
            ? double(fr.batchedQueries) / double(fr.asyncQueries)
            : 0.0;
    std::printf("  fibers (%u workers): %6.3f s, %.1f%% coverage\n",
                workers, fr.wallSeconds, fiber_run.driverCoverage * 100);
    std::printf("  suspends %llu  async %llu  batched %llu  "
                "overlap ratio %.3f\n",
                static_cast<unsigned long long>(fr.suspends),
                static_cast<unsigned long long>(fr.asyncQueries),
                static_cast<unsigned long long>(fr.batchedQueries),
                fr.solverOverlapRatio);
    std::printf("  exec-utilization: fibers %.3f vs blocking %.3f "
                "(above baseline: %s)\n",
                fiber_util, blocking_util,
                fiber_util > blocking_util ? "YES" : "NO");
    std::printf("  coverage parity: %s\n",
                fiber_run.driverCoverage + 0.05 >= parallel_cov ? "YES"
                                                                : "NO");
    report.setMetric("fiber_wall_seconds", fr.wallSeconds);
    report.setMetric("fiber_coverage", fiber_run.driverCoverage);
    report.setMetric("solver_overlap_ratio", fr.solverOverlapRatio);
    report.setMetric("fiber_worker_exec_utilization", fiber_util);
    report.setMetric("blocking_worker_exec_utilization", blocking_util);
    report.setMetric("batched_query_fraction", batched_fraction);
    report.setMetric("fiber_suspend_resume_per_sec",
                     fr.suspendResumePerSec);
    report.setMetric("fiber_paths_match",
                     fiber_run.driverCoverage + 0.05 >= parallel_cov
                         ? 1.0
                         : 0.0);

    double replay_ips =
        replay_wall > 0 ? double(replay_instr) / replay_wall : 0.0;
    std::printf("\nreplay oracle: %llu witnesses emitted, %llu replayed "
                "(%llu ok), %llu solver queries, %.0f instr/s\n",
                static_cast<unsigned long long>(witnesses_emitted),
                static_cast<unsigned long long>(replayed),
                static_cast<unsigned long long>(replay_ok),
                static_cast<unsigned long long>(replay_queries),
                replay_ips);
    report.setMetric("witnesses_emitted", double(witnesses_emitted));
    report.setMetric("replayed_paths", double(replayed));
    report.setMetric("replay_ok", double(replay_ok));
    report.setMetric("replay_divergences", double(replayed - replay_ok));
    report.setMetric("replay_solver_queries", double(replay_queries));
    report.setMetric("replay_instr_per_sec", replay_ips);

    report.writeBenchFile();
    return 0;
}
