/**
 * @file
 * §6.1.3 reproduction (ping experiment): PROFS establishes the
 * performance envelope of the ping client over all network replies.
 * The paper found no upper bound on execution: a reply carrying a
 * record-route option with length 3 drives ping into an infinite
 * loop (a dual performance/security bug). After patching, the paper
 * measured an envelope of 1,645 to 129,086 instructions. The same
 * two runs are reproduced here.
 */

#include <cstdio>

#include "obs/report.hh"
#include "tools/profs.hh"

using namespace s2e;
using namespace s2e::tools;

int
main()
{
    std::setbuf(stdout, nullptr);
    std::printf("=== §6.1.3: PROFS on ping (symbolic 12-byte network "
                "reply) ===\n\n");

    ProfsConfig config;
    config.maxWallSeconds = 25;
    config.maxInstructions = 4'000'000;

    ProfsReport buggy = profilePing(config, /*patched=*/false);
    std::printf("unpatched ping: %zu paths, envelope [%llu, %llu], "
                "unbounded-path suspected: %s\n",
                buggy.paths.size(),
                static_cast<unsigned long long>(
                    buggy.envelope.minInstructions),
                static_cast<unsigned long long>(
                    buggy.envelope.maxInstructions),
                buggy.unboundedSuspected ? "YES" : "no");
    std::printf("  (paper: no bound found; the record-route length-3 "
                "reply hangs ping)\n\n");

    ProfsConfig patched_config;
    patched_config.maxWallSeconds = 30;
    patched_config.maxInstructions = 6'000'000;
    ProfsReport patched = profilePing(patched_config, /*patched=*/true);
    std::printf("patched ping:   %zu paths, envelope [%llu, %llu], "
                "unbounded-path suspected: %s\n",
                patched.paths.size(),
                static_cast<unsigned long long>(
                    patched.envelope.minInstructions),
                static_cast<unsigned long long>(
                    patched.envelope.maxInstructions),
                patched.unboundedSuspected ? "YES" : "no");
    std::printf("  (paper: envelope 1,645 to 129,086 instructions "
                "after the patch)\n");
    std::printf("  page-fault envelope: [%llu, %llu]\n\n",
                static_cast<unsigned long long>(
                    patched.envelope.minPageFaults),
                static_cast<unsigned long long>(
                    patched.envelope.maxPageFaults));

    std::printf("Shape check vs paper: unpatched has no upper bound, "
                "patched does: %s\n",
                (buggy.unboundedSuspected && !patched.unboundedSuspected)
                    ? "YES"
                    : "NO");
    std::printf("Shape check vs paper: patched envelope spans >2x "
                "between best and worst reply: %s\n",
                patched.envelope.maxInstructions >
                        2 * patched.envelope.minInstructions
                    ? "YES"
                    : "NO");

    obs::RunReport report("bench_profs_ping");
    report.setMetric("unpatched_paths", double(buggy.paths.size()));
    report.setMetric("unpatched_min_instructions",
                     double(buggy.envelope.minInstructions));
    report.setMetric("unpatched_max_instructions",
                     double(buggy.envelope.maxInstructions));
    report.setMetric("unpatched_unbounded_suspected",
                     buggy.unboundedSuspected ? 1.0 : 0.0);
    report.setMetric("patched_paths", double(patched.paths.size()));
    report.setMetric("patched_min_instructions",
                     double(patched.envelope.minInstructions));
    report.setMetric("patched_max_instructions",
                     double(patched.envelope.maxInstructions));
    report.setMetric("patched_unbounded_suspected",
                     patched.unboundedSuspected ? 1.0 : 0.0);
    report.setMetric("patched_min_page_faults",
                     double(patched.envelope.minPageFaults));
    report.setMetric("patched_max_page_faults",
                     double(patched.envelope.maxPageFaults));
    report.addNote("profilePing owns its engine: metrics only");
    report.writeBenchFile();
    return 0;
}
