/**
 * @file
 * §6.2 reproduction: runtime overhead of the platform vs "vanilla"
 * execution. The paper reports ~6x overhead in concrete mode (checks
 * for symbolic memory on every access) and ~78x in symbolic mode
 * (expression interpretation + constraint solving), both relative to
 * vanilla QEMU.
 *
 * Here the vanilla baseline is the raw concrete TB interpreter
 * (dbt::fastRun), the concrete-mode run is the full engine with no
 * symbolic data, and the symbolic-mode run executes the same loop
 * with its working set symbolic (branch-free, so the slowdown is
 * expression construction, not forking).
 *
 * Also the harness for two observability checks: the symbolic run is
 * captured as a RunReport (BENCH_overhead.json) whose phase fractions
 * must sum to <= 1.0 of wall time, and a profiler-off concrete run
 * measures the cost of the profiling spans themselves (the
 * S2E_OBS_DEFAULT_OFF zero-overhead check).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "analysis/cfg.hh"
#include "core/engine.hh"
#include "core/state.hh"
#include "dbt/fastexec.hh"
#include "obs/heartbeat.hh"
#include "obs/report.hh"
#include "solver/context.hh"
#include "vm/devices.hh"

using namespace s2e;

namespace {

std::string
workloadSource(bool make_symbolic)
{
    // Branch-free ALU mix over r1..r4; only the loop counter (always
    // concrete) controls branches until the tail. r7 keeps a pristine
    // copy of r1 (the loop mangles r1 into a deep expression), so the
    // two-branch tail issues cheap solver queries in symbolic mode —
    // exercising the per-path incremental context on this workload —
    // and runs concretely (no queries) in the baseline.
    std::string inject = make_symbolic ? R"(
        s2e_symreg r1
        s2e_symreg r2
)"
                                       : "";
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 0x1234
        movi r2, 0x9876
)" + inject + R"(
        movi r7, 0
        add r7, r1            ; pristine copy of r1
        movi r10, 60000       ; iterations
    loop:
        add r1, r2
        xor r2, r1
        shli r1, 3
        shri r1, 1
        mul r2, r1
        or r1, r2
        and r2, r1
        sub r1, r2
        subi r10, 1
        cmpi r10, 0
        jne loop
        testi r7, 1
        jeq t1
        ori r6, 1
    t1: testi r7, 2
        jeq t2
        ori r6, 2
    t2: testi r7, 1       ; re-tests: statically decided on every path
        jeq t3
        ori r6, 16
    t3: testi r7, 2
        jeq t4
        ori r6, 32
    t4: hlt
    )";
}

double
instrPerSecondVanilla()
{
    dbt::FastMachine machine(64 * 1024);
    machine.load(isa::assemble(workloadSource(false)));
    auto start = std::chrono::steady_clock::now();
    dbt::FastRunResult r = dbt::fastRun(machine, ~0ULL);
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return static_cast<double>(r.instructions) / secs;
}

/** Engine-mode measurement plus the solver-resilience counters the
 *  run accumulated (visibility into the resilience layer's cost). */
struct EngineRun {
    double instrPerSecond = 0;
    uint64_t solverQueries = 0;
    uint64_t solverUnknowns = 0;
    uint64_t solverRetries = 0;
    uint64_t solverTimeouts = 0;
    uint64_t maxQueryMicros = 0;
    uint64_t ctxReuses = 0;    ///< per-path incremental context reuses
    uint64_t gatesSaved = 0;   ///< bit-blast gates skipped via guards
    uint64_t ctxEvictions = 0; ///< contexts dropped at the high-water
    uint64_t satQueries = 0;   ///< queries that reached the SAT core
    uint64_t absintPrunes = 0; ///< queries answered statically
    uint64_t absintDisagreements = 0; ///< verify-oracle mismatches
    uint64_t absintFixpointIters = 0;
    size_t solverFailures = 0;
    size_t degradedStates = 0;
    size_t heartbeats = 0;
    uint64_t uopsExecuted = 0; ///< micro-ops interpreted (post-opt)
    uint64_t uopsPreOpt = 0;   ///< same blocks, as originally emitted
};

EngineRun
runEngine(bool symbolic, bool profile, obs::RunReport *report = nullptr,
          bool use_absint = true)
{
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = isa::assemble(workloadSource(symbolic));
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    core::EngineConfig config;
    config.profileExecution = profile;
    config.solverOptions.useAbsint = use_absint;
    // This is a measurement harness: the verify oracle would re-solve
    // every statically answered query and mask the savings.
    config.solverOptions.verifyAbsint = false;
    core::Engine engine(m, config);
    obs::Heartbeat::Config hb_config;
    hb_config.everyBlocks = 8192;
    hb_config.log = false; // sampled for the report, not printed
    obs::Heartbeat heartbeat(engine, hb_config);
    auto start = std::chrono::steady_clock::now();
    core::RunResult r = engine.run();
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    EngineRun out;
    out.instrPerSecond = static_cast<double>(r.totalInstructions) / secs;
    Stats &ss = engine.solver().stats();
    out.solverQueries = ss.get("solver.queries");
    out.solverUnknowns = ss.get("solver.unknown_results");
    out.solverRetries = ss.get("solver.retries");
    out.solverTimeouts = ss.get("solver.timeouts");
    out.maxQueryMicros = ss.get("solver.max_query_micros");
    out.ctxReuses = ss.get("solver.ctx_reuses");
    out.gatesSaved = ss.get("solver.gates_saved");
    out.ctxEvictions = ss.get("solver.ctx_evictions");
    out.satQueries = ss.get("solver.sat_queries");
    out.absintPrunes = ss.get("absint.static_prunes");
    out.absintDisagreements = ss.get("absint.disagreements");
    out.absintFixpointIters = ss.get("absint.fixpoint_iters");
    out.solverFailures = r.solverFailures;
    out.degradedStates = r.degradedStates;
    out.heartbeats = heartbeat.records().size();
    out.uopsExecuted = engine.stats().get("engine.uops_executed");
    out.uopsPreOpt = engine.stats().get("engine.uops_pre_opt");
    if (report)
        report->captureEngine(engine, r);
    return out;
}

/** Fork-heavy workload for the serial-vs-parallel comparison: six
 *  symbolic branch levels (64 paths), each path then grinding a
 *  private ALU loop so workers have real work to steal. */
std::string
forkWorkloadSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: testi r1, 8
        jeq b4
        ori r5, 8
    b4: testi r1, 16
        jeq b5
        ori r5, 16
    b5: testi r1, 32
        jeq work
        ori r5, 32
    work:
        movi r10, 2000
    loop:
        add r6, r5
        xor r6, r10
        muli r6, 3
        subi r10, 1
        cmpi r10, 0
        jne loop
        hlt
    )";
}

/** One fork-heavy run; maxResidentBytes > 0 engages the lifecycle
 *  memory governor (spill-to-disk) on the same workload. */
core::RunResult
runForkWorkload(unsigned workers, uint64_t max_resident_bytes = 0)
{
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = isa::assemble(forkWorkloadSource());
    core::EngineConfig config;
    config.numWorkers = workers;
    config.maxResidentBytes = max_resident_bytes;
    core::Engine engine(m, config);
    return engine.run();
}

/** Resident cap of three empty-state footprints: guaranteed to trip
 *  the governor once a handful of fork-workload states are live. */
uint64_t
forkWorkloadResidentCap()
{
    vm::DeviceSet devices;
    core::ExecutionState probe(64 * 1024, devices);
    return 3 * probe.memoryFootprint();
}

/** Incremental-vs-fresh solver comparison: one path's worth of
 *  mul-heavy constraint history and a stream of checkBranch/getValue
 *  queries against it. With useIncremental the bound path context
 *  bit-blasts the ladder once and replays it via activation-literal
 *  assumptions; the fresh oracle re-blasts everything per query. */
struct SolverBench {
    double queriesPerSecond = 0;
    uint64_t ctxReuses = 0;
    uint64_t gatesSaved = 0;
    uint64_t ctxEvictions = 0;
    std::string answers; ///< outcome-kind digest for cross-checking
};

SolverBench
runSolverBench(bool incremental)
{
    expr::ExprBuilder b;
    solver::SolverOptions opts;
    opts.useModelCache = false; // measure the SAT layer, not the cache
    opts.useIncremental = incremental;
    solver::Solver s(b, opts);
    std::shared_ptr<solver::IncrementalContext> slot;
    s.bindPathContext(&slot);

    expr::ExprRef x = b.var("bx", 32);
    expr::ExprRef y = b.var("by", 32);
    std::vector<expr::ExprRef> cs;
    cs.push_back(b.ult(x, b.constant(1u << 20, 32)));
    cs.push_back(b.ult(y, b.constant(1u << 20, 32)));
    for (uint32_t i = 0; i < 16; ++i)
        cs.push_back(b.ult(b.add(b.mul(x, b.constant(3 + i, 32)),
                                 b.mul(y, b.constant(5 + i, 32))),
                           b.constant(0x40000000u + (i << 16), 32)));

    SolverBench out;
    uint64_t queries = 0;
    auto start = std::chrono::steady_clock::now();
    for (uint32_t k = 0; k < 40; ++k) {
        auto branch =
            s.checkBranch(cs, b.ult(x, b.constant(100 + k * 8, 32)));
        out.answers += branch.trueSide.isSat() ? 'T' : 't';
        out.answers += branch.falseSide.isSat() ? 'F' : 'f';
        uint64_t v = 0;
        auto gv = s.getValue(cs, b.add(x, y), &v);
        out.answers += gv.isSat() ? 'V' : 'v';
        queries += 3;
    }
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    s.bindPathContext(nullptr);
    out.queriesPerSecond =
        secs > 0 ? static_cast<double>(queries) / secs : 0.0;
    out.ctxReuses = s.stats().get("solver.ctx_reuses");
    out.gatesSaved = s.stats().get("solver.gates_saved");
    out.ctxEvictions = s.stats().get("solver.ctx_evictions");
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = 4;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            workers = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    std::setbuf(stdout, nullptr);
    std::printf("=== §6.2: runtime overhead vs vanilla execution ===\n\n");

    double vanilla = instrPerSecondVanilla();
    EngineRun concrete_run = runEngine(false, true);
    EngineRun concrete_noprof = runEngine(false, false);
    obs::RunReport report("bench_overhead");
    EngineRun symbolic_run = runEngine(true, true, &report);
    double concrete = concrete_run.instrPerSecond;
    double symbolic = symbolic_run.instrPerSecond;

    std::printf("%-28s %14.0f instr/s\n", "vanilla TB interpreter",
                vanilla);
    std::printf("%-28s %14.0f instr/s  (%.1fx overhead; paper ~6x)\n",
                "engine, concrete mode", concrete, vanilla / concrete);
    std::printf("%-28s %14.0f instr/s  (%.1fx overhead; paper ~78x)\n",
                "engine, symbolic mode", symbolic, vanilla / symbolic);

    std::printf("\n--- solver resilience counters (symbolic run) ---\n");
    std::printf("%-28s %14llu\n", "solver.queries",
                static_cast<unsigned long long>(symbolic_run.solverQueries));
    std::printf("%-28s %14llu\n", "solver.unknown_results",
                static_cast<unsigned long long>(
                    symbolic_run.solverUnknowns));
    std::printf("%-28s %14llu\n", "solver.retries",
                static_cast<unsigned long long>(symbolic_run.solverRetries));
    std::printf("%-28s %14llu\n", "solver.timeouts",
                static_cast<unsigned long long>(
                    symbolic_run.solverTimeouts));
    std::printf("%-28s %14llu\n", "solver.max_query_micros",
                static_cast<unsigned long long>(
                    symbolic_run.maxQueryMicros));
    std::printf("%-28s %14zu\n", "run.solverFailures",
                symbolic_run.solverFailures);
    std::printf("%-28s %14zu\n", "run.degradedStates",
                symbolic_run.degradedStates);
    std::printf("%-28s %14llu\n", "solver.ctx_reuses",
                static_cast<unsigned long long>(symbolic_run.ctxReuses));
    std::printf("%-28s %14llu\n", "solver.gates_saved",
                static_cast<unsigned long long>(symbolic_run.gatesSaved));
    std::printf("%-28s %14llu\n", "solver.ctx_evictions",
                static_cast<unsigned long long>(
                    symbolic_run.ctxEvictions));

    std::printf("\n--- phase breakdown (symbolic run, Fig 9) ---\n");
    for (const auto &row : report.phases())
        std::printf("%-28s %13.1f%%  (%llu spans)\n", row.name.c_str(),
                    row.fraction * 100.0,
                    static_cast<unsigned long long>(row.spans));
    double fraction_sum = report.phaseFractionSum();
    std::printf("%-28s %13.1f%%\n", "sum of fractions",
                fraction_sum * 100.0);
    std::printf("%zu heartbeats sampled during the symbolic run\n",
                symbolic_run.heartbeats);

    // Cost of the profiling spans themselves, measured on the concrete
    // run (concrete mode has the most spans per unit of work). Noise on
    // short runs is real, so this is a reported metric plus a lenient
    // shape line, not a hard gate.
    double profiler_overhead =
        concrete_noprof.instrPerSecond > 0
            ? concrete_noprof.instrPerSecond / concrete - 1.0
            : 0.0;
    std::printf("\nprofiler on->off speedup on the concrete run: %+.1f%%\n",
                profiler_overhead * 100.0);

    report.setMetric("vanilla_instr_per_sec", vanilla);
    report.setMetric("concrete_instr_per_sec", concrete);
    report.setMetric("symbolic_instr_per_sec", symbolic);
    report.setMetric("concrete_overhead_x", vanilla / concrete);
    report.setMetric("symbolic_overhead_x", vanilla / symbolic);
    report.setMetric("profiler_overhead_fraction", profiler_overhead);
    report.setMetric("heartbeats", double(symbolic_run.heartbeats));

    // TB optimizer effect: every executed block counts both its
    // interpreted (post-optimization) ops and the ops the translator
    // originally emitted. The per-TB breakdown retranslates the
    // workload's static blocks so the JSON shows where the dead-flag
    // harvest comes from.
    double uop_reduction =
        concrete_run.uopsPreOpt > 0
            ? 1.0 - static_cast<double>(concrete_run.uopsExecuted) /
                        static_cast<double>(concrete_run.uopsPreOpt)
            : 0.0;
    std::printf("\n--- TB optimizer (concrete run) ---\n");
    std::printf("%-28s %14llu\n", "uops executed (optimized)",
                static_cast<unsigned long long>(concrete_run.uopsExecuted));
    std::printf("%-28s %14llu\n", "uops as emitted (pre-opt)",
                static_cast<unsigned long long>(concrete_run.uopsPreOpt));
    std::printf("%-28s %13.1f%%\n", "micro-op reduction",
                uop_reduction * 100.0);
    report.setMetric("uops_executed_post_opt",
                     double(concrete_run.uopsExecuted));
    report.setMetric("uops_executed_pre_opt",
                     double(concrete_run.uopsPreOpt));
    report.setMetric("uop_reduction_fraction", uop_reduction);
    {
        isa::Program prog = isa::assemble(workloadSource(false));
        analysis::StaticCfg cfg =
            analysis::recoverStaticCfg(prog, {prog.entry}, 0, 64 * 1024);
        dbt::CodeReader reader = [&prog](uint32_t addr, uint8_t *out) {
            for (const auto &sec : prog.sections)
                if (addr >= sec.addr &&
                    addr < sec.addr + sec.bytes.size()) {
                    *out = sec.bytes[addr - sec.addr];
                    return true;
                }
            return false;
        };
        dbt::TranslatorConfig tc;
        tc.optimize = true;
        tc.verify = true;
        dbt::Translator translator(tc);
        std::vector<double> pcs, pre, post;
        for (const auto &[pc, blk] : cfg.blocks) {
            auto tb = translator.translate(pc, reader);
            pcs.push_back(double(pc));
            pre.push_back(double(tb->origOpCount));
            post.push_back(double(tb->ops.size()));
        }
        report.setSeries("tb_pc", std::move(pcs));
        report.setSeries("tb_uops_pre_opt", std::move(pre));
        report.setSeries("tb_uops_post_opt", std::move(post));
    }

    // Serial vs parallel exploration on a fork-heavy workload. On a
    // single-core host the speedup reflects scheduling overhead only;
    // the differential suite (tests/test_parallel.cc) proves the path
    // sets are identical regardless.
    std::printf("\n--- parallel exploration (fork-heavy, %u workers) "
                "---\n",
                workers);
    core::RunResult serial_run = runForkWorkload(1);
    core::RunResult parallel_run = runForkWorkload(workers);
    double serial_secs = serial_run.wallSeconds;
    double parallel_secs = parallel_run.wallSeconds;
    size_t serial_paths = serial_run.completed;
    size_t parallel_paths = parallel_run.completed;
    double speedup =
        parallel_secs > 0 ? serial_secs / parallel_secs : 0.0;
    std::printf("%-28s %14.3f s  (%zu paths)\n", "serial (1 worker)",
                serial_secs, serial_paths);
    std::printf("%-28s %14.3f s  (%zu paths)\n", "parallel", parallel_secs,
                parallel_paths);
    std::printf("%-28s %14.2fx\n", "speedup", speedup);
    report.setMetric("parallel_workers", double(workers));
    report.setMetric("serial_wall_seconds", serial_secs);
    report.setMetric("parallel_wall_seconds", parallel_secs);
    report.setMetric("parallel_speedup_x", speedup);
    report.setMetric("parallel_paths_match",
                     serial_paths == parallel_paths ? 1.0 : 0.0);

    // State-lifecycle overhead: the same fork workload forced through
    // constant spill/restore cycles by a resident cap of three state
    // footprints. Path results are identical (the differential suite,
    // tests/test_lifecycle.cc, proves byte-equality); here the point
    // is the wall-time cost and counter visibility of the governor.
    std::printf("\n--- spill-to-disk memory governor (capped run) ---\n");
    uint64_t resident_cap = forkWorkloadResidentCap();
    core::RunResult capped_run = runForkWorkload(workers, resident_cap);
    double spill_overhead =
        parallel_secs > 0 ? capped_run.wallSeconds / parallel_secs : 0.0;
    std::printf("%-28s %14llu B\n", "resident cap (3 footprints)",
                static_cast<unsigned long long>(resident_cap));
    std::printf("%-28s %14.3f s  (%zu paths)\n", "capped run",
                capped_run.wallSeconds, capped_run.completed);
    std::printf("%-28s %14llu\n", "states spilled",
                static_cast<unsigned long long>(capped_run.statesSpilled));
    std::printf("%-28s %14llu\n", "states restored",
                static_cast<unsigned long long>(
                    capped_run.statesRestored));
    std::printf("%-28s %14llu B\n", "spill bytes",
                static_cast<unsigned long long>(capped_run.spillBytes));
    std::printf("%-28s %14llu\n", "spill retries",
                static_cast<unsigned long long>(capped_run.spillRetries));
    std::printf("%-28s %14llu states\n", "resident peak",
                static_cast<unsigned long long>(
                    capped_run.residentStatesPeak));
    std::printf("%-28s %14.2fx of uncapped wall time\n", "spill overhead",
                spill_overhead);
    report.setMetric("resident_cap_bytes", double(resident_cap));
    report.setMetric("capped_wall_seconds", capped_run.wallSeconds);
    report.setMetric("capped_paths_match",
                     capped_run.completed == parallel_paths ? 1.0 : 0.0);
    report.setMetric("states_spilled", double(capped_run.statesSpilled));
    report.setMetric("states_restored",
                     double(capped_run.statesRestored));
    report.setMetric("spill_bytes", double(capped_run.spillBytes));
    report.setMetric("spill_retries", double(capped_run.spillRetries));
    report.setMetric("resident_states_peak",
                     double(capped_run.residentStatesPeak));
    report.setMetric("spill_overhead_x", spill_overhead);

    // Incremental per-path contexts vs the fresh-per-query oracle on
    // the same constraint history and query stream. Answers must be
    // identical (the models behind them may differ; only outcome
    // kinds are compared) and the persistent context should win on
    // throughput by skipping the per-query re-blast.
    std::printf("\n--- incremental solver contexts (microbench) ---\n");
    SolverBench fresh_bench = runSolverBench(false);
    SolverBench inc_bench = runSolverBench(true);
    double throughput_x =
        fresh_bench.queriesPerSecond > 0
            ? inc_bench.queriesPerSecond / fresh_bench.queriesPerSecond
            : 0.0;
    bool answers_match = fresh_bench.answers == inc_bench.answers;
    std::printf("%-28s %14.0f queries/s\n", "fresh solver per query",
                fresh_bench.queriesPerSecond);
    std::printf("%-28s %14.0f queries/s\n", "incremental context",
                inc_bench.queriesPerSecond);
    std::printf("%-28s %14.2fx\n", "query throughput ratio",
                throughput_x);
    std::printf("%-28s %14llu\n", "ctx reuses (microbench)",
                static_cast<unsigned long long>(inc_bench.ctxReuses));
    std::printf("%-28s %14llu\n", "gates saved (microbench)",
                static_cast<unsigned long long>(inc_bench.gatesSaved));
    report.setMetric("fresh_queries_per_sec",
                     fresh_bench.queriesPerSecond);
    report.setMetric("incremental_queries_per_sec",
                     inc_bench.queriesPerSecond);
    report.setMetric("incremental_query_throughput_x", throughput_x);
    report.setMetric("solver_ctx_reuses", double(inc_bench.ctxReuses));
    report.setMetric("solver_gates_saved",
                     double(inc_bench.gatesSaved));
    report.setMetric("solver_ctx_evictions",
                     double(inc_bench.ctxEvictions));
    report.setMetric("incremental_answers_match",
                     answers_match ? 1.0 : 0.0);

    // Solver-free static reasoning: the same symbolic workload with
    // abstract interpretation disabled. The re-test tail's branches
    // are statically decidable from the path constraints, so the
    // absint run must answer them without the SAT core and show a
    // measurable drop in solver.sat_queries at identical path counts.
    std::printf("\n--- solver-free static reasoning (absint) ---\n");
    EngineRun absint_off = runEngine(true, false, nullptr,
                                     /*use_absint=*/false);
    const EngineRun &absint_on = symbolic_run; // absint is the default
    double sat_reduction =
        absint_off.satQueries > 0
            ? 1.0 - static_cast<double>(absint_on.satQueries) /
                        static_cast<double>(absint_off.satQueries)
            : 0.0;
    double prune_rate =
        absint_on.solverQueries > 0
            ? static_cast<double>(absint_on.absintPrunes) /
                  static_cast<double>(absint_on.solverQueries)
            : 0.0;
    std::printf("%-28s %14llu\n", "absint.static_prunes",
                static_cast<unsigned long long>(absint_on.absintPrunes));
    std::printf("%-28s %14llu\n", "absint.fixpoint_iters",
                static_cast<unsigned long long>(
                    absint_on.absintFixpointIters));
    std::printf("%-28s %14llu\n", "absint.disagreements",
                static_cast<unsigned long long>(
                    absint_on.absintDisagreements));
    std::printf("%-28s %14llu\n", "sat queries (absint on)",
                static_cast<unsigned long long>(absint_on.satQueries));
    std::printf("%-28s %14llu\n", "sat queries (absint off)",
                static_cast<unsigned long long>(absint_off.satQueries));
    std::printf("%-28s %13.1f%%\n", "sat-query reduction",
                sat_reduction * 100.0);
    report.setMetric("absint_static_prunes",
                     double(absint_on.absintPrunes));
    report.setMetric("absint_prune_rate", prune_rate);
    report.setMetric("absint_disagreements",
                     double(absint_on.absintDisagreements));
    report.setMetric("absint_fixpoint_iters",
                     double(absint_on.absintFixpointIters));
    report.setMetric("sat_queries_absint_on",
                     double(absint_on.satQueries));
    report.setMetric("sat_queries_absint_off",
                     double(absint_off.satQueries));
    report.setMetric("absint_sat_query_reduction_fraction",
                     sat_reduction);

    report.writeBenchFile();

    std::printf("\nShape check vs paper: symbolic >> concrete > vanilla "
                "overhead ordering: %s\n",
                (vanilla > concrete && concrete > symbolic) ? "YES"
                                                            : "NO");
    std::printf("Shape check vs paper: symbolic mode at least 5x "
                "slower than concrete mode: %s\n",
                concrete > 5 * symbolic ? "YES" : "NO");
    std::printf("Observability check: phase fractions sum <= 1.0: %s\n",
                fraction_sum <= 1.0 ? "YES" : "NO");
    std::printf("Observability check: disabled profiler within noise "
                "(<5%% cost): %s\n",
                profiler_overhead < 0.05 ? "YES" : "NO");
    std::printf("Optimizer check: >5%% fewer micro-ops executed: %s\n",
                uop_reduction > 0.05 ? "YES" : "NO");
    std::printf("Incremental check: answers match the fresh oracle: "
                "%s\n",
                answers_match ? "YES" : "NO");
    std::printf("Incremental check: query throughput ratio >= 1.0: "
                "%s\n",
                throughput_x >= 1.0 ? "YES" : "NO");
    std::printf("Incremental check: engine run reused contexts "
                "(solver.ctx_reuses > 0): %s\n",
                symbolic_run.ctxReuses > 0 ? "YES" : "NO");
    std::printf("Lifecycle check: capped run spilled and restored "
                "states: %s\n",
                capped_run.statesSpilled > 0 &&
                        capped_run.statesRestored > 0
                    ? "YES"
                    : "NO");
    std::printf("Lifecycle check: capped path count matches uncapped: "
                "%s\n",
                capped_run.completed == parallel_paths ? "YES" : "NO");
    std::printf("Absint check: static prunes on the symbolic workload "
                "(> 0): %s\n",
                absint_on.absintPrunes > 0 ? "YES" : "NO");
    std::printf("Absint check: fewer SAT queries than with absint off: "
                "%s\n",
                absint_on.satQueries < absint_off.satQueries ? "YES"
                                                             : "NO");
    std::printf("Absint check: zero disagreements recorded: %s\n",
                absint_on.absintDisagreements == 0 ? "YES" : "NO");
    return 0;
}
