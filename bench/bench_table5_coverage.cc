/**
 * @file
 * Table 5 reproduction: basic-block coverage obtained by the RevNIC
 * baseline (concrete random testing) vs REV+ (RC-OC selective
 * symbolic execution) on the four NIC drivers, under equal time
 * budgets. The paper ran 1 hour per driver; the same comparison here
 * uses a compressed budget — the *shape* (REV+ >= RevNIC on every
 * driver) is the reproduction target.
 */

#include <cstdio>

#include "obs/report.hh"
#include "tools/rev.hh"

using namespace s2e;
using namespace s2e::tools;

int
main()
{
    std::setbuf(stdout, nullptr);
    const double kBudgetSeconds = 8.0;
    const uint64_t kBudgetInstructions = 2'000'000;

    std::printf("=== Table 5: basic-block coverage, RevNIC baseline vs "
                "REV+ (%.0fs budget per cell) ===\n\n",
                kBudgetSeconds);
    std::printf("%-10s %10s %10s %14s   paper (1h): RevNIC -> REV+\n",
                "driver", "RevNIC", "REV+", "improvement");

    struct PaperRow {
        guest::DriverKind kind;
        const char *paper;
    };
    const PaperRow rows[] = {
        {guest::DriverKind::Dma, "59% -> 66%"},
        {guest::DriverKind::Pio, "82% -> 87%"},
        {guest::DriverKind::Mmio, "84% -> 87%"},
        {guest::DriverKind::Ring, "84% -> 86%"},
    };

    obs::RunReport report("bench_table5_coverage");
    bool all_improved = true;
    for (const auto &row : rows) {
        RevNicBaselineResult fuzz = runRevNicBaseline(
            row.kind, kBudgetSeconds, kBudgetInstructions);

        RevConfig config;
        config.driver = row.kind;
        config.maxWallSeconds = kBudgetSeconds;
        config.maxInstructions = kBudgetInstructions;
        Rev rev(config);
        RevResult sym = rev.run();
        // The report carries the last driver's full engine snapshot
        // plus one coverage pair per driver.
        report.captureEngine(rev.engine(), sym.run);
        std::string name = guest::driverName(row.kind);
        report.setMetric(name + "_revnic_coverage", fuzz.driverCoverage);
        report.setMetric(name + "_rev_coverage", sym.driverCoverage);

        double delta = (sym.driverCoverage - fuzz.driverCoverage) * 100;
        if (sym.driverCoverage + 1e-9 < fuzz.driverCoverage)
            all_improved = false;
        std::printf("%-10s %9.0f%% %9.0f%% %+13.0f%%   %s\n",
                    guest::driverName(row.kind),
                    fuzz.driverCoverage * 100, sym.driverCoverage * 100,
                    delta, row.paper);
    }
    std::printf("\nShape check vs paper: REV+ coverage >= baseline on "
                "every driver: %s\n",
                all_improved ? "YES" : "NO");
    report.setMetric("all_improved", all_improved ? 1.0 : 0.0);
    report.writeBenchFile();
    return 0;
}
