/**
 * @file
 * Bounded-memory state-lifecycle bench: a 4096-path fork storm run
 * under a resident cap of three state footprints, so the memory
 * governor must continuously spill cold states to disk and restore
 * them on schedule, with an s2e_merge_point prologue exercising ITE
 * state merging in the same run.
 *
 * Sections:
 *
 *   - all-resident serial oracle vs the capped parallel run: same
 *     completed-path count, wall time, and the resident-state peak
 *     that proves the cap actually bounds the pool (thousands of
 *     paths, a few dozen states ever resident at once);
 *   - spill-I/O fault injection: transient write faults must be
 *     absorbed by the retry loop (zero failures, exact path count),
 *     persistent restore faults must degrade into clean
 *     StateStatus::SpillFailure kills with exact terminal accounting
 *     (never a crash).
 *
 * The capped run is captured as a RunReport (BENCH_fork_storm.json)
 * whose run block carries the lifecycle counters: states_merged,
 * states_spilled, states_restored, spill_bytes, spill_retries,
 * resident_states_peak.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/engine.hh"
#include "core/state.hh"
#include "obs/report.hh"
#include "support/logging.hh"
#include "vm/devices.hh"

using namespace s2e;

namespace {

/**
 * 2^bits-path fork storm; each path grinds a tiny private loop. With
 * merge_prologue the program first forks on three bits of r1 and
 * folds the eight siblings back into one ITE survivor at an
 * s2e_merge_point before the storm proper — one run then demonstrates
 * merging and spilling together.
 */
std::string
stormSource(unsigned bits, bool merge_prologue)
{
    std::string src = R"(
        .entry main
    main:
        movi sp, 0x8000
)";
    if (merge_prologue)
        src += R"(
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq m0
        ori r5, 1
    m0: testi r1, 2
        jeq m1
        ori r5, 2
    m1: testi r1, 4
        jeq m2
        ori r5, 4
    m2: s2e_merge
)";
    src += R"(
        s2e_symreg r2
        movi r6, 0
)";
    for (unsigned b = 0; b < bits; ++b)
        src += strprintf("        testi r2, %u\n"
                         "        jeq b%u\n"
                         "        ori r6, %u\n"
                         "    b%u:\n",
                         1u << b, b, 1u << b, b);
    // Redundant re-tests of already-taken conditions plus a masked
    // bound check: branches every path crosses that never fork. The
    // static value analysis decides them from the path constraints
    // without SAT calls; with it disabled they cost real queries.
    for (unsigned b = 0; b < bits && b < 3; ++b)
        src += strprintf("        testi r2, %u\n"
                         "        jeq r%u\n"
                         "        ori r7, %u\n"
                         "    r%u:\n",
                         1u << b, b, 1u << b, b);
    src += R"(
        mov r8, r2
        andi r8, 255
        cmpi r8, 256
        jb masked
        movi r7, 99          ; statically unreachable
    masked:
        movi r3, 0
        movi r4, 0
    work:
        add r3, r6
        addi r4, 1
        cmpi r4, 6
        jne work
        hlt
    )";
    return src;
}

vm::MachineConfig
machineFor(const std::string &source)
{
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    return m;
}

/** Baseline footprint of an empty state on this machine; the resident
 *  cap is a small multiple of this so the governor is guaranteed to
 *  trip once a handful of states are live, regardless of how the
 *  accounting formula evolves. */
uint64_t
baseFootprint(const vm::MachineConfig &m)
{
    vm::DeviceSet devices;
    if (m.deviceSetup)
        m.deviceSetup(devices);
    core::ExecutionState probe(m.ramSize, devices);
    return probe.memoryFootprint();
}

struct StormRun {
    core::RunResult result;
    uint64_t memWatermark = 0;    ///< engine.memory_high_watermark
    uint64_t satQueries = 0;      ///< queries that reached the SAT core
    uint64_t staticPrunes = 0;    ///< absint.static_prunes
    uint64_t disagreements = 0;   ///< absint.disagreements
};

StormRun
runStorm(const std::string &source, unsigned workers, uint64_t cap,
         bool merge_points,
         const core::lifecycle::SpillFaultPolicy &faults = {},
         obs::RunReport *report = nullptr, bool use_absint = true,
         bool use_fibers = false)
{
    core::EngineConfig config;
    config.numWorkers = workers;
    config.maxResidentBytes = cap;
    config.enableMergePoints = merge_points;
    config.spillFaults = faults;
    config.solverOptions.useAbsint = use_absint;
    config.useFibers = use_fibers;
    // Measurement harness: the verify oracle re-solves every static
    // verdict and would mask the query savings.
    config.solverOptions.verifyAbsint = false;
    core::Engine engine(machineFor(source), config);
    StormRun out;
    out.result = engine.run();
    out.memWatermark = engine.stats().get("engine.memory_high_watermark");
    Stats &ss = engine.solver().stats();
    out.satQueries = ss.get("solver.sat_queries");
    out.staticPrunes = ss.get("absint.static_prunes");
    out.disagreements = ss.get("absint.disagreements");
    if (report)
        report->captureEngine(engine, out.result);
    return out;
}

void
printRun(const char *label, const StormRun &run)
{
    const core::RunResult &r = run.result;
    std::printf("%-28s %10.3f s  %6zu created  %6zu completed\n", label,
                r.wallSeconds, r.statesCreated, r.completed);
    std::printf("    merged %zu  spilled %llu  restored %llu  "
                "spill_bytes %llu  retries %llu\n",
                r.mergedStates,
                static_cast<unsigned long long>(r.statesSpilled),
                static_cast<unsigned long long>(r.statesRestored),
                static_cast<unsigned long long>(r.spillBytes),
                static_cast<unsigned long long>(r.spillRetries));
    std::printf("    resident peak %llu states  mem watermark %llu B  "
                "spill failures %zu\n",
                static_cast<unsigned long long>(r.residentStatesPeak),
                static_cast<unsigned long long>(run.memWatermark),
                r.spillFailures);
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned workers = 4;
    unsigned bits = 12; // 2^12 = 4096 storm paths
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--workers") == 0 && i + 1 < argc)
            workers = static_cast<unsigned>(std::atoi(argv[++i]));
        else if (std::strcmp(argv[i], "--bits") == 0 && i + 1 < argc)
            bits = static_cast<unsigned>(std::atoi(argv[++i]));
    }

    std::setbuf(stdout, nullptr);
    std::printf("=== bounded-memory state lifecycle: fork storm ===\n\n");

    std::string source = stormSource(bits, /*merge_prologue=*/true);
    uint64_t footprint = baseFootprint(machineFor(source));
    uint64_t cap = 3 * footprint;
    size_t storm_paths = size_t(1) << bits;
    std::printf("storm paths                  %14zu  (plus an 8-way "
                "merge prologue)\n",
                storm_paths);
    std::printf("state base footprint         %14llu B\n",
                static_cast<unsigned long long>(footprint));
    std::printf("resident cap                 %14llu B  (3 footprints)\n\n",
                static_cast<unsigned long long>(cap));

    obs::RunReport report("bench_fork_storm");

    std::printf("--- all-resident oracle vs capped spill/merge run ---\n");
    StormRun oracle = runStorm(source, 1, 0, true);
    printRun("all-resident (1 worker)", oracle);
    StormRun capped = runStorm(source, workers, cap, true, {}, &report);
    printRun(strprintf("capped (%u workers)", workers).c_str(), capped);

    const core::RunResult &cr = capped.result;
    // The cap is bytes of *accounted* footprint, but each worker's
    // currently-running state can never spill, so the honest
    // bounded-memory claim is the watermark ratio against the
    // uncapped oracle, not a fixed multiple of the (deliberately
    // tiny) cap.
    double watermark_reduction =
        capped.memWatermark > 0
            ? double(oracle.memWatermark) / double(capped.memWatermark)
            : 0.0;
    report.setMetric("storm_paths", double(storm_paths));
    report.setMetric("base_footprint_bytes", double(footprint));
    report.setMetric("resident_cap_bytes", double(cap));
    report.setMetric("oracle_wall_seconds", oracle.result.wallSeconds);
    report.setMetric("capped_wall_seconds", cr.wallSeconds);
    report.setMetric("capped_workers", double(workers));
    report.setMetric("paths_completed_match",
                     oracle.result.completed == cr.completed ? 1.0 : 0.0);
    report.setMetric("memory_high_watermark_bytes",
                     double(capped.memWatermark));
    report.setMetric("uncapped_memory_high_watermark_bytes",
                     double(oracle.memWatermark));
    report.setMetric("memory_watermark_reduction_x", watermark_reduction);

    // Static reasoning on the storm's re-test tail: the same workload
    // at a smaller path count with abstract interpretation on vs off.
    // Path counts must match; the absint run answers the re-tests and
    // the masked bound check without the SAT core.
    unsigned absint_bits = bits >= 7 ? 7 : bits;
    std::string absint_src = stormSource(absint_bits, false);
    std::printf("\n--- static reasoning (absint) on the re-test tail "
                "(2^%u paths) ---\n",
                absint_bits);
    StormRun absint_on =
        runStorm(absint_src, workers, 0, false, {}, nullptr, true);
    StormRun absint_off =
        runStorm(absint_src, workers, 0, false, {}, nullptr, false);
    double sat_query_reduction =
        absint_off.satQueries > 0
            ? 1.0 - double(absint_on.satQueries) /
                        double(absint_off.satQueries)
            : 0.0;
    std::printf("%-28s %14llu\n", "absint.static_prunes",
                static_cast<unsigned long long>(absint_on.staticPrunes));
    std::printf("%-28s %14llu\n", "sat queries (absint on)",
                static_cast<unsigned long long>(absint_on.satQueries));
    std::printf("%-28s %14llu\n", "sat queries (absint off)",
                static_cast<unsigned long long>(absint_off.satQueries));
    std::printf("%-28s %13.1f%%\n", "sat-query reduction",
                sat_query_reduction * 100.0);
    report.setMetric("absint_static_prunes",
                     double(absint_on.staticPrunes));
    report.setMetric("absint_disagreements",
                     double(absint_on.disagreements));
    report.setMetric("sat_queries_absint_on",
                     double(absint_on.satQueries));
    report.setMetric("sat_queries_absint_off",
                     double(absint_off.satQueries));
    report.setMetric("absint_sat_query_reduction_fraction",
                     sat_query_reduction);
    report.setMetric("absint_paths_match",
                     absint_on.result.completed ==
                             absint_off.result.completed
                         ? 1.0
                         : 0.0);

    // Fiber scheduler: the same storm under the blocking worker pool
    // vs fiber-per-state scheduling with the async batched solver
    // service. Workers never stall in the solver under fibers, so the
    // share of worker busy time spent *executing* (rather than inside
    // worker-local solver calls) must rise, and some service solving
    // must overlap guest execution — a ratio that is identically zero
    // on the blocking engine.
    unsigned fiber_bits = bits >= 9 ? 9 : bits;
    std::string fiber_src = stormSource(fiber_bits, false);
    std::printf("\n--- fiber scheduler vs blocking pool (2^%u paths, "
                "%u workers) ---\n",
                fiber_bits, workers);
    StormRun blocking =
        runStorm(fiber_src, workers, 0, false, {}, nullptr, true, false);
    StormRun fibered =
        runStorm(fiber_src, workers, 0, false, {}, nullptr, true, true);
    // Fraction of worker busy time spent executing states rather than
    // blocked inside a worker-local solver call. Under fibers the
    // choke-point queries move to the service threads, so this rises.
    auto exec_utilization = [](const StormRun &run) {
        double busy = 0;
        for (double b : run.result.workerBusySeconds)
            busy += b;
        if (busy <= 0)
            return 0.0;
        double in_solver = run.result.workerSolverSeconds;
        return in_solver < busy ? (busy - in_solver) / busy : 0.0;
    };
    const core::RunResult &fr = fibered.result;
    double blocking_util = exec_utilization(blocking);
    double fiber_util = exec_utilization(fibered);
    double batched_fraction =
        fr.asyncQueries > 0
            ? double(fr.batchedQueries) / double(fr.asyncQueries)
            : 0.0;
    bool fiber_paths_match =
        fr.completed == blocking.result.completed;
    std::printf("%-28s %10.3f s   exec-utilization %.3f\n",
                "blocking pool", blocking.result.wallSeconds,
                blocking_util);
    std::printf("%-28s %10.3f s   exec-utilization %.3f\n", "fibers",
                fr.wallSeconds, fiber_util);
    std::printf("    suspends %llu  resumes %llu  async %llu  "
                "batched %llu  inline-fallbacks %llu\n",
                static_cast<unsigned long long>(fr.suspends),
                static_cast<unsigned long long>(fr.resumes),
                static_cast<unsigned long long>(fr.asyncQueries),
                static_cast<unsigned long long>(fr.batchedQueries),
                static_cast<unsigned long long>(
                    fr.inlineSolverFallbacks));
    std::printf("    overlap ratio %.3f  service busy %.3f s  "
                "queue depth peak %llu  fibers peak %llu\n",
                fr.solverOverlapRatio, fr.serviceBusySeconds,
                static_cast<unsigned long long>(fr.solverQueueDepthPeak),
                static_cast<unsigned long long>(fr.fibersPeak));
    report.setMetric("fiber_paths_match", fiber_paths_match ? 1.0 : 0.0);
    report.setMetric("fiber_wall_seconds", fr.wallSeconds);
    report.setMetric("blocking_wall_seconds",
                     blocking.result.wallSeconds);
    report.setMetric("solver_overlap_ratio", fr.solverOverlapRatio);
    report.setMetric("fiber_worker_exec_utilization", fiber_util);
    report.setMetric("blocking_worker_exec_utilization", blocking_util);
    report.setMetric("batched_query_fraction", batched_fraction);
    report.setMetric("fiber_suspend_resume_per_sec",
                     fr.suspendResumePerSec);
    report.setMetric("fiber_suspends", double(fr.suspends));
    report.setMetric("fiber_inline_fallbacks",
                     double(fr.inlineSolverFallbacks));

    // Spill-I/O resilience at a smaller path count (the fault draws
    // hit every op, so the interesting part is the ladder, not scale).
    unsigned fault_bits = bits >= 7 ? 7 : bits;
    std::string fault_src = stormSource(fault_bits, false);
    size_t fault_paths = size_t(1) << fault_bits;

    std::printf("\n--- spill fault injection (2^%u paths, capped) ---\n",
                fault_bits);
    core::lifecycle::SpillFaultPolicy transient;
    transient.enabled = true;
    transient.faultRate = 1.0;
    transient.kind = core::lifecycle::SpillFaultPolicy::Kind::ShortWrite;
    transient.persistent = false;
    StormRun absorbed = runStorm(fault_src, workers, cap, false, transient);
    printRun("transient short writes", absorbed);

    core::lifecycle::SpillFaultPolicy broken;
    broken.enabled = true;
    broken.faultRate = 1.0;
    broken.kind = core::lifecycle::SpillFaultPolicy::Kind::ShortRead;
    broken.persistent = true;
    StormRun killed = runStorm(fault_src, workers, cap, false, broken);
    printRun("persistent short reads", killed);

    const core::RunResult &ar = absorbed.result;
    const core::RunResult &kr = killed.result;
    bool transient_absorbed = ar.spillFailures == 0 &&
                              ar.spillRetries > 0 &&
                              ar.completed == fault_paths;
    bool kills_accounted = kr.spillFailures > 0 &&
                           kr.completed + kr.spillFailures + kr.crashed +
                                   kr.aborted ==
                               kr.statesCreated;
    report.setMetric("transient_spill_retries", double(ar.spillRetries));
    report.setMetric("transient_spill_failures",
                     double(ar.spillFailures));
    report.setMetric("transient_faults_absorbed",
                     transient_absorbed ? 1.0 : 0.0);
    report.setMetric("persistent_spill_failures",
                     double(kr.spillFailures));
    report.setMetric("persistent_kills_accounted",
                     kills_accounted ? 1.0 : 0.0);

    report.writeBenchFile();

    std::printf("\nShape check: >= %zu paths explored under the cap: %s\n",
                storm_paths,
                cr.statesCreated >= storm_paths ? "YES" : "NO");
    std::printf("Shape check: capped run completes the oracle's path "
                "count: %s\n",
                cr.completed == oracle.result.completed ? "YES" : "NO");
    std::printf("Shape check: merge prologue folded siblings "
                "(states_merged > 0): %s\n",
                cr.mergedStates > 0 ? "YES" : "NO");
    std::printf("Shape check: governor spilled and restored states "
                "(both > 0): %s\n",
                cr.statesSpilled > 0 && cr.statesRestored > 0 ? "YES"
                                                              : "NO");
    std::printf("Shape check: no spill failures without injected "
                "faults: %s\n",
                cr.spillFailures == 0 ? "YES" : "NO");
    std::printf("Shape check: resident-state peak bounded (<= 64 of "
                "%zu states): %s\n",
                cr.statesCreated,
                cr.residentStatesPeak <= 64 ? "YES" : "NO");
    std::printf("Shape check: memory watermark >= 20x below the "
                "uncapped oracle (%.0fx): %s\n",
                watermark_reduction,
                watermark_reduction >= 20.0 ? "YES" : "NO");
    std::printf("Resilience check: transient write faults absorbed by "
                "retry: %s\n",
                transient_absorbed ? "YES" : "NO");
    std::printf("Resilience check: persistent restore faults kill "
                "cleanly, accounting exact: %s\n",
                kills_accounted ? "YES" : "NO");
    std::printf("Fiber check: same path count as the blocking pool: "
                "%s\n",
                fiber_paths_match ? "YES" : "NO");
    std::printf("Fiber check: solver overlap ratio > 0 (blocking "
                "engine is always 0): %s\n",
                fr.solverOverlapRatio > 0 ? "YES" : "NO");
    std::printf("Fiber check: worker exec-utilization above the "
                "blocking baseline (%.3f > %.3f): %s\n",
                fiber_util, blocking_util,
                fiber_util > blocking_util ? "YES" : "NO");
    std::printf("Absint check: re-test tail pruned statically "
                "(static_prunes > 0): %s\n",
                absint_on.staticPrunes > 0 ? "YES" : "NO");
    std::printf("Absint check: fewer SAT queries than with absint off, "
                "same paths: %s\n",
                absint_on.satQueries < absint_off.satQueries &&
                        absint_on.result.completed ==
                            absint_off.result.completed
                    ? "YES"
                    : "NO");
    return 0;
}
