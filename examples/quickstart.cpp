/**
 * @file
 * Quickstart: multi-path execution in ~60 lines.
 *
 * Assembles a small guest program that reads a symbolic value and
 * branches on it, runs the engine, and prints every explored path
 * with a concrete input that reproduces it — the core S2E workflow:
 * mark data symbolic, explore, ask the solver for test cases.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>

#include "core/engine.hh"
#include "vm/devices.hh"

using namespace s2e;

int
main()
{
    // A guest that classifies a symbolic integer.
    vm::MachineConfig machine;
    machine.ramSize = 64 * 1024;
    machine.program = isa::assemble(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 200   ; symbolic input in [0, 200]
        cmpi r1, 10
        jb small
        cmpi r1, 100
        jb medium
        movi r2, 3                ; large
        hlt
    small:
        movi r2, 1
        hlt
    medium:
        movi r2, 2
        hlt
    )");
    machine.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };

    core::Engine engine(machine, core::EngineConfig{});
    core::RunResult result = engine.run();

    std::printf("explored %zu paths with %llu forks\n\n",
                result.statesCreated,
                static_cast<unsigned long long>(result.forks));

    for (const auto &state : engine.allStates()) {
        uint32_t classification = state->cpu.regs[2].concrete();
        // Ask the solver for a concrete input reaching this path.
        expr::Assignment model;
        auto out =
            engine.solver().getInitialValues(state->constraints, &model);
        uint32_t input = 0;
        if (out.isSat() && !model.values().empty())
            input = static_cast<uint32_t>(model.values().begin()->second);
        std::printf("path %d: classification r2 = %u, reproduced by "
                    "input r1 = %u\n",
                    state->id(), classification, input);
    }
    return 0;
}
