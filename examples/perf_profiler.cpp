/**
 * @file
 * PROFS example: multi-path in-vivo performance profiling (paper
 * §6.1.3). Profiles the URL parser over a family of symbolic URLs and
 * prints the performance envelope — instruction counts, simulated
 * cache misses, TLB misses and page faults per path — something a
 * single-path profiler like Valgrind or a sampling profiler like
 * Oprofile cannot produce.
 *
 *   $ ./examples/perf_profiler
 */

#include <algorithm>
#include <cstdio>
#include <vector>

#include "tools/profs.hh"

using namespace s2e;
using namespace s2e::tools;

int
main()
{
    ProfsConfig config;
    config.maxWallSeconds = 20;
    config.maxInstructions = 3'000'000;
    ProfsReport report = profileUrlParser(config, 4);

    std::printf("profiled %zu paths through the URL parser "
                "(kernel + string library in vivo)\n\n",
                report.paths.size());

    std::printf("%-7s %8s %12s %10s %9s %10s\n", "path", "status",
                "instructions", "cache-miss", "tlb-miss", "page-fault");
    std::vector<plugins::PathPerf> sorted = report.paths;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  return a.instructions < b.instructions;
              });
    size_t shown = 0;
    for (const auto &p : sorted) {
        if (shown++ > 14)
            break;
        std::printf("%-7d %8s %12llu %10llu %9llu %10llu\n", p.stateId,
                    core::stateStatusName(p.status),
                    static_cast<unsigned long long>(p.instructions),
                    static_cast<unsigned long long>(p.cacheMisses),
                    static_cast<unsigned long long>(p.tlbMisses),
                    static_cast<unsigned long long>(p.pageFaults));
    }

    std::printf("\nperformance envelope over the whole input family:\n");
    std::printf("  instructions: [%llu, %llu]\n",
                static_cast<unsigned long long>(
                    report.envelope.minInstructions),
                static_cast<unsigned long long>(
                    report.envelope.maxInstructions));
    std::printf("  cache misses: [%llu, %llu]\n",
                static_cast<unsigned long long>(
                    report.envelope.minCacheMisses),
                static_cast<unsigned long long>(
                    report.envelope.maxCacheMisses));
    std::printf("  page faults:  [%llu, %llu]\n",
                static_cast<unsigned long long>(
                    report.envelope.minPageFaults),
                static_cast<unsigned long long>(
                    report.envelope.maxPageFaults));
    std::printf("\nsolver: %.2fs of %.2fs wall\n", report.solverSeconds,
                report.wallSeconds);
    return 0;
}
