/**
 * @file
 * The paper's introductory scenario: verifying the code that handles
 * license keys in a proprietary program. The license key read from
 * the registry is marked symbolic; the engine explores every
 * validation path, reports the latent bug on the legacy-key path, and
 * asks the solver to print working license keys.
 *
 *   $ ./examples/license_check
 */

#include <cstdio>
#include <string>

#include "core/engine.hh"
#include "guest/kernel.hh"
#include "guest/workloads.hh"
#include "vm/devices.hh"

using namespace s2e;

int
main()
{
    vm::MachineConfig machine;
    machine.ramSize = guest::kRamSize;
    machine.program = isa::assemble(guest::kernelSource() +
                                    guest::licenseCheckSource());
    machine.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };

    core::EngineConfig config;
    config.maxInstructions = 5'000'000;
    core::Engine engine(machine, config);

    // Install a placeholder key in the registry, then make all eight
    // characters symbolic — the paper's MSWinRegistry selector.
    auto &state = engine.initialState();
    uint32_t key_addr =
        guest::addConfigString(state, engine.builder(), 0, "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, 8, "license_key");

    int bugs = 0;
    engine.events().onBug.subscribe(
        [&bugs](core::ExecutionState &, const std::string &message) {
            std::printf("BUG on some key: %s\n", message.c_str());
            bugs++;
        });

    core::RunResult result = engine.run();
    std::printf("\nexplored %zu paths\n", result.statesCreated);

    // Print up to three concrete keys that validate (console "V").
    int shown = 0;
    for (const auto &s : engine.allStates()) {
        auto *console = s->devices.get<vm::ConsoleDevice>("console");
        if (!console || console->output() != "V" || shown >= 3)
            continue;
        expr::Assignment model;
        auto out = engine.solver().getInitialValues(s->constraints, &model);
        if (!out.isSat())
            continue;
        // Reconstruct the key bytes from the model: variables were
        // created in order license_key[0..7].
        std::string key(8, '?');
        for (const auto &[var_id, value] : model.values()) {
            // Variable names are license_key[i]#id; recover i by id
            // ordering (the first 8 fresh vars are the key bytes).
            if (var_id < 8)
                key[var_id] = static_cast<char>(value);
        }
        std::printf("valid key #%d: \"%s\"\n", ++shown, key.c_str());
    }

    std::printf("\n%d bug(s) found on the legacy-suffix path "
                "(expected: 1)\n",
                bugs);
    return bugs == 1 ? 0 : 1;
}
