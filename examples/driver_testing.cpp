/**
 * @file
 * DDT+ example: testing a closed-source NIC driver (paper §6.1.1).
 *
 * Runs the DMA ("pcnet"-style) driver first under strict system-level
 * consistency (symbolic hardware only), then under local consistency
 * with kernel-interface annotations, and prints the bugs each setup
 * finds — reproducing the paper's "2 bugs under SC-SE, more with LC"
 * result in miniature.
 *
 *   $ ./examples/driver_testing
 */

#include <cstdio>

#include "tools/ddt.hh"

using namespace s2e;
using namespace s2e::tools;

namespace {

void
report(const char *label, const DdtResult &result)
{
    std::printf("%s:\n", label);
    std::printf("  paths explored:  %zu\n", result.pathsExplored);
    std::printf("  driver coverage: %.0f%%\n",
                result.driverCoverage * 100);
    std::printf("  bug classes:     %zu\n", result.bugKinds.size());
    for (const auto &kind : result.bugKinds)
        std::printf("    - %s\n", kind.c_str());
    // One concrete report per class, like DDT's crash dumps.
    std::printf("  sample reports:\n");
    std::set<std::string> seen;
    for (const auto &bug : result.bugs) {
        if (!seen.insert(bug.kind).second)
            continue;
        std::printf("    [%s] %s (state %d)\n", bug.kind.c_str(),
                    bug.message.c_str(), bug.stateId);
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    DdtConfig scse;
    scse.driver = guest::DriverKind::Dma;
    scse.model = core::ConsistencyModel::ScSe;
    scse.annotations = false;
    scse.maxWallSeconds = 15;
    Ddt strict(scse);
    report("SC-SE (symbolic hardware is the only symbolic input)",
           strict.run());

    DdtConfig lc;
    lc.driver = guest::DriverKind::Dma;
    lc.model = core::ConsistencyModel::Lc;
    lc.annotations = true;
    lc.maxWallSeconds = 25;
    Ddt local(lc);
    report("LC (+ registry, allocator and ioctl annotations)",
           local.run());
    return 0;
}
