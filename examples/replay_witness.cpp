/**
 * @file
 * Replay-witness CLI: record `s2e.witness.v1` files for a workload,
 * or replay one file purely concretely (solver disconnected) and
 * print the verdict — the recorded terminal outcome on success, the
 * first mismatching nondeterminism site on divergence.
 *
 *   $ ./examples/replay_witness record WITNESS_DIR WORKLOAD [DRIVER]
 *   $ ./examples/replay_witness replay WITNESS_FILE WORKLOAD [DRIVER]
 *
 * WORKLOAD: license | ddt | rev    DRIVER: dma | pio | mmio | ring
 * (DRIVER applies to ddt/rev; the recording and the replay must use
 * the same workload and driver — the witness only captures the
 * nondeterminism, not the machine.)
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/replay/replayer.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "tools/ddt.hh"
#include "tools/rev.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

using namespace s2e;
using core::replay::ReplayResult;
using core::replay::Witness;

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: replay_witness record WITNESS_DIR WORKLOAD "
                 "[DRIVER]\n"
                 "       replay_witness replay WITNESS_FILE WORKLOAD "
                 "[DRIVER]\n"
                 "WORKLOAD: license | ddt | rev   "
                 "DRIVER: dma | pio | mmio | ring (default dma)\n");
    return 2;
}

bool
parseDriver(const char *name, guest::DriverKind *kind)
{
    if (!std::strcmp(name, "dma"))
        *kind = guest::DriverKind::Dma;
    else if (!std::strcmp(name, "pio"))
        *kind = guest::DriverKind::Pio;
    else if (!std::strcmp(name, "mmio"))
        *kind = guest::DriverKind::Mmio;
    else if (!std::strcmp(name, "ring"))
        *kind = guest::DriverKind::Ring;
    else
        return false;
    return true;
}

vm::MachineConfig
licenseMachine()
{
    vm::MachineConfig m;
    m.ramSize = guest::kRamSize;
    m.program = isa::assemble(guest::kernelSource() +
                              guest::licenseCheckSource());
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        devices.add(std::make_unique<vm::DmaNic>());
    };
    return m;
}

void
licenseSetup(core::Engine &engine)
{
    auto &state = engine.initialState();
    uint32_t key_addr = guest::addConfigString(state, engine.builder(), 0,
                                               "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                           "license");
}

tools::DdtConfig
ddtConfig(guest::DriverKind driver)
{
    tools::DdtConfig config;
    config.driver = driver;
    config.model = core::ConsistencyModel::ScSe;
    config.annotations = false;
    config.maxInstructions = 0;
    config.maxWallSeconds = 0;
    config.solverOptions.useModelCache = false;
    return config;
}

void
printVerdict(const Witness &w, const ReplayResult &v)
{
    std::printf("witness path %s: %zu inputs, %zu nondeterminism "
                "sites, recorded terminal %s@0x%x after %llu "
                "instructions\n",
                w.pathId.c_str(), w.inputs.size(), w.events.size(),
                core::stateStatusName(
                    static_cast<core::StateStatus>(w.terminalStatus)),
                w.terminalPc,
                static_cast<unsigned long long>(w.terminalInstr));
    if (v.ok) {
        std::printf("replay OK: reached the recorded terminal "
                    "solver-free (%llu solver queries, %llu "
                    "instructions, %.0f instr/s)\n",
                    static_cast<unsigned long long>(v.solverQueries),
                    static_cast<unsigned long long>(v.instructions),
                    v.instrPerSec());
    } else {
        std::printf("replay DIVERGED\n");
        std::printf("  first mismatching site: %s\n",
                    v.divergence.c_str());
    }
}

int
record(const std::string &dir, const std::string &workload,
       guest::DriverKind driver)
{
    uint64_t emitted = 0;
    if (workload == "license") {
        core::EngineConfig config;
        config.emitWitnesses = true;
        config.witnessDir = dir;
        config.solverOptions.useModelCache = false;
        core::Engine engine(licenseMachine(), config);
        licenseSetup(engine);
        emitted = engine.run().witnessesEmitted;
    } else if (workload == "ddt") {
        tools::DdtConfig config = ddtConfig(driver);
        config.emitWitnesses = true;
        config.witnessDir = dir;
        tools::Ddt ddt(config);
        emitted = ddt.run().run.witnessesEmitted;
    } else if (workload == "rev") {
        tools::RevConfig config;
        config.driver = driver;
        config.emitWitnesses = true;
        config.witnessDir = dir;
        tools::Rev rev(config);
        emitted = rev.run().run.witnessesEmitted;
    } else {
        return usage();
    }
    std::printf("recorded %llu witness files under %s\n",
                static_cast<unsigned long long>(emitted), dir.c_str());
    return 0;
}

int
replay(const std::string &file, const std::string &workload,
       guest::DriverKind driver)
{
    std::ifstream in(file, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "replay_witness: cannot read %s\n",
                     file.c_str());
        return 2;
    }
    std::vector<uint8_t> image((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    Witness parsed;
    std::string error;
    if (!core::replay::parseWitness(image, parsed, &error)) {
        std::fprintf(stderr, "replay_witness: %s: rejected: %s\n",
                     file.c_str(), error.c_str());
        return 2;
    }
    auto witness = std::make_shared<const Witness>(std::move(parsed));

    ReplayResult v;
    if (workload == "license") {
        core::replay::ReplayEngine rep(licenseMachine(),
                                       core::EngineConfig{}, witness);
        licenseSetup(rep.engine());
        v = rep.run();
    } else if (workload == "ddt") {
        tools::DdtConfig config = ddtConfig(driver);
        config.replayWitness = witness;
        tools::Ddt ddt(config);
        tools::DdtResult res = ddt.run();
        v = core::replay::replayVerdict(ddt.engine());
        v.instructions = res.run.totalInstructions;
        v.wallSeconds = res.run.wallSeconds;
    } else if (workload == "rev") {
        tools::RevConfig config;
        config.driver = driver;
        config.replayWitness = witness;
        tools::Rev rev(config);
        tools::RevResult res = rev.run();
        v = core::replay::replayVerdict(rev.engine());
        v.instructions = res.run.totalInstructions;
        v.wallSeconds = res.run.wallSeconds;
    } else {
        return usage();
    }
    printVerdict(*witness, v);
    return v.ok ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4)
        return usage();
    guest::DriverKind driver = guest::DriverKind::Dma;
    if (argc > 4 && !parseDriver(argv[4], &driver))
        return usage();
    std::string mode = argv[1];
    if (mode == "record")
        return record(argv[2], argv[3], driver);
    if (mode == "replay")
        return replay(argv[2], argv[3], driver);
    return usage();
}
