/**
 * @file
 * REV+ example: reverse engineering a binary NIC driver (paper
 * §6.1.2). Explores the PIO ("rtl8029"-style) driver under
 * overapproximate consistency, reconstructs its control-flow graph
 * from execution traces, and prints the synthesized pseudo-driver
 * with the recovered hardware protocol.
 *
 *   $ ./examples/reverse_engineering
 */

#include <cstdio>

#include "tools/rev.hh"

using namespace s2e;
using namespace s2e::tools;

int
main()
{
    RevConfig config;
    config.driver = guest::DriverKind::Pio;
    config.model = core::ConsistencyModel::RcOc;
    config.maxWallSeconds = 15;
    Rev rev(config);
    RevResult result = rev.run();

    std::printf("explored %zu paths; driver coverage %.0f%%\n",
                result.pathsExplored, result.driverCoverage * 100);
    std::printf("recovered CFG: %zu blocks, %zu edges, %zu hardware "
                "operations\n\n",
                result.cfg.blockCount(), result.cfg.edgeCount(),
                result.cfg.hardwareOpCount());

    std::printf("%s\n",
                Rev::synthesizeDriver(result.cfg, "rtl8029").c_str());

    // What static disassembly alone would have recovered, and which
    // blocks only multi-path execution found (the interrupt handler
    // hangs off the runtime-written IVT and is statically invisible).
    std::printf("static CFG from the driver ABI exports: %zu blocks, "
                "%zu unresolved indirect transfers\n",
                result.staticCfg.blocks.size(),
                result.staticCfg.unresolvedIndirects.size());
    std::printf("%s\n", result.cfgDiff.toString().c_str());

    std::printf("coverage over time:\n");
    const auto &tl = result.coverageTimeline;
    size_t step = tl.size() > 10 ? tl.size() / 10 : 1;
    for (size_t i = 0; i < tl.size(); i += step)
        std::printf("  %6.2fs  %zu instructions covered\n", tl[i].first,
                    tl[i].second);
    return 0;
}
