/** @file Tests for the bit-blaster and the top-level solver. */

#include <gtest/gtest.h>

#include <algorithm>

#include "expr/builder.hh"
#include "expr/eval.hh"
#include "solver/bitblast.hh"
#include "solver/context.hh"
#include "solver/solver.hh"
#include "support/rng.hh"

namespace s2e::solver {
namespace {

using expr::Assignment;
using expr::ExprBuilder;
using expr::Kind;

class SolverTest : public ::testing::Test
{
  protected:
    ExprBuilder b;
    Solver solver{b};
};

/** Pigeonhole(n, m) at the expression level: unsatisfiable for n > m,
 *  immune to root-level unit propagation, needs many conflicts. */
std::vector<ExprRef>
pigeonhole(ExprBuilder &b, int n, int m)
{
    std::vector<std::vector<ExprRef>> p(n);
    for (int i = 0; i < n; ++i)
        for (int h = 0; h < m; ++h)
            p[i].push_back(b.freshVar("php", 1));
    std::vector<ExprRef> cs;
    for (int i = 0; i < n; ++i) {
        ExprRef any = b.falseExpr();
        for (int h = 0; h < m; ++h)
            any = b.lor(any, p[i][h]);
        cs.push_back(any);
    }
    for (int h = 0; h < m; ++h)
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                cs.push_back(b.lnot(b.land(p[i][h], p[j][h])));
    return cs;
}

TEST_F(SolverTest, TrivialSat)
{
    EXPECT_TRUE(solver.mayBeTrue({}, b.trueExpr()).yes());
    EXPECT_TRUE(solver.mayBeTrue({}, b.falseExpr()).no());
}

TEST_F(SolverTest, VariableEquality)
{
    ExprRef x = b.var("x", 32);
    ExprRef c = b.eq(x, b.constant(42, 32));
    Assignment model;
    EXPECT_EQ(solver.checkSat({}, c, &model).result, CheckResult::Sat);
    EXPECT_EQ(expr::evaluate(x, model), 42u);
}

TEST_F(SolverTest, ContradictionUnsat)
{
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.eq(x, b.constant(1, 32))};
    EXPECT_TRUE(solver.mayBeTrue(cs, b.eq(x, b.constant(2, 32))).no());
}

TEST_F(SolverTest, MustBeTrue)
{
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 8))};
    EXPECT_TRUE(solver.mustBeTrue(cs, b.ult(x, b.constant(11, 8))).yes());
    EXPECT_TRUE(solver.mustBeTrue(cs, b.ult(x, b.constant(5, 8))).no());
}

TEST_F(SolverTest, ArithmeticReasoning)
{
    // x + y == 10, x == 3  =>  y == 7.
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);
    std::vector<ExprRef> cs = {
        b.eq(b.add(x, y), b.constant(10, 32)),
        b.eq(x, b.constant(3, 32)),
    };
    EXPECT_TRUE(solver.mustBeTrue(cs, b.eq(y, b.constant(7, 32))).yes());
}

TEST_F(SolverTest, MultiplicationInversion)
{
    // x * 3 == 21 over 16 bits: x == 7 possible... and also the
    // modular solutions; just check satisfiability and a witness.
    ExprRef x = b.var("x", 16);
    ExprRef c = b.eq(b.mul(x, b.constant(3, 16)), b.constant(21, 16));
    Assignment model;
    ASSERT_EQ(solver.checkSat({}, c, &model).result, CheckResult::Sat);
    uint64_t xv = expr::evaluate(x, model);
    EXPECT_EQ((xv * 3) & 0xFFFF, 21u);
}

TEST_F(SolverTest, DivisionSemantics)
{
    // x / 0 == 0xFF for all 8-bit x (total-function semantics).
    ExprRef x = b.var("x", 8);
    ExprRef q = b.udiv(x, b.constant(0, 8));
    EXPECT_TRUE(
        solver.mustBeTrue({}, b.eq(q, b.constant(0xFF, 8))).yes());
}

TEST_F(SolverTest, SignedComparisonReasoning)
{
    // -5 < x (signed) and x < 0 (signed) has solutions (e.g. -1).
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {
        b.slt(b.constant(0xFB, 8), x), // -5 < x
        b.slt(x, b.constant(0, 8)),
    };
    Assignment model;
    ASSERT_EQ(solver.checkSat(cs, b.trueExpr(), &model).result,
              CheckResult::Sat);
    int64_t xv = signExtend(expr::evaluate(x, model), 8);
    EXPECT_GT(xv, -5);
    EXPECT_LT(xv, 0);
}

TEST_F(SolverTest, ShiftReasoning)
{
    // (1 << x) == 16  =>  x == 4 (for x < 8).
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {
        b.eq(b.shl(b.constant(1, 8), x), b.constant(16, 8)),
        b.ult(x, b.constant(8, 8)),
    };
    EXPECT_TRUE(solver.mustBeTrue(cs, b.eq(x, b.constant(4, 8))).yes());
}

TEST_F(SolverTest, GetValueReturnsConsistentWitness)
{
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(b.constant(100, 32), x),
                               b.ult(x, b.constant(110, 32))};
    uint64_t v = 0;
    ASSERT_TRUE(solver.getValue(cs, x, &v).isSat());
    EXPECT_GT(v, 100u);
    EXPECT_LT(v, 110u);
}

TEST_F(SolverTest, GetValueOnUnsatReturnsNothing)
{
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(1, 8)),
                               b.ult(b.constant(1, 8), x)};
    uint64_t v = 0;
    EXPECT_TRUE(solver.getValue(cs, x, &v).isUnsat());
}

TEST_F(SolverTest, GetRangeExact)
{
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {b.uge(x, b.constant(17, 8)),
                               b.ule(x, b.constant(63, 8))};
    uint64_t lo = 0, hi = 0;
    ASSERT_TRUE(solver.getRange(cs, x, &lo, &hi).isSat());
    EXPECT_EQ(lo, 17u);
    EXPECT_EQ(hi, 63u);
}

TEST_F(SolverTest, GetRangeOfDerivedExpr)
{
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {b.ule(x, b.constant(10, 8))};
    uint64_t lo = 0, hi = 0;
    ASSERT_TRUE(
        solver.getRange(cs, b.add(x, b.constant(5, 8)), &lo, &hi).isSat());
    EXPECT_EQ(lo, 5u);
    EXPECT_EQ(hi, 15u);
}

TEST_F(SolverTest, CheckBranchBothFeasible)
{
    ExprRef x = b.var("x", 8);
    auto f = solver.checkBranch({}, b.ult(x, b.constant(5, 8)));
    EXPECT_TRUE(f.trueSide.yes());
    EXPECT_TRUE(f.falseSide.yes());
}

TEST_F(SolverTest, CheckBranchOnlyOneFeasible)
{
    ExprRef x = b.var("x", 8);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(3, 8))};
    auto f = solver.checkBranch(cs, b.ult(x, b.constant(10, 8)));
    EXPECT_TRUE(f.trueSide.yes());
    EXPECT_TRUE(f.falseSide.no());
}

TEST_F(SolverTest, IndependenceSlicing)
{
    // Unrelated constraints should not affect the query result and
    // should be sliced away (visible in stats).
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs;
    for (int i = 0; i < 10; ++i) {
        ExprRef z = b.freshVar("z", 32);
        cs.push_back(b.eq(z, b.constant(i, 32)));
    }
    cs.push_back(b.ult(x, b.constant(4, 32)));
    EXPECT_TRUE(solver.mayBeTrue(cs, b.eq(x, b.constant(3, 32))).yes());
    EXPECT_GT(solver.stats().get("solver.constraints_sliced_away"), 0u);
}

TEST_F(SolverTest, ModelCacheHitsOnRepeatedQueries)
{
    ExprRef x = b.var("x", 16);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(100, 16))};
    EXPECT_TRUE(solver.mayBeTrue(cs, b.ult(x, b.constant(50, 16))).yes());
    uint64_t sat_before = solver.stats().get("solver.sat_queries");
    EXPECT_TRUE(solver.mayBeTrue(cs, b.ult(x, b.constant(50, 16))).yes());
    // Second identical query should reuse the cached model.
    EXPECT_EQ(solver.stats().get("solver.sat_queries"), sat_before);
}

TEST_F(SolverTest, GetInitialValuesCoversVariables)
{
    ExprRef x = b.var("x", 8);
    ExprRef y = b.var("y", 8);
    std::vector<ExprRef> cs = {b.eq(b.add(x, y), b.constant(9, 8)),
                               b.ult(x, b.constant(3, 8))};
    Assignment model;
    ASSERT_TRUE(solver.getInitialValues(cs, &model).isSat());
    for (ExprRef c : cs)
        EXPECT_TRUE(expr::evaluateBool(c, model));
}

TEST_F(SolverTest, IteConstraint)
{
    // ite(x < 5, 1, 2) == 2  =>  x >= 5
    ExprRef x = b.var("x", 8);
    ExprRef sel = b.ite(b.ult(x, b.constant(5, 8)), b.constant(1, 8),
                        b.constant(2, 8));
    std::vector<ExprRef> cs = {b.eq(sel, b.constant(2, 8))};
    EXPECT_TRUE(solver.mustBeTrue(cs, b.uge(x, b.constant(5, 8))).yes());
}

TEST_F(SolverTest, SymbolicPointerStyleIteChain)
{
    // Model of a symbolic memory read lowered to an ite chain: the
    // page-content-passing scheme from §5.
    ExprRef idx = b.var("idx", 8);
    ExprRef read = b.constant(0, 8);
    uint8_t content[16];
    for (int i = 0; i < 16; ++i)
        content[i] = static_cast<uint8_t>(i * 7 + 3);
    for (int i = 15; i >= 0; --i) {
        read = b.ite(b.eq(idx, b.constant(i, 8)),
                     b.constant(content[i], 8), read);
    }
    std::vector<ExprRef> cs = {b.ult(idx, b.constant(16, 8)),
                               b.eq(read, b.constant(content[11], 8))};
    Assignment model;
    ASSERT_EQ(solver.checkSat(cs, b.trueExpr(), &model).result,
              CheckResult::Sat);
    // content[11] is unique in the table, so idx must be 11.
    EXPECT_EQ(expr::evaluate(idx, model), 11u);
}

/**
 * Exhaustive bit-blaster verification on 4-bit operands: every binary
 * operator is checked against the evaluator for all 256 input pairs.
 */
class BlastExhaustiveTest : public ::testing::TestWithParam<Kind>
{
};

TEST_P(BlastExhaustiveTest, MatchesEvaluatorOn4Bits)
{
    Kind kind = GetParam();
    ExprBuilder b;
    Solver solver(b);
    ExprRef x = b.var("x", 4);
    ExprRef y = b.var("y", 4);

    ExprRef e;
    switch (kind) {
      case Kind::Add: e = b.add(x, y); break;
      case Kind::Sub: e = b.sub(x, y); break;
      case Kind::Mul: e = b.mul(x, y); break;
      case Kind::UDiv: e = b.udiv(x, y); break;
      case Kind::SDiv: e = b.sdiv(x, y); break;
      case Kind::URem: e = b.urem(x, y); break;
      case Kind::SRem: e = b.srem(x, y); break;
      case Kind::And: e = b.bAnd(x, y); break;
      case Kind::Or: e = b.bOr(x, y); break;
      case Kind::Xor: e = b.bXor(x, y); break;
      case Kind::Shl: e = b.shl(x, y); break;
      case Kind::LShr: e = b.lshr(x, y); break;
      case Kind::AShr: e = b.ashr(x, y); break;
      default: FAIL() << "unsupported kind";
    }

    for (uint64_t xv = 0; xv < 16; ++xv) {
        for (uint64_t yv = 0; yv < 16; ++yv) {
            uint64_t expect =
                expr::ExprBuilder::foldBinary(kind, xv, yv, 4);
            std::vector<ExprRef> cs = {
                b.eq(x, b.constant(xv, 4)),
                b.eq(y, b.constant(yv, 4)),
            };
            ASSERT_TRUE(
                solver.mustBeTrue(cs, b.eq(e, b.constant(expect, 4)))
                    .yes())
                << expr::kindName(kind) << "(" << xv << ", " << yv
                << ") != " << expect;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllBinaryOps, BlastExhaustiveTest,
    ::testing::Values(Kind::Add, Kind::Sub, Kind::Mul, Kind::UDiv,
                      Kind::SDiv, Kind::URem, Kind::SRem, Kind::And,
                      Kind::Or, Kind::Xor, Kind::Shl, Kind::LShr,
                      Kind::AShr),
    [](const ::testing::TestParamInfo<Kind> &info) {
        return expr::kindName(info.param);
    });

/** Exhaustive comparison-operator verification on 4-bit operands. */
class BlastCompareTest : public ::testing::TestWithParam<Kind>
{
};

TEST_P(BlastCompareTest, MatchesEvaluatorOn4Bits)
{
    Kind kind = GetParam();
    ExprBuilder b;
    Solver solver(b);
    ExprRef x = b.var("x", 4);
    ExprRef y = b.var("y", 4);

    ExprRef e;
    switch (kind) {
      case Kind::Eq: e = b.eq(x, y); break;
      case Kind::Ult: e = b.ult(x, y); break;
      case Kind::Ule: e = b.ule(x, y); break;
      case Kind::Slt: e = b.slt(x, y); break;
      case Kind::Sle: e = b.sle(x, y); break;
      default: FAIL();
    }

    for (uint64_t xv = 0; xv < 16; ++xv) {
        for (uint64_t yv = 0; yv < 16; ++yv) {
            bool expect =
                expr::ExprBuilder::foldBinary(kind, xv, yv, 4) != 0;
            std::vector<ExprRef> cs = {
                b.eq(x, b.constant(xv, 4)),
                b.eq(y, b.constant(yv, 4)),
            };
            ASSERT_TRUE(
                solver.mustBeTrue(cs, expect ? e : b.lnot(e)).yes())
                << expr::kindName(kind) << "(" << xv << ", " << yv << ")";
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllCompareOps, BlastCompareTest,
    ::testing::Values(Kind::Eq, Kind::Ult, Kind::Ule, Kind::Slt, Kind::Sle),
    [](const ::testing::TestParamInfo<Kind> &info) {
        return expr::kindName(info.param);
    });

/**
 * Regression: constant-divisor division once mis-blasted because the
 * mux gate's t == !f shortcut had inverted polarity (and a stale
 * seen_ flag bug lurked in conflict analysis). Exhaustive 4-bit check
 * with the divisor as an expression *constant* (not a constrained
 * variable), which exercises the constant-input gate shortcuts.
 */
TEST_F(SolverTest, ConstantOperandOpsExhaustive4Bit)
{
    ExprRef x = b.var("creg", 4);
    for (uint64_t d = 0; d < 16; ++d) {
        ExprRef dc = b.constant(d, 4);
        ExprRef ops[] = {b.udiv(x, dc), b.urem(x, dc), b.sdiv(x, dc),
                         b.srem(x, dc), b.shl(x, dc), b.lshr(x, dc)};
        Kind kinds[] = {Kind::UDiv, Kind::URem, Kind::SDiv,
                        Kind::SRem, Kind::Shl, Kind::LShr};
        for (int k = 0; k < 6; ++k) {
            for (uint64_t v = 0; v < 16; ++v) {
                uint64_t expect =
                    ExprBuilder::foldBinary(kinds[k], v, d, 4);
                std::vector<ExprRef> cs = {b.eq(x, b.constant(v, 4))};
                ASSERT_TRUE(
                    solver
                        .mustBeTrue(cs,
                                    b.eq(ops[k], b.constant(expect, 4)))
                        .yes())
                    << expr::kindName(kinds[k]) << "(" << v << ", " << d
                    << ")";
            }
        }
    }
}

TEST_F(SolverTest, SatModelsAreVerified)
{
    // Deep check that bigger blasted instances produce models that
    // satisfy the clause database (guards the CDCL invariants).
    sat::SatSolver ss;
    BitBlaster blaster(ss);
    ExprRef x = b.var("mv_x", 16);
    ExprRef y = b.var("mv_y", 16);
    blaster.assertTrue(
        b.eq(b.mul(x, y), b.constant(12345, 16)));
    blaster.assertTrue(b.ult(x, y));
    ASSERT_EQ(ss.solve(), sat::SatResult::Sat);
    EXPECT_TRUE(ss.verifyModel());
    uint64_t xv = blaster.modelValue(x);
    uint64_t yv = blaster.modelValue(y);
    EXPECT_EQ((xv * yv) & 0xFFFF, 12345u);
    EXPECT_LT(xv, yv);
}

/** Randomized cross-check: solver models satisfy original constraints. */
TEST_F(SolverTest, PropertyModelsSatisfyConstraints)
{
    Rng rng(55);
    for (int iter = 0; iter < 60; ++iter) {
        ExprRef x = b.freshVar("px", 16);
        ExprRef y = b.freshVar("py", 16);
        std::vector<ExprRef> cs;
        int n = 1 + static_cast<int>(rng.below(4));
        for (int i = 0; i < n; ++i) {
            ExprRef lhs = rng.chance(0.5) ? x : y;
            ExprRef rhs = rng.chance(0.5)
                              ? b.constant(rng.next(), 16)
                              : b.add(rng.chance(0.5) ? x : y,
                                      b.constant(rng.below(100), 16));
            switch (rng.below(3)) {
              case 0: cs.push_back(b.ult(lhs, rhs)); break;
              case 1: cs.push_back(b.ule(lhs, rhs)); break;
              default: cs.push_back(b.ne(lhs, rhs)); break;
            }
        }
        Assignment model;
        QueryOutcome res = solver.checkSat(cs, b.trueExpr(), &model);
        if (res.isSat()) {
            for (ExprRef c : cs)
                ASSERT_TRUE(expr::evaluateBool(c, model))
                    << c->toString();
        }
    }
}

TEST_F(SolverTest, WideWidthArithmetic)
{
    // 64-bit reasoning.
    ExprRef x = b.var("x", 64);
    std::vector<ExprRef> cs = {
        b.eq(b.mul(x, b.constant(1000000007ULL, 64)),
             b.constant(1000000007ULL * 123456789ULL, 64)),
        b.ult(x, b.constant(1ULL << 32, 64)),
    };
    uint64_t v = 0;
    ASSERT_TRUE(solver.getValue(cs, x, &v).isSat());
    EXPECT_EQ(v, 123456789u);
}

TEST_F(SolverTest, ConflictBudgetYieldsUnknown)
{
    // A hard multiplicative query with a 1-conflict budget cannot be
    // decided; the solver must answer Unknown rather than guessing.
    // Note: the query must be phrased so slicing keeps the hard
    // constraint (independence assumes the constraint set itself is
    // satisfiable; see Solver docs).
    SolverOptions opts;
    opts.maxConflicts = 1;
    opts.maxRetries = 0; // no escalation: test the raw budget
    opts.useModelCache = false;
    opts.useIndependence = false;
    Solver limited(b, opts);
    std::vector<ExprRef> cs = pigeonhole(b, 5, 4);

    QueryOutcome res = limited.checkSat(cs, b.trueExpr());
    EXPECT_TRUE(res.isUnknown());
    EXPECT_FALSE(res.timedOut); // conflict budget, not the deadline
    EXPECT_GT(limited.stats().get("solver.unknown_results"), 0u);

    // An unlimited solver proves it unsatisfiable.
    SolverOptions plain_opts;
    plain_opts.useIndependence = false;
    Solver plain(b, plain_opts);
    EXPECT_TRUE(plain.checkSat(cs, b.trueExpr()).isUnsat());
}

TEST_F(SolverTest, PredicateQueriesReportUnknownUnderBudget)
{
    // mayBeTrue / mustBeTrue / getRange must all surface Unknown (never
    // a silent definite answer) when the budget is too small.
    SolverOptions opts;
    opts.maxConflicts = 1;
    opts.maxRetries = 0;
    opts.useModelCache = false;
    opts.useIndependence = false;
    Solver limited(b, opts);
    std::vector<ExprRef> cs = pigeonhole(b, 5, 4);

    ExprRef x = b.var("pqx", 8);
    EXPECT_TRUE(limited.mayBeTrue(cs, b.ult(x, b.constant(5, 8)))
                    .isUnknown());
    EXPECT_TRUE(limited.mustBeTrue(cs, b.ult(x, b.constant(5, 8)))
                    .isUnknown());
    uint64_t lo = 0xAA, hi = 0xBB;
    auto range = limited.getRange(cs, x, &lo, &hi);
    EXPECT_TRUE(range.isUnknown());
    // Out-params untouched on a non-Sat outcome.
    EXPECT_EQ(lo, 0xAAu);
    EXPECT_EQ(hi, 0xBBu);

    // checkBranch: an Unknown true side must NOT be short-circuited
    // into a feasible false side (the old unsound fast path).
    auto f = limited.checkBranch(cs, b.ult(x, b.constant(5, 8)));
    EXPECT_TRUE(f.trueSide.isUnknown());
    EXPECT_TRUE(f.falseSide.isUnknown());
}

TEST_F(SolverTest, WallClockDeadlineYieldsTimedOutUnknown)
{
    // A 1µs deadline on a hard instance: Unknown with timedOut set.
    SolverOptions opts;
    opts.maxMicros = 1;
    opts.maxRetries = 0;
    opts.useModelCache = false;
    opts.useIndependence = false;
    opts.useSimplifier = false;
    Solver limited(b, opts);
    // PHP(8,7) generates hundreds of conflicts — far past the first
    // deadline check (every 4 conflicts / 256 decisions).
    std::vector<ExprRef> cs = pigeonhole(b, 8, 7);

    QueryOutcome res = limited.checkSat(cs, b.trueExpr());
    EXPECT_TRUE(res.isUnknown());
    EXPECT_TRUE(res.timedOut);
    EXPECT_GT(limited.stats().get("solver.timeouts"), 0u);
}

TEST_F(SolverTest, RetryEscalationSolvesAfterUnknown)
{
    // 1 conflict is not enough for PHP(5,4); a huge escalation factor
    // makes the single retry pass succeed. The outcome records the
    // retry, and the answer is the *correct* one (Unsat).
    SolverOptions opts;
    opts.maxConflicts = 1;
    opts.maxRetries = 1;
    opts.retryMultiplier = 1e6;
    opts.useModelCache = false;
    opts.useIndependence = false;
    Solver limited(b, opts);
    std::vector<ExprRef> cs = pigeonhole(b, 5, 4);

    QueryOutcome res = limited.checkSat(cs, b.trueExpr());
    EXPECT_TRUE(res.isUnsat());
    EXPECT_EQ(res.retries, 1u);
    EXPECT_EQ(limited.stats().get("solver.retries"), 1u);
    EXPECT_EQ(limited.stats().get("solver.unknown_results"), 0u);
}

TEST_F(SolverTest, FaultInjectionTriggersChosenQuery)
{
    ExprRef x = b.var("fx", 8);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 8))};

    FaultPolicy policy;
    policy.enabled = true;
    policy.triggerQueries = {2}; // second query fails
    solver.setFaultPolicy(policy);

    auto first = solver.mayBeTrue(cs, b.ult(x, b.constant(5, 8)));
    EXPECT_TRUE(first.yes());
    auto second = solver.mayBeTrue(cs, b.ult(x, b.constant(5, 8)));
    EXPECT_TRUE(second.isUnknown());
    EXPECT_TRUE(second.timedOut); // injected faults present as timeouts
    EXPECT_EQ(solver.stats().get("solver.faults_injected"), 1u);
    auto third = solver.mayBeTrue(cs, b.ult(x, b.constant(5, 8)));
    EXPECT_TRUE(third.yes());
}

TEST_F(SolverTest, FaultInjectionRateIsDeterministic)
{
    ExprRef x = b.var("frx", 8);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 8))};

    FaultPolicy policy;
    policy.enabled = true;
    policy.seed = 1234;
    policy.unknownRate = 0.5;

    auto run_pattern = [&] {
        solver.setFaultPolicy(policy); // resets RNG + query counter
        std::vector<bool> pattern;
        for (int i = 0; i < 32; ++i)
            pattern.push_back(
                solver.mayBeTrue(cs, b.ult(x, b.constant(5, 8)))
                    .isUnknown());
        return pattern;
    };

    auto a = run_pattern();
    auto bp = run_pattern();
    EXPECT_EQ(a, bp); // same seed => identical fault pattern
    EXPECT_TRUE(std::find(a.begin(), a.end(), true) != a.end());
    EXPECT_TRUE(std::find(a.begin(), a.end(), false) != a.end());

    // Clearing the policy stops injection.
    solver.setFaultPolicy(FaultPolicy{});
    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(solver.mayBeTrue(cs, b.ult(x, b.constant(5, 8)))
                        .yes());
}

TEST_F(SolverTest, GetRangeSingletonAfterConstraints)
{
    ExprRef x = b.var("rx", 16);
    std::vector<ExprRef> cs = {
        b.eq(b.bAnd(x, b.constant(0xFF00, 16)), b.constant(0x1200, 16)),
        b.eq(b.bAnd(x, b.constant(0x00FF, 16)), b.constant(0x0034, 16)),
    };
    uint64_t lo = 0, hi = 0;
    ASSERT_TRUE(solver.getRange(cs, x, &lo, &hi).isSat());
    EXPECT_EQ(lo, 0x1234u);
    EXPECT_EQ(hi, 0x1234u);
}

TEST_F(SolverTest, GetValueSlicesIndependentConstraints)
{
    // getValue over a huge pile of unrelated constraints must not
    // blast them all (this regressed into multi-second concretization
    // stalls during symbolic-pointer loops).
    ExprRef x = b.var("slx", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(50, 32))};
    for (int i = 0; i < 200; ++i) {
        ExprRef z = b.freshVar("slz", 32);
        cs.push_back(b.eq(b.mul(z, z), b.constant(i, 32)));
    }
    uint64_t sat_before = solver.stats().get("solver.sat_queries");
    uint64_t v = 0;
    ASSERT_TRUE(solver.getValue(cs, x, &v).isSat());
    EXPECT_LT(v, 50u);
    // At most a couple of SAT calls; never one per unrelated z.
    EXPECT_LE(solver.stats().get("solver.sat_queries"), sat_before + 2);
}

TEST_F(SolverTest, SimplifierAblationStillCorrect)
{
    SolverOptions opts;
    opts.useSimplifier = false;
    opts.useIndependence = false;
    opts.useModelCache = false;
    Solver plain(b, opts);
    ExprRef x = b.var("xa", 32);
    std::vector<ExprRef> cs = {
        b.eq(b.bAnd(x, b.constant(0xFF, 32)), b.constant(0x42, 32))};
    EXPECT_TRUE(plain.mayBeTrue(cs, b.trueExpr()).yes());
    EXPECT_TRUE(plain
                    .mustBeTrue(cs, b.eq(b.extract(x, 0, 8),
                                         b.constant(0x42, 8)))
                    .yes());
}

TEST(ModelRing, BoundedFifoOverwrite)
{
    ModelRing ring(3);
    auto mk = [](uint64_t id, uint64_t v) {
        Assignment a;
        a.setById(id, v);
        return a;
    };
    EXPECT_TRUE(ring.insert(mk(1, 10)));
    EXPECT_TRUE(ring.insert(mk(2, 20)));
    EXPECT_TRUE(ring.insert(mk(3, 30)));
    EXPECT_EQ(ring.size(), 3u);
    // A fourth insertion overwrites the oldest (id 1), not the newest.
    EXPECT_TRUE(ring.insert(mk(4, 40)));
    EXPECT_EQ(ring.size(), 3u);
    EXPECT_EQ(ring.findNewestFirst(
                  [](const Assignment &a) { return a.has(1); }),
              nullptr);
    for (uint64_t id : {2u, 3u, 4u})
        EXPECT_NE(ring.findNewestFirst(
                      [id](const Assignment &a) { return a.has(id); }),
                  nullptr);
}

TEST(ModelRing, NewestFirstLookupOrder)
{
    ModelRing ring(3);
    for (uint64_t i = 1; i <= 5; ++i) { // leaves {3, 4, 5}, newest 5
        Assignment a;
        a.setById(i, i);
        a.setById(99, i); // shared key: every model matches
        ASSERT_TRUE(ring.insert(std::move(a)));
    }
    const Assignment *hit = ring.findNewestFirst(
        [](const Assignment &a) { return a.has(99); });
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->lookup(99), 5u); // newest wins
    EXPECT_EQ(ring.findNewestFirst(
                  [](const Assignment &a) { return a.has(2); }),
              nullptr); // evicted
}

TEST(ModelRing, DuplicateAssignmentsAreSkipped)
{
    // Regression companion to the ring conversion: repeat queries used
    // to re-insert the identical model and flush older entries.
    ModelRing ring(2);
    Assignment a;
    a.setById(7, 42);
    EXPECT_TRUE(ring.insert(a));
    EXPECT_FALSE(ring.insert(a)); // identical values() => skipped
    EXPECT_EQ(ring.size(), 1u);
    Assignment other;
    other.setById(8, 1);
    EXPECT_TRUE(ring.insert(other));
    EXPECT_FALSE(ring.insert(a)); // still cached, still skipped
    EXPECT_EQ(ring.size(), 2u);
}

TEST_F(SolverTest, CachedModelsMustCoverAllQueryVariables)
{
    // Regression: getValue caches a model over only the *sliced*
    // variables. A later getInitialValues whose constraint set has
    // more variables could hit that partial model (evaluate()'s
    // zero-default makes it "satisfy" the extra constraints) and
    // return it as-is — callers then see no binding at all for the
    // missing variables. The cache hit must extend the model to
    // explicit values covering every variable of the query.
    ExprRef x = b.var("cachx", 32);
    ExprRef y = b.var("cachy", 32);
    std::vector<ExprRef> cs1 = {b.ult(x, b.constant(50, 32))};
    uint64_t v = 0;
    ASSERT_TRUE(solver.getValue(cs1, x, &v).isSat()); // seeds the cache
    ASSERT_LT(v, 50u);

    std::vector<ExprRef> cs2 = {
        b.ult(x, b.constant(50, 32)),
        b.eq(y, b.constant(0, 32)), // y=0: satisfied by the zero-default
    };
    Assignment model;
    ASSERT_TRUE(solver.getInitialValues(cs2, &model).isSat());
    EXPECT_TRUE(model.has(x->varId()));
    EXPECT_TRUE(model.has(y->varId())) // failed before the fix
        << "cache hit returned a model that does not cover y";
    for (ExprRef c : cs2)
        EXPECT_TRUE(expr::evaluateBool(c, model));
}

/** Run a fixed query battery against one solver; collects outcome
 *  kinds plus verified witness values so two solvers can be compared
 *  even when their model bits legitimately differ. */
std::vector<std::string>
queryBattery(Solver &s, ExprBuilder &b, const std::vector<ExprRef> &vars)
{
    std::vector<std::string> log;
    std::vector<ExprRef> cs;
    auto outcome = [](const QueryOutcome &o) {
        return o.isSat() ? "sat" : o.isUnsat() ? "unsat" : "unknown";
    };
    for (size_t i = 0; i < vars.size(); ++i) {
        ExprRef x = vars[i];
        cs.push_back(b.ult(x, b.constant(100 + 10 * i, 32)));
        auto branch =
            s.checkBranch(cs, b.ult(x, b.constant(5, 32)));
        log.push_back(std::string("branchT:") + outcome(branch.trueSide));
        log.push_back(std::string("branchF:") + outcome(branch.falseSide));
        uint64_t v = 0;
        auto gv = s.getValue(cs, b.mul(x, x), &v);
        log.push_back(std::string("getValue:") + outcome(gv));
        log.push_back(
            std::string("must:") +
            outcome(s.mustBeTrue(cs, b.ult(x, b.constant(200, 32)))));
        log.push_back(
            std::string("may:") +
            outcome(s.mayBeTrue(cs, b.eq(x, b.constant(1000, 32)))));
        uint64_t lo = 0, hi = 0;
        auto gr = s.getRange(cs, x, &lo, &hi);
        log.push_back(std::string("range:") + outcome(gr) + ":" +
                      std::to_string(lo) + ":" + std::to_string(hi));
        Assignment m;
        auto gi = s.getInitialValues(cs, &m);
        log.push_back(std::string("init:") + outcome(gi));
        if (gi.isSat()) {
            for (ExprRef c : cs)
                EXPECT_TRUE(expr::evaluateBool(c, m));
        }
    }
    return log;
}

TEST_F(SolverTest, IncrementalContextMatchesFreshAcrossBattery)
{
    // The same battery through (a) a solver with a bound path context
    // and (b) the fresh-per-query oracle must agree on every outcome
    // kind and every range (models may differ bit-for-bit; witnesses
    // are validated semantically inside the battery).
    SolverOptions opts;
    opts.useModelCache = false; // force every query to reach SAT
    Solver incremental(b, opts);
    SolverOptions fresh_opts = opts;
    fresh_opts.useIncremental = false;
    Solver fresh(b, fresh_opts);

    std::vector<ExprRef> vars;
    for (int i = 0; i < 6; ++i)
        vars.push_back(b.freshVar("bat", 32));

    std::shared_ptr<IncrementalContext> slot;
    incremental.bindPathContext(&slot);
    auto inc_log = queryBattery(incremental, b, vars);
    incremental.bindPathContext(nullptr);
    auto fresh_log = queryBattery(fresh, b, vars);

    EXPECT_EQ(inc_log, fresh_log);
    EXPECT_NE(slot, nullptr); // the context was actually created
    EXPECT_GT(incremental.stats().get("solver.ctx_reuses"), 0u);
    EXPECT_GT(incremental.stats().get("solver.gates_saved"), 0u);
    EXPECT_EQ(fresh.stats().get("solver.ctx_reuses"), 0u);
}

TEST_F(SolverTest, IncrementalContextEvictionStaysCorrect)
{
    // A gate high-water of 1 forces an eviction on (nearly) every
    // query; answers must be unaffected and the telemetry must show
    // the evictions.
    SolverOptions opts;
    opts.useModelCache = false;
    opts.maxCtxGates = 1;
    Solver tiny(b, opts);
    std::shared_ptr<IncrementalContext> slot;
    tiny.bindPathContext(&slot);

    ExprRef x = b.var("evx", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(50, 32))};
    for (int i = 0; i < 8; ++i) {
        cs.push_back(b.ult(b.mul(x, b.constant(3 + i, 32)),
                           b.constant(1000 + i, 32)));
        EXPECT_TRUE(tiny.mayBeTrue(cs, b.ult(x, b.constant(40, 32))).yes());
        EXPECT_TRUE(
            tiny.mustBeTrue(cs, b.ult(x, b.constant(50, 32))).yes());
    }
    tiny.bindPathContext(nullptr);
    EXPECT_GT(tiny.stats().get("solver.ctx_evictions"), 0u);
}

TEST_F(SolverTest, IncrementalContextSurvivesInjectedFaults)
{
    // A forced-Unknown query must leave the persistent context usable:
    // subsequent queries on the same path answer correctly.
    SolverOptions opts;
    opts.useModelCache = false;
    Solver s(b, opts);
    std::shared_ptr<IncrementalContext> slot;
    s.bindPathContext(&slot);

    ExprRef x = b.var("fcx", 8);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 8))};
    ASSERT_TRUE(s.mayBeTrue(cs, b.ult(x, b.constant(5, 8))).yes());
    ASSERT_NE(slot, nullptr);

    FaultPolicy policy;
    policy.enabled = true;
    policy.triggerQueries = {1}; // next query fails
    s.setFaultPolicy(policy);
    EXPECT_TRUE(s.mayBeTrue(cs, b.ult(x, b.constant(5, 8))).isUnknown());
    s.setFaultPolicy(FaultPolicy{});

    cs.push_back(b.ugt(x, b.constant(3, 8)));
    EXPECT_TRUE(s.mustBeTrue(cs, b.ult(x, b.constant(10, 8))).yes());
    EXPECT_TRUE(s.mayBeTrue(cs, b.eq(x, b.constant(20, 8))).no());
    s.bindPathContext(nullptr);
}

TEST_F(SolverTest, IncrementalContextCoexistsWithModelCache)
{
    // Default options: model cache ON and incremental ON. Cache hits
    // bypass the context; misses go through it. Answers stay correct
    // and cached models keep satisfying the constraints they answer.
    std::shared_ptr<IncrementalContext> slot;
    solver.bindPathContext(&slot);
    ExprRef x = b.var("mcx", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(64, 32))};
    uint64_t v1 = 0, v2 = 0;
    ASSERT_TRUE(solver.getValue(cs, x, &v1).isSat());
    ASSERT_TRUE(solver.getValue(cs, x, &v2).isSat()); // cache hit path
    EXPECT_EQ(v1, v2);
    EXPECT_LT(v1, 64u);
    cs.push_back(b.ugt(x, b.constant(60, 32)));
    uint64_t v3 = 0;
    ASSERT_TRUE(solver.getValue(cs, x, &v3).isSat());
    EXPECT_GT(v3, 60u);
    EXPECT_LT(v3, 64u);
    solver.bindPathContext(nullptr);
}

} // namespace
} // namespace s2e::solver
