/**
 * @file
 * Record/replay witness suite: every terminated path yields an
 * `s2e.witness.v1` witness whose concrete input assignment and
 * nondeterminism log replay the path solver-free to the identical
 * terminal outcome. Covers byte-identical witnesses across
 * numWorkers ∈ {1, 2, 4} (the witness is a pure function of the
 * path, not the schedule), full-coverage model extraction (no
 * default-zero holes), serialize→parse→serialize round trips, the
 * corruption harness (bit flips / truncation / wrong version reject
 * before any state is touched), divergence detection on tampered
 * witnesses, and the emitWitnesses / witnessDir configuration knobs.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/engine.hh"
#include "core/replay/replayer.hh"
#include "core/replay/witness.hh"
#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "plugins/annotation.hh"
#include "support/logging.hh"
#include "tools/ddt.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::core {
namespace {

namespace fs = std::filesystem;
using replay::Witness;

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = guest::kRamSize,
           bool loopback = false)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [loopback](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        auto nic = std::make_unique<vm::DmaNic>();
        nic->setLoopback(loopback);
        devices.add(std::move(nic));
    };
    return m;
}

/** Differential witness config: no budgets (budget kills land at
 *  schedule-dependent points) and no model cache (cached models make
 *  extraction depend on query history). */
EngineConfig
witnessConfig(unsigned workers)
{
    EngineConfig config;
    config.numWorkers = workers;
    config.solverOptions.useModelCache = false;
    config.emitWitnesses = true;
    return config;
}

struct WitnessRun {
    /** pathId → serialized witness image. */
    std::map<std::string, std::vector<uint8_t>> images;
    std::vector<std::shared_ptr<const replay::Witness>> witnesses;
    RunResult run;
};

void
collectWitnesses(Engine &engine, WitnessRun &out)
{
    out.witnesses = engine.witnesses();
    for (const auto &w : out.witnesses) {
        bool fresh =
            out.images.emplace(w->pathId, replay::serializeWitness(*w))
                .second;
        EXPECT_TRUE(fresh) << "duplicate witness for path " << w->pathId;
    }
}

void
expectSameImages(const WitnessRun &serial, const WitnessRun &parallel,
                 unsigned workers)
{
    EXPECT_EQ(serial.images.size(), parallel.images.size())
        << "witness count diverged with " << workers << " workers";
    for (const auto &[path, img] : serial.images) {
        auto it = parallel.images.find(path);
        if (it == parallel.images.end()) {
            ADD_FAILURE() << "witness for path " << path
                          << " missing with " << workers << " workers";
            continue;
        }
        EXPECT_TRUE(img == it->second)
            << "witness for path " << path
            << " not byte-identical with " << workers << " workers";
    }
}

constexpr unsigned kWorkerCounts[] = {2, 4};

// --- Workload runners ----------------------------------------------------

void
licenseSetup(Engine &engine)
{
    auto &state = engine.initialState();
    uint32_t key_addr = guest::addConfigString(state, engine.builder(), 0,
                                               "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                           "license");
}

WitnessRun
runLicense(unsigned workers, const std::string &witness_dir = "")
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();
    EngineConfig config = witnessConfig(workers);
    config.witnessDir = witness_dir;
    Engine engine(machineFor(src), config);
    licenseSetup(engine);
    WitnessRun out;
    out.run = engine.run();
    collectWitnesses(engine, out);
    return out;
}

replay::ReplayResult
replayLicense(std::shared_ptr<const Witness> w)
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();
    replay::ReplayEngine rep(machineFor(src), EngineConfig{},
                             std::move(w));
    licenseSetup(rep.engine());
    return rep.run();
}

/** High-fork-rate stress: nine independent symbolic branch bits fork
 *  2^9 = 512 paths (mirrors tests/test_parallel.cc). */
const char *
stressSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: testi r1, 8
        jeq b4
        ori r5, 8
    b4: testi r1, 16
        jeq b5
        ori r5, 16
    b5: testi r1, 32
        jeq b6
        ori r5, 32
    b6: testi r1, 64
        jeq b7
        ori r5, 64
    b7: testi r1, 128
        jeq b8
        ori r5, 128
    b8: testi r1, 256
        jeq b9
        ori r5, 256
    b9: movi r3, 0
        movi r4, 0
    work:
        add r3, r5
        addi r4, 1
        cmpi r4, 20
        jne work
        hlt
    )";
}

WitnessRun
runStress(unsigned workers)
{
    Engine engine(machineFor(stressSource(), 64 * 1024),
                  witnessConfig(workers));
    WitnessRun out;
    out.run = engine.run();
    collectWitnesses(engine, out);
    return out;
}

replay::ReplayResult
replayStress(std::shared_ptr<const Witness> w)
{
    replay::ReplayEngine rep(machineFor(stressSource(), 64 * 1024),
                             EngineConfig{}, std::move(w));
    return rep.run();
}

/** DDT+ over the PIO NIC under SC-SE: the only symbolic input is the
 *  hardware, and the workload terminates without budgets (budget
 *  kills would make witness sets schedule-dependent). */
tools::DdtConfig
ddtConfig(unsigned workers)
{
    tools::DdtConfig config;
    config.driver = guest::DriverKind::Pio;
    config.model = ConsistencyModel::ScSe;
    config.annotations = false;
    config.maxInstructions = 0;
    config.maxWallSeconds = 0;
    config.numWorkers = workers;
    config.emitWitnesses = true;
    config.solverOptions.useModelCache = false;
    return config;
}

WitnessRun
runDdt(unsigned workers)
{
    tools::Ddt ddt(ddtConfig(workers));
    WitnessRun out;
    out.run = ddt.run().run;
    collectWitnesses(ddt.engine(), out);
    return out;
}

replay::ReplayResult
replayDdt(std::shared_ptr<const Witness> w, RunResult *run_out = nullptr)
{
    tools::DdtConfig config = ddtConfig(1);
    config.emitWitnesses = false;
    config.replayWitness = std::move(w);
    tools::Ddt ddt(config);
    tools::DdtResult res = ddt.run();
    replay::ReplayResult v = replay::replayVerdict(ddt.engine());
    v.instructions = res.run.totalInstructions;
    v.wallSeconds = res.run.wallSeconds;
    if (run_out)
        *run_out = res.run;
    return v;
}

/** Two paths off one symbolic register bit, plus four symbolic bytes
 *  the program never reads (extraction-hole bait). */
const char *
twoPathSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        testi r1, 1
        jeq zero
        movi r2, 1
        hlt
    zero:
        movi r2, 0
        hlt
    )";
}

constexpr uint32_t kPadAddr = 0x4000;

// --- Byte-identical witnesses across worker counts -----------------------

TEST(ReplayWitnessDifferential, LicenseWitnessesByteIdenticalAcrossWorkers)
{
    WitnessRun serial = runLicense(1);
    EXPECT_GT(serial.images.size(), 4u);
    EXPECT_EQ(serial.run.witnessesEmitted, serial.images.size());
    EXPECT_EQ(serial.run.witnessExtractFailures, 0u);
    for (unsigned w : kWorkerCounts)
        expectSameImages(serial, runLicense(w), w);
}

TEST(ReplayWitnessDifferential, ForkStormWitnessesByteIdenticalAcrossWorkers)
{
    WitnessRun serial = runStress(1);
    EXPECT_EQ(serial.images.size(), 512u);
    EXPECT_EQ(serial.run.witnessExtractFailures, 0u);
    for (unsigned w : kWorkerCounts)
        expectSameImages(serial, runStress(w), w);
}

TEST(ReplayWitnessDifferential, DdtWitnessesByteIdenticalAcrossWorkers)
{
    WitnessRun serial = runDdt(1);
    EXPECT_GT(serial.images.size(), 4u);
    EXPECT_EQ(serial.run.witnessExtractFailures, 0u);
    for (unsigned w : kWorkerCounts)
        expectSameImages(serial, runDdt(w), w);
}

// --- Solver-free replay to the identical terminal outcome ----------------

TEST(ReplayWitnessOracle, LicenseEveryPathReplaysSolverFree)
{
    WitnessRun serial = runLicense(1);
    ASSERT_FALSE(serial.witnesses.empty());
    for (const auto &w : serial.witnesses) {
        replay::ReplayResult v = replayLicense(w);
        EXPECT_TRUE(v.ok) << "path " << w->pathId << ": " << v.divergence;
        EXPECT_EQ(v.solverQueries, 0u) << "path " << w->pathId;
        EXPECT_EQ(v.terminalPc, w->terminalPc);
        EXPECT_EQ(v.terminalStatus, w->terminalStatus);
        EXPECT_EQ(v.terminalInstr, w->terminalInstr);
    }
}

TEST(ReplayWitnessOracle, ForkStormSampleReplaysSolverFree)
{
    WitnessRun serial = runStress(1);
    ASSERT_EQ(serial.witnesses.size(), 512u);
    // Every 32nd path: 16 replays spread across the fork tree.
    for (size_t i = 0; i < serial.witnesses.size(); i += 32) {
        const auto &w = serial.witnesses[i];
        replay::ReplayResult v = replayStress(w);
        EXPECT_TRUE(v.ok) << "path " << w->pathId << ": " << v.divergence;
        EXPECT_EQ(v.solverQueries, 0u) << "path " << w->pathId;
    }
}

TEST(ReplayWitnessOracle, DdtEveryPathReplaysAtAllWorkerCounts)
{
    WitnessRun serial = runDdt(1);
    ASSERT_FALSE(serial.witnesses.empty());
    for (const auto &w : serial.witnesses) {
        RunResult run;
        replay::ReplayResult v = replayDdt(w, &run);
        EXPECT_TRUE(v.ok) << "path " << w->pathId << ": " << v.divergence;
        EXPECT_EQ(v.solverQueries, 0u) << "path " << w->pathId;
        EXPECT_EQ(run.replayDivergences, 0u) << "path " << w->pathId;
    }
    // Witnesses recorded by parallel runs replay just as cleanly.
    for (unsigned workers : kWorkerCounts) {
        WitnessRun par = runDdt(workers);
        size_t sample = 0;
        for (const auto &w : par.witnesses) {
            if (sample++ >= 5)
                break;
            replay::ReplayResult v = replayDdt(w);
            EXPECT_TRUE(v.ok) << "path " << w->pathId << " (" << workers
                              << " workers): " << v.divergence;
            EXPECT_EQ(v.solverQueries, 0u);
        }
    }
}

TEST(ReplayWitnessOracle, PingInterruptDeliveryReplays)
{
    // Single concrete path through kernel + DMA driver + ping harness:
    // the witness log carries interrupt delivery points (and DMA), not
    // input substitutions.
    std::string src = guest::kernelSource() +
                      guest::driverSource(guest::DriverKind::Dma) +
                      guest::pingSource(/*patched=*/true);
    Engine engine(machineFor(src, guest::kRamSize, /*loopback=*/true),
                  witnessConfig(1));
    guest::setConfig(engine.initialState(), engine.builder(),
                     guest::kCfgCardType, 0);
    engine.run();
    auto witnesses = engine.witnesses();
    ASSERT_GE(witnesses.size(), 1u);

    bool saw_interrupt = false;
    for (const auto &ev : witnesses.front()->events)
        if (ev.kind == replay::SiteKind::Interrupt)
            saw_interrupt = true;
    EXPECT_TRUE(saw_interrupt)
        << "ping witness records no interrupt delivery points";

    replay::ReplayEngine rep(
        machineFor(src, guest::kRamSize, /*loopback=*/true),
        EngineConfig{}, witnesses.front());
    guest::setConfig(rep.engine().initialState(), rep.engine().builder(),
                     guest::kCfgCardType, 0);
    replay::ReplayResult v = rep.run();
    EXPECT_TRUE(v.ok) << v.divergence;
    EXPECT_EQ(v.solverQueries, 0u);
}

// --- Plugin fork decisions (ApiFork) -------------------------------------

/** A plugin fork at `work`: the child takes the r1 = 0 arm. r7 is the
 *  per-path "already forked" latch (the child re-executes the block
 *  from its start, so the callback fires again on it). */
const char *
apiForkSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 1
        jmp work
    work:
        cmpi r1, 0
        jeq zero
        movi r2, 5
        hlt
    zero:
        movi r2, 9
        hlt
    )";
}

void
apiForkAnnotation(Engine &engine, plugins::Annotation &ann,
                  uint32_t work_pc)
{
    ann.at(work_pc, [](ExecutionState &st, Engine &e) {
        if (st.cpu.regs[7].isConcrete() && st.cpu.regs[7].concrete() != 0)
            return;
        st.cpu.regs[7] = Value(uint32_t(1));
        ExecutionState *child = e.forkState(st);
        if (child)
            child->cpu.regs[1] = Value(uint32_t(0));
    });
    (void)engine;
}

TEST(ReplayWitnessOracle, ApiForkRolesRecordAndReplay)
{
    isa::Program prog = isa::assemble(apiForkSource());
    uint32_t work_pc = prog.symbol("work");

    Engine engine(machineFor(apiForkSource(), 64 * 1024),
                  witnessConfig(1));
    plugins::Annotation ann(engine);
    apiForkAnnotation(engine, ann, work_pc);
    engine.run();

    auto witnesses = engine.witnesses();
    ASSERT_EQ(witnesses.size(), 2u);
    for (const auto &w : witnesses) {
        const replay::NondetEvent *fork_ev = nullptr;
        for (const auto &ev : w->events)
            if (ev.kind == replay::SiteKind::ApiFork)
                fork_ev = &ev;
        ASSERT_NE(fork_ev, nullptr)
            << "path " << w->pathId << " has no ApiFork event";
        // Role 0 on the parent path, role 1 on the injected child.
        EXPECT_EQ(fork_ev->a, w->pathId == "0" ? 0u : 1u);

        replay::ReplayEngine rep(machineFor(apiForkSource(), 64 * 1024),
                                 EngineConfig{}, w);
        plugins::Annotation replay_ann(rep.engine());
        apiForkAnnotation(rep.engine(), replay_ann, work_pc);
        replay::ReplayResult v = rep.run();
        EXPECT_TRUE(v.ok) << "path " << w->pathId << ": " << v.divergence;
        EXPECT_EQ(v.solverQueries, 0u);
    }
}

// --- Serialization round trip & corruption harness -----------------------

TEST(ReplayWitnessFormat, RoundTripIsByteIdentical)
{
    WitnessRun serial = runLicense(1);
    ASSERT_FALSE(serial.witnesses.empty());
    for (const auto &w : serial.witnesses) {
        std::vector<uint8_t> img = replay::serializeWitness(*w);
        EXPECT_TRUE(replay::validateWitnessImage(img));
        Witness parsed;
        std::string error;
        ASSERT_TRUE(replay::parseWitness(img, parsed, &error)) << error;
        EXPECT_TRUE(parsed == *w) << "path " << w->pathId;
        EXPECT_TRUE(replay::serializeWitness(parsed) == img)
            << "re-serialization of path " << w->pathId
            << " is not byte-identical";
    }
}

TEST(ReplayWitnessFormat, CorruptImagesAreRejectedNotApplied)
{
    WitnessRun serial = runLicense(1);
    ASSERT_FALSE(serial.witnesses.empty());
    const std::vector<uint8_t> img =
        replay::serializeWitness(*serial.witnesses.front());

    Witness sentinel;
    sentinel.pathId = "sentinel";
    sentinel.terminalPc = 0xDEAD;
    sentinel.inputs.push_back({"keep", 8, 7});

    auto expect_rejected = [&](const std::vector<uint8_t> &bad,
                               const std::string &what) {
        EXPECT_FALSE(replay::validateWitnessImage(bad) &&
                     bad.size() == img.size() && bad == img)
            << what; // only the pristine image may validate
        Witness out = sentinel;
        std::string error;
        EXPECT_FALSE(replay::parseWitness(bad, out, &error)) << what;
        EXPECT_FALSE(error.empty()) << what;
        // Validate-before-apply: the output witness is untouched.
        EXPECT_EQ(out.pathId, "sentinel") << what;
        EXPECT_EQ(out.terminalPc, 0xDEADu) << what;
        ASSERT_EQ(out.inputs.size(), 1u) << what;
        EXPECT_EQ(out.inputs[0].name, "keep") << what;
    };

    // Single-bit corruption anywhere in the image. The only bytes a
    // flip may survive are the header's reserved u32 (offsets 12-15,
    // ignored by checkImage) — and then the parse must still yield
    // the original witness, untouched by the flip.
    for (size_t off = 0; off < img.size();
         off += std::max<size_t>(1, img.size() / 64)) {
        std::vector<uint8_t> bad = img;
        bad[off] ^= 0x40;
        if (off >= 12 && off < 16) {
            Witness out;
            ASSERT_TRUE(replay::parseWitness(bad, out))
                << "reserved-byte flip at offset " << off;
            EXPECT_TRUE(out == *serial.witnesses.front());
            continue;
        }
        expect_rejected(bad, strprintf("bit flip at offset %zu", off));
    }

    // Truncation at header, mid-payload and off-by-one boundaries.
    for (size_t n : {size_t(0), size_t(8), size_t(31), img.size() / 2,
                     img.size() - 1}) {
        std::vector<uint8_t> bad(img.begin(), img.begin() + n);
        expect_rejected(bad, strprintf("truncated to %zu bytes", n));
    }

    // Wrong format version (offset 8, little-endian u32; the payload
    // checksum is still valid, the version gate alone must reject).
    {
        std::vector<uint8_t> bad = img;
        bad[8] = static_cast<uint8_t>(replay::kWitnessFormatVersion + 1);
        std::string error;
        EXPECT_FALSE(replay::validateWitnessImage(bad, &error));
        EXPECT_NE(error.find("version"), std::string::npos) << error;
        expect_rejected(bad, "wrong format version");
    }
}

// --- Model extraction covers every symbolic byte -------------------------

TEST(ReplayWitnessExtraction, AssignmentCoversAllSymbolicBytes)
{
    // One constrained 32-bit register variable plus four symbolic
    // bytes the program never reads: the extracted assignment must
    // cover all five (a zero-default extractor would drop the four
    // unconstrained bytes, and could violate the reg constraint).
    Engine engine(machineFor(twoPathSource(), 64 * 1024),
                  witnessConfig(1));
    engine.makeMemSymbolic(engine.initialState(), kPadAddr, 4, "pad");
    RunResult run = engine.run();
    EXPECT_EQ(run.witnessExtractFailures, 0u);
    auto witnesses = engine.witnesses();
    ASSERT_EQ(witnesses.size(), 2u);

    bool saw_bit_set = false, saw_bit_clear = false;
    for (const auto &w : witnesses) {
        ASSERT_EQ(w->inputs.size(), 5u)
            << "path " << w->pathId
            << ": extraction left holes in the assignment";
        size_t pad_bytes = 0;
        const replay::WitnessInput *reg = nullptr;
        for (const auto &in : w->inputs) {
            if (in.width == 8) {
                pad_bytes++;
                EXPECT_EQ(in.name.rfind("pad", 0), 0u) << in.name;
            } else {
                EXPECT_EQ(in.width, 32u) << in.name;
                reg = &in;
            }
        }
        EXPECT_EQ(pad_bytes, 4u);
        ASSERT_NE(reg, nullptr);
        // The model must satisfy the path constraint on bit 0 — a
        // default-zero value would break the bit-set path.
        if (reg->value & 1)
            saw_bit_set = true;
        else
            saw_bit_clear = true;
    }
    EXPECT_TRUE(saw_bit_set);
    EXPECT_TRUE(saw_bit_clear);
}

// --- Divergence detection ------------------------------------------------

TEST(ReplayWitnessDivergence, TamperedBranchChoiceReportsFirstMismatch)
{
    WitnessRun serial = runLicense(1);
    ASSERT_FALSE(serial.witnesses.empty());
    // Flip the recorded direction of the first branch site.
    Witness tampered = *serial.witnesses.front();
    replay::NondetEvent *branch = nullptr;
    for (auto &ev : tampered.events)
        if (ev.kind == replay::SiteKind::Branch) {
            branch = &ev;
            break;
        }
    ASSERT_NE(branch, nullptr) << "license witness has no branch sites";
    branch->a ^= 0x40;

    replay::ReplayResult v = replayLicense(
        std::make_shared<const Witness>(std::move(tampered)));
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.divergence.find("branch"), std::string::npos)
        << v.divergence;
}

TEST(ReplayWitnessDivergence, TamperedInputValueDivergesAtItsBranch)
{
    Engine engine(machineFor(twoPathSource(), 64 * 1024),
                  witnessConfig(1));
    engine.makeMemSymbolic(engine.initialState(), kPadAddr, 4, "pad");
    engine.run();
    auto witnesses = engine.witnesses();
    ASSERT_EQ(witnesses.size(), 2u);

    // Flip the decision bit of the register input: the replayed
    // execution takes the other arm and must report the branch site.
    Witness tampered = *witnesses.front();
    bool flipped = false;
    for (auto &in : tampered.inputs)
        if (in.width == 32) {
            in.value ^= 1;
            flipped = true;
        }
    ASSERT_TRUE(flipped);

    replay::ReplayEngine rep(machineFor(twoPathSource(), 64 * 1024),
                             EngineConfig{},
                             std::make_shared<const Witness>(
                                 std::move(tampered)));
    rep.engine().makeMemSymbolic(rep.engine().initialState(), kPadAddr, 4,
                                 "pad");
    replay::ReplayResult v = rep.run();
    EXPECT_FALSE(v.ok);
    EXPECT_NE(v.divergence.find("branch"), std::string::npos)
        << v.divergence;
    ASSERT_NE(rep.engine().replayCursor(), nullptr);
    EXPECT_TRUE(rep.engine().replayCursor()->diverged());
}

// --- Configuration knobs -------------------------------------------------

TEST(ReplayWitnessConfig, EmissionIsOffByDefault)
{
    EngineConfig config;
    config.solverOptions.useModelCache = false;
    Engine engine(machineFor(twoPathSource(), 64 * 1024), config);
    RunResult run = engine.run();
    EXPECT_TRUE(engine.witnesses().empty());
    EXPECT_EQ(run.witnessesEmitted, 0u);
}

TEST(ReplayWitnessConfig, RcCcPathsAreNotWitnessed)
{
    // RC-CC ignores feasibility: its paths may be infeasible, so no
    // sound concrete model exists and recording stays disabled.
    EngineConfig config = witnessConfig(1);
    config.model = ConsistencyModel::RcCc;
    Engine engine(machineFor(twoPathSource(), 64 * 1024), config);
    RunResult run = engine.run();
    EXPECT_TRUE(engine.witnesses().empty());
    EXPECT_EQ(run.witnessesEmitted, 0u);
}

TEST(ReplayWitnessConfig, WitnessDirHoldsByteIdenticalImages)
{
    fs::path dir = fs::temp_directory_path() /
                   strprintf("s2e-witness-test-%ld", (long)getpid());
    fs::remove_all(dir);
    WitnessRun serial = runLicense(1, dir.string());
    ASSERT_FALSE(serial.images.empty());
    for (const auto &[path_id, img] : serial.images) {
        fs::path file = dir / (path_id + ".witness");
        ASSERT_TRUE(fs::exists(file)) << file;
        std::ifstream in(file, std::ios::binary);
        std::vector<uint8_t> bytes(
            (std::istreambuf_iterator<char>(in)),
            std::istreambuf_iterator<char>());
        EXPECT_TRUE(bytes == img)
            << "on-disk witness for path " << path_id
            << " differs from the in-memory image";
    }
    fs::remove_all(dir);
}

} // namespace
} // namespace s2e::core
