/** @file Tests for the observability layer: phase profiler, fork-tree
 *  recorder, heartbeats, run reports — plus the event-hub unsubscribe
 *  and tracer-truncation plumbing they rely on. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "core/engine.hh"
#include "obs/forktree.hh"
#include "obs/heartbeat.hh"
#include "obs/json.hh"
#include "obs/profiler.hh"
#include "obs/report.hh"
#include "plugins/tracer.hh"
#include "vm/devices.hh"

namespace s2e::obs {
namespace {

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = 256 * 1024)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    return m;
}

/** Three sequential symbolic branches -> 8 paths, 7 forks. */
const char *kThreeBranches = R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: hlt
)";

// ---------------------------------------------------------------- Signal

TEST(Signal, UnsubscribeStopsDeliveryAndKeepsOtherHandlesValid)
{
    core::Signal<int> sig;
    EXPECT_TRUE(sig.empty());

    int a = 0, b = 0;
    size_t ha = sig.subscribe([&](int v) { a += v; });
    size_t hb = sig.subscribe([&](int v) { b += v; });
    EXPECT_FALSE(sig.empty());

    sig.emit(5);
    EXPECT_EQ(a, 5);
    EXPECT_EQ(b, 5);

    sig.unsubscribe(ha);
    sig.emit(3);
    EXPECT_EQ(a, 5); // no longer delivered
    EXPECT_EQ(b, 8); // hb unaffected

    sig.unsubscribe(hb);
    EXPECT_TRUE(sig.empty());

    // Double and stale unsubscribes are harmless no-ops.
    sig.unsubscribe(ha);
    sig.unsubscribe(12345);
    sig.emit(1);
    EXPECT_EQ(a, 5);
    EXPECT_EQ(b, 8);
}

// ------------------------------------------------------------- Profiler

uint64_t g_fakeNow = 0;
uint64_t
fakeClock()
{
    return g_fakeNow;
}

TEST(PhaseProfiler, ExclusiveTimeChargesInnermostSpanOnly)
{
    PhaseProfiler p(true);
    p.setClockForTest(&fakeClock);
    g_fakeNow = 0;

    p.push(Phase::ConcreteExec);
    g_fakeNow = 100;
    p.push(Phase::SymbolicExec); // 100ns so far belong to ConcreteExec
    g_fakeNow = 250;
    p.pop(); // 150ns belong to SymbolicExec
    g_fakeNow = 400;
    p.pop(); // another 150ns for ConcreteExec

    EXPECT_EQ(p.stat(Phase::ConcreteExec).spans, 1u);
    EXPECT_EQ(p.stat(Phase::ConcreteExec).exclusiveNanos, 250u);
    EXPECT_EQ(p.stat(Phase::SymbolicExec).spans, 1u);
    EXPECT_EQ(p.stat(Phase::SymbolicExec).exclusiveNanos, 150u);
    EXPECT_EQ(p.stat(Phase::Solver).spans, 0u);
    EXPECT_DOUBLE_EQ(p.totalSeconds(), 400e-9);
}

TEST(PhaseProfiler, NestedSameSpanAndReset)
{
    PhaseProfiler p(true);
    p.setClockForTest(&fakeClock);
    g_fakeNow = 0;

    p.push(Phase::Solver);
    g_fakeNow = 10;
    p.push(Phase::Solver); // nested solver-in-solver
    g_fakeNow = 30;
    p.pop();
    g_fakeNow = 35;
    p.pop();

    EXPECT_EQ(p.stat(Phase::Solver).spans, 2u);
    EXPECT_EQ(p.stat(Phase::Solver).exclusiveNanos, 35u);

    p.reset();
    EXPECT_EQ(p.stat(Phase::Solver).spans, 0u);
    EXPECT_DOUBLE_EQ(p.totalSeconds(), 0.0);
}

TEST(PhaseProfiler, DisabledRecordsNothing)
{
    PhaseProfiler p(false);
    p.setClockForTest(&fakeClock);
    g_fakeNow = 0;
    {
        PhaseSpan s(p, Phase::Translate);
        g_fakeNow = 1000;
    }
    EXPECT_EQ(p.stat(Phase::Translate).spans, 0u);
    EXPECT_DOUBLE_EQ(p.totalSeconds(), 0.0);

    // The nullable-pointer form used by the solver must also be safe.
    PhaseSpan null_span(static_cast<PhaseProfiler *>(nullptr),
                        Phase::Solver);
}

TEST(PhaseProfiler, FlushToStatsUsesSetSemantics)
{
    PhaseProfiler p(true);
    p.setClockForTest(&fakeClock);
    g_fakeNow = 0;
    p.push(Phase::Fork);
    g_fakeNow = 500;
    p.pop();

    Stats stats;
    p.flushTo(stats, "engine.phase");
    p.flushTo(stats, "engine.phase"); // repeat flush must not double
    EXPECT_DOUBLE_EQ(stats.seconds("engine.phase.fork"), 500e-9);
    EXPECT_EQ(stats.get("engine.phase.fork.spans"), 1u);
    EXPECT_EQ(stats.get("engine.phase.translate.spans"), 0u);
}

// ----------------------------------------------------------- JsonWriter

TEST(JsonWriter, SeparatorsAndEscaping)
{
    JsonWriter w;
    w.beginObject();
    w.field("a", 1);
    w.key("arr").beginArray();
    w.value(uint64_t(2)).value("x").value(true).null();
    w.endArray();
    w.field("s", std::string("q\"z\n"));
    w.field("f", 0.5);
    w.endObject();
    EXPECT_EQ(w.str(),
              "{\"a\":1,\"arr\":[2,\"x\",true,null],"
              "\"s\":\"q\\\"z\\n\",\"f\":0.5}");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    JsonWriter w;
    w.beginArray().value(1.0 / 0.0).endArray();
    EXPECT_EQ(w.str(), "[null]");
}

// ------------------------------------------------------------ Fork tree

TEST(ForkTree, RecordsMultiPathRunAndDotRoundTrips)
{
    core::Engine engine(machineFor(kThreeBranches), core::EngineConfig{});
    ForkTreeRecorder recorder(engine.events());
    core::RunResult r = engine.run();
    ASSERT_EQ(r.statesCreated, 8u);

    EXPECT_EQ(recorder.forkCount(), 7u);
    EXPECT_EQ(recorder.nodes().size(), 8u);

    // Every non-root node has a parent that lists it as a child, a
    // recorded condition, and a terminal status. nodes() returns a
    // snapshot copy; take it once so lookups stay in one map.
    size_t roots = 0;
    const auto nodes = recorder.nodes();
    for (const auto &[id, node] : nodes) {
        EXPECT_TRUE(node.finished) << "state " << id;
        EXPECT_EQ(node.status, "halted");
        if (node.parent < 0) {
            roots++;
            continue;
        }
        EXPECT_FALSE(node.condition.empty());
        const ForkNode &parent = nodes.at(node.parent);
        EXPECT_NE(std::find(parent.children.begin(),
                            parent.children.end(), id),
                  parent.children.end());
    }
    EXPECT_EQ(roots, 1u);

    // DOT round-trip: re-parse the export and compare the node set and
    // edge set against the recorded tree.
    std::string dot = recorder.toDot();
    std::set<int> dot_nodes;
    std::set<std::pair<int, int>> dot_edges;
    std::istringstream in(dot);
    std::string line;
    while (std::getline(in, line)) {
        int from = 0, to = 0;
        if (std::sscanf(line.c_str(), "  n%d -> n%d", &from, &to) == 2)
            dot_edges.insert({from, to});
        else if (std::sscanf(line.c_str(), "  n%d [", &from) == 1)
            dot_nodes.insert(from);
    }
    std::set<int> expect_nodes;
    std::set<std::pair<int, int>> expect_edges;
    for (const auto &[id, node] : recorder.nodes()) {
        expect_nodes.insert(id);
        for (int child : node.children)
            expect_edges.insert({id, child});
    }
    EXPECT_EQ(dot_nodes, expect_nodes);
    EXPECT_EQ(dot_edges, expect_edges);
    EXPECT_EQ(dot_edges.size(), 7u);

    // JSON export carries the schema id and one entry per node.
    std::string json = recorder.toJson();
    EXPECT_NE(json.find("\"schema\":\"s2e.fork_tree.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"forks\":7"), std::string::npos);
}

TEST(ForkTree, DestructorUnsubscribesFromTheHub)
{
    core::Engine engine(machineFor(kThreeBranches), core::EngineConfig{});
    {
        ForkTreeRecorder recorder(engine.events());
        EXPECT_FALSE(engine.events().onExecutionFork.empty());
    }
    EXPECT_TRUE(engine.events().onExecutionFork.empty());
    EXPECT_TRUE(engine.events().onStateKill.empty());
    engine.run(); // must not touch the destroyed recorder
}

// ------------------------------------------------------------ Heartbeat

TEST(Heartbeat, SamplesEveryNBlocks)
{
    core::Engine engine(machineFor(kThreeBranches), core::EngineConfig{});
    Heartbeat::Config config;
    config.everyBlocks = 1; // beat on every block
    config.log = false;
    Heartbeat heartbeat(engine, config);
    engine.run();

    const auto &records = heartbeat.records();
    ASSERT_FALSE(records.empty());
    uint64_t last_blocks = 0;
    for (const HeartbeatRecord &r : records) {
        EXPECT_GT(r.blocks, last_blocks);
        last_blocks = r.blocks;
        EXPECT_GE(r.wallSeconds, 0.0);
    }
    EXPECT_GT(records.back().instructions, 0u);
}

// ----------------------------------------------------------- Run report

TEST(RunReport, CapturesEngineAndFractionsSumBelowOne)
{
    core::EngineConfig config;
    config.profileExecution = true;
    core::Engine engine(machineFor(kThreeBranches), config);
    core::RunResult r = engine.run();

    RunReport report("test_run");
    report.captureEngine(engine, r);
    report.setMetric("paths", double(r.statesCreated));
    report.addNote("three-branch workload");

    EXPECT_EQ(report.states().size(), 8u);
    EXPECT_GT(report.phaseFractionSum(), 0.0);
    EXPECT_LE(report.phaseFractionSum(), 1.0);

    bool saw_symbolic = false;
    for (const auto &row : report.phases()) {
        EXPECT_GE(row.fraction, 0.0);
        if (row.name == "symbolic" && row.spans > 0)
            saw_symbolic = true;
    }
    EXPECT_TRUE(saw_symbolic);

    std::string json = report.toJson();
    EXPECT_NE(json.find("\"schema\":\"s2e.run_report.v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"phases\""), std::string::npos);
    EXPECT_NE(json.find("\"states\""), std::string::npos);
    EXPECT_NE(json.find("three-branch workload"), std::string::npos);

    long depth = 0;
    bool in_string = false, escaped = false;
    for (char c : json) {
        if (escaped) {
            escaped = false;
            continue;
        }
        if (c == '\\') {
            escaped = true;
        } else if (c == '"') {
            in_string = !in_string;
        } else if (!in_string) {
            if (c == '{' || c == '[')
                depth++;
            else if (c == '}' || c == ']')
                depth--;
        }
        EXPECT_GE(depth, 0);
    }
    EXPECT_EQ(depth, 0);
    EXPECT_FALSE(in_string);
}

TEST(RunReport, WriteFileRoundTrip)
{
    RunReport report("test_write");
    report.setMetric("answer", 42.0);
    std::string path = "test_obs_report_tmp.json";
    ASSERT_TRUE(report.writeFile(path));
    std::ifstream in(path);
    std::string contents((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
    std::remove(path.c_str());
    EXPECT_NE(contents.find("\"answer\":42"), std::string::npos);
}

// -------------------------------------------------- Engine integration

TEST(EngineProfile, DisabledProfilerStaysEmpty)
{
    core::EngineConfig config;
    config.profileExecution = false;
    core::Engine engine(machineFor(kThreeBranches), config);
    engine.run();
    EXPECT_FALSE(engine.profiler().enabled());
    EXPECT_DOUBLE_EQ(engine.profiler().totalSeconds(), 0.0);
    for (size_t i = 0; i < kNumPhases; ++i)
        EXPECT_EQ(engine.profiler().stat(static_cast<Phase>(i)).spans,
                  0u);
}

TEST(EngineProfile, SymbolicRunChargesSymbolicAndForkPhases)
{
    core::EngineConfig config;
    config.profileExecution = true;
    core::Engine engine(machineFor(kThreeBranches), config);
    engine.run();
    const PhaseProfiler &p = engine.profiler();
    EXPECT_GT(p.stat(Phase::Translate).spans, 0u);
    EXPECT_GT(p.stat(Phase::ConcreteExec).spans, 0u);
    EXPECT_GT(p.stat(Phase::SymbolicExec).spans, 0u);
    EXPECT_EQ(p.stat(Phase::Fork).spans, 7u);
    // run() flushed the breakdown into the stats registry.
    EXPECT_EQ(engine.stats().get("engine.phase.fork.spans"), 7u);
}

// ------------------------------------------------------ Tracer dropped

TEST(TracerDropped, PerPathCapIsCountedNotSilent)
{
    core::Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r10, 20
    loop:
        subi r10, 1
        cmpi r10, 0
        jne loop
        hlt
    )"),
                        core::EngineConfig{});
    plugins::ExecutionTracer::Config config;
    config.maxEntriesPerPath = 4;
    plugins::ExecutionTracer tracer(engine, config);
    engine.run();

    ASSERT_EQ(tracer.finishedTraces().size(), 1u);
    const plugins::TraceState &trace = tracer.finishedTraces()[0].second;
    EXPECT_EQ(trace.entries.size(), 4u);
    EXPECT_GT(trace.dropped, 0u);
}

} // namespace
} // namespace s2e::obs
