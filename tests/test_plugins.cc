/** @file Tests for selectors and analyzers (the plugin suite). */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "plugins/annotation.hh"
#include "plugins/bugcheck.hh"
#include "plugins/codeselector.hh"
#include "plugins/energy.hh"
#include "plugins/coverage.hh"
#include "plugins/memchecker.hh"
#include "plugins/pathkiller.hh"
#include "plugins/perfprofile.hh"
#include "plugins/privacy.hh"
#include "plugins/racedetector.hh"
#include "plugins/searchers.hh"
#include "plugins/tracer.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::plugins {
namespace {

using core::Engine;
using core::EngineConfig;
using core::StateStatus;

vm::MachineConfig
machineFor(const std::string &source)
{
    vm::MachineConfig m;
    m.ramSize = guest::kRamSize; // room for the guest stack at 0x7F000
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::DmaNic>());
    };
    return m;
}

TEST(StaticBlocks, LinearSweepFindsBlocks)
{
    isa::Program p = isa::assemble(R"(
        .org 0x1000
    entry:
        movi r1, 0
        cmpi r1, 5
        jne skip
        addi r1, 1
    skip:
        hlt
    )");
    StaticBlocks blocks = staticBasicBlocks(p, 0x1000, 0x1100);
    // Blocks: entry..jne | addi | skip(hlt)
    EXPECT_EQ(blocks.count(), 3u);
    EXPECT_TRUE(blocks.starts.count(0x1000));
    EXPECT_TRUE(blocks.starts.count(p.symbol("skip")));
}

TEST(StaticBlocks, CallTargetsAreLeaders)
{
    isa::Program p = isa::assemble(R"(
        .org 0x1000
    main:
        call fn
        hlt
    fn:
        ret
    )");
    StaticBlocks blocks = staticBasicBlocks(p, 0x1000, 0x1100);
    EXPECT_TRUE(blocks.starts.count(p.symbol("fn")));
    EXPECT_EQ(blocks.count(), 3u); // main, after-call(hlt), fn
}

TEST(Coverage, TracksExecutedInstructions)
{
    const char *src = R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb low
        movi r2, 1
        hlt
    low:
        movi r2, 2
        hlt
    )";
    vm::MachineConfig m = machineFor(src);
    Engine engine(m, EngineConfig{});
    CoverageTracker coverage(engine);
    engine.run();
    // Both sides of the branch are covered across paths.
    EXPECT_GT(coverage.coveredInstructions(), 6u);
    StaticBlocks blocks = staticBasicBlocks(m.program, 0, 0x100);
    EXPECT_EQ(coverage.coveredBlocks(blocks), blocks.count());
    EXPECT_DOUBLE_EQ(coverage.coverageFraction(blocks), 1.0);
}

TEST(Coverage, TimelineGrowsMonotonically)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  hlt
    )"),
                  EngineConfig{});
    CoverageTracker coverage(engine);
    engine.run();
    const auto &timeline = coverage.timeline();
    ASSERT_FALSE(timeline.empty());
    for (size_t i = 1; i < timeline.size(); ++i) {
        EXPECT_GE(timeline[i].first, timeline[i - 1].first);
        EXPECT_GT(timeline[i].second, timeline[i - 1].second);
    }
}

TEST(Searchers, BfsVsDfsOrder)
{
    std::vector<core::ExecutionState *> fake;
    Engine engine(machineFor(".entry m\nm: hlt\n"), EngineConfig{});
    auto &s = engine.initialState();
    auto clone1 = s.clone(100);
    fake.push_back(&s);
    fake.push_back(clone1.get());
    DepthFirstSearcher dfs;
    BreadthFirstSearcher bfs;
    EXPECT_EQ(dfs.select(fake), clone1.get());
    EXPECT_EQ(bfs.select(fake), &s);
}

TEST(Searchers, RandomIsDeterministicPerSeed)
{
    Engine engine(machineFor(".entry m\nm: hlt\n"), EngineConfig{});
    auto &s = engine.initialState();
    auto c1 = s.clone(100);
    auto c2 = s.clone(101);
    std::vector<core::ExecutionState *> fake{&s, c1.get(), c2.get()};
    RandomSearcher a(7), b(7);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(a.select(fake), b.select(fake));
}

TEST(Annotation, CallbackFiresAtPc)
{
    vm::MachineConfig m = machineFor(R"(
        .entry main
    main:
        movi r1, 1
    hook_site:
        movi r2, 2
        hlt
    )");
    uint32_t hook_pc = m.program.symbol("hook_site");
    Engine engine(m, EngineConfig{});
    Annotation annotation(engine);
    int fired = 0;
    annotation.at(hook_pc, [&](core::ExecutionState &state, Engine &) {
        fired++;
        EXPECT_EQ(state.cpu.regs[1].concrete(), 1u);
    });
    engine.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(annotation.hitCount(hook_pc), 1u);
}

TEST(Annotation, CanInjectSymbolicValues)
{
    vm::MachineConfig m = machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 42
    hook_site:
        cmpi r1, 42
        jeq same
        movi r2, 1
        hlt
    same:
        movi r2, 2
        hlt
    )");
    Engine engine(m, EngineConfig{});
    Annotation annotation(engine);
    annotation.at(m.program.symbol("hook_site"),
                  [](core::ExecutionState &state, Engine &eng) {
                      eng.makeRegSymbolic(state, 1, "injected");
                  });
    core::RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u); // injection enabled both sides
}

TEST(Tracer, RecordsBlocksAndPortIo)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi r1, 'x'
        out 0x10, r1
        in r2, 0x11
        hlt
    )"),
                  EngineConfig{});
    ExecutionTracer tracer(engine);
    engine.run();
    ASSERT_EQ(tracer.finishedTraces().size(), 1u);
    const auto &trace = tracer.finishedTraces()[0].second.entries;
    int blocks = 0, outs = 0, ins = 0;
    for (const auto &e : trace) {
        if (e.kind == TraceEntry::Kind::Block)
            blocks++;
        if (e.kind == TraceEntry::Kind::PortOut) {
            outs++;
            EXPECT_EQ(e.addr, 0x10u);
            EXPECT_EQ(e.value, static_cast<uint32_t>('x'));
        }
        if (e.kind == TraceEntry::Kind::PortIn)
            ins++;
    }
    EXPECT_GE(blocks, 1);
    EXPECT_EQ(outs, 1);
    EXPECT_EQ(ins, 1);
}

TEST(PathKiller, KillsPollingLoop)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        jmp main              ; hot polling loop, no new coverage
    )"),
                  EngineConfig{});
    CoverageTracker coverage(engine);
    PathKiller::Config config;
    config.maxLoopVisits = 50;
    PathKiller killer(engine, coverage, config);
    core::RunResult r = engine.run();
    EXPECT_FALSE(r.budgetExhausted);
    EXPECT_EQ(killer.pathsKilled(), 1u);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Killed);
}

TEST(PathKiller, StagnationSweepKeepsOnePath)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb spin               ; both paths spin without new coverage
    spin:
        movi r2, 1000
    spin2:
        subi r2, 1
        cmpi r2, 0
        jne spin2
        hlt
    )"),
                  EngineConfig{});
    CoverageTracker coverage(engine);
    PathKiller::Config config;
    config.stagnationBlocks = 100;
    PathKiller killer(engine, coverage, config);
    engine.run();
    EXPECT_GE(killer.stagnationSweeps(), 1u);
}

TEST(PerfProfile, CountsAlongPaths)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb short_path
        ; long path: touch lots of memory
        movi r2, 0
        movi r3, 0x4000
    loop:
        stw [r3], r2
        addi r3, 64
        addi r2, 1
        cmpi r2, 100
        jb loop
        hlt
    short_path:
        hlt
    )"),
                  EngineConfig{});
    PerformanceProfile profile(engine);
    engine.run();
    ASSERT_EQ(profile.results().size(), 2u);
    auto env = profile.envelope();
    EXPECT_EQ(env.paths, 2u);
    EXPECT_GT(env.maxInstructions, env.minInstructions + 400);
    EXPECT_GT(env.maxCacheMisses, env.minCacheMisses);
}

TEST(PerfProfile, BestCaseSearchAbandonsWorsePaths)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb quick
        movi r2, 0
    slow:
        addi r2, 1
        cmpi r2, 2000
        jb slow
        hlt
    quick:
        hlt
    )"),
                  EngineConfig{});
    PerformanceProfile::Config config;
    config.findBestCase = true;
    PerformanceProfile profile(engine, config);
    // Breadth-first makes the quick path complete before the slow one
    // has executed 2000 iterations.
    engine.setSearcher(std::make_unique<BreadthFirstSearcher>());
    engine.run();
    EXPECT_GE(profile.pathsAbandoned(), 1u);
}

TEST(BugCheck, CollectsCrashWithInputs)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 0x1234
        jne fine
        movi r9, 0x0FFFFFF0
        ldw r8, [r9]          ; out-of-bounds crash on the magic value
    fine:
        hlt
    )"),
                  EngineConfig{});
    BugCheck bugcheck(engine);
    engine.run();
    ASSERT_GE(bugcheck.crashes().size(), 1u);
    const auto &crash = bugcheck.crashes()[0];
    EXPECT_EQ(crash.kind, "crash");
    ASSERT_TRUE(crash.inputsValid);
    // The reproduction input must be the magic value.
    ASSERT_EQ(crash.inputs.values().size(), 1u);
    EXPECT_EQ(crash.inputs.values().begin()->second, 0x1234u);
}

TEST(MemChecker, DetectsOverflowThroughKernelHooks)
{
    std::string src = guest::kernelSource() + R"(
        .org 0x20000
    unit_main:
        movi sp, 0x7F000
        movi r0, 4
        movi r1, 16
        int 0x30
        mov r10, r1
        ; write one byte past the 16-byte chunk
        stb [r10+16], r1
        movi r0, 5
        mov r1, r10
        int 0x30
        hlt
        .entry unit_main
    )";
    vm::MachineConfig m = machineFor(src);
    core::EngineConfig config;
    config.unitRanges = {{0x20000, 0x28000}};
    Engine engine(m, config);
    Annotation annotation(engine);
    MemoryChecker::Config mc;
    mc.heapBase = guest::kHeapBase;
    mc.heapEnd = guest::kHeapEnd;
    mc.nullGuardEnd = 0x100;
    mc.allocReturnPc = m.program.symbol("sys_alloc_done");
    mc.freeEntryPc = m.program.symbol("sys_free_entry");
    MemoryChecker checker(engine, annotation, mc);
    engine.run();
    bool overflow = false;
    for (const auto &r : checker.reports())
        if (r.kind == "overflow")
            overflow = true;
    EXPECT_TRUE(overflow);
}

TEST(MemChecker, DetectsLeak)
{
    std::string src = guest::kernelSource() + R"(
        .org 0x20000
    unit_main:
        movi sp, 0x7F000
        movi r0, 4
        movi r1, 16
        int 0x30             ; allocated, never freed
        hlt
        .entry unit_main
    )";
    vm::MachineConfig m = machineFor(src);
    core::EngineConfig config;
    config.unitRanges = {{0x20000, 0x28000}};
    Engine engine(m, config);
    Annotation annotation(engine);
    MemoryChecker::Config mc;
    mc.heapBase = guest::kHeapBase;
    mc.heapEnd = guest::kHeapEnd;
    mc.allocReturnPc = m.program.symbol("sys_alloc_done");
    mc.freeEntryPc = m.program.symbol("sys_free_entry");
    MemoryChecker checker(engine, annotation, mc);
    engine.run();
    bool leak = false;
    for (const auto &r : checker.reports())
        if (r.kind == "leak")
            leak = true;
    EXPECT_TRUE(leak);
}

TEST(MemChecker, DetectsUseAfterFree)
{
    std::string src = guest::kernelSource() + R"(
        .org 0x20000
    unit_main:
        movi sp, 0x7F000
        movi r0, 4
        movi r1, 16
        int 0x30
        mov r10, r1
        movi r0, 5
        mov r1, r10
        int 0x30
        ldb r2, [r10+4]      ; read after free
        hlt
        .entry unit_main
    )";
    vm::MachineConfig m = machineFor(src);
    core::EngineConfig config;
    config.unitRanges = {{0x20000, 0x28000}};
    Engine engine(m, config);
    Annotation annotation(engine);
    MemoryChecker::Config mc;
    mc.heapBase = guest::kHeapBase;
    mc.heapEnd = guest::kHeapEnd;
    mc.allocReturnPc = m.program.symbol("sys_alloc_done");
    mc.freeEntryPc = m.program.symbol("sys_free_entry");
    MemoryChecker checker(engine, annotation, mc);
    engine.run();
    bool uaf = false;
    for (const auto &r : checker.reports())
        if (r.kind == "use-after-free")
            uaf = true;
    EXPECT_TRUE(uaf);
}

TEST(MemChecker, NullGuardCatchesNullDeref)
{
    std::string src = guest::kernelSource() + R"(
        .org 0x20000
    unit_main:
        movi sp, 0x7F000
        movi r10, 0
        stb [r10+4], r10     ; null write
        hlt
        .entry unit_main
    )";
    vm::MachineConfig m = machineFor(src);
    core::EngineConfig config;
    config.unitRanges = {{0x20000, 0x28000}};
    Engine engine(m, config);
    Annotation annotation(engine);
    MemoryChecker::Config mc;
    mc.heapBase = guest::kHeapBase;
    mc.heapEnd = guest::kHeapEnd;
    mc.nullGuardEnd = 0x100;
    mc.allocReturnPc = m.program.symbol("sys_alloc_done");
    mc.freeEntryPc = m.program.symbol("sys_free_entry");
    MemoryChecker checker(engine, annotation, mc);
    engine.run();
    bool null_deref = false;
    for (const auto &r : checker.reports())
        if (r.kind == "null-deref")
            null_deref = true;
    EXPECT_TRUE(null_deref);
}

TEST(RaceDetector, FlagsIsrMainlineConflict)
{
    // Mainline increments a counter with interrupts enabled while the
    // timer ISR also writes it.
    Engine engine(machineFor(R"(
        .org 0x100
        .word isr            ; timer vector
        .org 0x400
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 20
        out 0x21, r1         ; timer period
        movi r1, 1
        out 0x20, r1         ; timer start
        sti
        movi r2, 0
    loop:
        movi r4, 0x6000
        ldw r5, [r4]         ; unprotected RMW on the shared counter
        addi r5, 1
        stw [r4], r5
        addi r2, 1
        cmpi r2, 50
        jb loop
        cli
        hlt
    isr:
        push r4
        push r5
        movi r4, 0x6000
        ldw r5, [r4]
        addi r5, 1
        stw [r4], r5
        pop r5
        pop r4
        iret
    )"),
                  EngineConfig{});
    // Add a timer device for this test.
    DataRaceDetector::Config config;
    config.watchBase = 0x6000;
    config.watchEnd = 0x6004;
    DataRaceDetector detector(engine, config);
    // The default machineFor has no timer; add via initial state.
    engine.initialState().devices.add(
        std::make_unique<vm::TimerDevice>());
    engine.run();
    ASSERT_GE(detector.reports().size(), 1u);
    EXPECT_EQ(detector.reports()[0].kind, "data-race");
}

TEST(CodeSelector, InclusionRangeGatesForking)
{
    // The symbolic branch lies outside the inclusion range: no fork.
    vm::MachineConfig m = machineFor(R"(
        .entry main
        .org 0x0
    main:
        movi sp, 0x8000
        s2e_symreg r1
        jmp outside
        .org 0x2000
    outside:
        cmpi r1, 5
        jb a
    a:  hlt
    )");
    Engine engine(m, EngineConfig{});
    CodeSelector selector(engine,
                          {{0x0, 0x1000, /*include=*/true}});
    core::RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u); // concretized, not forked
    EXPECT_GT(selector.toggles(), 0u);
}

TEST(CodeSelector, ForkingAllowedInsideRange)
{
    vm::MachineConfig m = machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  hlt
    )");
    Engine engine(m, EngineConfig{});
    CodeSelector selector(engine, {{0x0, 0x1000, true}});
    core::RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
}

TEST(CodeSelector, ExclusionRangeDefaultsToMultiPath)
{
    CodeSelector::Range excl{0x5000, 0x6000, false};
    vm::MachineConfig m = machineFor(".entry m\nm: hlt\n");
    Engine engine(m, EngineConfig{});
    CodeSelector selector(engine, {excl});
    EXPECT_TRUE(selector.multiPathAt(0x100));
    EXPECT_FALSE(selector.multiPathAt(0x5800));
    EXPECT_TRUE(selector.multiPathAt(0x6000));
}

TEST(CodeSelector, FirstMatchingRangeWins)
{
    vm::MachineConfig m = machineFor(".entry m\nm: hlt\n");
    Engine engine(m, EngineConfig{});
    CodeSelector selector(engine, {{0x100, 0x200, false},
                                   {0x0, 0x1000, true}});
    EXPECT_FALSE(selector.multiPathAt(0x150));
    EXPECT_TRUE(selector.multiPathAt(0x250));
    EXPECT_FALSE(selector.multiPathAt(0x2000)); // outside all includes
}

TEST(EnergyProfile, MemoryHeavyPathCostsMore)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb cheap
        ; expensive path: loads, stores and multiplies
        movi r2, 0
        movi r3, 0x4000
    heavy:
        ldw r4, [r3]
        muli r4, 3
        stw [r3], r4
        addi r3, 4
        addi r2, 1
        cmpi r2, 30
        jb heavy
        hlt
    cheap:
        hlt
    )"),
                  EngineConfig{});
    EnergyProfile energy(engine);
    engine.run();
    ASSERT_EQ(energy.results().size(), 2u);
    auto [lo, hi] = energy.envelope();
    EXPECT_GT(hi, lo * 3); // the heavy loop dominates
    EXPECT_GE(energy.hungriestPath(), 0);
}

TEST(EnergyProfile, PerPathAccountingIsolated)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  hlt
    )"),
                  EngineConfig{});
    EnergyProfile energy(engine);
    engine.run();
    ASSERT_EQ(energy.results().size(), 2u);
    // Both paths executed nearly identical code: costs must be close.
    double a = energy.results()[0].picojoules;
    double b = energy.results()[1].picojoules;
    EXPECT_NEAR(a, b, std::max(a, b) * 0.5);
    EXPECT_GT(a, 0);
}

TEST(PrivacyAnalyzer, DetectsSecretLeakThroughCopying)
{
    // The guest copies the secret through memory, massages it, and
    // writes the derived value to a port: a leak must be reported.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        ; r1 already holds the secret (injected host-side)
        movi r3, 0x4000
        stw [r3], r1         ; copy through memory
        ldw r2, [r3]
        xori r2, 0x55        ; "encrypt"
        out 0x10, r2         ; ship it out
        hlt
    )"),
                  EngineConfig{});
    PrivacyAnalyzer privacy(engine);
    auto &state = engine.initialState();
    expr::ExprRef secret =
        engine.makeRegSymbolic(state, 1, "credit_card");
    privacy.markSecret(secret);
    engine.run();
    ASSERT_GE(privacy.leaks().size(), 1u);
    EXPECT_EQ(privacy.leaks()[0].kind, "privacy-leak");
}

TEST(PrivacyAnalyzer, NoFalseLeakForUnrelatedData)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        ; r1 already holds the secret (injected host-side)
        s2e_symreg r2        ; unrelated symbolic data
        out 0x10, r2
        movi r3, 7
        out 0x10, r3         ; concrete output
        hlt
    )"),
                  EngineConfig{});
    PrivacyAnalyzer privacy(engine);
    auto &state = engine.initialState();
    expr::ExprRef secret =
        engine.makeRegSymbolic(state, 1, "secret");
    privacy.markSecret(secret);
    engine.run();
    EXPECT_TRUE(privacy.leaks().empty());
}

TEST(PrivacyAnalyzer, MarkSecretRangeCoversMemory)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r3, 0x4000
        ldb r2, [r3+2]       ; read one secret byte
        out 0x10, r2         ; leak it
        hlt
    )"),
                  EngineConfig{});
    PrivacyAnalyzer privacy(engine);
    auto &state = engine.initialState();
    engine.makeMemSymbolic(state, 0x4000, 8, "card_number");
    privacy.markSecretRange(state, 0x4000, 8);
    engine.run();
    ASSERT_GE(privacy.leaks().size(), 1u);
}

TEST(MaxCoverageSearcher, PrefersUncoveredStates)
{
    Engine engine(machineFor(".entry m\nm: hlt\n"), EngineConfig{});
    CoverageTracker coverage(engine);
    MaxCoverageSearcher searcher(coverage, 1);
    auto &s = engine.initialState();
    auto clone = s.clone(5);
    std::vector<core::ExecutionState *> active{&s, clone.get()};
    // Nothing covered yet: picks the first uncovered.
    EXPECT_EQ(searcher.select(active), &s);
}

} // namespace
} // namespace s2e::plugins
