/** @file Integration tests for the three tools (DDT+, REV+, PROFS). */

#include <gtest/gtest.h>

#include "tools/ddt.hh"
#include "tools/modelsweep.hh"
#include "tools/profs.hh"
#include "tools/rev.hh"

namespace s2e::tools {
namespace {

using core::ConsistencyModel;
using guest::DriverKind;

// --- DDT+ (paper §6.1.1) ---------------------------------------------------

TEST(Ddt, ScSeFindsHardwareInducedBugs)
{
    // Under SC-SE the only symbolic input is the hardware: the DMA
    // driver's rx copy-loop overflow must surface.
    DdtConfig config;
    config.driver = DriverKind::Dma;
    config.model = ConsistencyModel::ScSe;
    config.annotations = false;
    config.maxWallSeconds = 20;
    Ddt ddt(config);
    DdtResult result = ddt.run();
    EXPECT_TRUE(result.bugKinds.count("overflow"))
        << "paths=" << result.pathsExplored;
    EXPECT_GT(result.pathsExplored, 4u);
}

TEST(Ddt, PioScSeFindsUseAfterFree)
{
    DdtConfig config;
    config.driver = DriverKind::Pio;
    config.model = ConsistencyModel::ScSe;
    config.annotations = false;
    config.maxWallSeconds = 20;
    Ddt ddt(config);
    DdtResult result = ddt.run();
    EXPECT_TRUE(result.bugKinds.count("use-after-free"));
}

TEST(Ddt, LcAnnotationsFindMoreBugs)
{
    // The paper's headline: 2 bugs under SC-SE, +5 more with LC
    // annotations. Check the LC run uncovers strictly more bug
    // classes in the DMA driver than the SC-SE run.
    DdtConfig scse;
    scse.driver = DriverKind::Dma;
    scse.model = ConsistencyModel::ScSe;
    scse.annotations = false;
    scse.maxWallSeconds = 20;
    DdtResult base = Ddt(scse).run();

    DdtConfig lc;
    lc.driver = DriverKind::Dma;
    lc.model = ConsistencyModel::Lc;
    lc.annotations = true;
    lc.maxWallSeconds = 30;
    lc.maxInstructions = 6'000'000;
    DdtResult rich = Ddt(lc).run();

    EXPECT_GT(rich.bugKinds.size(), base.bugKinds.size())
        << "SC-SE kinds=" << base.bugKinds.size()
        << " LC kinds=" << rich.bugKinds.size();
    // The registry-dependent leak needs the symbolic CardType /
    // MacOverride configuration, i.e., LC annotations.
    EXPECT_TRUE(rich.bugKinds.count("leak"));
}

TEST(Ddt, LcFindsAllocFailureNullDeref)
{
    DdtConfig config;
    config.driver = DriverKind::Dma;
    config.model = ConsistencyModel::Lc;
    config.maxWallSeconds = 30;
    config.maxInstructions = 6'000'000;
    Ddt ddt(config);
    DdtResult result = ddt.run();
    EXPECT_TRUE(result.bugKinds.count("null-deref"))
        << "kinds found: " << result.bugKinds.size();
}

TEST(Ddt, CleanDriverReportsNoBugs)
{
    // The ring driver carries no seeded bugs: a clean LC run.
    DdtConfig config;
    config.driver = DriverKind::Ring;
    config.model = ConsistencyModel::Lc;
    config.maxWallSeconds = 20;
    Ddt ddt(config);
    DdtResult result = ddt.run();
    // Allow "leak" reports only if alloc-failure injection aborted a
    // path mid-cleanup — the bug kinds tied to real defects must be
    // absent.
    EXPECT_FALSE(result.bugKinds.count("use-after-free"));
    EXPECT_FALSE(result.bugKinds.count("double-free"));
    EXPECT_FALSE(result.bugKinds.count("null-deref"));
    EXPECT_FALSE(result.bugKinds.count("data-race"));
}

TEST(Ddt, CoverageReported)
{
    DdtConfig config;
    config.driver = DriverKind::Dma;
    config.model = ConsistencyModel::Lc;
    config.maxWallSeconds = 20;
    Ddt ddt(config);
    DdtResult result = ddt.run();
    EXPECT_GT(result.driverCoverage, 0.3);
    EXPECT_LE(result.driverCoverage, 1.0);
}

// --- REV+ (paper §6.1.2) ----------------------------------------------------

TEST(Rev, RecoversDriverCfgWithHardwareOps)
{
    RevConfig config;
    config.driver = DriverKind::Pio;
    config.maxWallSeconds = 20;
    Rev rev(config);
    RevResult result = rev.run();
    EXPECT_GT(result.cfg.blockCount(), 10u);
    EXPECT_GT(result.cfg.edgeCount(), result.cfg.blockCount() / 2);
    EXPECT_GT(result.cfg.hardwareOpCount(), 3u);
    EXPECT_GT(result.driverCoverage, 0.4);
    EXPECT_FALSE(result.coverageTimeline.empty());
}

TEST(Rev, SynthesizedDriverMentionsHardwareProtocol)
{
    RevConfig config;
    config.driver = DriverKind::Pio;
    config.maxWallSeconds = 15;
    Rev rev(config);
    RevResult result = rev.run();
    std::string code = Rev::synthesizeDriver(result.cfg, "rtl8029");
    EXPECT_NE(code.find("rtl8029_driver"), std::string::npos);
    EXPECT_NE(code.find("hw_write"), std::string::npos);
    EXPECT_NE(code.find("hw_read"), std::string::npos);
    // The PIO NIC's command port must appear in the protocol.
    EXPECT_NE(code.find("0x40"), std::string::npos);
}

TEST(Rev, MmioDriverProtocolRecovered)
{
    // The 91c111-style driver talks to its NIC exclusively through
    // bank-switched MMIO: the tracer must capture that protocol too.
    RevConfig config;
    config.driver = DriverKind::Mmio;
    config.maxWallSeconds = 15;
    Rev rev(config);
    RevResult result = rev.run();
    EXPECT_GT(result.cfg.hardwareOpCount(), 3u);
    std::string code = Rev::synthesizeDriver(result.cfg, "smc91c111");
    // The MMIO base address must show up in the recovered protocol.
    EXPECT_NE(code.find("0xf000100"), std::string::npos) << code;
}

TEST(Rev, BeatsRevNicBaselineCoverage)
{
    // Table 5's claim: REV+ (RC-OC exploration) reaches at least the
    // coverage of the RevNIC-style concrete fuzzing baseline.
    RevConfig config;
    config.driver = DriverKind::Dma;
    config.maxWallSeconds = 15;
    config.maxInstructions = 2'000'000;
    RevResult symbolic = Rev(config).run();
    RevNicBaselineResult fuzz =
        runRevNicBaseline(DriverKind::Dma, 5.0, 1'000'000);
    EXPECT_GT(fuzz.trials, 0u);
    EXPECT_GE(symbolic.driverCoverage, fuzz.driverCoverage)
        << "REV+ " << symbolic.driverCoverage << " vs RevNIC "
        << fuzz.driverCoverage;
}

// --- PROFS (paper §6.1.3) ---------------------------------------------------

TEST(Profs, UrlParserEnvelopeAndLinearSlashCost)
{
    ProfsConfig config;
    config.maxWallSeconds = 30;
    config.maxInstructions = 4'000'000;
    ProfsReport report = profileUrlParser(config, 4);
    ASSERT_GT(report.paths.size(), 4u);
    EXPECT_GT(report.envelope.maxInstructions,
              report.envelope.minInstructions);

    // Group completed paths by reported segment count and check the
    // 10-instructions-per-'/' law on the *maximum* per group (same
    // path shape modulo the slashes).
    std::map<uint32_t, uint64_t> max_instr_by_segments;
    for (const auto &p : report.paths) {
        if (p.status != core::StateStatus::Halted)
            continue;
        auto it = report.guestOutputs.find(p.stateId);
        if (it == report.guestOutputs.end() ||
            it->second == 0xFFFFFFFFu)
            continue;
        auto &slot = max_instr_by_segments[it->second];
        slot = std::max(slot, p.instructions);
    }
    ASSERT_GE(max_instr_by_segments.size(), 2u);
    // More slashes must cost more instructions.
    uint64_t prev = 0;
    for (const auto &[segments, instr] : max_instr_by_segments) {
        if (prev) {
            EXPECT_GT(instr, prev) << "segments=" << segments;
        }
        prev = instr;
    }
}

TEST(Profs, PingUnpatchedHasNoUpperBound)
{
    ProfsConfig config;
    config.maxWallSeconds = 30;
    config.maxInstructions = 4'000'000;
    ProfsReport report = profilePing(config, /*patched=*/false);
    // The record-route bug produces a path that never terminates:
    // exploration ends on the budget, the unbounded signal.
    EXPECT_TRUE(report.unboundedSuspected);
}

TEST(Profs, PingPatchedHasEnvelope)
{
    ProfsConfig config;
    config.maxWallSeconds = 30;
    config.maxInstructions = 4'000'000;
    ProfsReport report = profilePing(config, /*patched=*/true);
    EXPECT_FALSE(report.unboundedSuspected);
    EXPECT_GT(report.envelope.paths, 2u);
    EXPECT_GT(report.envelope.maxInstructions,
              report.envelope.minInstructions);
}

// --- Model sweep (paper §6.3) ------------------------------------------------

TEST(ModelSweep, LuaCoverageOrderingAcrossModels)
{
    SweepBudget budget;
    budget.maxInstructions = 800'000;
    budget.maxWallSeconds = 15;
    budget.maxStates = 128;

    SweepResult lc = runLuaSweep(ConsistencyModel::Lc, budget);
    SweepResult scue = runLuaSweep(ConsistencyModel::ScUe, budget);

    // The paper's Fig 7 shape: LC (bypassing the lexer) covers more
    // than SC-UE (which concretizes at the unit boundary).
    EXPECT_GT(lc.coverage, scue.coverage)
        << "LC " << lc.coverage << " vs SC-UE " << scue.coverage;
    EXPECT_GT(lc.pathsExplored, scue.pathsExplored);
}

TEST(ModelSweep, DriverScUeExploresAlmostNothing)
{
    SweepBudget budget;
    budget.maxInstructions = 500'000;
    budget.maxWallSeconds = 10;
    SweepResult scue =
        runDriverSweep(DriverKind::Dma, ConsistencyModel::ScUe, budget);
    SweepResult lc =
        runDriverSweep(DriverKind::Dma, ConsistencyModel::Lc, budget);
    // SC-UE: no symbolic hardware, no annotations -> single path.
    EXPECT_LE(scue.pathsExplored, 2u);
    EXPECT_GT(lc.pathsExplored, scue.pathsExplored);
    EXPECT_GT(lc.coverage, scue.coverage);
}

TEST(ModelSweep, MetricsArePopulated)
{
    SweepBudget budget;
    budget.maxInstructions = 500'000;
    budget.maxWallSeconds = 10;
    SweepResult lc =
        runDriverSweep(DriverKind::Dma, ConsistencyModel::Lc, budget);
    EXPECT_GT(lc.wallSeconds, 0.0);
    EXPECT_GT(lc.memoryHighWatermark, 0u);
    EXPECT_GT(lc.solverQueries, 0u);
    EXPECT_GE(lc.solverFraction, 0.0);
    EXPECT_LE(lc.solverFraction, 1.0);
}

} // namespace
} // namespace s2e::tools
