/** @file Unit tests for gisa encode/decode and disassembly. */

#include <gtest/gtest.h>

#include "isa/isa.hh"
#include "support/rng.hh"

namespace s2e::isa {
namespace {

Instruction
roundTrip(const Instruction &in)
{
    std::vector<uint8_t> bytes;
    encode(in, bytes);
    EXPECT_EQ(bytes.size(), instrLength(in.op));
    Instruction out;
    EXPECT_TRUE(decode(bytes.data(), bytes.size(), out));
    return out;
}

TEST(Isa, RoundTripSimple)
{
    Instruction in;
    in.op = Opcode::Nop;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.op, Opcode::Nop);
    EXPECT_EQ(out.length, 1u);
}

TEST(Isa, RoundTripRegReg)
{
    Instruction in;
    in.op = Opcode::Add;
    in.r1 = 3;
    in.r2 = 12;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.op, Opcode::Add);
    EXPECT_EQ(out.r1, 3);
    EXPECT_EQ(out.r2, 12);
}

TEST(Isa, RoundTripRegImm)
{
    Instruction in;
    in.op = Opcode::MovI;
    in.r1 = 7;
    in.imm = 0xDEADBEEF;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.r1, 7);
    EXPECT_EQ(out.imm, 0xDEADBEEFu);
}

TEST(Isa, RoundTripMemory)
{
    Instruction in;
    in.op = Opcode::Ldw;
    in.r1 = 2;
    in.r2 = 15;
    in.imm = static_cast<uint32_t>(-8);
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.r1, 2);
    EXPECT_EQ(out.r2, 15);
    EXPECT_EQ(static_cast<int32_t>(out.imm), -8);
}

TEST(Isa, RoundTripJcc)
{
    Instruction in;
    in.op = Opcode::Jcc;
    in.cc = Cond::Sle;
    in.imm = 0x1234;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.cc, Cond::Sle);
    EXPECT_EQ(out.imm, 0x1234u);
}

TEST(Isa, RoundTripInt)
{
    Instruction in;
    in.op = Opcode::Int;
    in.imm = 0x30;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.imm, 0x30u);
}

TEST(Isa, RoundTripPortIo)
{
    Instruction in;
    in.op = Opcode::InI;
    in.r1 = 4;
    in.imm = 0x1234;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.r1, 4);
    EXPECT_EQ(out.imm, 0x1234u);
}

TEST(Isa, RoundTripS2SymRange)
{
    Instruction in;
    in.op = Opcode::S2SymRange;
    in.r1 = 9;
    in.imm = 5;
    in.imm2 = 500;
    Instruction out = roundTrip(in);
    EXPECT_EQ(out.r1, 9);
    EXPECT_EQ(out.imm, 5u);
    EXPECT_EQ(out.imm2, 500u);
}

TEST(Isa, DecodeRejectsInvalidOpcode)
{
    uint8_t buf[4] = {0xEE, 0, 0, 0};
    Instruction out;
    EXPECT_FALSE(decode(buf, sizeof(buf), out));
}

TEST(Isa, DecodeRejectsShortBuffer)
{
    Instruction in;
    in.op = Opcode::MovI;
    in.r1 = 1;
    in.imm = 42;
    std::vector<uint8_t> bytes;
    encode(in, bytes);
    Instruction out;
    EXPECT_FALSE(decode(bytes.data(), 3, out));
    EXPECT_TRUE(decode(bytes.data(), bytes.size(), out));
}

TEST(Isa, DecodeRejectsBadRegister)
{
    // Class C instruction with r2 = 16 (invalid).
    uint8_t buf[3] = {static_cast<uint8_t>(Opcode::Add), 1, 16};
    Instruction out;
    EXPECT_FALSE(decode(buf, sizeof(buf), out));
}

TEST(Isa, DecodeRejectsBadCond)
{
    uint8_t buf[6] = {static_cast<uint8_t>(Opcode::Jcc), 99, 0, 0, 0, 0};
    Instruction out;
    EXPECT_FALSE(decode(buf, sizeof(buf), out));
}

TEST(Isa, BlockTerminators)
{
    EXPECT_TRUE(isBlockTerminator(Opcode::Jmp));
    EXPECT_TRUE(isBlockTerminator(Opcode::Ret));
    EXPECT_TRUE(isBlockTerminator(Opcode::Int));
    EXPECT_TRUE(isBlockTerminator(Opcode::Hlt));
    EXPECT_FALSE(isBlockTerminator(Opcode::Add));
    EXPECT_FALSE(isBlockTerminator(Opcode::Ldw));
    EXPECT_FALSE(isBlockTerminator(Opcode::S2SymReg));
}

TEST(Isa, DisassemblyMentionsOperands)
{
    Instruction in;
    in.op = Opcode::Ldw;
    in.r1 = 2;
    in.r2 = 15;
    in.imm = 8;
    std::string s = in.toString();
    EXPECT_NE(s.find("ldw"), std::string::npos);
    EXPECT_NE(s.find("r2"), std::string::npos);
    EXPECT_NE(s.find("sp"), std::string::npos); // r15 prints as sp
}

/** Property: random valid instructions round-trip exactly. */
TEST(Isa, PropertyRandomRoundTrip)
{
    Rng rng(31337);
    const Opcode all[] = {
        Opcode::Nop,   Opcode::Hlt,   Opcode::Ret,   Opcode::Push,
        Opcode::Pop,   Opcode::Mov,   Opcode::Add,   Opcode::Sub,
        Opcode::Cmp,   Opcode::MovI,  Opcode::AddI,  Opcode::CmpI,
        Opcode::Ldb,   Opcode::Ldw,   Opcode::Stw,   Opcode::Jmp,
        Opcode::Call,  Opcode::Jcc,   Opcode::Int,   Opcode::InI,
        Opcode::OutI,  Opcode::InR,   Opcode::OutR,  Opcode::S2SymMem,
        Opcode::S2SymReg, Opcode::S2SymRange, Opcode::S2Kill,
    };
    for (int iter = 0; iter < 500; ++iter) {
        Instruction in;
        in.op = all[rng.below(sizeof(all) / sizeof(all[0]))];
        in.r1 = static_cast<uint8_t>(rng.below(kNumRegs));
        in.r2 = static_cast<uint8_t>(rng.below(kNumRegs));
        in.cc = static_cast<Cond>(rng.below(10));
        in.imm = static_cast<uint32_t>(rng.next());
        in.imm2 = static_cast<uint32_t>(rng.next());

        // Restrict immediates to what the encoding can hold.
        if (in.op == Opcode::Int || in.op == Opcode::S2Kill)
            in.imm &= 0xFF;
        if (in.op == Opcode::InI || in.op == Opcode::OutI)
            in.imm &= 0xFFFF;

        std::vector<uint8_t> bytes;
        encode(in, bytes);
        Instruction out;
        ASSERT_TRUE(decode(bytes.data(), bytes.size(), out))
            << opcodeName(in.op);
        EXPECT_EQ(out.op, in.op);
        unsigned len = instrLength(in.op);
        if (len >= 2 && in.op != Opcode::Int && in.op != Opcode::S2Kill &&
            len != 5 && in.op != Opcode::Jcc)
            EXPECT_EQ(out.r1, in.r1) << opcodeName(in.op);
        if (len == 3 || len == 7)
            EXPECT_EQ(out.r2, in.r2) << opcodeName(in.op);
        if (len >= 5 || in.op == Opcode::Int || in.op == Opcode::S2Kill ||
            in.op == Opcode::InI || in.op == Opcode::OutI)
            EXPECT_EQ(out.imm, in.imm) << opcodeName(in.op);
        if (in.op == Opcode::S2SymRange)
            EXPECT_EQ(out.imm2, in.imm2);
    }
}

} // namespace
} // namespace s2e::isa
