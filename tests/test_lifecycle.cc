/**
 * @file
 * State-lifecycle suite: checkpoints, the `s2e.state.v1` serializer,
 * fault-tolerant spill-to-disk and s2e_merge_point state merging.
 *
 * Covers the three robustness contracts of the lifecycle subsystem:
 *
 *  - Serializer round-trip property: a randomized state serializes,
 *    deserializes into a stripped twin and re-serializes to the exact
 *    same bytes; corrupt or truncated images are rejected without
 *    touching the target state.
 *  - Spill differential: runs forced through constant spill/restore
 *    cycles (a resident cap of a few state footprints) produce exactly
 *    the same per-path outcomes as the all-resident serial oracle, at
 *    1/2/4 workers, and every injected spill-I/O fault degrades the
 *    run (retry, re-pin, or a SpillFailure kill) instead of crashing
 *    or silently corrupting a path.
 *  - Merge differential: s2e_merge_point runs are deterministic
 *    across worker counts, absorb exactly the compatible siblings,
 *    preserve the union of per-path feasible values (soundness), and
 *    refuse incompatible states — in which case the run is
 *    byte-equivalent to the merge-disabled oracle.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

#include "core/engine.hh"
#include "core/lifecycle/checkpoint.hh"
#include "core/lifecycle/serializer.hh"
#include "core/lifecycle/spill.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "support/rng.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::core {
namespace {

namespace fs = std::filesystem;
using lifecycle::SpillFaultPolicy;
using lifecycle::StateSerializer;

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = 64 * 1024)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    return m;
}

/**
 * Baseline footprint of an empty state on this machine: sizeof plus
 * the per-device charge, no private pages, no constraints. Resident
 * caps are expressed as small multiples of this so the governor is
 * guaranteed to trip once a handful of states are live, regardless of
 * how the accounting formula evolves.
 */
uint64_t
baseFootprint(const vm::MachineConfig &m)
{
    vm::DeviceSet devices;
    if (m.deviceSetup)
        m.deviceSetup(devices);
    ExecutionState probe(m.ramSize, devices);
    return probe.memoryFootprint();
}

/** Differential config: no budgets (scheduling-dependent kills) and
 *  no model cache (query-history-dependent answers). */
EngineConfig
differentialConfig(unsigned workers)
{
    EngineConfig config;
    config.numWorkers = workers;
    config.solverOptions.useModelCache = false;
    return config;
}

std::string
consoleOf(const ExecutionState &state)
{
    auto *console = state.devices.get<vm::ConsoleDevice>("console");
    return console ? console->output() : "";
}

std::string
valueRepr(const Value &v)
{
    if (v.isConcrete())
        return strprintf("%x", v.concrete());
    return v.expr()->toString();
}

uint64_t
memoryDigest(const ExecutionState &state, ExprBuilder &builder)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint8_t byte) {
        h ^= byte;
        h *= 1099511628211ull;
    };
    for (uint32_t addr = 0; addr < state.mem.size(); ++addr) {
        uint8_t byte = 0;
        if (state.mem.readConcreteByte(addr, &byte)) {
            mix(byte);
        } else {
            mix(0xFF);
            for (char c : state.mem.byteExpr(addr, builder)->toString())
                mix(static_cast<uint8_t>(c));
        }
    }
    return h;
}

/** Per-path outcome fingerprint keyed by deterministic path id. */
std::map<std::string, std::string>
pathFingerprints(Engine &engine)
{
    std::map<std::string, std::string> out;
    for (const auto &s : engine.allStates()) {
        std::string fp = strprintf("status:%s exit:%u msg:%s\n",
                                   stateStatusName(s->status), s->exitCode,
                                   s->statusMessage.c_str());
        fp += "console:" + consoleOf(*s) + "\n";
        for (unsigned r = 0; r < isa::kNumRegs; ++r)
            fp += strprintf("r%u:%s\n", r,
                            valueRepr(s->cpu.regs[r]).c_str());
        for (unsigned f = 0; f < 4; ++f)
            fp += strprintf("f%u:%s\n", f,
                            valueRepr(s->cpu.flags[f]).c_str());
        // A state killed while spilled (SpillFailure, budget) has no
        // pages to digest; its payload lives only in the dropped image.
        if (s->spilled)
            fp += "mem:<spilled>\n";
        else
            fp += strprintf("mem:%llx\n",
                            static_cast<unsigned long long>(
                                memoryDigest(*s, engine.builder())));
        bool fresh = out.emplace(s->pathId(), std::move(fp)).second;
        EXPECT_TRUE(fresh) << "duplicate path id " << s->pathId();
    }
    return out;
}

void
expectSamePathSets(const std::map<std::string, std::string> &oracle,
                   const std::map<std::string, std::string> &run,
                   const std::string &what)
{
    EXPECT_EQ(oracle.size(), run.size()) << what << ": path count";
    for (const auto &[path, fp] : oracle) {
        auto it = run.find(path);
        if (it == run.end()) {
            ADD_FAILURE() << what << ": path " << path << " missing";
            continue;
        }
        EXPECT_EQ(fp, it->second)
            << what << ": path " << path << " diverged";
    }
    for (const auto &[path, fp] : run)
        if (!oracle.count(path))
            ADD_FAILURE() << what << ": path " << path << " extra";
}

/** 2^bits-path fork storm; each path grinds a tiny private loop. */
std::string
stormSource(unsigned bits, unsigned work = 6)
{
    std::string src = R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
)";
    for (unsigned b = 0; b < bits; ++b)
        src += strprintf("        testi r1, %u\n"
                         "        jeq b%u\n"
                         "        ori r5, %u\n"
                         "    b%u:\n",
                         1u << b, b, 1u << b, b);
    src += strprintf(R"(
        movi r3, 0
        movi r4, 0
    work:
        add r3, r5
        addi r4, 1
        cmpi r4, %u
        jne work
        hlt
    )",
                     work);
    return src;
}

// --- Serializer round-trip property -------------------------------------

vm::DeviceSet
consoleDevices()
{
    vm::DeviceSet set;
    set.add(std::make_unique<vm::ConsoleDevice>());
    return set;
}

TEST(SerializerRoundTrip, RandomizedStatesReserializeByteIdentically)
{
    constexpr uint32_t kRam = 32 * 1024;
    ExprBuilder builder;
    StateSerializer ser(builder);
    for (uint64_t seed = 1; seed <= 12; ++seed) {
        Rng rng(seed * 0x9e3779b97f4a7c15ull);
        ExecutionState state(kRam, consoleDevices());
        state.setPathId(strprintf("0.%llu",
                                  static_cast<unsigned long long>(seed)));

        // Pre-checkpoint content (the shared baseline a spill image
        // must NOT carry).
        for (int i = 0; i < 200; ++i)
            state.mem.writeConcreteByte(
                static_cast<uint32_t>(rng.below(kRam)),
                static_cast<uint8_t>(rng.below(256)));
        lifecycle::takeCheckpoint(state);

        // Post-checkpoint delta: concrete writes, symbolic overlays,
        // registers/flags and a constraint tail.
        std::vector<ExprRef> vars;
        for (uint64_t i = 0; i < rng.below(3) + 2; ++i)
            vars.push_back(builder.var(
                strprintf("v%llu_%llu",
                          static_cast<unsigned long long>(seed),
                          static_cast<unsigned long long>(i)),
                32));
        for (int i = 0; i < 120; ++i)
            state.mem.writeConcreteByte(
                static_cast<uint32_t>(rng.below(kRam)),
                static_cast<uint8_t>(rng.below(256)));
        for (int i = 0; i < 40; ++i) {
            ExprRef byte = builder.extract(
                vars[rng.below(vars.size())],
                8 * static_cast<unsigned>(rng.below(4)), 8);
            state.mem.makeSymbolic(static_cast<uint32_t>(rng.below(kRam)),
                                   byte);
        }
        for (size_t i = 0; i < vars.size(); ++i)
            state.addConstraint(builder.ult(
                vars[i],
                builder.constant(1000 + 17 * static_cast<uint32_t>(i) +
                                     static_cast<uint32_t>(seed),
                                 32)));
        for (unsigned r = 0; r < 4; ++r)
            state.cpu.regs[r] = Value(vars[rng.below(vars.size())]);
        state.cpu.regs[7] =
            Value(static_cast<uint32_t>(rng.below(1u << 30)));
        state.cpu.pc = static_cast<uint32_t>(rng.below(1u << 16));
        state.cpu.flags[1] = Value(static_cast<uint32_t>(rng.below(2)));
        state.cpu.intEnabled = rng.chance(0.5);
        state.cpu.pendingIrqs = static_cast<uint32_t>(rng.below(8));
        state.instrCount = rng.next() % 1000000;
        state.symInstrCount = rng.next() % 10000;
        state.blockCount = rng.next() % 50000;
        state.degraded = rng.chance(0.3);

        std::vector<uint8_t> img = ser.serialize(state);
        ASSERT_TRUE(StateSerializer::validateImage(img));

        // Strip a twin down to what a spilled state keeps, restore it
        // from the image, and demand a byte-identical re-serialization
        // plus full content equality.
        auto twin = state.clone(999);
        twin->mem.dropAllPages();
        twin->constraints.clear();
        std::string err;
        ASSERT_TRUE(ser.deserialize(img, *twin, &err))
            << "seed " << seed << ": " << err;
        std::vector<uint8_t> img2 = ser.serialize(*twin);
        EXPECT_EQ(img, img2)
            << "seed " << seed << ": re-serialization not byte-identical";

        EXPECT_EQ(state.pathId(), twin->pathId());
        EXPECT_EQ(state.cpu.pc, twin->cpu.pc);
        EXPECT_EQ(state.instrCount, twin->instrCount);
        EXPECT_EQ(state.constraints.size(), twin->constraints.size());
        for (size_t i = 0; i < state.constraints.size(); ++i)
            EXPECT_EQ(state.constraints[i], twin->constraints[i])
                << "constraint " << i << " not re-interned identically";
        for (unsigned r = 0; r < isa::kNumRegs; ++r)
            EXPECT_EQ(valueRepr(state.cpu.regs[r]),
                      valueRepr(twin->cpu.regs[r]));
        EXPECT_EQ(memoryDigest(state, builder),
                  memoryDigest(*twin, builder))
            << "seed " << seed << ": memory content diverged";
    }
}

struct BlobPluginState : PluginState {
    std::vector<uint8_t> data;
    std::unique_ptr<PluginState>
    clone() const override
    {
        auto c = std::make_unique<BlobPluginState>();
        c->data = data;
        return c;
    }
};

TEST(SerializerRoundTrip, PluginCodecRoundTripsRegisteredState)
{
    static const int key_token = 0;
    ExprBuilder builder;
    StateSerializer ser(builder);
    lifecycle::PluginCodec codec;
    codec.name = "blob";
    codec.encode = [](const PluginState &ps) {
        return static_cast<const BlobPluginState &>(ps).data;
    };
    codec.decode = [](const std::vector<uint8_t> &bytes) {
        auto ps = std::make_unique<BlobPluginState>();
        ps->data = bytes;
        return std::unique_ptr<PluginState>(std::move(ps));
    };
    ser.registerPluginCodec(&key_token, codec);

    ExecutionState state(4096, consoleDevices());
    lifecycle::takeCheckpoint(state);
    state.pluginState<BlobPluginState>(&key_token)->data = {1, 2, 3, 42};
    std::vector<uint8_t> img = ser.serialize(state);

    auto twin = state.clone(1);
    static_cast<BlobPluginState *>(twin->findPluginState(&key_token))
        ->data = {9}; // clobber; deserialize must restore the original
    std::string err;
    ASSERT_TRUE(ser.deserialize(img, *twin, &err)) << err;
    auto *restored = static_cast<BlobPluginState *>(
        twin->findPluginState(&key_token));
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->data, (std::vector<uint8_t>{1, 2, 3, 42}));
    EXPECT_EQ(ser.serialize(*twin), img);
}

TEST(SerializerRoundTrip, CorruptImagesAreRejectedNotApplied)
{
    ExprBuilder builder;
    StateSerializer ser(builder);
    ExecutionState state(4096, consoleDevices());
    for (uint32_t a = 0; a < 64; ++a)
        state.mem.writeConcreteByte(a, static_cast<uint8_t>(a * 7));
    lifecycle::takeCheckpoint(state);
    state.mem.writeConcreteByte(100, 0xAB);
    ExprRef v = builder.var("cx", 32);
    state.mem.makeSymbolic(101, builder.extract(v, 0, 8));
    state.addConstraint(builder.ult(v, builder.constant(10, 32)));
    state.cpu.regs[0] = Value(v);
    std::vector<uint8_t> img = ser.serialize(state);
    ASSERT_TRUE(StateSerializer::validateImage(img));

    // Flip one byte at a sweep of offsets: header, expr table, CPU,
    // memory delta, tail. Every mutation must fail validation or
    // deserialization — never crash, never half-apply.
    for (size_t off = 0; off < img.size();
         off += std::max<size_t>(1, img.size() / 64)) {
        std::vector<uint8_t> bad = img;
        bad[off] ^= 0x40;
        auto twin = state.clone(2);
        std::string before = valueRepr(twin->cpu.regs[0]);
        std::string err;
        bool ok = StateSerializer::validateImage(bad) &&
                  ser.deserialize(bad, *twin, &err);
        EXPECT_FALSE(ok) << "corruption at offset " << off
                         << " was accepted";
        EXPECT_EQ(before, valueRepr(twin->cpu.regs[0]))
            << "offset " << off << ": failed restore touched the state";
    }

    // Truncations at every section boundary granularity.
    for (size_t len : {size_t(0), size_t(8), size_t(31), img.size() / 2,
                       img.size() - 1}) {
        std::vector<uint8_t> bad(img.begin(),
                                 img.begin() +
                                     static_cast<ptrdiff_t>(len));
        std::string err;
        EXPECT_FALSE(StateSerializer::validateImage(bad, &err))
            << "truncated image (len " << len << ") passed validation";
    }

    // The pristine image still restores fine afterwards.
    auto twin = state.clone(3);
    twin->mem.dropAllPages();
    twin->constraints.clear();
    std::string err;
    EXPECT_TRUE(ser.deserialize(img, *twin, &err)) << err;
}

// --- Spill differential: resumed paths == never-spilled twins -----------

std::map<std::string, std::string>
runStorm(unsigned bits, EngineConfig config, RunResult *result = nullptr)
{
    Engine engine(machineFor(stormSource(bits)), config);
    RunResult r = engine.run();
    if (result)
        *result = r;
    return pathFingerprints(engine);
}

/** Resident cap tight enough that a storm's live set must spill. */
uint64_t
stormCap()
{
    return 3 * baseFootprint(machineFor(stormSource(1)));
}

TEST(SpillDifferential, ForkStormMatchesAllResidentOracle)
{
    auto oracle = runStorm(9, differentialConfig(1));
    ASSERT_EQ(oracle.size(), 512u);
    for (unsigned workers : {1u, 2u, 4u}) {
        EngineConfig config = differentialConfig(workers);
        config.maxResidentBytes = stormCap();
        RunResult r;
        auto capped = runStorm(9, config, &r);
        EXPECT_GT(r.statesSpilled, 0u)
            << workers << " workers: cap never forced a spill";
        EXPECT_GT(r.statesRestored, 0u);
        EXPECT_EQ(r.spillFailures, 0u);
        EXPECT_GT(r.spillBytes, 0u);
        EXPECT_GT(r.residentStatesPeak, 0u);
        expectSamePathSets(oracle, capped,
                           strprintf("spill@%u workers", workers));
    }
}

TEST(SpillDifferential, LicenseCheckMatchesAllResidentOracle)
{
    // Kernel workload with symbolic memory: spill images carry real
    // symbolic overlays, console transcripts and timer state.
    auto license_machine = [] {
        vm::MachineConfig m;
        m.ramSize = guest::kRamSize;
        m.program = isa::assemble(guest::kernelSource() +
                                  guest::licenseCheckSource());
        m.deviceSetup = [](vm::DeviceSet &devices) {
            devices.add(std::make_unique<vm::ConsoleDevice>());
            devices.add(std::make_unique<vm::TimerDevice>());
            devices.add(std::make_unique<vm::DmaNic>());
        };
        return m;
    };
    auto run_license = [&](EngineConfig config, RunResult *result) {
        Engine engine(license_machine(), config);
        auto &state = engine.initialState();
        uint32_t key_addr = guest::addConfigString(
            state, engine.builder(), 0, "AAAAAAAA");
        guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                         key_addr);
        engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                               "license");
        RunResult r = engine.run();
        if (result)
            *result = r;
        return pathFingerprints(engine);
    };
    auto oracle = run_license(differentialConfig(1), nullptr);
    EXPECT_GT(oracle.size(), 4u);
    for (unsigned workers : {1u, 2u, 4u}) {
        EngineConfig config = differentialConfig(workers);
        config.maxResidentBytes = 3 * baseFootprint(license_machine());
        RunResult r;
        auto capped = run_license(config, &r);
        EXPECT_GT(r.statesSpilled, 0u);
        EXPECT_EQ(r.spillFailures, 0u);
        expectSamePathSets(oracle, capped,
                           strprintf("license spill@%u workers",
                                     workers));
    }
}

// --- Spill fault injection ----------------------------------------------

TEST(SpillFaults, TransientWriteAndReadFaultsAreAbsorbedByRetry)
{
    auto oracle = runStorm(7, differentialConfig(1));
    ASSERT_EQ(oracle.size(), 128u);
    for (SpillFaultPolicy::Kind kind : {SpillFaultPolicy::Kind::ShortWrite,
                                        SpillFaultPolicy::Kind::Enospc,
                                        SpillFaultPolicy::Kind::ShortRead}) {
        EngineConfig config = differentialConfig(1);
        config.maxResidentBytes = stormCap();
        config.spillFaults.enabled = true;
        config.spillFaults.faultRate = 1.0; // every op, first attempt
        config.spillFaults.kind = kind;
        config.spillFaults.persistent = false;
        RunResult r;
        auto run = runStorm(7, config, &r);
        EXPECT_GT(r.statesSpilled, 0u)
            << "kind " << static_cast<int>(kind);
        EXPECT_GT(r.spillRetries, 0u)
            << "kind " << static_cast<int>(kind)
            << ": retry wrapper never engaged";
        EXPECT_EQ(r.spillFailures, 0u)
            << "kind " << static_cast<int>(kind)
            << ": transient fault escalated to a kill";
        expectSamePathSets(oracle, run,
                           strprintf("transient fault kind %d",
                                     static_cast<int>(kind)));
    }
}

TEST(SpillFaults, PersistentWriteFailureRePinsStatesInMemory)
{
    auto oracle = runStorm(7, differentialConfig(1));
    for (SpillFaultPolicy::Kind kind : {SpillFaultPolicy::Kind::ShortWrite,
                                        SpillFaultPolicy::Kind::Enospc}) {
        EngineConfig config = differentialConfig(1);
        config.maxResidentBytes = stormCap();
        config.spillFaults.enabled = true;
        config.spillFaults.faultRate = 1.0;
        config.spillFaults.kind = kind;
        config.spillFaults.persistent = true;
        RunResult r;
        auto run = runStorm(7, config, &r);
        // Every write fails beyond retries: states are re-pinned and
        // the run completes all-resident — degraded, not wrong.
        EXPECT_EQ(r.statesSpilled, 0u);
        EXPECT_EQ(r.spillFailures, 0u);
        EXPECT_GT(r.spillRetries, 0u);
        expectSamePathSets(oracle, run,
                           strprintf("persistent write fault kind %d",
                                     static_cast<int>(kind)));
    }
}

TEST(SpillFaults, UnrecoverableRestoreFailuresKillCleanly)
{
    // Persistent short reads and (latent) corrupt headers make every
    // restore impossible. Affected paths must terminate with
    // SpillFailure — distinct status, accounted in the result, zero
    // crashes — while never-spilled paths complete normally.
    for (SpillFaultPolicy::Kind kind :
         {SpillFaultPolicy::Kind::ShortRead,
          SpillFaultPolicy::Kind::CorruptHeader}) {
        EngineConfig config = differentialConfig(1);
        config.maxResidentBytes = stormCap();
        config.spillFaults.enabled = true;
        config.spillFaults.faultRate = 1.0;
        config.spillFaults.kind = kind;
        config.spillFaults.persistent =
            kind == SpillFaultPolicy::Kind::ShortRead;
        RunResult r;
        runStorm(7, config, &r);
        EXPECT_GT(r.statesSpilled, 0u);
        EXPECT_GT(r.spillFailures, 0u)
            << "kind " << static_cast<int>(kind);
        // Every path reached a terminal status; nothing leaked or
        // wedged.
        EXPECT_EQ(r.completed + r.spillFailures + r.crashed + r.aborted,
                  r.statesCreated)
            << "kind " << static_cast<int>(kind);
    }
}

TEST(SpillFaults, ParallelRestoreFailureIsRaceFree)
{
    // The SpillFailure kill path under the worker pool (tsan gate).
    EngineConfig config = differentialConfig(4);
    config.maxResidentBytes = stormCap();
    config.spillFaults.enabled = true;
    config.spillFaults.faultRate = 1.0;
    config.spillFaults.kind = SpillFaultPolicy::Kind::ShortRead;
    config.spillFaults.persistent = true;
    RunResult r;
    runStorm(7, config, &r);
    EXPECT_EQ(r.completed + r.spillFailures + r.crashed + r.aborted,
              r.statesCreated);
}

// --- s2e_merge_point merging --------------------------------------------

/** 8 paths diverging in r5/flags only, all meeting at one merge
 *  point, then a shared post-merge loop. With merging enabled all 8
 *  coalesce into one survivor. */
std::string
mergeSource(bool diverge_console = false)
{
    std::string pre_merge = diverge_console ? R"(
        addi r5, 65
        out 0x10, r5     ; per-path console byte: digests diverge
        subi r5, 65
)"
                                            : "";
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq m1
        ori r5, 1
    m1: testi r1, 2
        jeq m2
        ori r5, 2
    m2: testi r1, 4
        jeq m3
        ori r5, 4
    m3:
)" + pre_merge + R"(
        s2e_merge
        movi r10, 5
    post:
        add r6, r5
        subi r10, 1
        cmpi r10, 0
        jne post
        hlt
    )";
}

TEST(MergePoints, OpcodeIsNoOpWhenDisabled)
{
    Engine engine(machineFor(mergeSource()), differentialConfig(1));
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 8u);
    EXPECT_EQ(r.completed, 8u);
    EXPECT_EQ(r.mergedStates, 0u);
}

TEST(MergePoints, CompatibleSiblingsCoalesceIntoOneSurvivor)
{
    EngineConfig config = differentialConfig(1);
    config.enableMergePoints = true;
    Engine engine(machineFor(mergeSource()), config);
    size_t merge_events = 0;
    engine.events().onStateMerge.subscribe(
        [&](const MergeInfo &info) {
            merge_events++;
            EXPECT_NE(info.survivor, info.absorbed);
        });
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 8u);
    EXPECT_EQ(r.mergedStates, 7u);
    EXPECT_EQ(merge_events, 7u);
    EXPECT_EQ(r.completed, 1u);

    // Soundness: the survivor's constraints + ITE'd r5 preserve the
    // union of per-path values — every pre-merge value 0..7 is still
    // feasible, anything else is not.
    const ExecutionState *survivor = nullptr;
    for (const auto &s : engine.allStates())
        if (s->status == StateStatus::Halted)
            survivor = s.get();
    ASSERT_NE(survivor, nullptr);
    EXPECT_EQ(survivor->mergedSiblings, 7u);
    ExprBuilder &b = engine.builder();
    ExprRef r5 = survivor->cpu.regs[5].toExpr(b);
    solver::Solver solver(b, config.solverOptions);
    for (uint32_t value = 0; value < 8; ++value) {
        auto feasible = solver.mayBeTrue(
            survivor->constraints, b.eq(r5, b.constant(value, 32)));
        EXPECT_TRUE(feasible.yes())
            << "pre-merge value " << value << " lost by the merge";
    }
    auto impossible = solver.mayBeTrue(survivor->constraints,
                                       b.eq(r5, b.constant(8, 32)));
    EXPECT_TRUE(impossible.no())
        << "merge invented an infeasible value";
}

TEST(MergePoints, MergedRunsAreDeterministicAcrossWorkerCounts)
{
    auto run_merged = [](unsigned workers, uint64_t cap) {
        EngineConfig config = differentialConfig(workers);
        config.enableMergePoints = true;
        config.maxResidentBytes = cap;
        Engine engine(machineFor(mergeSource()), config);
        engine.run();
        return pathFingerprints(engine);
    };
    // All-resident serial oracle, then spill+merge at 1/2/4 workers:
    // identical per-path outcomes (absorbed states keep their
    // pre-merge fingerprint; the survivor's ITE values fold in a
    // deterministic order).
    auto oracle = run_merged(1, 0);
    ASSERT_EQ(oracle.size(), 8u);
    for (unsigned workers : {1u, 2u, 4u})
        expectSamePathSets(oracle, run_merged(workers, stormCap()),
                           strprintf("merge@%u workers", workers));
}

TEST(MergePoints, IncompatibleStatesRefuseAndMatchDisabledOracle)
{
    // Diverging console transcripts (device digest mismatch): nothing
    // merges and the run is equivalent to the merge-disabled oracle.
    Engine oracle_engine(machineFor(mergeSource(true)),
                         differentialConfig(1));
    oracle_engine.run();
    auto oracle = pathFingerprints(oracle_engine);
    ASSERT_EQ(oracle.size(), 8u);

    for (unsigned workers : {1u, 2u}) {
        EngineConfig config = differentialConfig(workers);
        config.enableMergePoints = true;
        Engine engine(machineFor(mergeSource(true)), config);
        RunResult r = engine.run();
        EXPECT_EQ(r.mergedStates, 0u);
        EXPECT_EQ(r.completed, 8u);
        expectSamePathSets(oracle, pathFingerprints(engine),
                           strprintf("refused merge@%u workers",
                                     workers));
    }
}

// --- Fork-storm soak -----------------------------------------------------

TEST(LifecycleSoak, FourThousandPathStormStaysUnderResidentCap)
{
    // 2^12 = 4096 paths under a resident cap of ~3 states with the
    // worker pool: the governor must keep spilling cold states while
    // the storm forks, and every path must still complete.
    EngineConfig config = differentialConfig(4);
    config.maxResidentBytes = stormCap();
    RunResult r;
    runStorm(12, config, &r);
    EXPECT_EQ(r.statesCreated, 4096u);
    EXPECT_EQ(r.completed, 4096u);
    EXPECT_EQ(r.spillFailures, 0u);
    EXPECT_GT(r.statesSpilled, 0u);
    EXPECT_GT(r.statesRestored, 0u);
    EXPECT_GT(r.residentStatesPeak, 0u);
}

// --- Terminal resource release ------------------------------------------

TEST(LifecycleRobustness, SpillImagesReleasedOnceAndDirRemoved)
{
    // Trip a budget mid-storm so some states die *while spilled*: the
    // kill path must release each spill image exactly once (ASan
    // would catch a double release of the solver context; the
    // directory check catches leaked images).
    std::string dir =
        (fs::temp_directory_path() /
         strprintf("s2e-lifecycle-test-%ld", static_cast<long>(getpid())))
            .string();
    for (unsigned workers : {1u, 4u}) {
        fs::remove_all(dir);
        {
            EngineConfig config;
            config.numWorkers = workers;
            config.solverOptions.useModelCache = false;
            config.maxResidentBytes = stormCap();
            config.spillDir = dir;
            config.maxInstructions = 4000;
            Engine engine(machineFor(stormSource(9, 40)), config);
            RunResult r = engine.run();
            EXPECT_TRUE(r.budgetExhausted);
            EXPECT_GT(r.statesSpilled, 0u)
                << workers << " workers: no spills before the budget";
        }
        EXPECT_FALSE(fs::exists(dir))
            << workers
            << " workers: spill directory leaked past the engine";
    }
}

} // namespace
} // namespace s2e::core
