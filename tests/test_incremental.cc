/**
 * @file
 * Incremental-vs-fresh solver differential suite: with per-path
 * incremental SAT contexts enabled, every guest workload must explore
 * exactly the same fork tree and reach the same per-path outcome
 * (terminal status + exit code, keyed by the schedule-independent
 * path id) as the fresh-solver-per-query oracle, at 1, 2 and 4
 * workers. Model *bits* may legitimately differ between the two modes
 * (the CDCL search runs over a different clause database), so test
 * cases are validated semantically — every per-path model must
 * satisfy that path's constraints — instead of being byte-compared.
 * The incremental runs must also show actual context reuse in the
 * merged telemetry, and the fresh runs none.
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/engine.hh"
#include "expr/eval.hh"
#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "obs/forktree.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::core {
namespace {

using guest::DriverKind;

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = guest::kRamSize,
           bool loopback = false)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [loopback](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        auto nic = std::make_unique<vm::DmaNic>();
        nic->setLoopback(loopback);
        devices.add(std::move(nic));
    };
    return m;
}

/** No budgets (scheduling-dependent kills) and no model cache (hit
 *  patterns depend on query history, which differs between worker
 *  counts); useIncremental is the variable under test. */
EngineConfig
configFor(unsigned workers, bool incremental)
{
    EngineConfig config;
    config.numWorkers = workers;
    config.solverOptions.useModelCache = false;
    config.solverOptions.useIncremental = incremental;
    return config;
}

/** Everything one run contributes to the differential comparison. */
struct RunOutcome {
    /** path id -> "status:<name> exit:<code>" for every explored path. */
    std::map<std::string, std::string> paths;
    /** Canonical `s2e.fork_tree.v1` JSON (schedule-independent). */
    std::string forkTree;
    uint64_t ctxReuses = 0;
    uint64_t gatesSaved = 0;
};

/** Run the prepared engine to completion, validate every path's test
 *  case against its constraints, and collect the comparison data. */
RunOutcome
finishRun(Engine &engine)
{
    obs::ForkTreeRecorder recorder(engine.events());
    engine.run();
    RunOutcome out;
    for (const auto &s : engine.allStates()) {
        bool fresh =
            out.paths
                .emplace(s->pathId(),
                         strprintf("status:%s exit:%u",
                                   stateStatusName(s->status), s->exitCode))
                .second;
        EXPECT_TRUE(fresh) << "duplicate path id " << s->pathId();
        if (s->constraints.empty())
            continue;
        // The path's test case must satisfy the path's constraints —
        // semantic validation, deliberately not a bit-compare against
        // the other mode's model.
        expr::Assignment model;
        auto outcome =
            engine.solver().getInitialValues(s->constraints, &model);
        EXPECT_TRUE(outcome.isSat())
            << "path " << s->pathId() << " has no test case";
        if (outcome.isSat()) {
            for (ExprRef c : s->constraints)
                EXPECT_TRUE(expr::evaluateBool(c, model))
                    << "model violates a constraint on path "
                    << s->pathId();
        }
    }
    out.forkTree = recorder.toCanonicalJson();
    out.ctxReuses = engine.solver().stats().get("solver.ctx_reuses");
    out.gatesSaved = engine.solver().stats().get("solver.gates_saved");
    return out;
}

// --- Workload runners ----------------------------------------------------

RunOutcome
runLicense(unsigned workers, bool incremental)
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();
    Engine engine(machineFor(src), configFor(workers, incremental));
    auto &state = engine.initialState();
    uint32_t key_addr = guest::addConfigString(state, engine.builder(), 0,
                                               "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                           "license");
    return finishRun(engine);
}

RunOutcome
runUrlParser(unsigned workers, bool incremental)
{
    std::string src = guest::kernelSource() + guest::urlParserSource();
    Engine engine(machineFor(src), configFor(workers, incremental));
    auto &state = engine.initialState();
    std::string url = "http://ab";
    for (size_t i = 0; i <= url.size(); ++i)
        state.mem.write(guest::kUrlBuffer + static_cast<uint32_t>(i),
                        Value(i < url.size() ? url[i] : 0), 1,
                        engine.builder());
    engine.makeMemSymbolic(state, guest::kUrlBuffer + 7, 2, "url");
    return finishRun(engine);
}

RunOutcome
runLua(unsigned workers, bool incremental)
{
    std::string src = guest::kernelSource() + guest::luaSource();
    Engine engine(machineFor(src), configFor(workers, incremental));
    auto &state = engine.initialState();
    std::string program = "!1+2;";
    for (size_t i = 0; i <= program.size(); ++i)
        state.mem.write(guest::kLuaInput + static_cast<uint32_t>(i),
                        Value(i < program.size() ? program[i] : 0), 1,
                        engine.builder());
    engine.makeMemSymbolic(state, guest::kLuaInput + 1, 1, "lua");
    return finishRun(engine);
}

RunOutcome
runPing(unsigned workers, bool incremental)
{
    std::string src = guest::kernelSource() +
                      guest::driverSource(DriverKind::Dma) +
                      guest::pingSource(/*patched=*/true);
    Engine engine(machineFor(src, guest::kRamSize, /*loopback=*/true),
                  configFor(workers, incremental));
    guest::setConfig(engine.initialState(), engine.builder(),
                     guest::kCfgCardType, 0);
    return finishRun(engine);
}

/** Nine independent symbolic branch bits: 512 paths, high SAT-query
 *  rate on every path — the context-reuse sweet spot. */
const char *
stressSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: testi r1, 8
        jeq b4
        ori r5, 8
    b4: testi r1, 16
        jeq b5
        ori r5, 16
    b5: testi r1, 32
        jeq b6
        ori r5, 32
    b6: testi r1, 64
        jeq b7
        ori r5, 64
    b7: testi r1, 128
        jeq b8
        ori r5, 128
    b8: testi r1, 256
        jeq b9
        ori r5, 256
    b9: movi r3, 0
        movi r4, 0
    work:
        add r3, r5
        addi r4, 1
        cmpi r4, 20
        jne work
        hlt
    )";
}

RunOutcome
runStress(unsigned workers, bool incremental)
{
    Engine engine(machineFor(stressSource(), 64 * 1024),
                  configFor(workers, incremental));
    return finishRun(engine);
}

// --- The differential check ----------------------------------------------

constexpr unsigned kWorkerCounts[] = {1, 2, 4};

/** Fresh-serial oracle vs incremental × {1, 2, 4} workers.
 *  expect_gates is separate from expect_reuse: constraints that blast
 *  to pure wiring (single-bit masks) create zero Tseitin gates, so
 *  their guards honestly save zero gates on reuse. */
void
expectIncrementalMatchesFresh(RunOutcome (*run)(unsigned, bool),
                              bool expect_reuse, bool expect_gates)
{
    RunOutcome fresh = run(1, /*incremental=*/false);
    EXPECT_EQ(fresh.ctxReuses, 0u) << "fresh oracle used the context";
    for (unsigned w : kWorkerCounts) {
        RunOutcome inc = run(w, /*incremental=*/true);
        EXPECT_EQ(fresh.paths, inc.paths)
            << "per-path outcomes diverged with " << w << " workers";
        EXPECT_EQ(fresh.forkTree, inc.forkTree)
            << "fork tree diverged with " << w << " workers";
        if (expect_reuse) {
            EXPECT_GT(inc.ctxReuses, 0u)
                << "no context reuse with " << w << " workers";
        }
        if (expect_gates) {
            EXPECT_GT(inc.gatesSaved, 0u)
                << "no gates saved with " << w << " workers";
        }
    }
}

TEST(IncrementalDifferential, LicenseCheck)
{
    expectIncrementalMatchesFresh(runLicense, /*expect_reuse=*/true,
                                  /*expect_gates=*/true);
}

TEST(IncrementalDifferential, UrlParser)
{
    expectIncrementalMatchesFresh(runUrlParser, /*expect_reuse=*/true,
                                  /*expect_gates=*/true);
}

TEST(IncrementalDifferential, LuaInterpreter)
{
    expectIncrementalMatchesFresh(runLua, /*expect_reuse=*/true,
                                  /*expect_gates=*/true);
}

TEST(IncrementalDifferential, PingConcretePath)
{
    // Concrete workload: exercises the binding/unbinding around
    // device, DMA and interrupt handling even when (almost) no
    // queries reach the SAT layer.
    expectIncrementalMatchesFresh(runPing, /*expect_reuse=*/false,
                                  /*expect_gates=*/false);
}

TEST(IncrementalDifferential, ForkStorm)
{
    // The nine testi constraints are single-bit extractions — all
    // wiring, no gates — so only reuse is asserted.
    expectIncrementalMatchesFresh(runStress, /*expect_reuse=*/true,
                                  /*expect_gates=*/false);
}

TEST(IncrementalDifferential, StressPathCountIsExact)
{
    RunOutcome inc = runStress(2, /*incremental=*/true);
    EXPECT_EQ(inc.paths.size(), 512u);
}

} // namespace
} // namespace s2e::core
