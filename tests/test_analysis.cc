/**
 * @file
 * Static-analysis framework tests: the TB verifier (one seeded
 * corruption per invariant), the dataflow passes, the optimization
 * pipeline, differential equivalence of optimized vs naive execution
 * over the guest workloads, and static CFG recovery with the
 * static-vs-multi-path diff.
 */

#include <gtest/gtest.h>

#include <set>

#include "analysis/cfg.hh"
#include "analysis/dataflow.hh"
#include "analysis/passes.hh"
#include "analysis/verifier.hh"
#include "core/engine.hh"
#include "dbt/fastexec.hh"
#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "plugins/tracer.hh"
#include "support/logging.hh"
#include "tools/ddt.hh"
#include "tools/rev.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::analysis {
namespace {

using dbt::MicroOp;
using dbt::TranslationBlock;
using dbt::UOp;

// --- Builders --------------------------------------------------------------

MicroOp
op(UOp o, uint16_t dst = 0, uint16_t a = 0, uint16_t b = 0,
   uint32_t imm = 0, uint8_t reg = 0)
{
    MicroOp m;
    m.op = o;
    m.dst = dst;
    m.a = a;
    m.b = b;
    m.imm = imm;
    m.reg = reg;
    return m;
}

/** One-instruction TB from a raw op list. */
TranslationBlock
makeTb(std::vector<MicroOp> ops, uint16_t num_temps)
{
    TranslationBlock tb;
    tb.pc = 0x1000;
    tb.byteSize = 1;
    tb.numTemps = num_temps;
    tb.ops = std::move(ops);
    tb.instrPcs = {0x1000};
    tb.instrOpIndex = {0};
    tb.marked = {false};
    tb.origOpCount = static_cast<uint32_t>(tb.ops.size());
    tb.origNumTemps = num_temps;
    return tb;
}

dbt::Translator
rawTranslator()
{
    dbt::TranslatorConfig c;
    c.optimize = false;
    c.verify = false;
    return dbt::Translator(c);
}

/** Translate the first block of an assembled source. */
std::shared_ptr<TranslationBlock>
translateFirst(const std::string &source, dbt::Translator &&t)
{
    dbt::FastMachine m(64 * 1024);
    m.load(isa::assemble(source));
    dbt::CodeReader reader = [&m](uint32_t a, uint8_t *out) {
        if (a >= m.mem.size())
            return false;
        *out = m.mem[a];
        return true;
    };
    return t.translate(m.pc, reader);
}

// --- Verifier: valid blocks ------------------------------------------------

TEST(Verifier, AcceptsTranslatedBlocks)
{
    for (const char *src : {
             "movi r1, 5\n add r1, r1\n hlt\n",
             "movi r1, 1\n cmpi r1, 5\n jne done\n done: hlt\n",
             "movi r1, 0x100\n ldw r2, [r1]\n stw [r1+4], r2\n hlt\n",
             "s2e_symreg r1\n cmpi r1, 3\n jeq t\n t: hlt\n",
             "movi r1, 2\n push r1\n pop r2\n ret\n",
         }) {
        auto tb = translateFirst(src, rawTranslator());
        VerifyResult r = verifyBlock(*tb);
        EXPECT_TRUE(r.ok) << src << ": " << r.error;
    }
}

TEST(Verifier, AcceptsEmptyDecodeFaultBlock)
{
    TranslationBlock tb;
    tb.pc = 0x1000;
    EXPECT_TRUE(verifyBlock(tb).ok);
}

// --- Verifier: seeded corruptions, one per invariant -----------------------

TEST(Verifier, RejectsMissingTerminator)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 7)}, 1);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("terminator"), std::string::npos);
}

TEST(Verifier, RejectsTerminatorMidBlock)
{
    auto tb = makeTb({op(UOp::Goto, 0, 0, 0, 0x2000),
                      op(UOp::Goto, 0, 0, 0, 0x2000)},
                     0);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_EQ(r.opIndex, 0u);
}

TEST(Verifier, RejectsUseBeforeDefinition)
{
    // t0 consumed by SetReg before anything defines it.
    auto tb = makeTb({op(UOp::SetReg, 0, /*a=*/0, 0, 0, /*reg=*/1),
                      op(UOp::Halt)},
                     1);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("before definition"), std::string::npos);
}

TEST(Verifier, RejectsOperandTempOutOfRange)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1),
                      op(UOp::Add, 0, /*a=*/0, /*b=*/9), op(UOp::Halt)},
                     1);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("out of range"), std::string::npos);
}

TEST(Verifier, RejectsDstTempOutOfRange)
{
    auto tb = makeTb({op(UOp::Const, /*dst=*/5, 0, 0, 1), op(UOp::Halt)},
                     1);
    ASSERT_FALSE(verifyBlock(tb).ok);
}

TEST(Verifier, RejectsRegisterIdOutOfRange)
{
    auto tb = makeTb({op(UOp::GetReg, 0, 0, 0, 0, /*reg=*/16),
                      op(UOp::Halt)},
                     1);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("register"), std::string::npos);
}

TEST(Verifier, RejectsFlagIdOutOfRange)
{
    auto tb = makeTb({op(UOp::GetFlag, 0, 0, 0, 0, /*reg=*/4),
                      op(UOp::Halt)},
                     1);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("flag"), std::string::npos);
}

TEST(Verifier, RejectsBadAccessSize)
{
    auto corrupt = makeTb({op(UOp::Const, 0, 0, 0, 0x100),
                           op(UOp::Load, 1, 0), op(UOp::Halt)},
                          2);
    corrupt.ops[1].size = 3;
    VerifyResult r = verifyBlock(corrupt);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("size"), std::string::npos);
}

TEST(Verifier, RejectsBadS2OpPayload)
{
    auto tb = makeTb({op(UOp::S2Op, 0, 0, 0, /*imm=*/0x77),
                      op(UOp::Halt)},
                     0);
    VerifyResult r = verifyBlock(tb);
    ASSERT_FALSE(r.ok);
    EXPECT_NE(r.error.find("s2op"), std::string::npos);
}

TEST(Verifier, RejectsS2OpRegisterOutOfRange)
{
    auto tb = makeTb(
        {op(UOp::S2Op, 0, 0, 0,
            static_cast<uint32_t>(isa::Opcode::S2SymReg), /*reg=*/20),
         op(UOp::Halt)},
        0);
    ASSERT_FALSE(verifyBlock(tb).ok);
}

TEST(Verifier, RejectsInstrMapSizeMismatch)
{
    auto tb = makeTb({op(UOp::Halt)}, 0);
    tb.instrOpIndex.push_back(0); // one more entry than instrPcs
    ASSERT_FALSE(verifyBlock(tb).ok);
}

TEST(Verifier, RejectsDecreasingInstrOpIndex)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1), op(UOp::Halt)}, 1);
    tb.instrPcs = {0x1000, 0x1002};
    tb.instrOpIndex = {1, 0};
    tb.marked = {false, false};
    ASSERT_FALSE(verifyBlock(tb).ok);
}

TEST(Verifier, RejectsInstrOpIndexBeyondOps)
{
    auto tb = makeTb({op(UOp::Halt)}, 0);
    tb.instrOpIndex = {5};
    ASSERT_FALSE(verifyBlock(tb).ok);
}

TEST(Verifier, RejectsOpsInEmptyBlock)
{
    TranslationBlock tb;
    tb.pc = 0x1000;
    tb.ops.push_back(op(UOp::Halt));
    ASSERT_FALSE(verifyBlock(tb).ok);
}

// --- Dataflow --------------------------------------------------------------

TEST(Dataflow, DefUseChains)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1),      // t0 = 1
                      op(UOp::Const, 1, 0, 0, 2),      // t1 = 2
                      op(UOp::Add, 2, 0, 1),           // t2 = t0 + t1
                      op(UOp::SetReg, 0, 2, 0, 0, 3),  // r3 = t2
                      op(UOp::Halt)},
                     3);
    DefUse du = computeDefUse(tb);
    EXPECT_EQ(du.temps[0].def, 0);
    EXPECT_EQ(du.temps[1].def, 1);
    EXPECT_EQ(du.temps[2].def, 2);
    ASSERT_EQ(du.temps[0].uses.size(), 1u);
    EXPECT_EQ(du.temps[0].uses[0], 2u);
    ASSERT_EQ(du.temps[2].uses.size(), 1u);
    EXPECT_EQ(du.temps[2].uses[0], 3u);
}

TEST(Dataflow, LivenessMarksDeadTempChain)
{
    // t0..t2 feed only each other; nothing escapes.
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1), op(UOp::Const, 1, 0, 0, 2),
                      op(UOp::Add, 2, 0, 1), op(UOp::Halt)},
                     3);
    Liveness lv = computeLiveness(tb);
    EXPECT_FALSE(lv.liveOps[0]);
    EXPECT_FALSE(lv.liveOps[1]);
    EXPECT_FALSE(lv.liveOps[2]);
    EXPECT_TRUE(lv.liveOps[3]);
    EXPECT_EQ(lv.deadTempOps, 3u);
}

TEST(Dataflow, LivenessFlagsLiveOutOfBlock)
{
    // A single SetFlag with no in-block reader must stay: flags are
    // architectural state the next block (or an interrupt) reads.
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1),
                      op(UOp::SetFlag, 0, 0, 0, 0, /*flag=*/0),
                      op(UOp::Halt)},
                     1);
    Liveness lv = computeLiveness(tb);
    EXPECT_TRUE(lv.liveOps[1]);
    EXPECT_EQ(lv.deadFlagWrites, 0u);
}

TEST(Dataflow, LivenessFindsOverwrittenFlagWrite)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1),
                      op(UOp::SetFlag, 0, 0, 0, 0, /*flag=*/0),
                      op(UOp::Const, 1, 0, 0, 0),
                      op(UOp::SetFlag, 0, 1, 0, 0, /*flag=*/0),
                      op(UOp::Halt)},
                     2);
    Liveness lv = computeLiveness(tb);
    EXPECT_FALSE(lv.liveOps[1]); // overwritten before any read
    EXPECT_TRUE(lv.liveOps[3]);  // final writer: live out
    EXPECT_EQ(lv.deadFlagWrites, 1u);
}

TEST(Dataflow, LivenessGetFlagKeepsWriter)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 1),
                      op(UOp::SetFlag, 0, 0, 0, 0, /*flag=*/2),
                      op(UOp::GetFlag, 1, 0, 0, 0, /*flag=*/2),
                      op(UOp::SetReg, 0, 1, 0, 0, 5),
                      op(UOp::Const, 2, 0, 0, 0),
                      op(UOp::SetFlag, 0, 2, 0, 0, /*flag=*/2),
                      op(UOp::Halt)},
                     3);
    Liveness lv = computeLiveness(tb);
    EXPECT_TRUE(lv.liveOps[1]); // read by the GetFlag at index 2
    EXPECT_TRUE(lv.liveOps[5]);
}

TEST(Dataflow, ConstantsPropagateThroughRegisters)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 21),
                      op(UOp::SetReg, 0, 0, 0, 0, /*reg=*/1),
                      op(UOp::GetReg, 1, 0, 0, 0, /*reg=*/1),
                      op(UOp::Add, 2, 1, 1),
                      op(UOp::SetReg, 0, 2, 0, 0, /*reg=*/2),
                      op(UOp::Halt)},
                     3);
    Constants c = computeConstants(tb);
    ASSERT_TRUE(c.result[2].has_value());
    EXPECT_EQ(*c.result[2], 21u);
    ASSERT_TRUE(c.result[3].has_value());
    EXPECT_EQ(*c.result[3], 42u);
}

TEST(Dataflow, ConstantsStopAtLoads)
{
    auto tb = makeTb({op(UOp::Const, 0, 0, 0, 0x100),
                      op(UOp::Load, 1, 0), op(UOp::Add, 2, 1, 1),
                      op(UOp::Halt)},
                     3);
    tb.ops[1].size = 4;
    Constants c = computeConstants(tb);
    EXPECT_FALSE(c.result[1].has_value());
    EXPECT_FALSE(c.result[2].has_value());
}

TEST(Dataflow, ConstantsInvalidatedByS2Op)
{
    auto tb = makeTb(
        {op(UOp::Const, 0, 0, 0, 7),
         op(UOp::SetReg, 0, 0, 0, 0, /*reg=*/1),
         op(UOp::S2Op, 0, 0, 0,
            static_cast<uint32_t>(isa::Opcode::S2SymReg), /*reg=*/1),
         op(UOp::GetReg, 1, 0, 0, 0, /*reg=*/1), op(UOp::Halt)},
        2);
    Constants c = computeConstants(tb);
    EXPECT_FALSE(c.result[3].has_value());
}

TEST(Dataflow, FoldBinaryMatchesInterpreterEdgeCases)
{
    // The documented gisa edge cases: division by zero, INT_MIN/-1,
    // shift counts >= 32.
    EXPECT_EQ(foldBinary(UOp::UDiv, 5, 0), 0xFFFFFFFFu);
    EXPECT_EQ(foldBinary(UOp::SDiv, 5, 0), 0xFFFFFFFFu);
    EXPECT_EQ(foldBinary(UOp::SDiv, 0x80000000u, 0xFFFFFFFFu),
              0x80000000u);
    EXPECT_EQ(foldBinary(UOp::URem, 5, 0), 5u);
    EXPECT_EQ(foldBinary(UOp::SRem, 5, 0), 5u);
    EXPECT_EQ(foldBinary(UOp::SRem, 5, 0xFFFFFFFFu), 0u);
    EXPECT_EQ(foldBinary(UOp::Shl, 1, 32), 0u);
    EXPECT_EQ(foldBinary(UOp::Shr, 0x80000000u, 32), 0u);
    EXPECT_EQ(foldBinary(UOp::Sar, 0x80000000u, 32), 0xFFFFFFFFu);
    EXPECT_EQ(foldBinary(UOp::Sar, 0x40000000u, 32), 0u);
    EXPECT_EQ(foldBinary(UOp::CmpSlt, 0xFFFFFFFFu, 0), 1u);
}

// --- Passes ----------------------------------------------------------------

TEST(Passes, ConstantFoldTurnsKnownBranchIntoGoto)
{
    // The optimized twin of Translator.BlockEndsAtBranch: all-constant
    // inputs make the jne statically decided.
    std::string src = "movi r1, 1\n"
                      "cmpi r1, 5\n"
                      "jne skip\n"
                      "nop\n"
                      "skip: hlt\n";
    isa::Program prog = isa::assemble(src);
    auto tb = translateFirst(src,
                             dbt::Translator(dbt::TranslatorConfig{
                                 .optimize = true, .verify = true}));
    ASSERT_FALSE(tb->ops.empty());
    EXPECT_EQ(tb->ops.back().op, UOp::Goto);
    // 1 != 5: the branch is taken, so the Goto targets `skip`.
    EXPECT_EQ(tb->ops.back().imm, prog.symbol("skip"));
}

TEST(Passes, DeadFlagElimRemovesOverwrittenWriters)
{
    auto raw = translateFirst("movi r1, 1\n movi r2, 2\n"
                              "add r1, r2\n add r1, r2\n hlt\n",
                              rawTranslator());
    TranslationBlock tb = *raw;
    PassStats stats;
    size_t removed = deadFlagElim(tb, &stats);
    // The first add fully materializes Z/N/C/V; the second overwrites
    // all four before anything reads them.
    EXPECT_GE(removed, 4u);
    EXPECT_EQ(stats.deadFlagOps, removed);
    EXPECT_TRUE(verifyBlock(tb).ok);
}

TEST(Passes, DeadFlagElimKeepsReadFlags)
{
    auto raw = translateFirst("movi r1, 1\n cmpi r1, 1\n jeq t\n t: hlt\n",
                              rawTranslator());
    TranslationBlock tb = *raw;
    size_t z_writes_before = 0;
    for (const auto &o : tb.ops)
        if (o.op == UOp::SetFlag && o.reg == 0)
            z_writes_before++;
    deadFlagElim(tb);
    size_t z_writes_after = 0;
    for (const auto &o : tb.ops)
        if (o.op == UOp::SetFlag && o.reg == 0)
            z_writes_after++;
    // cmpi's Z write feeds the jeq: it must survive.
    EXPECT_EQ(z_writes_before, z_writes_after);
}

TEST(Passes, DeadTempElimDropsStrandedChains)
{
    TranslationBlock tb =
        makeTb({op(UOp::Const, 0, 0, 0, 1), op(UOp::Const, 1, 0, 0, 2),
                op(UOp::Add, 2, 0, 1), op(UOp::Const, 3, 0, 0, 9),
                op(UOp::SetReg, 0, 3, 0, 0, 1), op(UOp::Halt)},
               4);
    PassStats stats;
    size_t removed = deadTempElim(tb, &stats);
    EXPECT_EQ(removed, 3u);
    EXPECT_EQ(stats.deadTempOps, 3u);
    ASSERT_EQ(tb.ops.size(), 3u);
    EXPECT_EQ(tb.ops[0].op, UOp::Const);
    EXPECT_TRUE(verifyBlock(tb).ok);
}

TEST(Passes, CompactTempsRenumbersDensely)
{
    TranslationBlock tb =
        makeTb({op(UOp::Const, 7, 0, 0, 1),
                op(UOp::SetReg, 0, 7, 0, 0, 1), op(UOp::Halt)},
               9);
    compactTemps(tb);
    EXPECT_EQ(tb.numTemps, 1u);
    EXPECT_EQ(tb.ops[0].dst, 0u);
    EXPECT_EQ(tb.ops[1].a, 0u);
    EXPECT_TRUE(verifyBlock(tb).ok);
}

TEST(Passes, OptimizeBlockShrinksAluHeavyBlock)
{
    auto raw = translateFirst("movi r1, 0\n movi r2, 0\n"
                              "add r1, r2\n xor r2, r1\n mul r2, r1\n"
                              "sub r1, r2\n cmpi r10, 0\n jne out\n"
                              "out: hlt\n",
                              rawTranslator());
    TranslationBlock tb = *raw;
    PassStats stats;
    optimizeBlock(tb, &stats);
    EXPECT_LT(tb.ops.size(), raw->ops.size());
    EXPECT_LE(tb.numTemps, raw->numTemps);
    EXPECT_GT(stats.deadFlagOps, 0u);
    // More than 5% of the emitted micro-ops must be gone (the
    // bench_overhead acceptance shape, checked here deterministically).
    EXPECT_LT(static_cast<double>(tb.ops.size()),
              0.95 * static_cast<double>(raw->ops.size()));
    EXPECT_TRUE(verifyBlock(tb).ok);
}

TEST(Passes, OptimizeRemapsInstructionBoundaries)
{
    dbt::TranslatorConfig opt_cfg;
    opt_cfg.optimize = true;
    opt_cfg.verify = true;
    auto tb = translateFirst("movi r1, 1\n movi r2, 2\n"
                             "add r1, r2\n add r2, r1\n hlt\n",
                             dbt::Translator(opt_cfg));
    ASSERT_EQ(tb->instrPcs.size(), 5u);
    ASSERT_EQ(tb->instrOpIndex.size(), 5u);
    // Boundaries stay sorted and inside ops[] after op removal.
    for (size_t i = 0; i < tb->instrOpIndex.size(); ++i) {
        EXPECT_LE(tb->instrOpIndex[i], tb->ops.size());
        if (i > 0) {
            EXPECT_GE(tb->instrOpIndex[i], tb->instrOpIndex[i - 1]);
        }
    }
    // origOpCount preserves the pre-optimization size for metrics.
    EXPECT_GT(tb->origOpCount, tb->ops.size());
}

TEST(Passes, InstrPcForOpBinarySearchMatchesLinearReference)
{
    TranslationBlock tb;
    tb.pc = 0x100;
    tb.instrPcs = {0x100, 0x106, 0x10C, 0x10D};
    // Duplicate boundaries happen when optimization empties an
    // instruction's op range.
    tb.instrOpIndex = {0, 3, 3, 7};
    for (size_t idx = 0; idx < 10; ++idx) {
        uint32_t expected = tb.pc;
        for (size_t i = 0; i < tb.instrOpIndex.size(); ++i) {
            if (tb.instrOpIndex[i] > idx)
                break;
            expected = tb.instrPcs[i];
        }
        EXPECT_EQ(tb.instrPcForOp(idx), expected) << "op index " << idx;
    }
}

// --- Differential: fastexec ------------------------------------------------

/** Run a program twice (optimized / naive) and require identical
 *  architectural results. */
void
expectFastEquivalence(const std::string &source)
{
    dbt::FastMachine opt(64 * 1024), naive(64 * 1024);
    isa::Program prog = isa::assemble(source);
    opt.load(prog);
    naive.load(prog);
    dbt::TranslatorConfig on, off;
    on.optimize = true;
    on.verify = true;
    off.optimize = false;
    off.verify = true;
    dbt::FastRunResult ro = dbt::fastRun(opt, 1'000'000, nullptr, on);
    dbt::FastRunResult rn = dbt::fastRun(naive, 1'000'000, nullptr, off);

    EXPECT_EQ(ro.instructions, rn.instructions) << source;
    EXPECT_EQ(ro.halted, rn.halted);
    EXPECT_EQ(ro.finalPc, rn.finalPc);
    EXPECT_EQ(opt.pc, naive.pc);
    for (unsigned r = 0; r < isa::kNumRegs; ++r)
        EXPECT_EQ(opt.regs[r], naive.regs[r]) << "r" << r << ": " << source;
    for (unsigned f = 0; f < 4; ++f)
        EXPECT_EQ(opt.flags[f], naive.flags[f]) << "flag " << f;
    EXPECT_EQ(opt.mem, naive.mem) << source;
}

TEST(Differential, FastAluLoop)
{
    expectFastEquivalence(R"(
        .entry main
    main:
        movi r1, 0x1234
        movi r2, 0x9876
        movi r10, 500
    loop:
        add r1, r2
        xor r2, r1
        shli r1, 3
        shri r1, 1
        mul r2, r1
        or r1, r2
        and r2, r1
        sub r1, r2
        subi r10, 1
        cmpi r10, 0
        jne loop
        hlt
    )");
}

TEST(Differential, FastDivisionEdgeCases)
{
    expectFastEquivalence(R"(
        .entry main
    main:
        movi r1, 100
        movi r2, 0
        udiv r1, r2       ; /0 -> all-ones
        movi r3, 0x80000000
        movi r4, -1
        sdiv r3, r4       ; INT_MIN / -1 -> INT_MIN
        movi r5, 17
        movi r6, 0
        urem r5, r6       ; rem by 0 -> a
        movi r7, 33
        sari r7, 40       ; shift >= 32
        hlt
    )");
}

TEST(Differential, FastMemoryAndStack)
{
    expectFastEquivalence(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 0xDEADBEEF
        movi r2, 0x400
        stw [r2], r1
        ldw r3, [r2]
        stb [r2+8], r3
        ldbs r4, [r2+8]
        sth [r2+12], r3
        ldhs r5, [r2+12]
        push r3
        push r4
        pop r6
        pop r7
        call fn
        hlt
    fn:
        addi r1, 1
        ret
    )");
}

TEST(Differential, FastFlagConsumers)
{
    // Every Jcc condition, each consuming flags from a different
    // producer distance.
    expectFastEquivalence(R"(
        .entry main
    main:
        movi r9, 0
        movi r1, 5
        cmpi r1, 5
        jeq a
        movi r9, 99
    a:  cmpi r1, 6
        jne b
        movi r9, 98
    b:  cmpi r1, 9
        jb c
        movi r9, 97
    c:  cmpi r1, 2
        ja d
        movi r9, 96
    d:  movi r2, -3
        cmpi r2, 1
        jlt e
        movi r9, 95
    e:  cmpi r2, -9
        jgt f
        movi r9, 94
    f:  testi r1, 4
        jne g
        movi r9, 93
    g:  hlt
    )");
}

TEST(Differential, FastJumpTable)
{
    expectFastEquivalence(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r8, 0
        movi r1, 2          ; selector
        shli r1, 2
        movi r2, table
        add r2, r1
        ldw r3, [r2]
        jmp r3
    case0:
        addi r8, 1
        hlt
    case1:
        addi r8, 2
        hlt
    case2:
        addi r8, 4
        hlt
    table:
        .word case0, case1, case2
    )");
}

// --- Differential: full engine over the guest workloads --------------------

using core::Engine;
using core::EngineConfig;
using core::ExecutionState;
using core::StateStatus;

vm::MachineConfig
machineFor(const std::string &source)
{
    vm::MachineConfig m;
    m.ramSize = guest::kRamSize;
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        auto nic = std::make_unique<vm::DmaNic>();
        nic->setLoopback(true);
        devices.add(std::move(nic));
    };
    return m;
}

std::string
consoleOf(const ExecutionState &state)
{
    auto *console = state.devices.get<vm::ConsoleDevice>("console");
    return console ? console->output() : "";
}

/**
 * Canonical rendering of an expression DAG. The builder orders the
 * operands of commutative nodes by allocation order (pointer value),
 * which differs between two engines — and within one engine depends
 * on how many dead expressions were ever built. Sort the rendered
 * operands instead so structurally equal-modulo-commutativity
 * expressions compare equal.
 */
std::string
renderExpr(core::ExprRef e)
{
    using expr::Kind;
    if (e->isConstant())
        return strprintf("c%llu:w%u",
                         static_cast<unsigned long long>(e->value()),
                         e->width());
    if (e->isVariable())
        return e->name() + strprintf(":w%u", e->width());
    std::vector<std::string> kids;
    for (unsigned i = 0; i < e->arity(); ++i)
        kids.push_back(renderExpr(e->kid(i)));
    switch (e->kind()) {
      case Kind::Add:
      case Kind::Mul:
      case Kind::And:
      case Kind::Or:
      case Kind::Xor:
      case Kind::Eq:
        std::sort(kids.begin(), kids.end());
        break;
      default:
        break;
    }
    std::string s = strprintf("(%s w%u a%u", expr::kindName(e->kind()),
                              e->width(), e->aux());
    for (const auto &k : kids)
        s += " " + k;
    return s + ")";
}

/** Structural rendering of a Value: symbolic expressions are compared
 *  by their canonical form — expressions are hash-consed per engine,
 *  so pointer identity never holds across two engines. */
std::string
render(const core::Value &v)
{
    if (v.isConcrete())
        return std::to_string(v.concrete());
    return "sym:" + renderExpr(v.expr());
}

/**
 * Serialize everything architecturally observable about a finished
 * path into one string: status, exit code, console output, registers,
 * flags, the concrete memory image and the port-I/O trace.
 */
std::string
summarize(const ExecutionState &state, const plugins::TraceState *trace)
{
    std::string s;
    s += "status=" + std::to_string(static_cast<int>(state.status));
    s += " exit=" + std::to_string(state.exitCode);
    s += " console=[" + consoleOf(state) + "]";
    for (unsigned r = 0; r < isa::kNumRegs; ++r)
        s += " r" + std::to_string(r) + "=" + render(state.cpu.regs[r]);
    for (unsigned f = 0; f < 4; ++f)
        s += " f" + std::to_string(f) + "=" + render(state.cpu.flags[f]);
    // Concrete memory image as sparse nonzero bytes; symbolic bytes
    // are covered by the path outcomes and register expressions.
    s += " mem:";
    for (uint32_t a = 0; a < state.mem.size(); ++a) {
        uint8_t byte = 0;
        if (state.mem.readConcreteByte(a, &byte) && byte != 0)
            s += strprintf("%x=%02x,", a, byte);
    }
    s += " io:";
    if (trace)
        for (const auto &e : trace->entries)
            s += strprintf("%d@%x=%x/%u,", static_cast<int>(e.kind),
                           e.addr, e.value, e.size);
    return s;
}

/**
 * Run with the optimizer on and off; the multisets of final path
 * outcomes must match exactly (sorted: fork bookkeeping may number
 * sibling states differently, but every path must have its twin).
 */
void
expectEngineEquivalence(
    const std::string &source,
    const std::function<void(Engine &)> &setup = {},
    uint64_t max_instructions = 3'000'000)
{
    std::vector<std::string> outcomes[2];
    for (int pass = 0; pass < 2; ++pass) {
        EngineConfig config;
        config.optimizeTb = pass == 0;
        config.verifyTb = true;
        config.maxInstructions = max_instructions;
        Engine engine(machineFor(source), config);
        plugins::ExecutionTracer::Config tc;
        tc.traceBlocks = false;
        tc.tracePortIo = true;
        plugins::ExecutionTracer tracer(engine, tc);
        if (setup)
            setup(engine);
        engine.run();
        for (const auto &s : engine.allStates())
            outcomes[pass].push_back(summarize(*s, tracer.traceOf(*s)));
        std::sort(outcomes[pass].begin(), outcomes[pass].end());
    }
    ASSERT_EQ(outcomes[0].size(), outcomes[1].size());
    for (size_t i = 0; i < outcomes[0].size(); ++i)
        EXPECT_EQ(outcomes[0][i], outcomes[1][i]) << "path " << i;
}

void
writeGuestString(Engine &engine, uint32_t addr, const std::string &text)
{
    auto &state = engine.initialState();
    for (size_t i = 0; i <= text.size(); ++i)
        state.mem.write(addr + static_cast<uint32_t>(i),
                        core::Value(i < text.size() ? text[i] : 0), 1,
                        engine.builder());
}

TEST(Differential, EngineKernelSyscalls)
{
    expectEngineEquivalence(guest::kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 3
        movi r1, msg
        movi r2, 5
        int 0x30
        movi r0, 4
        movi r1, 32
        int 0x30
        hlt
    msg:
        .asciz "hello"
    )");
}

TEST(Differential, EngineUrlParser)
{
    expectEngineEquivalence(
        guest::kernelSource() + guest::urlParserSource(),
        [](Engine &e) {
            writeGuestString(e, guest::kUrlBuffer, "http://a/b/c/d");
        });
}

TEST(Differential, EngineLuaInterpreter)
{
    expectEngineEquivalence(
        guest::kernelSource() + guest::luaSource(), [](Engine &e) {
            writeGuestString(e, guest::kLuaInput, "a=6;b=7;!a*b+(2-1);");
        });
}

TEST(Differential, EngineLicenseCheckConcrete)
{
    expectEngineEquivalence(
        guest::kernelSource() + guest::licenseCheckSource(),
        [](Engine &e) {
            auto &state = e.initialState();
            uint32_t key = guest::addConfigString(state, e.builder(), 0,
                                                  "S212340Z");
            guest::setConfig(state, e.builder(), guest::kCfgLicensePtr,
                             key);
        });
}

TEST(Differential, EngineLicenseCheckSymbolic)
{
    // Multi-path: the full key symbolic. Same forks, same paths, same
    // final expressions with the optimizer on or off.
    expectEngineEquivalence(
        guest::kernelSource() + guest::licenseCheckSource(),
        [](Engine &e) {
            auto &state = e.initialState();
            uint32_t key = guest::addConfigString(state, e.builder(), 0,
                                                  "AAAAAAAA");
            guest::setConfig(state, e.builder(), guest::kCfgLicensePtr,
                             key);
            e.makeMemSymbolic(state, key, 8, "license");
        });
}

// --- Static CFG recovery ---------------------------------------------------

TEST(Cfg, StraightLineIsOneBlock)
{
    isa::Program prog = isa::assemble(R"(
        .entry main
    main:
        movi r1, 1
        addi r1, 2
        hlt
    )");
    StaticCfg cfg = recoverStaticCfg(prog, {prog.entry}, 0, 0x1000);
    ASSERT_EQ(cfg.blocks.size(), 1u);
    const auto &blk = cfg.blocks.begin()->second;
    EXPECT_EQ(blk.instrPcs.size(), 3u);
    EXPECT_TRUE(blk.successors.empty());
    EXPECT_FALSE(blk.indirectExit);
    EXPECT_TRUE(cfg.unresolvedIndirects.empty());
}

TEST(Cfg, DiamondWithDominators)
{
    isa::Program prog = isa::assemble(R"(
        .entry main
    main:
        cmpi r1, 0
        jeq left
        movi r2, 1
        jmp join
    left:
        movi r2, 2
        jmp join
    join:
        hlt
    )");
    StaticCfg cfg = recoverStaticCfg(prog, {prog.entry}, 0, 0x1000);
    ASSERT_EQ(cfg.blocks.size(), 4u);
    uint32_t entry = prog.entry;
    uint32_t join = prog.symbol("join");
    uint32_t left = prog.symbol("left");
    EXPECT_EQ(cfg.blocks.at(entry).successors.size(), 2u);
    // Both arms are dominated by the entry, and so is the join (its
    // two predecessors are siblings).
    EXPECT_EQ(cfg.blocks.at(left).idom, entry);
    EXPECT_EQ(cfg.blocks.at(join).idom, entry);
    EXPECT_EQ(cfg.blocks.at(entry).idom, entry);
}

TEST(Cfg, CallHasCalleeAndReturnSuccessors)
{
    isa::Program prog = isa::assemble(R"(
        .entry main
    main:
        call fn
        hlt
    fn:
        movi r1, 1
        ret
    )");
    StaticCfg cfg = recoverStaticCfg(prog, {prog.entry}, 0, 0x1000);
    uint32_t fn = prog.symbol("fn");
    const auto &entry_blk = cfg.blocks.at(prog.entry);
    EXPECT_EQ(entry_blk.successors.size(), 2u);
    EXPECT_TRUE(entry_blk.successors.count(fn));
    // The ret's target is statically unknown.
    ASSERT_EQ(cfg.unresolvedIndirects.size(), 1u);
    EXPECT_TRUE(cfg.blocks.at(fn).indirectExit ||
                !cfg.blocks.at(fn).successors.empty());
}

TEST(Cfg, IndirectJumpReportedUnresolved)
{
    isa::Program prog = isa::assemble(R"(
        .entry main
    main:
        movi r1, target
        jmp r1
    target:
        hlt
    )");
    StaticCfg cfg = recoverStaticCfg(prog, {prog.entry}, 0, 0x1000);
    ASSERT_EQ(cfg.unresolvedIndirects.size(), 1u);
    // Recursive descent does NOT follow the register value: `target`
    // is never decoded.
    EXPECT_FALSE(cfg.containsBlock(prog.symbol("target")));
    std::string report = cfg.toString();
    EXPECT_NE(report.find("unresolved indirect"), std::string::npos);
}

TEST(Cfg, JumpTableBlocksAreDynamicOnly)
{
    // The REV+ acceptance example: a jmpr jump table. Static recursive
    // descent stops at the indirect jump; multi-path execution reaches
    // the cases. diffCfg must report them as dynamic-only.
    std::string src = R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 1          ; selector
        shli r1, 2
        movi r2, table
        add r2, r1
        ldw r3, [r2]
        jmp r3
    case0:
        movi r8, 10
        hlt
    case1:
        movi r8, 20
        hlt
    table:
        .word case0, case1
    )";
    isa::Program prog = isa::assemble(src);
    StaticCfg cfg = recoverStaticCfg(prog, {prog.entry}, 0, 0x1000);
    EXPECT_EQ(cfg.unresolvedIndirects.size(), 1u);
    EXPECT_FALSE(cfg.containsBlock(prog.symbol("case1")));

    // Dynamic: run it on the engine and collect executed block pcs.
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = prog;
    Engine engine(m, EngineConfig{});
    std::set<uint32_t> dynamic_pcs;
    engine.events().onBlockExecute.subscribe(
        [&](ExecutionState &, const TranslationBlock &tb) {
            dynamic_pcs.insert(tb.pc);
        });
    engine.run();

    CfgDiff diff = diffCfg(cfg, dynamic_pcs);
    ASSERT_GE(diff.dynamicOnly.size(), 1u);
    EXPECT_TRUE(std::count(diff.dynamicOnly.begin(),
                           diff.dynamicOnly.end(),
                           prog.symbol("case1")));
    // The shared part covers the entry straight-line code.
    EXPECT_FALSE(diff.shared.empty());
    EXPECT_NE(diff.toString().find("dynamic-only"), std::string::npos);
}

TEST(Cfg, RevReportsIsrBlocksAsDynamicOnly)
{
    // The driver's interrupt handler is hooked up by writing the IVT
    // at runtime; the static CFG (rooted at the driver ABI exports)
    // cannot reach it. REV+'s multi-path run does.
    tools::RevConfig config;
    config.driver = guest::DriverKind::Pio;
    config.maxWallSeconds = 15;
    tools::Rev rev(config);
    tools::RevResult result = rev.run();

    EXPECT_GT(result.staticCfg.blocks.size(), 3u);
    uint32_t isr =
        tools::driverProgram(guest::DriverKind::Pio).symbol("drv_isr");
    // Statically invisible…
    EXPECT_EQ(result.staticCfg.instrPcs.count(isr), 0u);
    // …but discovered by the multi-path run.
    EXPECT_GE(result.cfgDiff.dynamicOnly.size(), 1u);
    EXPECT_TRUE(std::count(result.cfgDiff.dynamicOnly.begin(),
                           result.cfgDiff.dynamicOnly.end(), isr));
    EXPECT_FALSE(result.cfgDiff.shared.empty());
}

} // namespace
} // namespace s2e::analysis
