/** @file Tests for the gisa two-pass assembler. */

#include <gtest/gtest.h>

#include "isa/assembler.hh"

namespace s2e::isa {
namespace {

/** Decode all instructions in a section. */
std::vector<Instruction>
decodeAll(const Program::Section &section)
{
    std::vector<Instruction> out;
    size_t pos = 0;
    while (pos < section.bytes.size()) {
        Instruction instr;
        if (!decode(section.bytes.data() + pos,
                    section.bytes.size() - pos, instr))
            break;
        out.push_back(instr);
        pos += instr.length;
    }
    return out;
}

TEST(Assembler, EmptyProgram)
{
    Program p = assemble("");
    EXPECT_EQ(p.size(), 0u);
}

TEST(Assembler, CommentsAndBlanksIgnored)
{
    Program p = assemble("; comment only\n   \n# another\n");
    EXPECT_EQ(p.size(), 0u);
}

TEST(Assembler, SimpleInstructions)
{
    Program p = assemble(R"(
        movi r1, 10
        add r1, r2
        nop
        hlt
    )");
    ASSERT_EQ(p.sections.size(), 1u);
    auto instrs = decodeAll(p.sections[0]);
    ASSERT_EQ(instrs.size(), 4u);
    EXPECT_EQ(instrs[0].op, Opcode::MovI);
    EXPECT_EQ(instrs[0].r1, 1);
    EXPECT_EQ(instrs[0].imm, 10u);
    EXPECT_EQ(instrs[1].op, Opcode::Add);
    EXPECT_EQ(instrs[2].op, Opcode::Nop);
    EXPECT_EQ(instrs[3].op, Opcode::Hlt);
}

TEST(Assembler, MovAutoSelectsImmediateForm)
{
    Program p = assemble("mov r1, 42\nmov r2, r3\n");
    auto instrs = decodeAll(p.sections[0]);
    ASSERT_EQ(instrs.size(), 2u);
    EXPECT_EQ(instrs[0].op, Opcode::MovI);
    EXPECT_EQ(instrs[1].op, Opcode::Mov);
}

TEST(Assembler, LabelsAndBranches)
{
    Program p = assemble(R"(
        .entry start
    start:
        movi r1, 0
    loop:
        addi r1, 1
        cmpi r1, 10
        jne loop
        hlt
    )");
    EXPECT_EQ(p.entry, p.symbol("start"));
    auto instrs = decodeAll(p.sections[0]);
    ASSERT_EQ(instrs.size(), 5u);
    EXPECT_EQ(instrs[3].op, Opcode::Jcc);
    EXPECT_EQ(instrs[3].cc, Cond::Ne);
    EXPECT_EQ(instrs[3].imm, p.symbol("loop"));
}

TEST(Assembler, ForwardReferences)
{
    Program p = assemble(R"(
        jmp end
        nop
    end:
        hlt
    )");
    auto instrs = decodeAll(p.sections[0]);
    EXPECT_EQ(instrs[0].imm, p.symbol("end"));
}

TEST(Assembler, MemoryOperands)
{
    Program p = assemble(R"(
        ldw r1, [r2+4]
        ldw r1, [r2]
        stw [sp-8], r3
        ldb r4, [r5+0x10]
    )");
    auto instrs = decodeAll(p.sections[0]);
    ASSERT_EQ(instrs.size(), 4u);
    EXPECT_EQ(instrs[0].op, Opcode::Ldw);
    EXPECT_EQ(instrs[0].imm, 4u);
    EXPECT_EQ(instrs[1].imm, 0u);
    EXPECT_EQ(instrs[2].op, Opcode::Stw);
    EXPECT_EQ(instrs[2].r2, kRegSp);
    EXPECT_EQ(static_cast<int32_t>(instrs[2].imm), -8);
    EXPECT_EQ(instrs[3].imm, 0x10u);
}

TEST(Assembler, EquAndExpressions)
{
    Program p = assemble(R"(
        .equ BASE, 0x100
        .equ SIZE, 32
        movi r1, BASE+SIZE
        movi r2, BASE-1
        movi r3, 'A'
        movi r4, '\n'
    )");
    auto instrs = decodeAll(p.sections[0]);
    EXPECT_EQ(instrs[0].imm, 0x120u);
    EXPECT_EQ(instrs[1].imm, 0xFFu);
    EXPECT_EQ(instrs[2].imm, 65u);
    EXPECT_EQ(instrs[3].imm, 10u);
}

TEST(Assembler, DataDirectives)
{
    Program p = assemble(R"(
        .byte 1, 2, 0xFF
        .half 0x1234
        .word 0xDEADBEEF
        .asciz "hi"
    )");
    ASSERT_EQ(p.sections.size(), 1u);
    const auto &b = p.sections[0].bytes;
    ASSERT_EQ(b.size(), 3u + 2u + 4u + 3u);
    EXPECT_EQ(b[0], 1);
    EXPECT_EQ(b[2], 0xFF);
    EXPECT_EQ(b[3], 0x34); // little-endian half
    EXPECT_EQ(b[4], 0x12);
    EXPECT_EQ(b[5], 0xEF);
    EXPECT_EQ(b[8], 0xDE);
    EXPECT_EQ(b[9], 'h');
    EXPECT_EQ(b[11], '\0');
}

TEST(Assembler, OrgCreatesSections)
{
    Program p = assemble(R"(
        .org 0x100
        nop
        .org 0x2000
        hlt
    )");
    ASSERT_EQ(p.sections.size(), 2u);
    EXPECT_EQ(p.sections[0].addr, 0x100u);
    EXPECT_EQ(p.sections[1].addr, 0x2000u);
}

TEST(Assembler, AlignPads)
{
    Program p = assemble(R"(
        .org 0x10
        nop
        .align 8
    data:
        .word 1
    )");
    EXPECT_EQ(p.symbol("data"), 0x18u);
}

TEST(Assembler, SpaceReserves)
{
    Program p = assemble(R"(
        .org 0
    buf:
        .space 16, 0xAB
    after:
        nop
    )");
    EXPECT_EQ(p.symbol("after"), 16u);
    EXPECT_EQ(p.sections[0].bytes[0], 0xAB);
}

TEST(Assembler, WordWithLabelReference)
{
    Program p = assemble(R"(
        .org 0x100
    table:
        .word handler, 0
    handler:
        hlt
    )");
    const auto &b = p.sections[0].bytes;
    uint32_t v = b[0] | (b[1] << 8) | (b[2] << 16) | (b[3] << 24);
    EXPECT_EQ(v, p.symbol("handler"));
}

TEST(Assembler, S2EOpcodes)
{
    Program p = assemble(R"(
        s2e_symreg r1
        s2e_symrange r2, 0, 100
        s2e_symmem r3, r4
        s2e_ena
        s2e_dis
        s2e_out r5
        s2e_kill 3
        s2e_assert r6
    )");
    auto instrs = decodeAll(p.sections[0]);
    ASSERT_EQ(instrs.size(), 8u);
    EXPECT_EQ(instrs[0].op, Opcode::S2SymReg);
    EXPECT_EQ(instrs[1].op, Opcode::S2SymRange);
    EXPECT_EQ(instrs[1].imm, 0u);
    EXPECT_EQ(instrs[1].imm2, 100u);
    EXPECT_EQ(instrs[6].op, Opcode::S2Kill);
    EXPECT_EQ(instrs[6].imm, 3u);
}

TEST(Assembler, JccAliases)
{
    Program p = assemble(R"(
    t:
        jb t
        jae t
        jlt t
        jge t
    )");
    auto instrs = decodeAll(p.sections[0]);
    EXPECT_EQ(instrs[0].cc, Cond::Ult);
    EXPECT_EQ(instrs[1].cc, Cond::Uge);
    EXPECT_EQ(instrs[2].cc, Cond::Slt);
    EXPECT_EQ(instrs[3].cc, Cond::Sge);
}

TEST(Assembler, ErrorUndefinedSymbol)
{
    EXPECT_THROW(assemble("jmp nowhere\n"), AsmError);
}

TEST(Assembler, ErrorDuplicateLabel)
{
    EXPECT_THROW(assemble("a:\na:\n"), AsmError);
}

TEST(Assembler, ErrorBadMnemonic)
{
    EXPECT_THROW(assemble("frobnicate r1\n"), AsmError);
}

TEST(Assembler, ErrorWrongOperandCount)
{
    EXPECT_THROW(assemble("add r1\n"), AsmError);
}

TEST(Assembler, ErrorBadRegister)
{
    EXPECT_THROW(assemble("push r16\n"), AsmError);
}

TEST(Assembler, ErrorReportsLineNumber)
{
    try {
        assemble("nop\nnop\nbadop r1\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError &e) {
        EXPECT_EQ(e.line(), 3u);
    }
}

TEST(Assembler, ErrorUndefinedEntry)
{
    EXPECT_THROW(assemble(".entry missing\nnop\n"), AsmError);
}

TEST(Assembler, UnaryOperatorsInExpressions)
{
    Program p = assemble(R"(
        .equ MASK, ~7
        movi r1, MASK
        movi r2, -(3+2)
        movi r3, (1+2)+(3+4)
    )");
    auto instrs = decodeAll(p.sections[0]);
    EXPECT_EQ(instrs[0].imm, 0xFFFFFFF8u);
    EXPECT_EQ(static_cast<int32_t>(instrs[1].imm), -5);
    EXPECT_EQ(instrs[2].imm, 10u);
}

TEST(Assembler, SemicolonCharLiteralIsNotAComment)
{
    Program p = assemble("movi r1, ';'   ; trailing comment\n");
    auto instrs = decodeAll(p.sections[0]);
    ASSERT_EQ(instrs.size(), 1u);
    EXPECT_EQ(instrs[0].imm, static_cast<uint32_t>(';'));
}

TEST(Assembler, AsciiHasNoTerminator)
{
    Program p = assemble(".ascii \"ab\"\n.byte 7\n");
    const auto &b = p.sections[0].bytes;
    ASSERT_EQ(b.size(), 3u);
    EXPECT_EQ(b[0], 'a');
    EXPECT_EQ(b[2], 7);
}

TEST(Assembler, EscapesInStrings)
{
    Program p = assemble(".asciz \"a\\n\\t\\\\\"\n");
    const auto &b = p.sections[0].bytes;
    ASSERT_EQ(b.size(), 5u);
    EXPECT_EQ(b[1], '\n');
    EXPECT_EQ(b[2], '\t');
    EXPECT_EQ(b[3], '\\');
    EXPECT_EQ(b[4], '\0');
}

TEST(Assembler, EquRedefinitionSameValueAllowed)
{
    Program p = assemble(".equ A, 5\n.equ A, 5\nmovi r1, A\n");
    EXPECT_EQ(decodeAll(p.sections[0])[0].imm, 5u);
}

TEST(Assembler, EquRedefinitionConflictRejected)
{
    EXPECT_THROW(assemble(".equ A, 5\n.equ A, 6\n"), AsmError);
}

TEST(Assembler, MultipleLabelsOneAddress)
{
    Program p = assemble("a: b: c: nop\n");
    EXPECT_EQ(p.symbol("a"), p.symbol("b"));
    EXPECT_EQ(p.symbol("b"), p.symbol("c"));
}

TEST(Assembler, BinaryLiterals)
{
    Program p = assemble("movi r1, 0b1010\n");
    EXPECT_EQ(decodeAll(p.sections[0])[0].imm, 10u);
}

TEST(Assembler, DivHasNoImmediateForm)
{
    EXPECT_THROW(assemble("udiv r1, 3\n"), AsmError);
    Program p = assemble("udiv r1, r2\n");
    EXPECT_EQ(decodeAll(p.sections[0])[0].op, Opcode::UDiv);
}

} // namespace
} // namespace s2e::isa
