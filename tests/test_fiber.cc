/**
 * @file
 * Fiber scheduler suite (ROADMAP item 2).
 *
 * Four layers, bottom-up:
 *   1. Fiber unit tests — park/resume ordering, stack reuse through
 *      reset(), cross-thread migration, Fiber::current() isolation.
 *   2. WorkQueue idle-wait tests — a starved worker genuinely sleeps
 *      (near-zero thread CPU), pushes with no sleeper skip the notify,
 *      and the sleep/wakeup/notify ledger balances under churn.
 *   3. SolverService unit tests — shared-prefix queries batch into one
 *      incremental context, singletons use the owner's private slot,
 *      and every kind returns the same answer the blocking solver
 *      would.
 *   4. Serial-vs-fiber differential — every workload from the parallel
 *      suite explores exactly the same path set (schedule-independent
 *      path ids, per-path terminal status, canonical fork tree) with
 *      useFibers at 1/2/4 workers as the blocking serial engine; plus
 *      the witness-eligibility regression: a path that suspended at a
 *      solver site mid-slice must still record and replay.
 */

#include <gtest/gtest.h>

#include <pthread.h>
#include <time.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "core/fiber.hh"
#include "core/replay/witness.hh"
#include "core/workqueue.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "obs/forktree.hh"
#include "solver/context.hh"
#include "solver/service.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::core {
namespace {

// --- 1. Fiber unit tests -------------------------------------------------

TEST(FiberUnit, RunsToCompletionWithoutParking)
{
    Fiber f;
    bool ran = false;
    f.reset([&] { ran = true; });
    EXPECT_FALSE(f.finished());
    EXPECT_FALSE(f.resume()); // entry returned, nothing parked
    EXPECT_TRUE(ran);
    EXPECT_TRUE(f.finished());
}

TEST(FiberUnit, ParkResumeOrderingInterleavesWithDriver)
{
    Fiber f;
    std::vector<int> seq;
    f.reset([&] {
        seq.push_back(1);
        EXPECT_EQ(Fiber::current(), &f);
        Fiber::park();
        seq.push_back(3);
        Fiber::park();
        seq.push_back(5);
    });
    EXPECT_EQ(Fiber::current(), nullptr);
    EXPECT_TRUE(f.resume()); // runs to first park
    EXPECT_EQ(Fiber::current(), nullptr);
    seq.push_back(2);
    EXPECT_TRUE(f.resume()); // first park returns, runs to second
    seq.push_back(4);
    EXPECT_FALSE(f.resume()); // entry returns
    EXPECT_EQ(seq, (std::vector<int>{1, 2, 3, 4, 5}));
    EXPECT_TRUE(f.finished());
}

TEST(FiberUnit, StackReuseAcrossReset)
{
    // One mapping, many slices: the pool recycles fibers exactly like
    // this, re-arming a finished fiber with the next state's slice.
    Fiber f;
    int sum = 0;
    for (int i = 0; i < 64; ++i) {
        f.reset([&sum, i] {
            int local[32] = {0}; // dirty the stack between runs
            local[i % 32] = i;
            Fiber::park();
            sum += i + local[i % 32] - i;
        });
        EXPECT_TRUE(f.resume());
        EXPECT_FALSE(f.resume());
        EXPECT_TRUE(f.finished());
    }
    EXPECT_EQ(sum, (63 * 64) / 2);
}

TEST(FiberUnit, ResumesOnDifferentThreadContinueTheSameStack)
{
    // The scheduler deliberately migrates suspended slices: whichever
    // worker takes the state resumes its fiber. The fiber-local frame
    // (captured locals across park()) must survive the migration.
    Fiber f;
    std::vector<uint64_t> tids;
    int local = 7;
    f.reset([&] {
        local += 10;
        Fiber::park();
        local += 100; // runs on another OS thread
        tids.push_back(
            static_cast<uint64_t>(pthread_self()));
        Fiber::park();
        local += 1000; // back on the first thread
    });
    EXPECT_TRUE(f.resume());
    EXPECT_EQ(local, 17);
    std::thread other([&] {
        EXPECT_TRUE(f.resume());
        EXPECT_EQ(local, 117);
    });
    other.join();
    EXPECT_FALSE(f.resume());
    EXPECT_EQ(local, 1117);
    ASSERT_EQ(tids.size(), 1u);
}

TEST(FiberUnit, CurrentIsPerFiberAndNullOutside)
{
    Fiber a;
    Fiber b;
    a.reset([&] {
        EXPECT_EQ(Fiber::current(), &a);
        Fiber::park();
        EXPECT_EQ(Fiber::current(), &a);
    });
    b.reset([&] {
        EXPECT_EQ(Fiber::current(), &b);
        Fiber::park();
        EXPECT_EQ(Fiber::current(), &b);
    });
    EXPECT_TRUE(a.resume());
    EXPECT_EQ(Fiber::current(), nullptr);
    EXPECT_TRUE(b.resume());
    EXPECT_EQ(Fiber::current(), nullptr);
    EXPECT_FALSE(a.resume());
    EXPECT_FALSE(b.resume());
}

// --- 2. WorkQueue idle-wait tests ---------------------------------------

/** The queue treats states as opaque pointers; fake tokens keep these
 *  tests free of machine setup. */
ExecutionState *
fakeState(size_t i)
{
    static char tokens[64];
    return reinterpret_cast<ExecutionState *>(&tokens[i]);
}

/** CPU seconds consumed by `thread` (itimer-quality granularity). */
double
threadCpuSeconds(pthread_t thread)
{
    clockid_t cid;
    if (pthread_getcpuclockid(thread, &cid) != 0)
        return -1;
    struct timespec ts;
    if (clock_gettime(cid, &ts) != 0)
        return -1;
    return static_cast<double>(ts.tv_sec) + ts.tv_nsec * 1e-9;
}

TEST(WorkQueueWait, StarvedWorkerSleepsInsteadOfSpinning)
{
    // Worker 0 holds the only pending state; worker 1 has nothing to
    // take or steal and must block in take() without burning CPU (the
    // old implementation polled on a 1 ms timer; this asserts the
    // epoch wait actually sleeps).
    WorkQueue q(2);
    q.add(0, fakeState(0));
    ASSERT_EQ(q.take(0), fakeState(0)); // now held, shards empty

    std::atomic<pthread_t> waiter_handle{};
    std::atomic<bool> handle_ready{false};
    std::thread waiter([&] {
        waiter_handle.store(pthread_self());
        handle_ready.store(true, std::memory_order_release);
        EXPECT_EQ(q.take(1), fakeState(0)); // blocks until the put below
        q.finish();
        EXPECT_EQ(q.take(1), nullptr); // pending hit zero
    });
    while (!handle_ready.load(std::memory_order_acquire))
        std::this_thread::yield();
    // Give the waiter ample time to be asleep, then sample its CPU use.
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
    double cpu = threadCpuSeconds(waiter_handle.load());
    EXPECT_GE(q.waitStats().sleeps.load(), 1u);
    if (cpu >= 0) {
        EXPECT_LT(cpu, 0.050) << "starved worker burned CPU while idle";
    }
    q.put(0, fakeState(0)); // hand the state over; waiter finishes it
    waiter.join();
    EXPECT_EQ(q.pending(), 0u);
}

TEST(WorkQueueWait, PushesWithoutSleepersSkipTheNotify)
{
    WorkQueue q(2);
    constexpr size_t kPushes = 64;
    for (size_t i = 0; i < kPushes; ++i)
        q.add(0, fakeState(i % 8));
    // Nobody was waiting: every push must take the fast path.
    EXPECT_EQ(q.waitStats().notifySkips.load(), kPushes);
    EXPECT_EQ(q.waitStats().notifies.load(), 0u);
    for (size_t i = 0; i < kPushes; ++i) {
        EXPECT_NE(q.take(0), nullptr);
        q.finish();
    }
    EXPECT_EQ(q.take(0), nullptr);
}

TEST(WorkQueueWait, SleeperIsNotifiedOnPush)
{
    WorkQueue q(2);
    q.add(0, fakeState(0));
    ASSERT_EQ(q.take(0), fakeState(0)); // held; queue empty, pending 1

    std::thread waiter([&] {
        EXPECT_EQ(q.take(1), fakeState(0));
        q.finish();
        EXPECT_EQ(q.take(1), nullptr);
    });
    // Wait until the worker registered its sleep, then push.
    while (q.waitStats().sleeps.load() == 0)
        std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.put(1, fakeState(0));
    waiter.join();
    EXPECT_GE(q.waitStats().notifies.load(), 1u);
}

TEST(WorkQueueWait, WakeupLedgerBalancesUnderChurn)
{
    // Producer/consumer churn: the consumer mostly keeps up, so most
    // pushes find no sleeper (notifySkips), while every sleep is paid
    // back by exactly one wakeup once the run quiesces.
    WorkQueue q(2);
    constexpr size_t kStates = 4000;
    std::thread consumer([&] {
        size_t done = 0;
        while (done < kStates) {
            if (q.take(1) != nullptr) {
                q.finish();
                ++done;
            }
        }
        EXPECT_EQ(q.take(1), nullptr);
    });
    for (size_t i = 0; i < kStates; ++i)
        q.add(0, fakeState(i % 8));
    consumer.join();

    const auto &ws = q.waitStats();
    // Every push either paid a notify or skipped it — no third path.
    EXPECT_EQ(ws.notifies.load() + ws.notifySkips.load(), kStates);
    // A hot producer/consumer pair should skip often; if this ever
    // reads zero the waiter-count fast path has regressed to
    // notify-per-push.
    EXPECT_GT(ws.notifySkips.load(), 0u);
    // At quiescence every sleep has completed its matching wakeup.
    EXPECT_EQ(ws.sleeps.load(), ws.wakeups.load());
}

// --- 3. SolverService unit tests ----------------------------------------

struct CompletedSet {
    std::mutex mu;
    std::condition_variable cv;
    size_t count = 0;

    void
    arrived()
    {
        std::lock_guard<std::mutex> lock(mu);
        ++count;
        cv.notify_all();
    }

    void
    waitFor(size_t n)
    {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return count >= n; });
    }
};

TEST(SolverServiceUnit, BatchesSharedPrefixAndAnswersCorrectly)
{
    ExprBuilder b;
    solver::SolverOptions opts;
    opts.useModelCache = false;

    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);
    // Two sibling paths sharing their first (hash-consed) constraint —
    // the batch key — then diverging:
    std::vector<ExprRef> sib1 = {b.ult(x, b.constant(100, 32)),
                                 b.eq(x, b.constant(7, 32))};
    std::vector<ExprRef> sib2 = {b.ult(x, b.constant(100, 32)),
                                 b.eq(x, b.constant(9, 32))};
    ASSERT_EQ(sib1[0], sib2[0]) << "hash-consing broke the batch key";
    // An unrelated path: batches with nobody, must use its own slot.
    std::vector<ExprRef> lone = {b.eq(y, b.constant(21, 32))};

    CompletedSet done;
    solver::SolverService::Config cfg;
    cfg.threads = 1;
    cfg.workers = 2;
    cfg.queueCapacity = 8;
    cfg.batchMax = 8;
    solver::SolverService service(
        b, opts, cfg, [&](solver::AsyncQuery &) { done.arrived(); });

    std::shared_ptr<solver::IncrementalContext> loneSlot;

    solver::AsyncQuery q1;
    q1.kind = solver::AsyncQuery::Kind::GetValue;
    q1.constraints = &sib1;
    q1.expr = x;

    solver::AsyncQuery q2;
    q2.kind = solver::AsyncQuery::Kind::MustBeTrue;
    q2.constraints = &sib2;
    q2.expr = b.ult(x, b.constant(10, 32));

    solver::AsyncQuery q3;
    q3.kind = solver::AsyncQuery::Kind::GetRange;
    q3.constraints = &lone;
    q3.expr = y;
    q3.ctxSlot = &loneSlot;

    // Submit before start(): all three sit in the rings, so the lane's
    // first drain sees them together and the grouping is deterministic.
    ASSERT_TRUE(service.submit(0, &q1));
    ASSERT_TRUE(service.submit(0, &q2));
    ASSERT_TRUE(service.submit(1, &q3));
    service.start();
    done.waitFor(3);
    service.stop();

    // The siblings were answered in the shared batch context...
    EXPECT_TRUE(q1.batched);
    EXPECT_TRUE(q2.batched);
    // ...with exactly the answers the blocking solver gives:
    EXPECT_TRUE(q1.outcome.isSat());
    EXPECT_EQ(q1.value, 7u);
    EXPECT_TRUE(q2.outcome.yes());
    // The loner used its private slot, which now exists (the solver
    // built the path's persistent context on first use).
    EXPECT_FALSE(q3.batched);
    EXPECT_TRUE(q3.outcome.isSat());
    EXPECT_EQ(q3.lo, 21u);
    EXPECT_EQ(q3.hi, 21u);

    const auto &stats = service.stats();
    EXPECT_EQ(stats.queriesServed, 3u);
    EXPECT_EQ(stats.batchedQueries, 2u);
    EXPECT_GE(stats.batches, 1u);
    EXPECT_GE(stats.queueDepthPeak, 1u);
    EXPECT_GT(stats.busySeconds, 0.0);
}

TEST(SolverServiceUnit, CheckBranchMatchesBlockingSolver)
{
    ExprBuilder b;
    solver::SolverOptions opts;
    opts.useModelCache = false;

    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(4, 32))};
    ExprRef both_sides = b.eq(x, b.constant(2, 32)); // feasible both ways
    ExprRef one_side = b.ult(x, b.constant(10, 32)); // always true here

    CompletedSet done;
    solver::SolverService::Config cfg;
    cfg.threads = 1;
    cfg.workers = 1;
    solver::SolverService service(
        b, opts, cfg, [&](solver::AsyncQuery &) { done.arrived(); });
    service.start();

    solver::AsyncQuery qa;
    qa.kind = solver::AsyncQuery::Kind::CheckBranch;
    qa.constraints = &cs;
    qa.expr = both_sides;
    std::shared_ptr<solver::IncrementalContext> slotA;
    qa.ctxSlot = &slotA;
    ASSERT_TRUE(service.submit(0, &qa));
    done.waitFor(1);

    solver::AsyncQuery qb;
    qb.kind = solver::AsyncQuery::Kind::CheckBranch;
    qb.constraints = &cs;
    qb.expr = one_side;
    std::shared_ptr<solver::IncrementalContext> slotB;
    qb.ctxSlot = &slotB;
    ASSERT_TRUE(service.submit(0, &qb));
    done.waitFor(2);
    service.stop();

    EXPECT_TRUE(qa.branch.trueSide.yes());
    EXPECT_TRUE(qa.branch.falseSide.yes());
    EXPECT_TRUE(qb.branch.trueSide.yes());
    EXPECT_TRUE(qb.branch.falseSide.no());
}

// --- 4. Serial-vs-fiber engine differential ------------------------------

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = guest::kRamSize,
           bool loopback = false)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [loopback](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        auto nic = std::make_unique<vm::DmaNic>();
        nic->setLoopback(loopback);
        devices.add(std::move(nic));
    };
    return m;
}

/** No budgets (schedule-dependent kills), no model cache (query-history
 *  dependent models). Mirrors the parallel differential suite. */
EngineConfig
differentialConfig(unsigned workers, bool fibers)
{
    EngineConfig config;
    config.numWorkers = workers;
    config.useFibers = fibers;
    config.solverOptions.useModelCache = false;
    return config;
}

/**
 * Relaxed per-path fingerprint: terminal status and exit code keyed by
 * the schedule-independent path id. Unlike the blocking parallel
 * differential, fiber runs may answer getValue() inside a *shared*
 * sibling-batch context, so model-derived bytes (test cases, concretized
 * values) are only semantically — not bitwise — equal; the invariants
 * that must hold exactly are the path set, each path's terminal
 * outcome, and the canonical fork tree.
 */
std::map<std::string, std::string>
relaxedFingerprints(Engine &engine)
{
    std::map<std::string, std::string> out;
    for (const auto &s : engine.allStates()) {
        std::string fp = strprintf("status:%s exit:%u",
                                   stateStatusName(s->status), s->exitCode);
        bool fresh = out.emplace(s->pathId(), std::move(fp)).second;
        EXPECT_TRUE(fresh) << "duplicate path id " << s->pathId();
    }
    return out;
}

struct FiberRun {
    std::map<std::string, std::string> paths;
    std::string forkTree;
    RunResult result;
};

using SetupFn = void (*)(Engine &);

FiberRun
runWorkload(const std::string &source, SetupFn setup, unsigned workers,
            bool fibers, uint32_t ram = guest::kRamSize,
            bool loopback = false)
{
    Engine engine(machineFor(source, ram, loopback),
                  differentialConfig(workers, fibers));
    obs::ForkTreeRecorder recorder(engine.events());
    if (setup)
        setup(engine);
    FiberRun out;
    out.result = engine.run();
    out.paths = relaxedFingerprints(engine);
    out.forkTree = recorder.toCanonicalJson();
    return out;
}

void
expectSamePaths(const FiberRun &serial, const FiberRun &fiber,
                unsigned workers)
{
    EXPECT_EQ(serial.paths.size(), fiber.paths.size())
        << "path count diverged with " << workers << " fiber workers";
    for (const auto &[path, fp] : serial.paths) {
        auto it = fiber.paths.find(path);
        if (it == fiber.paths.end()) {
            ADD_FAILURE() << "path " << path << " missing with "
                          << workers << " fiber workers";
            continue;
        }
        EXPECT_EQ(fp, it->second)
            << "path " << path << " outcome diverged with " << workers
            << " fiber workers";
    }
    for (const auto &[path, fp] : fiber.paths)
        if (!serial.paths.count(path))
            ADD_FAILURE() << "path " << path << " extra with " << workers
                          << " fiber workers";
    EXPECT_EQ(serial.forkTree, fiber.forkTree)
        << "canonical fork tree diverged with " << workers
        << " fiber workers";
}

void
licenseSetup(Engine &engine)
{
    auto &state = engine.initialState();
    uint32_t key_addr = guest::addConfigString(state, engine.builder(), 0,
                                               "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                           "license");
}

void
urlSetup(Engine &engine)
{
    auto &state = engine.initialState();
    std::string url = "http://ab";
    for (size_t i = 0; i <= url.size(); ++i)
        state.mem.write(guest::kUrlBuffer + static_cast<uint32_t>(i),
                        Value(i < url.size() ? url[i] : 0), 1,
                        engine.builder());
    engine.makeMemSymbolic(state, guest::kUrlBuffer + 7, 2, "url");
}

void
luaSetup(Engine &engine)
{
    auto &state = engine.initialState();
    std::string program = "!1+2;";
    for (size_t i = 0; i <= program.size(); ++i)
        state.mem.write(guest::kLuaInput + static_cast<uint32_t>(i),
                        Value(i < program.size() ? program[i] : 0), 1,
                        engine.builder());
    engine.makeMemSymbolic(state, guest::kLuaInput + 1, 1, "lua");
}

/** Same nine-bit fork storm as the parallel suite: 512 paths. */
const char *
stressSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: testi r1, 8
        jeq b4
        ori r5, 8
    b4: testi r1, 16
        jeq b5
        ori r5, 16
    b5: testi r1, 32
        jeq b6
        ori r5, 32
    b6: testi r1, 64
        jeq b7
        ori r5, 64
    b7: testi r1, 128
        jeq b8
        ori r5, 128
    b8: testi r1, 256
        jeq b9
        ori r5, 256
    b9: movi r3, 0
        movi r4, 0
    work:
        add r3, r5
        addi r4, 1
        cmpi r4, 20
        jne work
        hlt
    )";
}

constexpr unsigned kFiberWorkerCounts[] = {1, 2, 4};

TEST(FiberDifferential, LicenseCheckPathSetInvariant)
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();
    auto serial = runWorkload(src, licenseSetup, 1, /*fibers=*/false);
    EXPECT_GT(serial.paths.size(), 4u);
    for (unsigned w : kFiberWorkerCounts) {
        auto fiber = runWorkload(src, licenseSetup, w, /*fibers=*/true);
        expectSamePaths(serial, fiber, w);
        EXPECT_GT(fiber.result.asyncQueries, 0u)
            << "fiber run answered no queries through the service";
    }
}

TEST(FiberDifferential, UrlParserPathSetInvariant)
{
    std::string src = guest::kernelSource() + guest::urlParserSource();
    auto serial = runWorkload(src, urlSetup, 1, /*fibers=*/false);
    EXPECT_GT(serial.paths.size(), 2u);
    for (unsigned w : kFiberWorkerCounts)
        expectSamePaths(serial, runWorkload(src, urlSetup, w, true), w);
}

TEST(FiberDifferential, LuaPathSetInvariant)
{
    std::string src = guest::kernelSource() + guest::luaSource();
    auto serial = runWorkload(src, luaSetup, 1, /*fibers=*/false);
    EXPECT_GT(serial.paths.size(), 2u);
    for (unsigned w : kFiberWorkerCounts)
        expectSamePaths(serial, runWorkload(src, luaSetup, w, true), w);
}

TEST(FiberDifferential, ForkStormPathSetInvariant)
{
    auto serial =
        runWorkload(stressSource(), nullptr, 1, /*fibers=*/false,
                    64 * 1024);
    EXPECT_EQ(serial.paths.size(), 512u);
    for (unsigned w : kFiberWorkerCounts) {
        auto fiber = runWorkload(stressSource(), nullptr, w,
                                 /*fibers=*/true, 64 * 1024);
        expectSamePaths(serial, fiber, w);
    }
}

TEST(FiberDifferential, SchedulerTelemetryReported)
{
    auto fiber = runWorkload(stressSource(), nullptr, 2, /*fibers=*/true,
                             64 * 1024);
    const RunResult &r = fiber.result;
    EXPECT_EQ(r.statesCreated, 512u);
    EXPECT_EQ(r.completed, 512u);
    // The storm forks at solver choke points, so slices must have
    // parked and been resumed through the service.
    EXPECT_GT(r.suspends, 0u);
    EXPECT_GT(r.asyncQueries, 0u);
    // Every park is paid back by exactly one resume by the time the
    // run drains (fibers must unwind before the engine returns).
    EXPECT_EQ(r.suspends, r.resumes);
    // Submitted queries either went through the service or fell back
    // inline when a ring was full; both routes are accounted.
    EXPECT_EQ(r.suspends, r.asyncQueries + r.inlineSolverFallbacks);
    EXPECT_GE(r.fibersPeak, 1u);
    EXPECT_GE(r.solverQueueDepthPeak, 1u);
    EXPECT_GT(r.serviceBusySeconds, 0.0);
    EXPECT_GT(r.suspendResumePerSec, 0.0);
}

// --- Witness eligibility across suspension (regression) ------------------

/**
 * A state that suspends at a solver site and is later resumed — often
 * on a different worker — must keep its replay eligibility: suspension
 * is not an async kill, and the recorded nondeterminism log continues
 * seamlessly across the park. This was the bug where the resumed slice
 * ran without the executing-state marker, so a self-kill after resume
 * was misclassified as killedAsync and the witness was dropped.
 */
TEST(FiberWitness, SuspendedPathsStayReplayEligible)
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();

    auto collect = [&](unsigned workers, bool fibers) {
        EngineConfig config = differentialConfig(workers, fibers);
        config.emitWitnesses = true;
        Engine engine(machineFor(src), config);
        licenseSetup(engine);
        RunResult run = engine.run();
        struct {
            std::map<std::string,
                     std::shared_ptr<const replay::Witness>> byPath;
            RunResult run;
            uint32_t maxSuspendCount = 0;
        } out;
        out.run = run;
        for (const auto &w : engine.witnesses())
            out.byPath.emplace(w->pathId, w);
        for (const auto &s : engine.allStates())
            out.maxSuspendCount =
                std::max(out.maxSuspendCount, s->suspendCount);
        return out;
    };

    auto serial = collect(1, /*fibers=*/false);
    ASSERT_GT(serial.byPath.size(), 0u);

    auto fiber = collect(2, /*fibers=*/true);
    // The regression precondition: at least one path actually suspended
    // mid-slice (otherwise this test proves nothing).
    EXPECT_GT(fiber.run.suspends, 0u);
    EXPECT_GE(fiber.maxSuspendCount, 1u);

    // Same witness-eligible path set as the serial oracle.
    EXPECT_EQ(serial.byPath.size(), fiber.byPath.size());
    for (const auto &[path, w] : serial.byPath)
        EXPECT_TRUE(fiber.byPath.count(path))
            << "path " << path << " lost witness eligibility under fibers";

    // And every witness recorded under fibers replays divergence-free.
    for (const auto &[path, w] : fiber.byPath) {
        EngineConfig config;
        config.solverOptions.useModelCache = false;
        config.replayWitness = w;
        Engine engine(machineFor(src), config);
        licenseSetup(engine);
        RunResult run = engine.run();
        EXPECT_EQ(run.replayDivergences, 0u)
            << "witness for path " << path
            << " diverged on replay after fiber-mode recording";
    }
}

} // namespace
} // namespace s2e::core
