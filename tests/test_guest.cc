/** @file Integration tests: the guest software stack running on the
 *  engine (kernel, drivers, workloads), mostly concretely. */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "guest/workloads.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::guest {
namespace {

using core::Engine;
using core::EngineConfig;
using core::ExecutionState;
using core::StateStatus;

vm::MachineConfig
machineFor(const std::string &source, DriverKind kind = DriverKind::Dma,
           bool loopback = false)
{
    vm::MachineConfig m;
    m.ramSize = kRamSize;
    m.program = isa::assemble(source);
    m.deviceSetup = [kind, loopback](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        std::unique_ptr<vm::NicBase> nic;
        switch (kind) {
          case DriverKind::Dma:
            nic = std::make_unique<vm::DmaNic>();
            break;
          case DriverKind::Pio:
            nic = std::make_unique<vm::PioNic>();
            break;
          case DriverKind::Mmio:
            nic = std::make_unique<vm::MmioNic>();
            break;
          case DriverKind::Ring:
            nic = std::make_unique<vm::RingNic>();
            break;
        }
        nic->setLoopback(loopback);
        devices.add(std::move(nic));
    };
    return m;
}

std::string
consoleOf(const ExecutionState &state)
{
    auto *console = state.devices.get<vm::ConsoleDevice>("console");
    return console ? console->output() : "";
}

// --- Kernel --------------------------------------------------------------

TEST(GuestKernel, SyscallWriteToConsole)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 3
        movi r1, msg
        movi r2, 5
        int 0x30
        hlt
    msg:
        .asciz "hello"
    )";
    Engine engine(machineFor(src), EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
    EXPECT_EQ(consoleOf(*engine.allStates()[0]), "hello");
}

TEST(GuestKernel, AllocFreeReuse)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 4
        movi r1, 32
        int 0x30
        mov r10, r1          ; first chunk
        s2e_assert r10
        movi r0, 5
        mov r1, r10
        int 0x30
        movi r0, 4
        movi r1, 24          ; fits in the freed 32-byte chunk
        int 0x30
        mov r11, r1
        ; free-list reuse must return the same chunk
        cmp r10, r11
        jne fail
        hlt
    fail:
        s2e_kill 9
    )";
    Engine engine(machineFor(src), EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

TEST(GuestKernel, AllocExhaustionReturnsNull)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 4
        movi r1, 0x20000     ; bigger than the whole heap
        int 0x30
        cmpi r1, 0
        jne fail
        hlt
    fail:
        s2e_kill 9
    )";
    Engine engine(machineFor(src), EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

TEST(GuestKernel, DoubleFreePanics)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 4
        movi r1, 16
        int 0x30
        mov r10, r1
        movi r0, 5
        mov r1, r10
        int 0x30
        movi r0, 5
        mov r1, r10
        int 0x30             ; double free -> kernel panic
        hlt
    )";
    Engine engine(machineFor(src), EngineConfig{});
    engine.run();
    const auto &state = *engine.allStates()[0];
    EXPECT_EQ(state.status, StateStatus::Killed);
    EXPECT_EQ(state.exitCode, 0xEEu);
    EXPECT_EQ(consoleOf(state), "PANIC");
}

TEST(GuestKernel, ConfigStoreRoundTrip)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 7           ; setcfg(42, 1234)
        movi r1, 42
        movi r2, 1234
        int 0x30
        movi r0, 6           ; getcfg(42)
        movi r1, 42
        int 0x30
        cmpi r1, 1234
        jne fail
        movi r0, 6           ; absent key reads 0
        movi r1, 99
        int 0x30
        cmpi r1, 0
        jne fail
        hlt
    fail:
        s2e_kill 9
    )";
    Engine engine(machineFor(src), EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

TEST(GuestKernel, HostConfigHelperVisibleToGuest)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r0, 6
        movi r1, 1           ; CFG_CARDTYPE
        int 0x30
        s2e_out r1
        cmpi r1, 2
        jne fail
        hlt
    fail:
        s2e_kill 9
    )";
    Engine engine(machineFor(src), EngineConfig{});
    setConfig(engine.initialState(), engine.builder(), kCfgCardType, 2);
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

TEST(GuestKernel, StringLibrary)
{
    std::string src = kernelSource() + R"(
        .org 0x30000
        .entry main
    main:
        movi sp, 0x7F000
        movi r1, s1
        call strlen
        cmpi r1, 4
        jne fail
        movi r1, s1
        movi r2, s2
        call strcmp
        cmpi r1, 1
        jne fail
        movi r1, s1
        movi r2, s1
        call strcmp
        cmpi r1, 0
        jne fail
        movi r1, 0x40000
        movi r2, s1
        movi r3, 5
        call memcpy
        movi r1, 0x40000
        call strlen
        cmpi r1, 4
        jne fail
        hlt
    fail:
        s2e_kill 9
    s1: .asciz "abcd"
    s2: .asciz "abce"
    )";
    Engine engine(machineFor(src), EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

// --- Drivers (concrete smoke runs) ----------------------------------------

class DriverSmokeTest : public ::testing::TestWithParam<DriverKind>
{
};

TEST_P(DriverSmokeTest, HarnessRunsCleanlyWithPacket)
{
    DriverKind kind = GetParam();
    std::string src =
        kernelSource() + driverSource(kind) + driverHarnessSource();
    vm::MachineConfig m = machineFor(src, kind, /*loopback=*/false);
    Engine engine(m, EngineConfig{});
    // Queue one inbound packet so recv has something to do.
    auto *nic = dynamic_cast<vm::NicBase *>(
        engine.initialState().devices.byName(driverDeviceName(kind)));
    ASSERT_NE(nic, nullptr);
    nic->injectPacket({1, 2, 3, 4, 5, 6, 7, 8});
    core::RunResult r = engine.run();
    ASSERT_EQ(r.statesCreated, 1u);
    const auto &state = *engine.allStates()[0];
    EXPECT_EQ(state.status, StateStatus::Halted)
        << driverName(kind) << ": " << state.statusMessage
        << " console=" << consoleOf(state);
    // The harness transmitted one 32-byte packet.
    auto *final_nic = dynamic_cast<vm::NicBase *>(
        state.devices.byName(driverDeviceName(kind)));
    ASSERT_NE(final_nic, nullptr);
    ASSERT_EQ(final_nic->transmitted().size(), 1u)
        << driverName(kind);
    EXPECT_EQ(final_nic->transmitted()[0].size(), 32u);
    EXPECT_EQ(final_nic->transmitted()[0][0], 0x5A);
}

INSTANTIATE_TEST_SUITE_P(AllDrivers, DriverSmokeTest,
                         ::testing::Values(DriverKind::Dma, DriverKind::Pio,
                                           DriverKind::Mmio,
                                           DriverKind::Ring),
                         [](const ::testing::TestParamInfo<DriverKind> &i) {
                             return driverName(i.param);
                         });

// --- Workloads -------------------------------------------------------------

TEST(GuestWorkloads, UrlParserConcreteCountsSegments)
{
    std::string src = kernelSource() + urlParserSource();
    Engine engine(machineFor(src), EngineConfig{});
    // Write a concrete URL into the input buffer.
    std::string url = "http://a/b/c/d";
    auto &state = engine.initialState();
    for (size_t i = 0; i <= url.size(); ++i)
        state.mem.write(kUrlBuffer + static_cast<uint32_t>(i),
                        core::Value(i < url.size() ? url[i] : 0), 1,
                        engine.builder());
    uint32_t segments = 0;
    engine.events().onGuestOutput.subscribe(
        [&](ExecutionState &, const core::Value &v) {
            if (v.isConcrete())
                segments = v.concrete();
        });
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
    EXPECT_EQ(segments, 3u); // /b /c /d
}

TEST(GuestWorkloads, UrlParserRejectsBadScheme)
{
    std::string src = kernelSource() + urlParserSource();
    Engine engine(machineFor(src), EngineConfig{});
    std::string url = "ftp://x";
    auto &state = engine.initialState();
    for (size_t i = 0; i <= url.size(); ++i)
        state.mem.write(kUrlBuffer + static_cast<uint32_t>(i),
                        core::Value(i < url.size() ? url[i] : 0), 1,
                        engine.builder());
    uint32_t result = 0;
    engine.events().onGuestOutput.subscribe(
        [&](ExecutionState &, const core::Value &v) {
            if (v.isConcrete())
                result = v.concrete();
        });
    engine.run();
    EXPECT_EQ(result, 0xFFFFFFFFu);
}

TEST(GuestWorkloads, UrlParserInstructionCostLinearInSlashes)
{
    // The paper's signature: each extra '/' costs exactly 10 more
    // instructions.
    auto instr_for = [&](const std::string &url) {
        std::string src = kernelSource() + urlParserSource();
        Engine engine(machineFor(src), EngineConfig{});
        auto &state = engine.initialState();
        for (size_t i = 0; i <= url.size(); ++i)
            state.mem.write(kUrlBuffer + static_cast<uint32_t>(i),
                            core::Value(i < url.size() ? url[i] : 0), 1,
                            engine.builder());
        engine.run();
        return engine.allStates()[0]->instrCount;
    };
    // Same length, different '/' counts.
    uint64_t base = instr_for("http://aaaaaaaa");
    uint64_t one = instr_for("http://aaaa/aaa");
    uint64_t two = instr_for("http://aa/aa/aa");
    EXPECT_EQ(one - base, 10u);
    EXPECT_EQ(two - one, 10u);
}

TEST(GuestWorkloads, PingPatchedCompletes)
{
    std::string src = kernelSource() + driverSource(DriverKind::Dma) +
                      pingSource(/*patched=*/true);
    vm::MachineConfig m = machineFor(src, DriverKind::Dma,
                                     /*loopback=*/true);
    Engine engine(m, EngineConfig{});
    setConfig(engine.initialState(), engine.builder(), kCfgCardType, 0);
    engine.run();
    const auto &state = *engine.allStates()[0];
    EXPECT_EQ(state.status, StateStatus::Halted)
        << state.statusMessage << " console=" << consoleOf(state);
    EXPECT_EQ(consoleOf(state), "Y");
}

TEST(GuestWorkloads, PingUnpatchedHangsOnCraftedReply)
{
    // A reply with a record-route option of length 3 hangs the
    // unpatched ping (the real bug the paper found).
    std::string src = kernelSource() + driverSource(DriverKind::Dma) +
                      pingSource(/*patched=*/false);
    vm::MachineConfig m = machineFor(src, DriverKind::Dma,
                                     /*loopback=*/false);
    core::EngineConfig config;
    config.maxInstructions = 200000;
    Engine engine(m, config);
    setConfig(engine.initialState(), engine.builder(), kCfgCardType, 0);
    // Craft the malicious "reply": ihl=6 (4 option bytes), option
    // type 7 (record route) with length 3.
    auto *nic = engine.initialState().devices.get<vm::DmaNic>("dmanic");
    std::vector<uint8_t> evil(16, 0);
    evil[0] = 6;  // ihl
    evil[8] = 7;  // RR option
    evil[9] = 3;  // length 3: no room, the bug triggers
    nic->injectPacket(evil);
    core::RunResult r = engine.run();
    EXPECT_TRUE(r.budgetExhausted); // infinite loop, killed by budget
}

TEST(GuestWorkloads, PingPatchedSurvivesCraftedReply)
{
    std::string src = kernelSource() + driverSource(DriverKind::Dma) +
                      pingSource(/*patched=*/true);
    vm::MachineConfig m = machineFor(src, DriverKind::Dma, false);
    core::EngineConfig config;
    config.maxInstructions = 200000;
    Engine engine(m, config);
    setConfig(engine.initialState(), engine.builder(), kCfgCardType, 0);
    auto *nic = engine.initialState().devices.get<vm::DmaNic>("dmanic");
    std::vector<uint8_t> evil(16, 0);
    evil[0] = 6;
    evil[8] = 7;
    evil[9] = 3;
    nic->injectPacket(evil);
    core::RunResult r = engine.run();
    EXPECT_FALSE(r.budgetExhausted);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

/** Helper running the Lua guest on a concrete program string. */
std::string
runLua(const std::string &program)
{
    std::string src = kernelSource() + luaSource();
    vm::MachineConfig m;
    m.ramSize = kRamSize;
    m.program = isa::assemble(src);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    Engine engine(m, EngineConfig{});
    auto &state = engine.initialState();
    for (size_t i = 0; i <= program.size(); ++i)
        state.mem.write(kLuaInput + static_cast<uint32_t>(i),
                        core::Value(i < program.size() ? program[i] : 0),
                        1, engine.builder());
    engine.run();
    return consoleOf(*engine.allStates()[0]);
}

TEST(GuestWorkloads, LuaArithmetic)
{
    EXPECT_EQ(runLua("!2+3;"), "5\nK");
    EXPECT_EQ(runLua("!2+3*4;"), "14\nK"); // precedence
    EXPECT_EQ(runLua("!(2+3)*4;"), "20\nK");
    EXPECT_EQ(runLua("!10/2-1;"), "4\nK");
}

TEST(GuestWorkloads, LuaVariables)
{
    EXPECT_EQ(runLua("a=6;b=7;!a*b;"), "42\nK");
    EXPECT_EQ(runLua("x=5;x=x+1;!x;"), "6\nK");
}

TEST(GuestWorkloads, LuaParseErrors)
{
    EXPECT_EQ(runLua("!2+;"), "P");
    EXPECT_EQ(runLua("=5;"), "P");
    EXPECT_EQ(runLua("!(2+3;"), "P");
}

TEST(GuestWorkloads, LuaLexErrors)
{
    EXPECT_EQ(runLua("!2 @ 3;"), "L");
}

TEST(GuestWorkloads, LuaRuntimeErrors)
{
    EXPECT_EQ(runLua("!1/0;"), "R"); // division by zero
}

TEST(GuestWorkloads, LicenseCheckAcceptsValidKey)
{
    std::string src = kernelSource() + licenseCheckSource();
    Engine engine(machineFor(src), EngineConfig{});
    auto &state = engine.initialState();
    // digits 1+2+3+4+0 = 10, 10 % 7 = 3: valid.
    uint32_t key_addr = addConfigString(state, engine.builder(), 0,
                                        "S212340Z");
    setConfig(state, engine.builder(), kCfgLicensePtr, key_addr);
    engine.run();
    EXPECT_EQ(consoleOf(*engine.allStates()[0]), "V");
}

TEST(GuestWorkloads, LicenseCheckRejectsInvalidKey)
{
    std::string src = kernelSource() + licenseCheckSource();
    Engine engine(machineFor(src), EngineConfig{});
    auto &state = engine.initialState();
    uint32_t key_addr = addConfigString(state, engine.builder(), 0,
                                        "S212350Z"); // sum 11 % 7 != 3
    setConfig(state, engine.builder(), kCfgLicensePtr, key_addr);
    engine.run();
    EXPECT_EQ(consoleOf(*engine.allStates()[0]), "B");
}

TEST(GuestWorkloads, LicenseCheckSymbolicFindsBugKey)
{
    // Make the whole key symbolic: S2E must find the legacy-path
    // assertion failure (key "S29***XX" shape) among the paths.
    std::string src = kernelSource() + licenseCheckSource();
    core::EngineConfig config;
    config.maxInstructions = 3000000;
    Engine engine(machineFor(src), config);
    auto &state = engine.initialState();
    uint32_t key_addr = addConfigString(state, engine.builder(), 0,
                                        "AAAAAAAA");
    setConfig(state, engine.builder(), kCfgLicensePtr, key_addr);
    engine.makeMemSymbolic(state, key_addr, 8, "license");
    bool bug_found = false;
    engine.events().onBug.subscribe(
        [&](ExecutionState &, const std::string &) { bug_found = true; });
    engine.run();
    EXPECT_TRUE(bug_found);
    // And at least one path validated successfully.
    bool valid_path = false;
    for (const auto &s : engine.allStates())
        if (consoleOf(*s) == "V")
            valid_path = true;
    EXPECT_TRUE(valid_path);
}

} // namespace
} // namespace s2e::guest
