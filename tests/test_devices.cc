/** @file Unit tests for virtual devices (console, timer, disk, NICs). */

#include <gtest/gtest.h>

#include <map>

#include "vm/devices.hh"
#include "vm/machine.hh"
#include "vm/nic.hh"

namespace s2e::vm {
namespace {

/** Test fixture providing a fake bus over a small byte array. */
class DeviceTest : public ::testing::Test
{
  protected:
    DeviceTest()
    {
        bus.readMem = [this](uint32_t addr) {
            return addr < sizeof(ram) ? ram[addr] : 0;
        };
        bus.writeMem = [this](uint32_t addr, uint8_t v) {
            if (addr < sizeof(ram))
                ram[addr] = v;
        };
        bus.raiseIrq = [this](unsigned irq) { irqs[irq]++; };
    }

    uint8_t ram[4096] = {0};
    std::map<unsigned, int> irqs;
    DeviceBus bus;
};

TEST_F(DeviceTest, ConsoleCapturesOutput)
{
    ConsoleDevice console;
    console.ioWrite(ConsoleDevice::kDataPort, 'h', bus);
    console.ioWrite(ConsoleDevice::kDataPort, 'i', bus);
    EXPECT_EQ(console.output(), "hi");
    EXPECT_EQ(console.ioRead(ConsoleDevice::kStatusPort, bus), 1u);
}

TEST_F(DeviceTest, ConsoleCloneIsIndependent)
{
    ConsoleDevice console;
    console.ioWrite(ConsoleDevice::kDataPort, 'a', bus);
    auto copy = console.clone();
    console.ioWrite(ConsoleDevice::kDataPort, 'b', bus);
    EXPECT_EQ(static_cast<ConsoleDevice *>(copy.get())->output(), "a");
    EXPECT_EQ(console.output(), "ab");
}

TEST_F(DeviceTest, TimerRaisesIrqPeriodically)
{
    TimerDevice timer;
    timer.ioWrite(TimerDevice::kPeriodPort, 100, bus);
    timer.ioWrite(TimerDevice::kCtrlPort, 1, bus);
    for (uint64_t now = 0; now <= 1000; now += 10)
        timer.tick(now, bus);
    EXPECT_GE(irqs[kIrqTimer], 8);
    EXPECT_LE(irqs[kIrqTimer], 10);
}

TEST_F(DeviceTest, TimerStoppedDoesNotFire)
{
    TimerDevice timer;
    timer.ioWrite(TimerDevice::kPeriodPort, 10, bus);
    for (uint64_t now = 0; now < 500; now += 5)
        timer.tick(now, bus);
    EXPECT_EQ(irqs[kIrqTimer], 0);
}

TEST_F(DeviceTest, DiskReadWriteSector)
{
    DiskDevice disk(4);
    // Fill sector 2 directly.
    for (unsigned i = 0; i < DiskDevice::kSectorSize; ++i)
        disk.data()[2 * DiskDevice::kSectorSize + i] =
            static_cast<uint8_t>(i);
    disk.ioWrite(DiskDevice::kSectorPort, 2, bus);
    disk.ioWrite(DiskDevice::kAddrPort, 0x100, bus);
    disk.ioWrite(DiskDevice::kCmdPort, 1, bus); // read
    EXPECT_EQ(disk.ioRead(DiskDevice::kStatusPort, bus), 1u);
    EXPECT_EQ(ram[0x100], 0);
    EXPECT_EQ(ram[0x100 + 37], 37);
    EXPECT_EQ(irqs[kIrqDisk], 1);

    // Write modified memory back to sector 1.
    ram[0x100] = 0x99;
    disk.ioWrite(DiskDevice::kSectorPort, 1, bus);
    disk.ioWrite(DiskDevice::kCmdPort, 2, bus); // write
    EXPECT_EQ(disk.data()[1 * DiskDevice::kSectorSize], 0x99);
}

TEST_F(DeviceTest, DiskRejectsOutOfRangeSector)
{
    DiskDevice disk(4);
    disk.ioWrite(DiskDevice::kSectorPort, 99, bus);
    disk.ioWrite(DiskDevice::kCmdPort, 1, bus);
    EXPECT_EQ(disk.ioRead(DiskDevice::kStatusPort, bus), 2u); // error
}

TEST_F(DeviceTest, PioNicTransmit)
{
    PioNic nic;
    nic.ioWrite(PioNic::kTxLen, 3, bus);
    nic.ioWrite(PioNic::kData, 0xAA, bus);
    nic.ioWrite(PioNic::kData, 0xBB, bus);
    nic.ioWrite(PioNic::kData, 0xCC, bus);
    nic.ioWrite(PioNic::kCmd, PioNic::kCmdTx, bus);
    ASSERT_EQ(nic.transmitted().size(), 1u);
    EXPECT_EQ(nic.transmitted()[0],
              (std::vector<uint8_t>{0xAA, 0xBB, 0xCC}));
    EXPECT_TRUE(nic.ioRead(PioNic::kStatus, bus) & PioNic::kStTxDone);
}

TEST_F(DeviceTest, PioNicTxLengthMismatchSetsError)
{
    PioNic nic;
    nic.ioWrite(PioNic::kTxLen, 5, bus);
    nic.ioWrite(PioNic::kData, 1, bus); // only 1 of 5 bytes
    nic.ioWrite(PioNic::kCmd, PioNic::kCmdTx, bus);
    EXPECT_TRUE(nic.ioRead(PioNic::kStatus, bus) & PioNic::kStError);
    EXPECT_TRUE(nic.transmitted().empty());
}

TEST_F(DeviceTest, PioNicReceiveFlow)
{
    PioNic nic;
    nic.injectPacket({10, 20, 30});
    EXPECT_TRUE(nic.ioRead(PioNic::kStatus, bus) & PioNic::kStRxRdy);
    EXPECT_EQ(nic.ioRead(PioNic::kRxLen, bus), 3u);
    EXPECT_EQ(nic.ioRead(PioNic::kData, bus), 10u);
    EXPECT_EQ(nic.ioRead(PioNic::kData, bus), 20u);
    EXPECT_EQ(nic.ioRead(PioNic::kData, bus), 30u);
    nic.ioWrite(PioNic::kCmd, PioNic::kCmdRxAck, bus);
    EXPECT_FALSE(nic.ioRead(PioNic::kStatus, bus) & PioNic::kStRxRdy);
}

TEST_F(DeviceTest, PioNicMacReadout)
{
    PioNic nic;
    nic.ioWrite(PioNic::kMacIdx, 0, bus);
    EXPECT_EQ(nic.ioRead(PioNic::kMacVal, bus), 0x52u);
    nic.ioWrite(PioNic::kMacIdx, 7, bus);
    EXPECT_EQ(nic.ioRead(PioNic::kMacVal, bus), 0xFFu); // out of range
}

TEST_F(DeviceTest, DmaNicTransmitReadsMemory)
{
    DmaNic nic;
    ram[0x20] = 0xDE;
    ram[0x21] = 0xAD;
    nic.ioWrite(DmaNic::kTxAddr, 0x20, bus);
    nic.ioWrite(DmaNic::kTxLen, 2, bus);
    nic.ioWrite(DmaNic::kCmd, DmaNic::kCmdIen | DmaNic::kCmdTxStart, bus);
    ASSERT_EQ(nic.transmitted().size(), 1u);
    EXPECT_EQ(nic.transmitted()[0], (std::vector<uint8_t>{0xDE, 0xAD}));
    EXPECT_EQ(irqs[kIrqNic], 1);
}

TEST_F(DeviceTest, DmaNicReceiveTruncatesToBuffer)
{
    DmaNic nic;
    nic.injectPacket({1, 2, 3, 4, 5, 6, 7, 8});
    nic.ioWrite(DmaNic::kRxAddr, 0x40, bus);
    nic.ioWrite(DmaNic::kRxBufSz, 4, bus);
    nic.ioWrite(DmaNic::kCmd, DmaNic::kCmdRxFetch, bus);
    EXPECT_EQ(nic.ioRead(DmaNic::kRxLen, bus), 4u);
    EXPECT_EQ(ram[0x40], 1);
    EXPECT_EQ(ram[0x43], 4);
    EXPECT_EQ(ram[0x44], 0); // truncated
}

TEST_F(DeviceTest, DmaNicCardTypeProbe)
{
    DmaNic nic;
    EXPECT_EQ(nic.ioRead(DmaNic::kCardType, bus), 0x2621u);
}

TEST_F(DeviceTest, MmioNicBankSwitching)
{
    MmioNic nic;
    nic.mmioWrite(MmioNic::kBase + MmioNic::kBankReg, 1, 4, bus);
    EXPECT_EQ(nic.mmioRead(MmioNic::kBase + MmioNic::kBankReg, 4, bus),
              1u);
    uint32_t mac_lo = nic.mmioRead(MmioNic::kBase + MmioNic::kB1MacLo, 4,
                                   bus);
    EXPECT_EQ(mac_lo, 0x292e5352u);
    // Same offset in bank 0 is the control register, not the MAC.
    nic.mmioWrite(MmioNic::kBase + MmioNic::kBankReg, 0, 4, bus);
    EXPECT_NE(nic.mmioRead(MmioNic::kBase + MmioNic::kB0Ctrl, 4, bus),
              mac_lo);
}

TEST_F(DeviceTest, MmioNicTransmitViaFifo)
{
    MmioNic nic;
    auto wr = [&](uint32_t off, uint32_t v) {
        nic.mmioWrite(MmioNic::kBase + off, v, 4, bus);
    };
    wr(MmioNic::kBankReg, 0);
    wr(MmioNic::kB0Ctrl, 1 | 4); // txen + ien
    wr(MmioNic::kBankReg, 2);
    wr(MmioNic::kB2TxLen, 2);
    wr(MmioNic::kB2Fifo, 0x11);
    wr(MmioNic::kB2Fifo, 0x22);
    wr(MmioNic::kBankReg, 0);
    wr(MmioNic::kB0Cmd, 2); // TX
    ASSERT_EQ(nic.transmitted().size(), 1u);
    EXPECT_EQ(nic.transmitted()[0], (std::vector<uint8_t>{0x11, 0x22}));
    EXPECT_EQ(irqs[kIrqNic], 1);
}

TEST_F(DeviceTest, MmioNicTxDisabledDrops)
{
    MmioNic nic;
    auto wr = [&](uint32_t off, uint32_t v) {
        nic.mmioWrite(MmioNic::kBase + off, v, 4, bus);
    };
    wr(MmioNic::kBankReg, 2);
    wr(MmioNic::kB2TxLen, 1);
    wr(MmioNic::kB2Fifo, 0x33);
    wr(MmioNic::kBankReg, 0);
    wr(MmioNic::kB0Cmd, 2); // TX with txen clear
    EXPECT_TRUE(nic.transmitted().empty());
}

TEST_F(DeviceTest, RingNicDeliversWithLengthHeader)
{
    RingNic nic;
    nic.ioWrite(RingNic::kRingAddr, 0x100, bus);
    nic.ioWrite(RingNic::kRingSize, 64, bus);
    nic.injectPacket({0xAB, 0xCD});
    nic.ioWrite(RingNic::kCmd, RingNic::kCmdRxEnable, bus);
    EXPECT_EQ(nic.ioRead(RingNic::kWrPtr, bus), 6u); // 4 hdr + 2 data
    EXPECT_EQ(ram[0x100], 2);  // length lo
    EXPECT_EQ(ram[0x104], 0xAB);
    EXPECT_EQ(ram[0x105], 0xCD);
}

TEST_F(DeviceTest, RingNicWrapsAround)
{
    RingNic nic;
    nic.ioWrite(RingNic::kRingAddr, 0x100, bus);
    nic.ioWrite(RingNic::kRingSize, 16, bus);
    nic.ioWrite(RingNic::kCmd, RingNic::kCmdRxEnable, bus);
    nic.injectPacket({1, 2, 3, 4});       // 8 bytes with header
    nic.tick(0, bus);
    nic.ioWrite(RingNic::kRdPtr, 8, bus); // consume
    nic.injectPacket({5, 6, 7, 8});       // wraps
    nic.tick(1, bus);
    EXPECT_EQ(nic.ioRead(RingNic::kWrPtr, bus), 0u); // wrapped exactly
}

TEST_F(DeviceTest, RingNicOverflowSetsStatus)
{
    RingNic nic;
    nic.ioWrite(RingNic::kRingAddr, 0x100, bus);
    nic.ioWrite(RingNic::kRingSize, 8, bus);
    nic.ioWrite(RingNic::kCmd, RingNic::kCmdRxEnable, bus);
    nic.injectPacket({1, 2, 3, 4, 5, 6}); // 10 > 7 free
    nic.tick(0, bus);
    EXPECT_TRUE(nic.ioRead(RingNic::kStatus, bus) &
                RingNic::kStRingOverflow);
}

TEST_F(DeviceTest, LoopbackReinjectsTransmit)
{
    DmaNic nic;
    nic.setLoopback(true);
    ram[0] = 0x5A;
    nic.ioWrite(DmaNic::kTxAddr, 0, bus);
    nic.ioWrite(DmaNic::kTxLen, 1, bus);
    nic.ioWrite(DmaNic::kCmd, DmaNic::kCmdTxStart, bus);
    EXPECT_TRUE(nic.rxPending());
    EXPECT_TRUE(nic.ioRead(DmaNic::kStatus, bus) & DmaNic::kStRxRdy);
}

TEST_F(DeviceTest, DeviceSetCloneIsDeep)
{
    DeviceSet set;
    set.add(std::make_unique<ConsoleDevice>());
    set.add(std::make_unique<PioNic>());
    auto *console = set.get<ConsoleDevice>("console");
    console->ioWrite(ConsoleDevice::kDataPort, 'x', bus);

    DeviceSet copy(set);
    auto *console2 = copy.get<ConsoleDevice>("console");
    ASSERT_NE(console2, nullptr);
    EXPECT_NE(console2, console);
    EXPECT_EQ(console2->output(), "x");
    console2->ioWrite(ConsoleDevice::kDataPort, 'y', bus);
    EXPECT_EQ(console->output(), "x");
}

TEST_F(DeviceTest, DeviceSetPortDispatch)
{
    DeviceSet set;
    set.add(std::make_unique<ConsoleDevice>());
    set.add(std::make_unique<DmaNic>());
    EXPECT_EQ(set.findPort(ConsoleDevice::kDataPort)->name(), "console");
    EXPECT_EQ(set.findPort(DmaNic::kCmd)->name(), "dmanic");
    EXPECT_EQ(set.findPort(0x999), nullptr);
}

TEST_F(DeviceTest, DeviceSetMmioDispatch)
{
    DeviceSet set;
    set.add(std::make_unique<MmioNic>());
    EXPECT_NE(set.findMmio(MmioNic::kBase), nullptr);
    EXPECT_EQ(set.findMmio(MmioNic::kBase + MmioNic::kSize), nullptr);
}

} // namespace
} // namespace s2e::vm
