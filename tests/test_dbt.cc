/** @file Tests for the translator, TB cache and the vanilla executor. */

#include <gtest/gtest.h>

#include "dbt/fastexec.hh"
#include "dbt/translator.hh"
#include "isa/assembler.hh"

namespace s2e::dbt {
namespace {

using isa::assemble;
using isa::Program;

FastMachine
makeMachine(const std::string &source, uint32_t ram = 64 * 1024)
{
    FastMachine m(ram);
    m.load(assemble(source));
    return m;
}

TEST(Translator, StraightLineBlock)
{
    FastMachine m = makeMachine(R"(
        movi r1, 1
        movi r2, 2
        add r1, r2
        hlt
    )");
    Translator t;
    CodeReader reader = [&](uint32_t a, uint8_t *out) {
        if (a >= m.mem.size())
            return false;
        *out = m.mem[a];
        return true;
    };
    auto tb = t.translate(0, reader);
    EXPECT_EQ(tb->instrPcs.size(), 4u);
    EXPECT_EQ(tb->ops.back().op, UOp::Halt);
}

TEST(Translator, BlockEndsAtBranch)
{
    FastMachine m = makeMachine(R"(
        movi r1, 1
        cmpi r1, 5
        jne skip
        nop
    skip:
        hlt
    )");
    // Raw lowering shape: with all-constant inputs the optimizer
    // would legitimately fold this jne to a Goto (pinned over in
    // test_analysis), so translate unoptimized here.
    Translator t(TranslatorConfig{.optimize = false});
    CodeReader reader = [&](uint32_t a, uint8_t *out) {
        *out = m.mem[a];
        return true;
    };
    auto tb = t.translate(0, reader);
    EXPECT_EQ(tb->instrPcs.size(), 3u); // movi, cmpi, jne
    EXPECT_EQ(tb->ops.back().op, UOp::Branch);
}

TEST(Translator, MaxInstrsChainsWithGoto)
{
    std::string src;
    for (int i = 0; i < 40; ++i)
        src += "nop\n";
    src += "hlt\n";
    FastMachine m = makeMachine(src);
    Translator t; // default max 16 instrs
    CodeReader reader = [&](uint32_t a, uint8_t *out) {
        *out = m.mem[a];
        return true;
    };
    auto tb = t.translate(0, reader);
    EXPECT_EQ(tb->instrPcs.size(), 16u);
    EXPECT_EQ(tb->ops.back().op, UOp::Goto);
    EXPECT_EQ(tb->ops.back().imm, 16u); // 16 nops = 16 bytes
}

TEST(Translator, DecodeFaultGivesEmptyBlock)
{
    FastMachine m(1024);
    m.mem[0] = 0xEE; // invalid opcode
    Translator t;
    CodeReader reader = [&](uint32_t a, uint8_t *out) {
        *out = m.mem[a];
        return true;
    };
    auto tb = t.translate(0, reader);
    EXPECT_TRUE(tb->instrPcs.empty());
}

TEST(Translator, InstrPcForOpMapsBack)
{
    FastMachine m = makeMachine("movi r1, 1\nmovi r2, 2\nhlt\n");
    Translator t;
    CodeReader reader = [&](uint32_t a, uint8_t *out) {
        *out = m.mem[a];
        return true;
    };
    auto tb = t.translate(0, reader);
    // First instruction's ops map to pc 0; second to 6 (movi is 6 bytes).
    EXPECT_EQ(tb->instrPcForOp(0), 0u);
    EXPECT_EQ(tb->instrPcForOp(tb->instrOpIndex[1]), 6u);
}

TEST(FastExec, ArithmeticLoop)
{
    // Sum 1..10 into r1.
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r1, 0
        movi r2, 1
    loop:
        add r1, r2
        addi r2, 1
        cmpi r2, 11
        jne loop
        hlt
    )");
    FastRunResult r = fastRun(m, 100000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.regs[1], 55u);
}

TEST(FastExec, SignedComparisons)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r1, -5
        cmpi r1, 3
        jlt neg
        movi r2, 0
        hlt
    neg:
        movi r2, 1
        hlt
    )");
    FastRunResult r = fastRun(m, 1000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.regs[2], 1u); // -5 < 3 signed
}

TEST(FastExec, UnsignedComparisons)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r1, -5       ; 0xFFFFFFFB unsigned: huge
        cmpi r1, 3
        jb below
        movi r2, 0
        hlt
    below:
        movi r2, 1
        hlt
    )");
    fastRun(m, 1000);
    EXPECT_EQ(m.regs[2], 0u); // 0xFFFFFFFB is not < 3 unsigned
}

TEST(FastExec, CallRetAndStack)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 5
        call double
        hlt
    double:
        add r1, r1
        ret
    )");
    FastRunResult r = fastRun(m, 1000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.regs[1], 10u);
    EXPECT_EQ(m.regs[isa::kRegSp], 0x8000u); // balanced
}

TEST(FastExec, MemoryLoadStoreWidths)
{
    FastMachine m = makeMachine(R"(
        .entry main
        .equ BUF, 0x4000
    main:
        movi r10, BUF
        movi r1, 0x12345678
        stw [r10], r1
        ldb r2, [r10]         ; 0x78
        ldb r3, [r10+3]       ; 0x12
        ldh r4, [r10]         ; 0x5678
        movi r1, 0x80
        stb [r10+8], r1
        ldbs r5, [r10+8]      ; sign-extended -128
        hlt
    )");
    fastRun(m, 1000);
    EXPECT_EQ(m.regs[2], 0x78u);
    EXPECT_EQ(m.regs[3], 0x12u);
    EXPECT_EQ(m.regs[4], 0x5678u);
    EXPECT_EQ(m.regs[5], 0xFFFFFF80u);
}

TEST(FastExec, IndirectJumpTable)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r1, table
        ldw r2, [r1+4]     ; second entry
        jmp r2
    a:  movi r3, 1
        hlt
    b:  movi r3, 2
        hlt
        .align 4
    table:
        .word a, b
    )");
    fastRun(m, 1000);
    EXPECT_EQ(m.regs[3], 2u);
}

TEST(FastExec, FibonacciRecursive)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 10
        call fib
        hlt
    ; fib(n) in r1 -> r1
    fib:
        cmpi r1, 2
        jlt fib_base
        push r1
        subi r1, 1
        call fib          ; fib(n-1)
        mov r2, r1
        pop r1
        push r2
        subi r1, 2
        call fib          ; fib(n-2)
        pop r2
        add r1, r2
        ret
    fib_base:
        ret
    )");
    FastRunResult r = fastRun(m, 1000000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m.regs[1], 55u); // fib(10)
}

TEST(FastExec, DivisionTotalSemantics)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r1, 100
        movi r2, 0
        udiv r1, r2      ; division by zero -> all ones
        movi r3, 7
        movi r4, 0
        urem r3, r4      ; rem by zero -> dividend
        hlt
    )");
    fastRun(m, 1000);
    EXPECT_EQ(m.regs[1], 0xFFFFFFFFu);
    EXPECT_EQ(m.regs[3], 7u);
}

TEST(FastExec, SelfModifyingCodeInvalidatesTb)
{
    // Overwrite the movi immediate in a loop body: the second pass
    // must execute the patched constant.
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r5, 0        ; pass counter
    again:
        movi r9, 111      ; <- patched below
        cmpi r5, 1
        jeq done
        ; patch the immediate byte of 'movi r9,111' to 222
        movi r1, patchsite+2
        movi r2, 222
        stb [r1], r2
        addi r5, 1
        jmp again
    done:
        hlt
        .org 0x200
    patchsite:
    )");
    // Place the patched movi at a known location by re-assembling with
    // explicit layout: simpler variant below patches its own loop.
    (void)m;

    FastMachine m2 = makeMachine(R"(
        .entry main
    main:
        movi r5, 0
    loop:
    site:
        movi r9, 111
        cmpi r5, 1
        jeq done
        movi r1, site+2   ; imm field of the movi (op, reg, imm32)
        movi r2, 222
        stb [r1], r2
        addi r5, 1
        jmp loop
    done:
        hlt
    )");
    FastRunResult r = fastRun(m2, 10000);
    EXPECT_TRUE(r.halted);
    EXPECT_EQ(m2.regs[9], 222u);
}

TEST(FastExec, InstructionBudgetStopsRun)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        jmp main
    )");
    FastRunResult r = fastRun(m, 1000);
    EXPECT_FALSE(r.halted);
    EXPECT_GE(r.instructions, 1000u);
}

TEST(FastExec, TbCacheHitsOnLoop)
{
    FastMachine m = makeMachine(R"(
        .entry main
    main:
        movi r1, 0
    loop:
        addi r1, 1
        cmpi r1, 100
        jne loop
        hlt
    )");
    TbCache cache;
    fastRun(m, 100000, &cache);
    EXPECT_EQ(m.regs[1], 100u);
    EXPECT_GT(cache.hits(), 90u);
    EXPECT_LE(cache.size(), 4u);
}

} // namespace
} // namespace s2e::dbt
