/**
 * @file
 * Static value-analysis (absint) suite: abstract-domain algebra,
 * transfer-function soundness against the concrete evaluator,
 * constraint-driven backward refinement, the solver's static
 * feasibility pre-check with its differential oracle, and
 * engine-level differentials (absint on vs off must explore
 * identical fork trees at 1/2/4 workers, with zero recorded
 * disagreements and a nonzero static-prune count on workloads built
 * to have statically decidable branches).
 */

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "core/engine.hh"
#include "expr/absint/absval.hh"
#include "expr/absint/analyzer.hh"
#include "expr/builder.hh"
#include "expr/eval.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "obs/forktree.hh"
#include "solver/solver.hh"
#include "support/rng.hh"
#include "vm/devices.hh"

namespace s2e {
namespace {

using expr::Assignment;
using expr::ExprBuilder;
using expr::ExprRef;
using expr::absint::AbsValue;
using expr::absint::Analyzer;
using expr::absint::Facts;

// --- Abstract domain algebra ---------------------------------------------

TEST(AbsValue, ConstantIsSingleton)
{
    AbsValue v = AbsValue::constant(42, 8);
    EXPECT_TRUE(v.isConstant());
    EXPECT_EQ(v.constantValue(), 42u);
    EXPECT_TRUE(v.contains(42));
    EXPECT_FALSE(v.contains(41));
    EXPECT_TRUE(v.kb.allKnown(8));
}

TEST(AbsValue, ReduceFeedsKnownBitsIntoBounds)
{
    // Bit 7 known one forces umin >= 0x80.
    KnownBits kb;
    kb.ones = 0x80;
    AbsValue v = AbsValue::bits(kb, 8);
    EXPECT_GE(v.umin, 0x80u);
    EXPECT_LE(v.umax, 0xFFu);
}

TEST(AbsValue, ReduceFeedsBoundsIntoKnownBits)
{
    // [0xF0, 0xF3]: the common prefix 0xF0 pins the top six bits.
    AbsValue v = AbsValue::range(0xF0, 0xF3, 8);
    EXPECT_EQ(v.kb.ones & 0xF0u, 0xF0u);
    EXPECT_EQ(v.kb.zeros & 0x0Cu, 0x0Cu);
}

TEST(AbsValue, MeetOfDisjointIntervalsIsBottom)
{
    AbsValue a = AbsValue::range(0, 9, 8);
    AbsValue b = AbsValue::range(20, 30, 8);
    EXPECT_TRUE(a.meet(b).isBottom());
}

TEST(AbsValue, MeetNarrowsJoinWidens)
{
    AbsValue a = AbsValue::range(0, 20, 8);
    AbsValue b = AbsValue::range(10, 30, 8);
    AbsValue m = a.meet(b);
    EXPECT_EQ(m.umin, 10u);
    EXPECT_EQ(m.umax, 20u);
    AbsValue j = a.join(b);
    EXPECT_EQ(j.umin, 0u);
    EXPECT_EQ(j.umax, 30u);
}

TEST(AbsValue, ConflictingKnownBitsAreBottom)
{
    KnownBits one, zero;
    one.ones = 1;
    zero.zeros = 1;
    EXPECT_TRUE(
        AbsValue::bits(one, 8).meet(AbsValue::bits(zero, 8)).isBottom());
}

TEST(AbsValue, SignedRangeWrapsToUnsigned)
{
    // [-2, 1] signed over 8 bits straddles the wrap: unsigned bounds
    // must stay full-range, signed bounds must hold.
    AbsValue v = AbsValue::signedRange(-2, 1, 8);
    EXPECT_EQ(v.smin, -2);
    EXPECT_EQ(v.smax, 1);
    EXPECT_TRUE(v.contains(0xFE)); // -2
    EXPECT_TRUE(v.contains(1));
}

// --- Transfer-function soundness -----------------------------------------

/** Random expression over every Expr kind (the generator's shape
 *  mirrors DBT output: arithmetic over masked/shifted variables with
 *  comparisons and ites mixed in). */
ExprRef
randomExpr(ExprBuilder &b, Rng &rng, const std::vector<ExprRef> &vars,
           unsigned depth)
{
    if (depth == 0 || rng.chance(0.25)) {
        if (rng.chance(0.3))
            return b.constant(rng.next(), 32);
        return vars[rng.below(vars.size())];
    }
    ExprRef a = randomExpr(b, rng, vars, depth - 1);
    ExprRef c = randomExpr(b, rng, vars, depth - 1);
    switch (rng.below(24)) {
      case 0: return b.add(a, c);
      case 1: return b.sub(a, c);
      case 2: return b.mul(a, c);
      case 3: return b.udiv(a, c);
      case 4: return b.sdiv(a, c);
      case 5: return b.urem(a, c);
      case 6: return b.srem(a, c);
      case 7: return b.bAnd(a, c);
      case 8: return b.bOr(a, c);
      case 9: return b.bXor(a, c);
      case 10: return b.bNot(a);
      case 11: return b.neg(a);
      case 12: return b.shl(a, b.constant(rng.below(40), 32));
      case 13: return b.lshr(a, b.constant(rng.below(40), 32));
      case 14: return b.ashr(a, b.constant(rng.below(40), 32));
      case 15:
        return b.concat(b.extract(a, 0, 16), b.extract(c, 0, 16));
      case 16: return b.zext(b.extract(a, rng.below(16), 8), 32);
      case 17: return b.sext(b.extract(a, rng.below(16), 8), 32);
      case 18: return b.zext(b.eq(a, c), 32);
      case 19: return b.zext(b.ult(a, c), 32);
      case 20: return b.zext(b.ule(a, c), 32);
      case 21: return b.zext(b.slt(a, c), 32);
      case 22: return b.zext(b.sle(a, c), 32);
      default:
        return b.ite(b.ult(a, c), a, c);
    }
}

TEST(AbsintTransfer, PropertyEvalPureContainsConcreteValue)
{
    ExprBuilder b;
    Rng rng(1337);
    std::vector<ExprRef> vars = {b.var("a", 32), b.var("b", 32),
                                 b.var("c", 32)};
    for (int iter = 0; iter < 600; ++iter) {
        ExprRef e = randomExpr(b, rng, vars, 4);
        AbsValue v = expr::absint::evalPure(e);
        ASSERT_FALSE(v.isBottom()) << e->toString();
        for (int trial = 0; trial < 6; ++trial) {
            Assignment a;
            for (ExprRef var : vars)
                a.set(var, rng.next());
            uint64_t cv = expr::evaluate(e, a);
            ASSERT_TRUE(v.contains(cv))
                << "abs " << v.toString() << " misses " << cv << " of "
                << e->toString();
        }
    }
}

TEST(AbsintTransfer, MaskedValueHasTightBounds)
{
    ExprBuilder b;
    AbsValue v = expr::absint::evalPure(
        b.bAnd(b.var("x", 32), b.constant(0xFF, 32)));
    EXPECT_EQ(v.umax, 0xFFu);
    EXPECT_EQ(v.kb.zeros & 0xFFFFFF00u, 0xFFFFFF00u);
}

TEST(AbsintTransfer, ComparisonOfDisjointRangesFolds)
{
    ExprBuilder b;
    // (x & 0xF) < 0x100 is statically true.
    ExprRef e = b.ult(b.bAnd(b.var("x", 32), b.constant(0xF, 32)),
                      b.constant(0x100, 32));
    AbsValue v = expr::absint::evalPure(e);
    EXPECT_TRUE(v.isConstant());
    EXPECT_EQ(v.constantValue(), 1u);
}

// --- Backward refinement over constraint sets ----------------------------

TEST(AbsintAnalyzer, UltNarrowsVariableInterval)
{
    ExprBuilder b;
    Analyzer an;
    ExprRef x = b.var("x", 32);
    auto facts = an.analyze({b.ult(x, b.constant(10, 32))});
    ASSERT_FALSE(facts->bottom);
    AbsValue v = an.eval(x, *facts);
    EXPECT_EQ(v.umax, 9u);
}

TEST(AbsintAnalyzer, EqPinsVariableToConstant)
{
    ExprBuilder b;
    Analyzer an;
    ExprRef x = b.var("x", 32);
    auto facts = an.analyze({b.eq(x, b.constant(42, 32))});
    ASSERT_FALSE(facts->bottom);
    AbsValue v = an.eval(x, *facts);
    EXPECT_TRUE(v.isConstant());
    EXPECT_EQ(v.constantValue(), 42u);
}

TEST(AbsintAnalyzer, CrossConstraintFixpointPropagates)
{
    // x < 10 and y == x + 20 together bound y without any solver.
    ExprBuilder b;
    Analyzer an;
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);
    auto facts = an.analyze(
        {b.ult(x, b.constant(10, 32)),
         b.eq(y, b.add(x, b.constant(20, 32)))});
    ASSERT_FALSE(facts->bottom);
    AbsValue v = an.eval(y, *facts);
    EXPECT_GE(v.umin, 20u);
    EXPECT_LE(v.umax, 29u);
}

TEST(AbsintAnalyzer, ContradictoryConstraintsGoBottom)
{
    ExprBuilder b;
    Analyzer an;
    ExprRef x = b.var("x", 32);
    auto facts = an.analyze({b.ult(x, b.constant(10, 32)),
                             b.ult(b.constant(20, 32), x)});
    EXPECT_TRUE(facts->bottom);
}

TEST(AbsintAnalyzer, PrefixSeedsExtensionAndCacheHitsExactSet)
{
    ExprBuilder b;
    Analyzer an;
    uint64_t computed = 0, reused = 0, iters = 0;
    an.bindCounters(&computed, &reused, &iters);
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(100, 32))};
    an.analyze(cs);
    EXPECT_EQ(computed, 1u);
    an.analyze(cs); // exact hit
    EXPECT_EQ(computed, 1u);
    EXPECT_EQ(reused, 1u);
    cs.push_back(b.ult(b.constant(10, 32), x)); // path appends
    auto facts = an.analyze(cs);
    EXPECT_EQ(computed, 2u);
    EXPECT_EQ(reused, 2u); // prefix seeded
    AbsValue v = an.eval(x, *facts);
    EXPECT_EQ(v.umin, 11u);
    EXPECT_EQ(v.umax, 99u);
}

/**
 * Refinement soundness: build a random witness assignment first, then
 * random constraints that hold under it — every refined fact must
 * still contain the witness's value at that node.
 */
TEST(AbsintAnalyzer, PropertyRefinedFactsContainWitness)
{
    Rng rng(9001);
    for (int iter = 0; iter < 200; ++iter) {
        ExprBuilder b;
        Analyzer an;
        std::vector<ExprRef> vars = {b.var("a", 32), b.var("b", 32),
                                     b.var("c", 32)};
        Assignment witness;
        for (ExprRef var : vars)
            witness.set(var, rng.next());

        std::vector<ExprRef> cs;
        for (unsigned k = 0; k < 1 + rng.below(4); ++k) {
            ExprRef e = randomExpr(b, rng, vars, 3);
            uint64_t v = expr::evaluate(e, witness);
            switch (rng.below(4)) {
              case 0:
                cs.push_back(b.eq(e, b.constant(v, 32)));
                break;
              case 1:
                cs.push_back(
                    b.ule(e, b.constant(v | rng.next(), 32)));
                break;
              case 2:
                cs.push_back(
                    b.uge(e, b.constant(v & rng.next(), 32)));
                break;
              default:
                // A whole random boolean that happens to hold.
                cs.push_back(expr::evaluate(e, witness) & 1
                                 ? b.extract(e, 0, 1)
                                 : b.lnot(b.extract(e, 0, 1)));
                break;
            }
        }
        auto facts = an.analyze(cs);
        ASSERT_FALSE(facts->bottom) << "witnessed set flagged bottom";
        for (const auto &[node, val] : facts->refined) {
            uint64_t cv = expr::evaluate(node, witness);
            ASSERT_TRUE(val.contains(cv))
                << "fact " << val.toString() << " at "
                << node->toString() << " excludes witness value " << cv;
        }
    }
}

// --- Solver integration ---------------------------------------------------

solver::SolverOptions
absintOptions(bool verify, bool independence = true)
{
    solver::SolverOptions o;
    o.useAbsint = true;
    o.verifyAbsint = verify;
    o.useIndependence = independence;
    return o;
}

TEST(AbsintSolver, StaticSatAnswersWithoutSatCall)
{
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/false));
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 32))};
    auto out = s.mayBeTrue(cs, b.ult(x, b.constant(100, 32)));
    EXPECT_TRUE(out.isSat());
    EXPECT_EQ(s.stats().get("solver.sat_queries"), 0u);
    EXPECT_EQ(s.stats().get("absint.static_prunes"), 1u);
    EXPECT_EQ(s.stats().get("absint.static_sat"), 1u);
}

TEST(AbsintSolver, StaticUnsatAnswersWithoutSatCall)
{
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/false));
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 32))};
    auto out = s.mayBeTrue(cs, b.eq(x, b.constant(50, 32)));
    EXPECT_TRUE(out.isUnsat());
    EXPECT_EQ(s.stats().get("solver.sat_queries"), 0u);
    EXPECT_EQ(s.stats().get("absint.static_unsat"), 1u);
}

TEST(AbsintSolver, VerifyModeRunsOracleAndAgrees)
{
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/true));
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 32))};
    EXPECT_TRUE(s.mayBeTrue(cs, b.ult(x, b.constant(100, 32))).isSat());
    EXPECT_TRUE(s.mayBeTrue(cs, b.eq(x, b.constant(50, 32))).isUnsat());
    EXPECT_EQ(s.stats().get("absint.static_prunes"), 2u);
    EXPECT_GT(s.stats().get("solver.sat_queries"), 0u); // the oracle ran
    EXPECT_EQ(s.stats().get("absint.disagreements"), 0u);
}

TEST(AbsintSolver, RawModeIssuesNoStaticSat)
{
    // Without independence slicing there is no satisfiable-set
    // invariant, so only Unsat verdicts may be issued statically.
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/false,
                                      /*independence=*/false));
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 32))};
    auto sat = s.mayBeTrue(cs, b.ult(x, b.constant(100, 32)));
    EXPECT_TRUE(sat.isSat());
    EXPECT_EQ(s.stats().get("absint.static_sat"), 0u);
    EXPECT_GT(s.stats().get("solver.sat_queries"), 0u);
    auto unsat = s.mayBeTrue(cs, b.eq(x, b.constant(50, 32)));
    EXPECT_TRUE(unsat.isUnsat());
    EXPECT_EQ(s.stats().get("absint.static_unsat"), 1u);
}

TEST(AbsintSolver, MustBeTrueBenefitsFromRefinement)
{
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/true));
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 32))};
    // must(x < 16): the negation is statically Unsat.
    EXPECT_TRUE(s.mustBeTrue(cs, b.ult(x, b.constant(16, 32))).yes());
    EXPECT_GE(s.stats().get("absint.static_unsat"), 1u);
    EXPECT_EQ(s.stats().get("absint.disagreements"), 0u);
}

TEST(AbsintSolver, CheckBranchPrunesBothSidesOfRedundantTest)
{
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/false));
    ExprRef x = b.var("x", 32);
    ExprRef c = b.ult(x, b.constant(10, 32));
    auto f = s.checkBranch({c}, c);
    EXPECT_TRUE(f.trueSide.isSat());
    EXPECT_TRUE(f.falseSide.isUnsat());
    EXPECT_EQ(s.stats().get("solver.sat_queries"), 0u);
    EXPECT_EQ(s.stats().get("absint.static_prunes"), 2u);
}

TEST(AbsintSolver, GetRangeSeedsSearchFromStaticBounds)
{
    ExprBuilder b;
    solver::Solver s(b, absintOptions(/*verify=*/false));
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.eq(x, b.constant(42, 32))};
    uint64_t lo = 0, hi = 0;
    auto out = s.getRange(cs, x, &lo, &hi);
    ASSERT_TRUE(out.isSat());
    EXPECT_EQ(lo, 42u);
    EXPECT_EQ(hi, 42u);
    EXPECT_EQ(s.stats().get("absint.range_seeds"), 1u);
    // The seed collapses both binary searches to the base query only.
    EXPECT_EQ(s.stats().get("solver.sat_queries"), 0u);
}

TEST(AbsintSolver, GetRangeSeededSearchMatchesUnseeded)
{
    ExprBuilder b;
    solver::Solver seeded(b, absintOptions(/*verify=*/false));
    solver::SolverOptions off;
    off.useAbsint = false;
    solver::Solver plain(b, off);
    ExprRef x = b.var("x", 32);
    std::vector<ExprRef> cs = {b.ult(x, b.constant(1000, 32)),
                               b.ult(b.constant(99, 32), x)};
    uint64_t slo = 0, shi = 0, plo = 0, phi = 0;
    ASSERT_TRUE(seeded.getRange(cs, x, &slo, &shi).isSat());
    ASSERT_TRUE(plain.getRange(cs, x, &plo, &phi).isSat());
    EXPECT_EQ(slo, plo);
    EXPECT_EQ(shi, phi);
    EXPECT_EQ(slo, 100u);
    EXPECT_EQ(shi, 999u);
}

TEST(AbsintSolver, UnknownRescueWhenOracleExhaustsBudget)
{
    // A statically decidable query bundled with a search-heavy
    // multiplication constraint: the verify oracle gives up inside a
    // one-conflict budget, the static verdict stands, and the event is
    // counted as a rescue, not a disagreement.
    ExprBuilder b;
    solver::SolverOptions o = absintOptions(/*verify=*/true);
    o.maxConflicts = 1;
    o.maxRetries = 0;
    solver::Solver s(b, o);
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);
    // Witness x=7, y=0x1234567: the set is satisfiable (the invariant
    // holds), but SAT has to work for the factoring-flavored equality.
    uint64_t k = static_cast<uint64_t>(7 * 0x1234567u) & 0xFFFFFFFFu;
    std::vector<ExprRef> cs = {
        b.ult(x, b.constant(10, 32)),
        b.eq(b.mul(x, y), b.constant(k, 32)),
    };
    auto out = s.mayBeTrue(cs, b.ult(x, b.constant(16, 32)));
    EXPECT_TRUE(out.isSat());
    EXPECT_EQ(s.stats().get("absint.disagreements"), 0u);
    if (s.stats().get("solver.sat_queries") > 0 &&
        s.stats().get("solver.unknown_results") == 0) {
        // The oracle solved it inside the budget after all (possible
        // on a lucky decision order) — then no rescue is recorded.
        SUCCEED();
    } else {
        EXPECT_GE(s.stats().get("absint.unknown_rescues"), 1u);
    }
}

TEST(AbsintSolver, QueryNumberingUnchangedByStaticPrunes)
{
    // Fault triggers address facade queries by index; static pruning
    // must not renumber them. Query 2 is forced Unknown whether or not
    // query 1 was answered statically.
    ExprBuilder b;
    for (bool use_absint : {false, true}) {
        solver::SolverOptions o = absintOptions(/*verify=*/false);
        o.useAbsint = use_absint;
        solver::Solver s(b, o);
        solver::FaultPolicy policy;
        policy.enabled = true;
        policy.triggerQueries = {2};
        s.setFaultPolicy(policy);
        ExprRef x = b.var("x", 32);
        std::vector<ExprRef> cs = {b.ult(x, b.constant(10, 32))};
        EXPECT_TRUE(
            s.mayBeTrue(cs, b.ult(x, b.constant(100, 32))).isSat());
        EXPECT_TRUE(
            s.mayBeTrue(cs, b.ult(x, b.constant(100, 32))).isUnknown());
    }
}

/**
 * Random differential: witness-first constraint sets (the satisfiable
 * set invariant holds by construction) decided with absint+verify
 * against a plain solver. Answers must match and the verify oracle
 * must never record a disagreement.
 */
TEST(AbsintSolver, PropertyDifferentialMatchesPlainSolver)
{
    Rng rng(777);
    for (int iter = 0; iter < 120; ++iter) {
        ExprBuilder b;
        solver::Solver with(b, absintOptions(/*verify=*/true));
        solver::SolverOptions off;
        off.useAbsint = false;
        solver::Solver plain(b, off);

        std::vector<ExprRef> vars = {b.var("a", 32), b.var("b", 32),
                                     b.var("c", 32)};
        Assignment witness;
        for (ExprRef var : vars)
            witness.set(var, rng.next());
        std::vector<ExprRef> cs;
        for (unsigned k = 0; k < 1 + rng.below(3); ++k) {
            ExprRef e = randomExpr(b, rng, vars, 3);
            uint64_t v = expr::evaluate(e, witness);
            if (rng.chance(0.5))
                cs.push_back(b.eq(e, b.constant(v, 32)));
            else
                cs.push_back(b.ule(e, b.constant(v | rng.next(), 32)));
        }
        ExprRef q = b.extract(randomExpr(b, rng, vars, 3), 0, 1);
        auto a = with.mayBeTrue(cs, q);
        auto p = plain.mayBeTrue(cs, q);
        if (!a.isUnknown() && !p.isUnknown()) {
            ASSERT_EQ(a.result, p.result)
                << "query " << q->toString() << " diverged";
        }
        ASSERT_EQ(with.stats().get("absint.disagreements"), 0u);
    }
}

// --- Engine differentials -------------------------------------------------

vm::MachineConfig
machineFor(const std::string &source)
{
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
    };
    return m;
}

core::EngineConfig
engineConfigFor(unsigned workers, bool use_absint, bool verify = true)
{
    core::EngineConfig config;
    config.numWorkers = workers;
    // Model-cache hit patterns depend on query history, which absint
    // changes by design; keep it off so fork trees are comparable.
    config.solverOptions.useModelCache = false;
    config.solverOptions.useAbsint = use_absint;
    config.solverOptions.verifyAbsint = use_absint && verify;
    return config;
}

struct RunOutcome {
    std::map<std::string, std::string> paths;
    std::string forkTree;
    uint64_t staticPrunes = 0;
    uint64_t disagreements = 0;
    uint64_t satQueries = 0;
};

RunOutcome
finishRun(core::Engine &engine)
{
    obs::ForkTreeRecorder recorder(engine.events());
    engine.run();
    RunOutcome out;
    for (const auto &s : engine.allStates()) {
        out.paths.emplace(s->pathId(),
                          strprintf("status:%s exit:%u",
                                    core::stateStatusName(s->status),
                                    s->exitCode));
    }
    out.forkTree = recorder.toCanonicalJson();
    out.staticPrunes = engine.solver().stats().get("absint.static_prunes");
    out.disagreements =
        engine.solver().stats().get("absint.disagreements");
    out.satQueries = engine.solver().stats().get("solver.sat_queries");
    return out;
}

/**
 * Branches a static analysis can decide: re-tests of already-taken
 * conditions and masked bound checks. Three forking bits give eight
 * paths; every re-test and masked check must not fork.
 */
const char *
retestSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 1      ; re-test: both sides statically decided
        jeq b2
        ori r5, 16
    b2: testi r1, 2
        jeq b3
        ori r5, 2
    b3: testi r1, 2      ; re-test
        jeq b4
        ori r5, 32
    b4: testi r1, 4
        jeq b5
        ori r5, 4
    b5: mov r6, r1
        andi r6, 255     ; masked bound check: statically true
        cmpi r6, 256
        jb b6
        movi r5, 99      ; unreachable
    b6: hlt
    )";
}

RunOutcome
runRetest(unsigned workers, bool use_absint)
{
    core::Engine engine(machineFor(retestSource()),
                        engineConfigFor(workers, use_absint));
    return finishRun(engine);
}

RunOutcome
runLicense(unsigned workers, bool use_absint)
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();
    vm::MachineConfig m;
    m.ramSize = guest::kRamSize;
    m.program = isa::assemble(src);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
    };
    core::Engine engine(m, engineConfigFor(workers, use_absint));
    auto &state = engine.initialState();
    uint32_t key_addr = guest::addConfigString(state, engine.builder(), 0,
                                               "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                           "license");
    return finishRun(engine);
}

constexpr unsigned kWorkerCounts[] = {1, 2, 4};

void
expectAbsintMatchesPlain(RunOutcome (*run)(unsigned, bool),
                         bool expect_prunes)
{
    RunOutcome plain = run(1, /*use_absint=*/false);
    EXPECT_EQ(plain.staticPrunes, 0u);
    for (unsigned w : kWorkerCounts) {
        RunOutcome on = run(w, /*use_absint=*/true);
        EXPECT_EQ(plain.paths, on.paths)
            << "per-path outcomes diverged with " << w << " workers";
        EXPECT_EQ(plain.forkTree, on.forkTree)
            << "fork tree diverged with " << w << " workers";
        EXPECT_EQ(on.disagreements, 0u)
            << "verify oracle recorded disagreements with " << w
            << " workers";
        if (expect_prunes) {
            EXPECT_GT(on.staticPrunes, 0u)
                << "no static prunes with " << w << " workers";
        }
    }
}

TEST(AbsintEngineDifferential, RetestWorkload)
{
    expectAbsintMatchesPlain(runRetest, /*expect_prunes=*/true);
}

TEST(AbsintEngineDifferential, LicenseCheck)
{
    expectAbsintMatchesPlain(runLicense, /*expect_prunes=*/false);
}

TEST(AbsintEngineDifferential, RetestPathCountIsExactAndPruned)
{
    // Verification off: the oracle re-solves every pruned verdict,
    // which would mask the SAT-query savings being measured here.
    core::Engine engine(machineFor(retestSource()),
                        engineConfigFor(1, /*use_absint=*/true,
                                        /*verify=*/false));
    RunOutcome on = finishRun(engine);
    EXPECT_EQ(on.paths.size(), 8u); // 3 forking bits, no bogus forks
    EXPECT_GT(on.staticPrunes, 0u);
    // Pruning pays: the plain run needs strictly more SAT calls.
    RunOutcome plain = runRetest(1, /*use_absint=*/false);
    EXPECT_LT(on.satQueries, plain.satQueries);
}

} // namespace
} // namespace s2e
