/** @file Tests for the bitfield-theory simplifier (§5 of the paper). */

#include <gtest/gtest.h>

#include "expr/builder.hh"
#include "expr/eval.hh"
#include "expr/simplify.hh"
#include "support/rng.hh"

namespace s2e::expr {
namespace {

class SimplifyTest : public ::testing::Test
{
  protected:
    ExprBuilder b;
    Simplifier simp{b};
};

TEST_F(SimplifyTest, KnownBitsConstant)
{
    KnownBits kb = knownBits(b.constant(0xA5, 8));
    EXPECT_TRUE(kb.allKnown(8));
    EXPECT_EQ(kb.value(), 0xA5u);
}

TEST_F(SimplifyTest, KnownBitsVariableUnknown)
{
    KnownBits kb = knownBits(b.var("x", 8));
    EXPECT_EQ(kb.zeros | kb.ones, 0u);
}

TEST_F(SimplifyTest, KnownBitsAndMask)
{
    // x & 0x0F: high nibble known zero.
    KnownBits kb = knownBits(b.bAnd(b.var("x", 8), b.constant(0x0F, 8)));
    EXPECT_EQ(kb.zeros & 0xF0u, 0xF0u);
}

TEST_F(SimplifyTest, KnownBitsOrSetsOnes)
{
    KnownBits kb = knownBits(b.bOr(b.var("x", 8), b.constant(0xF0, 8)));
    EXPECT_EQ(kb.ones & 0xF0u, 0xF0u);
}

TEST_F(SimplifyTest, KnownBitsShl)
{
    // x << 4: low nibble known zero.
    KnownBits kb = knownBits(b.shl(b.var("x", 8), b.constant(4, 8)));
    EXPECT_EQ(kb.zeros & 0x0Fu, 0x0Fu);
}

TEST_F(SimplifyTest, KnownBitsZExt)
{
    KnownBits kb = knownBits(b.zext(b.var("x", 8), 32));
    EXPECT_EQ(kb.zeros & 0xFFFFFF00u, 0xFFFFFF00u);
}

TEST_F(SimplifyTest, KnownBitsAddLowBits)
{
    // (x & ~1) + 1 has bit 0 known one.
    ExprRef e = b.add(b.bAnd(b.var("x", 8), b.constant(0xFE, 8)),
                      b.constant(1, 8));
    KnownBits kb = knownBits(e);
    EXPECT_EQ(kb.ones & 1u, 1u);
}

TEST_F(SimplifyTest, KnownBitsContradictionMakesEqFalse)
{
    // (x | 1) == (y & ~1) is statically false: bit 0 differs.
    ExprRef lhs = b.bOr(b.var("x", 8), b.constant(1, 8));
    ExprRef rhs = b.bAnd(b.var("y", 8), b.constant(0xFE, 8));
    KnownBits kb = knownBits(b.eq(lhs, rhs));
    EXPECT_TRUE(kb.allKnown(1));
    EXPECT_EQ(kb.value(), 0u);
}

TEST_F(SimplifyTest, CollapsesFullyKnownExpression)
{
    // (x & 0) | 0x42 simplifies to the constant 0x42.
    ExprRef e = b.bOr(b.bAnd(b.var("x", 8), b.constant(0, 8)),
                      b.constant(0x42, 8));
    EXPECT_EQ(simp.simplify(e), b.constant(0x42, 8));
}

TEST_F(SimplifyTest, DropsMaskCoveringDemandedBits)
{
    // extract low byte of (x & 0xFF): the mask is redundant.
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bAnd(x, b.constant(0xFF, 32)), 0, 8);
    EXPECT_EQ(simp.simplify(e), b.extract(x, 0, 8));
}

TEST_F(SimplifyTest, DropsOrOutsideDemandedBits)
{
    // extract low byte of (x | 0xFF00): the Or touches ignored bits.
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bOr(x, b.constant(0xFF00, 32)), 0, 8);
    EXPECT_EQ(simp.simplify(e), b.extract(x, 0, 8));
}

TEST_F(SimplifyTest, FlagExtractionPattern)
{
    // The DBT computes flags as ((res & 0x80000000) >> 31); testing
    // bit 7 of an 8-bit zext'ed value folds away everything else.
    ExprRef x = b.var("x", 8);
    ExprRef wide = b.zext(x, 32);
    // bit 31 of zext(x,32) is known zero -> whole expression is 0.
    ExprRef flag =
        b.lshr(b.bAnd(wide, b.constant(0x80000000u, 32)),
               b.constant(31, 32));
    EXPECT_EQ(simp.simplify(flag), b.constant(0, 32));
}

TEST_F(SimplifyTest, StatsTrackDrops)
{
    simp.resetStats();
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bOr(x, b.constant(0xFF00, 32)), 0, 8);
    simp.simplify(e);
    EXPECT_GE(simp.stats().opsDropped, 1u);
}

/**
 * Soundness property: simplify(e) must evaluate identically to e on
 * random assignments, for randomly generated bitfield-flavored
 * expressions (masks, shifts, extracts, ors).
 */
TEST_F(SimplifyTest, PropertySimplifyPreservesSemantics)
{
    Rng rng(77);
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);

    for (int iter = 0; iter < 400; ++iter) {
        // Random expression built from bitfieldy ops.
        ExprRef e = rng.chance(0.5) ? x : y;
        int depth = 1 + static_cast<int>(rng.below(5));
        for (int d = 0; d < depth; ++d) {
            switch (rng.below(8)) {
              case 0:
                e = b.bAnd(e, b.constant(rng.next(), 32));
                break;
              case 1:
                e = b.bOr(e, b.constant(rng.next(), 32));
                break;
              case 2:
                e = b.bXor(e, b.constant(rng.next(), 32));
                break;
              case 3:
                e = b.shl(e, b.constant(rng.below(32), 32));
                break;
              case 4:
                e = b.lshr(e, b.constant(rng.below(32), 32));
                break;
              case 5:
                e = b.add(e, rng.chance(0.5) ? y : x);
                break;
              case 6: {
                unsigned off = rng.below(24);
                e = b.zext(b.extract(e, off, 8), 32);
                break;
              }
              default:
                e = b.bNot(e);
                break;
            }
        }
        ExprRef s = simp.simplify(e);
        for (int trial = 0; trial < 8; ++trial) {
            Assignment a;
            a.set(x, rng.next());
            a.set(y, rng.next());
            ASSERT_EQ(evaluate(e, a), evaluate(s, a))
                << "expr: " << e->toString()
                << "\nsimplified: " << s->toString();
        }
    }
}

/**
 * Soundness property for the known-bits analysis itself: every bit
 * the lattice claims to know must match the evaluator on random
 * assignments, across randomly composed expressions.
 */
TEST_F(SimplifyTest, PropertyKnownBitsAreSound)
{
    Rng rng(4242);
    ExprRef x = b.var("kx", 32);
    ExprRef y = b.var("ky", 32);

    for (int iter = 0; iter < 300; ++iter) {
        ExprRef e = rng.chance(0.5) ? x : y;
        int depth = 1 + static_cast<int>(rng.below(6));
        for (int d = 0; d < depth; ++d) {
            switch (rng.below(10)) {
              case 0: e = b.bAnd(e, b.constant(rng.next(), 32)); break;
              case 1: e = b.bOr(e, b.constant(rng.next(), 32)); break;
              case 2: e = b.bXor(e, rng.chance(0.5) ? x : y); break;
              case 3: e = b.shl(e, b.constant(rng.below(32), 32)); break;
              case 4: e = b.lshr(e, b.constant(rng.below(32), 32)); break;
              case 5: e = b.ashr(e, b.constant(rng.below(32), 32)); break;
              case 6: e = b.add(e, b.constant(rng.next(), 32)); break;
              case 7:
                e = b.zext(b.extract(e, rng.below(16), 8), 32);
                break;
              case 8:
                e = b.sext(b.extract(e, rng.below(16), 8), 32);
                break;
              default: e = b.bNot(e); break;
            }
        }
        KnownBits kb = knownBits(e);
        ASSERT_EQ(kb.zeros & kb.ones, 0u);
        for (int trial = 0; trial < 6; ++trial) {
            Assignment a;
            a.set(x, rng.next());
            a.set(y, rng.next());
            uint64_t v = evaluate(e, a);
            ASSERT_EQ(v & kb.zeros, 0u) << e->toString();
            ASSERT_EQ(v & kb.ones, kb.ones) << e->toString();
        }
    }
}

/** Random 32-bit expression exercising *every* Expr kind (the earlier
 *  properties stay on bitfieldy shapes; this one is the full grammar,
 *  including division, comparisons, ite, concat and sign handling). */
ExprRef
randomAllKinds(ExprBuilder &b, Rng &rng, const std::vector<ExprRef> &vars,
               unsigned depth)
{
    if (depth == 0 || rng.chance(0.25)) {
        if (rng.chance(0.3))
            return b.constant(rng.next(), 32);
        return vars[rng.below(vars.size())];
    }
    ExprRef l = randomAllKinds(b, rng, vars, depth - 1);
    ExprRef r = randomAllKinds(b, rng, vars, depth - 1);
    switch (rng.below(24)) {
      case 0: return b.add(l, r);
      case 1: return b.sub(l, r);
      case 2: return b.mul(l, r);
      case 3: return b.udiv(l, r);
      case 4: return b.sdiv(l, r);
      case 5: return b.urem(l, r);
      case 6: return b.srem(l, r);
      case 7: return b.bAnd(l, r);
      case 8: return b.bOr(l, r);
      case 9: return b.bXor(l, r);
      case 10: return b.bNot(l);
      case 11: return b.neg(l);
      case 12: return b.shl(l, b.constant(rng.below(40), 32));
      case 13: return b.lshr(l, b.constant(rng.below(40), 32));
      case 14: return b.ashr(l, b.constant(rng.below(40), 32));
      case 15:
        return b.concat(b.extract(l, 16, 16), b.extract(r, 0, 16));
      case 16: return b.zext(b.extract(l, rng.below(16), 8), 32);
      case 17: return b.sext(b.extract(l, rng.below(16), 8), 32);
      case 18: return b.zext(b.eq(l, r), 32);
      case 19: return b.zext(b.ult(l, r), 32);
      case 20: return b.zext(b.ule(l, r), 32);
      case 21: return b.zext(b.slt(l, r), 32);
      case 22: return b.zext(b.sle(l, r), 32);
      default: return b.ite(b.ult(l, r), l, r);
    }
}

/** Full-grammar equivalence: simplify() must preserve the value of
 *  random trees over every Expr kind on random models. */
TEST_F(SimplifyTest, PropertyAllKindsSimplifyPreservesSemantics)
{
    Rng rng(20260808);
    std::vector<ExprRef> vars = {b.var("p", 32), b.var("q", 32),
                                 b.var("r", 32)};
    for (int iter = 0; iter < 500; ++iter) {
        ExprRef e = randomAllKinds(b, rng, vars, 4);
        ExprRef s = simp.simplify(e);
        for (int trial = 0; trial < 8; ++trial) {
            Assignment a;
            for (ExprRef v : vars)
                a.set(v, rng.next());
            ASSERT_EQ(evaluate(e, a), evaluate(s, a))
                << "expr: " << e->toString()
                << "\nsimplified: " << s->toString();
        }
    }
}

/** simplifyDemanded may change bits outside the demanded mask but must
 *  agree on every demanded bit, for random trees and random masks. */
TEST_F(SimplifyTest, PropertyDemandedBitsAgreeOnDemandedBits)
{
    Rng rng(5150);
    std::vector<ExprRef> vars = {b.var("dp", 32), b.var("dq", 32),
                                 b.var("dr", 32)};
    for (int iter = 0; iter < 500; ++iter) {
        ExprRef e = randomAllKinds(b, rng, vars, 4);
        uint64_t demanded = rng.next() & 0xFFFFFFFFu;
        if (demanded == 0)
            demanded = 1;
        ExprRef s = simp.simplifyDemandedBits(e, demanded);
        for (int trial = 0; trial < 8; ++trial) {
            Assignment a;
            for (ExprRef v : vars)
                a.set(v, rng.next());
            ASSERT_EQ(evaluate(e, a) & demanded, evaluate(s, a) & demanded)
                << "expr: " << e->toString() << "\ndemanded: " << std::hex
                << demanded << "\nsimplified: " << s->toString();
        }
    }
}

TEST_F(SimplifyTest, SimplifyIsIdempotent)
{
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bOr(b.bAnd(x, b.constant(0xFFFF, 32)),
                                b.constant(0xAA0000, 32)),
                          0, 16);
    ExprRef s1 = simp.simplify(e);
    ExprRef s2 = simp.simplify(s1);
    EXPECT_EQ(s1, s2);
}

TEST_F(SimplifyTest, ReducesNodeCountOnFlagPatterns)
{
    // A chain of flag computations (mask, shift, or) typical of DBT
    // output; the simplifier should shrink it.
    ExprRef x = b.var("x", 32);
    ExprRef flags = b.constant(0, 32);
    for (int i = 0; i < 6; ++i) {
        ExprRef bit = b.lshr(b.bAnd(x, b.constant(1u << i, 32)),
                             b.constant(i, 32));
        flags = b.bOr(b.shl(bit, b.constant(i, 32)), flags);
    }
    // Consumer only looks at bit 0.
    ExprRef test = b.bAnd(flags, b.constant(1, 32));
    ExprRef s = simp.simplify(test);
    EXPECT_LE(s->nodeCount(), test->nodeCount());
}

} // namespace
} // namespace s2e::expr
