/** @file Tests for the bitfield-theory simplifier (§5 of the paper). */

#include <gtest/gtest.h>

#include "expr/builder.hh"
#include "expr/eval.hh"
#include "expr/simplify.hh"
#include "support/rng.hh"

namespace s2e::expr {
namespace {

class SimplifyTest : public ::testing::Test
{
  protected:
    ExprBuilder b;
    Simplifier simp{b};
};

TEST_F(SimplifyTest, KnownBitsConstant)
{
    KnownBits kb = knownBits(b.constant(0xA5, 8));
    EXPECT_TRUE(kb.allKnown(8));
    EXPECT_EQ(kb.value(), 0xA5u);
}

TEST_F(SimplifyTest, KnownBitsVariableUnknown)
{
    KnownBits kb = knownBits(b.var("x", 8));
    EXPECT_EQ(kb.zeros | kb.ones, 0u);
}

TEST_F(SimplifyTest, KnownBitsAndMask)
{
    // x & 0x0F: high nibble known zero.
    KnownBits kb = knownBits(b.bAnd(b.var("x", 8), b.constant(0x0F, 8)));
    EXPECT_EQ(kb.zeros & 0xF0u, 0xF0u);
}

TEST_F(SimplifyTest, KnownBitsOrSetsOnes)
{
    KnownBits kb = knownBits(b.bOr(b.var("x", 8), b.constant(0xF0, 8)));
    EXPECT_EQ(kb.ones & 0xF0u, 0xF0u);
}

TEST_F(SimplifyTest, KnownBitsShl)
{
    // x << 4: low nibble known zero.
    KnownBits kb = knownBits(b.shl(b.var("x", 8), b.constant(4, 8)));
    EXPECT_EQ(kb.zeros & 0x0Fu, 0x0Fu);
}

TEST_F(SimplifyTest, KnownBitsZExt)
{
    KnownBits kb = knownBits(b.zext(b.var("x", 8), 32));
    EXPECT_EQ(kb.zeros & 0xFFFFFF00u, 0xFFFFFF00u);
}

TEST_F(SimplifyTest, KnownBitsAddLowBits)
{
    // (x & ~1) + 1 has bit 0 known one.
    ExprRef e = b.add(b.bAnd(b.var("x", 8), b.constant(0xFE, 8)),
                      b.constant(1, 8));
    KnownBits kb = knownBits(e);
    EXPECT_EQ(kb.ones & 1u, 1u);
}

TEST_F(SimplifyTest, KnownBitsContradictionMakesEqFalse)
{
    // (x | 1) == (y & ~1) is statically false: bit 0 differs.
    ExprRef lhs = b.bOr(b.var("x", 8), b.constant(1, 8));
    ExprRef rhs = b.bAnd(b.var("y", 8), b.constant(0xFE, 8));
    KnownBits kb = knownBits(b.eq(lhs, rhs));
    EXPECT_TRUE(kb.allKnown(1));
    EXPECT_EQ(kb.value(), 0u);
}

TEST_F(SimplifyTest, CollapsesFullyKnownExpression)
{
    // (x & 0) | 0x42 simplifies to the constant 0x42.
    ExprRef e = b.bOr(b.bAnd(b.var("x", 8), b.constant(0, 8)),
                      b.constant(0x42, 8));
    EXPECT_EQ(simp.simplify(e), b.constant(0x42, 8));
}

TEST_F(SimplifyTest, DropsMaskCoveringDemandedBits)
{
    // extract low byte of (x & 0xFF): the mask is redundant.
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bAnd(x, b.constant(0xFF, 32)), 0, 8);
    EXPECT_EQ(simp.simplify(e), b.extract(x, 0, 8));
}

TEST_F(SimplifyTest, DropsOrOutsideDemandedBits)
{
    // extract low byte of (x | 0xFF00): the Or touches ignored bits.
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bOr(x, b.constant(0xFF00, 32)), 0, 8);
    EXPECT_EQ(simp.simplify(e), b.extract(x, 0, 8));
}

TEST_F(SimplifyTest, FlagExtractionPattern)
{
    // The DBT computes flags as ((res & 0x80000000) >> 31); testing
    // bit 7 of an 8-bit zext'ed value folds away everything else.
    ExprRef x = b.var("x", 8);
    ExprRef wide = b.zext(x, 32);
    // bit 31 of zext(x,32) is known zero -> whole expression is 0.
    ExprRef flag =
        b.lshr(b.bAnd(wide, b.constant(0x80000000u, 32)),
               b.constant(31, 32));
    EXPECT_EQ(simp.simplify(flag), b.constant(0, 32));
}

TEST_F(SimplifyTest, StatsTrackDrops)
{
    simp.resetStats();
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bOr(x, b.constant(0xFF00, 32)), 0, 8);
    simp.simplify(e);
    EXPECT_GE(simp.stats().opsDropped, 1u);
}

/**
 * Soundness property: simplify(e) must evaluate identically to e on
 * random assignments, for randomly generated bitfield-flavored
 * expressions (masks, shifts, extracts, ors).
 */
TEST_F(SimplifyTest, PropertySimplifyPreservesSemantics)
{
    Rng rng(77);
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);

    for (int iter = 0; iter < 400; ++iter) {
        // Random expression built from bitfieldy ops.
        ExprRef e = rng.chance(0.5) ? x : y;
        int depth = 1 + static_cast<int>(rng.below(5));
        for (int d = 0; d < depth; ++d) {
            switch (rng.below(8)) {
              case 0:
                e = b.bAnd(e, b.constant(rng.next(), 32));
                break;
              case 1:
                e = b.bOr(e, b.constant(rng.next(), 32));
                break;
              case 2:
                e = b.bXor(e, b.constant(rng.next(), 32));
                break;
              case 3:
                e = b.shl(e, b.constant(rng.below(32), 32));
                break;
              case 4:
                e = b.lshr(e, b.constant(rng.below(32), 32));
                break;
              case 5:
                e = b.add(e, rng.chance(0.5) ? y : x);
                break;
              case 6: {
                unsigned off = rng.below(24);
                e = b.zext(b.extract(e, off, 8), 32);
                break;
              }
              default:
                e = b.bNot(e);
                break;
            }
        }
        ExprRef s = simp.simplify(e);
        for (int trial = 0; trial < 8; ++trial) {
            Assignment a;
            a.set(x, rng.next());
            a.set(y, rng.next());
            ASSERT_EQ(evaluate(e, a), evaluate(s, a))
                << "expr: " << e->toString()
                << "\nsimplified: " << s->toString();
        }
    }
}

/**
 * Soundness property for the known-bits analysis itself: every bit
 * the lattice claims to know must match the evaluator on random
 * assignments, across randomly composed expressions.
 */
TEST_F(SimplifyTest, PropertyKnownBitsAreSound)
{
    Rng rng(4242);
    ExprRef x = b.var("kx", 32);
    ExprRef y = b.var("ky", 32);

    for (int iter = 0; iter < 300; ++iter) {
        ExprRef e = rng.chance(0.5) ? x : y;
        int depth = 1 + static_cast<int>(rng.below(6));
        for (int d = 0; d < depth; ++d) {
            switch (rng.below(10)) {
              case 0: e = b.bAnd(e, b.constant(rng.next(), 32)); break;
              case 1: e = b.bOr(e, b.constant(rng.next(), 32)); break;
              case 2: e = b.bXor(e, rng.chance(0.5) ? x : y); break;
              case 3: e = b.shl(e, b.constant(rng.below(32), 32)); break;
              case 4: e = b.lshr(e, b.constant(rng.below(32), 32)); break;
              case 5: e = b.ashr(e, b.constant(rng.below(32), 32)); break;
              case 6: e = b.add(e, b.constant(rng.next(), 32)); break;
              case 7:
                e = b.zext(b.extract(e, rng.below(16), 8), 32);
                break;
              case 8:
                e = b.sext(b.extract(e, rng.below(16), 8), 32);
                break;
              default: e = b.bNot(e); break;
            }
        }
        KnownBits kb = knownBits(e);
        ASSERT_EQ(kb.zeros & kb.ones, 0u);
        for (int trial = 0; trial < 6; ++trial) {
            Assignment a;
            a.set(x, rng.next());
            a.set(y, rng.next());
            uint64_t v = evaluate(e, a);
            ASSERT_EQ(v & kb.zeros, 0u) << e->toString();
            ASSERT_EQ(v & kb.ones, kb.ones) << e->toString();
        }
    }
}

TEST_F(SimplifyTest, SimplifyIsIdempotent)
{
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.bOr(b.bAnd(x, b.constant(0xFFFF, 32)),
                                b.constant(0xAA0000, 32)),
                          0, 16);
    ExprRef s1 = simp.simplify(e);
    ExprRef s2 = simp.simplify(s1);
    EXPECT_EQ(s1, s2);
}

TEST_F(SimplifyTest, ReducesNodeCountOnFlagPatterns)
{
    // A chain of flag computations (mask, shift, or) typical of DBT
    // output; the simplifier should shrink it.
    ExprRef x = b.var("x", 32);
    ExprRef flags = b.constant(0, 32);
    for (int i = 0; i < 6; ++i) {
        ExprRef bit = b.lshr(b.bAnd(x, b.constant(1u << i, 32)),
                             b.constant(i, 32));
        flags = b.bOr(b.shl(bit, b.constant(i, 32)), flags);
    }
    // Consumer only looks at bit 0.
    ExprRef test = b.bAnd(flags, b.constant(1, 32));
    ExprRef s = simp.simplify(test);
    EXPECT_LE(s->nodeCount(), test->nodeCount());
}

} // namespace
} // namespace s2e::expr
