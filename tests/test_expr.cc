/** @file Unit and property tests for the expression library. */

#include <gtest/gtest.h>

#include "expr/builder.hh"
#include "expr/eval.hh"
#include "support/bitops.hh"
#include "support/rng.hh"

namespace s2e::expr {
namespace {

class ExprTest : public ::testing::Test
{
  protected:
    ExprBuilder b;
};

TEST_F(ExprTest, ConstantsAreInterned)
{
    EXPECT_EQ(b.constant(5, 32), b.constant(5, 32));
    EXPECT_NE(b.constant(5, 32), b.constant(5, 16));
    EXPECT_NE(b.constant(5, 32), b.constant(6, 32));
}

TEST_F(ExprTest, ConstantsTruncate)
{
    EXPECT_EQ(b.constant(0x1FF, 8)->value(), 0xFFu);
}

TEST_F(ExprTest, StructuralSharing)
{
    ExprRef x = b.var("x", 32);
    ExprRef e1 = b.add(x, b.constant(1, 32));
    ExprRef e2 = b.add(x, b.constant(1, 32));
    EXPECT_EQ(e1, e2);
}

TEST_F(ExprTest, NamedVarIsStable)
{
    EXPECT_EQ(b.var("x", 32), b.var("x", 32));
    EXPECT_NE(b.var("x", 32), b.var("y", 32));
}

TEST_F(ExprTest, FreshVarsDiffer)
{
    EXPECT_NE(b.freshVar("v", 8), b.freshVar("v", 8));
}

TEST_F(ExprTest, ConstantFolding)
{
    EXPECT_EQ(b.add(b.constant(3, 8), b.constant(4, 8)), b.constant(7, 8));
    EXPECT_EQ(b.mul(b.constant(16, 8), b.constant(16, 8)),
              b.constant(0, 8)); // wraps
    EXPECT_EQ(b.sub(b.constant(0, 8), b.constant(1, 8)),
              b.constant(0xFF, 8));
}

TEST_F(ExprTest, DivisionByZeroSemantics)
{
    // udiv by 0 yields all-ones; urem by 0 yields the dividend.
    EXPECT_EQ(b.udiv(b.constant(7, 8), b.constant(0, 8)),
              b.constant(0xFF, 8));
    EXPECT_EQ(b.urem(b.constant(7, 8), b.constant(0, 8)), b.constant(7, 8));
}

TEST_F(ExprTest, SignedDivisionEdgeCases)
{
    // INT_MIN / -1 == INT_MIN (wraps).
    EXPECT_EQ(b.sdiv(b.constant(0x80, 8), b.constant(0xFF, 8)),
              b.constant(0x80, 8));
    EXPECT_EQ(b.srem(b.constant(0x80, 8), b.constant(0xFF, 8)),
              b.constant(0, 8));
    EXPECT_EQ(b.sdiv(b.constant(0xF9, 8), b.constant(2, 8)),
              b.constant(0xFD, 8)); // -7 / 2 == -3
}

TEST_F(ExprTest, Identities)
{
    ExprRef x = b.var("x", 32);
    ExprRef zero = b.constant(0, 32);
    ExprRef ones = b.constant(~0u, 32);
    EXPECT_EQ(b.add(x, zero), x);
    EXPECT_EQ(b.sub(x, zero), x);
    EXPECT_EQ(b.sub(x, x), zero);
    EXPECT_EQ(b.mul(x, b.constant(1, 32)), x);
    EXPECT_EQ(b.mul(x, zero), zero);
    EXPECT_EQ(b.bAnd(x, zero), zero);
    EXPECT_EQ(b.bAnd(x, ones), x);
    EXPECT_EQ(b.bOr(x, zero), x);
    EXPECT_EQ(b.bOr(x, ones), ones);
    EXPECT_EQ(b.bXor(x, x), zero);
    EXPECT_EQ(b.bXor(x, zero), x);
    EXPECT_EQ(b.shl(x, zero), x);
    EXPECT_EQ(b.bNot(b.bNot(x)), x);
    EXPECT_EQ(b.neg(b.neg(x)), x);
}

TEST_F(ExprTest, CommutativeCanonicalization)
{
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);
    EXPECT_EQ(b.add(x, y), b.add(y, x));
    EXPECT_EQ(b.mul(x, y), b.mul(y, x));
    EXPECT_EQ(b.bAnd(x, y), b.bAnd(y, x));
    EXPECT_EQ(b.eq(x, y), b.eq(y, x));
}

TEST_F(ExprTest, CompareFolding)
{
    ExprRef x = b.var("x", 32);
    EXPECT_TRUE(b.eq(x, x)->isTrue());
    EXPECT_TRUE(b.ule(x, x)->isTrue());
    EXPECT_TRUE(b.ult(x, x)->isFalse());
    EXPECT_TRUE(b.ult(b.constant(3, 8), b.constant(5, 8))->isTrue());
    EXPECT_TRUE(b.slt(b.constant(0xFF, 8), b.constant(0, 8))->isTrue());
}

TEST_F(ExprTest, BoolEqualitySimplifies)
{
    ExprRef c = b.eq(b.var("x", 32), b.constant(1, 32));
    EXPECT_EQ(b.eq(c, b.trueExpr()), c);
    EXPECT_EQ(b.eq(c, b.falseExpr()), b.lnot(c));
}

TEST_F(ExprTest, ExtractOfConcat)
{
    ExprRef hi = b.var("hi", 8);
    ExprRef lo = b.var("lo", 8);
    ExprRef cc = b.concat(hi, lo);
    EXPECT_EQ(cc->width(), 16u);
    EXPECT_EQ(b.extract(cc, 0, 8), lo);
    EXPECT_EQ(b.extract(cc, 8, 8), hi);
}

TEST_F(ExprTest, ExtractCompose)
{
    ExprRef x = b.var("x", 32);
    ExprRef e = b.extract(b.extract(x, 8, 16), 4, 8);
    EXPECT_EQ(e, b.extract(x, 12, 8));
}

TEST_F(ExprTest, ExtractOfZExtAboveOriginal)
{
    ExprRef x = b.var("x", 8);
    ExprRef e = b.extract(b.zext(x, 32), 16, 8);
    EXPECT_EQ(e, b.constant(0, 8));
    EXPECT_EQ(b.extract(b.zext(x, 32), 0, 8), x);
}

TEST_F(ExprTest, ZExtSExtChains)
{
    ExprRef x = b.var("x", 8);
    EXPECT_EQ(b.zext(b.zext(x, 16), 32), b.zext(x, 32));
    EXPECT_EQ(b.sext(b.sext(x, 16), 32), b.sext(x, 32));
    EXPECT_EQ(b.zext(x, 8), x);
}

TEST_F(ExprTest, ConcatZeroHighIsZExt)
{
    ExprRef x = b.var("x", 8);
    EXPECT_EQ(b.concat(b.constant(0, 8), x), b.zext(x, 16));
}

TEST_F(ExprTest, IteSimplifications)
{
    ExprRef c = b.eq(b.var("x", 32), b.constant(0, 32));
    ExprRef a = b.var("a", 8);
    EXPECT_EQ(b.ite(b.trueExpr(), a, b.constant(0, 8)), a);
    EXPECT_EQ(b.ite(b.falseExpr(), a, b.constant(0, 8)), b.constant(0, 8));
    EXPECT_EQ(b.ite(c, a, a), a);
    EXPECT_EQ(b.ite(c, b.trueExpr(), b.falseExpr()), c);
    EXPECT_EQ(b.ite(c, b.falseExpr(), b.trueExpr()), b.lnot(c));
}

TEST_F(ExprTest, EvaluateLeaves)
{
    ExprRef x = b.var("x", 32);
    Assignment a;
    a.set(x, 41);
    EXPECT_EQ(evaluate(x, a), 41u);
    EXPECT_EQ(evaluate(b.constant(7, 16), a), 7u);
}

TEST_F(ExprTest, EvaluateCompound)
{
    ExprRef x = b.var("x", 32);
    ExprRef y = b.var("y", 32);
    Assignment a;
    a.set(x, 10);
    a.set(y, 3);
    EXPECT_EQ(evaluate(b.add(x, y), a), 13u);
    EXPECT_EQ(evaluate(b.sub(x, y), a), 7u);
    EXPECT_EQ(evaluate(b.mul(x, y), a), 30u);
    EXPECT_EQ(evaluate(b.udiv(x, y), a), 3u);
    EXPECT_EQ(evaluate(b.urem(x, y), a), 1u);
    EXPECT_TRUE(evaluateBool(b.ult(y, x), a));
    EXPECT_FALSE(evaluateBool(b.eq(x, y), a));
}

TEST_F(ExprTest, EvaluateSignedOps)
{
    ExprRef x = b.var("x", 8);
    Assignment a;
    a.set(x, 0xF9); // -7
    EXPECT_EQ(evaluate(b.sdiv(x, b.constant(2, 8)), a), 0xFDu); // -3
    EXPECT_EQ(evaluate(b.ashr(x, b.constant(1, 8)), a), 0xFCu); // -4
    EXPECT_TRUE(evaluateBool(b.slt(x, b.constant(0, 8)), a));
    EXPECT_FALSE(evaluateBool(b.ult(x, b.constant(0x80, 8)), a));
}

TEST_F(ExprTest, EvaluateWidthChangers)
{
    ExprRef x = b.var("x", 8);
    Assignment a;
    a.set(x, 0x9A);
    EXPECT_EQ(evaluate(b.zext(x, 16), a), 0x9Au);
    EXPECT_EQ(evaluate(b.sext(x, 16), a), 0xFF9Au);
    EXPECT_EQ(evaluate(b.extract(x, 4, 4), a), 0x9u);
    EXPECT_EQ(evaluate(b.concat(x, x), a), 0x9A9Au);
}

TEST_F(ExprTest, NodeCountSharesSubtrees)
{
    ExprRef x = b.var("x", 32);
    ExprRef sum = b.add(x, x);
    EXPECT_EQ(sum->nodeCount(), 2u);
}

TEST_F(ExprTest, ToStringRoundTripMentions)
{
    ExprRef x = b.var("x", 32);
    ExprRef e = b.add(x, b.constant(4, 32));
    std::string s = e->toString();
    EXPECT_NE(s.find("add"), std::string::npos);
    EXPECT_NE(s.find("x"), std::string::npos);
}

/**
 * Property test: builder folding must agree with the evaluator on
 * random expressions. Builds random trees and checks that evaluating
 * the built (possibly folded) tree matches direct computation.
 */
TEST_F(ExprTest, PropertyFoldingMatchesEval)
{
    Rng rng(123);
    ExprRef x = b.var("x", 16);
    ExprRef y = b.var("y", 16);

    for (int iter = 0; iter < 500; ++iter) {
        uint64_t xv = rng.next() & 0xFFFF;
        uint64_t yv = rng.next() & 0xFFFF;
        Assignment a;
        a.set(x, xv);
        a.set(y, yv);

        // Build a random 2-level expression.
        auto operand = [&](int pick) -> ExprRef {
            switch (pick % 3) {
              case 0: return x;
              case 1: return y;
              default: return b.constant(rng.next(), 16);
            }
        };
        Kind kinds[] = {Kind::Add, Kind::Sub, Kind::Mul, Kind::UDiv,
                        Kind::URem, Kind::And, Kind::Or, Kind::Xor,
                        Kind::Shl, Kind::LShr, Kind::AShr, Kind::SDiv,
                        Kind::SRem};
        Kind k = kinds[rng.below(13)];
        ExprRef lhs = operand(static_cast<int>(rng.next()));
        ExprRef rhs = operand(static_cast<int>(rng.next()));

        ExprRef built;
        switch (k) {
          case Kind::Add: built = b.add(lhs, rhs); break;
          case Kind::Sub: built = b.sub(lhs, rhs); break;
          case Kind::Mul: built = b.mul(lhs, rhs); break;
          case Kind::UDiv: built = b.udiv(lhs, rhs); break;
          case Kind::URem: built = b.urem(lhs, rhs); break;
          case Kind::And: built = b.bAnd(lhs, rhs); break;
          case Kind::Or: built = b.bOr(lhs, rhs); break;
          case Kind::Xor: built = b.bXor(lhs, rhs); break;
          case Kind::Shl: built = b.shl(lhs, rhs); break;
          case Kind::LShr: built = b.lshr(lhs, rhs); break;
          case Kind::AShr: built = b.ashr(lhs, rhs); break;
          case Kind::SDiv: built = b.sdiv(lhs, rhs); break;
          default: built = b.srem(lhs, rhs); break;
        }

        uint64_t expect = ExprBuilder::foldBinary(k, evaluate(lhs, a),
                                                  evaluate(rhs, a), 16);
        EXPECT_EQ(evaluate(built, a), expect)
            << kindName(k) << " lhs=" << evaluate(lhs, a)
            << " rhs=" << evaluate(rhs, a);
    }
}

} // namespace
} // namespace s2e::expr
