/** @file Unit tests for the support library. */

#include <gtest/gtest.h>

#include "support/bitops.hh"
#include "support/rng.hh"
#include "support/stats.hh"

namespace s2e {
namespace {

TEST(BitOps, LowMask)
{
    EXPECT_EQ(lowMask(0), 0u);
    EXPECT_EQ(lowMask(1), 1u);
    EXPECT_EQ(lowMask(8), 0xFFu);
    EXPECT_EQ(lowMask(32), 0xFFFFFFFFu);
    EXPECT_EQ(lowMask(63), 0x7FFFFFFFFFFFFFFFull);
    EXPECT_EQ(lowMask(64), ~0ull);
}

TEST(BitOps, Truncate)
{
    EXPECT_EQ(truncate(0x1FF, 8), 0xFFu);
    EXPECT_EQ(truncate(0x100, 8), 0u);
    EXPECT_EQ(truncate(~0ull, 64), ~0ull);
}

TEST(BitOps, SignExtend)
{
    EXPECT_EQ(signExtend(0xFF, 8), -1);
    EXPECT_EQ(signExtend(0x7F, 8), 127);
    EXPECT_EQ(signExtend(0x80, 8), -128);
    EXPECT_EQ(signExtend(0x8000, 16), -32768);
    EXPECT_EQ(signExtend(1, 1), -1);
    EXPECT_EQ(signExtend(0, 1), 0);
}

TEST(BitOps, SignBit)
{
    EXPECT_TRUE(signBit(0x80, 8));
    EXPECT_FALSE(signBit(0x7F, 8));
    EXPECT_TRUE(signBit(1, 1));
}

TEST(BitOps, KnownBitsConstant)
{
    KnownBits kb = KnownBits::constant(0xA5, 8);
    EXPECT_TRUE(kb.allKnown(8));
    EXPECT_EQ(kb.value(), 0xA5u);
    EXPECT_EQ(kb.zeros & kb.ones, 0u);
}

TEST(BitOps, KnownBitsUnknown)
{
    KnownBits kb = KnownBits::unknown();
    EXPECT_FALSE(kb.allKnown(1));
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    EXPECT_NE(a.next(), b.next());
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; ++i) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Stats, CountersAccumulate)
{
    Stats s;
    s.add("x");
    s.add("x", 4);
    EXPECT_EQ(s.get("x"), 5u);
    EXPECT_EQ(s.get("missing"), 0u);
}

TEST(Stats, HighWatermark)
{
    Stats s;
    s.high("mem", 10);
    s.high("mem", 5);
    s.high("mem", 20);
    EXPECT_EQ(s.get("mem"), 20u);
}

TEST(Stats, TimersAccumulate)
{
    Stats s;
    s.addSeconds("t", 0.5);
    s.addSeconds("t", 0.25);
    EXPECT_DOUBLE_EQ(s.seconds("t"), 0.75);
}

TEST(Stats, ScopedTimerRecordsSomething)
{
    Stats s;
    {
        ScopedTimer t(s, "scoped");
    }
    EXPECT_GE(s.seconds("scoped"), 0.0);
}

TEST(Stats, SetSecondsOverwrites)
{
    Stats s;
    s.addSeconds("t", 0.5);
    s.setSeconds("t", 0.125);
    EXPECT_DOUBLE_EQ(s.seconds("t"), 0.125);
}

TEST(Stats, ToStringListsCountersThenTimersSorted)
{
    Stats s;
    s.add("b.counter", 2);
    s.add("a.counter", 1);
    s.addSeconds("z.timer", 1.0);
    std::string out = s.toString();
    size_t a = out.find("a.counter = 1");
    size_t b = out.find("b.counter = 2");
    size_t z = out.find("z.timer = 1.000000 s");
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    ASSERT_NE(z, std::string::npos);
    EXPECT_LT(a, b); // counters are map-ordered
    EXPECT_LT(b, z); // timers come after counters
}

TEST(Stats, CounterSlotIsStableAcrossInsertions)
{
    Stats s;
    uint64_t &slot = s.counterSlot("hot.counter");
    // Insert many more names: the reference must stay valid (std::map
    // nodes do not move).
    for (int i = 0; i < 100; ++i)
        s.add("filler." + std::to_string(i));
    slot += 7;
    slot++;
    EXPECT_EQ(s.get("hot.counter"), 8u);
    EXPECT_EQ(&slot, &s.counterSlot("hot.counter"));
}

TEST(Stats, TimerSlotAndScopedTimerHotOverload)
{
    Stats s;
    double &slot = s.timerSlot("hot.timer");
    {
        ScopedTimer t(slot);
    }
    {
        ScopedTimer t(slot); // accumulates, does not overwrite
    }
    EXPECT_GE(s.seconds("hot.timer"), 0.0);
    slot = 2.5;
    EXPECT_DOUBLE_EQ(s.seconds("hot.timer"), 2.5);
}

TEST(Stats, RaiseToIsAHighWatermark)
{
    Stats s;
    uint64_t &slot = s.counterSlot("peak");
    Stats::raiseTo(slot, 10);
    Stats::raiseTo(slot, 5);
    Stats::raiseTo(slot, 20);
    EXPECT_EQ(s.get("peak"), 20u);
}

TEST(Stats, SiteCounterCacheBuildsCompositeNamesOnce)
{
    Stats s;
    SiteCounterCache cache(s, "engine.concretizations");
    static const char *kDma = "dma";
    static const char *kBranch = "branch";
    cache.slot(kDma)++;
    cache.slot(kBranch) += 2;
    cache.slot(kDma)++;
    EXPECT_EQ(s.get("engine.concretizations.dma"), 2u);
    EXPECT_EQ(s.get("engine.concretizations.branch"), 2u);
    // Same literal -> same slot.
    EXPECT_EQ(&cache.slot(kDma), &cache.slot(kDma));
}

} // namespace
} // namespace s2e
