/** @file Unit tests for the cache/TLB/paging performance models. */

#include <gtest/gtest.h>

#include "perf/cache.hh"

namespace s2e::perf {
namespace {

TEST(Cache, ColdMissThenHit)
{
    Cache c({"t", 1024, 64, 2});
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x100));
    EXPECT_TRUE(c.access(0x13F)); // same 64-byte line
    EXPECT_FALSE(c.access(0x140)); // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, LruEvictionWithinSet)
{
    // 2-way, 64B lines, 1024B total -> 8 sets. Addresses that share
    // set 0: stride = numSets * lineSize = 512.
    Cache c({"t", 1024, 64, 2});
    c.access(0x0);
    c.access(0x200);
    EXPECT_TRUE(c.access(0x0));   // still resident
    c.access(0x400);              // evicts LRU = 0x200
    EXPECT_TRUE(c.access(0x0));
    EXPECT_FALSE(c.access(0x200)); // was evicted
}

TEST(Cache, DirectMappedConflicts)
{
    Cache c({"t", 512, 64, 1}); // 8 sets, direct-mapped
    c.access(0x0);
    c.access(0x200); // conflicts with 0x0
    EXPECT_FALSE(c.access(0x0));
    EXPECT_EQ(c.misses(), 3u);
}

TEST(Cache, FullyAssociativeNoConflicts)
{
    Cache c({"t", 512, 64, 8}); // one set, 8 ways
    for (uint32_t i = 0; i < 8; ++i)
        c.access(i * 0x1000);
    for (uint32_t i = 0; i < 8; ++i)
        EXPECT_TRUE(c.access(i * 0x1000));
}

TEST(Cache, ResetClears)
{
    Cache c({"t", 1024, 64, 2});
    c.access(0x100);
    c.reset();
    EXPECT_FALSE(c.access(0x100));
    EXPECT_EQ(c.misses(), 1u);
}

TEST(Tlb, HitsWithinPage)
{
    Tlb tlb(4, 4096);
    EXPECT_FALSE(tlb.access(0x1000));
    EXPECT_TRUE(tlb.access(0x1FFF));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(Tlb, LruEvictionWhenFull)
{
    Tlb tlb(2, 4096);
    tlb.access(0x1000);
    tlb.access(0x2000);
    tlb.access(0x1000); // refresh
    tlb.access(0x3000); // evicts 0x2000
    EXPECT_TRUE(tlb.access(0x1000));
    EXPECT_FALSE(tlb.access(0x2000));
}

TEST(DemandPager, FirstTouchFaults)
{
    DemandPager pager(8, 4096);
    EXPECT_TRUE(pager.access(0x5000));
    EXPECT_FALSE(pager.access(0x5004));
    EXPECT_EQ(pager.faults(), 1u);
}

TEST(DemandPager, ResidentSetEviction)
{
    DemandPager pager(2, 4096);
    pager.access(0x1000);
    pager.access(0x2000);
    pager.access(0x3000); // evicts 0x1000
    EXPECT_TRUE(pager.access(0x1000)); // major fault again
    EXPECT_EQ(pager.faults(), 4u);
}

TEST(Hierarchy, L2CatchesL1Misses)
{
    MemoryHierarchy::Config config;
    config.l1d = {"D1", 512, 64, 1};
    config.l2 = {"L2", 4096, 64, 4};
    MemoryHierarchy h(config);
    h.data(0x0);
    h.data(0x200); // L1 conflict, L2 miss
    h.data(0x0);   // L1 miss (evicted), L2 hit
    EXPECT_EQ(h.l1dMisses(), 3u);
    EXPECT_EQ(h.l2Misses(), 2u);
}

TEST(Hierarchy, SeparateInstructionAndDataCaches)
{
    MemoryHierarchy h;
    h.fetch(0x1000);
    h.data(0x1000);
    // Both miss cold: separate L1s.
    EXPECT_EQ(h.l1iMisses(), 1u);
    EXPECT_EQ(h.l1dMisses(), 1u);
}

TEST(Hierarchy, CopyableForStateForking)
{
    MemoryHierarchy a;
    a.data(0x100);
    MemoryHierarchy b = a; // per-path clone
    b.data(0x200);
    EXPECT_EQ(a.l1dMisses(), 1u);
    EXPECT_EQ(b.l1dMisses(), 2u);
    EXPECT_TRUE(b.totalCacheMisses() > a.totalCacheMisses());
}

TEST(Hierarchy, PaperDefaultConfiguration)
{
    // 64KB I1/D1 (64B lines, assoc 2) + 1MB L2 (64B lines, assoc 4).
    MemoryHierarchy::Config config;
    EXPECT_EQ(config.l1i.size, 64u * 1024);
    EXPECT_EQ(config.l1i.associativity, 2u);
    EXPECT_EQ(config.l2.size, 1024u * 1024);
    EXPECT_EQ(config.l2.associativity, 4u);
    EXPECT_EQ(config.l2.lineSize, 64u);
}

} // namespace
} // namespace s2e::perf
