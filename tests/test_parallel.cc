/**
 * @file
 * Serial-vs-parallel differential suite: the parallel exploration
 * engine must produce exactly the same *set* of paths as the serial
 * loop — only scheduling order may differ. Every workload runs at
 * numWorkers ∈ {1, 2, 4} and the per-path outcomes (terminal status,
 * final registers and flags, a memory digest, console output and the
 * solver-generated test case) are compared keyed by the deterministic
 * path id. Also covers the canonical fork-tree property (a parallel
 * run's sorted `s2e.fork_tree.v1` JSON byte-matches the serial one)
 * and the relaxed-atomic Stats slots under thread contention.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "core/engine.hh"
#include "expr/eval.hh"
#include "guest/drivers.hh"
#include "guest/kernel.hh"
#include "guest/layout.hh"
#include "guest/workloads.hh"
#include "obs/forktree.hh"
#include "support/stats.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"

namespace s2e::core {
namespace {

using guest::DriverKind;

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = guest::kRamSize,
           bool loopback = false)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [loopback](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        auto nic = std::make_unique<vm::DmaNic>();
        nic->setLoopback(loopback);
        devices.add(std::move(nic));
    };
    return m;
}

/**
 * Engine configuration for differential runs: no budgets (a budget
 * kills whichever paths happen to be alive when it trips, which is
 * scheduling-dependent) and no model cache (a cached model makes
 * getValue() answers depend on query history, which differs between
 * schedules).
 */
EngineConfig
differentialConfig(unsigned workers)
{
    EngineConfig config;
    config.numWorkers = workers;
    config.solverOptions.useModelCache = false;
    return config;
}

std::string
consoleOf(const ExecutionState &state)
{
    auto *console = state.devices.get<vm::ConsoleDevice>("console");
    return console ? console->output() : "";
}

std::string
valueRepr(const Value &v)
{
    if (v.isConcrete())
        return strprintf("%x", v.concrete());
    return v.expr()->toString();
}

void
collectVars(ExprRef e, std::set<ExprRef> &visited,
            std::map<std::string, ExprRef> &vars)
{
    if (!visited.insert(e).second)
        return;
    if (e->isVariable()) {
        vars.emplace(e->name(), e);
        return;
    }
    for (unsigned i = 0; i < e->arity(); ++i)
        collectVars(e->kid(i), visited, vars);
}

/** FNV-1a over the full guest memory; symbolic bytes hash the
 *  rendered byte expression (variable names are deterministic). */
uint64_t
memoryDigest(const ExecutionState &state, ExprBuilder &builder)
{
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint8_t byte) {
        h ^= byte;
        h *= 1099511628211ull;
    };
    for (uint32_t addr = 0; addr < state.mem.size(); ++addr) {
        uint8_t byte = 0;
        if (state.mem.readConcreteByte(addr, &byte)) {
            mix(byte);
        } else {
            mix(0xFF); // symbolic marker
            for (char c : state.mem.byteExpr(addr, builder)->toString())
                mix(static_cast<uint8_t>(c));
        }
    }
    return h;
}

/** The solver-generated test case: one concrete value per variable
 *  referenced by the path constraints, sorted by variable name. */
std::string
testCaseOf(const ExecutionState &state, ExprBuilder &builder)
{
    std::map<std::string, ExprRef> vars;
    std::set<ExprRef> visited;
    for (ExprRef c : state.constraints)
        collectVars(c, visited, vars);
    if (vars.empty())
        return "none";

    solver::SolverOptions options;
    options.useModelCache = false;
    solver::Solver solver(builder, options);
    expr::Assignment model;
    auto outcome = solver.getInitialValues(state.constraints, &model);
    if (!outcome.isSat())
        return "unsat";
    std::string out;
    for (const auto &[name, var] : vars)
        out += strprintf("%s=%llx,", name.c_str(),
                         static_cast<unsigned long long>(
                             model.lookup(var->varId())));
    return out;
}

/**
 * Fingerprint every completed path of a finished run, keyed by the
 * schedule-independent path id. Two runs explored the same path set
 * iff the returned maps are equal.
 */
std::map<std::string, std::string>
pathFingerprints(Engine &engine)
{
    std::map<std::string, std::string> out;
    for (const auto &s : engine.allStates()) {
        std::string fp = strprintf("status:%s exit:%u msg:%s\n",
                                   stateStatusName(s->status), s->exitCode,
                                   s->statusMessage.c_str());
        fp += "console:" + consoleOf(*s) + "\n";
        for (unsigned r = 0; r < isa::kNumRegs; ++r)
            fp += strprintf("r%u:%s\n", r,
                            valueRepr(s->cpu.regs[r]).c_str());
        for (unsigned f = 0; f < 4; ++f)
            fp += strprintf("f%u:%s\n", f,
                            valueRepr(s->cpu.flags[f]).c_str());
        fp += strprintf("mem:%llx\n",
                        static_cast<unsigned long long>(
                            memoryDigest(*s, engine.builder())));
        fp += "tc:" + testCaseOf(*s, engine.builder()) + "\n";
        bool fresh = out.emplace(s->pathId(), std::move(fp)).second;
        EXPECT_TRUE(fresh) << "duplicate path id " << s->pathId();
    }
    return out;
}

void
expectSamePathSets(const std::map<std::string, std::string> &serial,
                   const std::map<std::string, std::string> &parallel,
                   unsigned workers)
{
    EXPECT_EQ(serial.size(), parallel.size())
        << "path count diverged with " << workers << " workers";
    for (const auto &[path, fp] : serial) {
        auto it = parallel.find(path);
        if (it == parallel.end()) {
            ADD_FAILURE() << "path " << path << " missing with "
                          << workers << " workers";
            continue;
        }
        EXPECT_EQ(fp, it->second) << "path " << path
                                  << " diverged with " << workers
                                  << " workers";
    }
    for (const auto &[path, fp] : parallel)
        if (!serial.count(path))
            ADD_FAILURE() << "path " << path << " extra with "
                          << workers << " workers";
}

constexpr unsigned kWorkerCounts[] = {2, 4};

// --- Workload runners ----------------------------------------------------

std::map<std::string, std::string>
runLicense(unsigned workers)
{
    std::string src = guest::kernelSource() + guest::licenseCheckSource();
    Engine engine(machineFor(src), differentialConfig(workers));
    auto &state = engine.initialState();
    uint32_t key_addr = guest::addConfigString(state, engine.builder(), 0,
                                               "AAAAAAAA");
    guest::setConfig(state, engine.builder(), guest::kCfgLicensePtr,
                     key_addr);
    engine.makeMemSymbolic(state, key_addr, guest::kLicenseKeyLen,
                           "license");
    engine.run();
    return pathFingerprints(engine);
}

std::map<std::string, std::string>
runUrlParser(unsigned workers)
{
    std::string src = guest::kernelSource() + guest::urlParserSource();
    Engine engine(machineFor(src), differentialConfig(workers));
    auto &state = engine.initialState();
    std::string url = "http://ab"; // two symbolic tail bytes + NUL
    for (size_t i = 0; i <= url.size(); ++i)
        state.mem.write(guest::kUrlBuffer + static_cast<uint32_t>(i),
                        Value(i < url.size() ? url[i] : 0), 1,
                        engine.builder());
    engine.makeMemSymbolic(state, guest::kUrlBuffer + 7, 2, "url");
    engine.run();
    return pathFingerprints(engine);
}

std::map<std::string, std::string>
runLua(unsigned workers)
{
    std::string src = guest::kernelSource() + guest::luaSource();
    Engine engine(machineFor(src), differentialConfig(workers));
    auto &state = engine.initialState();
    std::string program = "!1+2;";
    for (size_t i = 0; i <= program.size(); ++i)
        state.mem.write(guest::kLuaInput + static_cast<uint32_t>(i),
                        Value(i < program.size() ? program[i] : 0), 1,
                        engine.builder());
    // One symbolic byte in operand position: the lexer forks on its
    // character class, the interpreter on the value.
    engine.makeMemSymbolic(state, guest::kLuaInput + 1, 1, "lua");
    engine.run();
    return pathFingerprints(engine);
}

std::map<std::string, std::string>
runPing(unsigned workers)
{
    std::string src = guest::kernelSource() +
                      guest::driverSource(DriverKind::Dma) +
                      guest::pingSource(/*patched=*/true);
    Engine engine(machineFor(src, guest::kRamSize, /*loopback=*/true),
                  differentialConfig(workers));
    guest::setConfig(engine.initialState(), engine.builder(),
                     guest::kCfgCardType, 0);
    engine.run();
    return pathFingerprints(engine);
}

/** High-fork-rate stress: nine independent symbolic branch bits fork
 *  2^9 = 512 paths, each then doing a short private work loop. */
const char *
stressSource()
{
    return R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: testi r1, 8
        jeq b4
        ori r5, 8
    b4: testi r1, 16
        jeq b5
        ori r5, 16
    b5: testi r1, 32
        jeq b6
        ori r5, 32
    b6: testi r1, 64
        jeq b7
        ori r5, 64
    b7: testi r1, 128
        jeq b8
        ori r5, 128
    b8: testi r1, 256
        jeq b9
        ori r5, 256
    b9: movi r3, 0
        movi r4, 0
    work:
        add r3, r5
        addi r4, 1
        cmpi r4, 20
        jne work
        hlt
    )";
}

std::map<std::string, std::string>
runStress(unsigned workers)
{
    Engine engine(machineFor(stressSource(), 64 * 1024),
                  differentialConfig(workers));
    engine.run();
    return pathFingerprints(engine);
}

// --- Differential tests --------------------------------------------------

TEST(ParallelDifferential, LicenseCheckPathSetInvariant)
{
    auto serial = runLicense(1);
    EXPECT_GT(serial.size(), 4u); // the key ladder forks many paths
    for (unsigned w : kWorkerCounts)
        expectSamePathSets(serial, runLicense(w), w);
}

TEST(ParallelDifferential, UrlParserPathSetInvariant)
{
    auto serial = runUrlParser(1);
    EXPECT_GT(serial.size(), 2u);
    for (unsigned w : kWorkerCounts)
        expectSamePathSets(serial, runUrlParser(w), w);
}

TEST(ParallelDifferential, LuaPathSetInvariant)
{
    auto serial = runLua(1);
    EXPECT_GT(serial.size(), 2u);
    for (unsigned w : kWorkerCounts)
        expectSamePathSets(serial, runLua(w), w);
}

TEST(ParallelDifferential, PingPathSetInvariant)
{
    // Single concrete path: exercises devices, DMA and interrupt
    // delivery under the worker pool.
    auto serial = runPing(1);
    EXPECT_GE(serial.size(), 1u);
    for (unsigned w : kWorkerCounts)
        expectSamePathSets(serial, runPing(w), w);
}

TEST(ParallelDifferential, ForkStormPathSetInvariant)
{
    // ≥ 500 live states: stresses the work-stealing queue, the shared
    // TB cache and concurrent fork bookkeeping.
    auto serial = runStress(1);
    EXPECT_EQ(serial.size(), 512u);
    for (unsigned w : kWorkerCounts)
        expectSamePathSets(serial, runStress(w), w);
}

TEST(ParallelDifferential, WorkerTelemetryReported)
{
    Engine engine(machineFor(stressSource(), 64 * 1024),
                  differentialConfig(2));
    RunResult r = engine.run();
    EXPECT_EQ(r.workers, 2u);
    ASSERT_EQ(r.workerBusySeconds.size(), 2u);
    double busy = 0;
    for (double s : r.workerBusySeconds) {
        EXPECT_GE(s, 0.0);
        busy += s;
    }
    EXPECT_GT(busy, 0.0);
    EXPECT_EQ(r.statesCreated, 512u);
    EXPECT_EQ(r.completed, 512u);
}

// --- Fork-tree canonicalization property ---------------------------------

TEST(ParallelForkTree, CanonicalJsonMatchesSerialByteForByte)
{
    auto canonical_tree = [](unsigned workers) {
        Engine engine(machineFor(stressSource(), 64 * 1024),
                      differentialConfig(workers));
        obs::ForkTreeRecorder recorder(engine.events());
        engine.run();
        return recorder.toCanonicalJson();
    };
    std::string serial = canonical_tree(1);
    EXPECT_NE(serial.find("\"s2e.fork_tree.v1\""), std::string::npos);
    EXPECT_NE(serial.find("\"canonical\":true"), std::string::npos);
    for (unsigned w : kWorkerCounts)
        EXPECT_EQ(serial, canonical_tree(w))
            << "canonical fork tree diverged with " << w << " workers";
}

// --- Relaxed-atomic hot counters under contention ------------------------

TEST(ParallelStats, SlotCountersSurviveContention)
{
    Stats stats;
    uint64_t &counter = stats.counterSlot("hammer.count");
    uint64_t &watermark = stats.counterSlot("hammer.max");
    SiteCounterCache sites(stats, "hammer.site");
    static const char *kSites[4] = {"alpha", "beta", "gamma", "delta"};

    constexpr unsigned kThreads = 8;
    constexpr uint64_t kIters = 20000;
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            for (uint64_t i = 0; i < kIters; ++i) {
                Stats::bump(counter);
                Stats::raiseTo(watermark, t * kIters + i + 1);
                Stats::bump(sites.slot(kSites[(t + i) % 4]));
            }
        });
    for (auto &th : threads)
        th.join();

    EXPECT_EQ(Stats::read(counter), kThreads * kIters);
    EXPECT_EQ(Stats::read(watermark), kThreads * kIters);
    uint64_t site_total = 0;
    for (const char *site : kSites)
        site_total += Stats::read(sites.slot(site));
    EXPECT_EQ(site_total, kThreads * kIters);
}

TEST(ParallelStats, RaiseToIsAtomicMaxUnderRacingWriters)
{
    // Adversarial watermark audit: writers race strictly *descending*
    // sequences from different starting points. A read-compare-store
    // raiseTo loses the race when a smaller value lands between the
    // read and the store; the CAS max loop must always converge on
    // the global maximum, and never move downward at any point.
    Stats stats;
    uint64_t &watermark = stats.counterSlot("race.max");
    constexpr unsigned kThreads = 8;
    constexpr uint64_t kIters = 50000;
    constexpr uint64_t kTrueMax = kThreads * kIters;
    std::atomic<bool> go{false};
    std::atomic<bool> sawDecrease{false};
    std::vector<std::thread> threads;
    for (unsigned t = 0; t < kThreads; ++t)
        threads.emplace_back([&, t] {
            while (!go.load(std::memory_order_acquire)) {
            }
            // Thread t publishes (t+1)*kIters down to t*kIters+1, so
            // high maxima are proposed early and every later proposal
            // tries to drag the watermark down.
            uint64_t prev = 0;
            for (uint64_t i = 0; i < kIters; ++i) {
                Stats::raiseTo(watermark, (t + 1) * kIters - i);
                uint64_t now = Stats::read(watermark);
                if (now < prev)
                    sawDecrease.store(true, std::memory_order_relaxed);
                prev = now;
            }
        });
    go.store(true, std::memory_order_release);
    for (auto &th : threads)
        th.join();
    EXPECT_EQ(Stats::read(watermark), kTrueMax);
    EXPECT_FALSE(sawDecrease.load());
}

} // namespace
} // namespace s2e::core
