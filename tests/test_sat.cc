/** @file Unit tests for the CDCL SAT solver. */

#include <gtest/gtest.h>

#include "solver/sat.hh"
#include "support/rng.hh"

namespace s2e::sat {
namespace {

TEST(Sat, EmptyFormulaIsSat)
{
    SatSolver s;
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, SingleUnit)
{
    SatSolver s;
    Var v = s.newVar();
    s.addClause(mkLit(v));
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_EQ(s.value(v), LBool::True);
}

TEST(Sat, ContradictoryUnits)
{
    SatSolver s;
    Var v = s.newVar();
    s.addClause(mkLit(v));
    EXPECT_FALSE(s.addClause(mkLit(v, true)));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, SimpleImplicationChain)
{
    SatSolver s;
    Var a = s.newVar(), b = s.newVar(), c = s.newVar();
    s.addClause(mkLit(a));
    s.addClause(mkLit(a, true), mkLit(b)); // a -> b
    s.addClause(mkLit(b, true), mkLit(c)); // b -> c
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_EQ(s.value(c), LBool::True);
}

TEST(Sat, UnsatTriangle)
{
    SatSolver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause(mkLit(a), mkLit(b));
    s.addClause(mkLit(a), mkLit(b, true));
    s.addClause(mkLit(a, true), mkLit(b));
    s.addClause(mkLit(a, true), mkLit(b, true));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, TautologyClauseIgnored)
{
    SatSolver s;
    Var a = s.newVar();
    EXPECT_TRUE(s.addClause(std::vector<Lit>{mkLit(a), mkLit(a, true)}));
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

TEST(Sat, DuplicateLitsInClause)
{
    SatSolver s;
    Var a = s.newVar();
    s.addClause(std::vector<Lit>{mkLit(a), mkLit(a), mkLit(a)});
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_EQ(s.value(a), LBool::True);
}

TEST(Sat, AssumptionsRespected)
{
    SatSolver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause(mkLit(a, true), mkLit(b)); // a -> b
    EXPECT_EQ(s.solve({mkLit(a)}), SatResult::Sat);
    EXPECT_EQ(s.value(b), LBool::True);
    // Conflicting assumption.
    s.addClause(mkLit(b, true));
    EXPECT_EQ(s.solve({mkLit(a)}), SatResult::Unsat);
    // Still satisfiable without the assumption.
    EXPECT_EQ(s.solve(), SatResult::Sat);
    EXPECT_EQ(s.value(a), LBool::False);
}

TEST(Sat, PigeonHole3Into2IsUnsat)
{
    // PHP(3,2): 3 pigeons, 2 holes. Forces real conflict analysis.
    SatSolver s;
    Var p[3][2];
    for (auto &row : p)
        for (auto &v : row)
            v = s.newVar();
    for (int i = 0; i < 3; ++i)
        s.addClause(mkLit(p[i][0]), mkLit(p[i][1]));
    for (int h = 0; h < 2; ++h)
        for (int i = 0; i < 3; ++i)
            for (int j = i + 1; j < 3; ++j)
                s.addClause(mkLit(p[i][h], true), mkLit(p[j][h], true));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
}

TEST(Sat, PigeonHole5Into4IsUnsat)
{
    SatSolver s;
    const int n = 5, m = 4;
    std::vector<std::vector<Var>> p(n, std::vector<Var>(m));
    for (auto &row : p)
        for (auto &v : row)
            v = s.newVar();
    for (int i = 0; i < n; ++i) {
        std::vector<Lit> clause;
        for (int h = 0; h < m; ++h)
            clause.push_back(mkLit(p[i][h]));
        s.addClause(clause);
    }
    for (int h = 0; h < m; ++h)
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                s.addClause(mkLit(p[i][h], true), mkLit(p[j][h], true));
    EXPECT_EQ(s.solve(), SatResult::Unsat);
    EXPECT_GT(s.numConflicts(), 0u);
}

/** Encode PHP(n,m): n pigeons into m holes (unsat when n > m). With
 *  a guard, every clause is (¬guard ∨ ...) — active only while the
 *  guard is assumed, like an incremental-context constraint. */
void
addPigeonhole(SatSolver &s, int n, int m, Lit guard = -1)
{
    std::vector<std::vector<Var>> p(n, std::vector<Var>(m));
    for (auto &row : p)
        for (auto &v : row)
            v = s.newVar();
    auto add = [&](std::vector<Lit> clause) {
        if (guard >= 0)
            clause.push_back(litNot(guard));
        s.addClause(clause);
    };
    for (int i = 0; i < n; ++i) {
        std::vector<Lit> clause;
        for (int h = 0; h < m; ++h)
            clause.push_back(mkLit(p[i][h]));
        add(clause);
    }
    for (int h = 0; h < m; ++h)
        for (int i = 0; i < n; ++i)
            for (int j = i + 1; j < n; ++j)
                add({mkLit(p[i][h], true), mkLit(p[j][h], true)});
}

TEST(Sat, ConflictBudgetReturnsUnknown)
{
    // PHP(7,6) takes many conflicts; a budget of 1 must bail out.
    SatSolver s;
    addPigeonhole(s, 7, 6);
    EXPECT_EQ(s.solve({}, 1), SatResult::Unknown);
    EXPECT_FALSE(s.lastStopWasDeadline());
}

TEST(Sat, WallClockDeadlineReturnsUnknown)
{
    // A 1µs deadline on a hard instance must trip the wall-clock
    // check (every few conflicts / every few hundred decisions) and
    // be reported as a deadline stop, not a conflict-budget stop.
    SatSolver s;
    addPigeonhole(s, 9, 8);
    QueryBudget budget;
    budget.maxMicros = 1;
    EXPECT_EQ(s.solve({}, budget), SatResult::Unknown);
    EXPECT_TRUE(s.lastStopWasDeadline());
}

TEST(Sat, IncrementalResumeAfterBudgetExhaustion)
{
    // An exhausted budget leaves the solver reusable: learnt clauses
    // persist, and a later unlimited solve() on the same instance
    // reaches the definite answer.
    SatSolver s;
    addPigeonhole(s, 5, 4);
    QueryBudget tiny;
    tiny.maxConflicts = 1;
    ASSERT_EQ(s.solve({}, tiny), SatResult::Unknown);
    uint64_t conflicts_after_first = s.numConflicts();
    EXPECT_GE(conflicts_after_first, 1u);
    EXPECT_EQ(s.solve({}, QueryBudget{}), SatResult::Unsat);
    // The second run continued from the learnt state (conflict count
    // is cumulative, never reset).
    EXPECT_GT(s.numConflicts(), conflicts_after_first);
    // The solver still answers unrelated queries after the Unsat.
    EXPECT_EQ(s.solve({}, tiny), SatResult::Unsat);
}

/** Random 3-SAT instances cross-checked against brute force. */
TEST(Sat, PropertyRandom3SatMatchesBruteForce)
{
    s2e::Rng rng(2024);
    for (int iter = 0; iter < 200; ++iter) {
        int nvars = 4 + static_cast<int>(rng.below(7)); // 4..10
        int nclauses = 2 + static_cast<int>(rng.below(40));
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < nclauses; ++c) {
            std::vector<Lit> cl;
            for (int k = 0; k < 3; ++k)
                cl.push_back(mkLit(static_cast<Var>(rng.below(nvars)),
                                   rng.chance(0.5)));
            clauses.push_back(cl);
        }

        // Brute force reference.
        bool brute_sat = false;
        for (uint32_t m = 0; m < (1u << nvars) && !brute_sat; ++m) {
            bool all = true;
            for (const auto &cl : clauses) {
                bool any = false;
                for (Lit l : cl) {
                    bool val = (m >> litVar(l)) & 1;
                    if (litNeg(l) ? !val : val) {
                        any = true;
                        break;
                    }
                }
                if (!any) {
                    all = false;
                    break;
                }
            }
            brute_sat = all;
        }

        SatSolver s;
        for (int v = 0; v < nvars; ++v)
            s.newVar();
        bool early_unsat = false;
        for (const auto &cl : clauses)
            if (!s.addClause(cl))
                early_unsat = true;
        SatResult res = early_unsat ? SatResult::Unsat : s.solve();
        ASSERT_EQ(res == SatResult::Sat, brute_sat)
            << "iteration " << iter;

        // If SAT, the model must actually satisfy every clause.
        if (res == SatResult::Sat) {
            for (const auto &cl : clauses) {
                bool any = false;
                for (Lit l : cl)
                    if (s.modelTrue(l))
                        any = true;
                ASSERT_TRUE(any);
            }
        }
    }
}

TEST(Sat, BudgetEscalationSaturatesInsteadOfWrapping)
{
    // Regression: escalated() used to compute limit * multiplier in
    // double and cast straight back to int64_t — for limits near
    // INT64_MAX the cast was UB and in practice wrapped negative,
    // which solve() interprets as *unlimited*. It must saturate.
    constexpr int64_t kMax = std::numeric_limits<int64_t>::max();
    QueryBudget huge;
    huge.maxConflicts = kMax - 1;
    huge.maxMicros = kMax / 2;
    QueryBudget up = huge.escalated(4.0);
    EXPECT_EQ(up.maxConflicts, kMax);
    EXPECT_EQ(up.maxMicros, kMax);
    EXPECT_FALSE(up.unlimited()); // saturated, NOT converted to -1
    // Repeated escalation stays pinned at the cap, still limited.
    QueryBudget up2 = up.escalated(4.0).escalated(4.0);
    EXPECT_EQ(up2.maxConflicts, kMax);
    EXPECT_EQ(up2.maxMicros, kMax);
    EXPECT_FALSE(up2.unlimited());
    // Unlimited fields (-1) stay unlimited; small fields still grow.
    QueryBudget small;
    small.maxConflicts = 100;
    QueryBudget sup = small.escalated(4.0);
    EXPECT_GT(sup.maxConflicts, 100);
    EXPECT_LT(sup.maxConflicts, 1000);
    EXPECT_EQ(sup.maxMicros, -1);
}

TEST(Sat, ActivationLiteralsSelectConstraintSubsets)
{
    // The incremental-context clause scheme: each constraint C is
    // asserted as (¬a ∨ C) and enabled by assuming a. Conflicting
    // constraints coexist in one database; per-query assumption sets
    // pick the active subset, and an Unsat answer under assumptions
    // must not poison the solver (the guarded DB stays satisfiable).
    SatSolver s;
    Var x = s.newVar();
    Var g1 = s.newVar(), g2 = s.newVar();
    s.addClause(mkLit(g1, true), mkLit(x));       // g1 -> x
    s.addClause(mkLit(g2, true), mkLit(x, true)); // g2 -> ¬x

    EXPECT_EQ(s.solve({mkLit(g1)}), SatResult::Sat);
    EXPECT_TRUE(s.modelTrue(mkLit(x)));
    EXPECT_EQ(s.solve({mkLit(g2)}), SatResult::Sat);
    EXPECT_TRUE(s.modelTrue(mkLit(x, true)));
    EXPECT_EQ(s.solve({mkLit(g1), mkLit(g2)}), SatResult::Unsat);
    EXPECT_FALSE(s.inConflict()); // no root-level poisoning
    // All guards off: trivially satisfiable again.
    EXPECT_EQ(s.solve(), SatResult::Sat);
    // And the conflicting pair is still Unsat on re-query.
    EXPECT_EQ(s.solve({mkLit(g2), mkLit(g1)}), SatResult::Unsat);
    EXPECT_FALSE(s.inConflict());
}

TEST(Sat, GrowsVarsAndClausesAfterSolve)
{
    // A persistent per-path context keeps adding constraints between
    // queries: newVar/addClause after a prior solve() must integrate
    // with watches, saved phases, and the VSIDS heap.
    SatSolver s;
    Var a = s.newVar(), b = s.newVar();
    s.addClause(mkLit(a), mkLit(b));
    ASSERT_EQ(s.solve(), SatResult::Sat);

    Var c = s.newVar(), d = s.newVar();
    s.addClause(mkLit(c, true), mkLit(d)); // c -> d
    ASSERT_EQ(s.solve({mkLit(c)}), SatResult::Sat);
    EXPECT_TRUE(s.modelTrue(mkLit(d)));

    // Grow by a guarded instance needing conflict analysis, then
    // solve under assumptions touching the earliest variables.
    Var g = s.newVar();
    addPigeonhole(s, 4, 3, mkLit(g));
    s.addClause(mkLit(a, true), mkLit(b, true));
    EXPECT_EQ(s.solve({mkLit(a)}), SatResult::Sat);
    EXPECT_TRUE(s.modelTrue(mkLit(b, true)));
    EXPECT_EQ(s.solve({mkLit(a), mkLit(g)}), SatResult::Unsat);
    EXPECT_FALSE(s.inConflict());
    EXPECT_EQ(s.solve({mkLit(a), mkLit(b)}), SatResult::Unsat);
    EXPECT_FALSE(s.inConflict());
}

TEST(Sat, BudgetedAssumptionSolveIsResumable)
{
    // Budget exhaustion inside an assumption-scoped solve leaves the
    // solver reusable for later queries with different assumptions —
    // the exact shape of an incremental-context query timing out.
    SatSolver s;
    Var g = s.newVar();
    addPigeonhole(s, 6, 5, mkLit(g));
    QueryBudget tiny;
    tiny.maxConflicts = 1;
    ASSERT_EQ(s.solve({mkLit(g)}, tiny), SatResult::Unknown);
    EXPECT_FALSE(s.inConflict());
    // Guard off: trivially Sat, the solver is not poisoned.
    EXPECT_EQ(s.solve({mkLit(g, true)}), SatResult::Sat);
    EXPECT_FALSE(s.inConflict());
    // Unlimited re-solve under the guard reaches the definite Unsat,
    // with the learnt clauses from the budgeted attempt carried over.
    EXPECT_EQ(s.solve({mkLit(g)}), SatResult::Unsat);
    EXPECT_FALSE(s.inConflict());
    EXPECT_EQ(s.solve(), SatResult::Sat);
}

} // namespace
} // namespace s2e::sat
