/** @file Tests for the consistency-model policy mapping (§3) and the
 *  engine behaviors each model implies beyond the basic cases covered
 *  in test_engine.cc. */

#include <gtest/gtest.h>

#include "core/consistency.hh"
#include "core/engine.hh"
#include "vm/devices.hh"

namespace s2e::core {
namespace {

TEST(ConsistencyPolicy, Names)
{
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::ScCe), "SC-CE");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::ScUe), "SC-UE");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::ScSe), "SC-SE");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::Lc), "LC");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::RcOc), "RC-OC");
    EXPECT_STREQ(consistencyModelName(ConsistencyModel::RcCc), "RC-CC");
}

TEST(ConsistencyPolicy, ScCeDisablesEverySymbolicSource)
{
    ConsistencyPolicy p = policyFor(ConsistencyModel::ScCe);
    EXPECT_FALSE(p.symbolicInputsEnabled);
    EXPECT_FALSE(p.symbolicHardwareAllowed);
    EXPECT_FALSE(p.forkInEnvironment);
    EXPECT_FALSE(p.ignoreFeasibility);
}

TEST(ConsistencyPolicy, ScUeBlackBoxesTheEnvironment)
{
    ConsistencyPolicy p = policyFor(ConsistencyModel::ScUe);
    EXPECT_TRUE(p.symbolicInputsEnabled);
    EXPECT_FALSE(p.symbolicHardwareAllowed);
    EXPECT_FALSE(p.forkInEnvironment);
    EXPECT_EQ(p.envSymbolicBranch,
              EnvSymbolicBranchPolicy::ConcretizeHard);
}

TEST(ConsistencyPolicy, ScSeIsFullySymbolic)
{
    ConsistencyPolicy p = policyFor(ConsistencyModel::ScSe);
    EXPECT_TRUE(p.forkInEnvironment);
    EXPECT_TRUE(p.symbolicHardwareAllowed);
    EXPECT_EQ(p.envSymbolicBranch, EnvSymbolicBranchPolicy::Fork);
    EXPECT_FALSE(p.ignoreFeasibility);
}

TEST(ConsistencyPolicy, LcAbortsOnPropagation)
{
    ConsistencyPolicy p = policyFor(ConsistencyModel::Lc);
    EXPECT_EQ(p.envSymbolicBranch, EnvSymbolicBranchPolicy::Abort);
    EXPECT_FALSE(p.forkInEnvironment);
}

TEST(ConsistencyPolicy, RcCcSkipsTheSolver)
{
    ConsistencyPolicy p = policyFor(ConsistencyModel::RcCc);
    EXPECT_TRUE(p.ignoreFeasibility);
}

namespace {
vm::MachineConfig
machineFor(const std::string &source)
{
    vm::MachineConfig m;
    m.ramSize = 256 * 1024;
    m.program = isa::assemble(source);
    m.deviceSetup = [](vm::DeviceSet &devices) {
        devices.add(std::make_unique<vm::ConsoleDevice>());
    };
    return m;
}
} // namespace

TEST(ConsistencyEngine, RcCcStatesMayBeInternallyInconsistent)
{
    // RC-CC records no constraints: the "impossible" branch's state
    // has an empty constraint set even though its data contradicts
    // the path taken.
    EngineConfig config;
    config.model = ConsistencyModel::RcCc;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 9
        cmpi r1, 100
        ja impossible
        movi r2, 1
        hlt
    impossible:
        movi r2, 2
        hlt
    )"),
                  config);
    engine.run();
    for (const auto &s : engine.allStates()) {
        if (s->cpu.regs[2].isConcrete() &&
            s->cpu.regs[2].concrete() == 2) {
            // Only the injection-range constraints are present — the
            // branch condition was not recorded.
            EXPECT_LE(s->constraints.size(), 2u);
        }
    }
}

TEST(ConsistencyEngine, RcCcDoesNotConsultSolverForBranches)
{
    EngineConfig config;
    config.model = ConsistencyModel::RcCc;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  cmpi r1, 50
        jb b
    b:  hlt
    )"),
                  config);
    engine.run();
    // Branch 1 forks once; both resulting states fork at branch 2:
    // three CFG forks, four paths, no solver involvement.
    EXPECT_EQ(engine.stats().get("engine.cfg_forks"), 3u);
    EXPECT_EQ(engine.allStates().size(), 4u);
    EXPECT_EQ(engine.solver().stats().get("solver.queries"), 0u);
}

TEST(ConsistencyEngine, LcAbortMessageNamesThePropagation)
{
    vm::MachineConfig m = machineFor(R"(
        .entry main
        .org 0x0
    main:
        movi sp, 0x8000
        s2e_symreg r1
        jmp env
        .org 0x1000
    env:
        cmpi r1, 3
        jb x
    x:  hlt
    )");
    EngineConfig config;
    config.model = ConsistencyModel::Lc;
    config.unitRanges = {{0x0, 0x1000}};
    Engine engine(m, config);
    engine.run();
    const auto &state = *engine.allStates()[0];
    ASSERT_EQ(state.status, StateStatus::Aborted);
    EXPECT_NE(state.statusMessage.find("LC propagation rule"),
              std::string::npos);
}

TEST(ConsistencyEngine, LcSymbolicDataMayPassThroughEnvUntouched)
{
    // Lazy concretization under LC: the environment copies symbolic
    // data without branching on it — the path survives and the data
    // stays symbolic (the paper's disk-buffer example).
    vm::MachineConfig m = machineFor(R"(
        .entry main
        .org 0x0
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r2, 0x9000
        stw [r2], r1
        call env_copy
        movi r3, 0x9100
        ldw r4, [r3]        ; read the copy back in the unit
        cmpi r4, 7
        jeq y
        movi r5, 0
        hlt
    y:  movi r5, 1
        hlt
        .org 0x1000
    env_copy:               ; environment: copies 4 bytes, no branches
        movi r4, 0x9000
        ldw r5, [r4]
        movi r4, 0x9100
        stw [r4], r5
        ret
    )");
    EngineConfig config;
    config.model = ConsistencyModel::Lc;
    config.unitRanges = {{0x0, 0x1000}};
    Engine engine(m, config);
    core::RunResult r = engine.run();
    // Both outcomes of the unit's branch on the copied data exist:
    // the data flowed through the environment symbolically.
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(r.aborted, 0u);
}

TEST(ConsistencyEngine, ScCeIsSingleConcretePath)
{
    EngineConfig config;
    config.model = ConsistencyModel::ScCe;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 3
        s2e_symrange r1, 0, 100  ; ignored under SC-CE
        s2e_symreg r2            ; ignored too
        cmpi r1, 3
        jeq keep
        s2e_kill 9
    keep:
        hlt
    )"),
                  config);
    core::RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
    EXPECT_EQ(engine.solver().stats().get("solver.queries"), 0u);
}

} // namespace
} // namespace s2e::core
