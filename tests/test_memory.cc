/** @file Tests for COW memory with the symbolic overlay. */

#include <gtest/gtest.h>

#include "core/memory.hh"
#include "expr/eval.hh"

namespace s2e::core {
namespace {

class MemoryTest : public ::testing::Test
{
  protected:
    ExprBuilder b;
    MemoryState mem{64 * 1024};
};

TEST_F(MemoryTest, ZeroInitialized)
{
    uint8_t byte = 0xFF;
    ASSERT_TRUE(mem.readConcreteByte(0x1234, &byte));
    EXPECT_EQ(byte, 0);
    EXPECT_EQ(mem.read(0x1000, 4, b).concrete(), 0u);
}

TEST_F(MemoryTest, ConcreteReadWriteWidths)
{
    mem.write(0x100, Value(0xA1B2C3D4u), 4, b);
    EXPECT_EQ(mem.read(0x100, 4, b).concrete(), 0xA1B2C3D4u);
    EXPECT_EQ(mem.read(0x100, 1, b).concrete(), 0xD4u);
    EXPECT_EQ(mem.read(0x101, 2, b).concrete(), 0xB2C3u);
}

TEST_F(MemoryTest, CrossPageAccess)
{
    uint32_t addr = kMemPageSize - 2;
    mem.write(addr, Value(0x11223344u), 4, b);
    EXPECT_EQ(mem.read(addr, 4, b).concrete(), 0x11223344u);
}

TEST_F(MemoryTest, BoundsChecking)
{
    EXPECT_TRUE(mem.inBounds(0, 4));
    EXPECT_TRUE(mem.inBounds(64 * 1024 - 4, 4));
    EXPECT_FALSE(mem.inBounds(64 * 1024 - 3, 4));
    EXPECT_FALSE(mem.inBounds(64 * 1024, 1));
    uint8_t byte;
    EXPECT_FALSE(mem.readConcreteByte(64 * 1024, &byte));
}

TEST_F(MemoryTest, SymbolicByteRoundTrip)
{
    ExprRef v = b.freshVar("x", 8);
    mem.makeSymbolic(0x200, v);
    EXPECT_TRUE(mem.rangeHasSymbolic(0x200, 1));
    EXPECT_FALSE(mem.rangeHasSymbolic(0x201, 8));
    uint8_t byte;
    EXPECT_FALSE(mem.readConcreteByte(0x200, &byte));
    EXPECT_EQ(mem.byteExpr(0x200, b), v);
}

TEST_F(MemoryTest, SymbolicWordComposition)
{
    ExprRef v = b.freshVar("w", 32);
    mem.write(0x300, Value(v), 4, b);
    Value back = mem.read(0x300, 4, b);
    ASSERT_TRUE(back.isSymbolic());
    // Evaluating the read-back expression must equal the original.
    expr::Assignment a;
    a.set(v, 0xCAFEBABE);
    EXPECT_EQ(expr::evaluate(back.expr(), a), 0xCAFEBABEu);
}

TEST_F(MemoryTest, ConcreteOverwriteClearsSymbolic)
{
    mem.makeSymbolic(0x400, b.freshVar("y", 8));
    mem.writeConcreteByte(0x400, 0x42);
    EXPECT_FALSE(mem.rangeHasSymbolic(0x400, 1));
    uint8_t byte;
    ASSERT_TRUE(mem.readConcreteByte(0x400, &byte));
    EXPECT_EQ(byte, 0x42);
}

TEST_F(MemoryTest, PartiallySymbolicWordRead)
{
    mem.write(0x500, Value(0x11223344u), 4, b);
    mem.makeSymbolic(0x501, b.freshVar("z", 8));
    Value v = mem.read(0x500, 4, b);
    ASSERT_TRUE(v.isSymbolic());
    expr::Assignment a; // z defaults to 0
    EXPECT_EQ(expr::evaluate(v.expr(), a), 0x11220044u);
}

TEST_F(MemoryTest, CowSharingUntilWrite)
{
    mem.write(0x600, Value(111u), 4, b);
    MemoryState copy = mem;
    // Reads don't privatize.
    EXPECT_EQ(copy.read(0x600, 4, b).concrete(), 111u);
    EXPECT_EQ(copy.privatePages(), 0u);
    // Writing privatizes only the touched page.
    copy.write(0x600, Value(222u), 4, b);
    EXPECT_EQ(copy.privatePages(), 1u);
    EXPECT_EQ(mem.read(0x600, 4, b).concrete(), 111u);
    EXPECT_EQ(copy.read(0x600, 4, b).concrete(), 222u);
}

TEST_F(MemoryTest, CowIsolatesSymbolicOverlay)
{
    MemoryState copy = mem;
    copy.makeSymbolic(0x700, b.freshVar("s", 8));
    EXPECT_TRUE(copy.rangeHasSymbolic(0x700, 1));
    EXPECT_FALSE(mem.rangeHasSymbolic(0x700, 1));
}

TEST_F(MemoryTest, SymbolicByteCountTracksOverlay)
{
    EXPECT_EQ(mem.symbolicByteCount(), 0u);
    for (int i = 0; i < 10; ++i)
        mem.makeSymbolic(0x800 + i, b.freshVar("c", 8));
    EXPECT_EQ(mem.symbolicByteCount(), 10u);
    mem.writeConcreteByte(0x800, 1);
    EXPECT_EQ(mem.symbolicByteCount(), 9u);
}

TEST_F(MemoryTest, LoadProgramSections)
{
    isa::Program p = isa::assemble(R"(
        .org 0x100
        .byte 1, 2, 3
        .org 0x2000
        .word 0xAABBCCDD
    )");
    mem.loadProgram(p);
    EXPECT_EQ(mem.read(0x100, 1, b).concrete(), 1u);
    EXPECT_EQ(mem.read(0x2000, 4, b).concrete(), 0xAABBCCDDu);
}

TEST_F(MemoryTest, WriteSymbolicValueWithConstantBytesStaysConcrete)
{
    // zext(var,32)'s high bytes are constant zero: writing it should
    // produce 1 symbolic byte + 3 concrete bytes.
    ExprRef v = b.freshVar("n", 8);
    mem.write(0x900, Value(b.zext(v, 32)), 4, b);
    EXPECT_TRUE(mem.rangeHasSymbolic(0x900, 1));
    EXPECT_FALSE(mem.rangeHasSymbolic(0x901, 3));
}

} // namespace
} // namespace s2e::core
