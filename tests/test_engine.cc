/** @file End-to-end tests for the selective symbolic execution engine. */

#include <gtest/gtest.h>

#include "core/engine.hh"
#include "vm/devices.hh"
#include "vm/nic.hh"
#include "plugins/searchers.hh"

namespace s2e::core {
namespace {

using vm::ConsoleDevice;
using vm::DeviceSet;

vm::MachineConfig
machineFor(const std::string &source, uint32_t ram = 256 * 1024)
{
    vm::MachineConfig m;
    m.ramSize = ram;
    m.program = isa::assemble(source);
    m.deviceSetup = [](DeviceSet &devices) {
        devices.add(std::make_unique<ConsoleDevice>());
        devices.add(std::make_unique<vm::TimerDevice>());
        devices.add(std::make_unique<vm::DmaNic>());
    };
    return m;
}

/** Collect final register r-values of all terminated states. */
std::vector<uint32_t>
finalRegValues(Engine &engine, unsigned reg)
{
    std::vector<uint32_t> out;
    for (const auto &s : engine.allStates()) {
        const Value &v = s->cpu.regs[reg];
        if (v.isConcrete())
            out.push_back(v.concrete());
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(Engine, ConcreteExecutionMatchesFastMachine)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 0
        movi r2, 1
    loop:
        add r1, r2
        addi r2, 1
        cmpi r2, 11
        jne loop
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(engine.allStates()[0]->cpu.regs[1].concrete(), 55u);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

TEST(Engine, SymbolicBranchForksTwoPaths)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 100
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(r.forks, 1u);
    EXPECT_EQ(finalRegValues(engine, 2), (std::vector<uint32_t>{1, 2}));
}

TEST(Engine, NestedForksEnumerateAllPaths)
{
    // Three sequential symbolic branches -> 8 paths.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 8u);
    EXPECT_EQ(finalRegValues(engine, 5),
              (std::vector<uint32_t>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, SymRangeConstrainsValues)
{
    // r1 in [5, 6]: exactly two paths through the equality ladder.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 5, 6
        cmpi r1, 5
        jeq five
        movi r2, 60
        hlt
    five:
        movi r2, 50
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(finalRegValues(engine, 2), (std::vector<uint32_t>{50, 60}));
}

TEST(Engine, InfeasibleBranchNotForked)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 9
        cmpi r1, 100
        ja impossible
        movi r2, 1
        hlt
    impossible:
        movi r2, 2
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(engine.allStates()[0]->cpu.regs[2].concrete(), 1u);
}

TEST(Engine, S2KillSetsExitCode)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        s2e_kill 7
    )"),
                  EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Killed);
    EXPECT_EQ(engine.allStates()[0]->exitCode, 7u);
}

TEST(Engine, S2AssertConcreteFailureCrashes)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi r1, 0
        s2e_assert r1
        hlt
    )"),
                  EngineConfig{});
    int bugs = 0;
    engine.events().onBug.subscribe(
        [&](ExecutionState &, const std::string &) { bugs++; });
    engine.run();
    EXPECT_EQ(bugs, 1);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Crashed);
}

TEST(Engine, S2AssertSymbolicMayFailReportsBug)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 5
        s2e_assert r1      ; may be zero -> bug; survivors have r1 != 0
        hlt
    )"),
                  EngineConfig{});
    int bugs = 0;
    engine.events().onBug.subscribe(
        [&](ExecutionState &, const std::string &) { bugs++; });
    engine.run();
    EXPECT_EQ(bugs, 1);
    // The state survives with the constraint r1 != 0.
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
    uint64_t v = 0;
    ASSERT_TRUE(engine.solver()
                    .getValue(engine.allStates()[0]->constraints,
                              engine.allStates()[0]->cpu.regs[1].toExpr(
                                  engine.builder()),
                              &v)
                    .isSat());
    EXPECT_NE(v, 0u);
}

TEST(Engine, ConsoleOutputIsPerPath)
{
    Engine engine(machineFor(R"(
        .entry main
        .equ CONSOLE, 0x10
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 10
        jb small
        movi r2, 'B'
        out CONSOLE, r2
        hlt
    small:
        movi r2, 'A'
        out CONSOLE, r2
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    std::vector<std::string> outputs;
    for (const auto &s : engine.allStates()) {
        auto *console = s->devices.get<ConsoleDevice>("console");
        ASSERT_NE(console, nullptr);
        outputs.push_back(console->output());
    }
    std::sort(outputs.begin(), outputs.end());
    EXPECT_EQ(outputs, (std::vector<std::string>{"A", "B"}));
}

TEST(Engine, LazyConcretizationThroughMemory)
{
    // Symbolic value round-trips through memory without forcing a
    // concrete value; the branch afterwards still forks.
    Engine engine(machineFor(R"(
        .entry main
        .equ BUF, 0x4000
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r3, BUF
        stw [r3], r1       ; symbolic data to memory
        ldw r2, [r3]       ; read it back
        cmpi r2, 42
        jeq yes
        movi r4, 0
        hlt
    yes:
        movi r4, 1
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(finalRegValues(engine, 4), (std::vector<uint32_t>{0, 1}));
}

TEST(Engine, SubByteSymbolicMemoryAccess)
{
    // Store a symbolic word, read one byte of it.
    Engine engine(machineFor(R"(
        .entry main
        .equ BUF, 0x4000
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r3, BUF
        stw [r3], r1
        ldb r2, [r3+1]     ; byte 1 of the symbolic word
        cmpi r2, 0x7F
        ja high
        movi r4, 0
        hlt
    high:
        movi r4, 1
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
}

TEST(Engine, SymbolicPointerTableLookup)
{
    // data[idx] for idx in [0,3]; checks the ite-chain resolution.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 3
        movi r3, table
        add r3, r1
        ldb r2, [r3]       ; symbolic pointer read
        cmpi r2, 30
        jeq hit
        movi r4, 0
        hlt
    hit:
        movi r4, 1
        hlt
        .align 4
    table:
        .byte 10, 20, 30, 40
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    // Two outcomes: r2 == 30 (idx 2) and r2 != 30.
    EXPECT_EQ(r.statesCreated, 2u);
    ASSERT_EQ(finalRegValues(engine, 4), (std::vector<uint32_t>{0, 1}));
    // On the hit path, idx must be 2.
    for (const auto &s : engine.allStates()) {
        if (s->cpu.regs[4].concrete() == 1) {
            uint64_t lo = 0, hi = 0;
            ASSERT_TRUE(engine.solver()
                            .getRange(s->constraints,
                                      s->cpu.regs[1].toExpr(
                                          engine.builder()),
                                      &lo, &hi)
                            .isSat());
            EXPECT_EQ(lo, 2u);
            EXPECT_EQ(hi, 2u);
        }
    }
}

TEST(Engine, S2DisDisablesForking)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        s2e_dis
        cmpi r1, 100
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u); // concretized instead of forked
}

TEST(Engine, ScCeIgnoresSymbolicInjection)
{
    EngineConfig config;
    config.model = ConsistencyModel::ScCe;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 7
        s2e_symreg r1       ; no-op under SC-CE
        cmpi r1, 100
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )"),
                  config);
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(engine.allStates()[0]->cpu.regs[2].concrete(), 1u);
}

TEST(Engine, UnitRangesRestrictForking)
{
    // The branch lives outside the unit: under LC, a symbolic branch
    // in the environment aborts the path.
    vm::MachineConfig m = machineFor(R"(
        .entry main
        .org 0x0
    main:
        movi sp, 0x8000
        s2e_symreg r1
        jmp envcode
        .org 0x1000
    envcode:
        cmpi r1, 100      ; environment branches on symbolic data
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )");
    EngineConfig config;
    config.model = ConsistencyModel::Lc;
    config.unitRanges = {{0x0, 0x1000}}; // env starts at 0x1000
    Engine engine(m, config);
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(r.aborted, 1u);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Aborted);
}

TEST(Engine, ScUeConcretizesEnvironmentBranch)
{
    vm::MachineConfig m = machineFor(R"(
        .entry main
        .org 0x0
    main:
        movi sp, 0x8000
        s2e_symreg r1
        jmp envcode
        .org 0x1000
    envcode:
        cmpi r1, 100
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )");
    EngineConfig config;
    config.model = ConsistencyModel::ScUe;
    config.unitRanges = {{0x0, 0x1000}};
    Engine engine(m, config);
    RunResult r = engine.run();
    // One path only: the env branch was concretized, not forked.
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(r.aborted, 0u);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Halted);
}

TEST(Engine, ScSeForksInEnvironment)
{
    vm::MachineConfig m = machineFor(R"(
        .entry main
        .org 0x0
    main:
        movi sp, 0x8000
        s2e_symreg r1
        jmp envcode
        .org 0x1000
    envcode:
        cmpi r1, 100
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )");
    EngineConfig config;
    config.model = ConsistencyModel::ScSe;
    config.unitRanges = {{0x0, 0x1000}};
    Engine engine(m, config);
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
}

TEST(Engine, RcCcForksWithoutFeasibility)
{
    // Under RC-CC even an infeasible edge is followed.
    EngineConfig config;
    config.model = ConsistencyModel::RcCc;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 9
        cmpi r1, 100
        ja impossible       ; infeasible, but RC-CC follows it anyway
        movi r2, 1
        hlt
    impossible:
        movi r2, 2
        hlt
    )"),
                  config);
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(finalRegValues(engine, 2), (std::vector<uint32_t>{1, 2}));
}

TEST(Engine, SoftwareInterruptDispatch)
{
    Engine engine(machineFor(R"(
        .entry main
        .org 0x100          ; interrupt vector table
        .space 0xC0         ; vectors 0..0x2F
        .word syscall       ; vector 0x30
        .org 0x400
    main:
        movi sp, 0x8000
        movi r1, 5
        int 0x30
        addi r1, 100        ; after return: r1 = 5*2 + 100
        hlt
    syscall:
        add r1, r1
        iret
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(engine.allStates()[0]->cpu.regs[1].concrete(), 110u);
}

TEST(Engine, UnhandledInterruptCrashes)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        int 0x5            ; vector table empty -> handler 0
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Crashed);
}

TEST(Engine, TimerInterruptFires)
{
    Engine engine(machineFor(R"(
        .entry main
        .equ TIMER_CTRL, 0x20
        .equ TIMER_PERIOD, 0x21
        .org 0x100
        .word timer_isr     ; vector 0 = timer
        .org 0x400
    main:
        movi sp, 0x8000
        movi r5, 0          ; tick counter
        movi r1, 50
        out TIMER_PERIOD, r1
        movi r1, 1
        out TIMER_CTRL, r1
        sti
    wait:
        cmpi r5, 3
        jb wait
        cli
        hlt
    timer_isr:
        addi r5, 1
        iret
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    EXPECT_EQ(r.completed, 1u);
    EXPECT_EQ(engine.allStates()[0]->cpu.regs[5].concrete(), 3u);
}

TEST(Engine, NicDmaTransmit)
{
    Engine engine(machineFor(R"(
        .entry main
        .equ NIC_CMD, 0x50
        .equ NIC_TXADDR, 0x52
        .equ NIC_TXLEN, 0x53
        .equ PKT, 0x4000
    main:
        movi sp, 0x8000
        movi r1, PKT
        movi r2, 0x11223344
        stw [r1], r2
        out NIC_TXADDR, r1
        movi r2, 4
        out NIC_TXLEN, r2
        movi r2, 2          ; TXSTART
        out NIC_CMD, r2
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    auto *nic = engine.allStates()[0]->devices.get<vm::DmaNic>("dmanic");
    ASSERT_NE(nic, nullptr);
    ASSERT_EQ(nic->transmitted().size(), 1u);
    EXPECT_EQ(nic->transmitted()[0],
              (std::vector<uint8_t>{0x44, 0x33, 0x22, 0x11}));
}

TEST(Engine, SymbolicHardwareReturnsSymbolic)
{
    EngineConfig config;
    config.model = ConsistencyModel::ScSe;
    config.symbolicPortRanges = {{0x50, 0x57}}; // the DMA NIC
    Engine engine(machineFor(R"(
        .entry main
        .equ NIC_STATUS, 0x51
    main:
        movi sp, 0x8000
        in r1, NIC_STATUS   ; symbolic hardware
        testi r1, 1
        jeq notready
        movi r2, 1
        hlt
    notready:
        movi r2, 0
        hlt
    )"),
                  config);
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u); // both hardware behaviors explored
}

TEST(Engine, GetInitialValuesGiveCrashInputs)
{
    // The engine can produce the concrete input that reaches a branch.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 0xDEAD
        jne ok
        s2e_kill 1         ; "crash" on the magic value
    ok:
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    const ExecutionState *crash_state = nullptr;
    for (const auto &s : engine.allStates())
        if (s->status == StateStatus::Killed)
            crash_state = s.get();
    ASSERT_NE(crash_state, nullptr);
    expr::Assignment model;
    ASSERT_TRUE(engine.solver()
                    .getInitialValues(crash_state->constraints, &model)
                    .isSat());
    // Reconstruct r1's initial value from the model: it must be 0xDEAD.
    // r1 held the lone symbolic variable.
    ASSERT_EQ(model.values().size(), 1u);
    EXPECT_EQ(model.values().begin()->second, 0xDEADu);
}

TEST(Engine, EventsFireDuringRun)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  movi r2, 1
        stw [sp-4], r2
        hlt
    )"),
                  EngineConfig{});
    int forks = 0, blocks = 0, mem_accesses = 0, kills = 0;
    engine.events().onExecutionFork.subscribe(
        [&](const ForkInfo &) { forks++; });
    engine.events().onBlockExecute.subscribe(
        [&](ExecutionState &, const dbt::TranslationBlock &) { blocks++; });
    engine.events().onMemoryAccess.subscribe(
        [&](ExecutionState &, const MemAccessInfo &) { mem_accesses++; });
    engine.events().onStateKill.subscribe(
        [&](ExecutionState &) { kills++; });
    engine.run();
    EXPECT_EQ(forks, 1);
    EXPECT_GT(blocks, 0);
    EXPECT_GT(mem_accesses, 0);
    EXPECT_EQ(kills, 2);
}

TEST(Engine, InstrMarkingFiresExecutionEvents)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi r1, 0
    loop:
        addi r1, 1
        cmpi r1, 5
        jne loop
        hlt
    )"),
                  EngineConfig{});
    // Mark only the addi instruction (it is at pc 6).
    int executions = 0;
    engine.events().onInstrTranslation.subscribe(
        [](ExecutionState &, uint32_t, const isa::Instruction &instr,
           bool *mark) {
            if (instr.op == isa::Opcode::AddI)
                *mark = true;
        });
    engine.events().onInstrExecution.subscribe(
        [&](ExecutionState &, uint32_t) { executions++; });
    engine.run();
    EXPECT_EQ(executions, 5); // the loop body ran 5 times
}

TEST(Engine, InstructionBudgetStopsRun)
{
    EngineConfig config;
    config.maxInstructions = 500;
    Engine engine(machineFor(R"(
        .entry main
    main:
        jmp main
    )"),
                  config);
    RunResult r = engine.run();
    EXPECT_TRUE(r.budgetExhausted);
    EXPECT_EQ(engine.allStates()[0]->status,
              StateStatus::BudgetExceeded);
}

TEST(Engine, MaxStatesSuppressesForks)
{
    EngineConfig config;
    config.maxStatesCreated = 4;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r5, 0
        testi r1, 1
        jeq b1
        ori r5, 1
    b1: testi r1, 2
        jeq b2
        ori r5, 2
    b2: testi r1, 4
        jeq b3
        ori r5, 4
    b3: hlt
    )"),
                  config);
    RunResult r = engine.run();
    EXPECT_LE(r.statesCreated, 4u);
}

TEST(Engine, OutOfBoundsAccessCrashes)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi r1, 0x0FFFFFF0   ; beyond 256 KB RAM, below MMIO
        ldw r2, [r1]
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Crashed);
}

TEST(Engine, SelfModifyingCodeWorksSymbolically)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi r5, 0
    loop:
    site:
        movi r9, 111
        cmpi r5, 1
        jeq done
        movi r1, site+2
        movi r2, 222
        stb [r1], r2
        addi r5, 1
        jmp loop
    done:
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->cpu.regs[9].concrete(), 222u);
}

TEST(Engine, ForkDepthTracksLineage)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  cmpi r1, 50
        jb b
    b:  hlt
    )"),
                  EngineConfig{});
    engine.run();
    uint32_t max_depth = 0;
    for (const auto &s : engine.allStates())
        max_depth = std::max(max_depth, s->forkDepth());
    EXPECT_GE(max_depth, 1u);
    // Parent ids must refer to existing states.
    for (const auto &s : engine.allStates()) {
        if (s->parentId() >= 0) {
            EXPECT_LT(static_cast<size_t>(s->parentId()),
                      engine.allStates().size());
        }
    }
}

TEST(Engine, SymbolicMmioHardware)
{
    // MMIO reads from a configured range return fresh symbolic data.
    EngineConfig config;
    config.model = ConsistencyModel::ScSe;
    config.symbolicMmioRanges = {{0xF0001000u, 0xF0001010u}};
    vm::MachineConfig m;
    m.ramSize = 64 * 1024;
    m.program = isa::assemble(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r3, 0xF0001000
        ldw r1, [r3+4]       ; symbolic MMIO read
        cmpi r1, 0
        jeq zero
        movi r2, 1
        hlt
    zero:
        movi r2, 0
        hlt
    )");
    m.deviceSetup = [](DeviceSet &devices) {
        devices.add(std::make_unique<vm::MmioNic>());
    };
    Engine engine(m, config);
    RunResult r = engine.run();
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_GT(engine.stats().get("engine.symbolic_hardware_reads"), 0u);
}

TEST(Engine, MmioUnmappedAccessCrashes)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi r3, 0xF0FF0000  ; MMIO window, no device there
        ldw r1, [r3]
        hlt
    )"),
                  EngineConfig{});
    engine.run();
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::Crashed);
}

TEST(Engine, SymbolicPointerWindowConstrains)
{
    // With a small window, a wide symbolic pointer gets constrained
    // into one window (the paper's soft page-granularity constraint).
    EngineConfig config;
    config.symPointerWindow = 32;
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 200  ; wider than the 32-byte window
        movi r3, 0x4000
        add r3, r1
        ldb r2, [r3]
        hlt
    )"),
                  config);
    engine.run();
    EXPECT_GT(engine.stats().get(
                  "engine.symbolic_pointer_window_constrained"),
              0u);
    // The surviving path's pointer must fit one 32-byte window.
    const auto &state = *engine.allStates()[0];
    uint64_t lo = 0, hi = 0;
    ASSERT_TRUE(engine.solver()
                    .getRange(state.constraints,
                              state.cpu.regs[1].toExpr(engine.builder()),
                              &lo, &hi)
                    .isSat());
    EXPECT_LE(hi - lo, 31u);
}

TEST(Engine, ForkStatePluginApi)
{
    // `site` is a jump target, so it leads its own translation block:
    // a fork at its first instruction re-executes only that block in
    // the child, preserving the injected register value.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        movi r1, 5
        jmp site
    site:
        cmpi r1, 0
        jeq injected
        movi r2, 1
        hlt
    injected:
        movi r2, 2
        hlt
    )"),
                  EngineConfig{});
    // Eagerly fork at `site` and make the child take the failure
    // value — the environment-behavior injection DDT+ uses.
    vm::MachineConfig m2 = machineFor("nop\n"); // for symbol lookup only
    (void)m2;
    bool done = false;
    engine.events().onInstrTranslation.subscribe(
        [&](ExecutionState &, uint32_t, const isa::Instruction &instr,
            bool *mark) {
            if (instr.op == isa::Opcode::Cmp ||
                instr.op == isa::Opcode::CmpI)
                *mark = true;
        });
    engine.events().onInstrExecution.subscribe(
        [&](ExecutionState &state, uint32_t) {
            if (done)
                return;
            done = true;
            ExecutionState *child = engine.forkState(state);
            ASSERT_NE(child, nullptr);
            child->cpu.regs[1] = core::Value(0u);
        });
    engine.run();
    std::vector<uint32_t> results = finalRegValues(engine, 2);
    EXPECT_EQ(results, (std::vector<uint32_t>{1, 2}));
}

TEST(Engine, IretRestoresSymbolicFlags)
{
    // Flags packed/unpacked across an interrupt survive even when
    // they are symbolic at delivery time.
    Engine engine(machineFor(R"(
        .entry main
        .org 0x100
        .space 0xC0
        .word handler        ; vector 0x30
        .org 0x400
    main:
        movi sp, 0x8000
        s2e_symrange r1, 0, 9
        cmpi r1, 5           ; symbolic flags now live
        int 0x30             ; push/pop them across the syscall
        jb less
        movi r2, 1
        hlt
    less:
        movi r2, 2
        hlt
    handler:
        iret
    )"),
                  EngineConfig{});
    RunResult r = engine.run();
    // The branch after iret still sees the symbolic comparison.
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(finalRegValues(engine, 2), (std::vector<uint32_t>{1, 2}));
}

TEST(Engine, StatsTrackSolverAndForks)
{
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 5
        jb a
    a:  hlt
    )"),
                  EngineConfig{});
    engine.run();
    EXPECT_GT(engine.solver().stats().get("solver.queries"), 0u);
    EXPECT_EQ(engine.stats().get("engine.forks"), 1u);
    EXPECT_GT(engine.stats().get("engine.memory_high_watermark"), 0u);
}

// --- Solver resilience: graceful degradation under injected faults ---

TEST(Engine, FaultInjectedForkPointDegradesNotDrops)
{
    // Force Unknown on the two checkBranch queries at the only fork
    // point. The engine must suppress the fork, follow the
    // concrete-evaluated side, and finish the run — never lose both
    // sides, never pretend the branch was infeasible.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        cmpi r1, 100
        jb less
        movi r2, 2
        hlt
    less:
        movi r2, 1
        hlt
    )"),
                  EngineConfig{});
    int degrade_events = 0;
    bool saw_fatal = false;
    engine.events().onSolverDegraded.subscribe(
        [&](ExecutionState &, const SolverDegradeInfo &info) {
            degrade_events++;
            saw_fatal = saw_fatal || info.fatal;
        });
    // Queries 1+2 = checkBranch's two sides; query 3 (the degradation
    // getValue fallback) succeeds and picks the concrete side.
    solver::FaultPolicy policy;
    policy.enabled = true;
    policy.triggerQueries = {1, 2};
    engine.solver().setFaultPolicy(policy);

    RunResult r = engine.run();
    EXPECT_EQ(r.forks, 0u); // fork suppressed...
    EXPECT_EQ(r.statesCreated, 1u);
    EXPECT_EQ(r.completed, 1u); // ...but the run completes
    EXPECT_EQ(r.solverFailures, 0u);
    EXPECT_EQ(r.degradedStates, 1u);
    EXPECT_GE(degrade_events, 1);
    EXPECT_FALSE(saw_fatal);
    EXPECT_GT(engine.stats().get("engine.solver_degraded"), 0u);
    EXPECT_GT(engine.stats().get("engine.forks_suppressed_degraded"), 0u);
    // The surviving state took exactly one side under a constraint
    // (never both dropped): r2 is 1 or 2 and the state is degraded.
    const auto &s = *engine.allStates()[0];
    EXPECT_TRUE(s.degraded);
    EXPECT_GE(s.degradeCount, 1u);
    uint32_t r2 = s.cpu.regs[2].concrete();
    EXPECT_TRUE(r2 == 1 || r2 == 2);
    EXPECT_FALSE(s.constraints.empty());
}

TEST(Engine, UnknownPlusUnsatBranchForcesDefiniteSideWithoutFallback)
{
    // Degraded branch with one *definite* side: the true side times
    // out but the false side is proved infeasible, so the true side is
    // forced — the engine must take it directly, without spending the
    // concretization getValue query the both-Unknown path needs.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        movi r2, 0
        cmpi r1, 10
        jb low
        hlt                ; r1 >= 10: no further branches
    low:
        cmpi r1, 20        ; under r1 < 10: true side forced
        jb lower
        movi r2, 9         ; infeasible side
        hlt
    lower:
        movi r2, 1
        hlt
    )"),
                  EngineConfig{});
    // Queries 1+2 fork the first branch. Query 3 (second branch, true
    // side) is forced Unknown; query 4 (false side, r1 >= 20 under
    // r1 < 10) is genuinely Unsat.
    solver::FaultPolicy policy;
    policy.enabled = true;
    policy.triggerQueries = {3};
    engine.solver().setFaultPolicy(policy);

    RunResult r = engine.run();
    EXPECT_EQ(r.forks, 1u);
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(r.completed, 2u);
    EXPECT_EQ(r.solverFailures, 0u);
    EXPECT_EQ(r.degradedStates, 1u);
    EXPECT_GT(engine.stats().get("engine.forks_suppressed_degraded"), 0u);
    // Exactly 4 facade queries: the forced side needed no getValue.
    EXPECT_EQ(engine.solver().queryCount(), 4u);
    for (const auto &s : engine.allStates()) {
        ASSERT_TRUE(s->cpu.regs[2].isConcrete());
        uint32_t r2 = s->cpu.regs[2].concrete();
        if (s->degraded) {
            // The degraded path took the forced (feasible) side, never
            // the infeasible r2 = 9 one.
            EXPECT_EQ(r2, 1u);
            EXPECT_GE(s->degradeCount, 1u);
        } else {
            EXPECT_EQ(r2, 0u);
        }
    }
}

TEST(Engine, FaultInjectedConcretizeKillsWithSolverFailure)
{
    // Every query returns Unknown: the store-address concretization
    // cannot produce a value, so the state dies as SolverFailure (not
    // Unsat — the path was never proved infeasible).
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        stw [r1], r1       ; symbolic store address -> concretize
        hlt
    )"),
                  EngineConfig{});
    solver::FaultPolicy policy;
    policy.enabled = true;
    policy.unknownRate = 1.0;
    engine.solver().setFaultPolicy(policy);

    RunResult r = engine.run();
    EXPECT_EQ(r.solverFailures, 1u);
    EXPECT_EQ(r.degradedStates, 0u);
    EXPECT_EQ(engine.allStates()[0]->status, StateStatus::SolverFailure);
    EXPECT_GT(engine.stats().get("engine.solver_failures"), 0u);
}

TEST(Engine, RateBasedFaultRunCompletesAndAccounts)
{
    // 10%-Unknown storm over a multi-branch program: the run must
    // complete without panic, and every state is accounted for —
    // cleanly completed, degraded, or killed as a solver failure.
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        s2e_symreg r2
        cmpi r1, 10
        jb a
    a:  cmpi r2, 20
        jb c
    c:  cmpi r1, 50
        jb e
    e:  hlt
    )"),
                  EngineConfig{});
    solver::FaultPolicy policy;
    policy.enabled = true;
    policy.seed = 7;
    policy.unknownRate = 0.10;
    engine.solver().setFaultPolicy(policy);

    RunResult r = engine.run();
    EXPECT_GT(engine.solver().stats().get("solver.faults_injected"), 0u);
    // Every created state ended in an accounted bucket.
    size_t accounted = 0;
    for (const auto &s : engine.allStates()) {
        EXPECT_FALSE(s->isActive());
        switch (s->status) {
          case StateStatus::Halted:
          case StateStatus::Killed:
          case StateStatus::SolverFailure:
            accounted++;
            break;
          default:
            break;
        }
    }
    EXPECT_EQ(accounted, r.statesCreated);
    EXPECT_EQ(r.completed + r.solverFailures, r.statesCreated);
    // The storm actually bit somewhere: at least one degradation or
    // failure was recorded (seed 7 at 10% over dozens of queries).
    EXPECT_GE(engine.stats().get("engine.solver_degraded") +
                  engine.stats().get("engine.solver_failures"),
              1u);
}

TEST(Engine, DegradedFlagInheritedByForkedChildren)
{
    // A degradation before a later fork point marks both resulting
    // paths as best-effort (the blind spot taints the whole subtree).
    Engine engine(machineFor(R"(
        .entry main
    main:
        movi sp, 0x8000
        s2e_symreg r1
        s2e_symreg r2
        cmpi r1, 100
        jb less
    less:
        cmpi r2, 7
        jb tiny
    tiny:
        hlt
    )"),
                  EngineConfig{});
    // Degrade only the first branch (queries 1 and 2), let everything
    // after succeed (query 3 = fallback getValue, 4+5 = second branch).
    solver::FaultPolicy policy;
    policy.enabled = true;
    policy.triggerQueries = {1, 2};
    engine.solver().setFaultPolicy(policy);

    RunResult r = engine.run();
    EXPECT_EQ(r.forks, 1u); // second branch still forks
    EXPECT_EQ(r.statesCreated, 2u);
    EXPECT_EQ(r.degradedStates, 2u); // child inherited the flag
    for (const auto &s : engine.allStates())
        EXPECT_TRUE(s->degraded);
}

} // namespace
} // namespace s2e::core
