/**
 * @file
 * Plugin base class.
 *
 * A plugin is a selector (influences path exploration) or an analyzer
 * (passively observes paths); both use the same interface (paper
 * §4.2). Plugins subscribe to EventHub signals in their constructor
 * and keep per-path data in PluginState objects keyed by the plugin
 * instance (see ExecutionState::pluginState).
 */

#ifndef S2E_PLUGINS_PLUGIN_HH
#define S2E_PLUGINS_PLUGIN_HH

#include "core/engine.hh"

namespace s2e::plugins {

using core::Engine;
using core::ExecutionState;

/** Generic per-path counter, for plugins that just need to bound
 *  how often something happens along one path. */
struct CounterState : public core::PluginState {
    uint64_t count = 0;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<CounterState>(*this);
    }
};

/** Base class for all selectors and analyzers. */
class Plugin
{
  public:
    explicit Plugin(Engine &engine) : engine_(engine) {}
    virtual ~Plugin() = default;
    Plugin(const Plugin &) = delete;
    Plugin &operator=(const Plugin &) = delete;

    virtual const char *name() const = 0;

    Engine &engine() { return engine_; }

  protected:
    Engine &engine_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_PLUGIN_HH
