/**
 * @file
 * PrivacyAnalyzer — the paper's §6.1.4 sketch: "by monitoring the
 * flow of symbolic input values (e.g. credit card numbers) through
 * the software stack, S2E could tell whether any of the data leaks
 * outside the system."
 *
 * Secrets are symbolic variables registered with markSecret(); the
 * analyzer watches everything that leaves the system (port and MMIO
 * writes) and reports a leak whenever the outgoing value's expression
 * depends on a secret variable. Because symbolic data flows lazily
 * through memory and registers, any copying/massaging the guest does
 * is tracked for free — the in-vivo advantage the paper highlights.
 */

#ifndef S2E_PLUGINS_PRIVACY_HH
#define S2E_PLUGINS_PRIVACY_HH

#include <unordered_set>

#include "plugins/memchecker.hh" // BugReport
#include "plugins/plugin.hh"

namespace s2e::plugins {

class PrivacyAnalyzer : public Plugin
{
  public:
    explicit PrivacyAnalyzer(Engine &engine);

    const char *name() const override { return "privacy-analyzer"; }

    /** Register a symbolic variable as secret. */
    void markSecret(expr::ExprRef variable);

    /** Mark every symbolic byte currently overlaying [addr, addr+len)
     *  of the state as secret. */
    void markSecretRange(core::ExecutionState &state, uint32_t addr,
                         uint32_t len);

    const std::vector<BugReport> &leaks() const { return leaks_; }

  private:
    bool dependsOnSecret(expr::ExprRef e) const;

    std::unordered_set<uint64_t> secretVarIds_;
    std::vector<BugReport> leaks_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_PRIVACY_HH
