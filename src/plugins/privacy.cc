#include "plugins/privacy.hh"

namespace s2e::plugins {

PrivacyAnalyzer::PrivacyAnalyzer(Engine &engine) : Plugin(engine)
{
    engine_.events().onPortAccess.subscribe(
        [this](ExecutionState &state, uint16_t port,
               const core::Value &value, bool is_write) {
            if (!is_write || value.isConcrete())
                return;
            if (!dependsOnSecret(value.expr()))
                return;
            std::string msg = strprintf(
                "secret-derived data written to port 0x%x", port);
            leaks_.push_back({state.id(), "privacy-leak", msg});
            engine_.events().onBug.emit(state, "privacy-leak: " + msg);
        });

    // MMIO writes leave the system too; they reach devices through
    // the memory-access event with a device address.
    engine_.events().onMemoryAccess.subscribe(
        [this](ExecutionState &state, const core::MemAccessInfo &info) {
            if (!info.isWrite || info.addr < vm::kMmioBase)
                return;
            if (!info.value || info.value->isConcrete())
                return;
            if (!dependsOnSecret(info.value->expr()))
                return;
            std::string msg = strprintf(
                "secret-derived data written to MMIO 0x%x", info.addr);
            leaks_.push_back({state.id(), "privacy-leak", msg});
            engine_.events().onBug.emit(state, "privacy-leak: " + msg);
        });
}

void
PrivacyAnalyzer::markSecret(expr::ExprRef variable)
{
    S2E_ASSERT(variable->isVariable(), "markSecret needs a variable");
    secretVarIds_.insert(variable->varId());
}

void
PrivacyAnalyzer::markSecretRange(core::ExecutionState &state,
                                 uint32_t addr, uint32_t len)
{
    auto &bld = engine_.builder();
    for (uint32_t i = 0; i < len; ++i) {
        if (!state.mem.inBounds(addr + i, 1) ||
            !state.mem.rangeHasSymbolic(addr + i, 1))
            continue;
        expr::ExprRef byte = state.mem.byteExpr(addr + i, bld);
        if (byte->isVariable())
            secretVarIds_.insert(byte->varId());
    }
}

namespace {
bool
dependsOn(expr::ExprRef e, const std::unordered_set<uint64_t> &ids,
          std::unordered_set<expr::ExprRef> &seen)
{
    if (!seen.insert(e).second)
        return false;
    if (e->isVariable())
        return ids.count(e->varId()) != 0;
    for (unsigned i = 0; i < e->arity(); ++i)
        if (dependsOn(e->kid(i), ids, seen))
            return true;
    return false;
}
} // namespace

bool
PrivacyAnalyzer::dependsOnSecret(expr::ExprRef e) const
{
    std::unordered_set<expr::ExprRef> seen;
    return dependsOn(e, secretVarIds_, seen);
}

} // namespace s2e::plugins
