/**
 * @file
 * ExecutionTracer analyzer (paper §4.1): selectively records executed
 * instructions, memory accesses and hardware I/O along each path.
 * REV+ feeds these traces to its offline CFG reconstructor.
 */

#ifndef S2E_PLUGINS_TRACER_HH
#define S2E_PLUGINS_TRACER_HH

#include <mutex>

#include "plugins/plugin.hh"

namespace s2e::plugins {

/** One trace record. */
struct TraceEntry {
    enum class Kind : uint8_t { Block, MemRead, MemWrite, PortIn, PortOut };
    Kind kind;
    uint32_t pc;      ///< block pc (Block) or current block pc
    uint32_t addr;    ///< memory address / port number
    uint32_t value;   ///< data value (concrete or example)
    uint8_t size;
};

/** Per-path trace storage. */
struct TraceState : public core::PluginState {
    std::vector<TraceEntry> entries;
    uint32_t currentBlockPc = 0;
    /** Entries that passed the filters but were discarded because the
     *  path hit maxEntriesPerPath — a truncated trace is detectable,
     *  never silent (REV+'s CFG would otherwise just look sparser). */
    uint64_t dropped = 0;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<TraceState>(*this);
    }
};

/** Configurable tracer. */
class ExecutionTracer : public Plugin
{
  public:
    struct Config {
        bool traceBlocks = true;
        bool traceMemory = false;
        bool tracePortIo = true;
        /** Record MMIO accesses as hardware I/O (bank-switched NICs
         *  expose their whole protocol through MMIO). */
        bool traceMmio = true;
        /** Restrict block tracing to these ranges (empty = all). */
        std::vector<std::pair<uint32_t, uint32_t>> ranges;
        size_t maxEntriesPerPath = 1u << 20;
    };

    explicit ExecutionTracer(Engine &engine)
        : ExecutionTracer(engine, Config())
    {
    }
    ExecutionTracer(Engine &engine, Config config);

    const char *name() const override { return "tracer"; }

    /** The trace of a given state (nullptr if none was recorded). */
    const TraceState *traceOf(const ExecutionState &state) const
    {
        return static_cast<const TraceState *>(
            state.findPluginState(this));
    }

    /** Traces of all terminated states, appended at kill time. Read
     *  only while the engine is quiescent (after run()); kill events
     *  append concurrently during a parallel run. */
    const std::vector<std::pair<int, TraceState>> &finishedTraces() const
    {
        return finished_;
    }

  private:
    bool
    inRanges(uint32_t pc) const
    {
        if (config_.ranges.empty())
            return true;
        for (const auto &[lo, hi] : config_.ranges)
            if (pc >= lo && pc < hi)
                return true;
        return false;
    }

    /** False (and counts the drop) once the path is at capacity. Only
     *  called for entries that passed the filters, so `dropped` never
     *  counts records that would have been skipped anyway. */
    bool
    admit(TraceState *ts)
    {
        if (ts->entries.size() < config_.maxEntriesPerPath)
            return true;
        ts->dropped++;
        return false;
    }

    Config config_;
    /** Guards finished_ (kill events fire from every worker). */
    std::mutex finishedMu_;
    std::vector<std::pair<int, TraceState>> finished_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_TRACER_HH
