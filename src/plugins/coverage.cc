#include "plugins/coverage.hh"

#include "plugins/searchers.hh"
#include "support/logging.hh"

namespace s2e::plugins {

StaticBlocks
staticBasicBlocks(const isa::Program &program, uint32_t lo, uint32_t hi)
{
    // Gather the raw bytes of [lo, hi) from the program sections.
    std::vector<uint8_t> bytes(hi - lo, 0);
    std::vector<bool> present(hi - lo, false);
    for (const auto &section : program.sections) {
        for (size_t i = 0; i < section.bytes.size(); ++i) {
            uint32_t addr = section.addr + static_cast<uint32_t>(i);
            if (addr >= lo && addr < hi) {
                bytes[addr - lo] = section.bytes[i];
                present[addr - lo] = true;
            }
        }
    }

    // Pass 1: linear sweep; collect instruction starts, terminator
    // ends and direct branch targets.
    std::set<uint32_t> instr_starts;
    std::set<uint32_t> leaders;
    leaders.insert(lo);
    uint32_t pc = lo;
    while (pc < hi) {
        if (!present[pc - lo]) {
            pc++;
            continue;
        }
        isa::Instruction instr;
        if (!isa::decode(bytes.data() + (pc - lo), hi - pc, instr)) {
            pc++; // resynchronize
            continue;
        }
        instr_starts.insert(pc);
        uint32_t next = pc + instr.length;
        switch (instr.op) {
          case isa::Opcode::Jmp:
          case isa::Opcode::Call:
            if (instr.imm >= lo && instr.imm < hi)
                leaders.insert(instr.imm);
            leaders.insert(next);
            break;
          case isa::Opcode::Jcc:
            if (instr.imm >= lo && instr.imm < hi)
                leaders.insert(instr.imm);
            leaders.insert(next);
            break;
          default:
            if (isa::isBlockTerminator(instr.op))
                leaders.insert(next);
            break;
        }
        pc = next;
    }

    // Pass 2: block starts are leaders that coincide with decoded
    // instruction starts.
    StaticBlocks out;
    for (uint32_t leader : leaders)
        if (instr_starts.count(leader))
            out.starts.insert(leader);
    return out;
}

CoverageTracker::CoverageTracker(
    Engine &engine, std::vector<std::pair<uint32_t, uint32_t>> ranges)
    : Plugin(engine), ranges_(std::move(ranges)),
      start_(std::chrono::steady_clock::now())
{
    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &, const dbt::TranslationBlock &tb) {
            std::lock_guard<std::mutex> lock(mu_);
            if (seenTbPcs_.count(tb.pc))
                return;
            seenTbPcs_.insert(tb.pc);
            bool grew = false;
            for (uint32_t pc : tb.instrPcs) {
                if (inRanges(pc) && coveredPcs_.insert(pc).second)
                    grew = true;
            }
            if (grew) {
                epoch_.fetch_add(1, std::memory_order_release);
                double t = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() - start_)
                               .count();
                timeline_.emplace_back(t, coveredPcs_.size());
            }
        });
}

size_t
CoverageTracker::coveredBlocks(const StaticBlocks &blocks) const
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t covered = 0;
    for (uint32_t start : blocks.starts)
        if (coveredPcs_.count(start))
            covered++;
    return covered;
}

core::ExecutionState *
MaxCoverageSearcher::select(
    const std::vector<core::ExecutionState *> &active)
{
    for (core::ExecutionState *s : active)
        if (!coverage_.isCovered(s->cpu.pc))
            return s;
    return active[rng_.below(active.size())];
}

} // namespace s2e::plugins
