#include "plugins/tracer.hh"

#include "vm/device.hh"

namespace s2e::plugins {

ExecutionTracer::ExecutionTracer(Engine &engine, Config config)
    : Plugin(engine), config_(std::move(config))
{
    if (config_.traceBlocks) {
        engine_.events().onBlockExecute.subscribe(
            [this](ExecutionState &state,
                   const dbt::TranslationBlock &tb) {
                auto *ts = state.pluginState<TraceState>(this);
                ts->currentBlockPc = tb.pc;
                if (!inRanges(tb.pc) || !admit(ts))
                    return;
                ts->entries.push_back(
                    {TraceEntry::Kind::Block, tb.pc, 0, 0, 0});
            });
    }
    if (config_.traceMemory || config_.traceMmio) {
        engine_.events().onMemoryAccess.subscribe(
            [this](ExecutionState &state,
                   const core::MemAccessInfo &info) {
                auto *ts = state.pluginState<TraceState>(this);
                if (!inRanges(ts->currentBlockPc))
                    return;
                bool is_mmio = info.addr >= vm::kMmioBase;
                uint32_t v = info.value && info.value->isConcrete()
                                 ? info.value->concrete()
                                 : 0;
                if (is_mmio && config_.traceMmio) {
                    // MMIO device accesses are hardware I/O.
                    if (!admit(ts))
                        return;
                    ts->entries.push_back(
                        {info.isWrite ? TraceEntry::Kind::PortOut
                                      : TraceEntry::Kind::PortIn,
                         ts->currentBlockPc, info.addr, v,
                         static_cast<uint8_t>(info.size)});
                    return;
                }
                if (!config_.traceMemory || !admit(ts))
                    return;
                ts->entries.push_back(
                    {info.isWrite ? TraceEntry::Kind::MemWrite
                                  : TraceEntry::Kind::MemRead,
                     ts->currentBlockPc, info.addr, v,
                     static_cast<uint8_t>(info.size)});
            });
    }
    if (config_.tracePortIo) {
        engine_.events().onPortAccess.subscribe(
            [this](ExecutionState &state, uint16_t port,
                   const core::Value &value, bool is_write) {
                auto *ts = state.pluginState<TraceState>(this);
                if (!inRanges(ts->currentBlockPc) || !admit(ts))
                    return;
                uint32_t v =
                    value.isConcrete() ? value.concrete() : 0;
                ts->entries.push_back(
                    {is_write ? TraceEntry::Kind::PortOut
                              : TraceEntry::Kind::PortIn,
                     ts->currentBlockPc, port, v, 4});
            });
    }
    engine_.events().onStateKill.subscribe([this](ExecutionState &state) {
        const auto *ts = traceOf(state);
        // A fully-truncated trace (all entries dropped) still counts:
        // consumers must see that recording happened and was lossy.
        if (ts && (!ts->entries.empty() || ts->dropped > 0)) {
            std::lock_guard<std::mutex> lock(finishedMu_);
            finished_.emplace_back(state.id(), *ts);
        }
    });
}

} // namespace s2e::plugins
