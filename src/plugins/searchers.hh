/**
 * @file
 * Priority-based path selection (paper §4.1): DepthFirst,
 * BreadthFirst, Random and MaxCoverage searchers.
 */

#ifndef S2E_PLUGINS_SEARCHERS_HH
#define S2E_PLUGINS_SEARCHERS_HH

#include "core/engine.hh"
#include "support/rng.hh"

namespace s2e::plugins {

/** Newest state first (default engine behavior, re-exported). */
class DepthFirstSearcher : public core::Searcher
{
  public:
    const char *name() const override { return "depth-first"; }
    core::ExecutionState *
    select(const std::vector<core::ExecutionState *> &active) override
    {
        return active.back();
    }
};

/** Oldest state first. */
class BreadthFirstSearcher : public core::Searcher
{
  public:
    const char *name() const override { return "breadth-first"; }
    core::ExecutionState *
    select(const std::vector<core::ExecutionState *> &active) override
    {
        return active.front();
    }
};

/** Uniformly random state. */
class RandomSearcher : public core::Searcher
{
  public:
    explicit RandomSearcher(uint64_t seed = 1) : rng_(seed) {}
    const char *name() const override { return "random"; }
    core::ExecutionState *
    select(const std::vector<core::ExecutionState *> &active) override
    {
        return active[rng_.below(active.size())];
    }

  private:
    Rng rng_;
};

class CoverageTracker;

/**
 * Prefers states whose next block has not been covered yet, falling
 * back to random choice (works with CoverageTracker, paper §4.1).
 */
class MaxCoverageSearcher : public core::Searcher
{
  public:
    MaxCoverageSearcher(const CoverageTracker &coverage, uint64_t seed = 1)
        : coverage_(coverage), rng_(seed)
    {
    }
    const char *name() const override { return "max-coverage"; }
    core::ExecutionState *
    select(const std::vector<core::ExecutionState *> &active) override;

  private:
    const CoverageTracker &coverage_;
    Rng rng_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_SEARCHERS_HH
