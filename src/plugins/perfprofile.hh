/**
 * @file
 * PerformanceProfile analyzer (paper §6.1.3): counts instructions and
 * simulates a configurable cache/TLB/paging hierarchy along *every*
 * explored path, yielding the multi-path performance envelope that
 * single-path profilers (Valgrind/Oprofile) cannot produce.
 *
 * With findBestCase enabled it reproduces the paper's best-case-input
 * search: any path whose metric exceeds the best completed path so
 * far is abandoned (via the PathKiller mechanism).
 */

#ifndef S2E_PLUGINS_PERFPROFILE_HH
#define S2E_PLUGINS_PERFPROFILE_HH

#include "perf/cache.hh"
#include "plugins/plugin.hh"

namespace s2e::plugins {

/** Per-path simulated hierarchy. */
struct PerfState : public core::PluginState {
    PerfState() : hier(perf::MemoryHierarchy::Config()) {}
    explicit PerfState(const perf::MemoryHierarchy::Config &config)
        : hier(config)
    {
    }
    perf::MemoryHierarchy hier;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<PerfState>(*this);
    }
};

/** Final numbers for one path. */
struct PathPerf {
    int stateId;
    core::StateStatus status;
    uint64_t instructions;
    uint64_t l1iMisses;
    uint64_t l1dMisses;
    uint64_t l2Misses;
    uint64_t cacheMisses; ///< total across levels
    uint64_t tlbMisses;
    uint64_t pageFaults;
};

class PerformanceProfile : public Plugin
{
  public:
    struct Config {
        perf::MemoryHierarchy::Config hierarchy;
        /** Abandon paths whose instruction count exceeds the best
         *  completed path so far (best-case-input search). */
        bool findBestCase = false;
    };

    explicit PerformanceProfile(Engine &engine)
        : PerformanceProfile(engine, Config())
    {
    }
    PerformanceProfile(Engine &engine, Config config);

    const char *name() const override { return "performance-profile"; }

    /** Profiles of all terminated paths. */
    const std::vector<PathPerf> &results() const { return results_; }

    /** Envelope over completed (halted/killed) paths. */
    struct Envelope {
        uint64_t minInstructions = 0;
        uint64_t maxInstructions = 0;
        uint64_t minCacheMisses = 0;
        uint64_t maxCacheMisses = 0;
        uint64_t minPageFaults = 0;
        uint64_t maxPageFaults = 0;
        size_t paths = 0;
    };
    Envelope envelope() const;

    uint64_t pathsAbandoned() const { return abandoned_; }

  private:
    Config config_;
    std::vector<PathPerf> results_;
    uint64_t bestInstructions_ = ~0ULL;
    uint64_t abandoned_ = 0;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_PERFPROFILE_HH
