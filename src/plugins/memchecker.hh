/**
 * @file
 * MemoryChecker analyzer (paper §4.1): tracks guest heap allocations
 * through kernel-interface hooks and flags heap bugs in unit code —
 * out-of-bounds accesses (redzone hits), use-after-free, double free
 * and leaks at path termination. This is the checker DDT+ wires up
 * against the mini-kernel's alloc/free interface.
 */

#ifndef S2E_PLUGINS_MEMCHECKER_HH
#define S2E_PLUGINS_MEMCHECKER_HH

#include <map>
#include <mutex>

#include "plugins/annotation.hh"
#include "plugins/plugin.hh"

namespace s2e::plugins {

/** A bug found along some path. */
struct BugReport {
    int stateId;
    std::string kind; ///< "overflow", "use-after-free", "leak", ...
    std::string message;
};

/** Per-path heap book-keeping. */
struct HeapState : public core::PluginState {
    std::map<uint32_t, uint32_t> live;  ///< chunk addr -> size
    std::map<uint32_t, uint32_t> freed; ///< recently freed chunks
    uint32_t currentBlockPc = 0;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<HeapState>(*this);
    }
};

class MemoryChecker : public Plugin
{
  public:
    struct Config {
        uint32_t heapBase = 0;
        uint32_t heapEnd = 0;
        /** Accesses below this address are null dereferences. */
        uint32_t nullGuardEnd = 0;
        /** Guard bytes the allocator places after each chunk. */
        uint32_t redzone = 8;
        /** pc executed right after an allocation returns. */
        uint32_t allocReturnPc = 0;
        unsigned allocAddrReg = 1; ///< register holding chunk address
        unsigned allocSizeReg = 2; ///< register holding requested size
        /** pc of the free routine's entry. */
        uint32_t freeEntryPc = 0;
        unsigned freeAddrReg = 1;
        /** Only check accesses made by unit code. */
        bool unitOnly = true;
    };

    MemoryChecker(Engine &engine, Annotation &annotation, Config config);

    const char *name() const override { return "memory-checker"; }

    /** Only safe to call after Engine::run() returns. */
    const std::vector<BugReport> &reports() const { return reports_; }

    /** Bugs deduplicated by (kind, message). */
    size_t distinctBugs() const;

  private:
    void report(ExecutionState &state, const std::string &kind,
                const std::string &message);

    Config config_;
    // Engine callbacks fire on worker threads when numWorkers > 1; the
    // mutex serialises report() pushes. reports() is post-run only.
    mutable std::mutex mu_;
    std::vector<BugReport> reports_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_MEMCHECKER_HH
