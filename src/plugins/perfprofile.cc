#include "plugins/perfprofile.hh"

namespace s2e::plugins {

namespace {
PerfState *
perfStateFor(ExecutionState &state, const void *key,
             const perf::MemoryHierarchy::Config &config)
{
    auto *existing =
        static_cast<PerfState *>(state.findPluginState(key));
    if (existing)
        return existing;
    // First touch on this path: create with the configured hierarchy.
    auto *created = state.pluginState<PerfState>(key);
    *created = PerfState(config);
    return created;
}
} // namespace

PerformanceProfile::PerformanceProfile(Engine &engine, Config config)
    : Plugin(engine), config_(std::move(config))
{
    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &state, const dbt::TranslationBlock &tb) {
            auto *ps = perfStateFor(state, this, config_.hierarchy);
            for (uint32_t pc : tb.instrPcs)
                ps->hier.fetch(pc);
            if (config_.findBestCase &&
                state.instrCount > bestInstructions_) {
                abandoned_++;
                engine_.killState(state, core::StateStatus::Killed,
                                  "perf: exceeded best-case bound");
            }
        });

    engine_.events().onMemoryAccess.subscribe(
        [this](ExecutionState &state, const core::MemAccessInfo &info) {
            auto *ps = perfStateFor(state, this, config_.hierarchy);
            ps->hier.data(info.addr);
        });

    engine_.events().onStateKill.subscribe([this](ExecutionState &state) {
        const auto *ps =
            static_cast<const PerfState *>(state.findPluginState(this));
        if (!ps)
            return;
        PathPerf p;
        p.stateId = state.id();
        p.status = state.status;
        p.instructions = state.instrCount;
        p.l1iMisses = ps->hier.l1iMisses();
        p.l1dMisses = ps->hier.l1dMisses();
        p.l2Misses = ps->hier.l2Misses();
        p.cacheMisses = ps->hier.totalCacheMisses();
        p.tlbMisses = ps->hier.tlbMisses();
        p.pageFaults = ps->hier.pageFaults();
        results_.push_back(p);
        if (config_.findBestCase &&
            state.status == core::StateStatus::Halted &&
            state.instrCount < bestInstructions_)
            bestInstructions_ = state.instrCount;
    });
}

PerformanceProfile::Envelope
PerformanceProfile::envelope() const
{
    Envelope env;
    for (const auto &p : results_) {
        if (p.status != core::StateStatus::Halted &&
            p.status != core::StateStatus::Killed)
            continue;
        if (env.paths == 0) {
            env.minInstructions = env.maxInstructions = p.instructions;
            env.minCacheMisses = env.maxCacheMisses = p.cacheMisses;
            env.minPageFaults = env.maxPageFaults = p.pageFaults;
        } else {
            env.minInstructions =
                std::min(env.minInstructions, p.instructions);
            env.maxInstructions =
                std::max(env.maxInstructions, p.instructions);
            env.minCacheMisses =
                std::min(env.minCacheMisses, p.cacheMisses);
            env.maxCacheMisses =
                std::max(env.maxCacheMisses, p.cacheMisses);
            env.minPageFaults =
                std::min(env.minPageFaults, p.pageFaults);
            env.maxPageFaults =
                std::max(env.maxPageFaults, p.pageFaults);
        }
        env.paths++;
    }
    return env;
}

} // namespace s2e::plugins
