/**
 * @file
 * PathKiller selector (paper §4.1, §6.3): prunes paths that are no
 * longer of interest. Two policies:
 *
 *  - loop killer: a path whose program counter sequence repeats more
 *    than N times without contributing new coverage is stuck in a
 *    polling loop and gets killed;
 *  - stagnation killer: when *global* coverage has not grown for a
 *    configurable number of executed blocks, all paths but one are
 *    killed so exploration can move to the next entry point (the
 *    driver-exercise policy of §6.3).
 */

#ifndef S2E_PLUGINS_PATHKILLER_HH
#define S2E_PLUGINS_PATHKILLER_HH

#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "plugins/coverage.hh"
#include "plugins/plugin.hh"

namespace s2e::plugins {

/** Per-path loop bookkeeping. */
struct PathKillerState : public core::PluginState {
    std::unordered_map<uint32_t, uint32_t> blockVisits;
    /** Blocks this path has ever executed; reaching a new one is
     *  progress and resets the repeat counters. */
    std::unordered_set<uint32_t> seenBlocks;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<PathKillerState>(*this);
    }
};

class PathKiller : public Plugin
{
  public:
    struct Config {
        /** Kill a path after a block repeats this many times with no
         *  new global coverage (0 disables). */
        uint32_t maxLoopVisits = 0;
        /** Kill all paths but one after this many blocks execute with
         *  no new global coverage (0 disables). */
        uint64_t stagnationBlocks = 0;
    };

    PathKiller(Engine &engine, const CoverageTracker &coverage,
               Config config);

    const char *name() const override { return "path-killer"; }

    uint64_t pathsKilled() const { return killed_.load(); }
    uint64_t stagnationSweeps() const { return sweeps_.load(); }

  private:
    const CoverageTracker &coverage_;
    Config config_;
    // Shared across workers in a parallel run; the per-path loop
    // bookkeeping lives in PathKillerState (thread-confined with its
    // state). Stagnation detection tolerates benign races — it is an
    // approximate global heuristic either way.
    std::atomic<uint64_t> killed_{0};
    std::atomic<uint64_t> sweeps_{0};
    std::atomic<uint64_t> blocksSinceGrowth_{0};
    std::atomic<uint64_t> lastEpoch_{0};
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_PATHKILLER_HH
