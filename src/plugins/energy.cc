#include "plugins/energy.hh"

namespace s2e::plugins {

EnergyProfile::EnergyProfile(Engine &engine, PowerModel model)
    : Plugin(engine), model_(model)
{
    // Translate-once/execute-many: the per-block cost is summed at
    // translation time and merely added per execution.
    engine_.events().onInstrTranslation.subscribe(
        [this](ExecutionState &, uint32_t pc, const isa::Instruction &i,
               bool *) { blockCost_[pc] = costOf(i.op); });

    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &state, const dbt::TranslationBlock &tb) {
            auto *es = state.pluginState<EnergyState>(this);
            for (uint32_t pc : tb.instrPcs) {
                auto it = blockCost_.find(pc);
                es->picojoules +=
                    it != blockCost_.end() ? it->second : model_.alu;
            }
        });

    engine_.events().onStateKill.subscribe([this](ExecutionState &state) {
        const auto *es = static_cast<const EnergyState *>(
            state.findPluginState(this));
        if (es)
            results_.push_back(
                {state.id(), state.status, es->picojoules});
    });
}

double
EnergyProfile::costOf(isa::Opcode op) const
{
    using isa::Opcode;
    switch (op) {
      case Opcode::Ldb:
      case Opcode::Ldbs:
      case Opcode::Ldh:
      case Opcode::Ldhs:
      case Opcode::Ldw:
      case Opcode::Stb:
      case Opcode::Sth:
      case Opcode::Stw:
      case Opcode::Push:
      case Opcode::Pop:
        return model_.memory;
      case Opcode::Mul:
      case Opcode::MulI:
      case Opcode::UDiv:
      case Opcode::SDiv:
      case Opcode::URem:
      case Opcode::SRem:
        return model_.multiplyDivide;
      case Opcode::InI:
      case Opcode::InR:
      case Opcode::OutI:
      case Opcode::OutR:
        return model_.io;
      case Opcode::Jmp:
      case Opcode::JmpR:
      case Opcode::Jcc:
      case Opcode::Call:
      case Opcode::CallR:
      case Opcode::Ret:
      case Opcode::Int:
      case Opcode::Iret:
        return model_.control;
      default:
        return model_.alu;
    }
}

std::pair<double, double>
EnergyProfile::envelope() const
{
    double lo = 0, hi = 0;
    bool first = true;
    for (const auto &p : results_) {
        if (p.status != core::StateStatus::Halted &&
            p.status != core::StateStatus::Killed)
            continue;
        if (first) {
            lo = hi = p.picojoules;
            first = false;
        } else {
            lo = std::min(lo, p.picojoules);
            hi = std::max(hi, p.picojoules);
        }
    }
    return {lo, hi};
}

int
EnergyProfile::hungriestPath() const
{
    int id = -1;
    double best = -1;
    for (const auto &p : results_) {
        if (p.status != core::StateStatus::Halted &&
            p.status != core::StateStatus::Killed)
            continue;
        if (p.picojoules > best) {
            best = p.picojoules;
            id = p.stateId;
        }
    }
    return id;
}

} // namespace s2e::plugins
