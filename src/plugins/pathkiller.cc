#include "plugins/pathkiller.hh"

namespace s2e::plugins {

PathKiller::PathKiller(Engine &engine, const CoverageTracker &coverage,
                       Config config)
    : Plugin(engine), coverage_(coverage), config_(config)
{
    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &state, const dbt::TranslationBlock &tb) {
            uint64_t epoch = coverage_.coverageEpoch();
            if (epoch != lastEpoch_.load(std::memory_order_relaxed)) {
                lastEpoch_.store(epoch, std::memory_order_relaxed);
                blocksSinceGrowth_.store(0, std::memory_order_relaxed);
            } else {
                blocksSinceGrowth_.fetch_add(1,
                                             std::memory_order_relaxed);
            }

            // Loop killer: repeats only count while the path makes no
            // progress of its own (no block it has never seen).
            if (config_.maxLoopVisits) {
                auto *ps = state.pluginState<PathKillerState>(this);
                if (ps->seenBlocks.insert(tb.pc).second) {
                    ps->blockVisits.clear();
                } else {
                    uint32_t visits = ++ps->blockVisits[tb.pc];
                    if (visits > config_.maxLoopVisits) {
                        killed_.fetch_add(1, std::memory_order_relaxed);
                        engine_.killState(
                            state, core::StateStatus::Killed,
                            strprintf("path-killer: block 0x%x "
                                      "repeated %u times without "
                                      "progress",
                                      tb.pc, visits));
                        return;
                    }
                }
            }

            // Stagnation killer: keep only the current state. The
            // exchange makes exactly one worker run the sweep when
            // several cross the threshold together.
            if (config_.stagnationBlocks &&
                blocksSinceGrowth_.load(std::memory_order_relaxed) >
                    config_.stagnationBlocks &&
                blocksSinceGrowth_.exchange(0,
                                            std::memory_order_relaxed) >
                    config_.stagnationBlocks) {
                sweeps_.fetch_add(1, std::memory_order_relaxed);
                for (ExecutionState *other : engine_.activeStates()) {
                    if (other != &state) {
                        killed_.fetch_add(1, std::memory_order_relaxed);
                        engine_.killState(
                            *other, core::StateStatus::Killed,
                            "path-killer: coverage stagnation sweep");
                    }
                }
            }
        });
}

} // namespace s2e::plugins
