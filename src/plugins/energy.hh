/**
 * @file
 * EnergyProfile analyzer — the paper's §6.1.4 "other uses" sketch:
 * "given a power consumption model, S2E could find energy-hogging
 * paths and help the developer optimize them."
 *
 * The power model assigns an energy cost to each instruction class
 * (ALU, memory, multiply/divide, I/O); per-path totals accumulate in
 * PluginState. Multi-path exploration then yields the energy envelope
 * of an input family and the concrete inputs of the hungriest path.
 */

#ifndef S2E_PLUGINS_ENERGY_HH
#define S2E_PLUGINS_ENERGY_HH

#include "plugins/plugin.hh"

namespace s2e::plugins {

/** Per-instruction-class energy cost, in arbitrary pico-joule units. */
struct PowerModel {
    double alu = 1.0;
    double memory = 3.0;      ///< loads/stores
    double multiplyDivide = 6.0;
    double io = 10.0;         ///< port and MMIO accesses
    double control = 1.5;     ///< branches/calls/returns
};

/** Per-path accumulated energy. */
struct EnergyState : public core::PluginState {
    double picojoules = 0;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<EnergyState>(*this);
    }
};

class EnergyProfile : public Plugin
{
  public:
    EnergyProfile(Engine &engine, PowerModel model = PowerModel());

    const char *name() const override { return "energy-profile"; }

    struct PathEnergy {
        int stateId;
        core::StateStatus status;
        double picojoules;
    };

    const std::vector<PathEnergy> &results() const { return results_; }

    /** Min/max over completed paths. */
    std::pair<double, double> envelope() const;

    /** State id of the hungriest completed path (-1 if none). */
    int hungriestPath() const;

  private:
    double costOf(isa::Opcode op) const;

    PowerModel model_;
    /** Per-translation-block energy, computed once at translation. */
    std::unordered_map<uint32_t, double> blockCost_;
    std::vector<PathEnergy> results_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_ENERGY_HH
