/**
 * @file
 * Basic-block coverage analyzer.
 *
 * Tracks which guest instructions have executed and reports coverage
 * against a *static* basic-block partition of a code range, the
 * metric used by Table 5 and Figs 6/7 of the paper. Also records a
 * coverage-over-time series for the Fig 6 reproduction.
 */

#ifndef S2E_PLUGINS_COVERAGE_HH
#define S2E_PLUGINS_COVERAGE_HH

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <unordered_set>

#include "plugins/plugin.hh"

namespace s2e::plugins {

/** Static basic-block partition of a code range. */
struct StaticBlocks {
    std::set<uint32_t> starts;
    size_t count() const { return starts.size(); }
};

/**
 * Compute static basic blocks in [lo, hi) by linear-sweep decoding:
 * block boundaries at branch targets and after terminators. Bytes
 * that fail to decode resynchronize at the next offset.
 */
StaticBlocks staticBasicBlocks(const isa::Program &program, uint32_t lo,
                               uint32_t hi);

/** Global (cross-path) coverage tracker. */
class CoverageTracker : public Plugin
{
  public:
    /**
     * @param ranges restrict tracking to these code ranges (empty =
     *        track everything).
     */
    CoverageTracker(Engine &engine,
                    std::vector<std::pair<uint32_t, uint32_t>> ranges = {});

    const char *name() const override { return "coverage"; }

    /** Distinct covered instruction addresses. */
    size_t
    coveredInstructions() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return coveredPcs_.size();
    }

    /** Covered blocks of a static partition. */
    size_t coveredBlocks(const StaticBlocks &blocks) const;

    /** Coverage fraction against a static partition. */
    double
    coverageFraction(const StaticBlocks &blocks) const
    {
        return blocks.count() == 0
                   ? 0.0
                   : static_cast<double>(coveredBlocks(blocks)) /
                         static_cast<double>(blocks.count());
    }

    bool
    isCovered(uint32_t pc) const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return coveredPcs_.count(pc) != 0;
    }

    /** Monotonic counter bumped whenever new coverage appears; cheap
     *  stagnation detection for PathKiller. Lock-free. */
    uint64_t
    coverageEpoch() const
    {
        return epoch_.load(std::memory_order_acquire);
    }

    /** (wall-seconds, covered-instruction-count) series. Read only
     *  while the engine is quiescent (after run()). */
    const std::vector<std::pair<double, size_t>> &timeline() const
    {
        return timeline_;
    }

  private:
    bool
    inRanges(uint32_t pc) const
    {
        if (ranges_.empty())
            return true;
        for (const auto &[lo, hi] : ranges_)
            if (pc >= lo && pc < hi)
                return true;
        return false;
    }

    std::vector<std::pair<uint32_t, uint32_t>> ranges_;
    /** Guards the coverage sets and the timeline; block-execute events
     *  arrive from every worker in a parallel run. */
    mutable std::mutex mu_;
    std::unordered_set<uint32_t> coveredPcs_;
    std::unordered_set<uint32_t> seenTbPcs_;
    std::atomic<uint64_t> epoch_{0};
    std::vector<std::pair<double, size_t>> timeline_;
    std::chrono::steady_clock::time_point start_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_COVERAGE_HH
