/**
 * @file
 * DataRaceDetector analyzer (paper §4.1). In the single-CPU guest,
 * the race class that matters for drivers is interrupt-handler vs
 * mainline: a location written from interrupt context and accessed
 * from mainline code *with interrupts enabled* (i.e., outside a
 * cli/sti critical section) can be torn by an interrupt arriving
 * between the access's micro-steps.
 */

#ifndef S2E_PLUGINS_RACEDETECTOR_HH
#define S2E_PLUGINS_RACEDETECTOR_HH

#include <mutex>
#include <unordered_map>

#include "plugins/memchecker.hh" // BugReport
#include "plugins/plugin.hh"

namespace s2e::plugins {

/** Per-path access history. */
struct RaceState : public core::PluginState {
    enum Ctx : uint8_t {
        IrqWrite = 1,
        MainUnprotectedAccess = 2,
    };
    std::unordered_map<uint32_t, uint8_t> history; ///< addr -> Ctx bits
    std::unordered_map<uint32_t, bool> reported;
    uint32_t currentBlockPc = 0;
    std::unique_ptr<core::PluginState>
    clone() const override
    {
        return std::make_unique<RaceState>(*this);
    }
};

class DataRaceDetector : public Plugin
{
  public:
    struct Config {
        /** Data range to monitor (e.g., the driver's globals). */
        uint32_t watchBase = 0;
        uint32_t watchEnd = 0;
        bool unitOnly = true;
    };

    DataRaceDetector(Engine &engine, Config config);

    const char *name() const override { return "data-race-detector"; }

    /** Only safe to call after Engine::run() returns. */
    const std::vector<BugReport> &reports() const { return reports_; }

  private:
    Config config_;
    // Memory-access callbacks fire on worker threads when
    // numWorkers > 1; the mutex serialises the report pushes.
    mutable std::mutex mu_;
    std::vector<BugReport> reports_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_RACEDETECTOR_HH
