#include "plugins/memchecker.hh"

#include <set>

namespace s2e::plugins {

MemoryChecker::MemoryChecker(Engine &engine, Annotation &annotation,
                             Config config)
    : Plugin(engine), config_(config)
{
    // Allocation hook: record the chunk returned by the allocator.
    if (config_.allocReturnPc) {
        annotation.at(config_.allocReturnPc, [this](ExecutionState &state,
                                                    Engine &eng) {
            auto addr = eng.readRegConcrete(state, config_.allocAddrReg);
            auto size = eng.readRegConcrete(state, config_.allocSizeReg);
            if (!addr || !size)
                return;
            if (*addr == 0)
                return; // allocation failure path
            auto *hs = state.pluginState<HeapState>(this);
            hs->live[*addr] = *size;
            hs->freed.erase(*addr);
        });
    }

    // Free hook.
    if (config_.freeEntryPc) {
        annotation.at(config_.freeEntryPc, [this](ExecutionState &state,
                                                  Engine &eng) {
            auto addr = eng.readRegConcrete(state, config_.freeAddrReg);
            if (!addr)
                return;
            auto *hs = state.pluginState<HeapState>(this);
            auto it = hs->live.find(*addr);
            if (it != hs->live.end()) {
                hs->freed[*addr] = it->second;
                hs->live.erase(it);
                return;
            }
            if (hs->freed.count(*addr)) {
                report(state, "double-free",
                       strprintf("double free of chunk 0x%x", *addr));
            } else if (*addr != 0) {
                report(state, "invalid-free",
                       strprintf("free of unallocated pointer 0x%x",
                                 *addr));
            }
        });
    }

    // Track the executing block for unit filtering.
    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &state, const dbt::TranslationBlock &tb) {
            state.pluginState<HeapState>(this)->currentBlockPc = tb.pc;
        });

    // Access checking.
    engine_.events().onMemoryAccess.subscribe([this](ExecutionState &state,
                                                     const core::
                                                         MemAccessInfo &info) {
        auto *hs = state.pluginState<HeapState>(this);
        if (config_.unitOnly && !engine_.isUnitPc(hs->currentBlockPc))
            return;
        if (info.addr < config_.nullGuardEnd) {
            report(state, "null-deref",
                   strprintf("%s at 0x%x inside the null guard page "
                             "(pc block 0x%x)",
                             info.isWrite ? "write" : "read", info.addr,
                             hs->currentBlockPc));
            return;
        }
        if (info.addr < config_.heapBase || info.addr >= config_.heapEnd)
            return;

        // Find the chunk containing (or nearest below) this address.
        auto containing = [&](const std::map<uint32_t, uint32_t> &chunks)
            -> const std::pair<const uint32_t, uint32_t> * {
            auto it = chunks.upper_bound(info.addr);
            if (it == chunks.begin())
                return nullptr;
            --it;
            return &*it;
        };

        const auto *live = containing(hs->live);
        if (live && info.addr + info.size <= live->first + live->second) {
            // Concretized access is inside the chunk, but a symbolic
            // pointer may still be able to escape it: ask the solver
            // (the DDT-style symbolic bounds check).
            if (info.addrExpr) {
                auto &bld = engine_.builder();
                expr::ExprRef past_end = bld.ugt(
                    info.addrExpr,
                    bld.constant(live->first + live->second - info.size,
                                 32));
                expr::ExprRef before = bld.ult(info.addrExpr,
                                         bld.constant(live->first, 32));
                auto escape = engine_.solver().mayBeTrue(
                    state.constraints, bld.lor(past_end, before));
                if (escape.isUnknown()) {
                    // Solver gave up on the bounds proof: don't report
                    // (avoid a spurious bug) but record the blind spot.
                    engine_.noteSolverDegraded(state, "memchecker_bounds",
                                               escape.timedOut);
                }
                if (escape.yes()) {
                    report(state, "overflow",
                           strprintf("symbolic pointer into chunk 0x%x "
                                     "(size %u) can escape its bounds "
                                     "(pc block 0x%x)",
                                     live->first, live->second,
                                     hs->currentBlockPc));
                }
            }
            return; // concretized access itself is in bounds
        }
        if (live && info.addr < live->first + live->second + config_.redzone &&
            info.addr + info.size > live->first + live->second) {
            report(state, "overflow",
                   strprintf("heap overflow at 0x%x (chunk 0x%x size %u, "
                             "pc block 0x%x)",
                             info.addr, live->first, live->second,
                             hs->currentBlockPc));
            return;
        }
        const auto *dead = containing(hs->freed);
        if (dead && info.addr < dead->first + dead->second) {
            report(state, "use-after-free",
                   strprintf("access to freed chunk 0x%x at 0x%x",
                             dead->first, info.addr));
            return;
        }
        report(state, "wild-access",
               strprintf("heap access at 0x%x outside any chunk "
                         "(pc block 0x%x)",
                         info.addr, hs->currentBlockPc));
    });

    // Leak detection at path termination.
    engine_.events().onStateKill.subscribe([this](ExecutionState &state) {
        if (state.status != core::StateStatus::Halted &&
            state.status != core::StateStatus::Killed)
            return; // abnormal paths would over-report
        const auto *hs = static_cast<const HeapState *>(
            state.findPluginState(this));
        if (!hs)
            return;
        for (const auto &[addr, size] : hs->live)
            report(state, "leak",
                   strprintf("leaked chunk 0x%x (%u bytes)", addr, size));
    });
}

void
MemoryChecker::report(ExecutionState &state, const std::string &kind,
                      const std::string &message)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        reports_.push_back({state.id(), kind, message});
    }
    engine_.events().onBug.emit(state, kind + ": " + message);
}

size_t
MemoryChecker::distinctBugs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::set<std::pair<std::string, std::string>> uniq;
    for (const auto &r : reports_)
        uniq.insert({r.kind, r.message});
    return uniq.size();
}

} // namespace s2e::plugins
