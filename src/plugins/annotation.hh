/**
 * @file
 * Annotation plugin (paper §4.1): runs user callbacks when execution
 * reaches registered program counters. Callbacks may inject custom-
 * constrained symbolic values, rewrite registers, or kill the path —
 * this is how DDT+ implements its local-consistency interface
 * annotations (symbolify an environment API's return value subject to
 * the API contract).
 */

#ifndef S2E_PLUGINS_ANNOTATION_HH
#define S2E_PLUGINS_ANNOTATION_HH

#include <functional>
#include <map>

#include "plugins/plugin.hh"

namespace s2e::plugins {

/** Dispatches callbacks at annotated instruction addresses. */
class Annotation : public Plugin
{
  public:
    using Callback = std::function<void(ExecutionState &, Engine &)>;

    explicit Annotation(Engine &engine);

    const char *name() const override { return "annotation"; }

    /**
     * Invoke `cb` whenever the instruction at `pc` is about to
     * execute. Multiple callbacks per pc run in registration order.
     * Must be registered before the code is first translated (or call
     * Engine::flushTranslationCache afterwards).
     */
    void at(uint32_t pc, Callback cb);

    uint64_t hitCount(uint32_t pc) const
    {
        auto it = hits_.find(pc);
        return it == hits_.end() ? 0 : it->second;
    }

  private:
    std::multimap<uint32_t, Callback> callbacks_;
    std::map<uint32_t, uint64_t> hits_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_ANNOTATION_HH
