#include "plugins/racedetector.hh"

namespace s2e::plugins {

DataRaceDetector::DataRaceDetector(Engine &engine, Config config)
    : Plugin(engine), config_(config)
{
    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &state, const dbt::TranslationBlock &tb) {
            state.pluginState<RaceState>(this)->currentBlockPc = tb.pc;
        });

    engine_.events().onMemoryAccess.subscribe([this](ExecutionState &state,
                                                     const core::
                                                         MemAccessInfo &info) {
        if (info.addr < config_.watchBase || info.addr >= config_.watchEnd)
            return;
        auto *rs = state.pluginState<RaceState>(this);
        if (config_.unitOnly && !engine_.isUnitPc(rs->currentBlockPc))
            return;

        bool in_irq = state.cpu.interruptDepth > 0;
        uint8_t &bits = rs->history[info.addr];
        if (in_irq && info.isWrite) {
            bits |= RaceState::IrqWrite;
        } else if (!in_irq && state.cpu.intEnabled && info.isWrite) {
            // Only mainline *writes* race with an ISR writer: a torn
            // read-modify-write loses the interrupt's update. Plain
            // reads of a word-sized counter are benign here.
            bits |= RaceState::MainUnprotectedAccess;
        }

        if (bits == (RaceState::IrqWrite |
                     RaceState::MainUnprotectedAccess) &&
            !rs->reported[info.addr]) {
            rs->reported[info.addr] = true;
            std::string msg = strprintf(
                "location 0x%x written in interrupt context and "
                "accessed from mainline with interrupts enabled "
                "(block 0x%x)",
                info.addr, rs->currentBlockPc);
            {
                std::lock_guard<std::mutex> lock(mu_);
                reports_.push_back({state.id(), "data-race", msg});
            }
            engine_.events().onBug.emit(state, "data-race: " + msg);
        }
    });
}

} // namespace s2e::plugins
