/**
 * @file
 * BugCheck analyzer: the WinBugCheck equivalent (paper §4.1). Catches
 * guest kernel panics (execution reaching the kernel's panic routine),
 * guest crashes (faulting states) and bugs reported by other plugins,
 * collecting them into one report list with reproduction inputs.
 */

#ifndef S2E_PLUGINS_BUGCHECK_HH
#define S2E_PLUGINS_BUGCHECK_HH

#include <mutex>

#include "expr/eval.hh"
#include "plugins/memchecker.hh"
#include "plugins/plugin.hh"

namespace s2e::plugins {

/** A bug with the concrete inputs that reproduce it. */
struct CrashRecord {
    int stateId;
    std::string kind;
    std::string message;
    uint32_t pc;
    /** Satisfying assignment for the path (the test case). */
    expr::Assignment inputs;
    bool inputsValid = false;
};

class BugCheck : public Plugin
{
  public:
    struct Config {
        /** pc of the guest kernel's panic routine (0 = none). */
        uint32_t panicPc = 0;
        /** Generate concrete reproduction inputs for each bug. */
        bool computeInputs = true;
    };

    explicit BugCheck(Engine &engine) : BugCheck(engine, Config()) {}
    BugCheck(Engine &engine, Config config);

    const char *name() const override { return "bug-check"; }

    /** Only safe to call after Engine::run() returns. */
    const std::vector<CrashRecord> &crashes() const { return crashes_; }

  private:
    void record(ExecutionState &state, const std::string &kind,
                const std::string &message);

    Config config_;
    // record() runs on worker threads (onBug/onStateKill fire wherever
    // the path executes); the mutex serialises the pushes.
    mutable std::mutex mu_;
    std::vector<CrashRecord> crashes_;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_BUGCHECK_HH
