/**
 * @file
 * CodeSelector plugin (paper §4.1): code-based path selection.
 *
 * Takes a list of program-counter ranges, each an inclusion or an
 * exclusion range, and toggles the state's multi-path mode as
 * execution enters and leaves them — so forking only happens inside
 * the code of interest (e.g. a browser's SSL module) while the rest
 * of the stack runs single-path. This is the dynamic counterpart of
 * EngineConfig::unitRanges, which selects the consistency boundary;
 * CodeSelector selects where *forking* is allowed and can be layered
 * on top (e.g. narrow exploration to one driver entry point).
 */

#ifndef S2E_PLUGINS_CODESELECTOR_HH
#define S2E_PLUGINS_CODESELECTOR_HH

#include "plugins/plugin.hh"

namespace s2e::plugins {

class CodeSelector : public Plugin
{
  public:
    struct Range {
        uint32_t lo;
        uint32_t hi;     ///< exclusive
        bool include;    ///< true: multi-path inside; false: outside
    };

    /**
     * @param ranges evaluated in order; the first matching range
     *        decides. With no match: multi-path iff there is no
     *        inclusion range at all (exclusion-only configs default
     *        to multi-path outside the excluded code).
     */
    CodeSelector(Engine &engine, std::vector<Range> ranges);

    const char *name() const override { return "code-selector"; }

    /** Decision for a pc (exposed for tests). */
    bool multiPathAt(uint32_t pc) const;

    uint64_t toggles() const { return toggles_; }

  private:
    std::vector<Range> ranges_;
    bool defaultMultiPath_;
    uint64_t toggles_ = 0;
};

} // namespace s2e::plugins

#endif // S2E_PLUGINS_CODESELECTOR_HH
