#include "plugins/annotation.hh"

namespace s2e::plugins {

Annotation::Annotation(Engine &engine) : Plugin(engine)
{
    engine_.events().onInstrTranslation.subscribe(
        [this](ExecutionState &, uint32_t pc, const isa::Instruction &,
               bool *mark) {
            if (callbacks_.count(pc))
                *mark = true;
        });
    engine_.events().onInstrExecution.subscribe(
        [this](ExecutionState &state, uint32_t pc) {
            auto range = callbacks_.equal_range(pc);
            if (range.first == range.second)
                return;
            hits_[pc]++;
            for (auto it = range.first; it != range.second; ++it)
                it->second(state, engine_);
        });
}

void
Annotation::at(uint32_t pc, Callback cb)
{
    callbacks_.emplace(pc, std::move(cb));
}

} // namespace s2e::plugins
