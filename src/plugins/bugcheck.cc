#include "plugins/bugcheck.hh"

namespace s2e::plugins {

BugCheck::BugCheck(Engine &engine, Config config)
    : Plugin(engine), config_(config)
{
    if (config_.panicPc) {
        engine_.events().onInstrTranslation.subscribe(
            [this](ExecutionState &, uint32_t pc, const isa::Instruction &,
                   bool *mark) {
                if (pc == config_.panicPc)
                    *mark = true;
            });
        engine_.events().onInstrExecution.subscribe(
            [this](ExecutionState &state, uint32_t pc) {
                if (pc != config_.panicPc)
                    return;
                record(state, "kernel-panic",
                       "guest kernel panic routine reached");
                engine_.killState(state, core::StateStatus::Crashed,
                                  "kernel panic");
            });
    }

    engine_.events().onBug.subscribe(
        [this](ExecutionState &state, const std::string &message) {
            record(state, "bug", message);
        });

    engine_.events().onStateKill.subscribe([this](ExecutionState &state) {
        if (state.status == core::StateStatus::Crashed)
            record(state, "crash", state.statusMessage);
    });
}

void
BugCheck::record(ExecutionState &state, const std::string &kind,
                 const std::string &message)
{
    CrashRecord rec;
    rec.stateId = state.id();
    rec.kind = kind;
    rec.message = message;
    rec.pc = state.cpu.pc;
    if (config_.computeInputs) {
        expr::Assignment model;
        auto out = engine_.solver().getInitialValues(state.constraints,
                                                     &model);
        if (out.isSat()) {
            rec.inputs = std::move(model);
            rec.inputsValid = true;
        } else if (out.isUnknown()) {
            // The crash is still reported, just without inputs.
            engine_.noteSolverDegraded(state, "bugcheck_inputs",
                                       out.timedOut);
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    crashes_.push_back(std::move(rec));
}

} // namespace s2e::plugins
