#include "plugins/codeselector.hh"

namespace s2e::plugins {

CodeSelector::CodeSelector(Engine &engine, std::vector<Range> ranges)
    : Plugin(engine), ranges_(std::move(ranges))
{
    defaultMultiPath_ = true;
    for (const Range &r : ranges_)
        if (r.include)
            defaultMultiPath_ = false;

    engine_.events().onBlockExecute.subscribe(
        [this](ExecutionState &state, const dbt::TranslationBlock &tb) {
            bool want = multiPathAt(tb.pc);
            if (state.multiPathEnabled != want) {
                state.multiPathEnabled = want;
                toggles_++;
            }
        });
}

bool
CodeSelector::multiPathAt(uint32_t pc) const
{
    for (const Range &r : ranges_)
        if (pc >= r.lo && pc < r.hi)
            return r.include;
    return defaultMultiPath_;
}

} // namespace s2e::plugins
