#include "core/consistency.hh"

namespace s2e::core {

const char *
consistencyModelName(ConsistencyModel model)
{
    switch (model) {
      case ConsistencyModel::ScCe: return "SC-CE";
      case ConsistencyModel::ScUe: return "SC-UE";
      case ConsistencyModel::ScSe: return "SC-SE";
      case ConsistencyModel::Lc: return "LC";
      case ConsistencyModel::RcOc: return "RC-OC";
      case ConsistencyModel::RcCc: return "RC-CC";
    }
    return "<bad>";
}

ConsistencyPolicy
policyFor(ConsistencyModel model)
{
    ConsistencyPolicy p;
    p.model = model;
    switch (model) {
      case ConsistencyModel::ScCe:
        p.symbolicInputsEnabled = false;
        p.symbolicHardwareAllowed = false;
        p.envSymbolicBranch = EnvSymbolicBranchPolicy::ConcretizeHard;
        break;
      case ConsistencyModel::ScUe:
        // Unit-level: the environment is a black box; symbolic data
        // reaching it is concretized with a hard constraint, curtailing
        // globally feasible paths (paper §3.2.1).
        p.envSymbolicBranch = EnvSymbolicBranchPolicy::ConcretizeHard;
        p.symbolicHardwareAllowed = false;
        break;
      case ConsistencyModel::ScSe:
        // System-level: symbolic data crosses the boundary freely and
        // the environment forks too; the only admissible symbolic
        // inputs come from outside the system (hardware).
        p.forkInEnvironment = true;
        p.envSymbolicBranch = EnvSymbolicBranchPolicy::Fork;
        break;
      case ConsistencyModel::Lc:
        // Local consistency: environment outputs may be symbolified
        // per API contract (done by Annotation plugins); if the
        // resulting inconsistency ever reaches environment control
        // flow, the path is aborted (paper §3.2.2).
        p.envSymbolicBranch = EnvSymbolicBranchPolicy::Abort;
        break;
      case ConsistencyModel::RcOc:
        // Overapproximate: unconstrained environment outputs, soft
        // concretization when the environment must run.
        p.envSymbolicBranch = EnvSymbolicBranchPolicy::ConcretizeSoft;
        break;
      case ConsistencyModel::RcCc:
        // CFG consistency: follow every unit edge, skip the solver.
        p.ignoreFeasibility = true;
        p.envSymbolicBranch = EnvSymbolicBranchPolicy::ConcretizeSoft;
        break;
    }
    return p;
}

} // namespace s2e::core
