/**
 * @file
 * Versioned execution-state serializer — the `s2e.state.v1` format.
 *
 * A spilled state is written as a 32-byte header (magic, version,
 * payload size, FNV-1a content checksum) followed by a little-endian
 * payload:
 *
 *   1. expression table  — the state's symbolic DAG in deterministic
 *                          post-order (children before parents), each
 *                          node referencing earlier entries by index
 *   2. identity          — pathId, fork/sym sequence counters
 *   3. CPU               — registers and flags as tagged values
 *                          (concrete word or table index), pc,
 *                          interrupt and mode bits
 *   4. clocks / status   — instruction counters, degradation record,
 *                          status + message
 *   5. memory delta      — dirty pages only (concrete bytes + sparse
 *                          symbolic overlay); clean pages re-resolve
 *                          through the state's checkpoint chain
 *   6. constraint tail   — constraints beyond the checkpoint prefix
 *   7. plugin state      — name-tagged opaque blobs via registered
 *                          codecs (states without a codec stay
 *                          resident and are simply not serialized)
 *   8. solver info       — expected constraint count; the incremental
 *                          solver context itself is dropped on spill
 *                          and rebuilt lazily after restore
 *
 * Round-trip property: because expressions are hash-consed and the
 * table is emitted in a deterministic walk order, deserializing and
 * re-serializing a state yields byte-identical images.
 */

#ifndef S2E_CORE_LIFECYCLE_SERIALIZER_HH
#define S2E_CORE_LIFECYCLE_SERIALIZER_HH

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/state.hh"

namespace s2e::core::lifecycle {

constexpr uint32_t kStateFormatVersion = 1;

/** Codec for one plugin's per-path state, keyed by the plugin key
 *  used with ExecutionState::pluginState(). */
struct PluginCodec {
    std::string name; ///< stable tag stored in the image
    std::function<std::vector<uint8_t>(const PluginState &)> encode;
    std::function<std::unique_ptr<PluginState>(
        const std::vector<uint8_t> &)> decode;
};

class StateSerializer
{
  public:
    explicit StateSerializer(ExprBuilder &builder) : builder_(builder) {}

    void registerPluginCodec(const void *plugin_key, PluginCodec codec);

    /** Serialize the state's delta beyond its checkpoint into a
     *  complete `s2e.state.v1` image (header + payload). */
    std::vector<uint8_t> serialize(const ExecutionState &state) const;

    /**
     * Restore a state from an image. The state must carry the same
     * checkpoint it had when serialized (clean pages and the
     * constraint prefix resolve through it). Returns false — without
     * crashing and with `error` filled — on any corrupt, truncated or
     * mismatched image. The caller resets solverCtx.
     */
    bool deserialize(const std::vector<uint8_t> &image,
                     ExecutionState &state,
                     std::string *error = nullptr) const;

    /** Header + checksum validation only (spill-read retry guard). */
    static bool validateImage(const std::vector<uint8_t> &image,
                              std::string *error = nullptr);

  private:
    ExprBuilder &builder_;
    std::map<const void *, PluginCodec> codecs_;
};

} // namespace s2e::core::lifecycle

#endif // S2E_CORE_LIFECYCLE_SERIALIZER_HH
