/**
 * @file
 * Hierarchical copy-on-write checkpoints (paper §3's shared state
 * representation, applied to whole-state snapshots).
 *
 * A checkpoint freezes the page references a state had dirtied since
 * its previous checkpoint, plus the path constraints at that moment.
 * Fork parents re-checkpoint right before cloning, so parent and both
 * children share one snapshot and start with an empty delta. Chains of
 * checkpoints therefore mirror the fork tree: resolving a page walks
 * from the newest delta toward the root, and the root checkpoint
 * (taken after program load) holds every initially non-zero page.
 *
 * Checkpoints are the spill baseline: a spilled state serializes only
 * its dirty pages and its constraint tail beyond the checkpoint
 * prefix; restore re-resolves everything else through the chain.
 *
 * Immutability: a checkpoint holds an extra reference to each frozen
 * page, so any later write COW-breaks away from it — frozen pages are
 * never mutated even though they are stored as non-const refs.
 */

#ifndef S2E_CORE_LIFECYCLE_CHECKPOINT_HH
#define S2E_CORE_LIFECYCLE_CHECKPOINT_HH

#include <map>
#include <memory>
#include <vector>

#include "core/memory.hh"

namespace s2e::core {
class ExecutionState;
}

namespace s2e::core::lifecycle {

struct Checkpoint {
    /** Previous checkpoint in the chain (null for the root). */
    std::shared_ptr<const Checkpoint> parent;

    /** Page index -> page ref frozen when the checkpoint was taken.
     *  Only pages dirtied since the parent checkpoint appear here. */
    std::map<uint32_t, std::shared_ptr<MemoryState::Page>> pages;

    /** Path constraints at checkpoint time. Because addConstraint is
     *  append-only between checkpoints, this is a prefix of every
     *  descendant state's constraint vector. */
    std::vector<ExprRef> constraints;

    uint32_t numPages = 0;
    uint32_t depth = 0;

    /** Resolve a page through the chain; null = the all-zero page. */
    std::shared_ptr<MemoryState::Page> resolve(uint32_t idx) const;
};

/**
 * Freeze `state`'s dirty pages and constraints into a new checkpoint
 * layered on its current one, install it on the state and clear the
 * dirty set. For a state with no checkpoint yet (the initial state
 * right after program load) every non-null page is captured, making
 * this the root of the chain.
 */
std::shared_ptr<const Checkpoint> takeCheckpoint(ExecutionState &state);

} // namespace s2e::core::lifecycle

#endif // S2E_CORE_LIFECYCLE_CHECKPOINT_HH
