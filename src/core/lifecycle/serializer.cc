#include "core/lifecycle/serializer.hh"

#include <cstring>
#include <unordered_map>

#include "core/lifecycle/checkpoint.hh"
#include "core/lifecycle/wire.hh"
#include "expr/builder.hh"
#include "support/logging.hh"

namespace s2e::core::lifecycle {

namespace {

constexpr char kMagic[8] = {'S', '2', 'E', 'S', 'T', 'A', 'T', 'E'};
constexpr size_t kHeaderSize = wire::kHeaderSize;

using wire::Reader;
using wire::Writer;

/**
 * Deduplicating expression table. Nodes are interned in post-order
 * (children first) along a deterministic walk over the state's
 * symbolic roots, so serializing the same logical state always yields
 * the same table.
 */
class ExprTable
{
  public:
    uint32_t
    intern(ExprRef root)
    {
        auto found = index_.find(root);
        if (found != index_.end())
            return found->second;
        // Iterative post-order DFS: constraint DAGs can be deep.
        std::vector<std::pair<ExprRef, unsigned>> stack;
        stack.emplace_back(root, 0);
        while (!stack.empty()) {
            auto &[node, next_kid] = stack.back();
            if (index_.count(node)) {
                stack.pop_back();
                continue;
            }
            if (next_kid < node->arity()) {
                ExprRef kid = node->kid(next_kid++);
                if (!index_.count(kid))
                    stack.emplace_back(kid, 0);
            } else {
                index_[node] = static_cast<uint32_t>(order_.size());
                order_.push_back(node);
                stack.pop_back();
            }
        }
        return index_.at(root);
    }

    uint32_t at(ExprRef e) const { return index_.at(e); }
    const std::vector<ExprRef> &order() const { return order_; }

  private:
    std::unordered_map<ExprRef, uint32_t> index_;
    std::vector<ExprRef> order_;
};

/** Rebuild one node from its record; kids already reconstructed.
 *  Folding is deterministic, so a node that existed unfolded in the
 *  source builder reconstructs to the structurally identical node. */
ExprRef
buildNode(ExprBuilder &b, expr::Kind kind, unsigned width, unsigned aux,
          ExprRef k0, ExprRef k1, ExprRef k2)
{
    using expr::Kind;
    switch (kind) {
      case Kind::Add: return b.add(k0, k1);
      case Kind::Sub: return b.sub(k0, k1);
      case Kind::Mul: return b.mul(k0, k1);
      case Kind::UDiv: return b.udiv(k0, k1);
      case Kind::SDiv: return b.sdiv(k0, k1);
      case Kind::URem: return b.urem(k0, k1);
      case Kind::SRem: return b.srem(k0, k1);
      case Kind::And: return b.bAnd(k0, k1);
      case Kind::Or: return b.bOr(k0, k1);
      case Kind::Xor: return b.bXor(k0, k1);
      case Kind::Not: return b.bNot(k0);
      case Kind::Neg: return b.neg(k0);
      case Kind::Shl: return b.shl(k0, k1);
      case Kind::LShr: return b.lshr(k0, k1);
      case Kind::AShr: return b.ashr(k0, k1);
      case Kind::Concat: return b.concat(k0, k1);
      case Kind::Extract: return b.extract(k0, aux, width);
      case Kind::ZExt: return b.zext(k0, width);
      case Kind::SExt: return b.sext(k0, width);
      case Kind::Eq: return b.eq(k0, k1);
      case Kind::Ult: return b.ult(k0, k1);
      case Kind::Ule: return b.ule(k0, k1);
      case Kind::Slt: return b.slt(k0, k1);
      case Kind::Sle: return b.sle(k0, k1);
      case Kind::Ite: return b.ite(k0, k1, k2);
      case Kind::Constant:
      case Kind::Variable:
        break; // handled by the caller
    }
    return nullptr;
}

void
writeValue(Writer &w, const Value &v, const ExprTable &table)
{
    if (v.isConcrete()) {
        w.u8(0);
        w.u32(v.concrete());
    } else {
        w.u8(1);
        w.u32(table.at(v.expr()));
    }
}

size_t
checkpointPrefixLen(const ExecutionState &state)
{
    return state.checkpoint ? state.checkpoint->constraints.size() : 0;
}

} // namespace

void
StateSerializer::registerPluginCodec(const void *plugin_key,
                                     PluginCodec codec)
{
    codecs_[plugin_key] = std::move(codec);
}

std::vector<uint8_t>
StateSerializer::serialize(const ExecutionState &state) const
{
    Writer w;

    // Deterministic root walk: registers, flags, dirty-page symbolic
    // overlays (ascending page, ascending offset), constraint tail.
    ExprTable table;
    auto intern_value = [&](const Value &v) {
        if (!v.isConcrete())
            table.intern(v.expr());
    };
    for (const Value &r : state.cpu.regs)
        intern_value(r);
    for (const Value &f : state.cpu.flags)
        intern_value(f);
    std::vector<uint32_t> dirty = state.mem.dirtyPages();
    for (uint32_t idx : dirty) {
        const auto &page = state.mem.pageRef(idx);
        if (!page)
            continue;
        for (const auto &[off, e] : page->symbolic)
            table.intern(e);
    }
    size_t prefix_len = checkpointPrefixLen(state);
    for (size_t i = prefix_len; i < state.constraints.size(); ++i)
        table.intern(state.constraints[i]);

    // 1. expression table
    w.u32(static_cast<uint32_t>(table.order().size()));
    for (ExprRef e : table.order()) {
        w.u8(static_cast<uint8_t>(e->kind()));
        w.u8(static_cast<uint8_t>(e->width()));
        w.u32(e->aux());
        if (e->isConstant()) {
            w.u64(e->value());
        } else if (e->isVariable()) {
            w.str(e->name());
        } else {
            for (unsigned i = 0; i < e->arity(); ++i)
                w.u32(table.at(e->kid(i)));
        }
    }

    // 2. identity
    w.str(state.pathId());
    w.u32(state.forkSeqValue());
    w.u64(state.symSeqValue());

    // 3. CPU
    for (const Value &r : state.cpu.regs)
        writeValue(w, r, table);
    for (const Value &f : state.cpu.flags)
        writeValue(w, f, table);
    w.u32(state.cpu.pc);
    w.u8(state.cpu.intEnabled ? 1 : 0);
    w.u32(state.cpu.pendingIrqs);
    w.u32(state.cpu.interruptDepth);
    w.u8(state.cpu.halted ? 1 : 0);
    w.u8(state.multiPathEnabled ? 1 : 0);

    // 4. clocks / status
    w.u64(state.instrCount);
    w.u64(state.symInstrCount);
    w.u64(state.blockCount);
    w.u8(state.degraded ? 1 : 0);
    w.u32(state.degradeCount);
    w.u32(state.exitCode);
    w.u8(static_cast<uint8_t>(state.status));
    w.str(state.statusMessage);

    // 5. memory delta
    w.u32(static_cast<uint32_t>(state.mem.numPages()));
    w.u32(static_cast<uint32_t>(dirty.size()));
    static const std::vector<uint8_t> zero_page(kMemPageSize, 0);
    for (uint32_t idx : dirty) {
        w.u32(idx);
        const auto &page = state.mem.pageRef(idx);
        const auto &bytes = page ? page->bytes : zero_page;
        w.bytes(bytes.data(), kMemPageSize);
        if (page) {
            w.u32(static_cast<uint32_t>(page->symbolic.size()));
            for (const auto &[off, e] : page->symbolic) {
                w.u16(off);
                w.u32(table.at(e));
            }
        } else {
            w.u32(0);
        }
    }

    // 6. constraint tail
    w.u32(static_cast<uint32_t>(prefix_len));
    w.u32(static_cast<uint32_t>(state.constraints.size() - prefix_len));
    for (size_t i = prefix_len; i < state.constraints.size(); ++i)
        w.u32(table.at(state.constraints[i]));

    // 7. plugin state (codec-registered only; the rest stays resident)
    uint32_t codec_count = 0;
    for (const auto &[key, ps] : state.pluginStates())
        if (codecs_.count(key))
            codec_count++;
    w.u32(codec_count);
    for (const auto &[key, ps] : state.pluginStates()) {
        auto it = codecs_.find(key);
        if (it == codecs_.end())
            continue;
        w.str(it->second.name);
        std::vector<uint8_t> blob = it->second.encode(*ps);
        w.u32(static_cast<uint32_t>(blob.size()));
        w.bytes(blob.data(), blob.size());
    }

    // 8. solver rebuild info
    w.u32(static_cast<uint32_t>(state.constraints.size()));

    // Header + payload.
    return wire::sealImage(kMagic, kStateFormatVersion, w);
}

bool
StateSerializer::validateImage(const std::vector<uint8_t> &image,
                               std::string *error)
{
    return wire::checkImage(kMagic, kStateFormatVersion, image, error);
}

bool
StateSerializer::deserialize(const std::vector<uint8_t> &image,
                             ExecutionState &state,
                             std::string *error) const
{
    auto fail = [&](const std::string &why) {
        if (error)
            *error = why;
        return false;
    };
    if (!validateImage(image, error))
        return false;
    Reader r(image.data() + kHeaderSize, image.size() - kHeaderSize);

    // 1. expression table
    uint32_t num_nodes = r.u32();
    if (num_nodes > r.size / 3)
        return fail("implausible expression count");
    std::vector<ExprRef> nodes;
    nodes.reserve(num_nodes);
    for (uint32_t i = 0; i < num_nodes && r.ok; ++i) {
        auto kind = static_cast<expr::Kind>(r.u8());
        unsigned width = r.u8();
        unsigned aux = r.u32();
        if (kind > expr::Kind::Ite || width < 1 || width > 64)
            return fail("bad expression record");
        ExprRef e = nullptr;
        if (kind == expr::Kind::Constant) {
            e = builder_.constant(r.u64(), width);
        } else if (kind == expr::Kind::Variable) {
            e = builder_.var(r.str(), width);
        } else {
            ExprRef kids[3] = {nullptr, nullptr, nullptr};
            unsigned arity = expr::kindArity(kind);
            for (unsigned k = 0; k < arity; ++k) {
                uint32_t idx = r.u32();
                if (idx >= nodes.size())
                    return fail("forward expression reference");
                kids[k] = nodes[idx];
            }
            if (!r.ok)
                return fail("truncated expression table");
            e = buildNode(builder_, kind, width, aux, kids[0], kids[1],
                          kids[2]);
        }
        if (!e)
            return fail("unreconstructible expression");
        nodes.push_back(e);
    }
    if (!r.ok)
        return fail("truncated expression table");

    auto read_expr = [&]() -> ExprRef {
        uint32_t idx = r.u32();
        if (idx >= nodes.size()) {
            r.ok = false;
            return nullptr;
        }
        return nodes[idx];
    };
    auto read_value = [&]() -> Value {
        uint8_t tag = r.u8();
        if (tag == 0)
            return Value(r.u32());
        ExprRef e = read_expr();
        return e ? Value(e) : Value(0u);
    };

    // 2. identity
    std::string path_id = r.str();
    uint32_t fork_seq = r.u32();
    uint64_t sym_seq = r.u64();

    // 3. CPU
    CpuState cpu;
    for (Value &reg : cpu.regs)
        reg = read_value();
    for (Value &flag : cpu.flags)
        flag = read_value();
    cpu.pc = r.u32();
    cpu.intEnabled = r.u8() != 0;
    cpu.pendingIrqs = r.u32();
    cpu.interruptDepth = r.u32();
    cpu.halted = r.u8() != 0;
    bool multi_path = r.u8() != 0;

    // 4. clocks / status
    uint64_t instr_count = r.u64();
    uint64_t sym_instr_count = r.u64();
    uint64_t block_count = r.u64();
    bool degraded = r.u8() != 0;
    uint32_t degrade_count = r.u32();
    uint32_t exit_code = r.u32();
    auto status = static_cast<StateStatus>(r.u8());
    if (status > StateStatus::SpillFailure)
        return fail("bad status");
    std::string status_message = r.str();
    if (!r.ok)
        return fail("truncated CPU/status section");

    // 5. memory delta — parsed before mutating the state's memory.
    uint32_t num_pages = r.u32();
    uint32_t expected_pages =
        (state.mem.size() + kMemPageSize - 1) >> kMemPageBits;
    if (num_pages != expected_pages)
        return fail("page-count mismatch");
    uint32_t dirty_count = r.u32();
    if (dirty_count > num_pages)
        return fail("implausible dirty-page count");
    struct DirtyPage {
        uint32_t idx;
        std::shared_ptr<MemoryState::Page> page;
    };
    std::vector<DirtyPage> dirty;
    dirty.reserve(dirty_count);
    for (uint32_t i = 0; i < dirty_count && r.ok; ++i) {
        uint32_t idx = r.u32();
        if (idx >= num_pages)
            return fail("dirty page index out of range");
        auto page = std::make_shared<MemoryState::Page>();
        if (!r.bytes(page->bytes.data(), kMemPageSize))
            return fail("truncated page bytes");
        uint32_t sym_count = r.u32();
        if (sym_count > kMemPageSize)
            return fail("implausible symbolic count");
        for (uint32_t s = 0; s < sym_count && r.ok; ++s) {
            uint16_t off = r.u16();
            ExprRef e = read_expr();
            if (!e || e->width() != 8 || off >= kMemPageSize)
                return fail("bad symbolic byte record");
            page->symbolic[off] = e;
        }
        dirty.push_back({idx, std::move(page)});
    }
    if (!r.ok)
        return fail("truncated memory section");

    // 6. constraint tail
    uint32_t prefix_len = r.u32();
    size_t cp_prefix =
        state.checkpoint ? state.checkpoint->constraints.size() : 0;
    if (prefix_len != cp_prefix)
        return fail("checkpoint constraint-prefix mismatch");
    uint32_t tail_count = r.u32();
    std::vector<ExprRef> tail;
    tail.reserve(tail_count);
    for (uint32_t i = 0; i < tail_count && r.ok; ++i) {
        ExprRef e = read_expr();
        if (!e || e->width() != 1)
            return fail("bad constraint record");
        tail.push_back(e);
    }

    // 7. plugin state
    std::unordered_map<std::string, const PluginCodec *> by_name;
    std::unordered_map<std::string, const void *> key_by_name;
    for (const auto &[key, codec] : codecs_) {
        by_name[codec.name] = &codec;
        key_by_name[codec.name] = key;
    }
    uint32_t plugin_count = r.u32();
    std::vector<std::pair<const void *, std::unique_ptr<PluginState>>>
        plugins;
    for (uint32_t i = 0; i < plugin_count && r.ok; ++i) {
        std::string name = r.str();
        uint32_t blob_len = r.u32();
        std::vector<uint8_t> blob(blob_len);
        if (blob_len && !r.bytes(blob.data(), blob_len))
            return fail("truncated plugin blob");
        auto it = by_name.find(name);
        if (it == by_name.end())
            return fail("unknown plugin codec: " + name);
        auto decoded = it->second->decode(blob);
        if (!decoded)
            return fail("plugin decode failed: " + name);
        plugins.emplace_back(key_by_name.at(name), std::move(decoded));
    }

    // 8. solver rebuild info
    uint32_t constraint_count = r.u32();
    if (!r.ok)
        return fail("truncated image");
    if (constraint_count != cp_prefix + tail.size())
        return fail("constraint-count mismatch");

    // Everything parsed — apply.
    state.setPathId(std::move(path_id));
    state.restoreSeqs(fork_seq, sym_seq);
    state.cpu = cpu;
    state.multiPathEnabled = multi_path;
    state.instrCount = instr_count;
    state.symInstrCount = sym_instr_count;
    state.blockCount = block_count;
    state.degraded = degraded;
    state.degradeCount = degrade_count;
    state.exitCode = exit_code;
    state.status = status;
    state.statusMessage = std::move(status_message);

    state.mem.restorePages(num_pages);
    if (state.checkpoint) {
        for (uint32_t idx = 0; idx < num_pages; ++idx) {
            auto base = state.checkpoint->resolve(idx);
            if (base)
                state.mem.setPageRef(idx, std::move(base));
        }
    }
    for (auto &dp : dirty) {
        state.mem.setPageRef(dp.idx, std::move(dp.page));
        state.mem.markPageDirty(dp.idx);
    }

    state.constraints.clear();
    if (state.checkpoint)
        state.constraints = state.checkpoint->constraints;
    state.constraints.insert(state.constraints.end(), tail.begin(),
                             tail.end());

    for (auto &[key, ps] : plugins)
        state.setPluginState(key, std::move(ps));

    return true;
}

} // namespace s2e::core::lifecycle
