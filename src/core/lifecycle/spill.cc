#include "core/lifecycle/spill.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <system_error>
#include <thread>

namespace s2e::core::lifecycle {

namespace fs = std::filesystem;

SpillStore::SpillStore(std::string dir, SpillFaultPolicy policy,
                       unsigned max_attempts)
    : dir_(std::move(dir)), policy_(policy),
      maxAttempts_(max_attempts ? max_attempts : 1), rng_(policy.seed)
{
}

SpillStore::~SpillStore()
{
    if (!dirReady_)
        return;
    std::error_code ec;
    fs::remove_all(dir_, ec); // best effort; never throws
}

std::string
SpillStore::pathFor(const std::string &key) const
{
    return dir_ + "/" + key + ".bin";
}

bool
SpillStore::drawFault()
{
    // Caller holds mu_. One 1-based ordinal per logical op, shared by
    // writes and reads so trigger lists address the full I/O stream.
    uint64_t op = ++opIndex_;
    if (!policy_.enabled)
        return false;
    if (std::find(policy_.triggerOps.begin(), policy_.triggerOps.end(),
                  op) != policy_.triggerOps.end())
        return true;
    return policy_.faultRate > 0.0 && rng_.chance(policy_.faultRate);
}

SpillIoResult
SpillStore::write(const std::string &key,
                  const std::vector<uint8_t> &image)
{
    bool fault;
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters_.writes++;
        fault = drawFault();
        if (!dirReady_) {
            std::error_code ec;
            fs::create_directories(dir_, ec);
            if (ec) {
                counters_.failures++;
                return {false, 0, "mkdir " + dir_ + ": " + ec.message()};
            }
            dirReady_ = true;
        }
    }

    SpillIoResult result;
    std::string path = pathFor(key);
    std::string tmp = path + ".tmp";
    for (unsigned attempt = 0; attempt < maxAttempts_; ++attempt) {
        if (attempt > 0) {
            result.retries++;
            {
                std::lock_guard<std::mutex> lock(mu_);
                counters_.retries++;
            }
            // Tiny exponential backoff: real ENOSPC/EIO conditions are
            // often transient (another state released its image).
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1u << std::min(attempt, 4u)));
        }
        bool inject = fault && (attempt == 0 || policy_.persistent);
        if (inject) {
            std::lock_guard<std::mutex> lock(mu_);
            counters_.faultsInjected++;
        }

        if (inject && policy_.kind == SpillFaultPolicy::Kind::Enospc) {
            result.error = "no space left on device (injected)";
            continue;
        }

        // Assemble the bytes this attempt will actually put on disk.
        const uint8_t *data = image.data();
        size_t len = image.size();
        std::vector<uint8_t> mangled;
        if (inject &&
            policy_.kind == SpillFaultPolicy::Kind::CorruptHeader) {
            mangled = image;
            for (size_t i = 0; i < mangled.size() && i < 16; ++i)
                mangled[i] ^= 0xA5;
            data = mangled.data();
            len = mangled.size();
        }
        bool short_write =
            inject && policy_.kind == SpillFaultPolicy::Kind::ShortWrite;
        size_t to_write = short_write ? len / 2 : len;

        std::FILE *f = std::fopen(tmp.c_str(), "wb");
        if (!f) {
            result.error = "open " + tmp + " failed";
            continue;
        }
        size_t written = std::fwrite(data, 1, to_write, f);
        bool flushed = std::fclose(f) == 0;
        if (short_write || written != len || !flushed) {
            // Partial image: remove the turd so a later read can never
            // see it, then retry.
            std::error_code ec;
            fs::remove(tmp, ec);
            result.error = short_write ? "short write (injected)"
                                       : "short write";
            continue;
        }
        std::error_code ec;
        fs::rename(tmp, path, ec);
        if (ec) {
            result.error = "rename: " + ec.message();
            continue;
        }
        // A corrupt-header fault is a *silent* success: the damage
        // only surfaces when the restore path checksums the image.
        result.ok = true;
        break;
    }

    std::lock_guard<std::mutex> lock(mu_);
    if (result.ok) {
        counters_.bytesWritten += image.size();
    } else {
        counters_.failures++;
        std::error_code ec;
        fs::remove(tmp, ec);
    }
    return result;
}

SpillIoResult
SpillStore::read(const std::string &key, std::vector<uint8_t> *out,
                 const std::function<bool(const std::vector<uint8_t> &)>
                     &validate)
{
    bool fault;
    {
        std::lock_guard<std::mutex> lock(mu_);
        counters_.reads++;
        fault = drawFault();
    }

    SpillIoResult result;
    std::string path = pathFor(key);
    for (unsigned attempt = 0; attempt < maxAttempts_; ++attempt) {
        if (attempt > 0) {
            result.retries++;
            {
                std::lock_guard<std::mutex> lock(mu_);
                counters_.retries++;
            }
            std::this_thread::sleep_for(
                std::chrono::milliseconds(1u << std::min(attempt, 4u)));
        }
        bool inject = fault && (attempt == 0 || policy_.persistent);
        bool short_read =
            inject && policy_.kind == SpillFaultPolicy::Kind::ShortRead;
        if (inject) {
            std::lock_guard<std::mutex> lock(mu_);
            counters_.faultsInjected++;
        }

        std::FILE *f = std::fopen(path.c_str(), "rb");
        if (!f) {
            result.error = "open " + path + " failed";
            continue;
        }
        std::fseek(f, 0, SEEK_END);
        long fsize = std::ftell(f);
        std::fseek(f, 0, SEEK_SET);
        if (fsize < 0) {
            std::fclose(f);
            result.error = "stat failed";
            continue;
        }
        std::vector<uint8_t> bytes(static_cast<size_t>(fsize));
        size_t want = short_read ? bytes.size() / 2 : bytes.size();
        size_t got = std::fread(bytes.data(), 1, want, f);
        std::fclose(f);
        if (got != bytes.size()) {
            result.error = short_read ? "short read (injected)"
                                      : "short read";
            continue;
        }
        if (validate && !validate(bytes)) {
            result.error = "image failed validation";
            continue;
        }
        *out = std::move(bytes);
        result.ok = true;
        break;
    }

    if (!result.ok) {
        std::lock_guard<std::mutex> lock(mu_);
        counters_.failures++;
    }
    return result;
}

void
SpillStore::release(const std::string &key)
{
    std::error_code ec;
    fs::remove(pathFor(key), ec); // idempotent
}

SpillStore::Counters
SpillStore::counters() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return counters_;
}

} // namespace s2e::core::lifecycle
