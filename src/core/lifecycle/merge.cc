#include "core/lifecycle/merge.hh"

#include <algorithm>
#include <vector>

#include "expr/builder.hh"

namespace s2e::core::lifecycle {

namespace {

/** Conjunction of constraints[from..] (trueExpr when empty). */
ExprRef
suffixConjunction(const ExecutionState &state, size_t from,
                  ExprBuilder &builder)
{
    ExprRef conj = builder.trueExpr();
    for (size_t i = from; i < state.constraints.size(); ++i)
        conj = builder.land(conj, state.constraints[i]);
    return conj;
}

} // namespace

MergeAttempt
mergeStates(ExecutionState &survivor, ExecutionState &other,
            ExprBuilder &builder, uint32_t max_divergent_bytes)
{
    MergeAttempt out;
    auto refuse = [&](const char *why) {
        out.reason = why;
        return out;
    };

    // ---- Pass 1: compatibility checks, no mutation ------------------
    if (&survivor == &other)
        return refuse("self");
    if (!survivor.isActive() || !other.isActive())
        return refuse("not-active");
    if (survivor.spilled || other.spilled)
        return refuse("spilled");
    if (survivor.cpu.pc != other.cpu.pc)
        return refuse("pc-mismatch");
    if (survivor.cpu.intEnabled != other.cpu.intEnabled ||
        survivor.cpu.pendingIrqs != other.cpu.pendingIrqs ||
        survivor.cpu.interruptDepth != other.cpu.interruptDepth ||
        survivor.cpu.halted || other.cpu.halted)
        return refuse("interrupt-context");
    if (survivor.multiPathEnabled != other.multiPathEnabled)
        return refuse("mode-mismatch");
    if (survivor.mem.size() != other.mem.size() ||
        survivor.mem.numPages() != other.mem.numPages())
        return refuse("memory-shape");
    if (!survivor.pluginStates().empty() || !other.pluginStates().empty())
        return refuse("plugin-state");
    uint64_t digest_a = survivor.devices.stateDigest();
    uint64_t digest_b = other.devices.stateDigest();
    if (digest_a == vm::Device::kNoStateDigest ||
        digest_b == vm::Device::kNoStateDigest)
        return refuse("undigestable-device");
    if (digest_a != digest_b)
        return refuse("device-divergence");

    // Common constraint prefix: pointer equality is structural
    // equality under hash-consing.
    size_t prefix = 0;
    size_t limit =
        std::min(survivor.constraints.size(), other.constraints.size());
    while (prefix < limit &&
           survivor.constraints[prefix] == other.constraints[prefix])
        prefix++;

    // Diverging memory bytes. Pages are compared by reference first:
    // sibling states share untouched pages, so the scan cost tracks
    // the actual divergence, not RAM size.
    struct ByteDiff {
        uint32_t addr;
        ExprRef a;
        ExprRef b;
    };
    std::vector<ByteDiff> diffs;
    size_t num_pages = survivor.mem.numPages();
    for (size_t idx = 0; idx < num_pages; ++idx) {
        if (survivor.mem.pageRef(idx) == other.mem.pageRef(idx))
            continue;
        uint32_t base = static_cast<uint32_t>(idx) << kMemPageBits;
        uint32_t page_end = std::min<uint32_t>(kMemPageSize,
                                               survivor.mem.size() - base);
        for (uint32_t off = 0; off < page_end; ++off) {
            uint32_t addr = base + off;
            ExprRef ea = survivor.mem.byteExpr(addr, builder);
            ExprRef eb = other.mem.byteExpr(addr, builder);
            if (ea == eb)
                continue;
            if (diffs.size() >= max_divergent_bytes)
                return refuse("memory-divergence");
            diffs.push_back({addr, ea, eb});
        }
    }

    // ---- Pass 2: apply --------------------------------------------
    ExprRef cond_a = suffixConjunction(survivor, prefix, builder);
    ExprRef cond_b = suffixConjunction(other, prefix, builder);

    survivor.constraints.resize(prefix);
    survivor.addConstraint(builder.lor(cond_a, cond_b));

    auto merge_value = [&](Value &va, const Value &vb) {
        if (va == vb)
            return;
        ExprRef merged = builder.ite(cond_a, va.toExpr(builder),
                                     vb.toExpr(builder));
        va = Value(merged);
    };
    for (unsigned i = 0; i < isa::kNumRegs; ++i)
        merge_value(survivor.cpu.regs[i], other.cpu.regs[i]);
    for (unsigned i = 0; i < 4; ++i)
        merge_value(survivor.cpu.flags[i], other.cpu.flags[i]);

    for (const ByteDiff &d : diffs) {
        ExprRef merged = builder.ite(cond_a, d.a, d.b);
        if (merged->isConstant())
            survivor.mem.writeConcreteByte(
                d.addr, static_cast<uint8_t>(merged->value()));
        else
            survivor.mem.makeSymbolic(d.addr, merged);
    }

    // Virtual clocks advance to the farther of the pair; sequence
    // counters take the max so future fork ordinals / symbolic names
    // stay collision-free across the absorbed path's lineage.
    survivor.instrCount = std::max(survivor.instrCount, other.instrCount);
    survivor.symInstrCount =
        std::max(survivor.symInstrCount, other.symInstrCount);
    survivor.blockCount = std::max(survivor.blockCount, other.blockCount);
    survivor.degraded = survivor.degraded || other.degraded;
    survivor.degradeCount += other.degradeCount;
    survivor.mergedSiblings += other.mergedSiblings + 1;
    survivor.restoreSeqs(
        std::max(survivor.forkSeqValue(), other.forkSeqValue()),
        std::max(survivor.symSeqValue(), other.symSeqValue()));

    // The constraint vector was rewritten non-append-only: any
    // incremental solver context is stale beyond repair.
    survivor.solverCtx.reset();

    out.merged = true;
    out.bytesMerged = diffs.size();
    return out;
}

} // namespace s2e::core::lifecycle
