#pragma once

/**
 * @file
 * Shared little-endian wire-format primitives for the versioned image
 * formats (`s2e.state.v1`, `s2e.witness.v1`): byte-buffer Writer,
 * bounds-latching Reader, the FNV-1a payload checksum, and the common
 * 32-byte image header (8-byte magic, version, reserved, payload size,
 * checksum). Extracted from the state serializer so every image format
 * shares one header/checksum convention.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace s2e::core::lifecycle::wire {

/** Image header size shared by all s2e.*.v1 image formats. */
constexpr size_t kHeaderSize = 32;

inline uint64_t
fnv1a(const uint8_t *data, size_t n)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

struct Writer {
    std::vector<uint8_t> buf;

    void u8(uint8_t v) { buf.push_back(v); }
    void
    u16(uint16_t v)
    {
        buf.push_back(v & 0xFF);
        buf.push_back(v >> 8);
    }
    void
    u32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            buf.push_back((v >> (8 * i)) & 0xFF);
    }
    void
    u64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            buf.push_back((v >> (8 * i)) & 0xFF);
    }
    void
    str(const std::string &s)
    {
        u32(static_cast<uint32_t>(s.size()));
        buf.insert(buf.end(), s.begin(), s.end());
    }
    void
    bytes(const uint8_t *data, size_t n)
    {
        buf.insert(buf.end(), data, data + n);
    }
};

/** Bounds-checked little-endian reader; any overrun latches fail(). */
struct Reader {
    const uint8_t *data;
    size_t size;
    size_t off = 0;
    bool ok = true;

    Reader(const uint8_t *d, size_t n) : data(d), size(n) {}

    bool
    need(size_t n)
    {
        if (!ok || size - off < n) {
            ok = false;
            return false;
        }
        return true;
    }
    uint8_t
    u8()
    {
        if (!need(1))
            return 0;
        return data[off++];
    }
    uint16_t
    u16()
    {
        if (!need(2))
            return 0;
        uint16_t v = static_cast<uint16_t>(data[off]) |
                     static_cast<uint16_t>(data[off + 1]) << 8;
        off += 2;
        return v;
    }
    uint32_t
    u32()
    {
        if (!need(4))
            return 0;
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data[off + i]) << (8 * i);
        off += 4;
        return v;
    }
    uint64_t
    u64()
    {
        if (!need(8))
            return 0;
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data[off + i]) << (8 * i);
        off += 8;
        return v;
    }
    std::string
    str()
    {
        uint32_t n = u32();
        if (!need(n))
            return {};
        std::string s(reinterpret_cast<const char *>(data + off), n);
        off += n;
        return s;
    }
    bool
    bytes(uint8_t *out, size_t n)
    {
        if (!need(n))
            return false;
        std::memcpy(out, data + off, n);
        off += n;
        return true;
    }
};

/** Prepend the standard 32-byte header (magic, version, payload size,
 *  FNV-1a checksum) to a serialized payload. */
inline std::vector<uint8_t>
sealImage(const char (&magic)[8], uint32_t version, const Writer &payload)
{
    std::vector<uint8_t> image;
    image.reserve(kHeaderSize + payload.buf.size());
    image.insert(image.end(), magic, magic + sizeof(magic));
    Writer header;
    header.u32(version);
    header.u32(0); // reserved
    header.u64(payload.buf.size());
    header.u64(fnv1a(payload.buf.data(), payload.buf.size()));
    image.insert(image.end(), header.buf.begin(), header.buf.end());
    image.insert(image.end(), payload.buf.begin(), payload.buf.end());
    return image;
}

/** Validate the standard header: magic, exact version, payload size
 *  and checksum. On failure writes a reason into *error (if given). */
inline bool
checkImage(const char (&magic)[8], uint32_t version,
           const std::vector<uint8_t> &image, std::string *error)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    if (image.size() < kHeaderSize)
        return fail("image shorter than header");
    if (std::memcmp(image.data(), magic, sizeof(magic)) != 0)
        return fail("bad magic");
    Reader r(image.data() + sizeof(magic), kHeaderSize - sizeof(magic));
    uint32_t got_version = r.u32();
    r.u32(); // reserved
    uint64_t payload_size = r.u64();
    uint64_t checksum = r.u64();
    if (got_version != version)
        return fail("unsupported version");
    if (payload_size != image.size() - kHeaderSize)
        return fail("payload size mismatch");
    if (checksum != fnv1a(image.data() + kHeaderSize, payload_size))
        return fail("checksum mismatch");
    return true;
}

} // namespace s2e::core::lifecycle::wire
