#include "core/lifecycle/checkpoint.hh"

#include "core/state.hh"

namespace s2e::core::lifecycle {

std::shared_ptr<MemoryState::Page>
Checkpoint::resolve(uint32_t idx) const
{
    for (const Checkpoint *cp = this; cp; cp = cp->parent.get()) {
        auto it = cp->pages.find(idx);
        if (it != cp->pages.end())
            return it->second;
    }
    return nullptr; // never written: the shared zero page
}

std::shared_ptr<const Checkpoint>
takeCheckpoint(ExecutionState &state)
{
    auto cp = std::make_shared<Checkpoint>();
    cp->parent = state.checkpoint;
    cp->numPages = static_cast<uint32_t>(state.mem.numPages());
    cp->depth = state.checkpoint ? state.checkpoint->depth + 1 : 0;
    if (state.checkpoint) {
        for (uint32_t idx : state.mem.dirtyPages())
            cp->pages[idx] = state.mem.pageRef(idx);
    } else {
        // Root checkpoint: capture every materialized page so the
        // chain can rebuild the full image.
        for (uint32_t idx = 0; idx < cp->numPages; ++idx) {
            const auto &ref = state.mem.pageRef(idx);
            if (ref)
                cp->pages[idx] = ref;
        }
    }
    cp->constraints = state.constraints;
    state.checkpoint = cp;
    state.mem.clearDirtyPages();
    return cp;
}

} // namespace s2e::core::lifecycle
