/**
 * @file
 * ITE state merging at s2e_merge_point opcodes.
 *
 * Two sibling states that reach the same merge PC are coalesced into
 * one: let P be their common (pointer-equal) constraint prefix and
 * a, b the conjunctions of their respective constraint suffixes. The
 * merged state carries constraints P ∧ (a ∨ b), and every diverging
 * register, flag and memory byte becomes ite(a, vA, vB) with the
 * survivor's suffix conjunction `a` as selector.
 *
 * Soundness: any model of the merged constraints satisfies a or b.
 * If it satisfies a, the selectors pick A's values and the model
 * describes a feasible execution of path A; symmetrically for b. A
 * model satisfying both picks A's values — still a feasible concrete
 * execution (path A's), which is the "some real execution" guarantee
 * the engine provides everywhere else. What merging trades away is
 * per-path attribution: a merged state represents the union of its
 * constituents' path sets.
 *
 * Compatibility: merging is refused unless program counters and all
 * interrupt/mode context match, both states are resident, neither
 * carries plugin state (which cannot be made conditional), device
 * digests agree exactly, and the number of diverging memory bytes is
 * below a threshold (a wildly diverged pair is cheaper to keep apart
 * than to smother in ITEs).
 */

#ifndef S2E_CORE_LIFECYCLE_MERGE_HH
#define S2E_CORE_LIFECYCLE_MERGE_HH

#include <cstdint>

#include "core/state.hh"

namespace s2e::core::lifecycle {

struct MergeAttempt {
    bool merged = false;
    const char *reason = "";   ///< refusal reason when !merged
    uint64_t bytesMerged = 0;  ///< memory bytes turned into ITEs
};

/**
 * Try to absorb `other` into `survivor` (same merge PC). On refusal
 * neither state is touched; on success only `survivor` is mutated
 * (the caller terminates `other` with StateStatus::Merged) and the
 * survivor's solver context must be rebuilt — its constraint vector
 * was rewritten non-append-only.
 */
MergeAttempt mergeStates(ExecutionState &survivor, ExecutionState &other,
                         ExprBuilder &builder,
                         uint32_t max_divergent_bytes = 4096);

} // namespace s2e::core::lifecycle

#endif // S2E_CORE_LIFECYCLE_MERGE_HH
