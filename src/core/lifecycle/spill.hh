/**
 * @file
 * Fault-tolerant spill store: retry/backoff file I/O for serialized
 * state images, with deterministic fault injection in the same spirit
 * as the solver's FaultPolicy (solver/solver.hh).
 *
 * Every spill write and restore read goes through a bounded retry
 * loop. Injected faults model the real failure ladder:
 *
 *   - ShortWrite     a partial write hits disk, the op reports failure
 *   - ShortRead      a truncated read returns fewer bytes than stored
 *   - Enospc         the write fails outright (disk full)
 *   - CorruptHeader  the write "succeeds" but the on-disk header is
 *                    mangled — only the restore-side checksum catches it
 *
 * Transient faults hit the first attempt only (the retry succeeds);
 * persistent faults survive every retry and surface as a failed
 * SpillIoResult, which the engine degrades into re-pinning the state
 * in memory (write path) or terminating it with
 * StateStatus::SpillFailure (read path) — never a crash.
 */

#ifndef S2E_CORE_LIFECYCLE_SPILL_HH
#define S2E_CORE_LIFECYCLE_SPILL_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "support/rng.hh"

namespace s2e::core::lifecycle {

/** Deterministic spill-I/O fault injection (tests and benches). */
struct SpillFaultPolicy {
    enum class Kind : uint8_t { ShortWrite, ShortRead, Enospc,
                                CorruptHeader };

    bool enabled = false;
    /** Seed for the per-op fault draw (mirrors solver FaultPolicy). */
    uint64_t seed = 0x5eedULL;
    /** Probability an eligible op faults (0 disables random faults). */
    double faultRate = 0.0;
    /** Exact 1-based spill-op ordinals that must fault (write and
     *  read ops share one counter, in issue order). */
    std::vector<uint64_t> triggerOps;
    Kind kind = Kind::ShortWrite;
    /** Fault survives every retry instead of only the first attempt. */
    bool persistent = false;
};

/** Outcome of one logical spill write/read (after retries). */
struct SpillIoResult {
    bool ok = false;
    unsigned retries = 0; ///< extra attempts beyond the first
    std::string error;
};

class SpillStore
{
  public:
    /** Creates `dir` (and parents) on first use; removes it and any
     *  leftover images on destruction. */
    explicit SpillStore(std::string dir, SpillFaultPolicy policy = {},
                        unsigned max_attempts = 3);
    ~SpillStore();

    SpillStore(const SpillStore &) = delete;
    SpillStore &operator=(const SpillStore &) = delete;

    /** Write an image under `key`, retrying with backoff. On failure
     *  no usable file is left behind. */
    SpillIoResult write(const std::string &key,
                        const std::vector<uint8_t> &image);

    /**
     * Read the image stored under `key`. When `validate` is given,
     * each attempt's bytes must pass it (the engine passes the
     * serializer's header+checksum check), otherwise the read is
     * retried — this is what turns a short read or a latent
     * corrupt-header write into a retry instead of a bad restore.
     */
    SpillIoResult read(const std::string &key, std::vector<uint8_t> *out,
                       const std::function<bool(
                           const std::vector<uint8_t> &)> &validate = {});

    /** Delete the image for `key` (idempotent). */
    void release(const std::string &key);

    const std::string &dir() const { return dir_; }

    struct Counters {
        uint64_t writes = 0;
        uint64_t reads = 0;
        uint64_t bytesWritten = 0;
        uint64_t retries = 0;
        uint64_t failures = 0;
        uint64_t faultsInjected = 0;
    };
    Counters counters() const;

  private:
    std::string pathFor(const std::string &key) const;
    /** Decide whether the next op faults (deterministic). */
    bool drawFault();

    std::string dir_;
    SpillFaultPolicy policy_;
    unsigned maxAttempts_;
    bool dirReady_ = false;

    mutable std::mutex mu_;
    Rng rng_;
    uint64_t opIndex_ = 0; ///< 1-based, shared by writes and reads
    Counters counters_;
};

} // namespace s2e::core::lifecycle

#endif // S2E_CORE_LIFECYCLE_SPILL_HH
