#include "core/engine.hh"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <unordered_map>

#include <unistd.h>

#include <fstream>

#include "core/fiber.hh"
#include "core/lifecycle/checkpoint.hh"
#include "core/lifecycle/merge.hh"
#include "core/lifecycle/serializer.hh"
#include "core/replay/extract.hh"
#include "core/replay/replayer.hh"
#include "solver/service.hh"
#include "support/bitops.hh"
#include "support/logging.hh"

namespace s2e::core {

using dbt::MicroOp;
using dbt::UOp;

/**
 * Everything a worker thread needs that cannot be shared: the solver
 * (stateful: model cache, RNG, telemetry), the phase profiler (a span
 * stack is inherently per-thread), and an L1 translation-block cache
 * that makes the TB lookup hot path lock-free — it is flushed whenever
 * the shared TbCache's generation counter moves (self-modifying code).
 */
struct Engine::WorkerContext {
    WorkerContext(unsigned worker_id, ExprBuilder &builder,
                  const EngineConfig &config)
        : id(worker_id), solver(builder, config.solverOptions),
          profiler(config.profileExecution)
    {
        solver.setProfiler(&profiler);
    }

    unsigned id;
    solver::Solver solver;
    obs::PhaseProfiler profiler;
    /** pc -> canonical block, valid only for blocks whose pages were
     *  never written and only while tbGeneration is current. */
    std::unordered_map<uint32_t, std::shared_ptr<dbt::TranslationBlock>>
        tbL1;
    uint64_t tbGeneration = 0;
    double busySeconds = 0;
    uint64_t statesRetired = 0;
};

thread_local Engine::WorkerContext *Engine::tlsWorker_ = nullptr;

solver::Solver &
Engine::curSolver()
{
    return tlsWorker_ ? tlsWorker_->solver : solver_;
}

obs::PhaseProfiler &
Engine::curProfiler()
{
    return tlsWorker_ ? tlsWorker_->profiler : profiler_;
}

namespace {

/** Default scheduling policy: depth-first (run the newest state). */
class DfsSearcher : public Searcher
{
  public:
    const char *name() const override { return "dfs"; }
    ExecutionState *
    select(const std::vector<ExecutionState *> &active) override
    {
        return active.back();
    }
};

/** Concrete fast-path semantics, shared with the vanilla executor. */
uint32_t
concreteBinary(UOp op, uint32_t a, uint32_t b)
{
    switch (op) {
      case UOp::Add: return a + b;
      case UOp::Sub: return a - b;
      case UOp::Mul: return a * b;
      case UOp::UDiv: return b ? a / b : 0xFFFFFFFFu;
      case UOp::SDiv: {
        int32_t sa = static_cast<int32_t>(a);
        int32_t sb = static_cast<int32_t>(b);
        if (sb == 0)
            return 0xFFFFFFFFu;
        if (sb == -1 && sa == INT32_MIN)
            return a;
        return static_cast<uint32_t>(sa / sb);
      }
      case UOp::URem: return b ? a % b : a;
      case UOp::SRem: {
        int32_t sa = static_cast<int32_t>(a);
        int32_t sb = static_cast<int32_t>(b);
        if (sb == 0)
            return a;
        if (sb == -1)
            return 0;
        return static_cast<uint32_t>(sa % sb);
      }
      case UOp::And: return a & b;
      case UOp::Or: return a | b;
      case UOp::Xor: return a ^ b;
      case UOp::Shl: return b >= 32 ? 0 : a << b;
      case UOp::Shr: return b >= 32 ? 0 : a >> b;
      case UOp::Sar: {
        int32_t sa = static_cast<int32_t>(a);
        return static_cast<uint32_t>(b >= 32 ? (sa < 0 ? -1 : 0)
                                             : (sa >> b));
      }
      case UOp::CmpEq: return a == b;
      case UOp::CmpUlt: return a < b;
      case UOp::CmpSlt:
        return static_cast<int32_t>(a) < static_cast<int32_t>(b);
      default:
        panic("concreteBinary: bad uop");
    }
}

/** Symbolic lowering for the same binary micro-ops. */
ExprRef
symbolicBinary(UOp op, ExprRef a, ExprRef b, ExprBuilder &bld)
{
    switch (op) {
      case UOp::Add: return bld.add(a, b);
      case UOp::Sub: return bld.sub(a, b);
      case UOp::Mul: return bld.mul(a, b);
      case UOp::UDiv: return bld.udiv(a, b);
      case UOp::SDiv: return bld.sdiv(a, b);
      case UOp::URem: return bld.urem(a, b);
      case UOp::SRem: return bld.srem(a, b);
      case UOp::And: return bld.bAnd(a, b);
      case UOp::Or: return bld.bOr(a, b);
      case UOp::Xor: return bld.bXor(a, b);
      case UOp::Shl: return bld.shl(a, b);
      case UOp::Shr: return bld.lshr(a, b);
      case UOp::Sar: return bld.ashr(a, b);
      case UOp::CmpEq: return bld.zext(bld.eq(a, b), 32);
      case UOp::CmpUlt: return bld.zext(bld.ult(a, b), 32);
      case UOp::CmpSlt: return bld.zext(bld.slt(a, b), 32);
      default:
        panic("symbolicBinary: bad uop");
    }
}

/**
 * RC-CC (ignoreFeasibility) deliberately lets paths accumulate
 * contradictory constraint sets — static feasibility reasoning is
 * meaningless there, and its static-Sat verdicts (which lean on the
 * satisfiable-set invariant) would register false disagreements
 * against the SAT oracle. Force absint off for such runs; every
 * other option passes through untouched.
 */
solver::SolverOptions
effectiveSolverOptions(const EngineConfig &config)
{
    solver::SolverOptions o = config.solverOptions;
    if (policyFor(config.model).ignoreFeasibility)
        o.useAbsint = false;
    return o;
}

} // namespace

Engine::Engine(vm::MachineConfig machine, EngineConfig config)
    : machine_(std::move(machine)), config_(config),
      policy_(policyFor(config.model)), builder_(),
      solver_(builder_, effectiveSolverOptions(config)),
      profiler_(config.profileExecution),
      concretizationSites_(stats_, "engine.concretizations"),
      degradeSites_(stats_, "engine.solver_degraded"),
      solverFailureSites_(stats_, "engine.solver_failures"),
      translator_(dbt::TranslatorConfig{
          .optimize = config.optimizeTb,
          .verify = config.verifyTb,
      }),
      searcher_(std::make_unique<DfsSearcher>())
{
    // Worker solvers clone their options from config_ — keep it in
    // sync with the sanitized set the engine solver received.
    config_.solverOptions = effectiveSolverOptions(config);

    // Register every per-event counter once; the run loop then updates
    // them through plain pointers (no string build, no map lookup).
    hot_.translations = &stats_.counterSlot("engine.translations");
    hot_.instructions = &stats_.counterSlot("engine.instructions");
    hot_.forks = &stats_.counterSlot("engine.forks");
    hot_.forksSuppressedBudget =
        &stats_.counterSlot("engine.forks_suppressed_budget");
    hot_.forksSuppressedDegraded =
        &stats_.counterSlot("engine.forks_suppressed_degraded");
    hot_.cfgForks = &stats_.counterSlot("engine.cfg_forks");
    hot_.envBranchConcretizations =
        &stats_.counterSlot("engine.env_branch_concretizations");
    hot_.symValuesCreated =
        &stats_.counterSlot("engine.symbolic_values_created");
    hot_.symPointerLoads =
        &stats_.counterSlot("engine.symbolic_pointer_loads");
    hot_.symPointerStores =
        &stats_.counterSlot("engine.symbolic_pointer_stores");
    hot_.symPointerWindowConstrained =
        &stats_.counterSlot("engine.symbolic_pointer_window_constrained");
    hot_.symPointerMaxWindow =
        &stats_.counterSlot("engine.symbolic_pointer_max_window");
    hot_.symbolicHardwareReads =
        &stats_.counterSlot("engine.symbolic_hardware_reads");
    hot_.dmaConcretizations =
        &stats_.counterSlot("engine.dma_concretizations");
    hot_.interruptsDelivered =
        &stats_.counterSlot("engine.interrupts_delivered");
    hot_.solverDegraded = &stats_.counterSlot("engine.solver_degraded");
    hot_.solverFailures = &stats_.counterSlot("engine.solver_failures");
    hot_.memoryHighWatermark =
        &stats_.counterSlot("engine.memory_high_watermark");
    hot_.maxActiveStates = &stats_.counterSlot("engine.max_active_states");
    hot_.uopsExecuted = &stats_.counterSlot("engine.uops_executed");
    hot_.uopsPreOpt = &stats_.counterSlot("engine.uops_pre_opt");
    hot_.statesMerged = &stats_.counterSlot("engine.states_merged");
    hot_.statesSpilled = &stats_.counterSlot("engine.states_spilled");
    hot_.statesRestored = &stats_.counterSlot("engine.states_restored");
    hot_.spillBytes = &stats_.counterSlot("engine.spill_bytes");
    hot_.spillRetries = &stats_.counterSlot("engine.spill_retries");
    hot_.spillWriteFailures =
        &stats_.counterSlot("engine.spill_write_failures");
    hot_.residentStatesPeak =
        &stats_.counterSlot("engine.resident_states_peak");
    hot_.witnessesEmitted = &stats_.counterSlot("engine.witnesses_emitted");
    hot_.witnessExtractFailures =
        &stats_.counterSlot("engine.witness_extract_failures");
    hot_.witnessesSkipped =
        &stats_.counterSlot("engine.witnesses_skipped");
    hot_.replayDivergences =
        &stats_.counterSlot("engine.replay_divergences");
    hot_.fibersActive = &stats_.counterSlot("engine.fibers_active");
    hot_.solverQueueDepth =
        &stats_.counterSlot("engine.solver_queue_depth");
    hot_.batchedQueries = &stats_.counterSlot("engine.batched_queries");
    hot_.suspends = &stats_.counterSlot("engine.suspends");
    hot_.resumes = &stats_.counterSlot("engine.resumes");
    hot_.asyncQueries = &stats_.counterSlot("engine.async_queries");
    hot_.inlineSolverFallbacks =
        &stats_.counterSlot("engine.inline_solver_fallbacks");
    solver_.setProfiler(&profiler_);

    if (config_.useFibers) {
        // Phase spans are per-worker RAII objects; a fiber that parks
        // inside one and resumes on another worker would close it on
        // the wrong span stack. Fiber runs are profiled through the
        // service/overlap counters instead.
        config_.profileExecution = false;
    }

    if (config_.replayWitness) {
        // Replay mode: one concrete path re-executed serially with the
        // solver disconnected. Budgets, merging and emission are
        // meaningless here (and budget kills would land at
        // schedule-dependent points); the witness's own terminal
        // instruction count bounds the run via the overrun check.
        config_.numWorkers = 1;
        config_.useFibers = false;
        config_.emitWitnesses = false;
        config_.enableMergePoints = false;
        config_.maxStatesCreated = 0;
        config_.maxInstructions = 0;
        config_.maxWallSeconds = 0;
        config_.maxResidentBytes = 0;
        replayCursor_ =
            std::make_unique<replay::ReplayCursor>(config_.replayWitness);
    }
    // RC-CC runs (ignoreFeasibility) deliberately keep infeasible
    // paths alive — there is no model to extract a witness from.
    recording_ = config_.emitWitnesses && !policy_.ignoreFeasibility;

    serializer_ = std::make_unique<lifecycle::StateSerializer>(builder_);
    // The spill store is constructed up front (workers would otherwise
    // race a lazy init); its directory is only created on first write
    // and removed with the engine.
    std::string spill_dir = config_.spillDir;
    if (spill_dir.empty())
        spill_dir = (std::filesystem::temp_directory_path() /
                     strprintf("s2e-spill-%ld-%p",
                               static_cast<long>(::getpid()),
                               static_cast<void *>(this)))
                        .string();
    spillStore_ = std::make_unique<lifecycle::SpillStore>(
        spill_dir, config_.spillFaults);

    auto initial = std::make_unique<ExecutionState>(machine_.ramSize,
                                                    [this] {
                                                        vm::DeviceSet set;
                                                        if (machine_.deviceSetup)
                                                            machine_.deviceSetup(set);
                                                        return set;
                                                    }());
    initial->setId(nextStateId_++);
    initial->mem.loadProgram(machine_.program);
    initial->cpu.pc = machine_.program.entry;
    states_.push_back(std::move(initial));
    active_.push_back(states_.back().get());
    // Root checkpoint: freezes the loaded program image, so the first
    // fork's page delta is empty and a spilled never-forked state
    // serializes only what it wrote after load.
    lifecycle::takeCheckpoint(*states_.back());
    residentInc();
    if (replayCursor_)
        replayCursor_->setLeaf(states_.back().get());
}

Engine::~Engine() = default;

void
Engine::setSearcher(std::unique_ptr<Searcher> searcher)
{
    S2E_ASSERT(searcher != nullptr, "null searcher");
    std::lock_guard<std::mutex> lock(statesMutex_);
    searcher_ = std::move(searcher);
    for (ExecutionState *s : active_)
        searcher_->stateAdded(*s);
}

ExecutionState &
Engine::initialState()
{
    return *states_.front();
}

std::vector<ExecutionState *>
Engine::activeStates() const
{
    std::lock_guard<std::mutex> lock(statesMutex_);
    return active_;
}

bool
Engine::isUnitPc(uint32_t pc) const
{
    if (config_.unitRanges.empty())
        return true;
    for (const auto &[lo, hi] : config_.unitRanges)
        if (pc >= lo && pc < hi)
            return true;
    return false;
}

dbt::CodeReader
Engine::codeReaderFor(ExecutionState &state)
{
    return [&state](uint32_t addr, uint8_t *out) {
        return state.mem.readConcreteByte(addr, out);
    };
}

vm::DeviceBus
Engine::deviceBusFor(ExecutionState &state)
{
    vm::DeviceBus bus;
    bus.readMem = [this, &state](uint32_t addr) -> uint8_t {
        if (!state.mem.inBounds(addr, 1))
            return 0;
        uint8_t byte = 0;
        if (state.mem.readConcreteByte(addr, &byte))
            return byte;
        // DMA read of a symbolic byte: concretize in place (the
        // device is part of the concrete domain).
        ExprRef e = state.mem.byteExpr(addr, builder_);
        uint64_t raw = 0;
        auto v = pathGetValue(state, builder_.zext(e, 32), &raw);
        if (v.isUnknown()) {
            solverFailState(state, "dma_read", v,
                            "solver gave up concretizing a DMA read");
            return 0;
        }
        if (v.isUnsat()) {
            killState(state, StateStatus::Unsat,
                      "unsatisfiable constraints at DMA read");
            return 0;
        }
        uint8_t cv = static_cast<uint8_t>(raw);
        state.addConstraint(
            builder_.eq(e, builder_.constant(cv, 8)));
        state.mem.writeConcreteByte(addr, cv);
        Stats::bump(*hot_.dmaConcretizations);
        return cv;
    };
    bus.writeMem = [this, &state](uint32_t addr, uint8_t value) {
        if (!state.mem.inBounds(addr, 1))
            return;
        state.mem.writeConcreteByte(addr, value);
        if (tbCache_.overlapsCode(addr, 1))
            tbCache_.notifyWrite(addr, 1);
        // DMA writes are memory accesses too: analyzers (e.g. the
        // MemoryChecker catching device overruns) need to see them.
        if (!events_.onMemoryAccess.empty()) {
            MemAccessInfo info{addr, 1, true, false, nullptr};
            events_.onMemoryAccess.emit(state, info);
        }
    };
    bus.raiseIrq = [&state](unsigned irq) {
        state.cpu.pendingIrqs |= 1u << irq;
    };
    return bus;
}

std::shared_ptr<dbt::TranslationBlock>
Engine::fetchBlock(ExecutionState &state)
{
    dbt::CodeReader reader = codeReaderFor(state);

    // Worker L1: lock-free hit path over the shared cache. Entries
    // only exist for blocks on never-written pages, and the whole L1
    // is dropped when the shared cache's generation moves (another
    // state invalidated translations).
    WorkerContext *w = tlsWorker_;
    if (w) {
        uint64_t gen = tbCache_.generation();
        if (gen != w->tbGeneration) {
            w->tbL1.clear();
            w->tbGeneration = gen;
        }
        auto it = w->tbL1.find(state.cpu.pc);
        if (it != w->tbL1.end())
            return it->second;
    }

    bool clean = false;
    auto tb = tbCache_.lookup(state.cpu.pc, reader, &clean);
    if (tb) {
        if (w && clean)
            w->tbL1.emplace(state.cpu.pc, tb);
        return tb;
    }

    obs::PhaseSpan span(curProfiler(), obs::Phase::Translate);
    tb = translator_.translateRaw(state.cpu.pc, reader);
    Stats::bump(*hot_.translations);
    if (tb->instrPcs.empty())
        return tb; // decode fault; caller handles

    // onInstrTranslation: let plugins inspect and mark instructions.
    bool any_marked = false;
    if (!events_.onInstrTranslation.empty()) {
        for (size_t i = 0; i < tb->instrPcs.size(); ++i) {
            uint8_t buf[10];
            size_t avail = 0;
            for (; avail < sizeof(buf); ++avail)
                if (!reader(tb->instrPcs[i] +
                                static_cast<uint32_t>(avail),
                            &buf[avail]))
                    break;
            isa::Instruction instr;
            if (!isa::decode(buf, avail, instr))
                continue;
            bool mark = false;
            events_.onInstrTranslation.emit(state, tb->instrPcs[i], instr,
                                            &mark);
            if (mark) {
                tb->marked[i] = true;
                any_marked = true;
            }
        }
    }
    // A mark means a hook fires at that instruction boundary and may
    // read or rewrite registers and flags mid-block — state the
    // optimization passes assume only the block's own ops touch. Keep
    // hooked blocks naive; optimize the rest.
    if (!any_marked)
        translator_.optimizeBlock(*tb);
    // Canonical insert: if another worker raced us to translate this
    // pc, adopt its block so every worker executes the same object.
    tb = tbCache_.insert(tb, reader, &clean);
    if (w && clean)
        w->tbL1.emplace(state.cpu.pc, tb);
    return tb;
}

ExprRef
Engine::makeRegSymbolic(ExecutionState &state, unsigned reg,
                        const std::string &name,
                        std::optional<std::pair<uint32_t, uint32_t>> range)
{
    S2E_ASSERT(reg < isa::kNumRegs, "bad register %u", reg);
    if (!policy_.symbolicInputsEnabled) {
        // SC-CE: inputs stay concrete; return the current value.
        return state.cpu.regs[reg].toExpr(builder_);
    }
    if (replayCursor_) {
        // Substitute the recorded concrete input; no variable, no
        // constraints (the witness assignment satisfies them all).
        auto v = replaySubstitute(state, replay::SiteKind::SymReg, reg, 0);
        if (v)
            state.cpu.regs[reg] = Value(static_cast<uint32_t>(*v));
        return state.cpu.regs[reg].toExpr(builder_);
    }
    ExprRef var = builder_.var(symName(state, name), 32);
    if (range) {
        state.addConstraint(
            builder_.uge(var, builder_.constant(range->first, 32)));
        state.addConstraint(
            builder_.ule(var, builder_.constant(range->second, 32)));
    }
    state.cpu.regs[reg] = Value(var);
    Stats::bump(*hot_.symValuesCreated);
    recordEvent(state, replay::SiteKind::SymReg, state.cpu.pc, reg, 0,
                {var->name()});
    return var;
}

void
Engine::makeMemSymbolic(ExecutionState &state, uint32_t addr, uint32_t len,
                        const std::string &name)
{
    if (!policy_.symbolicInputsEnabled)
        return;
    if (replayCursor_) {
        // Substitute the recorded bytes (vars may be shorter than len
        // when the original call ran out of bounds mid-range).
        const replay::NondetEvent *ev = replayCursor_->expect(
            replay::SiteKind::SymMem, state.instrCount, state.cpu.pc,
            addr, len);
        if (!ev) {
            replayDiverge(state, replayCursor_->divergence());
            return;
        }
        for (size_t i = 0; i < ev->vars.size(); ++i) {
            uint64_t v = 0;
            if (!replayCursor_->inputValue(ev->vars[i], &v)) {
                replayDiverge(state, "witness has no value for " +
                                         ev->vars[i]);
                return;
            }
            state.mem.writeConcreteByte(addr + static_cast<uint32_t>(i),
                                        static_cast<uint8_t>(v));
        }
        if (tbCache_.overlapsCode(addr, len))
            tbCache_.notifyWrite(addr, len);
        return;
    }
    std::string base = symName(state, name);
    std::vector<std::string> names;
    for (uint32_t i = 0; i < len; ++i) {
        if (!state.mem.inBounds(addr + i, 1))
            break;
        ExprRef var =
            builder_.var(strprintf("%s[%u]", base.c_str(), i), 8);
        state.mem.makeSymbolic(addr + i, var);
        if (recording_)
            names.push_back(var->name());
    }
    if (tbCache_.overlapsCode(addr, len))
        tbCache_.notifyWrite(addr, len);
    Stats::bump(*hot_.symValuesCreated, len);
    recordEvent(state, replay::SiteKind::SymMem, state.cpu.pc, addr, len,
                std::move(names));
}

std::optional<uint32_t>
Engine::concretize(ExecutionState &state, const Value &value,
                   const char *reason)
{
    if (value.isConcrete())
        return value.concrete();
    Stats::bump(concretizationSites_.slot(reason));
    uint64_t raw = 0;
    auto v = pathGetValue(state, value.expr(), &raw);
    if (v.isUnknown()) {
        // A concretization site must produce *a* value; with the
        // solver giving up there is no sound one. Kill the state as a
        // solver failure — Unsat would misreport the path as infeasible.
        solverFailState(state, "concretize", v,
                        strprintf("solver gave up while concretizing "
                                  "(%s)",
                                  reason));
        return std::nullopt;
    }
    if (v.isUnsat()) {
        killState(state, StateStatus::Unsat,
                  strprintf("unsatisfiable constraints while "
                            "concretizing (%s)",
                            reason));
        return std::nullopt;
    }
    uint32_t cv = static_cast<uint32_t>(raw);
    // The soft constraint of §2.2: concretization corsets the path.
    state.addConstraint(
        builder_.eq(value.expr(), builder_.constant(cv, 32)));
    return cv;
}

std::optional<uint32_t>
Engine::readRegConcrete(ExecutionState &state, unsigned reg)
{
    S2E_ASSERT(reg < isa::kNumRegs, "bad register %u", reg);
    auto v = concretize(state, state.cpu.regs[reg], "reg_read");
    if (v)
        state.cpu.regs[reg] = Value(*v);
    return v;
}

namespace {
/** The state currently executing a timeslice on this thread. A kill
 *  aimed at any other state (sibling sweeps, external callers) lands
 *  at a schedule-dependent point of the victim's execution. */
thread_local ExecutionState *tl_executing = nullptr;
} // namespace

void
Engine::killState(ExecutionState &state, StateStatus status,
                  const std::string &message)
{
    // Cross-thread kills (e.g. a plugin killing a sibling path) are
    // serialized here; the message is written before the release
    // status store so any thread that observes !isActive() (acquire)
    // also sees the message.
    std::lock_guard<std::mutex> lock(killMutex_);
    if (!state.isActive())
        return;
    if (&state != tl_executing)
        state.killedAsync = true;
    state.statusMessage = message;
    state.setStatus(status);
}

void
Engine::noteSolverDegraded(ExecutionState &state, const char *site,
                           bool timed_out)
{
    state.degraded = true;
    state.degradeCount++;
    Stats::bump(*hot_.solverDegraded);
    Stats::bump(degradeSites_.slot(site));
    SolverDegradeInfo info{state.cpu.pc, site, timed_out, false};
    events_.onSolverDegraded.emit(state, info);
}

void
Engine::solverFailState(ExecutionState &state, const char *site,
                        const solver::QueryOutcome &outcome,
                        const std::string &message)
{
    Stats::bump(*hot_.solverFailures);
    Stats::bump(solverFailureSites_.slot(site));
    SolverDegradeInfo info{state.cpu.pc, site, outcome.timedOut, true};
    events_.onSolverDegraded.emit(state, info);
    killState(state, StateStatus::SolverFailure, message);
}

ExecutionState *
Engine::forkState(ExecutionState &state)
{
    if (replayCursor_)
        return replayApiFork(state);
    ExecutionState *child = fork(state, builder_.trueExpr());
    if (recording_) {
        // Role 0 = the caller's own path continues (even when the
        // child was suppressed by the state budget: the parent's
        // behavior is the same either way); role 1 = the path that
        // became the injected child.
        recordEvent(state, replay::SiteKind::ApiFork, state.cpu.pc, 0, 0);
        if (child)
            recordEvent(*child, replay::SiteKind::ApiFork, state.cpu.pc,
                        1, 0);
    }
    return child;
}

ExecutionState *
Engine::replayApiFork(ExecutionState &state)
{
    const replay::NondetEvent *ev =
        replayCursor_->expectApiFork(state.instrCount, state.cpu.pc);
    if (!ev) {
        replayDiverge(state, replayCursor_->divergence());
        return nullptr;
    }
    if (ev->a == 0) {
        // The witness path stayed on the caller's side; returning
        // null makes the plugin skip its child-only injection, which
        // is exactly what the original parent observed.
        return nullptr;
    }
    // The witness path *is* the injected child. Re-fork for real so
    // the child re-executes the current block from its start (the
    // original child did too, which is what keeps every later
    // instruction-count stamp aligned), hand the cursor over, and
    // retire the parent as a replay artifact.
    ExecutionState *child = fork(state, builder_.trueExpr());
    S2E_ASSERT(child, "replay fork cannot be budget-suppressed");
    replayCursor_->setLeaf(child);
    killState(state, StateStatus::Killed,
              "replay: path continued as the fork child");
    return child;
}

ExecutionState *
Engine::fork(ExecutionState &state, ExprRef condition)
{
    obs::PhaseSpan span(curProfiler(), obs::Phase::Fork);
    ExecutionState *child_ptr = nullptr;
    {
        std::lock_guard<std::mutex> lock(statesMutex_);
        if (config_.maxStatesCreated &&
            states_.size() >= config_.maxStatesCreated) {
            Stats::bump(*hot_.forksSuppressedBudget);
            return nullptr;
        }
        // The child's path id is derived from the parent's, not from
        // the runtime state id: "<parent>.<k>" for the parent's k-th
        // fork. This keeps path identity independent of worker
        // scheduling so serial and parallel runs name paths alike.
        // Re-checkpoint the parent right before cloning: both sides
        // then share one frozen snapshot (pages + constraint prefix)
        // and start with an empty delta, so a later spill of either
        // serializes only what it wrote after this fork.
        lifecycle::takeCheckpoint(state);
        uint32_t fork_seq = state.nextForkSeq();
        auto child = state.clone(nextStateId_++);
        child->setPathId(state.pathId() + "." +
                         std::to_string(fork_seq));
        child_ptr = child.get();
        states_.push_back(std::move(child));
        active_.push_back(child_ptr);
        Stats::raiseTo(*hot_.maxActiveStates, active_.size());
        searcher_->stateAdded(*child_ptr);
        residentInc();
    }
    Stats::bump(*hot_.forks);
    // Publish the child's footprint right away: a forked state
    // consumes memory while it waits in the queue, and short-lived
    // paths may retire within their first slice — without this the
    // parallel governor would only ever see states that survived a
    // requeue and the resident cap could never trip.
    accountStateMemory(*child_ptr);

    // Signal dispatch stays on the forking worker: plugins see the
    // fork before either side of it runs again.
    ForkInfo info{&state, child_ptr, condition};
    events_.onExecutionFork.emit(info);

    // In parallel mode the child must NOT become runnable yet: the
    // caller still diverges it after fork() returns (handleBranch adds
    // the negated constraint and the fallthrough pc; plugins inject
    // failure values). Publishing now would let another worker steal a
    // half-built state. Park it on the forking *state's* pending list
    // (fork parents are always the currently-executing state, so only
    // the owning worker touches it); the engine flushes at the next
    // block boundary, after the caller's mutations are complete —
    // never while the parent is suspended mid-block at a solver site.
    if (queue_) {
        if (tlsWorker_)
            state.pendingChildren.push_back(child_ptr);
        else
            queue_->add(0, child_ptr);
    }
    return child_ptr;
}

uint32_t
Engine::handleBranch(ExecutionState &state, const Value &cond,
                     uint32_t branch_pc, uint32_t taken_pc,
                     uint32_t fallthrough_pc)
{
    if (cond.isConcrete()) {
        uint32_t chosen = cond.concrete() ? taken_pc : fallthrough_pc;
        // In replay every branch is concrete; the ones that were
        // symbolic in the original run must go the recorded way.
        if (replayCursor_ && state.isActive() &&
            !replayCursor_->checkBranch(state.instrCount, branch_pc,
                                        chosen))
            replayDiverge(state, replayCursor_->divergence());
        return chosen;
    }
    if (replayCursor_) {
        // Recorded inputs are substituted concretely, so a symbolic
        // condition can only mean the replay went off the rails.
        replayDiverge(state,
                      strprintf("symbolic branch condition at 0x%x "
                                "during concrete replay",
                                branch_pc));
        return fallthrough_pc;
    }
    uint32_t chosen = resolveSymbolicBranch(state, cond, branch_pc,
                                            taken_pc, fallthrough_pc);
    // Record only surviving paths: kill exits never replay, and the
    // fork child's (opposite) outcome is recorded at the fork site.
    if (recording_ && state.isActive())
        recordEvent(state, replay::SiteKind::Branch, branch_pc, chosen, 0);
    return chosen;
}

uint32_t
Engine::resolveSymbolicBranch(ExecutionState &state, const Value &cond,
                              uint32_t branch_pc, uint32_t taken_pc,
                              uint32_t fallthrough_pc)
{
    obs::PhaseSpan span(curProfiler(), obs::Phase::SymbolicExec);
    state.symInstrCount++;
    ExprRef c = builder_.ne(cond.toExpr(builder_),
                            builder_.constant(0, 32));

    bool in_unit = isUnitPc(branch_pc);
    bool may_fork = state.multiPathEnabled &&
                    (in_unit || policy_.forkInEnvironment);

    if (!in_unit && !policy_.forkInEnvironment) {
        // Environment branches on symbolic data: consistency policy.
        switch (policy_.envSymbolicBranch) {
          case EnvSymbolicBranchPolicy::Abort:
            killState(state, StateStatus::Aborted,
                      strprintf("environment branch on symbolic data at "
                                "0x%x (LC propagation rule)",
                                branch_pc));
            return fallthrough_pc;
          case EnvSymbolicBranchPolicy::ConcretizeHard:
          case EnvSymbolicBranchPolicy::ConcretizeSoft: {
            Stats::bump(*hot_.envBranchConcretizations);
            auto v = concretize(state, cond, "env_branch");
            if (!v)
                return fallthrough_pc;
            return *v ? taken_pc : fallthrough_pc;
          }
          case EnvSymbolicBranchPolicy::Fork:
            break; // fall through to forking below
        }
        may_fork = state.multiPathEnabled;
    }

    if (!may_fork) {
        // Multi-path disabled (s2e_dis): soft-concretize the branch.
        auto v = concretize(state, cond, "branch_singlepath");
        if (!v)
            return fallthrough_pc;
        return *v ? taken_pc : fallthrough_pc;
    }

    if (policy_.ignoreFeasibility && in_unit) {
        // RC-CC: follow both CFG edges, skip the solver, record
        // nothing (the state is allowed to become inconsistent).
        ExecutionState *child = fork(state, c);
        if (child)
            child->cpu.pc = fallthrough_pc;
        Stats::bump(*hot_.cfgForks);
        return taken_pc;
    }

    auto feasibility = pathCheckBranch(state, c);
    const auto &ts = feasibility.trueSide;
    const auto &fs = feasibility.falseSide;

    if (ts.isSat() && fs.isSat()) {
        ExecutionState *child = fork(state, c);
        state.addConstraint(c);
        if (child) {
            child->addConstraint(builder_.lnot(c));
            child->cpu.pc = fallthrough_pc;
            // The child's log was cloned before the branch resolved;
            // its own outcome (the fallthrough side) goes on its log
            // here, the parent's on the parent's in handleBranch.
            recordEvent(*child, replay::SiteKind::Branch, branch_pc,
                        fallthrough_pc, 0);
        }
        return taken_pc;
    }
    if (!ts.isUnknown() && !fs.isUnknown()) {
        // Definite answers on both sides: single feasible successor
        // (or none — the path invariant broke, an engine bug guard).
        if (ts.isSat()) {
            state.addConstraint(c);
            return taken_pc;
        }
        if (fs.isSat()) {
            state.addConstraint(builder_.lnot(c));
            return fallthrough_pc;
        }
        killState(state, StateStatus::Unsat,
                  strprintf("both branch sides infeasible at 0x%x",
                            branch_pc));
        return fallthrough_pc;
    }

    // At least one side is Unknown: graceful degradation. Suppress the
    // fork and follow exactly one side that is *known or made*
    // feasible — never silently drop a definite side, never follow an
    // infeasible one.
    Stats::bump(*hot_.forksSuppressedDegraded);
    noteSolverDegraded(state, "branch", ts.timedOut || fs.timedOut);
    if (ts.isSat()) {
        state.addConstraint(c);
        return taken_pc;
    }
    if (fs.isSat()) {
        state.addConstraint(builder_.lnot(c));
        return fallthrough_pc;
    }
    // A definite Unsat cannot reach this block on the true side:
    // checkBranch short-circuits it into a definite-Sat false side,
    // which the definite-answers block above consumed. Enforce that
    // instead of assuming it — a future checkBranch change that
    // breaks the invariant would otherwise silently skew degraded
    // branch handling.
    S2E_ASSERT(ts.isUnknown(),
               "degraded branch: true side is definite but unhandled");
    if (fs.isUnsat()) {
        // Unknown + Unsat: the false side is proved infeasible and the
        // path invariant keeps the constraint set satisfiable, so the
        // true side is forced — no concretization query needed.
        state.addConstraint(c);
        return taken_pc;
    }
    // Both Unknown: fall back to the concrete-evaluated side, like
    // concretization does.
    uint64_t cv = 0;
    auto pick = pathGetValue(state, c, &cv);
    if (pick.isUnknown()) {
        solverFailState(state, "branch", pick,
                        strprintf("solver gave up on both sides of the "
                                  "branch at 0x%x",
                                  branch_pc));
        return fallthrough_pc;
    }
    if (pick.isUnsat()) {
        killState(state, StateStatus::Unsat,
                  strprintf("unsatisfiable constraints at branch 0x%x",
                            branch_pc));
        return fallthrough_pc;
    }
    if (cv) {
        state.addConstraint(c);
        return taken_pc;
    }
    state.addConstraint(builder_.lnot(c));
    return fallthrough_pc;
}

Value
Engine::symbolicLoad(ExecutionState &state, const Value &addr, unsigned len)
{
    obs::PhaseSpan span(curProfiler(), obs::Phase::SymbolicExec);
    Stats::bump(*hot_.symPointerLoads);
    ExprRef a = addr.expr();

    // Pick the window containing one feasible address, constrain the
    // pointer into it (the paper's page-content-passing scheme: only
    // a small page of memory is handed to the solver).
    uint64_t example = 0;
    auto ex = pathGetValue(state, a, &example);
    if (ex.isUnknown()) {
        solverFailState(state, "symbolic_load", ex,
                        "solver gave up resolving a symbolic load "
                        "address");
        return Value(0u);
    }
    if (ex.isUnsat()) {
        killState(state, StateStatus::Unsat,
                  "unsatisfiable constraints at symbolic load");
        return Value(0u);
    }
    uint32_t window = config_.symPointerWindow;
    uint32_t base = static_cast<uint32_t>(example) & ~(window - 1);
    if (!state.mem.inBounds(base, window)) {
        killState(state, StateStatus::Crashed,
                  strprintf("symbolic pointer window 0x%x out of bounds",
                            base));
        return Value(0u);
    }
    ExprRef lo = builder_.constant(base, 32);
    ExprRef hi = builder_.constant(base + window - len, 32);
    ExprRef in_window = builder_.land(builder_.uge(a, lo),
                                      builder_.ule(a, hi));
    auto must = pathMustBeTrue(state, in_window);
    if (!must.yes()) {
        // Not *proved* inside the window (definite no, or the solver
        // gave up): the soft constraint keeps the ite chain sound
        // either way, but an Unknown means feasible addresses may have
        // been cut off — record the degradation.
        state.addConstraint(in_window); // soft window constraint
        Stats::bump(*hot_.symPointerWindowConstrained);
        if (must.isUnknown())
            noteSolverDegraded(state, "symload_window", must.timedOut);
    }

    // Build the ite chain over the window contents.
    Value result;
    bool first = true;
    ExprRef read = nullptr;
    for (uint32_t off = window - len + 1; off-- > 0;) {
        uint32_t candidate = base + off;
        ExprRef byte = state.mem.byteExpr(candidate, builder_);
        ExprRef word = byte;
        for (unsigned i = 1; i < len; ++i)
            word = builder_.concat(
                state.mem.byteExpr(candidate + i, builder_), word);
        if (first) {
            read = word;
            first = false;
        } else {
            read = builder_.ite(
                builder_.eq(a, builder_.constant(candidate, 32)), word,
                read);
        }
    }
    Stats::raiseTo(*hot_.symPointerMaxWindow, window);
    result = Value(read);
    (void)result;
    return Value(read);
}

Value
Engine::loadFrom(ExecutionState &state, uint32_t addr, unsigned len,
                 bool sign_extend)
{
    // MMIO window.
    if (addr >= vm::kMmioBase) {
        for (const auto &[lo, hi] : config_.symbolicMmioRanges) {
            if (addr >= lo && addr < hi &&
                policy_.symbolicHardwareAllowed &&
                policy_.symbolicInputsEnabled) {
                Stats::bump(*hot_.symbolicHardwareReads);
                if (replayCursor_) {
                    auto v = replaySubstitute(
                        state, replay::SiteKind::MmioRead, addr, 0);
                    return Value(static_cast<uint32_t>(v.value_or(0)));
                }
                ExprRef var = builder_.var(
                    symName(state, strprintf("mmio_%x", addr)), 32);
                recordEvent(state, replay::SiteKind::MmioRead,
                            state.cpu.pc, addr, 0, {var->name()});
                return Value(var);
            }
        }
        vm::Device *dev = state.devices.findMmio(addr);
        if (!dev) {
            killState(state, StateStatus::Crashed,
                      strprintf("MMIO read from unmapped 0x%x", addr));
            return Value(0u);
        }
        vm::DeviceBus bus = deviceBusFor(state);
        return Value(dev->mmioRead(addr, len, bus));
    }

    if (!state.mem.inBounds(addr, len)) {
        killState(state, StateStatus::Crashed,
                  strprintf("memory read at 0x%x (+%u) out of bounds",
                            addr, len));
        return Value(0u);
    }
    Value v = state.mem.read(addr, len, builder_);
    if (len == 4)
        return v;
    if (v.isConcrete()) {
        uint32_t raw = v.concrete();
        if (sign_extend)
            return Value(static_cast<uint32_t>(signExtend(raw, len * 8)));
        return Value(raw);
    }
    ExprRef e = v.expr();
    return Value(sign_extend ? builder_.sext(e, 32) : builder_.zext(e, 32));
}

bool
Engine::storeTo(ExecutionState &state, uint32_t addr, const Value &value,
                unsigned len)
{
    if (addr >= vm::kMmioBase) {
        vm::Device *dev = state.devices.findMmio(addr);
        if (!dev) {
            killState(state, StateStatus::Crashed,
                      strprintf("MMIO write to unmapped 0x%x", addr));
            return false;
        }
        Value v = value;
        auto conc = concretize(state, v, "mmio_write");
        if (!conc)
            return false;
        vm::DeviceBus bus = deviceBusFor(state);
        dev->mmioWrite(addr, *conc, len, bus);
        return true;
    }

    if (!state.mem.inBounds(addr, len)) {
        killState(state, StateStatus::Crashed,
                  strprintf("memory write at 0x%x (+%u) out of bounds",
                            addr, len));
        return false;
    }

    if (value.isConcrete()) {
        state.mem.write(addr, Value(value.concrete()), len, builder_);
    } else {
        ExprRef e = value.expr();
        if (len < 4)
            e = builder_.extract(e, 0, len * 8);
        state.mem.write(addr, Value(e), len, builder_);
    }
    if (tbCache_.overlapsCode(addr, len))
        tbCache_.notifyWrite(addr, len);
    return true;
}

Value
Engine::ioRead(ExecutionState &state, uint32_t port)
{
    uint16_t p = static_cast<uint16_t>(port);
    for (const auto &[lo, hi] : config_.symbolicPortRanges) {
        if (p >= lo && p <= hi && policy_.symbolicHardwareAllowed &&
            policy_.symbolicInputsEnabled) {
            Stats::bump(*hot_.symbolicHardwareReads);
            if (replayCursor_) {
                auto rv = replaySubstitute(
                    state, replay::SiteKind::PortRead, p, 0);
                Value v(static_cast<uint32_t>(rv.value_or(0)));
                events_.onPortAccess.emit(state, p, v, false);
                return v;
            }
            ExprRef var =
                builder_.var(symName(state, strprintf("port_%x", p)), 32);
            recordEvent(state, replay::SiteKind::PortRead, state.cpu.pc,
                        p, 0, {var->name()});
            Value v(var);
            events_.onPortAccess.emit(state, p, v, false);
            return v;
        }
    }
    vm::Device *dev = state.devices.findPort(p);
    Value result(0xFFFFFFFFu); // floating bus
    if (dev) {
        vm::DeviceBus bus = deviceBusFor(state);
        result = Value(dev->ioRead(p, bus));
    }
    events_.onPortAccess.emit(state, p, result, false);
    return result;
}

void
Engine::ioWrite(ExecutionState &state, uint32_t port, const Value &value)
{
    uint16_t p = static_cast<uint16_t>(port);
    // Analyzers see the value *before* concretization so they can
    // detect symbolic (e.g. secret-tainted) data leaving the system.
    events_.onPortAccess.emit(state, p, value, true);
    vm::Device *dev = state.devices.findPort(p);
    if (!dev)
        return;
    auto conc = concretize(state, value, "port_write");
    if (!conc)
        return;
    vm::DeviceBus bus = deviceBusFor(state);
    dev->ioWrite(p, *conc, bus);
}

Value
Engine::packFlags(ExecutionState &state) const
{
    const CpuState &cpu = state.cpu;
    bool all_concrete = true;
    for (const Value &f : cpu.flags)
        if (f.isSymbolic())
            all_concrete = false;
    uint32_t ie = cpu.intEnabled ? 1u : 0u;
    if (all_concrete) {
        uint32_t w = (cpu.flags[0].concrete() & 1) |
                     ((cpu.flags[1].concrete() & 1) << 1) |
                     ((cpu.flags[2].concrete() & 1) << 2) |
                     ((cpu.flags[3].concrete() & 1) << 3) | (ie << 4);
        return Value(w);
    }
    ExprBuilder &bld = const_cast<ExprBuilder &>(builder_);
    ExprRef w = bld.constant(ie << 4, 32);
    for (unsigned i = 0; i < 4; ++i) {
        ExprRef f = cpu.flags[i].toExpr(bld);
        ExprRef bit = bld.bAnd(f, bld.constant(1, 32));
        w = bld.bOr(w, bld.shl(bit, bld.constant(i, 32)));
    }
    return Value(w);
}

void
Engine::unpackFlags(ExecutionState &state, const Value &word)
{
    if (word.isConcrete()) {
        uint32_t w = word.concrete();
        for (unsigned i = 0; i < 4; ++i)
            state.cpu.flags[i] = Value((w >> i) & 1);
        state.cpu.intEnabled = (w >> 4) & 1;
        return;
    }
    ExprRef w = word.expr();
    for (unsigned i = 0; i < 4; ++i)
        state.cpu.flags[i] = Value(builder_.bAnd(
            builder_.lshr(w, builder_.constant(i, 32)),
            builder_.constant(1, 32)));
    // The interrupt-enable bit must be concrete to schedule delivery.
    ExprRef ie_bit = builder_.bAnd(builder_.lshr(w, builder_.constant(4, 32)),
                                   builder_.constant(1, 32));
    Value ie(ie_bit);
    auto conc = concretize(state, ie, "iret_ie");
    state.cpu.intEnabled = conc.value_or(0) != 0;
}

void
Engine::enterInterrupt(ExecutionState &state, unsigned vector,
                       uint32_t return_pc)
{
    events_.onException.emit(state, vector);

    // Push flags, then the return pc.
    Value flags = packFlags(state);
    auto push = [&](const Value &v) -> bool {
        auto sp = concretize(state, state.cpu.regs[isa::kRegSp], "push_sp");
        if (!sp)
            return false;
        uint32_t nsp = *sp - 4;
        state.cpu.regs[isa::kRegSp] = Value(nsp);
        return storeTo(state, nsp, v, 4);
    };
    if (!push(flags) || !push(Value(return_pc)))
        return;
    state.cpu.intEnabled = false;

    uint32_t ivt_entry = vm::kIvtBase + 4 * vector;
    Value handler = loadFrom(state, ivt_entry, 4, false);
    if (!state.isActive())
        return;
    auto h = concretize(state, handler, "ivt");
    if (!h)
        return;
    if (*h == 0) {
        killState(state, StateStatus::Crashed,
                  strprintf("unhandled interrupt vector 0x%x", vector));
        return;
    }
    state.cpu.interruptDepth++;
    state.cpu.pc = *h;
}

void
Engine::deliverInterrupts(ExecutionState &state)
{
    if (!state.cpu.intEnabled || state.cpu.pendingIrqs == 0)
        return;
    unsigned irq = __builtin_ctz(state.cpu.pendingIrqs);
    state.cpu.pendingIrqs &= ~(1u << irq);
    Stats::bump(*hot_.interruptsDelivered);
    if (replayCursor_) {
        // Devices tick off the state's own instruction clock, so a
        // faithful replay re-raises every interrupt at the recorded
        // point; verify rather than trust.
        if (!replayCursor_->expect(replay::SiteKind::Interrupt,
                                   state.instrCount, state.cpu.pc, irq,
                                   0)) {
            replayDiverge(state, replayCursor_->divergence());
            return;
        }
    } else {
        recordEvent(state, replay::SiteKind::Interrupt, state.cpu.pc, irq,
                    0);
    }
    enterInterrupt(state, irq, state.cpu.pc);
}

void
Engine::execS2Op(ExecutionState &state, const MicroOp &op,
                 const std::vector<Value> &temps, uint32_t instr_pc,
                 uint32_t next_pc, uint32_t *next_pc_out)
{
    (void)instr_pc;
    auto opcode = static_cast<isa::Opcode>(op.imm);
    switch (opcode) {
      case isa::Opcode::Cli:
        state.cpu.intEnabled = false;
        break;
      case isa::Opcode::Sti:
        state.cpu.intEnabled = true;
        break;
      case isa::Opcode::S2Ena:
        state.multiPathEnabled = true;
        break;
      case isa::Opcode::S2Dis:
        state.multiPathEnabled = false;
        break;
      case isa::Opcode::S2SymReg:
        // Base names are per-site; makeRegSymbolic scopes them with
        // the state's path id and per-state sequence, so names stay
        // deterministic under any worker interleaving.
        makeRegSymbolic(state, op.reg, strprintf("sym_r%u", op.reg));
        break;
      case isa::Opcode::S2SymRange: {
        uint32_t lo = temps[op.a].concrete();
        uint32_t hi = temps[op.b].concrete();
        makeRegSymbolic(state, op.reg, strprintf("sym_r%u", op.reg),
                        std::make_pair(lo, hi));
        break;
      }
      case isa::Opcode::S2SymMem: {
        auto addr = concretize(state, temps[op.a], "s2symmem_addr");
        auto len = concretize(state, temps[op.b], "s2symmem_len");
        if (addr && len)
            makeMemSymbolic(state, *addr, *len, "sym_mem");
        break;
      }
      case isa::Opcode::S2Out:
        events_.onGuestOutput.emit(state, temps[op.a]);
        break;
      case isa::Opcode::S2Concrete: {
        auto v = readRegConcrete(state, op.reg);
        (void)v;
        break;
      }
      case isa::Opcode::S2Assert: {
        const Value &v = temps[op.a];
        if (v.isConcrete()) {
            if (v.concrete() == 0) {
                events_.onBug.emit(
                    state, strprintf("s2e_assert failed at 0x%x",
                                     instr_pc));
                killState(state, StateStatus::Crashed,
                          strprintf("assertion failed at 0x%x", instr_pc));
            }
            break;
        }
        ExprRef nonzero = builder_.ne(v.toExpr(builder_),
                                      builder_.constant(0, 32));
        auto may_fail = pathMayBeTrue(state, builder_.lnot(nonzero));
        if (may_fail.isUnknown()) {
            // Can't decide whether the assert can fail: skip the bug
            // report (no false positives), keep the path alive under
            // the assertion constraint, and record the blind spot.
            noteSolverDegraded(state, "assert", may_fail.timedOut);
            state.addConstraint(nonzero);
            break;
        }
        if (may_fail.yes()) {
            events_.onBug.emit(
                state,
                strprintf("s2e_assert may fail at 0x%x", instr_pc));
            auto may_pass =
                pathMayBeTrue(state, nonzero);
            if (may_pass.isUnknown()) {
                noteSolverDegraded(state, "assert", may_pass.timedOut);
                state.addConstraint(nonzero);
                break;
            }
            if (may_pass.no()) {
                killState(state, StateStatus::Crashed,
                          strprintf("assertion always fails at 0x%x",
                                    instr_pc));
                break;
            }
        }
        state.addConstraint(nonzero);
        break;
      }
      case isa::Opcode::S2Kill:
        state.exitCode = op.imm2;
        killState(state, StateStatus::Killed,
                  strprintf("s2e_kill(%u)", op.imm2));
        break;
      case isa::Opcode::S2Merge:
        // Merge point (real S2E: opcode 0xFF700000). The opcode is a
        // block terminator, so next_pc is already past it; the run
        // loop parks the state at that pc until the barrier drains.
        // With merging disabled it is a pure no-op — exactly the
        // oracle configuration the merge differential suite uses.
        if (config_.enableMergePoints && state.multiPathEnabled)
            state.atMergePoint = true;
        break;
      default:
        panic("execS2Op: unexpected opcode %s", isa::opcodeName(opcode));
    }
    *next_pc_out = next_pc;
}

bool
Engine::executeBlock(ExecutionState &state)
{
    // The enclosing span: nested translate/symbolic/solver/fork spans
    // carve their time out of it (exclusive accounting), so what
    // remains charged here is the true concrete-execution fraction.
    obs::PhaseSpan span(curProfiler(), obs::Phase::ConcreteExec);
    deliverInterrupts(state);
    if (!state.isActive())
        return false;

    // Advance virtual device time on this state's private clock.
    {
        vm::DeviceBus bus = deviceBusFor(state);
        state.devices.tickAll(state.instrCount, bus);
    }

    auto tb = fetchBlock(state);
    if (tb->instrPcs.empty()) {
        killState(state, StateStatus::Crashed,
                  strprintf("invalid instruction at 0x%x", state.cpu.pc));
        return false;
    }
    Stats::bump(tb->execCount);
    state.blockCount++;
    state.instrCount += tb->instrPcs.size();
    if (replayCursor_ && replayCursor_->checkOverrun(state.instrCount)) {
        replayDiverge(state, replayCursor_->divergence());
        return false;
    }
    Stats::bump(*hot_.uopsExecuted, tb->ops.size());
    Stats::bump(*hot_.uopsPreOpt, tb->origOpCount);
    events_.onBlockExecute.emit(state, *tb);

    std::vector<Value> temps(tb->numTemps);
    uint32_t next_pc = tb->pc + tb->byteSize;
    bool fire_mem_events = !events_.onMemoryAccess.empty();
    bool fire_instr_events = !events_.onInstrExecution.empty();
    size_t next_instr = 0;

    for (size_t op_index = 0; op_index < tb->ops.size(); ++op_index) {
        // Per-instruction boundary bookkeeping (marked instructions).
        while (next_instr < tb->instrOpIndex.size() &&
               tb->instrOpIndex[next_instr] == op_index) {
            if (fire_instr_events && tb->marked[next_instr])
                events_.onInstrExecution.emit(state,
                                              tb->instrPcs[next_instr]);
            next_instr++;
        }
        if (!state.isActive())
            return false;

        const MicroOp &op = tb->ops[op_index];
        switch (op.op) {
          case UOp::Const:
            temps[op.dst] = Value(op.imm);
            break;
          case UOp::GetReg:
            temps[op.dst] = state.cpu.regs[op.reg];
            break;
          case UOp::SetReg:
            state.cpu.regs[op.reg] = temps[op.a];
            break;
          case UOp::GetFlag:
            temps[op.dst] = state.cpu.flags[op.reg];
            break;
          case UOp::SetFlag:
            state.cpu.flags[op.reg] = temps[op.a];
            break;

          case UOp::Not:
          case UOp::Neg: {
            const Value &a = temps[op.a];
            if (a.isConcrete()) {
                temps[op.dst] = Value(op.op == UOp::Not ? ~a.concrete()
                                                        : 0 - a.concrete());
            } else {
                obs::PhaseSpan sym(curProfiler(), obs::Phase::SymbolicExec);
                state.symInstrCount++;
                temps[op.dst] = Value(op.op == UOp::Not
                                          ? builder_.bNot(a.expr())
                                          : builder_.neg(a.expr()));
            }
            break;
          }

          case UOp::Add:
          case UOp::Sub:
          case UOp::Mul:
          case UOp::UDiv:
          case UOp::SDiv:
          case UOp::URem:
          case UOp::SRem:
          case UOp::And:
          case UOp::Or:
          case UOp::Xor:
          case UOp::Shl:
          case UOp::Shr:
          case UOp::Sar:
          case UOp::CmpEq:
          case UOp::CmpUlt:
          case UOp::CmpSlt: {
            const Value &a = temps[op.a];
            const Value &b = temps[op.b];
            if (a.isConcrete() && b.isConcrete()) {
                temps[op.dst] =
                    Value(concreteBinary(op.op, a.concrete(),
                                         b.concrete()));
            } else {
                obs::PhaseSpan sym(curProfiler(), obs::Phase::SymbolicExec);
                state.symInstrCount++;
                temps[op.dst] = Value(symbolicBinary(
                    op.op, a.toExpr(builder_), b.toExpr(builder_),
                    builder_));
            }
            break;
          }

          case UOp::Load: {
            Value addr = temps[op.a];
            bool sym_addr = addr.isSymbolic();
            Value result;
            uint32_t resolved = 0;
            ExprRef addr_expr = nullptr;
            if (sym_addr) {
                ExprRef sum = builder_.add(
                    addr.toExpr(builder_),
                    builder_.constant(op.imm, 32));
                Value full(sum);
                if (full.isConcrete()) {
                    resolved = full.concrete();
                    result = loadFrom(state, resolved, op.size,
                                      op.signExt);
                } else {
                    addr_expr = sum;
                    result = symbolicLoad(state, full, op.size);
                    if (!state.isActive())
                        return false;
                    if (op.size < 4 && result.isSymbolic())
                        result = Value(
                            op.signExt
                                ? builder_.sext(result.expr(), 32)
                                : builder_.zext(result.expr(), 32));
                    // Example address for the access report only; an
                    // Unknown here just degrades the report, not the
                    // load itself.
                    uint64_t exv = 0;
                    auto ex = pathGetValue(state, sum, &exv);
                    resolved =
                        ex.isSat() ? static_cast<uint32_t>(exv) : 0;
                    if (ex.isUnknown())
                        noteSolverDegraded(state, "memaccess_report",
                                           ex.timedOut);
                }
            } else {
                resolved = addr.concrete() + op.imm;
                result = loadFrom(state, resolved, op.size, op.signExt);
            }
            if (!state.isActive())
                return false;
            temps[op.dst] = result;
            if (fire_mem_events) {
                MemAccessInfo info{resolved, op.size, false, sym_addr,
                                   &temps[op.dst], addr_expr};
                events_.onMemoryAccess.emit(state, info);
            }
            break;
          }

          case UOp::Store: {
            Value addr = temps[op.a];
            uint32_t resolved;
            ExprRef addr_expr = nullptr;
            if (addr.isSymbolic()) {
                // Symbolic store addresses are soft-concretized (the
                // read side gets the ite treatment; see DESIGN.md).
                // The pre-concretization expression is reported to
                // analyzers so they can range-check the pointer.
                ExprRef sum = builder_.add(addr.toExpr(builder_),
                                           builder_.constant(op.imm, 32));
                if (!Value(sum).isConcrete())
                    addr_expr = sum;
                auto v = concretize(state, Value(sum), "store_addr");
                if (!v)
                    return false;
                resolved = *v;
                Stats::bump(*hot_.symPointerStores);
            } else {
                resolved = addr.concrete() + op.imm;
            }
            if (fire_mem_events) {
                MemAccessInfo info{resolved, op.size, true,
                                   addr.isSymbolic(), &temps[op.b],
                                   addr_expr};
                events_.onMemoryAccess.emit(state, info);
            }
            if (!storeTo(state, resolved, temps[op.b], op.size))
                return false;
            break;
          }

          case UOp::In: {
            auto port = concretize(state, temps[op.a], "port_read");
            if (!port)
                return false;
            temps[op.dst] = ioRead(state, *port);
            break;
          }
          case UOp::Out: {
            auto port = concretize(state, temps[op.a], "port_write_port");
            if (!port)
                return false;
            ioWrite(state, *port, temps[op.b]);
            break;
          }

          case UOp::Goto:
          case UOp::CallDir:
            next_pc = op.imm;
            break;
          case UOp::GotoInd:
          case UOp::Ret: {
            auto target = concretize(state, temps[op.a], "indirect_jump");
            if (!target)
                return false;
            next_pc = *target;
            break;
          }
          case UOp::Branch: {
            uint32_t branch_pc = tb->instrPcs.empty()
                                     ? tb->pc
                                     : tb->instrPcs.back();
            next_pc = handleBranch(state, temps[op.a], branch_pc, op.imm,
                                   op.imm2);
            if (!state.isActive())
                return false;
            break;
          }
          case UOp::IntSw: {
            state.cpu.pc = op.imm2; // return address = next instruction
            enterInterrupt(state, op.imm, op.imm2);
            if (!state.isActive())
                return false;
            next_pc = state.cpu.pc;
            break;
          }
          case UOp::IretOp: {
            // Pop pc, then flags.
            auto sp = concretize(state, state.cpu.regs[isa::kRegSp],
                                 "iret_sp");
            if (!sp)
                return false;
            Value ret_pc = loadFrom(state, *sp, 4, false);
            Value flags = loadFrom(state, *sp + 4, 4, false);
            if (!state.isActive())
                return false;
            state.cpu.regs[isa::kRegSp] = Value(*sp + 8);
            unpackFlags(state, flags);
            if (state.cpu.interruptDepth > 0)
                state.cpu.interruptDepth--;
            auto target = concretize(state, ret_pc, "iret_pc");
            if (!target)
                return false;
            next_pc = *target;
            break;
          }
          case UOp::Halt:
            killState(state, StateStatus::Halted, "hlt");
            return false;

          case UOp::S2Op:
            execS2Op(state, op, temps, tb->instrPcForOp(op_index),
                     next_pc, &next_pc);
            if (!state.isActive())
                return false;
            break;
        }
    }

    state.cpu.pc = next_pc;
    return state.isActive();
}

std::string
Engine::symName(ExecutionState &state, const std::string &base)
{
    // Scope every symbolic-value name by the state's deterministic
    // path id and a per-state sequence number. Names — unlike global
    // counters — then depend only on the path's own history, so serial
    // and parallel runs build byte-identical expressions.
    return strprintf("%s@%s#%llu", base.c_str(), state.pathId().c_str(),
                     static_cast<unsigned long long>(state.nextSymSeq()));
}

void
Engine::recordEvent(ExecutionState &state, replay::SiteKind kind,
                    uint32_t pc, uint32_t a, uint32_t b,
                    std::vector<std::string> vars)
{
    if (!recording_)
        return;
    replay::NondetEvent ev;
    ev.kind = kind;
    ev.instr = state.instrCount;
    ev.pc = pc;
    ev.a = a;
    ev.b = b;
    ev.vars = std::move(vars);
    state.replayLog.events.push_back(std::move(ev));
}

void
Engine::maybeEmitWitness(ExecutionState &state)
{
    if (!recording_)
        return;
    switch (state.status) {
      case StateStatus::Halted:
      case StateStatus::Killed:
      case StateStatus::Crashed:
        break;
      default:
        // Unsat/Aborted paths have no consistent model, Merged states
        // surrendered their log to the survivor, and budget/solver/
        // spill terminations land at schedule-dependent points.
        Stats::bump(*hot_.witnessesSkipped);
        return;
    }
    if (state.spilled || state.mergedSiblings > 0 || state.killedAsync) {
        // Killed-while-spilled states dropped their constraints; a
        // merge survivor's model may follow the absorbed sibling's
        // disjunct, whose events are not in this log; async kills
        // terminate at schedule-dependent points no replay can hit.
        Stats::bump(*hot_.witnessesSkipped);
        return;
    }
    replay::ExtractResult r =
        replay::extractWitness(state, builder_, config_.solverOptions);
    if (!r.witness) {
        Stats::bump(*hot_.witnessExtractFailures);
        warn("witness extraction failed for path %s: %s",
             state.pathId().c_str(), r.error.c_str());
        return;
    }
    Stats::bump(*hot_.witnessesEmitted);
    if (!config_.witnessDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(config_.witnessDir, ec);
        std::vector<uint8_t> image = replay::serializeWitness(*r.witness);
        std::string path = config_.witnessDir + "/" + r.witness->pathId +
                           ".witness";
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(reinterpret_cast<const char *>(image.data()),
                  static_cast<std::streamsize>(image.size()));
    }
    std::lock_guard<std::mutex> lock(witnessMutex_);
    witnesses_.push_back(std::move(r.witness));
}

std::vector<std::shared_ptr<const replay::Witness>>
Engine::witnesses() const
{
    std::lock_guard<std::mutex> lock(witnessMutex_);
    return witnesses_;
}

void
Engine::replayDiverge(ExecutionState &state, const std::string &what)
{
    // Keep the *first* mismatch: the cursor latches its own report and
    // ignores later ones, and the counter moves once per replay.
    replayCursor_->forceDiverge(what);
    if (Stats::read(*hot_.replayDivergences) == 0)
        Stats::bump(*hot_.replayDivergences);
    killState(state, StateStatus::Killed,
              "replay divergence: " + replayCursor_->divergence());
}

std::optional<uint64_t>
Engine::replaySubstitute(ExecutionState &state, replay::SiteKind kind,
                         uint32_t a, uint32_t b)
{
    const replay::NondetEvent *ev = replayCursor_->expect(
        kind, state.instrCount, state.cpu.pc, a, b);
    if (!ev) {
        replayDiverge(state, replayCursor_->divergence());
        return std::nullopt;
    }
    if (ev->vars.size() != 1) {
        replayDiverge(state, "malformed witness event: expected exactly "
                             "one variable");
        return std::nullopt;
    }
    uint64_t v = 0;
    if (!replayCursor_->inputValue(ev->vars[0], &v)) {
        replayDiverge(state, "witness has no value for " + ev->vars[0]);
        return std::nullopt;
    }
    return v;
}

void
Engine::finishState(ExecutionState &state)
{
    events_.onStateKill.emit(state);
    searcher_->stateRemoved(state);
    releaseStateResources(state);
}

void
Engine::retireState(ExecutionState &state)
{
    // Parallel-mode counterpart of the serial sweep: drop the state
    // from active_ under the mutex, then fire the kill event outside
    // it (plugins may call back into activeStates()).
    {
        std::lock_guard<std::mutex> lock(statesMutex_);
        auto it = std::find(active_.begin(), active_.end(), &state);
        if (it != active_.end())
            active_.erase(it);
        searcher_->stateRemoved(state);
    }
    events_.onStateKill.emit(state);
    releaseStateResources(state);
}

void
Engine::accountMemory()
{
    uint64_t total = 0;
    for (ExecutionState *s : active_)
        total += s->memoryFootprint();
    Stats::raiseTo(*hot_.memoryHighWatermark, total);
    Stats::raiseTo(*hot_.maxActiveStates, active_.size());
}

void
Engine::accountStateMemory(ExecutionState &state)
{
    // Incremental version of accountMemory() for parallel mode: each
    // worker maintains the pool-wide footprint by publishing the delta
    // of the one state it owns.
    uint64_t now_bytes = state.isActive() ? state.memoryFootprint() : 0;
    uint64_t prev = state.accountedBytes;
    state.accountedBytes = now_bytes;
    uint64_t cur = currentMemBytes_.fetch_add(
                       now_bytes - prev, std::memory_order_relaxed) +
                   (now_bytes - prev);
    Stats::raiseTo(*hot_.memoryHighWatermark, cur);
}

void
Engine::residentInc()
{
    uint64_t now =
        residentStates_.fetch_add(1, std::memory_order_relaxed) + 1;
    Stats::raiseTo(*hot_.residentStatesPeak, now);
}

void
Engine::residentDec()
{
    residentStates_.fetch_sub(1, std::memory_order_relaxed);
}

void
Engine::releaseStateResources(ExecutionState &state)
{
    // Exactly-once terminal release: finishState (serial sweep),
    // retireState (parallel) and the merge/park drain all funnel here,
    // and a state killed while spilled must still delete its image.
    if (state.resourcesReleased)
        return;
    state.resourcesReleased = true;
    // Witness extraction needs the path constraints, which stay on the
    // state until destruction — but the exactly-once guarantee of this
    // funnel is what makes it the right emission point.
    maybeEmitWitness(state);
    state.solverCtx.reset(); // terminated paths never query again
    if (!state.spillKey.empty()) {
        spillStore_->release(state.spillKey);
        state.spillKey.clear();
    }
    // A spilled state already left the resident count at spill time.
    if (!state.spilled)
        residentDec();
}

bool
Engine::spillState(ExecutionState &state)
{
    S2E_ASSERT(!state.spilled, "double spill of state %d", state.id());
    obs::PhaseSpan span(curProfiler(), obs::Phase::Fork);
    std::vector<uint8_t> image = serializer_->serialize(state);
    std::string key = strprintf("state-%d", state.id());
    lifecycle::SpillIoResult res = spillStore_->write(key, image);
    Stats::bump(*hot_.spillRetries, res.retries);
    if (!res.ok) {
        // Degrade, don't crash: the image never made it to disk, so
        // keep the state resident and stop trying to spill it. The
        // run continues with the memory cap exceeded.
        state.spillPinned = true;
        Stats::bump(*hot_.spillWriteFailures);
        return false;
    }
    state.spillKey = key;
    state.spilled = true;
    // Everything the image (plus the checkpoint chain) can rebuild is
    // dropped. Plugin states stay resident: codec-less plugins cannot
    // round-trip through the image, and the per-path data is tiny
    // compared to pages and constraints.
    state.mem.dropAllPages();
    state.constraints.clear();
    state.constraints.shrink_to_fit();
    state.solverCtx.reset();
    residentDec();
    Stats::bump(*hot_.statesSpilled);
    Stats::bump(*hot_.spillBytes, image.size());
    return true;
}

bool
Engine::restoreState(ExecutionState &state)
{
    obs::PhaseSpan span(curProfiler(), obs::Phase::Fork);
    std::vector<uint8_t> image;
    // Each read attempt must pass the header + checksum check; a
    // latent corrupt write (or a short read) therefore surfaces as a
    // retried read, not as a half-applied restore.
    lifecycle::SpillIoResult res = spillStore_->read(
        state.spillKey, &image, [](const std::vector<uint8_t> &img) {
            return lifecycle::StateSerializer::validateImage(img);
        });
    Stats::bump(*hot_.spillRetries, res.retries);
    std::string err;
    if (!res.ok || !serializer_->deserialize(image, state, &err)) {
        killState(state, StateStatus::SpillFailure,
                  strprintf("restore of spilled state failed: %s",
                            res.ok ? err.c_str() : res.error.c_str()));
        return false;
    }
    spillStore_->release(state.spillKey);
    state.spillKey.clear();
    state.spilled = false;
    residentInc();
    Stats::bump(*hot_.statesRestored);
    return true;
}

void
Engine::governResident()
{
    if (!config_.maxResidentBytes)
        return;
    uint64_t total = 0;
    std::vector<ExecutionState *> candidates;
    for (ExecutionState *s : active_) {
        if (s->spilled)
            continue;
        total += s->memoryFootprint();
        if (!s->spillPinned)
            candidates.push_back(s);
    }
    if (total <= config_.maxResidentBytes)
        return;
    // Coldest first: the least recently scheduled state is the one a
    // depth-first searcher will touch last, so spilling it defers the
    // restore as long as possible. Ties break on id for determinism.
    std::sort(candidates.begin(), candidates.end(),
              [](const ExecutionState *a, const ExecutionState *b) {
                  if (a->lastScheduledTick != b->lastScheduledTick)
                      return a->lastScheduledTick < b->lastScheduledTick;
                  return a->id() < b->id();
              });
    for (ExecutionState *s : candidates) {
        if (total <= config_.maxResidentBytes)
            break;
        uint64_t before = s->memoryFootprint();
        if (spillState(*s))
            total = total - before + s->memoryFootprint();
    }
}

void
Engine::parkForMerge(ExecutionState &state)
{
    {
        std::lock_guard<std::mutex> lock(statesMutex_);
        auto it = std::find(active_.begin(), active_.end(), &state);
        if (it != active_.end())
            active_.erase(it);
        searcher_->stateRemoved(state);
    }
    std::lock_guard<std::mutex> lock(mergeMutex_);
    mergePool_[state.cpu.pc].push_back(&state);
}

size_t
Engine::drainMergePool()
{
    std::map<uint32_t, std::vector<ExecutionState *>> pool;
    {
        std::lock_guard<std::mutex> lock(mergeMutex_);
        pool.swap(mergePool_);
    }
    size_t reactivated = 0;
    for (auto &[pc, group] : pool) {
        // Deterministic fold order regardless of how workers
        // interleaved arrivals: sort by path id, merge left.
        std::sort(group.begin(), group.end(),
                  [](const ExecutionState *a, const ExecutionState *b) {
                      return a->pathId() < b->pathId();
                  });
        std::vector<ExecutionState *> survivors;
        std::vector<ExecutionState *> absorbedInto;
        for (ExecutionState *s : group) {
            if (!s->isActive()) {
                // Killed while parked (cross-thread plugin kill).
                // parkForMerge already removed it from active_ and the
                // searcher, so only the kill event and the terminal
                // release remain.
                events_.onStateKill.emit(*s);
                releaseStateResources(*s);
                accountStateMemory(*s);
                continue;
            }
            bool absorbed = false;
            for (size_t i = 0; i < survivors.size(); ++i) {
                lifecycle::MergeAttempt attempt =
                    lifecycle::mergeStates(*survivors[i], *s, builder_);
                if (!attempt.merged)
                    continue;
                Stats::bump(*hot_.statesMerged);
                MergeInfo info{survivors[i], s, pc};
                events_.onStateMerge.emit(info);
                killState(*s, StateStatus::Merged,
                          strprintf("merged into path %s at 0x%x",
                                    survivors[i]->pathId().c_str(), pc));
                events_.onStateKill.emit(*s);
                releaseStateResources(*s);
                accountStateMemory(*s);
                absorbedInto.push_back(survivors[i]);
                absorbed = true;
                break;
            }
            if (!absorbed)
                survivors.push_back(s);
        }
        // A merge rewrites the survivor's constraint vector (prefix +
        // disjunction), so its old checkpoint's constraints may no
        // longer be a prefix of it. Re-checkpoint to restore the
        // spill-baseline invariant before the state runs again.
        std::sort(absorbedInto.begin(), absorbedInto.end());
        absorbedInto.erase(
            std::unique(absorbedInto.begin(), absorbedInto.end()),
            absorbedInto.end());
        for (ExecutionState *surv : absorbedInto)
            lifecycle::takeCheckpoint(*surv);
        for (ExecutionState *surv : survivors) {
            surv->atMergePoint = false;
            std::lock_guard<std::mutex> lock(statesMutex_);
            active_.push_back(surv);
            searcher_->stateAdded(*surv);
            reactivated++;
        }
    }
    return reactivated;
}

void
Engine::killParkedStates()
{
    std::map<uint32_t, std::vector<ExecutionState *>> pool;
    {
        std::lock_guard<std::mutex> lock(mergeMutex_);
        pool.swap(mergePool_);
    }
    for (auto &[pc, group] : pool) {
        (void)pc;
        for (ExecutionState *s : group) {
            killState(*s, StateStatus::BudgetExceeded, "run budget");
            events_.onStateKill.emit(*s);
            releaseStateResources(*s);
            accountStateMemory(*s);
        }
    }
}

// --- Fiber scheduling / async solver ------------------------------------

solver::QueryOutcome
Engine::pathMayBeTrue(ExecutionState &state, ExprRef e)
{
    if (solverService_ && Fiber::current()) {
        solver::AsyncQuery q;
        q.kind = solver::AsyncQuery::Kind::MayBeTrue;
        q.expr = e;
        awaitQuery(state, q);
        return q.outcome;
    }
    return curSolver().mayBeTrue(state.constraints, e);
}

solver::QueryOutcome
Engine::pathMustBeTrue(ExecutionState &state, ExprRef e)
{
    if (solverService_ && Fiber::current()) {
        solver::AsyncQuery q;
        q.kind = solver::AsyncQuery::Kind::MustBeTrue;
        q.expr = e;
        awaitQuery(state, q);
        return q.outcome;
    }
    return curSolver().mustBeTrue(state.constraints, e);
}

solver::QueryOutcome
Engine::pathGetValue(ExecutionState &state, ExprRef e, uint64_t *value)
{
    if (solverService_ && Fiber::current()) {
        solver::AsyncQuery q;
        q.kind = solver::AsyncQuery::Kind::GetValue;
        q.expr = e;
        awaitQuery(state, q);
        *value = q.value;
        return q.outcome;
    }
    return curSolver().getValue(state.constraints, e, value);
}

solver::Solver::BranchFeasibility
Engine::pathCheckBranch(ExecutionState &state, ExprRef cond)
{
    if (solverService_ && Fiber::current()) {
        solver::AsyncQuery q;
        q.kind = solver::AsyncQuery::Kind::CheckBranch;
        q.expr = cond;
        awaitQuery(state, q);
        return q.branch;
    }
    return curSolver().checkBranch(state.constraints, cond);
}

void
Engine::awaitQuery(ExecutionState &state, solver::AsyncQuery &q)
{
    // The descriptor lives on this fiber's stack: valid until resume.
    q.constraints = &state.constraints;
    q.ctxSlot = &state.solverCtx;
    q.token = &state;
    q.producer = tlsWorker_ ? tlsWorker_->id : 0;
    state.pendingQuery = &q;
    state.suspendCount++;
    // The *driver* (driveFiber) submits after this switch completes —
    // submitting here would let the service resume a half-saved fiber.
    Fiber::park();
    // Resumed (possibly on another worker): results are filled, either
    // by the service or by the driver's ring-full inline fallback.
    if (q.batched)
        Stats::bump(*hot_.batchedQueries);
}

void
Engine::fiberSliceBody(ExecutionState &state)
{
    // Re-read engine state through `this` only — never cache
    // tlsWorker_ across a potential park: the fiber may resume on a
    // different worker mid-slice.
    uint64_t instr_before = state.instrCount;
    for (unsigned i = 0; i < config_.timesliceBlocks && state.isActive();
         ++i) {
        bool running = executeBlock(state);
        flushPendingChildren(state);
        if (!running || state.atMergePoint)
            break;
    }
    Stats::bump(*hot_.instructions, state.instrCount - instr_before);
}

bool
Engine::driveFiber(unsigned wid, WorkQueue &queue, ExecutionState &state,
                   Fiber *fiber)
{
    (void)queue; // completions route through queue_ (same queue)
    while (true) {
        // tl_executing must cover every resume: a state that kills
        // *itself* after resuming would otherwise be classified as an
        // async (schedule-dependent) kill and lose witness
        // eligibility.
        executingWorkers_.fetch_add(1, std::memory_order_seq_cst);
        tl_executing = &state;
        bool live = fiber->resume();
        tl_executing = nullptr;
        executingWorkers_.fetch_sub(1, std::memory_order_seq_cst);
        if (!live) {
            // Slice body returned: the state is schedulable (or
            // terminated) the normal way again.
            releaseFiber(fiber);
            return false;
        }
        // Parked at a solver choke point. The fiber context is fully
        // saved now, so the service may complete (and another worker
        // resume) at any point after the submit below.
        solver::AsyncQuery *q = state.pendingQuery;
        S2E_ASSERT(q, "fiber parked without a pending query");
        state.pendingQuery = nullptr;
        state.suspendedFiber = fiber;
        Stats::bump(*hot_.suspends);
        asyncInFlight_.fetch_add(1, std::memory_order_relaxed);
        if (solverService_->submit(wid, q)) {
            Stats::bump(*hot_.asyncQueries);
            // The service owns the state until its completion put();
            // this worker must not touch it again.
            return true;
        }
        asyncInFlight_.fetch_sub(1, std::memory_order_relaxed);
        // Ring full: degrade to the blocking engine for this query —
        // answer inline on this worker's solver, resume immediately.
        state.suspendedFiber = nullptr;
        Stats::bump(*hot_.inlineSolverFallbacks);
        WorkerContext &w = *workers_[wid];
        w.solver.bindPathContext(q->ctxSlot);
        solver::SolverService::executeOn(w.solver, *q);
        w.solver.bindPathContext(nullptr);
        Stats::bump(*hot_.resumes);
    }
}

void
Engine::flushPendingChildren(ExecutionState &state)
{
    if (state.pendingChildren.empty())
        return;
    // Re-read the worker identity at flush time: after a suspend the
    // state may be running on a different worker than the one that
    // forked the children.
    unsigned wid = tlsWorker_ ? tlsWorker_->id : 0;
    for (ExecutionState *child : state.pendingChildren) {
        // Over-cap spill at publish time: the child is fully diverged
        // but not yet visible to other workers, so this is the one
        // race-free window to drop its payload. Fork storms whose
        // paths retire within a single slice never reach the requeue
        // check — without this, queued children would be the
        // unbounded part of the pool.
        if (config_.maxResidentBytes && !child->spilled &&
            !child->spillPinned &&
            currentMemBytes_.load(std::memory_order_relaxed) >
                config_.maxResidentBytes) {
            if (spillState(*child))
                accountStateMemory(*child);
        }
        queue_->add(wid, child);
    }
    state.pendingChildren.clear();
}

Fiber *
Engine::acquireFiber()
{
    Fiber *fiber = nullptr;
    {
        std::lock_guard<std::mutex> lock(fiberPoolMu_);
        if (!fiberPool_.empty()) {
            fiber = fiberPool_.back().release();
            fiberPool_.pop_back();
        }
    }
    if (!fiber)
        fiber = new Fiber(config_.fiberStackBytes);
    int live = fibersLive_.fetch_add(1, std::memory_order_relaxed) + 1;
    Stats::raiseTo(*hot_.fibersActive, static_cast<uint64_t>(live));
    return fiber;
}

void
Engine::releaseFiber(Fiber *fiber)
{
    fibersLive_.fetch_sub(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(fiberPoolMu_);
    fiberPool_.push_back(std::unique_ptr<Fiber>(fiber));
}

RunResult
Engine::run()
{
    // Fibers need the work-queue scheduler even with one worker (the
    // solver service is what the fiber parks toward).
    if (config_.numWorkers <= 1 && !config_.useFibers)
        return runSerial();
    return runParallel();
}

RunResult
Engine::runSerial()
{
    RunResult result;
    auto start = std::chrono::steady_clock::now();
    uint64_t start_instr = Stats::read(*hot_.instructions);

    // Outer loop: the merge barrier. The inner loop drains the active
    // set; when it empties while states sit parked at merge points
    // (no other state can still arrive — nothing is running), the
    // pool is folded and the survivors re-enter the active set.
    while (true) {
        while (!active_.empty()) {
            double elapsed =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            uint64_t executed =
                Stats::read(*hot_.instructions) - start_instr;
            if ((config_.maxWallSeconds > 0 &&
                 elapsed > config_.maxWallSeconds) ||
                (config_.maxInstructions > 0 &&
                 executed > config_.maxInstructions)) {
                result.budgetExhausted = true;
                for (ExecutionState *s : active_)
                    killState(*s, StateStatus::BudgetExceeded,
                              "run budget");
            }

            if (!result.budgetExhausted) {
                ExecutionState *state = searcher_->select(active_);
                S2E_ASSERT(state && state->isActive(),
                           "searcher returned inactive state");
                state->lastScheduledTick =
                    scheduleTick_.fetch_add(
                        1, std::memory_order_relaxed) +
                    1;
                // A spilled state restores transparently when it is
                // scheduled; on restore failure it is already killed
                // and the sweep below retires it.
                if (!state->spilled || restoreState(*state)) {
                    // Give the solver this path's incremental-context
                    // slot for the duration of the timeslice (created
                    // lazily on the first SAT-reaching query, reused
                    // across queries).
                    solver_.bindPathContext(&state->solverCtx);
                    tl_executing = state;
                    uint64_t instr_before = state->instrCount;
                    for (unsigned i = 0; i < config_.timesliceBlocks &&
                                         state->isActive();
                         ++i) {
                        if (!executeBlock(*state))
                            break;
                        if (state->atMergePoint)
                            break;
                    }
                    tl_executing = nullptr;
                    solver_.bindPathContext(nullptr);
                    Stats::bump(*hot_.instructions,
                                state->instrCount - instr_before);
                    if (state->isActive() && state->atMergePoint)
                        parkForMerge(*state);
                }
            }

            // Sweep terminated states.
            size_t w = 0;
            for (size_t r = 0; r < active_.size(); ++r) {
                if (active_[r]->isActive()) {
                    active_[w++] = active_[r];
                } else {
                    finishState(*active_[r]);
                }
            }
            active_.resize(w);
            accountMemory();
            governResident();
        }
        if (result.budgetExhausted) {
            killParkedStates();
            break;
        }
        if (drainMergePool() == 0)
            break;
    }

    finalizeResult(result, start, start_instr);
    return result;
}

RunResult
Engine::runParallel()
{
    RunResult result;
    auto start = std::chrono::steady_clock::now();
    uint64_t start_instr = Stats::read(*hot_.instructions);
    unsigned n = config_.numWorkers;

    workers_.clear();
    for (unsigned i = 0; i < n; ++i) {
        workers_.push_back(
            std::make_unique<WorkerContext>(i, builder_, config_));
        // Fault injection (if configured) applies pool-wide.
        workers_.back()->solver.setFaultPolicy(solver_.faultPolicy());
    }

    stopFlag_.store(false, std::memory_order_relaxed);
    budgetExhaustedFlag_.store(false, std::memory_order_relaxed);

    if (config_.useFibers) {
        solver::SolverService::Config scfg;
        scfg.threads = std::max(1u, config_.solverServiceThreads);
        scfg.workers = n;
        scfg.queueCapacity = config_.solverQueueCapacity;
        scfg.batchMax = std::max(1u, config_.solverBatchMax);
        // Completion: hand the suspended state back to the scheduler
        // on its submitting worker's shard. queue_ is stable here —
        // a query is only in flight while its round's workers are
        // still live (a suspended state keeps the queue's pending
        // count non-zero), and the submit ring's release/acquire pair
        // orders this read after the round set queue_.
        solverService_ = std::make_unique<solver::SolverService>(
            builder_, config_.solverOptions, scfg,
            [this](solver::AsyncQuery &q) {
                queue_->put(q.producer,
                            static_cast<ExecutionState *>(q.token));
                // Release pairs with the round's acquire drain: once
                // this hits zero no service thread is inside the
                // queue and the round may destroy it.
                asyncInFlight_.fetch_sub(1, std::memory_order_release);
            });
        solverService_->setExecGauge(&executingWorkers_);
        solverService_->start();
    }

    // Round loop: one worker-pool round drains every runnable state to
    // termination or a merge point. Between rounds every thread has
    // joined — nothing executes, so arrival at each merge pc is
    // complete and the pool can be folded exactly like the serial
    // barrier. Runs that never hit a merge point take one round.
    while (true) {
        WorkQueue queue(n);
        {
            std::lock_guard<std::mutex> lock(statesMutex_);
            for (size_t i = 0; i < active_.size(); ++i)
                queue.add(static_cast<unsigned>(i % n), active_[i]);
        }
        queue_ = &queue;

        std::vector<std::thread> threads;
        threads.reserve(n);
        for (unsigned i = 0; i < n; ++i)
            threads.emplace_back([this, i, &queue, start, start_instr] {
                workerLoop(i, queue, start, start_instr);
            });
        for (std::thread &t : threads)
            t.join();
        // Workers joined ⇒ every state finished ⇒ every completion
        // already put() its state — but the *last* callback may still
        // be signaling the queue's condvar. Drain that tail before
        // `queue` leaves scope.
        while (asyncInFlight_.load(std::memory_order_acquire) != 0)
            std::this_thread::yield();
        queue_ = nullptr;

        if (budgetExhaustedFlag_.load(std::memory_order_relaxed)) {
            killParkedStates();
            break;
        }
        if (drainMergePool() == 0)
            break;
    }

    // Workers are quiescent: fold their telemetry into the engine-level
    // profiler and solver stats so reports aggregate the whole pool.
    result.workers = n;
    for (auto &w : workers_) {
        profiler_.mergeFrom(w->profiler);
        result.workerSolverSeconds += w->solver.totalQuerySeconds();
        solver_.stats().mergeFrom(w->solver.stats());
        result.workerBusySeconds.push_back(w->busySeconds);
    }
    workers_.clear();

    if (solverService_) {
        solverService_->stop();
        const auto &ss = solverService_->stats();
        Stats::raiseTo(*hot_.solverQueueDepth, ss.queueDepthPeak);
        for (solver::Solver *s : solverService_->solvers())
            solver_.stats().mergeFrom(s->stats());
        result.serviceBusySeconds = ss.busySeconds;
        result.solverOverlapSeconds = ss.overlapSeconds;
        solverService_.reset();
        // Fiber stacks are recycled within a run, not across runs.
        std::lock_guard<std::mutex> lock(fiberPoolMu_);
        fiberPool_.clear();
    }
    result.suspends = Stats::read(*hot_.suspends);
    result.resumes = Stats::read(*hot_.resumes);
    result.asyncQueries = Stats::read(*hot_.asyncQueries);
    result.batchedQueries = Stats::read(*hot_.batchedQueries);
    result.inlineSolverFallbacks =
        Stats::read(*hot_.inlineSolverFallbacks);
    result.fibersPeak = Stats::read(*hot_.fibersActive);
    result.solverQueueDepthPeak = Stats::read(*hot_.solverQueueDepth);

    result.budgetExhausted =
        budgetExhaustedFlag_.load(std::memory_order_relaxed);
    finalizeResult(result, start, start_instr);
    return result;
}

void
Engine::workerLoop(unsigned wid, WorkQueue &queue,
                   std::chrono::steady_clock::time_point start,
                   uint64_t start_instr)
{
    WorkerContext &w = *workers_[wid];
    tlsWorker_ = &w;
    // Budget check shared by every completed slice (blocking or
    // fiber): latches the pool-wide stop flag.
    auto check_budget = [&] {
        double elapsed = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
        uint64_t executed = Stats::read(*hot_.instructions) - start_instr;
        if ((config_.maxWallSeconds > 0 &&
             elapsed > config_.maxWallSeconds) ||
            (config_.maxInstructions > 0 &&
             executed > config_.maxInstructions)) {
            budgetExhaustedFlag_.store(true, std::memory_order_relaxed);
            stopFlag_.store(true, std::memory_order_release);
        }
    };
    while (ExecutionState *state = queue.take(wid)) {
        auto slice_start = std::chrono::steady_clock::now();
        if (state->suspendedFiber) {
            // The solver service answered this state's query and
            // handed it back: resume the suspended slice where it
            // parked. Deliberately no stopFlag kill and no spill
            // restore here — a suspended fiber holds live C++ frames
            // that must unwind through its own slice end; a fresh
            // take() applies the budget kill next round.
            Fiber *fiber = state->suspendedFiber;
            state->suspendedFiber = nullptr;
            Stats::bump(*hot_.resumes);
            bool suspended = driveFiber(wid, queue, *state, fiber);
            if (suspended) {
                w.busySeconds +=
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - slice_start)
                        .count();
                continue; // in the service again; hands off
            }
            check_budget();
        } else {
            state->lastScheduledTick =
                scheduleTick_.fetch_add(1, std::memory_order_relaxed) +
                1;
            if (stopFlag_.load(std::memory_order_acquire)) {
                killState(*state, StateStatus::BudgetExceeded,
                          "run budget");
            } else if (state->spilled && !restoreState(*state)) {
                // Restore failed beyond all retries: the state is
                // already killed with SpillFailure and retires below
                // like any other terminated state.
            } else if (solverService_) {
                // Fiber slice: the timeslice body runs on its own
                // suspendable stack; choke-point queries park it and
                // free this worker. The worker solver stays unbound —
                // queries go through the service (or bind around the
                // inline fallback).
                Fiber *fiber = acquireFiber();
                fiber->reset([this, state] { fiberSliceBody(*state); });
                bool suspended = driveFiber(wid, queue, *state, fiber);
                if (suspended) {
                    w.busySeconds +=
                        std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            slice_start)
                            .count();
                    continue; // the service owns the state now
                }
                check_budget();
            } else {
                // Bind the state's incremental-context slot to this
                // worker's solver for the slice. Unbinding before the
                // state is re-queued matters: once put back, another
                // worker may steal the state (and the context with
                // it).
                w.solver.bindPathContext(&state->solverCtx);
                tl_executing = state;
                uint64_t instr_before = state->instrCount;
                for (unsigned i = 0;
                     i < config_.timesliceBlocks && state->isActive();
                     ++i) {
                    // Children forked during a block become runnable
                    // only from the next block boundary on (their
                    // setup completes after fork() returns).
                    // Publishing before finish() below keeps the
                    // queue's pending count from hitting zero while
                    // an unpublished child exists.
                    bool running = executeBlock(*state);
                    flushPendingChildren(*state);
                    if (!running || state->atMergePoint)
                        break;
                }
                tl_executing = nullptr;
                w.solver.bindPathContext(nullptr);
                Stats::bump(*hot_.instructions,
                            state->instrCount - instr_before);
                check_budget();
            }
        }
        accountStateMemory(*state);
        w.busySeconds +=
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - slice_start)
                .count();
        flushPendingChildren(*state); // forks from kill-path handlers
        if (!state->isActive()) {
            retireState(*state);
            w.statesRetired++;
            queue.finish();
        } else if (state->atMergePoint) {
            // Out of the schedulable set until the round joins; the
            // barrier then merges it or hands it to the next round.
            parkForMerge(*state);
            queue.finish();
        } else {
            // Over-cap self-spill before requeueing: the owner drops
            // its own state's payload. Requeued-cold states sink to
            // the front of the shard (steal side), so spilling at
            // requeue time approximates coldest-first without a
            // global sort.
            if (config_.maxResidentBytes && !state->spilled &&
                !state->spillPinned &&
                currentMemBytes_.load(std::memory_order_relaxed) >
                    config_.maxResidentBytes) {
                if (spillState(*state))
                    accountStateMemory(*state);
            }
            queue.put(wid, state);
        }
    }
    tlsWorker_ = nullptr;
}

void
Engine::finalizeResult(RunResult &result,
                       std::chrono::steady_clock::time_point start,
                       uint64_t start_instr)
{
    result.wallSeconds = std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - start)
                             .count();
    if (result.serviceBusySeconds > 0)
        result.solverOverlapRatio =
            result.solverOverlapSeconds / result.serviceBusySeconds;
    if (result.wallSeconds > 0)
        result.suspendResumePerSec =
            static_cast<double>(result.suspends + result.resumes) /
            result.wallSeconds;
    profiler_.flushTo(stats_, "engine.phase");
    result.totalInstructions =
        Stats::read(*hot_.instructions) - start_instr;
    result.forks = Stats::read(*hot_.forks);
    result.statesCreated = states_.size();
    for (const auto &s : states_) {
        result.totalBlocks += s->blockCount;
        switch (s->status) {
          case StateStatus::Halted:
          case StateStatus::Killed:
            result.completed++;
            break;
          case StateStatus::Crashed:
          case StateStatus::Unsat:
            result.crashed++;
            break;
          case StateStatus::Aborted:
            result.aborted++;
            break;
          case StateStatus::SolverFailure:
            result.solverFailures++;
            break;
          case StateStatus::Merged:
            result.mergedStates++;
            break;
          case StateStatus::SpillFailure:
            result.spillFailures++;
            break;
          default:
            break;
        }
        if (s->degraded && s->status != StateStatus::SolverFailure)
            result.degradedStates++;
    }
    result.statesSpilled = Stats::read(*hot_.statesSpilled);
    result.statesRestored = Stats::read(*hot_.statesRestored);
    result.spillBytes = Stats::read(*hot_.spillBytes);
    result.spillRetries = Stats::read(*hot_.spillRetries);
    result.residentStatesPeak = Stats::read(*hot_.residentStatesPeak);
    result.witnessesEmitted = Stats::read(*hot_.witnessesEmitted);
    result.witnessExtractFailures =
        Stats::read(*hot_.witnessExtractFailures);
    result.witnessesSkipped = Stats::read(*hot_.witnessesSkipped);
    result.replayDivergences = Stats::read(*hot_.replayDivergences);
}

} // namespace s2e::core
