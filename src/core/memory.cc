#include "core/memory.hh"

#include <algorithm>
#include <cstring>

#include "support/logging.hh"

namespace s2e::core {

namespace {
/** All states initially share one immutable zero page. */
const std::shared_ptr<MemoryState::Page> &
zeroPage()
{
    static const auto page = std::make_shared<MemoryState::Page>();
    return page;
}
} // namespace

MemoryState::MemoryState(uint32_t size) : size_(size)
{
    uint32_t num_pages = (size + kMemPageSize - 1) >> kMemPageBits;
    pages_.assign(num_pages, nullptr);
}

const MemoryState::Page *
MemoryState::pageFor(uint32_t addr) const
{
    uint32_t idx = addr >> kMemPageBits;
    S2E_ASSERT(idx < pages_.size(), "memory access at 0x%x out of range",
               addr);
    const auto &p = pages_[idx];
    return p ? p.get() : zeroPage().get();
}

MemoryState::Page *
MemoryState::writablePageFor(uint32_t addr)
{
    uint32_t idx = addr >> kMemPageBits;
    S2E_ASSERT(idx < pages_.size(), "memory access at 0x%x out of range",
               addr);
    auto &p = pages_[idx];
    // COW break, safe under parallel exploration without a lock: page
    // refcounts are the shared_ptr control block's atomics, and a state
    // is only ever mutated by the worker that owns it. use_count()==1
    // therefore proves exclusivity — no other thread can copy *our*
    // reference concurrently (cloning this state would require owning
    // it), and a sibling dropping its reference after we read a stale
    // count >1 only costs a redundant copy, never a race.
    if (!p) {
        p = std::make_shared<Page>();
    } else if (p.use_count() > 1) {
        p = std::make_shared<Page>(*p); // copy-on-write
    }
    // Dirty tracking for checkpoints/spill: every mutation lands here,
    // so the dirty set over-approximates "differs from the checkpoint".
    dirty_.insert(idx);
    return p.get();
}

bool
MemoryState::readConcreteByte(uint32_t addr, uint8_t *out) const
{
    if (!inBounds(addr, 1))
        return false;
    const Page *p = pageFor(addr);
    uint16_t off = addr & (kMemPageSize - 1);
    if (!p->symbolic.empty() && p->symbolic.count(off))
        return false;
    *out = p->bytes[off];
    return true;
}

bool
MemoryState::rangeHasSymbolic(uint32_t addr, uint32_t len) const
{
    if (len == 0)
        return false;
    uint32_t end = addr + len;
    for (uint32_t a = addr; a < end;) {
        const Page *p = pageFor(a);
        uint16_t off = a & (kMemPageSize - 1);
        uint32_t in_page = std::min<uint32_t>(kMemPageSize - off, end - a);
        if (!p->symbolic.empty()) {
            auto it = p->symbolic.lower_bound(off);
            if (it != p->symbolic.end() &&
                it->first < off + in_page)
                return true;
        }
        a += in_page;
    }
    return false;
}

ExprRef
MemoryState::byteExpr(uint32_t addr, ExprBuilder &builder) const
{
    const Page *p = pageFor(addr);
    uint16_t off = addr & (kMemPageSize - 1);
    auto it = p->symbolic.find(off);
    if (it != p->symbolic.end())
        return it->second;
    return builder.constant(p->bytes[off], 8);
}

Value
MemoryState::read(uint32_t addr, unsigned len, ExprBuilder &builder) const
{
    S2E_ASSERT(inBounds(addr, len), "read at 0x%x len %u out of bounds",
               addr, len);
    if (!rangeHasSymbolic(addr, len)) {
        uint32_t v = 0;
        for (unsigned i = 0; i < len; ++i) {
            const Page *p = pageFor(addr + i);
            v |= static_cast<uint32_t>(
                     p->bytes[(addr + i) & (kMemPageSize - 1)])
                 << (8 * i);
        }
        // The result width is 8*len; the concrete Value carries it
        // implicitly (values are zero-extended machine words).
        return Value(v);
    }
    // Symbolic path: little-endian concat of byte expressions.
    ExprRef e = byteExpr(addr, builder);
    for (unsigned i = 1; i < len; ++i)
        e = builder.concat(byteExpr(addr + i, builder), e);
    return Value(e);
}

void
MemoryState::write(uint32_t addr, const Value &value, unsigned len,
                   ExprBuilder &builder)
{
    S2E_ASSERT(inBounds(addr, len), "write at 0x%x len %u out of bounds",
               addr, len);
    if (value.isConcrete()) {
        uint32_t v = value.concrete();
        for (unsigned i = 0; i < len; ++i)
            writeConcreteByte(addr + i, (v >> (8 * i)) & 0xFF);
        return;
    }
    ExprRef e = value.expr();
    S2E_ASSERT(e->width() == 8 * len,
               "write width mismatch: expr w%u for %u bytes", e->width(),
               len);
    for (unsigned i = 0; i < len; ++i) {
        ExprRef byte = builder.extract(e, 8 * i, 8);
        if (byte->isConstant())
            writeConcreteByte(addr + i, static_cast<uint8_t>(byte->value()));
        else
            makeSymbolic(addr + i, byte);
    }
}

void
MemoryState::makeSymbolic(uint32_t addr, ExprRef byte_expr)
{
    S2E_ASSERT(byte_expr->width() == 8, "symbolic byte must be 8 bits");
    Page *p = writablePageFor(addr);
    p->symbolic[addr & (kMemPageSize - 1)] = byte_expr;
}

void
MemoryState::writeConcreteByte(uint32_t addr, uint8_t value)
{
    Page *p = writablePageFor(addr);
    uint16_t off = addr & (kMemPageSize - 1);
    p->bytes[off] = value;
    if (!p->symbolic.empty())
        p->symbolic.erase(off);
}

void
MemoryState::loadProgram(const isa::Program &program)
{
    for (const auto &section : program.sections) {
        S2E_ASSERT(inBounds(section.addr,
                            static_cast<unsigned>(section.bytes.size())),
                   "program section at 0x%x overflows RAM", section.addr);
        for (size_t i = 0; i < section.bytes.size(); ++i)
            writeConcreteByte(section.addr + static_cast<uint32_t>(i),
                              section.bytes[i]);
    }
}

uint64_t
MemoryState::privatePages() const
{
    uint64_t n = 0;
    for (const auto &p : pages_)
        if (p && p.use_count() == 1)
            n++;
    return n;
}

uint64_t
MemoryState::symbolicByteCount() const
{
    uint64_t n = 0;
    for (const auto &p : pages_)
        if (p)
            n += p->symbolic.size();
    return n;
}

} // namespace s2e::core
