/**
 * @file
 * Concrete-or-symbolic machine word.
 *
 * Every register, flag and temp in the engine holds a Value: a plain
 * uint32 on the concrete fast path, or a pointer into the expression
 * DAG when symbolic. This is the mechanism behind the paper's shared
 * machine-state representation — the same storage serves the concrete
 * (QEMU-like) and symbolic (KLEE-like) executors, so crossing the
 * boundary costs nothing and needs no data marshalling.
 */

#ifndef S2E_CORE_VALUE_HH
#define S2E_CORE_VALUE_HH

#include "expr/builder.hh"
#include "expr/expr.hh"

namespace s2e::core {

using expr::ExprBuilder;
using expr::ExprRef;

/** A 32-bit guest value, concrete or symbolic. */
class Value
{
  public:
    Value() : concrete_(0), expr_(nullptr) {}
    Value(uint32_t v) : concrete_(v), expr_(nullptr) {}

    /** Wrap an expression; constants collapse to the concrete form. */
    explicit Value(ExprRef e)
    {
        if (e->isConstant()) {
            concrete_ = static_cast<uint32_t>(e->value());
            expr_ = nullptr;
        } else {
            concrete_ = 0;
            expr_ = e;
        }
    }

    bool isConcrete() const { return expr_ == nullptr; }
    bool isSymbolic() const { return expr_ != nullptr; }

    uint32_t
    concrete() const
    {
        S2E_ASSERT(isConcrete(), "concrete() on symbolic value");
        return concrete_;
    }

    /** The symbolic expression (symbolic values only). */
    ExprRef
    expr() const
    {
        S2E_ASSERT(isSymbolic(), "expr() on concrete value");
        return expr_;
    }

    /** Materialize as an expression of the given width. */
    ExprRef
    toExpr(ExprBuilder &builder, unsigned width = 32) const
    {
        if (isConcrete())
            return builder.constant(concrete_, width);
        S2E_ASSERT(expr_->width() == width,
                   "toExpr width mismatch: have %u want %u", expr_->width(),
                   width);
        return expr_;
    }

    bool
    operator==(const Value &o) const
    {
        return isConcrete() == o.isConcrete() &&
               (isConcrete() ? concrete_ == o.concrete_
                             : expr_ == o.expr_);
    }

  private:
    uint32_t concrete_;
    ExprRef expr_;
};

} // namespace s2e::core

#endif // S2E_CORE_VALUE_HH
