/**
 * @file
 * Execution state: one node of the symbolic execution tree.
 *
 * An ExecutionState is the paper's ExecState object — the complete
 * virtual machine state along one path: CPU (registers may hold
 * symbolic expressions), COW physical memory, private device copies,
 * the path constraints, the state's own virtual clock, and per-plugin
 * state (PluginState, cloned together with the state on fork).
 */

#ifndef S2E_CORE_STATE_HH
#define S2E_CORE_STATE_HH

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/memory.hh"
#include "core/replay/witness.hh"
#include "core/value.hh"
#include "vm/machine.hh"

namespace s2e::solver {
class IncrementalContext;
struct AsyncQuery;
}

namespace s2e::core::lifecycle {
struct Checkpoint;
}

namespace s2e::core {

class Fiber;

/** CPU register file and execution flags for one path. */
struct CpuState {
    Value regs[isa::kNumRegs];
    uint32_t pc = 0;
    /** Condition flags as 0/1 Values (32-bit wide like the temps). */
    Value flags[4];
    bool intEnabled = false;
    uint32_t pendingIrqs = 0; ///< bitmask of asserted lines
    /** Nesting depth of interrupt handlers (0 = mainline code). */
    uint32_t interruptDepth = 0;
    bool halted = false;
};

/**
 * Base class for plugin per-path state (paper §4.2). A plugin stores
 * its per-path data in a PluginState hanging off the ExecutionState;
 * clone() is called whenever the engine forks.
 */
class PluginState
{
  public:
    virtual ~PluginState() = default;
    virtual std::unique_ptr<PluginState> clone() const = 0;
};

/** Why a state stopped executing. */
enum class StateStatus {
    Running,
    Halted,      ///< guest executed hlt
    Killed,      ///< s2e_kill or a selector killed it
    Aborted,     ///< consistency violation (LC propagation rule)
    Crashed,     ///< guest fault (bad memory access, decode fault...)
    Unsat,       ///< constraints became unsatisfiable (engine bug guard)
    BudgetExceeded,
    SolverFailure, ///< a must-answer solver query returned Unknown
    Merged,        ///< absorbed into a sibling at an s2e_merge point
    SpillFailure,  ///< spill/restore I/O failed beyond all retries
};

const char *stateStatusName(StateStatus status);

/** One path through the system. */
class ExecutionState
{
  public:
    ExecutionState(uint32_t ram_size, const vm::DeviceSet &devices);

    /** Fork: deep-copies devices and plugin states, shares memory COW. */
    std::unique_ptr<ExecutionState> clone(int new_id) const;

    int id() const { return id_; }
    void setId(int id) { id_ = id; }
    int parentId() const { return parentId_; }
    uint32_t forkDepth() const { return forkDepth_; }

    // --- Deterministic path identity ---------------------------------
    //
    // Runtime ids (id()) are assigned in scheduling order, so they
    // differ between serial and parallel runs. The path id is derived
    // purely from the fork tree: the root is "0" and the k-th fork
    // taken by path P creates child "P.k" — identical no matter which
    // worker executes the path or in what order.

    const std::string &pathId() const { return pathId_; }
    void setPathId(std::string path_id) { pathId_ = std::move(path_id); }

    /** Ordinal of the next fork performed by this path (1-based). */
    uint32_t nextForkSeq() { return ++forkSeq_; }

    /** Ordinal for the next symbolic value created on this path; used
     *  to build schedule-independent variable names. */
    uint64_t nextSymSeq() { return symSeq_++; }

    /** Current sequence counters (spill serialization / merge). */
    uint32_t forkSeqValue() const { return forkSeq_; }
    uint64_t symSeqValue() const { return symSeq_; }
    /** Restore counters from a spilled image or a merge (max of the
     *  merged pair keeps future names collision-free). */
    void
    restoreSeqs(uint32_t fork_seq, uint64_t sym_seq)
    {
        forkSeq_ = fork_seq;
        symSeq_ = sym_seq;
    }

    CpuState cpu;
    MemoryState mem;
    vm::DeviceSet devices;

    /** Path constraints (width-1 expressions, all conjoined). */
    std::vector<ExprRef> constraints;

    /**
     * This path's persistent incremental solver context (activation-
     * literal guarded constraints; see solver/context.hh). Created
     * lazily by the bound Solver on the path's first SAT-reaching
     * query; deliberately NOT inherited on fork — a SatSolver is not
     * copyable, so each child rebuilds its own from its constraint
     * set, and the parent keeps the original. Only the worker
     * currently executing the state touches it (the engine binds it
     * per timeslice), so it is thread-confined exactly like the rest
     * of the state, and it is released when the path terminates.
     */
    std::shared_ptr<solver::IncrementalContext> solverCtx;

    // --- Lifecycle (checkpoints / governor / spill / merge) ----------

    /**
     * Hierarchical COW snapshot shared with fork siblings: the frozen
     * page refs and constraint prefix at the last fork. A spilled
     * state only serializes its delta beyond this checkpoint; restore
     * resolves untouched pages through the chain.
     */
    std::shared_ptr<const lifecycle::Checkpoint> checkpoint;

    /** Engine schedule ordinal when last picked (governor coldness). */
    uint64_t lastScheduledTick = 0;

    /** Memory payload lives on disk (pages/constraints dropped). */
    bool spilled = false;
    /** A spill write failed; keep resident, never retry the spill. */
    bool spillPinned = false;
    /** Spill-store key while an image exists on disk. */
    std::string spillKey;

    /** Terminal resources (solver context, spill image, resident
     *  accounting) already released; guards the engine's exactly-once
     *  release contract for states killed via multiple paths. */
    bool resourcesReleased = false;

    /** Killed while not the executing state (sibling sweeps, external
     *  callers): the terminal point is schedule-dependent, so the path
     *  is not witness-eligible. */
    bool killedAsync = false;

    /** Parked at an s2e_merge point, awaiting the barrier drain. */
    bool atMergePoint = false;
    /** How many sibling paths were ITE-merged into this one. */
    uint32_t mergedSiblings = 0;

    // --- Fiber scheduling (transient; never cloned, never spilled) ----

    /**
     * The suspended timeslice fiber while the state is parked at a
     * solver choke point (null whenever the state is schedulable the
     * normal way). A worker taking the state resumes this instead of
     * starting a fresh slice. Ownership travels with the state.
     */
    Fiber *suspendedFiber = nullptr;
    /** The query the fiber parked on; lives on the fiber's stack, so
     *  it is valid exactly while suspendedFiber is set. */
    solver::AsyncQuery *pendingQuery = nullptr;
    /** Children forked during the current block, fully constructed
     *  only once the forking call returns; the engine publishes them
     *  to the work queue at block boundaries (never while this state
     *  is suspended mid-block). */
    std::vector<ExecutionState *> pendingChildren;
    /** Times this path's slice parked at a solver site (telemetry and
     *  the witness-eligibility regression tests). */
    uint32_t suspendCount = 0;

    /** Per-state virtual clock, in executed guest instructions. It
     *  freezes while the state is not scheduled (paper §5). */
    uint64_t instrCount = 0;
    /** Instructions that actually touched symbolic data. */
    uint64_t symInstrCount = 0;
    /** Translation blocks executed. */
    uint64_t blockCount = 0;

    /** Multi-path mode toggle (s2e_ena / s2e_dis opcodes). */
    bool multiPathEnabled = true;

    /** Ordered nondeterminism log feeding witness extraction
     *  (EngineConfig::emitWitnesses). Children inherit the parent's
     *  prefix on fork; empty when recording is off. */
    replay::PathRecord replayLog;

    StateStatus status = StateStatus::Running;
    uint32_t exitCode = 0;
    std::string statusMessage;

    /** The path survived a solver Unknown via a degradation action
     *  (e.g. a suppressed fork): its coverage is best-effort, not
     *  exhaustive. Inherited by children on fork. */
    bool degraded = false;
    /** How many degradation actions this path absorbed. */
    uint32_t degradeCount = 0;

    /**
     * True while the path is still schedulable. Reads the status with
     * an acquire atomic so a worker observing a cross-thread kill (the
     * only remote write a state ever receives) also sees the status
     * message written before it.
     */
    bool
    isActive() const
    {
        auto *self = const_cast<ExecutionState *>(this);
        return std::atomic_ref<StateStatus>(self->status).load(
                   std::memory_order_acquire) == StateStatus::Running;
    }

    /** Atomic (release) status transition; pairs with isActive(). */
    void
    setStatus(StateStatus new_status)
    {
        std::atomic_ref<StateStatus>(status).store(
            new_status, std::memory_order_release);
    }

    void
    addConstraint(ExprRef c)
    {
        S2E_ASSERT(c->width() == 1, "constraint must be width 1");
        if (!c->isTrue())
            constraints.push_back(c);
    }

    // --- Plugin state ------------------------------------------------

    /** Fetch or lazily create this plugin's per-path state. */
    template <typename T>
    T *
    pluginState(const void *plugin_key)
    {
        auto it = pluginStates_.find(plugin_key);
        if (it == pluginStates_.end()) {
            auto created = std::make_unique<T>();
            T *raw = created.get();
            pluginStates_[plugin_key] = std::move(created);
            return raw;
        }
        return static_cast<T *>(it->second.get());
    }

    /** Lookup without creation (may return nullptr). */
    PluginState *
    findPluginState(const void *plugin_key) const
    {
        auto it = pluginStates_.find(plugin_key);
        return it == pluginStates_.end() ? nullptr : it->second.get();
    }

    /** All plugin states (serializer / merge compatibility checks). */
    const std::map<const void *, std::unique_ptr<PluginState>> &
    pluginStates() const
    {
        return pluginStates_;
    }

    /** Install a decoded plugin state (spill restore path). */
    void
    setPluginState(const void *plugin_key,
                   std::unique_ptr<PluginState> plugin_state)
    {
        pluginStates_[plugin_key] = std::move(plugin_state);
    }

    // --- Accounting ----------------------------------------------------

    /** Approximate private memory footprint in bytes (Fig 8 metric):
     *  privatized COW pages + constraint nodes + symbolic bytes. */
    uint64_t memoryFootprint() const;

    /** Last footprint published to the engine's pool-wide total
     *  (written only by the owning worker; see accountStateMemory). */
    uint64_t accountedBytes = 0;

  private:
    ExecutionState(const ExecutionState &) = default;

    int id_ = 0;
    int parentId_ = -1;
    uint32_t forkDepth_ = 0;
    std::string pathId_ = "0";
    uint32_t forkSeq_ = 0;
    uint64_t symSeq_ = 0;
    std::map<const void *, std::unique_ptr<PluginState>> pluginStates_;
};

} // namespace s2e::core

#endif // S2E_CORE_STATE_HH
