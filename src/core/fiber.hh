/**
 * @file
 * Minimal stackful fibers for one-suspendable-context-per-state
 * scheduling (ROADMAP item 2).
 *
 * A Fiber is a heap-allocated call stack plus the six callee-saved
 * registers of the System V x86-64 ABI; switching costs one function
 * call each way and never enters the kernel (unlike ucontext, which
 * pays a sigprocmask syscall per swap). The engine runs each
 * execution-state timeslice on one of these: when a solver choke
 * point needs an answer it calls Fiber::park(), the driving worker
 * gets control back and picks up other work, and whichever worker
 * later takes the state again continues the slice with resume() —
 * fibers deliberately migrate across OS threads.
 *
 * Ownership protocol: a fiber is driven by exactly one thread at a
 * time. resume() may only be called from plain thread context (never
 * from inside another fiber), park() only from inside the fiber.
 * All cross-thread publication happens through the structure that
 * hands the owning state between workers (the work queue / solver
 * service), never through the Fiber itself.
 *
 * Sanitizer support: every switch is bracketed with the ASan fiber
 * annotations (so the fake-stack machinery follows the context) and
 * the TSan fiber API (so the race detector models the fiber as its
 * own logical thread); both are compiled out in plain builds.
 */

#ifndef S2E_CORE_FIBER_HH
#define S2E_CORE_FIBER_HH

#include <cstddef>
#include <functional>

#if !defined(__x86_64__)
#include <ucontext.h>
#endif

namespace s2e::core {

class Fiber
{
  public:
    static constexpr size_t kDefaultStackBytes = 256 * 1024;

    explicit Fiber(size_t stack_bytes = kDefaultStackBytes);
    ~Fiber();
    Fiber(const Fiber &) = delete;
    Fiber &operator=(const Fiber &) = delete;

    /**
     * Arm the fiber with a new entry function. Valid on a fresh fiber
     * or one whose previous entry has returned (finished()); the
     * stack mapping is reused, which is what makes per-slice fibers
     * cheap enough to recycle through a pool.
     */
    void reset(std::function<void()> entry);

    /**
     * Run the fiber on the calling thread until it parks or its entry
     * returns. Returns true while the entry has not finished (i.e.
     * the fiber is parked and must eventually be resumed again so its
     * C++ stack unwinds), false once the entry returned.
     */
    bool resume();

    /** From inside the fiber: switch back to whatever thread called
     *  resume(). The next resume() — possibly on a different thread —
     *  returns control right here. */
    static void park();

    /** The fiber currently running on this thread, null outside any
     *  fiber. */
    static Fiber *current();

    /** Did the armed entry run to completion? */
    bool finished() const { return finished_; }

    /** Usable stack bytes (excluding the guard page). */
    size_t stackBytes() const { return stackBytes_; }

  private:
    void seedStack();
    void switchOut();
    [[noreturn]] void runEntry();

    friend void fiberEntryThunk(Fiber *fiber);

    std::function<void()> entry_;
    bool started_ = false;
    bool finished_ = false;

    /** mmap base (low guard page included). */
    void *mapBase_ = nullptr;
    size_t mapBytes_ = 0;
    /** Lowest usable stack address (just above the guard page). */
    void *stackLow_ = nullptr;
    size_t stackBytes_ = 0;

#if defined(__x86_64__)
    /** Saved stack pointer of the parked fiber. */
    void *fiberSp_ = nullptr;
    /** Saved stack pointer of the thread driving resume(). */
    void *schedSp_ = nullptr;
#else
    ucontext_t fiberCtx_;
    ucontext_t schedCtx_;
#endif

    // Sanitizer bookkeeping (unused members in plain builds are
    // cheaper than another #ifdef layer in this header).
    void *tsanFiber_ = nullptr;
    void *resumerTsan_ = nullptr;
    void *fiberFake_ = nullptr;
    void *schedFake_ = nullptr;
    const void *resumerStackBottom_ = nullptr;
    size_t resumerStackSize_ = 0;
};

} // namespace s2e::core

#endif // S2E_CORE_FIBER_HH
