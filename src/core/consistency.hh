/**
 * @file
 * Execution consistency models (paper §3).
 *
 * The six models — SC-CE, SC-UE, SC-SE, LC, RC-OC, RC-CC — are
 * expressed as a policy object consulted by the engine at every
 * decision point that involves the unit/environment boundary or the
 * treatment of symbolic data. Table 1 of the paper maps each model to
 * consistency/completeness; policyFor() encodes the mechanics of §3.2.
 */

#ifndef S2E_CORE_CONSISTENCY_HH
#define S2E_CORE_CONSISTENCY_HH

namespace s2e::core {

/** The six consistency models of paper §3.1. */
enum class ConsistencyModel {
    ScCe, ///< strictly consistent concrete execution (fuzzing)
    ScUe, ///< strictly consistent unit-level execution (DART-style)
    ScSe, ///< strictly consistent system-level execution (full SE)
    Lc,   ///< local consistency
    RcOc, ///< overapproximate consistency
    RcCc, ///< CFG consistency
};

const char *consistencyModelName(ConsistencyModel model);

/** What to do when *environment* code branches on symbolic data. */
enum class EnvSymbolicBranchPolicy {
    Fork,            ///< explore both sides (SC-SE)
    ConcretizeHard,  ///< pick a value, constrain permanently (SC-UE)
    Abort,           ///< kill the path: inconsistency reached the
                     ///< environment's control flow (LC rule, §3.2.2)
    ConcretizeSoft,  ///< pick a value, constrain; relaxed models accept
                     ///< the resulting incompleteness (RC-OC / RC-CC)
};

/** Mechanical knobs derived from the model. */
struct ConsistencyPolicy {
    ConsistencyModel model;

    /** False only under SC-CE: symbolic-injection opcodes become
     *  no-ops and the whole run is one concrete path. */
    bool symbolicInputsEnabled = true;

    /** Fork on symbolic branches inside the environment (SC-SE). */
    bool forkInEnvironment = false;

    /** Behavior when environment code branches on symbolic data. */
    EnvSymbolicBranchPolicy envSymbolicBranch =
        EnvSymbolicBranchPolicy::ConcretizeSoft;

    /** RC-CC: follow both sides of every unit branch without checking
     *  feasibility and without recording constraints. */
    bool ignoreFeasibility = false;

    /** Hardware (port/MMIO reads from devices marked symbolic) returns
     *  unconstrained symbolic values — the DDT-style symbolic-hardware
     *  input source, available under SC-SE and relaxed models. */
    bool symbolicHardwareAllowed = true;
};

/** The paper-§3.2 mechanics for each model. */
ConsistencyPolicy policyFor(ConsistencyModel model);

} // namespace s2e::core

#endif // S2E_CORE_CONSISTENCY_HH
