/**
 * @file
 * The selective symbolic execution engine (paper §2, §5).
 *
 * The engine drives a set of ExecutionStates through the DBT. Every
 * micro-op runs on a concrete fast path when its inputs are concrete
 * and builds expressions otherwise, so "most instructions run
 * natively even in the symbolic domain". The unit/environment code
 * partition (unitRanges) plus the active ConsistencyPolicy decide
 * where forking happens and what happens to symbolic data crossing
 * the boundary — this is the selective part.
 */

#ifndef S2E_CORE_ENGINE_HH
#define S2E_CORE_ENGINE_HH

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/consistency.hh"
#include "core/events.hh"
#include "core/lifecycle/spill.hh"
#include "core/state.hh"
#include "core/workqueue.hh"
#include "dbt/translator.hh"
#include "obs/profiler.hh"
#include "solver/solver.hh"
#include "vm/machine.hh"

namespace s2e::solver {
class SolverService;
struct AsyncQuery;
}

namespace s2e::core {

class Fiber;

namespace lifecycle {
class StateSerializer;
}
namespace replay {
class ReplayCursor;
}

/** Picks which state runs next (paper's priority-based selection). */
class Searcher
{
  public:
    virtual ~Searcher() = default;
    virtual const char *name() const = 0;
    virtual void stateAdded(ExecutionState &state) { (void)state; }
    virtual void stateRemoved(ExecutionState &state) { (void)state; }
    /** Select from a non-empty active set. */
    virtual ExecutionState *
    select(const std::vector<ExecutionState *> &active) = 0;
};

/** Engine configuration. */
struct EngineConfig {
    ConsistencyModel model = ConsistencyModel::ScSe;

    /** Code ranges forming the *unit* (the symbolic domain). Empty
     *  means the whole system is the unit. */
    std::vector<std::pair<uint32_t, uint32_t>> unitRanges;

    /** Port ranges behaving as symbolic hardware (reads return fresh
     *  unconstrained symbolic values when the model allows it). */
    std::vector<std::pair<uint16_t, uint16_t>> symbolicPortRanges;

    /** MMIO ranges behaving as symbolic hardware. */
    std::vector<std::pair<uint32_t, uint32_t>> symbolicMmioRanges;

    /** Symbolic-pointer solver window (the §5 "small pages" passed to
     *  the constraint solver; §6.2 sweeps 128 B vs 4 KB). */
    uint32_t symPointerWindow = 128;

    /** Run budgets; 0 disables the budget. */
    uint64_t maxInstructions = 0;
    double maxWallSeconds = 0;
    size_t maxStatesCreated = 0;

    /** Translation blocks per scheduling quantum. */
    unsigned timesliceBlocks = 64;

    /**
     * Exploration worker threads. 1 (the default) runs the original
     * single-threaded loop with the engine-level Searcher; >1 spawns a
     * worker pool draining a work-stealing queue of ready states, with
     * per-worker solvers and profilers. Path *results* are identical
     * either way (see tests/test_parallel.cc); only scheduling order
     * differs.
     */
    unsigned numWorkers = 1;

    // --- Fiber scheduler (async solver offload) -----------------------

    /**
     * Run every state timeslice on a suspendable stackful fiber and
     * answer solver choke points (checkBranch / getValue / getRange /
     * mayBeTrue / mustBeTrue) through the asynchronous SolverService:
     * the fiber parks at the query, the worker immediately executes
     * other states, and the state is rescheduled once the service has
     * the answer. Path results are identical to the blocking engine
     * (see tests/test_fiber.cc); only scheduling overlap changes.
     * Forced off in replay mode (which is strictly serial).
     */
    bool useFibers = false;

    /** Solver-service threads draining the per-worker query rings. */
    unsigned solverServiceThreads = 1;

    /** Per-worker query-ring capacity (rounded up to a power of two).
     *  A full ring degrades gracefully: the query runs inline on the
     *  worker, exactly like the blocking engine. */
    size_t solverQueueCapacity = 64;

    /** Max queries one service thread drains into a batch; queries in
     *  a batch that share a constraint prefix are answered inside one
     *  shared incremental context. */
    unsigned solverBatchMax = 16;

    /** Stack bytes per fiber (rounded up to whole pages; fibers are
     *  pooled, so peak live fibers — not total states — bound the
     *  mapped memory). */
    size_t fiberStackBytes = 256 * 1024;

    /** Record the phase-time breakdown (translate / concrete /
     *  symbolic / solver / fork). The compile-time default follows
     *  the S2E_OBS_DEFAULT_OFF CMake option. */
    bool profileExecution = obs::kProfilerDefaultEnabled;

    /** Run the TB optimization passes (constant folding, dead-flag
     *  and dead-temp elimination) after translation. The compile-time
     *  default follows the S2E_TB_OPT CMake option; the differential
     *  equivalence suite flips it per engine. */
    bool optimizeTb = dbt::kTbOptimizeDefault;

    /** Verify TB structural invariants after translate/optimize. */
    bool verifyTb = dbt::tbVerifyDefault();

    // --- State lifecycle (checkpoints / spill / merge) ----------------

    /**
     * Memory-governor cap on the summed engine-accounted footprint
     * (ExecutionState::memoryFootprint) of resident states; 0 keeps
     * everything resident. Over the cap, the coldest states (by last
     * scheduling tick) are serialized to the spill store and their
     * memory dropped; a spilled state restores transparently the next
     * time it is scheduled.
     */
    uint64_t maxResidentBytes = 0;

    /** Spill directory; empty picks a per-engine directory under the
     *  system temp dir. Removed when the engine is destroyed. */
    std::string spillDir;

    /** Deterministic spill-I/O fault injection (tests / benches). */
    lifecycle::SpillFaultPolicy spillFaults;

    /**
     * Honor s2e_merge_point opcodes: states reaching one are parked
     * until no other state can still arrive, then compatible siblings
     * are ITE-merged pairwise. Off by default — the opcode is then a
     * no-op, which is exactly the oracle configuration the merge
     * differential suite compares against.
     */
    bool enableMergePoints = false;

    // --- Record/replay witnesses --------------------------------------

    /**
     * Emit an `s2e.witness.v1` replay witness for every eligible
     * terminated path (Halted/Killed/Crashed, not merged, constraints
     * resident): a complete concrete input assignment extracted from
     * a fresh solver model plus the path's ordered nondeterminism log.
     * Ignored under RC-CC (infeasible paths have no model) and in
     * replay mode.
     */
    bool emitWitnesses = false;

    /** Also write each emitted witness to `<witnessDir>/<pathId>.witness`
     *  (created on demand). Empty keeps witnesses in memory only. */
    std::string witnessDir;

    /**
     * Replay mode: re-execute this witness purely concretely with the
     * solver disconnected. Recorded values are substituted at each
     * nondeterminism site and every site/branch/interrupt must match
     * the log; the first mismatch kills the path with a divergence
     * report (see core/replay/replayer.hh). Forces numWorkers = 1 and
     * disables witness emission, merge points and state budgets.
     */
    std::shared_ptr<const replay::Witness> replayWitness;

    solver::SolverOptions solverOptions;
};

/** Aggregate outcome of a run() call. */
struct RunResult {
    uint64_t totalInstructions = 0;
    uint64_t totalBlocks = 0;
    uint64_t forks = 0;
    size_t statesCreated = 0;
    size_t completed = 0; ///< halted or killed cleanly
    size_t crashed = 0;
    size_t aborted = 0;
    /** States killed because a must-answer solver query returned
     *  Unknown (StateStatus::SolverFailure). */
    size_t solverFailures = 0;
    /** Surviving states that absorbed at least one solver Unknown via
     *  a degradation action (disjoint from solverFailures). */
    size_t degradedStates = 0;
    /** Paths absorbed into a sibling at an s2e_merge point
     *  (StateStatus::Merged); each one retired a whole subtree of
     *  would-be duplicate work. */
    size_t mergedStates = 0;
    /** States killed because a spilled image could not be restored
     *  even after retries (StateStatus::SpillFailure). */
    size_t spillFailures = 0;
    /** Spill events (one state may spill more than once). */
    uint64_t statesSpilled = 0;
    uint64_t statesRestored = 0;
    /** Serialized bytes successfully written to the spill store. */
    uint64_t spillBytes = 0;
    /** Extra I/O attempts the retry/backoff wrapper absorbed. */
    uint64_t spillRetries = 0;
    /** Peak count of simultaneously resident (unspilled) states. */
    uint64_t residentStatesPeak = 0;
    /** Replay witnesses emitted (EngineConfig::emitWitnesses). */
    uint64_t witnessesEmitted = 0;
    /** Terminated paths whose witness extraction failed (solver gave
     *  up / completed assignment failed validation). */
    uint64_t witnessExtractFailures = 0;
    /** Terminated paths ineligible for a witness (merged survivors,
     *  killed-while-spilled, non-terminal statuses). */
    uint64_t witnessesSkipped = 0;
    /** Replay-mode paths killed at the first mismatching site. */
    uint64_t replayDivergences = 0;
    bool budgetExhausted = false;
    double wallSeconds = 0;
    /** Worker pool size used by the run (1 = serial loop). */
    unsigned workers = 1;
    /** Per-worker busy wall-clock (executing states, not idling in the
     *  queue); workerBusySeconds[i] / wallSeconds is worker i's
     *  utilization. Empty for serial runs. */
    std::vector<double> workerBusySeconds;

    // --- Fiber scheduler telemetry (zero unless useFibers) ------------

    /** Fiber parks at solver choke points / resumes after answers. */
    uint64_t suspends = 0;
    uint64_t resumes = 0;
    /** Queries submitted to the async solver service. */
    uint64_t asyncQueries = 0;
    /** Of those, answered inside a shared sibling-batch context. */
    uint64_t batchedQueries = 0;
    /** Queries answered inline on the worker because its ring was
     *  full (the graceful-degradation path). */
    uint64_t inlineSolverFallbacks = 0;
    /** Peak simultaneously live fibers (= peak suspended + running). */
    uint64_t fibersPeak = 0;
    /** Peak queries waiting in one service lane's rings. */
    uint64_t solverQueueDepthPeak = 0;
    /** Wall-clock the service threads spent inside the solver, and
     *  the share of it during which ≥1 worker was executing guest
     *  code. overlapRatio = overlap/busy; identically 0 for the
     *  blocking engine, > 0 is execution the fibers reclaimed. */
    double serviceBusySeconds = 0;
    double solverOverlapSeconds = 0;
    double solverOverlapRatio = 0;
    /** Suspend+resume transitions per wall second (fiber switch
     *  traffic; a cheap-context sanity metric). */
    double suspendResumePerSec = 0;
    /** Wall-clock the *worker* solvers spent answering queries —
     *  with fibers on, only the inline-fallback residue. 1 − this/Σ
     *  busy is the worker exec-utilization the benches report. */
    double workerSolverSeconds = 0;
};

/**
 * The platform core. Owns the expression builder, the solver, the
 * translation cache, the event hub and all execution states.
 */
class Engine
{
  public:
    Engine(vm::MachineConfig machine, EngineConfig config);
    ~Engine();
    Engine(const Engine &) = delete;
    Engine &operator=(const Engine &) = delete;

    ExprBuilder &builder() { return builder_; }
    solver::Solver &solver() { return solver_; }
    EventHub &events() { return events_; }
    Stats &stats() { return stats_; }
    obs::PhaseProfiler &profiler() { return profiler_; }
    const EngineConfig &config() const { return config_; }
    const ConsistencyPolicy &policy() const { return policy_; }

    /** Replace the scheduling policy (default: depth-first). */
    void setSearcher(std::unique_ptr<Searcher> searcher);
    Searcher *searcher() const { return searcher_.get(); }

    /** The initial state (available before run() for setup). */
    ExecutionState &initialState();

    /** Explore until no active states remain or a budget trips. */
    RunResult run();

    // --- State management (plugin API) --------------------------------

    const std::vector<std::unique_ptr<ExecutionState>> &allStates() const
    {
        return states_;
    }
    std::vector<ExecutionState *> activeStates() const;

    /** Terminate a state with the given status. */
    void killState(ExecutionState &state, StateStatus status,
                   const std::string &message);

    /**
     * Plugin API: unconditionally fork `state`. The returned child is
     * an identical copy (same pc, no added constraints) that the
     * caller may then diverge (e.g. inject a failure return value) —
     * the mechanism behind eager environment-behavior injection.
     * Returns nullptr if the state budget is exhausted.
     *
     * The child resumes at the start of the current translation
     * block; call this from hooks on block-leader instructions
     * (branch targets, function entries) so the child's re-execution
     * cannot clobber injected values.
     */
    ExecutionState *forkState(ExecutionState &state);

    /** Is this pc inside the unit (symbolic domain)? */
    bool isUnitPc(uint32_t pc) const;

    /**
     * Record a non-fatal solver degradation on `state`: the solver
     * returned Unknown at `site` and the caller took a conservative
     * action (suppressed a fork, kept a constraint, skipped a check)
     * instead of mis-answering. Marks the state degraded, bumps
     * `engine.solver_degraded` stats and emits onSolverDegraded.
     * Plugins absorbing Unknown outcomes should call this too.
     */
    void noteSolverDegraded(ExecutionState &state, const char *site,
                            bool timed_out);

    // --- Symbolic-value helpers (plugin API) ---------------------------

    /** Make a register symbolic; optional inclusive range constraint. */
    ExprRef makeRegSymbolic(ExecutionState &state, unsigned reg,
                            const std::string &name,
                            std::optional<std::pair<uint32_t, uint32_t>>
                                range = std::nullopt);

    /** Make a memory byte range symbolic. */
    void makeMemSymbolic(ExecutionState &state, uint32_t addr, uint32_t len,
                         const std::string &name);

    /**
     * Force a value concrete: returns a satisfying concrete value and
     * adds the equality (soft) constraint. Kills the state and returns
     * nullopt when constraints are unsatisfiable.
     */
    std::optional<uint32_t> concretize(ExecutionState &state,
                                       const Value &value,
                                       const char *reason);

    /** Read a register, concretizing if needed. */
    std::optional<uint32_t> readRegConcrete(ExecutionState &state,
                                            unsigned reg);

    /** Drop all cached translations (after runtime re-marking). */
    void flushTranslationCache() { tbCache_.clear(); }

    dbt::TbCache &tbCache() { return tbCache_; }

    /** The spill serializer. Plugins with per-path state register
     *  their codec here so spilled states round-trip it; codec-less
     *  plugin state simply stays resident across a spill. */
    lifecycle::StateSerializer &stateSerializer() { return *serializer_; }

    /** The spill store (test/bench introspection of I/O counters). */
    lifecycle::SpillStore &spillStore() { return *spillStore_; }

    /** Witnesses emitted so far (EngineConfig::emitWitnesses). */
    std::vector<std::shared_ptr<const replay::Witness>> witnesses() const;

    /** Replay-mode cursor; null outside replay mode. */
    replay::ReplayCursor *replayCursor() const
    {
        return replayCursor_.get();
    }

  private:
    struct TempFile; // per-block temp values

    /** Per-worker context: private solver, profiler and a lock-free L1
     *  over the shared TbCache. Reached via tlsWorker_. */
    struct WorkerContext;

    /** The executing worker's context; null on the serial path. */
    static thread_local WorkerContext *tlsWorker_;

    /** Solver/profiler for the calling thread: the worker's own in a
     *  parallel run, the engine-level ones otherwise. */
    solver::Solver &curSolver();
    obs::PhaseProfiler &curProfiler();

    RunResult runSerial();
    RunResult runParallel();
    void workerLoop(unsigned worker_id, WorkQueue &queue,
                    std::chrono::steady_clock::time_point start,
                    uint64_t start_instr);
    void finalizeResult(RunResult &result,
                        std::chrono::steady_clock::time_point start,
                        uint64_t start_instr);
    /** Parallel-mode incremental footprint accounting (the owner
     *  worker updates its state's share of the global watermark). */
    void accountStateMemory(ExecutionState &state);
    /** Remove a finished state from active_ and emit its kill event. */
    void retireState(ExecutionState &state);

    /** Schedule-independent symbolic variable name:
     *  `<base>@<pathId>#<per-path-seq>`. */
    std::string symName(ExecutionState &state, const std::string &base);

    dbt::CodeReader codeReaderFor(ExecutionState &state);
    vm::DeviceBus deviceBusFor(ExecutionState &state);
    std::shared_ptr<dbt::TranslationBlock> fetchBlock(ExecutionState &state);

    /** Execute one TB. Returns false when the state stopped. */
    bool executeBlock(ExecutionState &state);
    void deliverInterrupts(ExecutionState &state);
    void enterInterrupt(ExecutionState &state, unsigned vector,
                        uint32_t return_pc);

    Value packFlags(ExecutionState &state) const;
    void unpackFlags(ExecutionState &state, const Value &word);

    /** Handle a branch condition; returns chosen target. Concrete
     *  conditions take the fast path (checked against the log in
     *  replay mode); symbolic ones go to resolveSymbolicBranch and
     *  the outcome is recorded when witness recording is on. */
    uint32_t handleBranch(ExecutionState &state, const Value &cond,
                          uint32_t branch_pc, uint32_t taken_pc,
                          uint32_t fallthrough_pc);

    /** Symbolic-branch resolution (policy / solver / fork). */
    uint32_t resolveSymbolicBranch(ExecutionState &state, const Value &cond,
                                   uint32_t branch_pc, uint32_t taken_pc,
                                   uint32_t fallthrough_pc);

    /** Fork the state on `condition`; parent takes the true side. */
    ExecutionState *fork(ExecutionState &state, ExprRef condition);

    // --- Fiber scheduling / async solver ------------------------------
    //
    // The path* helpers are the engine's solver choke points: on the
    // blocking engine they call curSolver() directly; under useFibers
    // (inside a fiber slice) they build an AsyncQuery on the fiber's
    // stack, park, and return the service's answer after resume.

    solver::QueryOutcome pathMayBeTrue(ExecutionState &state, ExprRef e);
    solver::QueryOutcome pathMustBeTrue(ExecutionState &state, ExprRef e);
    solver::QueryOutcome pathGetValue(ExecutionState &state, ExprRef e,
                                      uint64_t *value);
    solver::Solver::BranchFeasibility pathCheckBranch(ExecutionState &state,
                                                      ExprRef cond);

    /** Park the current fiber on `q`; the driver submits it after the
     *  switch so the service can never resume a half-saved context. */
    void awaitQuery(ExecutionState &state, solver::AsyncQuery &q);

    /** One timeslice of `state`, run inside its fiber. */
    void fiberSliceBody(ExecutionState &state);

    /** Resume/run `state`'s fiber until it parks again or the slice
     *  ends; returns true when the state is suspended in the solver
     *  service (the caller must NOT touch it further). */
    bool driveFiber(unsigned worker_id, WorkQueue &queue,
                    ExecutionState &state, Fiber *fiber);

    /** Publish children forked during the last block(s) to the work
     *  queue. Called at block boundaries and after each slice — never
     *  while their parent is suspended mid-block. */
    void flushPendingChildren(ExecutionState &state);

    Fiber *acquireFiber();
    void releaseFiber(Fiber *fiber);

    /** A must-answer solver query returned Unknown: kill the state
     *  with StateStatus::SolverFailure (never misreport as Unsat). */
    void solverFailState(ExecutionState &state, const char *site,
                         const solver::QueryOutcome &outcome,
                         const std::string &message);

    /** Resolve a load at a symbolic address via the window/ite scheme. */
    Value symbolicLoad(ExecutionState &state, const Value &addr,
                       unsigned len);

    Value loadFrom(ExecutionState &state, uint32_t addr, unsigned len,
                   bool sign_extend);
    bool storeTo(ExecutionState &state, uint32_t addr, const Value &value,
                 unsigned len);

    Value ioRead(ExecutionState &state, uint32_t port);
    void ioWrite(ExecutionState &state, uint32_t port, const Value &value);

    void execS2Op(ExecutionState &state, const dbt::MicroOp &op,
                  const std::vector<Value> &temps, uint32_t instr_pc,
                  uint32_t next_pc, uint32_t *next_pc_out);

    void finishState(ExecutionState &state);
    void accountMemory();

    // --- Record/replay witnesses --------------------------------------

    /** Append a nondeterminism event to the state's log (recording
     *  mode only; no-op otherwise). */
    void recordEvent(ExecutionState &state, replay::SiteKind kind,
                     uint32_t pc, uint32_t a, uint32_t b,
                     std::vector<std::string> vars = {});

    /** Extract + store a witness for an eligible terminated state.
     *  Runs exactly once per state, from releaseStateResources. */
    void maybeEmitWitness(ExecutionState &state);

    /** Latch a replay divergence and kill the state. */
    void replayDiverge(ExecutionState &state, const std::string &what);

    /** Replay-mode guts of the nondeterminism sites. */
    std::optional<uint64_t> replaySubstitute(ExecutionState &state,
                                             replay::SiteKind kind,
                                             uint32_t a, uint32_t b);
    ExecutionState *replayApiFork(ExecutionState &state);

    // --- State lifecycle ----------------------------------------------

    /**
     * Idempotent terminal-resource release: drops the incremental
     * solver context and deletes any spill image. Every termination
     * path (finishState, retireState, merge absorption) funnels
     * through here exactly once per state, so neither resource can
     * leak or be double-released — including states killed while
     * spilled.
     */
    void releaseStateResources(ExecutionState &state);

    /** Serialize + drop a resident state; on write failure the state
     *  is re-pinned in memory instead. Returns true when spilled. */
    bool spillState(ExecutionState &state);

    /** Bring a spilled state back before executing it. On failure the
     *  state is killed with StateStatus::SpillFailure; returns false. */
    bool restoreState(ExecutionState &state);

    /** Serial-mode governor: spill coldest states until under cap. */
    void governResident();

    /** Park a state that hit an s2e_merge point (drops it from the
     *  active set until the merge barrier drains). */
    void parkForMerge(ExecutionState &state);

    /**
     * Merge barrier: called only when no state is executing (serial
     * loop idle / parallel round joined), so arrival at each merge pc
     * is complete. Pools are drained in deterministic order (pc, then
     * pathId), compatible siblings fold left into the survivor, and
     * survivors are reactivated. Returns the number reactivated.
     */
    size_t drainMergePool();

    /** Budget exhaustion with states parked at merge points: kill and
     *  release them (they are no longer in active_ or any queue). */
    void killParkedStates();

    /** Resident-state counter transitions (peak statistics). */
    void residentInc();
    void residentDec();

    vm::MachineConfig machine_;
    EngineConfig config_;
    ConsistencyPolicy policy_;
    ExprBuilder builder_;
    solver::Solver solver_;
    EventHub events_;
    Stats stats_;
    obs::PhaseProfiler profiler_;

    /** Pre-registered Stats slots for per-event counters: the run
     *  loop bumps these through plain pointers, never a map lookup. */
    struct HotCounters {
        uint64_t *translations = nullptr;
        uint64_t *instructions = nullptr;
        uint64_t *forks = nullptr;
        uint64_t *forksSuppressedBudget = nullptr;
        uint64_t *forksSuppressedDegraded = nullptr;
        uint64_t *cfgForks = nullptr;
        uint64_t *envBranchConcretizations = nullptr;
        uint64_t *symValuesCreated = nullptr;
        uint64_t *symPointerLoads = nullptr;
        uint64_t *symPointerStores = nullptr;
        uint64_t *symPointerWindowConstrained = nullptr;
        uint64_t *symPointerMaxWindow = nullptr;
        uint64_t *symbolicHardwareReads = nullptr;
        uint64_t *dmaConcretizations = nullptr;
        uint64_t *interruptsDelivered = nullptr;
        uint64_t *solverDegraded = nullptr;
        uint64_t *solverFailures = nullptr;
        uint64_t *memoryHighWatermark = nullptr;
        uint64_t *maxActiveStates = nullptr;
        uint64_t *uopsExecuted = nullptr;
        uint64_t *uopsPreOpt = nullptr;
        uint64_t *statesMerged = nullptr;
        uint64_t *statesSpilled = nullptr;
        uint64_t *statesRestored = nullptr;
        uint64_t *spillBytes = nullptr;
        uint64_t *spillRetries = nullptr;
        uint64_t *spillWriteFailures = nullptr;
        uint64_t *residentStatesPeak = nullptr;
        uint64_t *witnessesEmitted = nullptr;
        uint64_t *witnessExtractFailures = nullptr;
        uint64_t *witnessesSkipped = nullptr;
        uint64_t *replayDivergences = nullptr;
        uint64_t *fibersActive = nullptr;
        uint64_t *solverQueueDepth = nullptr;
        uint64_t *batchedQueries = nullptr;
        uint64_t *suspends = nullptr;
        uint64_t *resumes = nullptr;
        uint64_t *asyncQueries = nullptr;
        uint64_t *inlineSolverFallbacks = nullptr;
    } hot_;
    SiteCounterCache concretizationSites_;
    SiteCounterCache degradeSites_;
    SiteCounterCache solverFailureSites_;

    dbt::Translator translator_;
    dbt::TbCache tbCache_;
    std::unique_ptr<Searcher> searcher_;

    // State bookkeeping. statesMutex_ guards states_/active_/
    // nextStateId_ and searcher notifications; killMutex_ serializes
    // the (rare) status transitions so a cross-thread kill cannot race
    // the owner's own termination; mergeMutex_ guards mergePool_.
    // Lock order: statesMutex_, killMutex_ and mergeMutex_ are all
    // leaves — never hold two at once.
    mutable std::mutex statesMutex_;
    std::mutex killMutex_;
    std::mutex mergeMutex_;
    std::vector<std::unique_ptr<ExecutionState>> states_;
    std::vector<ExecutionState *> active_;
    int nextStateId_ = 0;

    // Parallel-run machinery (all quiescent on the serial path).
    std::vector<std::unique_ptr<WorkerContext>> workers_;
    WorkQueue *queue_ = nullptr; ///< non-null only inside runParallel
    std::atomic<bool> stopFlag_{false};
    std::atomic<bool> budgetExhaustedFlag_{false};
    /** Sum of active states' accounted footprints (parallel runs). */
    std::atomic<uint64_t> currentMemBytes_{0};

    // Fiber-scheduler machinery (null/zero unless useFibers).
    std::unique_ptr<solver::SolverService> solverService_;
    /** Recycled fiber stacks; a fiber leaves the pool while a state
     *  slice (possibly suspended) owns it. */
    std::vector<std::unique_ptr<Fiber>> fiberPool_;
    std::mutex fiberPoolMu_;
    /** Fibers currently out of the pool (live slices + parked). */
    std::atomic<int> fibersLive_{0};
    /** Workers currently executing guest code (the overlap gauge the
     *  solver service samples). */
    std::atomic<int> executingWorkers_{0};
    /** Queries submitted to the service whose completion callback has
     *  not fully returned. A round's WorkQueue may only be destroyed
     *  at zero: the callback's put() can still be signaling the
     *  queue's condvar after the resumed state already finished. */
    std::atomic<uint64_t> asyncInFlight_{0};

    // State-lifecycle machinery.
    std::unique_ptr<lifecycle::StateSerializer> serializer_;
    std::unique_ptr<lifecycle::SpillStore> spillStore_;
    /** States parked at s2e_merge points, keyed by merge pc. */
    std::map<uint32_t, std::vector<ExecutionState *>> mergePool_;
    /** Monotonic scheduling clock feeding lastScheduledTick. */
    std::atomic<uint64_t> scheduleTick_{0};
    /** Currently resident (unspilled) active states. */
    std::atomic<uint64_t> residentStates_{0};

    // Record/replay machinery. recording_ is fixed at construction
    // (emitWitnesses, feasible model, not replaying); witnessMutex_
    // guards witnesses_ (workers emit from their own termination
    // funnels). replayCursor_ is non-null only in replay mode, which
    // is always serial.
    bool recording_ = false;
    mutable std::mutex witnessMutex_;
    std::vector<std::shared_ptr<const replay::Witness>> witnesses_;
    std::unique_ptr<replay::ReplayCursor> replayCursor_;
};

} // namespace s2e::core

#endif // S2E_CORE_ENGINE_HH
