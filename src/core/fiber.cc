#include "core/fiber.hh"

#include <cstdint>

#include <sys/mman.h>
#include <unistd.h>

#include "support/logging.hh"

// --- Sanitizer fiber hooks ----------------------------------------------
// ASan has to move its fake-stack state along with the context and TSan
// models each fiber as a logical thread; without these annotations both
// report false positives the moment a fiber migrates across OS threads.
#if defined(__SANITIZE_ADDRESS__)
#define S2E_FIBER_ASAN 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define S2E_FIBER_ASAN 1
#endif
#endif
#if defined(__SANITIZE_THREAD__)
#define S2E_FIBER_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define S2E_FIBER_TSAN 1
#endif
#endif

#if defined(S2E_FIBER_ASAN)
#include <sanitizer/common_interface_defs.h>
#endif
#if defined(S2E_FIBER_TSAN)
#include <sanitizer/tsan_interface.h>
#endif

namespace s2e::core {

namespace {
thread_local Fiber *tl_currentFiber = nullptr;
} // namespace

#if defined(__x86_64__)

// Raw context switch: save the six callee-saved registers plus the
// stack pointer of the caller into *save_sp, install load_sp and pop
// the target's registers. Everything else is caller-saved — the
// compiler already spilled what it needs around the call. The ret at
// the end either returns into a previously parked switchOut()/resume()
// frame or, on a fiber's first run, "returns" into the trampoline the
// seeded frame points at.
extern "C" void s2e_fiber_switch(void **save_sp, void *load_sp);

asm(R"(
        .text
        .globl s2e_fiber_switch
        .type s2e_fiber_switch, @function
s2e_fiber_switch:
        endbr64
        pushq %rbp
        pushq %rbx
        pushq %r12
        pushq %r13
        pushq %r14
        pushq %r15
        movq %rsp, (%rdi)
        movq %rsi, %rsp
        popq %r15
        popq %r14
        popq %r13
        popq %r12
        popq %rbx
        popq %rbp
        ret
        .size s2e_fiber_switch, . - s2e_fiber_switch

        .globl s2e_fiber_trampoline
        .type s2e_fiber_trampoline, @function
s2e_fiber_trampoline:
        movq %r15, %rdi
        call s2e_fiber_entry
        ud2
        .size s2e_fiber_trampoline, . - s2e_fiber_trampoline
        .previous
)");

extern "C" void s2e_fiber_trampoline();

#endif // __x86_64__

// First C++ frames on a fiber stack; never return (runEntry loops
// around park for the fiber's whole life so the stack can be reused).
// fiberEntryThunk is the class friend; the extern "C" symbol is what
// the assembly trampoline (and the ucontext fallback) can name.
void
fiberEntryThunk(Fiber *fiber)
{
    fiber->runEntry(); // noreturn
}

extern "C" void
s2e_fiber_entry(Fiber *fiber)
{
    fiberEntryThunk(fiber);
}

Fiber::Fiber(size_t stack_bytes)
{
    long page = sysconf(_SC_PAGESIZE);
    S2E_ASSERT(page > 0, "sysconf(_SC_PAGESIZE) failed");
    size_t ps = static_cast<size_t>(page);
    stackBytes_ = ((stack_bytes + ps - 1) / ps) * ps;
    if (stackBytes_ < 4 * ps)
        stackBytes_ = 4 * ps;
    mapBytes_ = stackBytes_ + ps;
    void *base = mmap(nullptr, mapBytes_, PROT_READ | PROT_WRITE,
                      MAP_PRIVATE | MAP_ANONYMOUS | MAP_STACK, -1, 0);
    S2E_ASSERT(base != MAP_FAILED, "fiber stack mmap failed");
    // Guard page at the low end turns overflow into a clean fault.
    int rc = mprotect(base, ps, PROT_NONE);
    S2E_ASSERT(rc == 0, "fiber guard mprotect failed");
    mapBase_ = base;
    stackLow_ = static_cast<char *>(base) + ps;
#if defined(S2E_FIBER_TSAN)
    tsanFiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber()
{
    S2E_ASSERT(tl_currentFiber != this, "destroying the running fiber");
    S2E_ASSERT(!started_ || finished_,
               "destroying a parked fiber (its stack cannot unwind)");
#if defined(S2E_FIBER_TSAN)
    if (tsanFiber_)
        __tsan_destroy_fiber(tsanFiber_);
#endif
    if (mapBase_)
        munmap(mapBase_, mapBytes_);
}

void
Fiber::reset(std::function<void()> entry)
{
    S2E_ASSERT(!started_ || finished_, "reset of a live (parked) fiber");
    S2E_ASSERT(entry, "fiber needs an entry function");
    entry_ = std::move(entry);
    finished_ = false;
}

Fiber *
Fiber::current()
{
    return tl_currentFiber;
}

#if defined(__x86_64__)

void
Fiber::seedStack()
{
    // Frame the raw switch will consume on first resume: six register
    // slots (popped in r15..rbp order) and the trampoline as the
    // return address. r15 carries `this` into the trampoline, which
    // moves it to rdi and calls s2e_fiber_entry. Alignment: top is
    // 16-aligned; after the six pops rsp = top-8, the ret makes it
    // top, and the trampoline's call leaves rsp % 16 == 8 at
    // s2e_fiber_entry's first instruction — the standard post-call
    // alignment the ABI promises every function.
    uintptr_t top = reinterpret_cast<uintptr_t>(stackLow_) + stackBytes_;
    top &= ~static_cast<uintptr_t>(15);
    void **frame = reinterpret_cast<void **>(top) - 7;
    frame[0] = this; // r15
    frame[1] = nullptr;
    frame[2] = nullptr;
    frame[3] = nullptr;
    frame[4] = nullptr;
    frame[5] = nullptr;
    frame[6] = reinterpret_cast<void *>(&s2e_fiber_trampoline);
    fiberSp_ = frame;
    started_ = true;
}

#else // !__x86_64__

namespace {
/** makecontext only passes ints portably; hand the pointer over in a
 *  thread-local instead (resume() runs on the same thread that seeds). */
thread_local Fiber *tl_seedingFiber = nullptr;

extern "C" void
s2eFiberUcontextEntry()
{
    fiberEntryThunk(tl_seedingFiber);
}
} // namespace

void
Fiber::seedStack()
{
    getcontext(&fiberCtx_);
    fiberCtx_.uc_stack.ss_sp = stackLow_;
    fiberCtx_.uc_stack.ss_size = stackBytes_;
    fiberCtx_.uc_link = nullptr;
    tl_seedingFiber = this;
    makecontext(&fiberCtx_, reinterpret_cast<void (*)()>(
                                &s2eFiberUcontextEntry),
                0);
    started_ = true;
}

#endif // __x86_64__

bool
Fiber::resume()
{
    S2E_ASSERT(tl_currentFiber == nullptr,
               "resume from inside a fiber (nesting unsupported)");
    S2E_ASSERT(entry_ && !finished_, "resume without a pending entry");
    if (!started_)
        seedStack();
    tl_currentFiber = this;
#if defined(S2E_FIBER_TSAN)
    // Captured fresh every resume: the fiber switches back to
    // whichever thread is driving it *now*, not its first resumer.
    resumerTsan_ = __tsan_get_current_fiber();
#endif
#if defined(S2E_FIBER_ASAN)
    __sanitizer_start_switch_fiber(&schedFake_, stackLow_, stackBytes_);
#endif
#if defined(S2E_FIBER_TSAN)
    __tsan_switch_to_fiber(tsanFiber_, 0);
#endif
#if defined(__x86_64__)
    s2e_fiber_switch(&schedSp_, fiberSp_);
#else
    swapcontext(&schedCtx_, &fiberCtx_);
#endif
    // Back on the driving thread: the fiber parked or finished.
#if defined(S2E_FIBER_ASAN)
    __sanitizer_finish_switch_fiber(schedFake_, nullptr, nullptr);
#endif
    tl_currentFiber = nullptr;
    return !finished_;
}

void
Fiber::park()
{
    Fiber *f = tl_currentFiber;
    S2E_ASSERT(f, "park() outside any fiber");
    f->switchOut();
}

void
Fiber::switchOut()
{
#if defined(S2E_FIBER_ASAN)
    // The resumer's stack bounds were captured on arrival (below), so
    // this returns to the *current* driving thread's stack even after
    // a migration.
    __sanitizer_start_switch_fiber(&fiberFake_, resumerStackBottom_,
                                   resumerStackSize_);
#endif
#if defined(S2E_FIBER_TSAN)
    __tsan_switch_to_fiber(resumerTsan_, 0);
#endif
#if defined(__x86_64__)
    s2e_fiber_switch(&fiberSp_, schedSp_);
#else
    swapcontext(&fiberCtx_, &schedCtx_);
#endif
    // Resumed — possibly on a different OS thread than the one that
    // parked us. Re-capture where to switch back to.
#if defined(S2E_FIBER_ASAN)
    __sanitizer_finish_switch_fiber(fiberFake_, &resumerStackBottom_,
                                    &resumerStackSize_);
#endif
}

void
Fiber::runEntry()
{
#if defined(S2E_FIBER_ASAN)
    // First entry: null fake-stack (there is no previous fiber frame
    // to unpoison), and capture the resumer's stack for switchOut.
    __sanitizer_finish_switch_fiber(nullptr, &resumerStackBottom_,
                                    &resumerStackSize_);
#endif
    for (;;) {
        entry_();
        finished_ = true;
        // Park "forever": a pooled fiber is re-armed with reset() and
        // the next resume() continues this loop with the new entry.
        switchOut();
    }
}

} // namespace s2e::core
