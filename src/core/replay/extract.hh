#pragma once

/**
 * @file
 * Witness extraction: turn a terminated ExecutionState into a
 * complete concrete replay witness (core/replay/witness.hh).
 */

#include <memory>
#include <string>

#include "core/replay/witness.hh"

namespace s2e::expr {
class ExprBuilder;
}
namespace s2e::solver {
struct SolverOptions;
}

namespace s2e::core {

class ExecutionState;

namespace replay {

/** Outcome of extractWitness: a witness, or an error explaining why
 *  extraction failed (never a partial witness). */
struct ExtractResult {
    std::shared_ptr<const Witness> witness;
    std::string error;
};

/**
 * Extract a replay witness from a terminated state.
 *
 * Queries a *fresh* solver (model cache and incremental contexts
 * disabled, so the model depends only on the path constraints, never
 * on query history or worker schedule) for a satisfying assignment,
 * then completes it over every variable the path created: variables
 * the model misses — unconstrained inputs, or variables simplified
 * away during bit-blasting — are pinned by explicit value queries
 * under the model-augmented constraints, never defaulted to zero.
 * The completed assignment is validated by concretely evaluating
 * every path constraint; any violation fails the extraction.
 */
ExtractResult extractWitness(const ExecutionState &state,
                             expr::ExprBuilder &builder,
                             const solver::SolverOptions &baseOptions);

} // namespace replay
} // namespace s2e::core
