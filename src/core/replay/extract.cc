#include "core/replay/extract.hh"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "core/state.hh"
#include "expr/builder.hh"
#include "expr/eval.hh"
#include "solver/solver.hh"
#include "support/logging.hh"

namespace s2e::core::replay {

namespace {

/** Collect the variables appearing in an expression. */
void
collectVars(ExprRef e, std::vector<ExprRef> &vars,
            std::unordered_set<ExprRef> &seen)
{
    if (!seen.insert(e).second)
        return;
    if (e->isVariable()) {
        vars.push_back(e);
        return;
    }
    for (unsigned i = 0; i < e->arity(); ++i)
        collectVars(e->kid(i), vars, seen);
}

/** Bit width of the variables a site kind creates. */
unsigned
varWidth(SiteKind kind)
{
    return kind == SiteKind::SymMem ? 8 : 32;
}

} // namespace

ExtractResult
extractWitness(const ExecutionState &state, expr::ExprBuilder &builder,
               const solver::SolverOptions &baseOptions)
{
    ExtractResult out;

    // Every variable the path created, in creation order, from the
    // nondeterminism log (name -> width; names are unique).
    std::map<std::string, unsigned> created; // sorted by name
    for (const auto &ev : state.replayLog.events) {
        for (const auto &name : ev.vars)
            created.emplace(name, varWidth(ev.kind));
    }

    // Any constraint variable outside the creation record means a
    // nondeterminism site went unrecorded — refuse to emit a witness
    // that could not drive a faithful replay.
    std::unordered_set<uint64_t> created_ids;
    for (const auto &[name, width] : created)
        created_ids.insert(builder.var(name, width)->varId());
    {
        std::vector<ExprRef> used;
        std::unordered_set<ExprRef> seen;
        for (const auto &c : state.constraints)
            collectVars(c, used, seen);
        for (const ExprRef &v : used) {
            if (!created_ids.count(v->varId())) {
                out.error = "constraint variable '" + v->name() +
                            "' missing from nondeterminism log";
                return out;
            }
        }
    }

    // Fresh deterministic solver: no model cache (answers would
    // depend on query history), no incremental context reuse.
    solver::SolverOptions opts = baseOptions;
    opts.useModelCache = false;
    opts.useIncremental = false;
    solver::Solver solver(builder, opts);

    expr::Assignment model;
    if (!state.constraints.empty()) {
        auto q = solver.getInitialValues(state.constraints, &model);
        if (!q.isSat()) {
            out.error = q.isUnsat()
                            ? "path constraints unsatisfiable"
                            : "solver gave up on model extraction";
            return out;
        }
    }

    // Complete the model over every created variable. Holes (inputs
    // the program never constrained, or variables the bit-blaster
    // simplified away) are pinned one by one under the accumulated
    // assignment so the completion stays globally consistent.
    std::vector<ExprRef> pinned = state.constraints;
    expr::Assignment full;
    for (const auto &[name, width] : created) {
        ExprRef var = builder.var(name, width);
        if (model.has(var->varId())) {
            uint64_t v = model.lookup(var->varId());
            full.setById(var->varId(), v);
            pinned.push_back(builder.eq(var, builder.constant(v, width)));
            continue;
        }
        uint64_t v = 0;
        auto q = solver.getValue(pinned, var, &v);
        if (!q.isSat()) {
            out.error = "hole repair failed for variable " + name;
            return out;
        }
        full.setById(var->varId(), v);
        pinned.push_back(builder.eq(var, builder.constant(v, width)));
    }

    // Semantic validation: the completed assignment must satisfy the
    // entire path — this is what rules out default-zero holes.
    for (const auto &c : state.constraints) {
        if (!expr::evaluateBool(c, full)) {
            out.error = "completed assignment violates a path constraint";
            return out;
        }
    }

    auto w = std::make_shared<Witness>();
    w->pathId = state.pathId();
    w->terminalStatus = static_cast<uint8_t>(state.status);
    w->terminalPc = state.cpu.pc;
    w->exitCode = state.exitCode;
    w->terminalInstr = state.instrCount;
    w->terminalBlocks = state.blockCount;
    w->events = state.replayLog.events;
    w->inputs.reserve(created.size());
    for (const auto &[name, width] : created) {
        WitnessInput in;
        in.name = name;
        in.width = static_cast<uint8_t>(width);
        in.value = full.lookup(builder.var(name, width)->varId());
        w->inputs.push_back(std::move(in));
    }
    out.witness = std::move(w);
    return out;
}

} // namespace s2e::core::replay
