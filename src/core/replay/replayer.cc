#include "core/replay/replayer.hh"

#include "support/logging.hh"

namespace s2e::core::replay {

namespace {

const char *
siteKindName(SiteKind kind)
{
    switch (kind) {
    case SiteKind::SymReg:
        return "SymReg";
    case SiteKind::SymMem:
        return "SymMem";
    case SiteKind::PortRead:
        return "PortRead";
    case SiteKind::MmioRead:
        return "MmioRead";
    case SiteKind::Branch:
        return "Branch";
    case SiteKind::Interrupt:
        return "Interrupt";
    case SiteKind::ApiFork:
        return "ApiFork";
    }
    return "?";
}

} // namespace

ReplayCursor::ReplayCursor(std::shared_ptr<const Witness> witness)
    : witness_(std::move(witness))
{
    S2E_ASSERT(witness_, "ReplayCursor without a witness");
}

std::string
ReplayCursor::describe(const NondetEvent &ev) const
{
    return strprintf("%s@instr=%llu pc=0x%x a=0x%x b=0x%x",
                     siteKindName(ev.kind),
                     static_cast<unsigned long long>(ev.instr), ev.pc,
                     ev.a, ev.b);
}

void
ReplayCursor::diverge(std::string what)
{
    if (diverged_)
        return;
    diverged_ = true;
    divergence_ = strprintf("site %zu: %s", next_, what.c_str());
}

void
ReplayCursor::forceDiverge(const std::string &what)
{
    diverge(what);
}

const NondetEvent *
ReplayCursor::expect(SiteKind kind, uint64_t instr, uint32_t pc,
                     uint32_t a, uint32_t b)
{
    if (diverged_)
        return nullptr;
    if (next_ >= witness_->events.size()) {
        diverge(strprintf("extra %s site at instr=%llu pc=0x%x — "
                          "witness log exhausted",
                          siteKindName(kind),
                          static_cast<unsigned long long>(instr), pc));
        return nullptr;
    }
    const NondetEvent &ev = witness_->events[next_];
    if (ev.kind != kind || ev.instr != instr || ev.pc != pc ||
        ev.a != a || ev.b != b) {
        diverge(strprintf(
            "expected %s, execution reached %s@instr=%llu pc=0x%x "
            "a=0x%x b=0x%x",
            describe(ev).c_str(), siteKindName(kind),
            static_cast<unsigned long long>(instr), pc, a, b));
        return nullptr;
    }
    ++next_;
    return &ev;
}

const NondetEvent *
ReplayCursor::expectApiFork(uint64_t instr, uint32_t pc)
{
    if (diverged_)
        return nullptr;
    if (next_ >= witness_->events.size()) {
        diverge(strprintf("extra ApiFork site at instr=%llu pc=0x%x — "
                          "witness log exhausted",
                          static_cast<unsigned long long>(instr), pc));
        return nullptr;
    }
    const NondetEvent &ev = witness_->events[next_];
    if (ev.kind != SiteKind::ApiFork || ev.instr != instr ||
        ev.pc != pc) {
        diverge(strprintf("expected %s, execution reached "
                          "ApiFork@instr=%llu pc=0x%x",
                          describe(ev).c_str(),
                          static_cast<unsigned long long>(instr), pc));
        return nullptr;
    }
    ++next_;
    return &ev;
}

bool
ReplayCursor::checkBranch(uint64_t instr, uint32_t branch_pc,
                          uint32_t chosen)
{
    if (diverged_)
        return false;
    if (next_ >= witness_->events.size())
        return true; // past the last recorded site; overrun check rules
    const NondetEvent &ev = witness_->events[next_];
    if (ev.kind == SiteKind::Branch && ev.instr == instr &&
        ev.pc == branch_pc) {
        if (ev.a != chosen) {
            diverge(strprintf("branch at instr=%llu pc=0x%x went to "
                              "0x%x, witness recorded 0x%x",
                              static_cast<unsigned long long>(instr),
                              branch_pc, chosen, ev.a));
            return false;
        }
        ++next_;
        return true;
    }
    if (ev.instr < instr) {
        diverge(strprintf("recorded site %s never occurred "
                          "(execution already at instr=%llu pc=0x%x)",
                          describe(ev).c_str(),
                          static_cast<unsigned long long>(instr),
                          branch_pc));
        return false;
    }
    return true; // branch that was concrete in the original run too
}

bool
ReplayCursor::checkOverrun(uint64_t instr)
{
    if (diverged_)
        return false;
    if (instr <= witness_->terminalInstr)
        return false;
    diverge(strprintf("execution ran past the recorded terminal "
                      "(instr=%llu > recorded %llu)",
                      static_cast<unsigned long long>(instr),
                      static_cast<unsigned long long>(
                          witness_->terminalInstr)));
    return true;
}

bool
ReplayCursor::inputValue(const std::string &name, uint64_t *value) const
{
    const WitnessInput *in = witness_->find(name);
    if (!in)
        return false;
    *value = in->value;
    return true;
}

ReplayResult
replayVerdict(Engine &engine)
{
    ReplayResult r;
    ReplayCursor *cur = engine.replayCursor();
    S2E_ASSERT(cur, "replayVerdict on an engine not in replay mode");
    const Witness &w = cur->witness();
    r.solverQueries = engine.solver().queryCount();

    ExecutionState *leaf = cur->leaf();
    if (leaf) {
        r.terminalStatus = static_cast<uint8_t>(leaf->status);
        r.terminalPc = leaf->cpu.pc;
        r.terminalInstr = leaf->instrCount;
    }

    if (cur->diverged()) {
        r.divergence = cur->divergence();
        return r;
    }
    if (!leaf) {
        r.divergence = "replay produced no path";
        return r;
    }
    if (!cur->allConsumed()) {
        r.divergence = strprintf(
            "path terminated early: %zu of %zu nondeterminism sites "
            "replayed",
            cur->consumed(), w.events.size());
        return r;
    }
    if (static_cast<uint8_t>(leaf->status) != w.terminalStatus) {
        r.divergence = strprintf(
            "terminal status %s, witness recorded %s",
            stateStatusName(leaf->status),
            stateStatusName(static_cast<StateStatus>(w.terminalStatus)));
        return r;
    }
    if (leaf->cpu.pc != w.terminalPc) {
        r.divergence =
            strprintf("terminal pc 0x%x, witness recorded 0x%x",
                      leaf->cpu.pc, w.terminalPc);
        return r;
    }
    if (leaf->instrCount != w.terminalInstr) {
        r.divergence = strprintf(
            "terminal instruction count %llu, witness recorded %llu",
            static_cast<unsigned long long>(leaf->instrCount),
            static_cast<unsigned long long>(w.terminalInstr));
        return r;
    }
    if (leaf->exitCode != w.exitCode) {
        r.divergence =
            strprintf("exit code %u, witness recorded %u",
                      leaf->exitCode, w.exitCode);
        return r;
    }
    r.ok = true;
    return r;
}

ReplayEngine::ReplayEngine(vm::MachineConfig machine, EngineConfig config,
                           std::shared_ptr<const Witness> witness)
{
    config.replayWitness = std::move(witness);
    engine_ = std::make_unique<Engine>(std::move(machine),
                                       std::move(config));
}

ReplayResult
ReplayEngine::run()
{
    RunResult run = engine_->run();
    ReplayResult r = replayVerdict(*engine_);
    r.instructions = run.totalInstructions;
    r.wallSeconds = run.wallSeconds;
    return r;
}

} // namespace s2e::core::replay
