#include "core/replay/witness.hh"

#include <algorithm>

#include "core/lifecycle/wire.hh"

namespace s2e::core::replay {

namespace {

using lifecycle::wire::Reader;
using lifecycle::wire::Writer;

constexpr char kMagic[8] = {'S', '2', 'E', 'W', 'T', 'N', 'E', 'S'};

} // namespace

const WitnessInput *
Witness::find(const std::string &name) const
{
    // inputs is sorted by name (serializeWitness/extractWitness keep
    // the invariant; parseWitness rejects unsorted images).
    auto it = std::lower_bound(inputs.begin(), inputs.end(), name,
                               [](const WitnessInput &in,
                                  const std::string &n) {
                                   return in.name < n;
                               });
    if (it == inputs.end() || it->name != name)
        return nullptr;
    return &*it;
}

std::vector<uint8_t>
serializeWitness(const Witness &w)
{
    Writer p;
    p.str(w.pathId);
    p.u8(w.terminalStatus);
    p.u32(w.terminalPc);
    p.u32(w.exitCode);
    p.u64(w.terminalInstr);
    p.u64(w.terminalBlocks);
    p.u32(static_cast<uint32_t>(w.inputs.size()));
    for (const auto &in : w.inputs) {
        p.str(in.name);
        p.u8(in.width);
        p.u64(in.value);
    }
    p.u32(static_cast<uint32_t>(w.events.size()));
    for (const auto &ev : w.events) {
        p.u8(static_cast<uint8_t>(ev.kind));
        p.u64(ev.instr);
        p.u32(ev.pc);
        p.u32(ev.a);
        p.u32(ev.b);
        p.u32(static_cast<uint32_t>(ev.vars.size()));
        for (const auto &name : ev.vars)
            p.str(name);
    }
    return lifecycle::wire::sealImage(kMagic, kWitnessFormatVersion, p);
}

bool
validateWitnessImage(const std::vector<uint8_t> &image, std::string *error)
{
    return lifecycle::wire::checkImage(kMagic, kWitnessFormatVersion,
                                       image, error);
}

bool
parseWitness(const std::vector<uint8_t> &image, Witness &out,
             std::string *error)
{
    auto fail = [&](const char *why) {
        if (error)
            *error = why;
        return false;
    };
    if (!validateWitnessImage(image, error))
        return false;

    // Decode into a scratch witness; out is only assigned at the end.
    Witness w;
    Reader r(image.data() + lifecycle::wire::kHeaderSize,
             image.size() - lifecycle::wire::kHeaderSize);
    w.pathId = r.str();
    w.terminalStatus = r.u8();
    w.terminalPc = r.u32();
    w.exitCode = r.u32();
    w.terminalInstr = r.u64();
    w.terminalBlocks = r.u64();

    uint32_t input_count = r.u32();
    if (input_count > r.size / 13) // minimum input record size
        return fail("implausible input count");
    w.inputs.reserve(input_count);
    for (uint32_t i = 0; i < input_count && r.ok; ++i) {
        WitnessInput in;
        in.name = r.str();
        in.width = r.u8();
        in.value = r.u64();
        if (in.width != 8 && in.width != 16 && in.width != 32 &&
            in.width != 64)
            return fail("bad input width");
        if (!w.inputs.empty() && !(w.inputs.back().name < in.name))
            return fail("inputs not sorted by name");
        w.inputs.push_back(std::move(in));
    }

    uint32_t event_count = r.u32();
    if (event_count > r.size / 21) // minimum event record size
        return fail("implausible event count");
    w.events.reserve(event_count);
    for (uint32_t i = 0; i < event_count && r.ok; ++i) {
        NondetEvent ev;
        uint8_t kind = r.u8();
        if (kind >= kSiteKindCount)
            return fail("bad event kind");
        ev.kind = static_cast<SiteKind>(kind);
        ev.instr = r.u64();
        ev.pc = r.u32();
        ev.a = r.u32();
        ev.b = r.u32();
        uint32_t var_count = r.u32();
        if (var_count > r.size / 4)
            return fail("implausible variable count");
        ev.vars.reserve(var_count);
        for (uint32_t j = 0; j < var_count && r.ok; ++j) {
            std::string name = r.str();
            if (name.empty())
                return fail("empty variable name");
            if (!w.find(name) && r.ok)
                return fail("event variable missing from assignment");
            ev.vars.push_back(std::move(name));
        }
        w.events.push_back(std::move(ev));
    }
    if (!r.ok)
        return fail("truncated payload");
    if (r.off != r.size)
        return fail("trailing bytes after payload");

    out = std::move(w);
    return true;
}

} // namespace s2e::core::replay
