#pragma once

/**
 * @file
 * Concrete witness replay.
 *
 * ReplayCursor is the engine-side driver of replay mode: a single
 * ordered cursor over the witness event log. Each nondeterminism site
 * the replayed execution reaches must match the next recorded event
 * (kind, instruction-count stamp, pc and operands) — substitution
 * sites (symbolic inputs, port/MMIO reads) then install the recorded
 * concrete value instead of creating a symbolic variable, and check
 * sites (branch outcomes, interrupt deliveries, plugin forks) verify
 * the execution takes the recorded direction. The first mismatch
 * latches a divergence report; later sites never overwrite it.
 *
 * ReplayEngine wraps an Engine configured for replay (serial, solver
 * disconnected) and turns the run into a ReplayResult verdict.
 */

#include <memory>
#include <string>

#include "core/engine.hh"
#include "core/replay/witness.hh"

namespace s2e::core::replay {

/** Engine-side replay driver; one per replay-mode Engine. */
class ReplayCursor
{
  public:
    explicit ReplayCursor(std::shared_ptr<const Witness> witness);

    const Witness &witness() const { return *witness_; }

    /**
     * Consume the next event, which must match (kind, instr, pc, a, b)
     * exactly. Returns the event, or null after latching a divergence.
     */
    const NondetEvent *expect(SiteKind kind, uint64_t instr, uint32_t pc,
                              uint32_t a, uint32_t b);

    /** Consume the next event as an ApiFork at (instr, pc); the
     *  recorded role is the caller's output, not an input. */
    const NondetEvent *expectApiFork(uint64_t instr, uint32_t pc);

    /**
     * Check a concrete branch resolution against the log. Consumes the
     * next event only when it is a Branch stamped at exactly this
     * (instr, branch_pc) — other concrete branches were concrete in
     * the original run too and are not logged. Returns false after
     * latching a divergence (wrong direction, or a pending recorded
     * site whose stamp this execution has already passed).
     */
    bool checkBranch(uint64_t instr, uint32_t branch_pc, uint32_t chosen);

    /** Detect running past the recorded terminal instruction count.
     *  Returns true (and latches a divergence) on overrun. */
    bool checkOverrun(uint64_t instr);

    /** Concrete value of a recorded input variable. */
    bool inputValue(const std::string &name, uint64_t *value) const;

    /** Latch a divergence discovered by the engine itself (e.g. a
     *  symbolic value surviving into replay). */
    void forceDiverge(const std::string &what);

    bool diverged() const { return diverged_; }
    /** First-mismatch report; empty until a divergence latches. */
    const std::string &divergence() const { return divergence_; }

    size_t consumed() const { return next_; }
    bool allConsumed() const
    {
        return next_ == witness_->events.size();
    }

    /** The state currently representing the witness path (follows the
     *  child across ApiFork re-forks). */
    ExecutionState *leaf() const { return leaf_; }
    void setLeaf(ExecutionState *state) { leaf_ = state; }

  private:
    void diverge(std::string what);
    std::string describe(const NondetEvent &ev) const;

    std::shared_ptr<const Witness> witness_;
    size_t next_ = 0;
    bool diverged_ = false;
    std::string divergence_;
    ExecutionState *leaf_ = nullptr;
};

/** Verdict of one witness replay. */
struct ReplayResult {
    /** Replay reached the recorded terminal (status, pc, instruction
     *  count, exit code) with every nondeterminism site matched. */
    bool ok = false;
    /** First-mismatch report when !ok. */
    std::string divergence;
    uint8_t terminalStatus = 0;
    uint32_t terminalPc = 0;
    uint64_t terminalInstr = 0;
    /** Engine-solver queries issued during the replay (0 for a
     *  well-formed replay: the solver is structurally disconnected). */
    uint64_t solverQueries = 0;
    /** Instructions replayed and wall time (replay_instr_per_sec). */
    uint64_t instructions = 0;
    double wallSeconds = 0;

    double
    instrPerSec() const
    {
        return wallSeconds > 0 ? static_cast<double>(instructions) /
                                     wallSeconds
                               : 0.0;
    }
};

/**
 * Post-run verdict for an engine that ran in replay mode: first
 * divergence if any, else unconsumed-events / terminal-outcome
 * checks against the witness. Fills everything except instructions
 * and wallSeconds (the caller has the RunResult).
 */
ReplayResult replayVerdict(Engine &engine);

/**
 * A full replay harness around one Engine in replay mode. Build it,
 * re-apply the workload's setup calls (makeMemSymbolic etc. — replay
 * consumes them as substitution events) and plugins on engine(), then
 * run(). The engine is forced serial with witness emission off; a
 * bare replay issues zero solver queries.
 */
class ReplayEngine
{
  public:
    ReplayEngine(vm::MachineConfig machine, EngineConfig config,
                 std::shared_ptr<const Witness> witness);

    Engine &engine() { return *engine_; }

    /** Execute the replay and return the verdict. */
    ReplayResult run();

  private:
    std::unique_ptr<Engine> engine_;
};

} // namespace s2e::core::replay
