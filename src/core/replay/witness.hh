#pragma once

/**
 * @file
 * Concrete replay witnesses (`s2e.witness.v1`).
 *
 * A witness captures everything needed to re-execute one terminated
 * path purely concretely, with the solver disconnected:
 *
 *  - a full concrete input assignment — one value per symbolic
 *    variable the path ever created, extracted from a solver model of
 *    the path constraints with every hole repaired (no default-zero
 *    values);
 *  - the ordered nondeterminism log — symbolic input injection sites,
 *    symbolic device/port/MMIO reads, fork-decision outcomes and
 *    interrupt delivery points, each stamped with the state's
 *    instruction count and pc;
 *  - the terminal outcome (status, pc, exit code, instruction and
 *    block counts) the replay must reproduce.
 *
 * Images follow the PR 6 serializer conventions: 8-byte magic +
 * 32-byte header with version and FNV-1a payload checksum
 * (core/lifecycle/wire.hh), validate-before-apply parsing.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace s2e::core::replay {

/** Kind of nondeterminism site recorded in the witness event log. */
enum class SiteKind : uint8_t {
    SymReg = 0,   ///< makeRegSymbolic: a = register index
    SymMem = 1,   ///< makeMemSymbolic: a = address, b = length
    PortRead = 2, ///< symbolic I/O port read: a = port
    MmioRead = 3, ///< symbolic MMIO read: a = address
    Branch = 4,   ///< symbolic branch outcome: a = chosen next pc
    Interrupt = 5, ///< interrupt delivery: a = irq, pc = return pc
    ApiFork = 6,  ///< plugin forkState(): a = role (0 parent, 1 child)
};

constexpr uint8_t kSiteKindCount = 7;

/** One nondeterminism event, stamped with the state's position. */
struct NondetEvent {
    SiteKind kind = SiteKind::SymReg;
    uint64_t instr = 0; ///< state.instrCount at the site
    uint32_t pc = 0;    ///< state pc at the site (branch pc for Branch)
    uint32_t a = 0;     ///< kind-specific operand (see SiteKind)
    uint32_t b = 0;     ///< kind-specific operand (SymMem length)
    /** Names of variables created at this site (per byte for SymMem;
     *  empty for Branch/Interrupt/ApiFork). Values live in the
     *  witness input assignment, keyed by name. */
    std::vector<std::string> vars;

    bool
    operator==(const NondetEvent &o) const
    {
        return kind == o.kind && instr == o.instr && pc == o.pc &&
               a == o.a && b == o.b && vars == o.vars;
    }
};

/** Per-path recording of nondeterminism events; lives on the
 *  ExecutionState and is copied to children on fork. */
struct PathRecord {
    std::vector<NondetEvent> events;
};

/** One entry of the concrete input assignment. */
struct WitnessInput {
    std::string name; ///< schedule-independent variable name
    uint8_t width = 0;
    uint64_t value = 0;

    bool
    operator==(const WitnessInput &o) const
    {
        return name == o.name && width == o.width && value == o.value;
    }
};

/** A complete replay witness for one terminated path. */
struct Witness {
    std::string pathId;
    uint8_t terminalStatus = 0; ///< StateStatus of the original path
    uint32_t terminalPc = 0;
    uint32_t exitCode = 0;
    uint64_t terminalInstr = 0;
    uint64_t terminalBlocks = 0;
    /** Full concrete assignment, sorted by variable name. */
    std::vector<WitnessInput> inputs;
    /** Ordered nondeterminism log of the path. */
    std::vector<NondetEvent> events;

    /** Look up an input value by variable name. */
    const WitnessInput *find(const std::string &name) const;

    bool
    operator==(const Witness &o) const
    {
        return pathId == o.pathId && terminalStatus == o.terminalStatus &&
               terminalPc == o.terminalPc && exitCode == o.exitCode &&
               terminalInstr == o.terminalInstr &&
               terminalBlocks == o.terminalBlocks && inputs == o.inputs &&
               events == o.events;
    }
};

/** Version written into the image header. */
constexpr uint32_t kWitnessFormatVersion = 1;

/** Serialize a witness into an s2e.witness.v1 image. Deterministic:
 *  the same witness always yields the same bytes. */
std::vector<uint8_t> serializeWitness(const Witness &w);

/** Header-level validation (magic, version, size, checksum). */
bool validateWitnessImage(const std::vector<uint8_t> &image,
                          std::string *error = nullptr);

/** Parse an image. The whole image is validated and decoded before
 *  *out is touched; on failure *out is left unmodified. */
bool parseWitness(const std::vector<uint8_t> &image, Witness &out,
                  std::string *error = nullptr);

} // namespace s2e::core::replay
