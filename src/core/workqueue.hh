/**
 * @file
 * Work-stealing scheduler queue for parallel multi-path exploration.
 *
 * Each worker owns a deque shard: it pushes and pops ready states at
 * the back (depth-first, cache-warm), while idle workers steal from
 * the front of other shards (breadth-first, stealing the states
 * closest to the fork-tree root and hence the largest subtrees —
 * the classic Cilk-style split).
 *
 * Ownership protocol: a state is either queued here or being executed
 * by exactly one worker; only that worker may touch the state's
 * mutable fields. The shard mutexes double as the release/acquire
 * edge that publishes all writes the previous owner made.
 *
 * Termination: `pending` counts states that are queued or held by a
 * worker. take() returns nullptr only when pending reaches zero, i.e.
 * every path has finished — an empty shard alone means nothing while
 * another worker still runs a state that may fork.
 */

#ifndef S2E_CORE_WORKQUEUE_HH
#define S2E_CORE_WORKQUEUE_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <vector>

#include "support/logging.hh"

namespace s2e::core {

class ExecutionState;

class WorkQueue
{
  public:
    explicit WorkQueue(unsigned workers) : shards_(workers)
    {
        S2E_ASSERT(workers >= 1, "work queue needs at least one shard");
    }

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /** Schedule a state the queue has not seen before (initial states
     *  and fork children). Safe from any worker. */
    void
    add(unsigned worker, ExecutionState *state)
    {
        pending_.fetch_add(1, std::memory_order_relaxed);
        pushBack(worker, state);
    }

    /** Re-queue a still-active state after a timeslice. */
    void
    put(unsigned worker, ExecutionState *state)
    {
        pushBack(worker, state);
    }

    /** A state previously returned by take() finished for good. */
    void
    finish()
    {
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(waitMu_);
            cv_.notify_all();
        }
    }

    /**
     * Dequeue the next state for `worker`: its own shard first, then
     * steal. Blocks while other workers still hold states; returns
     * nullptr once every path has finished.
     */
    ExecutionState *
    take(unsigned worker)
    {
        while (true) {
            if (ExecutionState *s = popBack(worker))
                return s;
            for (size_t i = 1; i < shards_.size(); ++i) {
                unsigned victim =
                    (worker + i) % static_cast<unsigned>(shards_.size());
                if (ExecutionState *s = stealFront(victim))
                    return s;
            }
            if (pending_.load(std::memory_order_acquire) == 0)
                return nullptr;
            // Another worker holds the remaining states; they may fork
            // or finish any moment. The timeout bounds the window for
            // a push we raced with.
            std::unique_lock<std::mutex> lock(waitMu_);
            cv_.wait_for(lock, std::chrono::milliseconds(1));
        }
    }

    /** States currently queued or held by workers. */
    size_t
    pending() const
    {
        return pending_.load(std::memory_order_acquire);
    }

  private:
    struct Shard {
        std::mutex mu;
        std::deque<ExecutionState *> q;
    };

    void
    pushBack(unsigned worker, ExecutionState *state)
    {
        Shard &shard = shards_[worker % shards_.size()];
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.q.push_back(state);
        }
        std::lock_guard<std::mutex> lock(waitMu_);
        cv_.notify_one();
    }

    ExecutionState *
    popBack(unsigned worker)
    {
        Shard &shard = shards_[worker % shards_.size()];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.q.empty())
            return nullptr;
        ExecutionState *s = shard.q.back();
        shard.q.pop_back();
        return s;
    }

    ExecutionState *
    stealFront(unsigned victim)
    {
        Shard &shard = shards_[victim];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.q.empty())
            return nullptr;
        ExecutionState *s = shard.q.front();
        shard.q.pop_front();
        return s;
    }

    // std::deque constructs shards in place; Shard itself is immovable
    // (it holds a mutex).
    std::deque<Shard> shards_;
    std::atomic<size_t> pending_{0};
    std::mutex waitMu_;
    std::condition_variable cv_;
};

} // namespace s2e::core

#endif // S2E_CORE_WORKQUEUE_HH
