/**
 * @file
 * Work-stealing scheduler queue for parallel multi-path exploration.
 *
 * Each worker owns a deque shard: it pushes and pops ready states at
 * the back (depth-first, cache-warm), while idle workers steal from
 * the front of other shards (breadth-first, stealing the states
 * closest to the fork-tree root and hence the largest subtrees —
 * the classic Cilk-style split).
 *
 * Ownership protocol: a state is either queued here or being executed
 * by exactly one worker; only that worker may touch the state's
 * mutable fields. The shard mutexes double as the release/acquire
 * edge that publishes all writes the previous owner made. (With the
 * fiber scheduler a suspended state counts as "held": the worker that
 * parked it hands it to the solver service, which put()s it back —
 * the SPSC ring and the shard mutex form the same publication chain.)
 *
 * Termination: `pending` counts states that are queued or held by a
 * worker. take() returns nullptr only when pending reaches zero, i.e.
 * every path has finished — an empty shard alone means nothing while
 * another worker still runs a state that may fork.
 *
 * Idle waiting is epoch/predicate based: a waiter snapshots the push
 * epoch *before* scanning the shards, so any push it could have missed
 * either landed before the snapshot (the scan finds it — the push
 * writes the shard before bumping the epoch) or after (the epoch
 * moved and the predicate refuses to sleep). Blocked workers
 * genuinely sleep — no timed polling — which is what lets a worker
 * whose states are all parked in the solver service idle for free.
 * Pushes take the wait mutex only when a sleeper exists (seq_cst
 * fences on the epoch bump and the waiter count close the classic
 * flag/flag race), so the hot fork path is two uncontended atomics
 * past the shard lock.
 */

#ifndef S2E_CORE_WORKQUEUE_HH
#define S2E_CORE_WORKQUEUE_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>

#include "support/logging.hh"

namespace s2e::core {

class ExecutionState;

class WorkQueue
{
  public:
    explicit WorkQueue(unsigned workers) : shards_(workers)
    {
        S2E_ASSERT(workers >= 1, "work queue needs at least one shard");
    }

    WorkQueue(const WorkQueue &) = delete;
    WorkQueue &operator=(const WorkQueue &) = delete;

    /** Schedule a state the queue has not seen before (initial states
     *  and fork children). Safe from any worker. */
    void
    add(unsigned worker, ExecutionState *state)
    {
        pending_.fetch_add(1, std::memory_order_relaxed);
        pushBack(worker, state);
    }

    /** Re-queue a still-active state after a timeslice (also how the
     *  solver service hands a resumed state back). */
    void
    put(unsigned worker, ExecutionState *state)
    {
        pushBack(worker, state);
    }

    /** A state previously returned by take() finished for good. */
    void
    finish()
    {
        if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            // Everyone must wake to observe termination.
            std::lock_guard<std::mutex> lock(waitMu_);
            cv_.notify_all();
        }
    }

    /**
     * Dequeue the next state for `worker`: its own shard first, then
     * steal. Sleeps while other workers hold the remaining states;
     * returns nullptr once every path has finished.
     */
    ExecutionState *
    take(unsigned worker)
    {
        while (true) {
            // Epoch before scan: a push that beats the scan is found
            // in its shard; one that loses bumps the epoch and the
            // wait predicate below refuses to sleep. seq_cst pairs
            // with the pusher's epoch-bump/waiter-check ordering.
            uint64_t seen = pushEpoch_.load(std::memory_order_seq_cst);
            if (ExecutionState *s = popBack(worker))
                return s;
            for (size_t i = 1; i < shards_.size(); ++i) {
                unsigned victim =
                    (worker + i) % static_cast<unsigned>(shards_.size());
                if (ExecutionState *s = stealFront(victim))
                    return s;
            }
            if (pending_.load(std::memory_order_acquire) == 0)
                return nullptr;
            std::unique_lock<std::mutex> lock(waitMu_);
            waiters_.fetch_add(1, std::memory_order_seq_cst);
            waitStats_.sleeps.fetch_add(1, std::memory_order_relaxed);
            cv_.wait(lock, [&] {
                return pushEpoch_.load(std::memory_order_relaxed) !=
                           seen ||
                       pending_.load(std::memory_order_relaxed) == 0;
            });
            waiters_.fetch_sub(1, std::memory_order_relaxed);
            lock.unlock();
            waitStats_.wakeups.fetch_add(1, std::memory_order_relaxed);
        }
    }

    /** States currently queued or held by workers. */
    size_t
    pending() const
    {
        return pending_.load(std::memory_order_acquire);
    }

    /** Idle-wait introspection (tests and the wakeup stress bench). */
    struct WaitStats {
        /** Times a worker went to sleep in take(). */
        std::atomic<uint64_t> sleeps{0};
        /** Times a sleeping worker was woken (predicate satisfied). */
        std::atomic<uint64_t> wakeups{0};
        /** Pushes that found a sleeper and paid for a notify. */
        std::atomic<uint64_t> notifies{0};
        /** Pushes that skipped the wait mutex (no sleeper). */
        std::atomic<uint64_t> notifySkips{0};
    };
    const WaitStats &waitStats() const { return waitStats_; }

  private:
    struct Shard {
        std::mutex mu;
        std::deque<ExecutionState *> q;
    };

    void
    pushBack(unsigned worker, ExecutionState *state)
    {
        Shard &shard = shards_[worker % shards_.size()];
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            shard.q.push_back(state);
        }
        // Publish the push to the wait predicate *before* checking for
        // sleepers; take() registers as a waiter before re-reading the
        // epoch. Both sides seq_cst: one of them must see the other.
        pushEpoch_.fetch_add(1, std::memory_order_seq_cst);
        if (waiters_.load(std::memory_order_seq_cst) > 0) {
            waitStats_.notifies.fetch_add(1, std::memory_order_relaxed);
            std::lock_guard<std::mutex> lock(waitMu_);
            cv_.notify_one();
        } else {
            waitStats_.notifySkips.fetch_add(1,
                                             std::memory_order_relaxed);
        }
    }

    ExecutionState *
    popBack(unsigned worker)
    {
        Shard &shard = shards_[worker % shards_.size()];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.q.empty())
            return nullptr;
        ExecutionState *s = shard.q.back();
        shard.q.pop_back();
        return s;
    }

    ExecutionState *
    stealFront(unsigned victim)
    {
        Shard &shard = shards_[victim];
        std::lock_guard<std::mutex> lock(shard.mu);
        if (shard.q.empty())
            return nullptr;
        ExecutionState *s = shard.q.front();
        shard.q.pop_front();
        return s;
    }

    // std::deque constructs shards in place; Shard itself is immovable
    // (it holds a mutex).
    std::deque<Shard> shards_;
    std::atomic<size_t> pending_{0};
    /** Bumped after every push; the waiters' sleep predicate. */
    std::atomic<uint64_t> pushEpoch_{0};
    /** Workers currently inside the cv wait (or registering for it). */
    std::atomic<uint32_t> waiters_{0};
    std::mutex waitMu_;
    std::condition_variable cv_;
    WaitStats waitStats_;
};

} // namespace s2e::core

#endif // S2E_CORE_WORKQUEUE_HH
