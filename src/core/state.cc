#include "core/state.hh"

namespace s2e::core {

const char *
stateStatusName(StateStatus status)
{
    switch (status) {
      case StateStatus::Running: return "running";
      case StateStatus::Halted: return "halted";
      case StateStatus::Killed: return "killed";
      case StateStatus::Aborted: return "aborted";
      case StateStatus::Crashed: return "crashed";
      case StateStatus::Unsat: return "unsat";
      case StateStatus::BudgetExceeded: return "budget-exceeded";
      case StateStatus::SolverFailure: return "solver-failure";
      case StateStatus::Merged: return "merged";
      case StateStatus::SpillFailure: return "spill-failure";
    }
    return "<bad>";
}

ExecutionState::ExecutionState(uint32_t ram_size,
                               const vm::DeviceSet &initial_devices)
    : mem(ram_size), devices(initial_devices)
{
}

std::unique_ptr<ExecutionState>
ExecutionState::clone(int new_id) const
{
    // Private constructor path: field-by-field copy with the pieces
    // that need deep copies handled explicitly.
    auto child = std::unique_ptr<ExecutionState>(
        new ExecutionState(mem.size(), devices));
    child->cpu = cpu;
    child->mem = mem; // COW page sharing
    child->constraints = constraints;
    child->instrCount = instrCount;
    child->symInstrCount = symInstrCount;
    child->blockCount = blockCount;
    child->multiPathEnabled = multiPathEnabled;
    child->replayLog = replayLog; // nondeterminism prefix is shared
    child->status = status;
    child->exitCode = exitCode;
    child->statusMessage = statusMessage;
    child->degraded = degraded;
    child->degradeCount = degradeCount;
    // Fork happens mid-execution, so the parent is resident and not
    // parked: the child starts resident, unpinned and unparked. The
    // checkpoint ref is shared — the engine re-checkpoints the parent
    // right before cloning, so both sides start with an empty delta.
    child->checkpoint = checkpoint;
    child->lastScheduledTick = lastScheduledTick;
    child->id_ = new_id;
    child->parentId_ = id_;
    child->forkDepth_ = forkDepth_ + 1;
    // solverCtx is intentionally left null: the child's incremental
    // solver context is rebuilt lazily from its own constraints (a
    // shared context would be mutated from two workers once the child
    // is stolen, and a SatSolver cannot be cloned).
    // The engine overwrites pathId_ with "<parent>.<forkSeq>"; the
    // inherited sequence counters keep sibling numbering deterministic.
    child->pathId_ = pathId_;
    child->forkSeq_ = forkSeq_;
    child->symSeq_ = symSeq_;
    for (const auto &[key, ps] : pluginStates_)
        child->pluginStates_[key] = ps->clone();
    return child;
}

uint64_t
ExecutionState::memoryFootprint() const
{
    uint64_t bytes = sizeof(ExecutionState);
    bytes += mem.privatePages() * (kMemPageSize + 64);
    bytes += mem.symbolicByteCount() * 48;
    uint64_t constraint_nodes = 0;
    for (ExprRef c : constraints)
        constraint_nodes += c->nodeCount();
    bytes += constraint_nodes * 56;
    bytes += devices.size() * 512;
    return bytes;
}

} // namespace s2e::core
