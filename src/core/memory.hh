/**
 * @file
 * Copy-on-write guest physical memory with a symbolic byte overlay.
 *
 * Memory is split into pages shared between execution states via
 * shared_ptr; a write to a shared page first privatizes it. Each page
 * carries a sparse map of symbolic bytes on top of its concrete
 * storage, so symbolic data can flow through memory without eager
 * concretization (the paper's lazy-concretization optimization: a
 * symbolic buffer written to the virtual disk stays symbolic).
 */

#ifndef S2E_CORE_MEMORY_HH
#define S2E_CORE_MEMORY_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "core/value.hh"
#include "isa/assembler.hh"
#include "support/logging.hh"

namespace s2e::core {

/** COW page granularity. */
constexpr uint32_t kMemPageBits = 10;
constexpr uint32_t kMemPageSize = 1u << kMemPageBits;

/** Guest physical memory for one execution state. */
class MemoryState
{
  public:
    explicit MemoryState(uint32_t size);

    /** COW sharing: copies share pages until written. */
    MemoryState(const MemoryState &) = default;
    MemoryState &operator=(const MemoryState &) = default;
    MemoryState(MemoryState &&) = default;
    MemoryState &operator=(MemoryState &&) = default;

    uint32_t size() const { return size_; }

    bool
    inBounds(uint32_t addr, unsigned len) const
    {
        return addr < size_ && size_ - addr >= len;
    }

    /**
     * Read one concrete byte. Returns false when out of bounds or the
     * byte is symbolic (used by the code fetcher: symbolic code is a
     * translation fault).
     */
    bool readConcreteByte(uint32_t addr, uint8_t *out) const;

    /** Read size (1/2/4) bytes, little-endian; width of result = 8*size.
     *  Caller must check bounds. */
    Value read(uint32_t addr, unsigned len, ExprBuilder &builder) const;

    /** Write size bytes. Caller must check bounds. */
    void write(uint32_t addr, const Value &value, unsigned len,
               ExprBuilder &builder);

    /** Any symbolic bytes in [addr, addr+len)? */
    bool rangeHasSymbolic(uint32_t addr, uint32_t len) const;

    /** Mark one byte symbolic with the given 8-bit expression. */
    void makeSymbolic(uint32_t addr, ExprRef byte_expr);

    /** The byte at addr as an 8-bit expression (concrete -> constant). */
    ExprRef byteExpr(uint32_t addr, ExprBuilder &builder) const;

    /** Overwrite with a concrete byte (drops any symbolic overlay). */
    void writeConcreteByte(uint32_t addr, uint8_t value);

    /** Load program sections (concrete initialization). */
    void loadProgram(const isa::Program &program);

    /** Pages privatized by this state (memory-accounting proxy used by
     *  the Fig 8 experiment). */
    uint64_t privatePages() const;

    /** Total count of symbolic bytes currently live. */
    uint64_t symbolicByteCount() const;

    /** One COW page: concrete bytes plus a sparse symbolic overlay. */
    struct Page {
        std::vector<uint8_t> bytes;   ///< kMemPageSize
        std::map<uint16_t, ExprRef> symbolic;
        Page() : bytes(kMemPageSize, 0) {}
    };

    // --- Page-level access (checkpoint / spill machinery) --------------

    size_t numPages() const { return pages_.size(); }

    /** Raw page reference; null means the shared all-zero page. */
    const std::shared_ptr<Page> &
    pageRef(size_t idx) const
    {
        S2E_ASSERT(idx < pages_.size(), "page index %zu out of range", idx);
        return pages_[idx];
    }

    void
    setPageRef(size_t idx, std::shared_ptr<Page> page)
    {
        S2E_ASSERT(idx < pages_.size(), "page index %zu out of range", idx);
        pages_[idx] = std::move(page);
    }

    /**
     * Pages written since the last clearDirtyPages() (ascending).
     * Invariant used by checkpoints and spilling: a page whose ref
     * differs from the owning state's checkpoint resolution is always
     * in this set (every mutation goes through writablePageFor, which
     * records the index).
     */
    std::vector<uint32_t>
    dirtyPages() const
    {
        return {dirty_.begin(), dirty_.end()};
    }
    void clearDirtyPages() { dirty_.clear(); }
    void markPageDirty(uint32_t idx) { dirty_.insert(idx); }

    /** Drop every page reference (a spilled state keeps no memory).
     *  Any access before restorePages() then trips the page-bound
     *  assertion instead of silently reading zeros. */
    void
    dropAllPages()
    {
        pages_.clear();
        dirty_.clear();
    }

    /** Re-create the (all-shared-zero) page vector before a restore
     *  repopulates it from a checkpoint and the spilled image. */
    void
    restorePages(size_t num_pages)
    {
        pages_.assign(num_pages, nullptr);
        dirty_.clear();
    }

  private:
    const Page *pageFor(uint32_t addr) const;
    Page *writablePageFor(uint32_t addr);

    uint32_t size_;
    std::vector<std::shared_ptr<Page>> pages_;
    std::set<uint32_t> dirty_; ///< pages written since last checkpoint
};

} // namespace s2e::core

#endif // S2E_CORE_MEMORY_HH
