/**
 * @file
 * The publish/subscribe event hub (paper §4.2, Table 2).
 *
 * Plugins register callbacks for the core events the platform raises:
 * instruction translation, execution of marked instructions, state
 * forking, exceptions and memory accesses. onInstrTranslation fires
 * once per instruction per translation (translate-once/execute-many:
 * marking an instruction there makes onInstrExecution fire for it on
 * every execution with no cost for unmarked instructions).
 */

#ifndef S2E_CORE_EVENTS_HH
#define S2E_CORE_EVENTS_HH

#include <functional>
#include <vector>

#include "core/state.hh"
#include "dbt/ir.hh"
#include "isa/isa.hh"

namespace s2e::core {

/** Minimal multicast signal. Subscription handles are indices. */
template <typename... Args>
class Signal
{
  public:
    using Callback = std::function<void(Args...)>;

    size_t
    subscribe(Callback cb)
    {
        callbacks_.push_back(std::move(cb));
        return callbacks_.size() - 1;
    }

    /** Release a subscription. Handles are never reused, so a double
     *  unsubscribe (or one with a stale handle) is a harmless no-op. */
    void
    unsubscribe(size_t handle)
    {
        if (handle < callbacks_.size())
            callbacks_[handle] = nullptr;
    }

    void
    emit(Args... args) const
    {
        for (const auto &cb : callbacks_)
            if (cb)
                cb(args...);
    }

    bool empty() const
    {
        for (const auto &cb : callbacks_)
            if (cb)
                return false;
        return true;
    }

  private:
    std::vector<Callback> callbacks_;
};

class ExecutionState;

/** Fork event payload: parent keeps the true branch by convention. */
struct ForkInfo {
    ExecutionState *parent;
    ExecutionState *child;
    ExprRef condition; ///< constraint added to the parent
};

/** Payload of onSolverDegraded: where and how a solver Unknown was
 *  absorbed. `fatal` distinguishes a killed state (must-answer site)
 *  from a degraded-but-continuing one (e.g. a suppressed fork). */
struct SolverDegradeInfo {
    uint32_t pc;      ///< guest pc at the affected site
    const char *site; ///< "branch", "concretize", "symbolic_load", ...
    bool timedOut;    ///< Unknown came from the wall-clock deadline
    bool fatal;       ///< state was killed (StateStatus::SolverFailure)
};

/** Payload of onStateMerge: `absorbed` was ITE-merged into `survivor`
 *  at the merge-point pc and then terminated with
 *  StateStatus::Merged. Fired before the absorbed state's kill. */
struct MergeInfo {
    ExecutionState *survivor;
    ExecutionState *absorbed;
    uint32_t pc;
};

/** Memory access payload. Symbolic addresses are reported after
 *  resolution; `addr` is the resolved concrete address and `addrExpr`
 *  carries the original symbolic address (null when concrete) so
 *  analyzers can reason about the whole feasible range. */
struct MemAccessInfo {
    uint32_t addr;
    unsigned size;
    bool isWrite;
    bool wasSymbolicAddress;
    const Value *value;  ///< written or loaded value
    ExprRef addrExpr = nullptr;
};

/** All core events exported by the platform. */
struct EventHub {
    /**
     * DBT is about to translate one guest instruction. Set *mark to
     * make onInstrExecution fire for this instruction at runtime.
     */
    Signal<ExecutionState &, uint32_t /*pc*/, const isa::Instruction &,
           bool * /*mark*/>
        onInstrTranslation;

    /** A marked instruction is about to execute. */
    Signal<ExecutionState &, uint32_t /*pc*/> onInstrExecution;

    /** Execution is about to fork (both states already exist). */
    Signal<const ForkInfo &> onExecutionFork;

    /** The interrupt pin was asserted (hardware or software). */
    Signal<ExecutionState &, unsigned /*vector*/> onException;

    /** Guest memory data access (not code fetch). */
    Signal<ExecutionState &, const MemAccessInfo &> onMemoryAccess;

    /** A translation block is about to execute (coverage backbone). */
    Signal<ExecutionState &, const dbt::TranslationBlock &> onBlockExecute;

    /** A state terminated (any non-running status). */
    Signal<ExecutionState &> onStateKill;

    /** Two sibling states coalesced at an s2e_merge point. */
    Signal<const MergeInfo &> onStateMerge;

    /** Port I/O access: port, value (read result or written value),
     *  isWrite. Fires after reads resolve and before writes land. */
    Signal<ExecutionState &, uint16_t, const Value &, bool> onPortAccess;

    /** s2e_out opcode: the guest logged a value. */
    Signal<ExecutionState &, const Value &> onGuestOutput;

    /** s2e_assert failed (bug found): state + message. */
    Signal<ExecutionState &, const std::string &> onBug;

    /** A solver query gave up (Unknown) and the engine took a
     *  degradation action instead of silently mis-answering. */
    Signal<ExecutionState &, const SolverDegradeInfo &> onSolverDegraded;
};

} // namespace s2e::core

#endif // S2E_CORE_EVENTS_HH
