#include "expr/expr.hh"

#include <unordered_set>

#include "support/logging.hh"

namespace s2e::expr {

const char *
kindName(Kind kind)
{
    switch (kind) {
      case Kind::Constant: return "const";
      case Kind::Variable: return "var";
      case Kind::Add: return "add";
      case Kind::Sub: return "sub";
      case Kind::Mul: return "mul";
      case Kind::UDiv: return "udiv";
      case Kind::SDiv: return "sdiv";
      case Kind::URem: return "urem";
      case Kind::SRem: return "srem";
      case Kind::And: return "and";
      case Kind::Or: return "or";
      case Kind::Xor: return "xor";
      case Kind::Not: return "not";
      case Kind::Neg: return "neg";
      case Kind::Shl: return "shl";
      case Kind::LShr: return "lshr";
      case Kind::AShr: return "ashr";
      case Kind::Concat: return "concat";
      case Kind::Extract: return "extract";
      case Kind::ZExt: return "zext";
      case Kind::SExt: return "sext";
      case Kind::Eq: return "eq";
      case Kind::Ult: return "ult";
      case Kind::Ule: return "ule";
      case Kind::Slt: return "slt";
      case Kind::Sle: return "sle";
      case Kind::Ite: return "ite";
    }
    panic("kindName: bad kind %d", static_cast<int>(kind));
}

unsigned
kindArity(Kind kind)
{
    switch (kind) {
      case Kind::Constant:
      case Kind::Variable:
        return 0;
      case Kind::Not:
      case Kind::Neg:
      case Kind::Extract:
      case Kind::ZExt:
      case Kind::SExt:
        return 1;
      case Kind::Ite:
        return 3;
      default:
        return 2;
    }
}

const std::string &
Expr::name() const
{
    S2E_ASSERT(isVariable() && name_, "name() on non-variable");
    return *name_;
}

namespace {
void
countNodes(ExprRef e, std::unordered_set<ExprRef> &seen)
{
    if (!seen.insert(e).second)
        return;
    for (unsigned i = 0; i < e->arity(); ++i)
        countNodes(e->kid(i), seen);
}
} // namespace

size_t
Expr::nodeCount() const
{
    std::unordered_set<ExprRef> seen;
    countNodes(this, seen);
    return seen.size();
}

std::string
Expr::toString() const
{
    switch (kind_) {
      case Kind::Constant:
        return strprintf("(const w%u %llu)", width_,
                         static_cast<unsigned long long>(value_));
      case Kind::Variable:
        return strprintf("%s:w%u", name_->c_str(), width_);
      case Kind::Extract:
        return strprintf("(extract w%u @%u %s)", width_, aux_,
                         kids_[0]->toString().c_str());
      case Kind::ZExt:
      case Kind::SExt:
        return strprintf("(%s w%u %s)", kindName(kind_), width_,
                         kids_[0]->toString().c_str());
      default: {
        std::string s = strprintf("(%s w%u", kindName(kind_), width_);
        for (unsigned i = 0; i < arity(); ++i)
            s += " " + kids_[i]->toString();
        return s + ")";
      }
    }
}

} // namespace s2e::expr
