/**
 * @file
 * Whole-path static value analysis over constraint sets.
 *
 * The Analyzer turns a path's constraint set into a FactMap of
 * refined AbsValues keyed by hash-consed node identity: asserting
 * `ult(x, 10)` narrows x's interval to [0, 9], asserting a branch
 * condition node pins that exact node (and, through backward
 * propagation, its operands) for every later query on the path. A
 * bounded fixpoint iterates forward evaluation and backward
 * refinement until nothing narrows.
 *
 * Fact sets are cached keyed by the constraint vector; since paths
 * grow by appending constraints, a cached prefix seeds the analysis
 * of its extensions (the common case is one new constraint on top of
 * an already-analyzed set).
 *
 * Everything here is an over-approximation: a fact map never excludes
 * a value some model of the constraints can produce. Bottom facts
 * mean the constraint set itself is statically contradictory — the
 * engine's path invariant rules that out for well-formed paths, so
 * consumers treat bottom as "no verdict" rather than Unsat.
 */

#ifndef S2E_EXPR_ABSINT_ANALYZER_HH
#define S2E_EXPR_ABSINT_ANALYZER_HH

#include <memory>
#include <vector>

#include "expr/absint/transfer.hh"

namespace s2e::expr::absint {

/** Verify-every-static-verdict default: on for debug builds, off for
 *  release (the `ctest -L absint` suite turns it on explicitly). */
#ifdef NDEBUG
inline constexpr bool kAbsintVerifyDefault = false;
#else
inline constexpr bool kAbsintVerifyDefault = true;
#endif

/** Facts derived from one constraint set. */
struct Facts {
    std::vector<ExprRef> key; ///< the analyzed constraint vector
    FactMap refined;          ///< node -> narrowed abstract value
    FactMap evalMemo;         ///< post-fixpoint query-time eval cache
    uint64_t generation = 0;  ///< unique id (scopes consumer memos)
    bool bottom = false;      ///< constraints statically contradictory
};

class Analyzer
{
  public:
    /** Wire the analyzer's activity counters to pre-registered Stats
     *  slots (all nullable; see Solver's absint.* counters). */
    void
    bindCounters(uint64_t *facts_computed, uint64_t *facts_reused,
                 uint64_t *fixpoint_iters)
    {
        factsComputed_ = facts_computed;
        factsReused_ = facts_reused;
        fixpointIters_ = fixpoint_iters;
    }

    /** Facts for a constraint set (cached; prefix-seeded). */
    std::shared_ptr<Facts> analyze(const std::vector<ExprRef> &constraints);

    /** Abstract value of `e` under the facts (memoized in `facts`). */
    AbsValue
    eval(ExprRef e, Facts &facts)
    {
        return evalExpr(e, &facts.refined, facts.evalMemo);
    }

  private:
    void runFixpoint(Facts &facts);
    void refineNode(ExprRef e, const AbsValue &required, Facts &facts,
                    FactMap &memo, bool &changed, unsigned depth,
                    unsigned &budget);

    std::vector<std::shared_ptr<Facts>> cache_; ///< newest at the back
    uint64_t nextGen_ = 1;
    uint64_t *factsComputed_ = nullptr;
    uint64_t *factsReused_ = nullptr;
    uint64_t *fixpointIters_ = nullptr;
};

} // namespace s2e::expr::absint

#endif // S2E_EXPR_ABSINT_ANALYZER_HH
