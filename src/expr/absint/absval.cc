#include "expr/absint/absval.hh"

#include <algorithm>

#include "support/logging.hh"

namespace s2e::expr::absint {

namespace {

int64_t
minInt(unsigned w)
{
    return signExtend(1ULL << (w - 1), w);
}

int64_t
maxInt(unsigned w)
{
    return static_cast<int64_t>(lowMask(w) >> 1);
}

} // namespace

AbsValue
AbsValue::top(unsigned w)
{
    AbsValue v;
    v.width = w;
    v.kb = KnownBits::unknown();
    v.umin = 0;
    v.umax = lowMask(w);
    v.smin = minInt(w);
    v.smax = maxInt(w);
    return v;
}

AbsValue
AbsValue::constant(uint64_t c, unsigned w)
{
    c = truncate(c, w);
    AbsValue v;
    v.width = w;
    v.kb = KnownBits::constant(c, w);
    v.umin = v.umax = c;
    v.smin = v.smax = signExtend(c, w);
    return v;
}

AbsValue
AbsValue::bottom(unsigned w)
{
    AbsValue v = top(w);
    v.bot = true;
    return v;
}

AbsValue
AbsValue::range(uint64_t lo, uint64_t hi, unsigned w)
{
    AbsValue v = top(w);
    v.umin = truncate(lo, w);
    v.umax = truncate(hi, w);
    v.reduce();
    return v;
}

AbsValue
AbsValue::signedRange(int64_t lo, int64_t hi, unsigned w)
{
    AbsValue v = top(w);
    v.smin = std::max(lo, minInt(w));
    v.smax = std::min(hi, maxInt(w));
    v.reduce();
    return v;
}

AbsValue
AbsValue::bits(KnownBits k, unsigned w)
{
    AbsValue v = top(w);
    v.kb.zeros = k.zeros & lowMask(w);
    v.kb.ones = k.ones & lowMask(w);
    v.reduce();
    return v;
}

bool
AbsValue::contains(uint64_t v) const
{
    if (bot)
        return false;
    v = truncate(v, width);
    int64_t sv = signExtend(v, width);
    return (v & kb.zeros) == 0 && (v & kb.ones) == kb.ones &&
           v >= umin && v <= umax && sv >= smin && sv <= smax;
}

AbsValue
AbsValue::meet(const AbsValue &o) const
{
    S2E_ASSERT(width == o.width, "absint meet width mismatch %u vs %u",
               width, o.width);
    AbsValue v;
    v.width = width;
    v.bot = bot || o.bot;
    v.kb.zeros = kb.zeros | o.kb.zeros;
    v.kb.ones = kb.ones | o.kb.ones;
    v.umin = std::max(umin, o.umin);
    v.umax = std::min(umax, o.umax);
    v.smin = std::max(smin, o.smin);
    v.smax = std::min(smax, o.smax);
    v.reduce();
    return v;
}

AbsValue
AbsValue::join(const AbsValue &o) const
{
    S2E_ASSERT(width == o.width, "absint join width mismatch %u vs %u",
               width, o.width);
    if (bot)
        return o;
    if (o.bot)
        return *this;
    AbsValue v;
    v.width = width;
    v.kb.zeros = kb.zeros & o.kb.zeros;
    v.kb.ones = kb.ones & o.kb.ones;
    v.umin = std::min(umin, o.umin);
    v.umax = std::max(umax, o.umax);
    v.smin = std::min(smin, o.smin);
    v.smax = std::max(smax, o.smax);
    v.reduce();
    return v;
}

bool
AbsValue::refines(const AbsValue &o) const
{
    if (bot != o.bot)
        return bot;
    if (bot)
        return false;
    return kb.zeros != o.kb.zeros || kb.ones != o.kb.ones ||
           umin != o.umin || umax != o.umax || smin != o.smin ||
           smax != o.smax;
}

void
AbsValue::reduce()
{
    if (bot)
        return;
    uint64_t mask = lowMask(width);
    uint64_t sign = 1ULL << (width - 1);
    // The components narrow each other monotonically; a handful of
    // passes reaches the local fixpoint (each pass either changes
    // nothing or moves at least one bound/bit, and the chains are
    // short in practice).
    for (int pass = 0; pass < 4; ++pass) {
        AbsValue before = *this;
        before.bot = false; // compare narrowing only

        if (kb.zeros & kb.ones) {
            bot = true;
            return;
        }
        // known bits -> unsigned bounds
        umin = std::max(umin, kb.ones);
        umax = std::min(umax, mask & ~kb.zeros);
        if (umin > umax) {
            bot = true;
            return;
        }
        // unsigned bounds -> known bits: every value in [umin, umax]
        // shares the bounds' common prefix above their highest
        // differing bit.
        uint64_t diff = umin ^ umax;
        unsigned live = diff == 0 ? 0 : 64 - __builtin_clzll(diff);
        uint64_t common = mask & ~lowMask(live);
        kb.ones |= umin & common;
        kb.zeros |= ~umin & common;
        if (kb.zeros & kb.ones) {
            bot = true;
            return;
        }
        // unsigned -> signed (wrap-aware)
        int64_t lo_s;
        int64_t hi_s;
        if (umax < sign) {
            lo_s = static_cast<int64_t>(umin);
            hi_s = static_cast<int64_t>(umax);
        } else if (umin >= sign) {
            lo_s = signExtend(umin, width);
            hi_s = signExtend(umax, width);
        } else {
            lo_s = minInt(width);
            hi_s = maxInt(width);
        }
        smin = std::max(smin, lo_s);
        smax = std::min(smax, hi_s);
        if (smin > smax) {
            bot = true;
            return;
        }
        // signed -> unsigned (wrap-aware)
        uint64_t lo_u;
        uint64_t hi_u;
        if (smin >= 0) {
            lo_u = static_cast<uint64_t>(smin);
            hi_u = static_cast<uint64_t>(smax);
        } else if (smax < 0) {
            lo_u = truncate(static_cast<uint64_t>(smin), width);
            hi_u = truncate(static_cast<uint64_t>(smax), width);
        } else {
            lo_u = 0;
            hi_u = mask;
        }
        umin = std::max(umin, lo_u);
        umax = std::min(umax, hi_u);
        if (umin > umax) {
            bot = true;
            return;
        }
        if (!refines(before))
            return;
    }
}

std::string
AbsValue::toString() const
{
    if (bot)
        return strprintf("w%u bottom", width);
    return strprintf("w%u kb{z=%llx,o=%llx} u[%llu,%llu] s[%lld,%lld]",
                     width, (unsigned long long)kb.zeros,
                     (unsigned long long)kb.ones,
                     (unsigned long long)umin, (unsigned long long)umax,
                     (long long)smin, (long long)smax);
}

} // namespace s2e::expr::absint
