/**
 * @file
 * Forward abstract transfer over the expression DAG.
 *
 * evalExpr computes an AbsValue for every node bottom-up, mirroring
 * ExprBuilder::foldBinary's total-function semantics exactly
 * (division by zero yields all-ones, shifts past the width yield
 * zero / sign-fill, ...). When a refined fact map is supplied (facts
 * derived from path constraints, see analyzer.hh) each node's
 * transfer result is met with its recorded fact, so whole-path
 * information flows into every consumer: the solver's static
 * feasibility pre-check, getRange seeding, and the simplifier's
 * known-bits collapse.
 */

#ifndef S2E_EXPR_ABSINT_TRANSFER_HH
#define S2E_EXPR_ABSINT_TRANSFER_HH

#include <unordered_map>

#include "expr/absint/absval.hh"
#include "expr/expr.hh"

namespace s2e::expr::absint {

/** Per-node abstract values, keyed by hash-consed node identity. */
using FactMap = std::unordered_map<ExprRef, AbsValue>;

/**
 * Abstract value of `e`: bottom-up transfer over the DAG, meeting the
 * per-node `refined` facts when provided (nullptr = context-free).
 * `memo` caches results across calls; the caller must scope it to one
 * fact set (facts narrow monotonically during a fixpoint, so a stale
 * memo is sound there — merely less precise).
 */
AbsValue evalExpr(ExprRef e, const FactMap *refined, FactMap &memo);

/** Context-free convenience entry (fresh memo per call). */
AbsValue evalPure(ExprRef e);

} // namespace s2e::expr::absint

#endif // S2E_EXPR_ABSINT_TRANSFER_HH
