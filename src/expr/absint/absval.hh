/**
 * @file
 * Reduced-product abstract value for static expression reasoning.
 *
 * One AbsValue over-approximates the set of concrete values a
 * bitvector expression can take: a known-bits lattice element (per-bit
 * 0/1/top) plus an unsigned interval and a signed interval, with a
 * reduction step that lets each component tighten the others (the
 * known sign bit narrows the signed range, a singleton interval pins
 * every bit, and so on). The product is what makes the analysis
 * useful on machine-code expressions, which mix bitfield tests
 * (known-bits territory) with bounds comparisons (interval territory).
 *
 * Soundness invariant used throughout: for every concrete value v the
 * abstracted expression can evaluate to, contains(v) is true. Bottom
 * (empty set) arises only from refinement against contradictory
 * required values, never from forward transfer of consistent inputs.
 */

#ifndef S2E_EXPR_ABSINT_ABSVAL_HH
#define S2E_EXPR_ABSINT_ABSVAL_HH

#include <cstdint>
#include <string>

#include "support/bitops.hh"

namespace s2e::expr::absint {

struct AbsValue
{
    unsigned width = 0;
    KnownBits kb;          ///< per-bit facts, disjoint zeros/ones
    uint64_t umin = 0;     ///< unsigned interval, inclusive
    uint64_t umax = 0;
    int64_t smin = 0;      ///< signed interval, inclusive, sign-extended
    int64_t smax = 0;
    bool bot = false;      ///< empty set (contradictory facts)

    /** No information beyond the width. */
    static AbsValue top(unsigned w);
    /** Exactly one value. */
    static AbsValue constant(uint64_t v, unsigned w);
    /** Empty set. */
    static AbsValue bottom(unsigned w);
    /** Interval-only seeds (reduced on construction). */
    static AbsValue range(uint64_t lo, uint64_t hi, unsigned w);
    static AbsValue signedRange(int64_t lo, int64_t hi, unsigned w);
    /** Known-bits-only seed (reduced on construction). */
    static AbsValue bits(KnownBits k, unsigned w);

    bool isBottom() const { return bot; }
    /** All four components pin the same single value. */
    bool isConstant() const { return !bot && umin == umax; }
    uint64_t constantValue() const { return umin; }

    /** Membership test (v is truncated to width first). */
    bool contains(uint64_t v) const;

    /** Greatest lower bound: intersection of the two value sets'
     *  over-approximations. Both operands must share the width. */
    AbsValue meet(const AbsValue &o) const;
    /** Least upper bound (join): used for Ite with unknown condition. */
    AbsValue join(const AbsValue &o) const;

    /** Strictly more precise than `o` in at least one component (used
     *  by the fixpoint to detect progress). */
    bool refines(const AbsValue &o) const;

    /**
     * Mutual refinement between the components; detects bottom.
     * Idempotent after a bounded number of passes (internally
     * iterated to a local fixpoint).
     */
    void reduce();

    std::string toString() const;
};

} // namespace s2e::expr::absint

#endif // S2E_EXPR_ABSINT_ABSVAL_HH
