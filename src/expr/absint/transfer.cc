#include "expr/absint/transfer.hh"

#include <algorithm>
#include <optional>

namespace s2e::expr::absint {

namespace {

using u128 = unsigned __int128;
using i128 = __int128;

/** Known-bits ripple-carry addition with an explicit carry-in; bits
 *  are known up to the first position where the carry is uncertain.
 *  Subtraction reuses this as a + ~b + 1. */
KnownBits
knownAddCarry(const KnownBits &a, const KnownBits &b, unsigned carry_in,
              unsigned width)
{
    KnownBits out;
    unsigned carry = carry_in;
    for (unsigned i = 0; i < width; ++i) {
        bool a_known = ((a.zeros | a.ones) >> i) & 1;
        bool b_known = ((b.zeros | b.ones) >> i) & 1;
        if (!a_known || !b_known)
            break;
        unsigned abit = (a.ones >> i) & 1;
        unsigned bbit = (b.ones >> i) & 1;
        unsigned sum = abit + bbit + carry;
        if (sum & 1)
            out.ones |= 1ULL << i;
        else
            out.zeros |= 1ULL << i;
        carry = sum >> 1;
    }
    return out;
}

KnownBits
knownNot(const KnownBits &a, unsigned width)
{
    return {a.ones & lowMask(width), a.zeros & lowMask(width)};
}

/** Number of low bits known to be zero (trailing-zero count of the
 *  abstract value; width-capped). */
unsigned
knownTrailingZeros(const AbsValue &a)
{
    uint64_t not_zero = ~a.kb.zeros & lowMask(a.width);
    if (not_zero == 0)
        return a.width;
    return std::min<unsigned>(a.width, __builtin_ctzll(not_zero));
}

AbsValue
transferAdd(const AbsValue &a, const AbsValue &b, unsigned w)
{
    AbsValue v = AbsValue::bits(knownAddCarry(a.kb, b.kb, 0, w), w);
    if (static_cast<u128>(a.umax) + b.umax <= lowMask(w)) {
        v.umin = std::max(v.umin, a.umin + b.umin);
        v.umax = std::min(v.umax, a.umax + b.umax);
    }
    i128 slo = static_cast<i128>(a.smin) + b.smin;
    i128 shi = static_cast<i128>(a.smax) + b.smax;
    if (slo >= -(static_cast<i128>(1) << (w - 1)) &&
        shi <= (static_cast<i128>(1) << (w - 1)) - 1) {
        v.smin = std::max<int64_t>(v.smin, static_cast<int64_t>(slo));
        v.smax = std::min<int64_t>(v.smax, static_cast<int64_t>(shi));
    }
    v.reduce();
    return v;
}

AbsValue
transferSub(const AbsValue &a, const AbsValue &b, unsigned w)
{
    AbsValue v =
        AbsValue::bits(knownAddCarry(a.kb, knownNot(b.kb, w), 1, w), w);
    if (a.umin >= b.umax) { // no pair wraps
        v.umin = std::max(v.umin, a.umin - b.umax);
        v.umax = std::min(v.umax, a.umax - b.umin);
    }
    i128 slo = static_cast<i128>(a.smin) - b.smax;
    i128 shi = static_cast<i128>(a.smax) - b.smin;
    if (slo >= -(static_cast<i128>(1) << (w - 1)) &&
        shi <= (static_cast<i128>(1) << (w - 1)) - 1) {
        v.smin = std::max<int64_t>(v.smin, static_cast<int64_t>(slo));
        v.smax = std::min<int64_t>(v.smax, static_cast<int64_t>(shi));
    }
    v.reduce();
    return v;
}

AbsValue
transferMul(const AbsValue &a, const AbsValue &b, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    unsigned tz = knownTrailingZeros(a) + knownTrailingZeros(b);
    v.kb.zeros = lowMask(std::min(tz, w));
    if (static_cast<u128>(a.umax) * b.umax <= lowMask(w)) {
        v.umin = a.umin * b.umin;
        v.umax = a.umax * b.umax;
    }
    v.reduce();
    return v;
}

AbsValue
transferUDiv(const AbsValue &a, const AbsValue &b, unsigned w)
{
    uint64_t mask = lowMask(w);
    if (b.umax == 0) // divisor is always zero: total semantics say ~0
        return AbsValue::constant(mask, w);
    uint64_t lo = a.umin / b.umax;
    uint64_t hi = b.umin == 0 ? mask : a.umax / b.umin;
    return AbsValue::range(lo, hi, w);
}

AbsValue
transferURem(const AbsValue &a, const AbsValue &b, unsigned w)
{
    if (b.umax == 0) // x % 0 == x
        return AbsValue::range(a.umin, a.umax, w);
    AbsValue v = AbsValue::range(0, std::min(a.umax, b.umax - 1), w);
    if (b.umin == 0) // divisor may be zero: join in x itself
        v = v.join(AbsValue::range(a.umin, a.umax, w));
    return v;
}

AbsValue
transferAnd(const AbsValue &a, const AbsValue &b, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    v.kb.ones = a.kb.ones & b.kb.ones;
    v.kb.zeros = (a.kb.zeros | b.kb.zeros) & lowMask(w);
    v.umax = std::min(a.umax, b.umax); // x & y <= min(x, y)
    v.reduce();
    return v;
}

AbsValue
transferOr(const AbsValue &a, const AbsValue &b, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    v.kb.ones = a.kb.ones | b.kb.ones;
    v.kb.zeros = a.kb.zeros & b.kb.zeros;
    v.umin = std::max(a.umin, b.umin); // x | y >= max(x, y)
    u128 hi = static_cast<u128>(a.umax) + b.umax; // x | y <= x + y
    v.umax = hi > lowMask(w) ? lowMask(w) : static_cast<uint64_t>(hi);
    v.reduce();
    return v;
}

AbsValue
transferXor(const AbsValue &a, const AbsValue &b, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    uint64_t both = (a.kb.zeros | a.kb.ones) & (b.kb.zeros | b.kb.ones);
    uint64_t x = a.kb.ones ^ b.kb.ones;
    v.kb.ones = x & both;
    v.kb.zeros = ~x & both & lowMask(w);
    u128 hi = static_cast<u128>(a.umax) + b.umax; // x ^ y <= x + y
    v.umax = hi > lowMask(w) ? lowMask(w) : static_cast<uint64_t>(hi);
    v.reduce();
    return v;
}

AbsValue
transferNot(const AbsValue &a, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    v.kb = knownNot(a.kb, w);
    v.umin = lowMask(w) - a.umax;
    v.umax = lowMask(w) - a.umin;
    v.reduce();
    return v;
}

AbsValue
transferNeg(const AbsValue &a, unsigned w)
{
    AbsValue v = AbsValue::bits(
        knownAddCarry(KnownBits::constant(0, w), knownNot(a.kb, w), 1, w),
        w);
    if (a.umin > 0) { // 0 excluded: -x == 2^w - x, monotone reversed
        uint64_t modulus_minus = lowMask(w); // 2^w - 1
        v.umin = std::max(v.umin, modulus_minus - a.umax + 1);
        v.umax = std::min(v.umax, modulus_minus - a.umin + 1);
    } else if (a.umax == 0) {
        v = AbsValue::constant(0, w);
    }
    v.reduce();
    return v;
}

AbsValue
transferShl(const AbsValue &a, const AbsValue &b, unsigned w)
{
    if (b.umin >= w)
        return AbsValue::constant(0, w);
    if (!b.isConstant())
        return AbsValue::top(w);
    unsigned s = static_cast<unsigned>(b.constantValue());
    AbsValue v = AbsValue::top(w);
    v.kb.ones = (a.kb.ones << s) & lowMask(w);
    v.kb.zeros = ((a.kb.zeros << s) | lowMask(s)) & lowMask(w);
    if ((static_cast<u128>(a.umax) << s) <= lowMask(w)) {
        v.umin = a.umin << s;
        v.umax = a.umax << s;
    }
    v.reduce();
    return v;
}

AbsValue
transferLShr(const AbsValue &a, const AbsValue &b, unsigned w)
{
    if (b.umin >= w)
        return AbsValue::constant(0, w);
    if (!b.isConstant())
        return AbsValue::top(w);
    unsigned s = static_cast<unsigned>(b.constantValue());
    AbsValue v = AbsValue::top(w);
    uint64_t mask = lowMask(w);
    v.kb.ones = a.kb.ones >> s;
    v.kb.zeros = ((a.kb.zeros >> s) | (~(mask >> s) & mask)) & mask;
    v.umin = a.umin >> s;
    v.umax = a.umax >> s;
    v.reduce();
    return v;
}

AbsValue
transferAShr(const AbsValue &a, const AbsValue &b, unsigned w)
{
    if (!b.isConstant())
        return AbsValue::top(w);
    unsigned s = static_cast<unsigned>(
        std::min<uint64_t>(b.constantValue(), w - 1));
    AbsValue v = AbsValue::top(w);
    uint64_t mask = lowMask(w);
    v.kb.ones = a.kb.ones >> s;
    v.kb.zeros = (a.kb.zeros >> s) & mask;
    uint64_t fill = ~(mask >> s) & mask;
    if ((a.kb.ones >> (w - 1)) & 1)
        v.kb.ones |= fill;
    else if ((a.kb.zeros >> (w - 1)) & 1)
        v.kb.zeros |= fill;
    v.smin = a.smin >> s; // C++20: arithmetic shift on signed
    v.smax = a.smax >> s;
    v.reduce();
    return v;
}

AbsValue
transferConcat(const AbsValue &hi, const AbsValue &lo, unsigned w)
{
    unsigned lw = lo.width;
    AbsValue v = AbsValue::top(w);
    v.kb.ones = (hi.kb.ones << lw) | lo.kb.ones;
    v.kb.zeros = (hi.kb.zeros << lw) | lo.kb.zeros;
    v.umin = (hi.umin << lw) + lo.umin;
    v.umax = (hi.umax << lw) + lo.umax;
    v.reduce();
    return v;
}

AbsValue
transferExtract(const AbsValue &a, unsigned off, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    uint64_t mask = lowMask(w);
    v.kb.ones = (a.kb.ones >> off) & mask;
    v.kb.zeros = (a.kb.zeros >> off) & mask;
    if (off == 0 && a.umax <= mask) {
        v.umin = a.umin;
        v.umax = a.umax;
    } else if (off + w == a.width) { // top slice: monotone in the value
        v.umin = a.umin >> off;
        v.umax = a.umax >> off;
    }
    v.reduce();
    return v;
}

AbsValue
transferZExt(const AbsValue &a, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    unsigned iw = a.width;
    v.kb.ones = a.kb.ones;
    v.kb.zeros = a.kb.zeros | (lowMask(w) & ~lowMask(iw));
    v.umin = a.umin;
    v.umax = a.umax;
    v.reduce();
    return v;
}

AbsValue
transferSExt(const AbsValue &a, unsigned w)
{
    AbsValue v = AbsValue::top(w);
    unsigned iw = a.width;
    v.kb.ones = a.kb.ones;
    v.kb.zeros = a.kb.zeros;
    uint64_t fill = lowMask(w) & ~lowMask(iw);
    if ((a.kb.ones >> (iw - 1)) & 1)
        v.kb.ones |= fill;
    else if ((a.kb.zeros >> (iw - 1)) & 1)
        v.kb.zeros |= fill;
    v.smin = a.smin; // sign-extension preserves the signed value
    v.smax = a.smax;
    v.reduce();
    return v;
}

/** Decide a comparison statically, if the domains are conclusive. */
std::optional<bool>
decideCompare(Kind kind, const AbsValue &a, const AbsValue &b)
{
    switch (kind) {
      case Kind::Eq:
        if (a.isConstant() && b.isConstant())
            return a.constantValue() == b.constantValue();
        if (a.umax < b.umin || b.umax < a.umin || a.smax < b.smin ||
            b.smax < a.smin)
            return false;
        if ((a.kb.ones & b.kb.zeros) || (a.kb.zeros & b.kb.ones))
            return false;
        return std::nullopt;
      case Kind::Ult:
        if (a.umax < b.umin)
            return true;
        if (a.umin >= b.umax)
            return false;
        return std::nullopt;
      case Kind::Ule:
        if (a.umax <= b.umin)
            return true;
        if (a.umin > b.umax)
            return false;
        return std::nullopt;
      case Kind::Slt:
        if (a.smax < b.smin)
            return true;
        if (a.smin >= b.smax)
            return false;
        return std::nullopt;
      case Kind::Sle:
        if (a.smax <= b.smin)
            return true;
        if (a.smin > b.smax)
            return false;
        return std::nullopt;
      default:
        return std::nullopt;
    }
}

AbsValue
transferNode(ExprRef e, const AbsValue &k0, const AbsValue &k1,
             const AbsValue &k2)
{
    unsigned w = e->width();
    switch (e->kind()) {
      case Kind::Constant:
        return AbsValue::constant(e->value(), w);
      case Kind::Variable:
        return AbsValue::top(w);
      case Kind::Add: return transferAdd(k0, k1, w);
      case Kind::Sub: return transferSub(k0, k1, w);
      case Kind::Mul: return transferMul(k0, k1, w);
      case Kind::UDiv: return transferUDiv(k0, k1, w);
      case Kind::URem: return transferURem(k0, k1, w);
      case Kind::SDiv:
      case Kind::SRem:
        // Rare in DBT-generated expressions; the sign/zero-dance of
        // foldBinary's total semantics is not worth modeling.
        return AbsValue::top(w);
      case Kind::And: return transferAnd(k0, k1, w);
      case Kind::Or: return transferOr(k0, k1, w);
      case Kind::Xor: return transferXor(k0, k1, w);
      case Kind::Not: return transferNot(k0, w);
      case Kind::Neg: return transferNeg(k0, w);
      case Kind::Shl: return transferShl(k0, k1, w);
      case Kind::LShr: return transferLShr(k0, k1, w);
      case Kind::AShr: return transferAShr(k0, k1, w);
      case Kind::Concat: return transferConcat(k0, k1, w);
      case Kind::Extract: return transferExtract(k0, e->aux(), w);
      case Kind::ZExt: return transferZExt(k0, w);
      case Kind::SExt: return transferSExt(k0, w);
      case Kind::Eq:
      case Kind::Ult:
      case Kind::Ule:
      case Kind::Slt:
      case Kind::Sle: {
        if (e->kid(0) == e->kid(1)) { // hash-consed identity
            bool refl = e->kind() == Kind::Eq || e->kind() == Kind::Ule ||
                        e->kind() == Kind::Sle;
            return AbsValue::constant(refl ? 1 : 0, 1);
        }
        if (auto r = decideCompare(e->kind(), k0, k1))
            return AbsValue::constant(*r ? 1 : 0, 1);
        return AbsValue::top(1);
      }
      case Kind::Ite: {
        if (k0.isConstant())
            return k0.constantValue() ? k1 : k2;
        return k1.join(k2);
      }
    }
    return AbsValue::top(w);
}

} // namespace

AbsValue
evalExpr(ExprRef e, const FactMap *refined, FactMap &memo)
{
    auto it = memo.find(e);
    if (it != memo.end())
        return it->second;

    static const AbsValue kNone; // width 0 placeholder for absent kids
    AbsValue kids[3] = {kNone, kNone, kNone};
    bool any_bottom = false;
    for (unsigned i = 0; i < e->arity(); ++i) {
        kids[i] = evalExpr(e->kid(i), refined, memo);
        any_bottom = any_bottom || kids[i].isBottom();
    }

    AbsValue v = any_bottom ? AbsValue::bottom(e->width())
                            : transferNode(e, kids[0], kids[1], kids[2]);
    if (refined) {
        auto f = refined->find(e);
        if (f != refined->end())
            v = v.meet(f->second);
    }
    memo.emplace(e, v);
    return v;
}

AbsValue
evalPure(ExprRef e)
{
    FactMap memo;
    return evalExpr(e, nullptr, memo);
}

} // namespace s2e::expr::absint
