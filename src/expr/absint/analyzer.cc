#include "expr/absint/analyzer.hh"

#include <algorithm>

namespace s2e::expr::absint {

namespace {

using u128 = unsigned __int128;

constexpr unsigned kMaxFixpointIters = 8;
constexpr unsigned kMaxRefineDepth = 32;
constexpr unsigned kRefineBudget = 4096; ///< nodes per constraint pass
constexpr size_t kFactsCacheCap = 8;

int64_t
minInt(unsigned w)
{
    return signExtend(1ULL << (w - 1), w);
}

int64_t
maxInt(unsigned w)
{
    return static_cast<int64_t>(lowMask(w) >> 1);
}

} // namespace

std::shared_ptr<Facts>
Analyzer::analyze(const std::vector<ExprRef> &constraints)
{
    // Exact hit (newest first: the current path's set is hottest).
    for (auto it = cache_.rbegin(); it != cache_.rend(); ++it) {
        if ((*it)->key == constraints) {
            if (factsReused_)
                (*factsReused_)++;
            return *it;
        }
    }
    // Longest cached strict prefix: paths grow by appending
    // constraints, so its facts seed this set's fixpoint.
    const Facts *base = nullptr;
    for (const auto &f : cache_) {
        if (f->bottom || f->key.size() >= constraints.size())
            continue;
        if (!std::equal(f->key.begin(), f->key.end(), constraints.begin()))
            continue;
        if (!base || f->key.size() > base->key.size())
            base = f.get();
    }

    auto facts = std::make_shared<Facts>();
    facts->key = constraints;
    facts->generation = nextGen_++;
    if (base) {
        facts->refined = base->refined;
        if (factsReused_)
            (*factsReused_)++;
    }
    if (factsComputed_)
        (*factsComputed_)++;
    runFixpoint(*facts);
    cache_.push_back(facts);
    if (cache_.size() > kFactsCacheCap)
        cache_.erase(cache_.begin());
    return facts;
}

void
Analyzer::runFixpoint(Facts &facts)
{
    for (unsigned iter = 0; iter < kMaxFixpointIters; ++iter) {
        if (fixpointIters_)
            (*fixpointIters_)++;
        bool changed = false;
        // Iteration-scoped eval memo: facts only narrow during the
        // pass, so a stale (wider) entry is sound, merely imprecise;
        // the next iteration re-evaluates with fresh facts.
        FactMap memo;
        for (ExprRef c : facts.key) {
            unsigned budget = kRefineBudget;
            refineNode(c, AbsValue::constant(1, 1), facts, memo, changed,
                       0, budget);
            if (facts.bottom)
                return;
        }
        if (!changed)
            return;
    }
}

void
Analyzer::refineNode(ExprRef e, const AbsValue &required, Facts &facts,
                     FactMap &memo, bool &changed, unsigned depth,
                     unsigned &budget)
{
    if (facts.bottom || budget == 0)
        return;
    --budget;
    if (e->isConstant()) {
        // A constant either satisfies an implied requirement or the
        // constraint set is contradictory.
        if (!required.contains(e->value()))
            facts.bottom = true;
        return;
    }

    auto it = facts.refined.find(e);
    AbsValue old =
        it != facts.refined.end() ? it->second : AbsValue::top(e->width());
    AbsValue nv = old.meet(required);
    if (nv.isBottom()) {
        facts.bottom = true;
        return;
    }
    if (nv.refines(old)) {
        facts.refined[e] = nv;
        changed = true;
    }
    if (depth >= kMaxRefineDepth)
        return;

    // Structural backward propagation: push the (narrowed) requirement
    // into operands wherever the operation is invertible enough. Every
    // derived requirement below is *implied* by `nv` holding at this
    // node, so a bottom meet further down correctly flags the whole
    // constraint set as contradictory.
    const AbsValue &R = nv;
    unsigned w = e->width();
    uint64_t mask = lowMask(w);
    auto ev = [&](ExprRef k) { return evalExpr(k, &facts.refined, memo); };
    auto rec = [&](ExprRef k, const AbsValue &r) {
        refineNode(k, r, facts, memo, changed, depth + 1, budget);
    };

    switch (e->kind()) {
      case Kind::And: {
        AbsValue ea = ev(e->kid(0));
        AbsValue eb = ev(e->kid(1));
        auto back = [&](const AbsValue &other) {
            AbsValue r = AbsValue::top(w);
            r.kb.ones = R.kb.ones;                   // result 1 => operand 1
            r.kb.zeros = R.kb.zeros & other.kb.ones; // 0 where other is 1
            r.umin = R.umin;                         // a & b <= a
            r.reduce();
            return r;
        };
        rec(e->kid(0), back(eb));
        rec(e->kid(1), back(ea));
        break;
      }
      case Kind::Or: {
        AbsValue ea = ev(e->kid(0));
        AbsValue eb = ev(e->kid(1));
        auto back = [&](const AbsValue &other) {
            AbsValue r = AbsValue::top(w);
            r.kb.zeros = R.kb.zeros;
            r.kb.ones = R.kb.ones & other.kb.zeros;
            r.umax = R.umax; // a <= a | b
            r.reduce();
            return r;
        };
        rec(e->kid(0), back(eb));
        rec(e->kid(1), back(ea));
        break;
      }
      case Kind::Xor: {
        AbsValue ea = ev(e->kid(0));
        AbsValue eb = ev(e->kid(1));
        auto back = [&](const AbsValue &other) {
            AbsValue r = AbsValue::top(w);
            uint64_t known =
                (R.kb.zeros | R.kb.ones) & (other.kb.zeros | other.kb.ones);
            uint64_t val = (R.kb.ones ^ other.kb.ones) & known;
            r.kb.ones = val;
            r.kb.zeros = known & ~val & mask;
            r.reduce();
            return r;
        };
        rec(e->kid(0), back(eb));
        rec(e->kid(1), back(ea));
        break;
      }
      case Kind::Not: {
        AbsValue r = AbsValue::top(w);
        r.kb.ones = R.kb.zeros;
        r.kb.zeros = R.kb.ones;
        r.umin = mask - R.umax;
        r.umax = mask - R.umin;
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::Neg: {
        AbsValue r = AbsValue::top(w);
        if (R.umin > 0) { // 0 excluded: x = 2^w - R, monotone reversed
            r.umin = mask - R.umax + 1;
            r.umax = mask - R.umin + 1;
        } else if (R.umax == 0) {
            r = AbsValue::constant(0, w);
        }
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::Add: {
        AbsValue ea = ev(e->kid(0));
        AbsValue eb = ev(e->kid(1));
        auto shiftBack = [&](ExprRef kid, const AbsValue &other) {
            if (!other.isConstant())
                return;
            uint64_t c = other.constantValue();
            if (c == 0) {
                rec(kid, R);
                return;
            }
            // kid = R - c: contiguous unless the interval straddles c.
            AbsValue r = AbsValue::top(w);
            if (R.umin >= c) {
                r.umin = R.umin - c;
                r.umax = R.umax - c;
            } else if (R.umax < c) {
                r.umin = truncate(R.umin - c, w);
                r.umax = truncate(R.umax - c, w);
            } else {
                return; // preimage wraps: no contiguous bound
            }
            r.reduce();
            rec(kid, r);
        };
        shiftBack(e->kid(0), eb);
        shiftBack(e->kid(1), ea);
        break;
      }
      case Kind::Sub: {
        AbsValue ea = ev(e->kid(0));
        AbsValue eb = ev(e->kid(1));
        if (eb.isConstant()) { // kid0 = R + c
            uint64_t c = eb.constantValue();
            u128 lo = static_cast<u128>(R.umin) + c;
            u128 hi = static_cast<u128>(R.umax) + c;
            AbsValue r = AbsValue::top(w);
            if (hi <= mask) {
                r.umin = static_cast<uint64_t>(lo);
                r.umax = static_cast<uint64_t>(hi);
            } else if (lo > mask) {
                r.umin = truncate(static_cast<uint64_t>(lo), w);
                r.umax = truncate(static_cast<uint64_t>(hi), w);
            } else {
                r = AbsValue::top(w); // straddles the wrap
            }
            r.reduce();
            rec(e->kid(0), r);
        }
        if (ea.isConstant()) { // kid1 = c - R, monotone reversed
            uint64_t c = ea.constantValue();
            AbsValue r = AbsValue::top(w);
            if (c >= R.umax) {
                r.umin = c - R.umax;
                r.umax = c - R.umin;
            } else if (c < R.umin) {
                r.umin = truncate(c - R.umax, w);
                r.umax = truncate(c - R.umin, w);
            }
            r.reduce();
            rec(e->kid(1), r);
        }
        break;
      }
      case Kind::Eq: {
        if (!R.isConstant())
            break;
        if (R.constantValue() == 1) { // both sides share their values
            AbsValue ea = ev(e->kid(0));
            AbsValue eb = ev(e->kid(1));
            rec(e->kid(0), eb);
            rec(e->kid(1), ea);
        }
        break;
      }
      case Kind::Ult:
      case Kind::Ule:
      case Kind::Slt:
      case Kind::Sle: {
        if (!R.isConstant())
            break;
        bool truth = R.constantValue() == 1;
        ExprRef a = e->kid(0);
        ExprRef b = e->kid(1);
        AbsValue ea = ev(a);
        AbsValue eb = ev(b);
        unsigned kw = a->width();
        uint64_t kmask = lowMask(kw);
        switch (e->kind()) {
          case Kind::Ult:
            if (truth) { // a < b
                if (eb.umax == 0 || ea.umin == kmask) {
                    facts.bottom = true;
                    break;
                }
                rec(a, AbsValue::range(0, eb.umax - 1, kw));
                rec(b, AbsValue::range(ea.umin + 1, kmask, kw));
            } else { // a >= b
                rec(a, AbsValue::range(eb.umin, kmask, kw));
                rec(b, AbsValue::range(0, ea.umax, kw));
            }
            break;
          case Kind::Ule:
            if (truth) { // a <= b
                rec(a, AbsValue::range(0, eb.umax, kw));
                rec(b, AbsValue::range(ea.umin, kmask, kw));
            } else { // a > b
                if (ea.umax == 0 || eb.umin == kmask) {
                    facts.bottom = true;
                    break;
                }
                rec(a, AbsValue::range(eb.umin + 1, kmask, kw));
                rec(b, AbsValue::range(0, ea.umax - 1, kw));
            }
            break;
          case Kind::Slt:
            if (truth) { // a <s b
                if (eb.smax == minInt(kw) || ea.smin == maxInt(kw)) {
                    facts.bottom = true;
                    break;
                }
                rec(a, AbsValue::signedRange(minInt(kw), eb.smax - 1, kw));
                rec(b, AbsValue::signedRange(ea.smin + 1, maxInt(kw), kw));
            } else { // a >=s b
                rec(a, AbsValue::signedRange(eb.smin, maxInt(kw), kw));
                rec(b, AbsValue::signedRange(minInt(kw), ea.smax, kw));
            }
            break;
          default: // Sle
            if (truth) { // a <=s b
                rec(a, AbsValue::signedRange(minInt(kw), eb.smax, kw));
                rec(b, AbsValue::signedRange(ea.smin, maxInt(kw), kw));
            } else { // a >s b
                if (ea.smax == minInt(kw) || eb.smin == maxInt(kw)) {
                    facts.bottom = true;
                    break;
                }
                rec(a, AbsValue::signedRange(eb.smin + 1, maxInt(kw), kw));
                rec(b, AbsValue::signedRange(minInt(kw), ea.smax - 1, kw));
            }
            break;
        }
        break;
      }
      case Kind::ZExt: {
        unsigned iw = e->kid(0)->width();
        if (R.kb.ones & ~lowMask(iw)) {
            facts.bottom = true; // a high bit required 1 can't happen
            break;
        }
        AbsValue r = AbsValue::top(iw);
        r.kb.ones = R.kb.ones & lowMask(iw);
        r.kb.zeros = R.kb.zeros & lowMask(iw);
        r.umin = R.umin;
        r.umax = std::min(R.umax, lowMask(iw));
        if (r.umin > r.umax) {
            facts.bottom = true;
            break;
        }
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::SExt: {
        unsigned iw = e->kid(0)->width();
        if (R.smin > maxInt(iw) || R.smax < minInt(iw)) {
            facts.bottom = true;
            break;
        }
        AbsValue r = AbsValue::top(iw);
        r.kb.ones = R.kb.ones & lowMask(iw);
        r.kb.zeros = R.kb.zeros & lowMask(iw);
        r.smin = std::max(R.smin, minInt(iw));
        r.smax = std::min(R.smax, maxInt(iw));
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::Extract: {
        unsigned off = e->aux();
        unsigned aw = e->kid(0)->width();
        AbsValue r = AbsValue::top(aw);
        r.kb.ones = R.kb.ones << off;
        r.kb.zeros = R.kb.zeros << off;
        if (off + w == aw) { // top slice is monotone in the value
            r.umin = R.umin << off;
            r.umax = (R.umax << off) | lowMask(off);
        }
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::Concat: {
        unsigned lw = e->kid(1)->width();
        AbsValue rh = AbsValue::top(e->kid(0)->width());
        rh.kb.ones = R.kb.ones >> lw;
        rh.kb.zeros = R.kb.zeros >> lw;
        rh.umin = R.umin >> lw;
        rh.umax = R.umax >> lw;
        rh.reduce();
        rec(e->kid(0), rh);
        AbsValue rl = AbsValue::top(lw);
        rl.kb.ones = R.kb.ones & lowMask(lw);
        rl.kb.zeros = R.kb.zeros & lowMask(lw);
        rl.reduce();
        rec(e->kid(1), rl);
        break;
      }
      case Kind::Shl: {
        AbsValue eb = ev(e->kid(1));
        if (!eb.isConstant())
            break;
        uint64_t s = eb.constantValue();
        if (s >= w)
            break; // result is constant 0; operand unconstrained
        AbsValue r = AbsValue::top(w);
        r.kb.ones = (R.kb.ones >> s) & lowMask(w - s);
        r.kb.zeros = (R.kb.zeros >> s) & lowMask(w - s);
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::LShr: {
        AbsValue eb = ev(e->kid(1));
        if (!eb.isConstant())
            break;
        uint64_t s = eb.constantValue();
        if (s >= w)
            break;
        uint64_t max_r = mask >> s;
        if (R.umin > max_r) {
            facts.bottom = true; // required more than a >> s can be
            break;
        }
        AbsValue r = AbsValue::top(w);
        r.kb.ones = (R.kb.ones & lowMask(w - s)) << s;
        r.kb.zeros = (R.kb.zeros & lowMask(w - s)) << s;
        r.umin = R.umin << s;
        r.umax = (std::min(R.umax, max_r) << s) | lowMask(s);
        r.reduce();
        rec(e->kid(0), r);
        break;
      }
      case Kind::Ite: {
        AbsValue ec = ev(e->kid(0));
        if (ec.isConstant()) {
            rec(e->kid(ec.constantValue() ? 1 : 2), R);
            break;
        }
        // The requirement can rule a branch out entirely, deciding
        // the condition (and if it rules out both, the meet of the
        // two condition requirements flags bottom).
        if (ev(e->kid(1)).meet(R).isBottom())
            rec(e->kid(0), AbsValue::constant(0, 1));
        if (ev(e->kid(2)).meet(R).isBottom())
            rec(e->kid(0), AbsValue::constant(1, 1));
        break;
      }
      default:
        break; // Variable, Mul, divisions, AShr: fact recorded above
    }
}

} // namespace s2e::expr::absint
