#include "expr/simplify.hh"

#include <unordered_map>

namespace s2e::expr {

namespace {

/** Known-bits transfer for addition: low bits are known up to the
 *  first position where a carry becomes uncertain. */
KnownBits
knownAdd(const KnownBits &a, const KnownBits &b, unsigned width)
{
    KnownBits out;
    unsigned carry_known = 1; // carry into bit 0 is known 0
    unsigned carry = 0;
    for (unsigned i = 0; i < width && carry_known; ++i) {
        bool a_known = ((a.zeros | a.ones) >> i) & 1;
        bool b_known = ((b.zeros | b.ones) >> i) & 1;
        if (!a_known || !b_known)
            break;
        unsigned abit = (a.ones >> i) & 1;
        unsigned bbit = (b.ones >> i) & 1;
        unsigned sum = abit + bbit + carry;
        if (sum & 1)
            out.ones |= 1ULL << i;
        else
            out.zeros |= 1ULL << i;
        carry = sum >> 1;
    }
    return out;
}

KnownBits
knownBitsRec(ExprRef e, std::unordered_map<ExprRef, KnownBits> &memo)
{
    auto it = memo.find(e);
    if (it != memo.end())
        return it->second;

    unsigned w = e->width();
    uint64_t mask = lowMask(w);
    KnownBits out = KnownBits::unknown();

    switch (e->kind()) {
      case Kind::Constant:
        out = KnownBits::constant(e->value(), w);
        break;
      case Kind::Variable:
        break;
      case Kind::And: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        KnownBits b = knownBitsRec(e->kid(1), memo);
        out.ones = a.ones & b.ones;
        out.zeros = (a.zeros | b.zeros) & mask;
        break;
      }
      case Kind::Or: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        KnownBits b = knownBitsRec(e->kid(1), memo);
        out.ones = a.ones | b.ones;
        out.zeros = a.zeros & b.zeros;
        break;
      }
      case Kind::Xor: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        KnownBits b = knownBitsRec(e->kid(1), memo);
        uint64_t both = (a.zeros | a.ones) & (b.zeros | b.ones);
        uint64_t v = a.ones ^ b.ones;
        out.ones = v & both;
        out.zeros = ~v & both & mask;
        break;
      }
      case Kind::Not: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        out.ones = a.zeros;
        out.zeros = a.ones;
        break;
      }
      case Kind::Shl: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            if (s >= w) {
                out = KnownBits::constant(0, w);
            } else {
                KnownBits a = knownBitsRec(e->kid(0), memo);
                out.ones = (a.ones << s) & mask;
                out.zeros = ((a.zeros << s) | lowMask(s)) & mask;
            }
        }
        break;
      }
      case Kind::LShr: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            if (s >= w) {
                out = KnownBits::constant(0, w);
            } else {
                KnownBits a = knownBitsRec(e->kid(0), memo);
                out.ones = a.ones >> s;
                out.zeros =
                    ((a.zeros >> s) | (~(mask >> s) & mask)) & mask;
            }
        }
        break;
      }
      case Kind::AShr: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            KnownBits a = knownBitsRec(e->kid(0), memo);
            if (s >= w)
                s = w - 1;
            out.ones = a.ones >> s;
            out.zeros = (a.zeros >> s) & mask;
            uint64_t fill = (~(mask >> s)) & mask;
            bool sign_known_one = (a.ones >> (w - 1)) & 1;
            bool sign_known_zero = (a.zeros >> (w - 1)) & 1;
            if (sign_known_one)
                out.ones |= fill;
            else if (sign_known_zero)
                out.zeros |= fill;
            break;
        }
        break;
      }
      case Kind::Concat: {
        KnownBits hi = knownBitsRec(e->kid(0), memo);
        KnownBits lo = knownBitsRec(e->kid(1), memo);
        unsigned lw = e->kid(1)->width();
        out.ones = (hi.ones << lw) | lo.ones;
        out.zeros = (hi.zeros << lw) | lo.zeros;
        break;
      }
      case Kind::Extract: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        out.ones = (a.ones >> e->aux()) & mask;
        out.zeros = (a.zeros >> e->aux()) & mask;
        break;
      }
      case Kind::ZExt: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        unsigned iw = e->kid(0)->width();
        out.ones = a.ones;
        out.zeros = a.zeros | (mask & ~lowMask(iw));
        break;
      }
      case Kind::SExt: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        unsigned iw = e->kid(0)->width();
        out.ones = a.ones;
        out.zeros = a.zeros;
        uint64_t fill = mask & ~lowMask(iw);
        if ((a.ones >> (iw - 1)) & 1)
            out.ones |= fill;
        else if ((a.zeros >> (iw - 1)) & 1)
            out.zeros |= fill;
        break;
      }
      case Kind::Add: {
        KnownBits a = knownBitsRec(e->kid(0), memo);
        KnownBits b = knownBitsRec(e->kid(1), memo);
        out = knownAdd(a, b, w);
        break;
      }
      case Kind::Ite: {
        KnownBits c = knownBitsRec(e->kid(0), memo);
        if (c.allKnown(1)) {
            out = knownBitsRec(e->kid(c.value() ? 1 : 2), memo);
        } else {
            KnownBits a = knownBitsRec(e->kid(1), memo);
            KnownBits b = knownBitsRec(e->kid(2), memo);
            out.ones = a.ones & b.ones;
            out.zeros = a.zeros & b.zeros;
        }
        break;
      }
      case Kind::Eq: {
        // If the operands have contradictory known bits, the equality
        // is statically false.
        KnownBits a = knownBitsRec(e->kid(0), memo);
        KnownBits b = knownBitsRec(e->kid(1), memo);
        if ((a.ones & b.zeros) || (a.zeros & b.ones))
            out = KnownBits::constant(0, 1);
        break;
      }
      default:
        break; // unknown
    }

    S2E_ASSERT((out.zeros & out.ones) == 0, "inconsistent known bits");
    memo[e] = out;
    return out;
}

/** Highest set bit position + 1 (i.e., number of live low bits). */
unsigned
liveWidth(uint64_t demanded)
{
    return demanded == 0 ? 0 : 64 - __builtin_clzll(demanded);
}

} // namespace

KnownBits
knownBits(ExprRef e)
{
    std::unordered_map<ExprRef, KnownBits> memo;
    return knownBitsRec(e, memo);
}

ExprRef
Simplifier::simplify(ExprRef e)
{
    stats_.nodesIn += e->nodeCount();
    ExprRef out = simplifyDemanded(e, lowMask(e->width()));
    stats_.nodesOut += out->nodeCount();
    return out;
}

ExprRef
Simplifier::simplifyDemanded(ExprRef e, uint64_t demanded)
{
    demanded &= lowMask(e->width());
    if (e->isConstant())
        return e;
    if (demanded == 0)
        return builder_.constant(0, e->width());

    Key key{e, demanded};
    auto it = memo_.find(key);
    if (it != memo_.end())
        return it->second;

    ExprBuilder &b = builder_;
    unsigned w = e->width();
    ExprRef out = e;

    switch (e->kind()) {
      case Kind::And: {
        ExprRef rhs = e->kid(1);
        if (rhs->isConstant()) {
            if ((rhs->value() & demanded) == demanded) {
                // Mask keeps every demanded bit: drop the And.
                stats_.opsDropped++;
                out = simplifyDemanded(e->kid(0), demanded);
                break;
            }
            ExprRef a =
                simplifyDemanded(e->kid(0), demanded & rhs->value());
            out = b.bAnd(a, rhs);
            break;
        }
        ExprRef a = simplifyDemanded(e->kid(0), demanded);
        ExprRef c = simplifyDemanded(e->kid(1), demanded);
        out = b.bAnd(a, c);
        break;
      }
      case Kind::Or: {
        ExprRef rhs = e->kid(1);
        if (rhs->isConstant()) {
            if ((rhs->value() & demanded) == 0) {
                stats_.opsDropped++;
                out = simplifyDemanded(e->kid(0), demanded);
                break;
            }
            ExprRef a =
                simplifyDemanded(e->kid(0), demanded & ~rhs->value());
            out = b.bOr(a, rhs);
            break;
        }
        ExprRef a = simplifyDemanded(e->kid(0), demanded);
        ExprRef c = simplifyDemanded(e->kid(1), demanded);
        out = b.bOr(a, c);
        break;
      }
      case Kind::Xor: {
        ExprRef rhs = e->kid(1);
        if (rhs->isConstant() && (rhs->value() & demanded) == 0) {
            stats_.opsDropped++;
            out = simplifyDemanded(e->kid(0), demanded);
            break;
        }
        ExprRef a = simplifyDemanded(e->kid(0), demanded);
        ExprRef c = simplifyDemanded(e->kid(1), demanded);
        out = b.bXor(a, c);
        break;
      }
      case Kind::Not:
        out = b.bNot(simplifyDemanded(e->kid(0), demanded));
        break;
      case Kind::Shl: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            if (s < w) {
                ExprRef a = simplifyDemanded(e->kid(0), demanded >> s);
                out = b.shl(a, e->kid(1));
                break;
            }
        }
        goto generic;
      }
      case Kind::LShr: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            if (s < w) {
                ExprRef a = simplifyDemanded(
                    e->kid(0), (demanded << s) & lowMask(w));
                out = b.lshr(a, e->kid(1));
                break;
            }
        }
        goto generic;
      }
      case Kind::Extract: {
        ExprRef a = simplifyDemanded(e->kid(0), demanded << e->aux());
        out = b.extract(a, e->aux(), w);
        break;
      }
      case Kind::ZExt: {
        unsigned iw = e->kid(0)->width();
        ExprRef a = simplifyDemanded(e->kid(0), demanded & lowMask(iw));
        out = b.zext(a, w);
        break;
      }
      case Kind::Concat: {
        unsigned lw = e->kid(1)->width();
        ExprRef lo = simplifyDemanded(e->kid(1), demanded & lowMask(lw));
        ExprRef hi = simplifyDemanded(e->kid(0), demanded >> lw);
        out = b.concat(hi, lo);
        break;
      }
      case Kind::Add:
      case Kind::Sub: {
        // Carries only propagate upward: bits above the highest
        // demanded bit are irrelevant in the operands.
        uint64_t need = lowMask(liveWidth(demanded));
        ExprRef a = simplifyDemanded(e->kid(0), need);
        ExprRef c = simplifyDemanded(e->kid(1), need);
        out = e->kind() == Kind::Add ? b.add(a, c) : b.sub(a, c);
        break;
      }
      case Kind::Ite: {
        ExprRef cond = simplifyDemanded(e->kid(0), 1);
        ExprRef t = simplifyDemanded(e->kid(1), demanded);
        ExprRef f = simplifyDemanded(e->kid(2), demanded);
        out = b.ite(cond, t, f);
        break;
      }
      case Kind::Eq:
      case Kind::Ult:
      case Kind::Ule:
      case Kind::Slt:
      case Kind::Sle: {
        // Comparisons demand every operand bit.
        uint64_t full = lowMask(e->kid(0)->width());
        ExprRef a = simplifyDemanded(e->kid(0), full);
        ExprRef c = simplifyDemanded(e->kid(1), full);
        switch (e->kind()) {
          case Kind::Eq: out = b.eq(a, c); break;
          case Kind::Ult: out = b.ult(a, c); break;
          case Kind::Ule: out = b.ule(a, c); break;
          case Kind::Slt: out = b.slt(a, c); break;
          default: out = b.sle(a, c); break;
        }
        break;
      }
      generic:
      default: {
        // Generic: simplify children with full demand.
        if (e->arity() == 2) {
            ExprRef a = simplifyDemanded(e->kid(0),
                                         lowMask(e->kid(0)->width()));
            ExprRef c = simplifyDemanded(e->kid(1),
                                         lowMask(e->kid(1)->width()));
            if (a != e->kid(0) || c != e->kid(1)) {
                switch (e->kind()) {
                  case Kind::Mul: out = b.mul(a, c); break;
                  case Kind::UDiv: out = b.udiv(a, c); break;
                  case Kind::SDiv: out = b.sdiv(a, c); break;
                  case Kind::URem: out = b.urem(a, c); break;
                  case Kind::SRem: out = b.srem(a, c); break;
                  case Kind::Shl: out = b.shl(a, c); break;
                  case Kind::LShr: out = b.lshr(a, c); break;
                  case Kind::AShr: out = b.ashr(a, c); break;
                  default: break;
                }
            }
        } else if (e->kind() == Kind::SExt) {
            ExprRef a = simplifyDemanded(e->kid(0),
                                         lowMask(e->kid(0)->width()));
            out = b.sext(a, w);
        } else if (e->kind() == Kind::Neg) {
            uint64_t need = lowMask(liveWidth(demanded));
            out = b.neg(simplifyDemanded(e->kid(0), need));
        }
        break;
      }
    }

    // Known-bits collapse: if every demanded bit of the result is
    // statically known and the rest are not demanded, fold to constant.
    if (!out->isConstant()) {
        KnownBits kb = knownBits(out);
        if ((demanded & ~(kb.zeros | kb.ones)) == 0 &&
            demanded == lowMask(out->width())) {
            stats_.constantsFolded++;
            out = b.constant(kb.ones, out->width());
        }
    }

    memo_[key] = out;
    return out;
}

} // namespace s2e::expr
