#include "expr/simplify.hh"

#include <unordered_map>

#include "expr/absint/analyzer.hh"

namespace s2e::expr {

namespace {

/** Highest set bit position + 1 (i.e., number of live low bits). */
unsigned
liveWidth(uint64_t demanded)
{
    return demanded == 0 ? 0 : 64 - __builtin_clzll(demanded);
}

} // namespace

KnownBits
knownBits(ExprRef e)
{
    absint::FactMap memo;
    return absint::evalExpr(e, nullptr, memo).kb;
}

void
Simplifier::setFacts(const absint::Facts *facts)
{
    uint64_t gen = facts ? facts->generation : 0;
    if (gen != factsGen_) {
        factsAbs_.clear();
        factsMemo_.clear();
        factsGen_ = gen;
    }
    facts_ = facts;
}

ExprRef
Simplifier::simplify(ExprRef e)
{
    stats_.nodesIn += e->nodeCount();
    ExprRef out = simplifyDemanded(e, lowMask(e->width()));
    stats_.nodesOut += out->nodeCount();
    return out;
}

ExprRef
Simplifier::simplifyDemanded(ExprRef e, uint64_t demanded)
{
    demanded &= lowMask(e->width());
    if (e->isConstant())
        return e;
    if (demanded == 0)
        return builder_.constant(0, e->width());

    Key key{e, demanded};
    auto &memo = facts_ ? factsMemo_ : memo_;
    auto it = memo.find(key);
    if (it != memo.end())
        return it->second;

    ExprBuilder &b = builder_;
    unsigned w = e->width();
    ExprRef out = e;

    switch (e->kind()) {
      case Kind::And: {
        ExprRef rhs = e->kid(1);
        if (rhs->isConstant()) {
            if ((rhs->value() & demanded) == demanded) {
                // Mask keeps every demanded bit: drop the And.
                stats_.opsDropped++;
                out = simplifyDemanded(e->kid(0), demanded);
                break;
            }
            ExprRef a =
                simplifyDemanded(e->kid(0), demanded & rhs->value());
            out = b.bAnd(a, rhs);
            break;
        }
        ExprRef a = simplifyDemanded(e->kid(0), demanded);
        ExprRef c = simplifyDemanded(e->kid(1), demanded);
        out = b.bAnd(a, c);
        break;
      }
      case Kind::Or: {
        ExprRef rhs = e->kid(1);
        if (rhs->isConstant()) {
            if ((rhs->value() & demanded) == 0) {
                stats_.opsDropped++;
                out = simplifyDemanded(e->kid(0), demanded);
                break;
            }
            ExprRef a =
                simplifyDemanded(e->kid(0), demanded & ~rhs->value());
            out = b.bOr(a, rhs);
            break;
        }
        ExprRef a = simplifyDemanded(e->kid(0), demanded);
        ExprRef c = simplifyDemanded(e->kid(1), demanded);
        out = b.bOr(a, c);
        break;
      }
      case Kind::Xor: {
        ExprRef rhs = e->kid(1);
        if (rhs->isConstant() && (rhs->value() & demanded) == 0) {
            stats_.opsDropped++;
            out = simplifyDemanded(e->kid(0), demanded);
            break;
        }
        ExprRef a = simplifyDemanded(e->kid(0), demanded);
        ExprRef c = simplifyDemanded(e->kid(1), demanded);
        out = b.bXor(a, c);
        break;
      }
      case Kind::Not:
        out = b.bNot(simplifyDemanded(e->kid(0), demanded));
        break;
      case Kind::Shl: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            if (s < w) {
                ExprRef a = simplifyDemanded(e->kid(0), demanded >> s);
                out = b.shl(a, e->kid(1));
                break;
            }
        }
        goto generic;
      }
      case Kind::LShr: {
        if (e->kid(1)->isConstant()) {
            uint64_t s = e->kid(1)->value();
            if (s < w) {
                ExprRef a = simplifyDemanded(
                    e->kid(0), (demanded << s) & lowMask(w));
                out = b.lshr(a, e->kid(1));
                break;
            }
        }
        goto generic;
      }
      case Kind::Extract: {
        ExprRef a = simplifyDemanded(e->kid(0), demanded << e->aux());
        out = b.extract(a, e->aux(), w);
        break;
      }
      case Kind::ZExt: {
        unsigned iw = e->kid(0)->width();
        ExprRef a = simplifyDemanded(e->kid(0), demanded & lowMask(iw));
        out = b.zext(a, w);
        break;
      }
      case Kind::Concat: {
        unsigned lw = e->kid(1)->width();
        ExprRef lo = simplifyDemanded(e->kid(1), demanded & lowMask(lw));
        ExprRef hi = simplifyDemanded(e->kid(0), demanded >> lw);
        out = b.concat(hi, lo);
        break;
      }
      case Kind::Add:
      case Kind::Sub: {
        // Carries only propagate upward: bits above the highest
        // demanded bit are irrelevant in the operands.
        uint64_t need = lowMask(liveWidth(demanded));
        ExprRef a = simplifyDemanded(e->kid(0), need);
        ExprRef c = simplifyDemanded(e->kid(1), need);
        out = e->kind() == Kind::Add ? b.add(a, c) : b.sub(a, c);
        break;
      }
      case Kind::Ite: {
        ExprRef cond = simplifyDemanded(e->kid(0), 1);
        ExprRef t = simplifyDemanded(e->kid(1), demanded);
        ExprRef f = simplifyDemanded(e->kid(2), demanded);
        out = b.ite(cond, t, f);
        break;
      }
      case Kind::Eq:
      case Kind::Ult:
      case Kind::Ule:
      case Kind::Slt:
      case Kind::Sle: {
        // Comparisons demand every operand bit.
        uint64_t full = lowMask(e->kid(0)->width());
        ExprRef a = simplifyDemanded(e->kid(0), full);
        ExprRef c = simplifyDemanded(e->kid(1), full);
        switch (e->kind()) {
          case Kind::Eq: out = b.eq(a, c); break;
          case Kind::Ult: out = b.ult(a, c); break;
          case Kind::Ule: out = b.ule(a, c); break;
          case Kind::Slt: out = b.slt(a, c); break;
          default: out = b.sle(a, c); break;
        }
        break;
      }
      generic:
      default: {
        // Generic: simplify children with full demand.
        if (e->arity() == 2) {
            ExprRef a = simplifyDemanded(e->kid(0),
                                         lowMask(e->kid(0)->width()));
            ExprRef c = simplifyDemanded(e->kid(1),
                                         lowMask(e->kid(1)->width()));
            if (a != e->kid(0) || c != e->kid(1)) {
                switch (e->kind()) {
                  case Kind::Mul: out = b.mul(a, c); break;
                  case Kind::UDiv: out = b.udiv(a, c); break;
                  case Kind::SDiv: out = b.sdiv(a, c); break;
                  case Kind::URem: out = b.urem(a, c); break;
                  case Kind::SRem: out = b.srem(a, c); break;
                  case Kind::Shl: out = b.shl(a, c); break;
                  case Kind::LShr: out = b.lshr(a, c); break;
                  case Kind::AShr: out = b.ashr(a, c); break;
                  default: break;
                }
            }
        } else if (e->kind() == Kind::SExt) {
            ExprRef a = simplifyDemanded(e->kid(0),
                                         lowMask(e->kid(0)->width()));
            out = b.sext(a, w);
        } else if (e->kind() == Kind::Neg) {
            uint64_t need = lowMask(liveWidth(demanded));
            out = b.neg(simplifyDemanded(e->kid(0), need));
        }
        break;
      }
    }

    // Known-bits collapse: if every demanded bit of the result is
    // statically known, fold to a constant (undemanded bits become 0,
    // which the demanded-bits contract allows). Whole-path facts, when
    // set, let constraint-derived knowledge participate.
    if (!out->isConstant()) {
        const absint::AbsValue v =
            facts_ ? absint::evalExpr(out, &facts_->refined, factsAbs_)
                   : absint::evalExpr(out, nullptr, pureAbs_);
        if (!v.isBottom() &&
            (demanded & ~(v.kb.zeros | v.kb.ones)) == 0) {
            stats_.constantsFolded++;
            out = b.constant(v.kb.ones & demanded, out->width());
        }
    }

    memo[key] = out;
    return out;
}

} // namespace s2e::expr
