/**
 * @file
 * Symbolic bitvector expression DAG.
 *
 * Expressions are immutable, hash-consed nodes owned by an ExprBuilder
 * arena; user code passes ExprRef (a plain pointer) around. Widths are
 * 1..64 bits. Boolean expressions are width-1 bitvectors.
 *
 * This replaces the KLEE expression library in the original S2E. The
 * x86-to-LLVM translation in S2E produced flag-extraction heavy
 * expressions (masks, shifts, bitfield tests); our DBT produces the
 * same shapes from gisa condition flags, which is what the §5 bitfield
 * simplifier targets.
 */

#ifndef S2E_EXPR_EXPR_HH
#define S2E_EXPR_EXPR_HH

#include <cstdint>
#include <string>

#include "support/logging.hh"

namespace s2e::expr {

/** Expression node kinds. */
enum class Kind : uint8_t {
    // Leaves
    Constant,
    Variable,

    // Arithmetic (operands and result share width)
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,

    // Bitwise
    And,
    Or,
    Xor,
    Not,
    Neg,

    // Shifts (shift amount has the same width as the value)
    Shl,
    LShr,
    AShr,

    // Width changers
    Concat,  ///< kid0 = high bits, kid1 = low bits
    Extract, ///< aux0 = bit offset; node width = extracted width
    ZExt,
    SExt,

    // Comparisons (result width 1)
    Eq,
    Ult,
    Ule,
    Slt,
    Sle,

    // Ternary select: kid0 (width 1) ? kid1 : kid2
    Ite,
};

/** Human-readable kind name. */
const char *kindName(Kind kind);

/** Number of child operands for a kind. */
unsigned kindArity(Kind kind);

class Expr;
using ExprRef = const Expr *;

/**
 * One immutable expression node. Construction goes through ExprBuilder
 * only, which guarantees structural uniqueness: two ExprRef compare
 * equal iff the expressions are structurally identical.
 */
class Expr
{
  public:
    Kind kind() const { return kind_; }
    unsigned width() const { return width_; }

    bool isConstant() const { return kind_ == Kind::Constant; }
    bool isVariable() const { return kind_ == Kind::Variable; }

    /** True if this is the width-1 constant 1 / 0. */
    bool isTrue() const { return isConstant() && width_ == 1 && value_ == 1; }
    bool isFalse() const { return isConstant() && width_ == 1 && value_ == 0; }

    /** Constant value (valid only for Constant nodes). */
    uint64_t
    value() const
    {
        S2E_ASSERT(isConstant(), "value() on non-constant");
        return value_;
    }

    /** Variable id / name (valid only for Variable nodes). */
    uint64_t
    varId() const
    {
        S2E_ASSERT(isVariable(), "varId() on non-variable");
        return value_;
    }
    const std::string &name() const;

    /** Extract offset, ZExt/SExt target width is width(). */
    unsigned
    aux() const
    {
        return aux_;
    }

    unsigned arity() const { return kindArity(kind_); }

    ExprRef
    kid(unsigned i) const
    {
        S2E_ASSERT(i < arity(), "kid index %u out of range", i);
        return kids_[i];
    }

    /** Stable hash computed at construction. */
    uint64_t hash() const { return hash_; }

    /** Total node count of the DAG rooted here (shared nodes counted once). */
    size_t nodeCount() const;

    /** Render as an s-expression, e.g. (add w32 x (const w32 4)). */
    std::string toString() const;

  private:
    friend class ExprBuilder;
    Expr() = default;

    Kind kind_ = Kind::Constant;
    unsigned width_ = 0;
    unsigned aux_ = 0;
    uint64_t value_ = 0; ///< constant value, or variable id
    ExprRef kids_[3] = {nullptr, nullptr, nullptr};
    uint64_t hash_ = 0;
    const std::string *name_ = nullptr; ///< variable name (interned)
};

} // namespace s2e::expr

#endif // S2E_EXPR_EXPR_HH
