/**
 * @file
 * Hash-consing expression builder with constant folding.
 *
 * The builder owns every Expr node it creates (arena allocation) and
 * guarantees structural uniqueness, so ExprRef pointer equality is
 * structural equality. Aggressive local folding keeps the DAG small
 * before the heavier bitfield simplifier (simplify.hh) runs.
 */

#ifndef S2E_EXPR_BUILDER_HH
#define S2E_EXPR_BUILDER_HH

#include <deque>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "expr/expr.hh"

namespace s2e::expr {

/**
 * Factory and owner of all expression nodes. One builder per engine,
 * shared by all exploration workers: the hash-cons table takes a
 * shared lock on the lookup hot path and an exclusive lock only to
 * insert a new node, so concurrent workers may intern expressions
 * freely. Returned ExprRefs are immutable and never invalidated.
 */
class ExprBuilder
{
  public:
    ExprBuilder();
    ExprBuilder(const ExprBuilder &) = delete;
    ExprBuilder &operator=(const ExprBuilder &) = delete;

    // --- Leaves -----------------------------------------------------

    /** Bitvector constant of the given width (value truncated). */
    ExprRef constant(uint64_t value, unsigned width);

    ExprRef trueExpr() { return true_; }
    ExprRef falseExpr() { return false_; }
    ExprRef boolean(bool b) { return b ? true_ : false_; }

    /**
     * Fresh symbolic variable; every call returns a distinct variable
     * even for the same base name (a counter is appended).
     */
    ExprRef freshVar(const std::string &base, unsigned width);

    /** Named variable; repeated calls with the same name return the
     *  same variable (widths must then agree). */
    ExprRef var(const std::string &name, unsigned width);

    /** Number of variables created so far. */
    uint64_t
    numVars() const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return nextVarId_;
    }

    /** Look up a variable node by id (panics if unknown). */
    ExprRef varById(uint64_t id) const;

    // --- Arithmetic / bitwise ---------------------------------------

    ExprRef add(ExprRef a, ExprRef b);
    ExprRef sub(ExprRef a, ExprRef b);
    ExprRef mul(ExprRef a, ExprRef b);
    ExprRef udiv(ExprRef a, ExprRef b);
    ExprRef sdiv(ExprRef a, ExprRef b);
    ExprRef urem(ExprRef a, ExprRef b);
    ExprRef srem(ExprRef a, ExprRef b);

    ExprRef bAnd(ExprRef a, ExprRef b);
    ExprRef bOr(ExprRef a, ExprRef b);
    ExprRef bXor(ExprRef a, ExprRef b);
    ExprRef bNot(ExprRef a);
    ExprRef neg(ExprRef a);

    ExprRef shl(ExprRef a, ExprRef amount);
    ExprRef lshr(ExprRef a, ExprRef amount);
    ExprRef ashr(ExprRef a, ExprRef amount);

    // --- Width changers ---------------------------------------------

    /** Concat(high, low): width = high.width + low.width (<= 64). */
    ExprRef concat(ExprRef high, ExprRef low);

    /** Extract `width` bits starting at bit `offset`. */
    ExprRef extract(ExprRef a, unsigned offset, unsigned width);

    ExprRef zext(ExprRef a, unsigned width);
    ExprRef sext(ExprRef a, unsigned width);

    // --- Comparisons (result width 1) -------------------------------

    ExprRef eq(ExprRef a, ExprRef b);
    ExprRef ne(ExprRef a, ExprRef b);
    ExprRef ult(ExprRef a, ExprRef b);
    ExprRef ule(ExprRef a, ExprRef b);
    ExprRef ugt(ExprRef a, ExprRef b) { return ult(b, a); }
    ExprRef uge(ExprRef a, ExprRef b) { return ule(b, a); }
    ExprRef slt(ExprRef a, ExprRef b);
    ExprRef sle(ExprRef a, ExprRef b);
    ExprRef sgt(ExprRef a, ExprRef b) { return slt(b, a); }
    ExprRef sge(ExprRef a, ExprRef b) { return sle(b, a); }

    // --- Control ----------------------------------------------------

    ExprRef ite(ExprRef cond, ExprRef thenE, ExprRef elseE);

    // --- Boolean (width-1) helpers ----------------------------------

    ExprRef land(ExprRef a, ExprRef b) { return bAnd(a, b); }
    ExprRef lor(ExprRef a, ExprRef b) { return bOr(a, b); }
    ExprRef lnot(ExprRef a) { return bNot(a); }
    ExprRef implies(ExprRef a, ExprRef b) { return lor(lnot(a), b); }

    // --- Introspection ----------------------------------------------

    /** Total distinct nodes allocated (constants included). */
    size_t
    numNodes() const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return arena_.size();
    }

    /** Constant-fold a binary op on raw values (exposed for tests). */
    static uint64_t foldBinary(Kind kind, uint64_t a, uint64_t b,
                               unsigned width);

    /**
     * Deterministic structural total order used for commutative
     * canonicalization: compares kind/width/aux, constant values,
     * variable names, then kids recursively — never node addresses,
     * which depend on interning (i.e., worker-scheduling) order.
     */
    static bool structLess(ExprRef a, ExprRef b);

  private:
    ExprRef intern(Kind kind, unsigned width, unsigned aux, uint64_t value,
                   ExprRef k0, ExprRef k1, ExprRef k2,
                   const std::string *name);
    ExprRef internLocked(Kind kind, unsigned width, unsigned aux,
                         uint64_t value, ExprRef k0, ExprRef k1, ExprRef k2,
                         const std::string *name);
    ExprRef binary(Kind kind, ExprRef a, ExprRef b);
    ExprRef compare(Kind kind, ExprRef a, ExprRef b);

    struct NodeHash {
        size_t operator()(const Expr *e) const;
    };
    struct NodeEq {
        bool operator()(const Expr *a, const Expr *b) const;
    };

    mutable std::shared_mutex mu_;
    std::deque<Expr> arena_;
    std::unordered_set<Expr *, NodeHash, NodeEq> table_;
    std::deque<std::string> names_;
    std::unordered_map<std::string, ExprRef> namedVars_;
    std::vector<ExprRef> varsById_;
    uint64_t nextVarId_ = 0;
    ExprRef true_ = nullptr;
    ExprRef false_ = nullptr;
};

} // namespace s2e::expr

#endif // S2E_EXPR_BUILDER_HH
