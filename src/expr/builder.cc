#include "expr/builder.hh"

#include "support/bitops.hh"
#include "support/logging.hh"

namespace s2e::expr {

namespace {

uint64_t
mix(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

uint64_t
computeHash(Kind kind, unsigned width, unsigned aux, uint64_t value,
            ExprRef k0, ExprRef k1, ExprRef k2)
{
    uint64_t h = static_cast<uint64_t>(kind) * 0x100000001b3ULL;
    h = mix(h, width);
    h = mix(h, aux);
    h = mix(h, value);
    h = mix(h, reinterpret_cast<uintptr_t>(k0));
    h = mix(h, reinterpret_cast<uintptr_t>(k1));
    h = mix(h, reinterpret_cast<uintptr_t>(k2));
    return h;
}

} // namespace

size_t
ExprBuilder::NodeHash::operator()(const Expr *e) const
{
    return e->hash();
}

bool
ExprBuilder::NodeEq::operator()(const Expr *a, const Expr *b) const
{
    if (a->kind() != b->kind() || a->width() != b->width() ||
        a->aux() != b->aux())
        return false;
    if (a->kind() == Kind::Constant)
        return a->value() == b->value();
    if (a->kind() == Kind::Variable)
        return a->varId() == b->varId();
    for (unsigned i = 0; i < a->arity(); ++i)
        if (a->kid(i) != b->kid(i))
            return false;
    return true;
}

ExprBuilder::ExprBuilder()
{
    false_ = constant(0, 1);
    true_ = constant(1, 1);
}

ExprRef
ExprBuilder::intern(Kind kind, unsigned width, unsigned aux, uint64_t value,
                    ExprRef k0, ExprRef k1, ExprRef k2,
                    const std::string *name)
{
    Expr probe;
    probe.kind_ = kind;
    probe.width_ = width;
    probe.aux_ = aux;
    probe.value_ = value;
    probe.kids_[0] = k0;
    probe.kids_[1] = k1;
    probe.kids_[2] = k2;
    probe.hash_ = computeHash(kind, width, aux, value, k0, k1, k2);
    probe.name_ = name;

    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = table_.find(&probe);
        if (it != table_.end())
            return *it;
    }

    std::unique_lock<std::shared_mutex> lock(mu_);
    // Another worker may have interned the node between the locks.
    auto it = table_.find(&probe);
    if (it != table_.end())
        return *it;

    arena_.push_back(probe);
    Expr *node = &arena_.back();
    table_.insert(node);
    return node;
}

/** intern() body for callers already holding mu_ exclusively. */
ExprRef
ExprBuilder::internLocked(Kind kind, unsigned width, unsigned aux,
                          uint64_t value, ExprRef k0, ExprRef k1, ExprRef k2,
                          const std::string *name)
{
    Expr probe;
    probe.kind_ = kind;
    probe.width_ = width;
    probe.aux_ = aux;
    probe.value_ = value;
    probe.kids_[0] = k0;
    probe.kids_[1] = k1;
    probe.kids_[2] = k2;
    probe.hash_ = computeHash(kind, width, aux, value, k0, k1, k2);
    probe.name_ = name;

    auto it = table_.find(&probe);
    if (it != table_.end())
        return *it;

    arena_.push_back(probe);
    Expr *node = &arena_.back();
    table_.insert(node);
    return node;
}

ExprRef
ExprBuilder::constant(uint64_t value, unsigned width)
{
    S2E_ASSERT(width >= 1 && width <= 64, "bad constant width %u", width);
    return intern(Kind::Constant, width, 0, truncate(value, width), nullptr,
                  nullptr, nullptr, nullptr);
}

ExprRef
ExprBuilder::freshVar(const std::string &base, unsigned width)
{
    S2E_ASSERT(width >= 1 && width <= 64, "bad variable width %u", width);
    std::unique_lock<std::shared_mutex> lock(mu_);
    uint64_t id = nextVarId_++;
    names_.push_back(strprintf("%s#%llu", base.c_str(),
                               static_cast<unsigned long long>(id)));
    ExprRef v = internLocked(Kind::Variable, width, 0, id, nullptr, nullptr,
                             nullptr, &names_.back());
    varsById_.push_back(v);
    return v;
}

ExprRef
ExprBuilder::var(const std::string &name, unsigned width)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = namedVars_.find(name);
    if (it != namedVars_.end()) {
        S2E_ASSERT(it->second->width() == width,
                   "variable %s redeclared with width %u (was %u)",
                   name.c_str(), width, it->second->width());
        return it->second;
    }
    S2E_ASSERT(width >= 1 && width <= 64, "bad variable width %u", width);
    uint64_t id = nextVarId_++;
    names_.push_back(name);
    ExprRef v = internLocked(Kind::Variable, width, 0, id, nullptr, nullptr,
                             nullptr, &names_.back());
    varsById_.push_back(v);
    namedVars_[name] = v;
    return v;
}

ExprRef
ExprBuilder::varById(uint64_t id) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    S2E_ASSERT(id < varsById_.size(), "unknown variable id %llu",
               static_cast<unsigned long long>(id));
    return varsById_[id];
}

bool
ExprBuilder::structLess(ExprRef a, ExprRef b)
{
    // Hash-consing guarantees structurally equal nodes share an
    // address, so equality short-circuits the recursion.
    if (a == b)
        return false;
    if (a->kind() != b->kind())
        return a->kind() < b->kind();
    if (a->width() != b->width())
        return a->width() < b->width();
    if (a->aux() != b->aux())
        return a->aux() < b->aux();
    if (a->kind() == Kind::Constant)
        return a->value() < b->value();
    if (a->kind() == Kind::Variable)
        return a->name() < b->name();
    for (unsigned i = 0; i < a->arity(); ++i) {
        if (a->kid(i) == b->kid(i))
            continue;
        return structLess(a->kid(i), b->kid(i));
    }
    return false;
}

uint64_t
ExprBuilder::foldBinary(Kind kind, uint64_t a, uint64_t b, unsigned width)
{
    uint64_t mask = lowMask(width);
    a &= mask;
    b &= mask;
    switch (kind) {
      case Kind::Add: return (a + b) & mask;
      case Kind::Sub: return (a - b) & mask;
      case Kind::Mul: return (a * b) & mask;
      case Kind::UDiv: return b == 0 ? mask : (a / b);
      case Kind::URem: return b == 0 ? a : (a % b);
      case Kind::SDiv: {
        // Division by zero yields all-ones, mirroring the solver's
        // total-function semantics.
        if (b == 0)
            return mask;
        int64_t sa = signExtend(a, width);
        int64_t sb = signExtend(b, width);
        if (sb == -1 && sa == signExtend(1ULL << (width - 1), width))
            return a; // INT_MIN / -1 overflows to INT_MIN
        return static_cast<uint64_t>(sa / sb) & mask;
      }
      case Kind::SRem: {
        if (b == 0)
            return a;
        int64_t sa = signExtend(a, width);
        int64_t sb = signExtend(b, width);
        if (sb == -1)
            return 0;
        return static_cast<uint64_t>(sa % sb) & mask;
      }
      case Kind::And: return a & b;
      case Kind::Or: return a | b;
      case Kind::Xor: return a ^ b;
      case Kind::Shl: return b >= width ? 0 : (a << b) & mask;
      case Kind::LShr: return b >= width ? 0 : (a >> b);
      case Kind::AShr: {
        uint64_t sign_fill = signBit(a, width) ? mask : 0;
        if (b >= width)
            return sign_fill;
        return ((a >> b) |
                (signBit(a, width) ? (mask << (width - b)) & mask : 0)) &
               mask;
      }
      case Kind::Eq: return a == b;
      case Kind::Ult: return a < b;
      case Kind::Ule: return a <= b;
      case Kind::Slt: return signExtend(a, width) < signExtend(b, width);
      case Kind::Sle: return signExtend(a, width) <= signExtend(b, width);
      default:
        panic("foldBinary: kind %s is not binary", kindName(kind));
    }
}

ExprRef
ExprBuilder::binary(Kind kind, ExprRef a, ExprRef b)
{
    S2E_ASSERT(a->width() == b->width(), "%s width mismatch %u vs %u",
               kindName(kind), a->width(), b->width());
    unsigned w = a->width();

    if (a->isConstant() && b->isConstant())
        return constant(foldBinary(kind, a->value(), b->value(), w), w);

    // Canonicalize commutative operand order for better hash-consing:
    // constants to the right, otherwise deterministic structural order
    // (address order would vary with worker scheduling).
    switch (kind) {
      case Kind::Add:
      case Kind::Mul:
      case Kind::And:
      case Kind::Or:
      case Kind::Xor:
        if (a->isConstant() || (!b->isConstant() && structLess(b, a)))
            std::swap(a, b);
        break;
      default:
        break;
    }

    uint64_t bval = b->isConstant() ? b->value() : 0;
    bool bconst = b->isConstant();
    uint64_t ones = lowMask(w);

    // Local algebraic identities.
    switch (kind) {
      case Kind::Add:
        if (bconst && bval == 0)
            return a;
        break;
      case Kind::Sub:
        if (bconst && bval == 0)
            return a;
        if (a == b)
            return constant(0, w);
        break;
      case Kind::Mul:
        if (bconst && bval == 0)
            return b;
        if (bconst && bval == 1)
            return a;
        break;
      case Kind::And:
        if (bconst && bval == 0)
            return b;
        if (bconst && bval == ones)
            return a;
        if (a == b)
            return a;
        break;
      case Kind::Or:
        if (bconst && bval == 0)
            return a;
        if (bconst && bval == ones)
            return b;
        if (a == b)
            return a;
        break;
      case Kind::Xor:
        if (bconst && bval == 0)
            return a;
        if (a == b)
            return constant(0, w);
        break;
      case Kind::Shl:
      case Kind::LShr:
      case Kind::AShr:
        if (bconst && bval == 0)
            return a;
        break;
      case Kind::UDiv:
        if (bconst && bval == 1)
            return a;
        break;
      default:
        break;
    }

    return intern(kind, w, 0, 0, a, b, nullptr, nullptr);
}

ExprRef
ExprBuilder::add(ExprRef a, ExprRef b)
{
    return binary(Kind::Add, a, b);
}
ExprRef
ExprBuilder::sub(ExprRef a, ExprRef b)
{
    return binary(Kind::Sub, a, b);
}
ExprRef
ExprBuilder::mul(ExprRef a, ExprRef b)
{
    return binary(Kind::Mul, a, b);
}
ExprRef
ExprBuilder::udiv(ExprRef a, ExprRef b)
{
    return binary(Kind::UDiv, a, b);
}
ExprRef
ExprBuilder::sdiv(ExprRef a, ExprRef b)
{
    return binary(Kind::SDiv, a, b);
}
ExprRef
ExprBuilder::urem(ExprRef a, ExprRef b)
{
    return binary(Kind::URem, a, b);
}
ExprRef
ExprBuilder::srem(ExprRef a, ExprRef b)
{
    return binary(Kind::SRem, a, b);
}
ExprRef
ExprBuilder::bAnd(ExprRef a, ExprRef b)
{
    return binary(Kind::And, a, b);
}
ExprRef
ExprBuilder::bOr(ExprRef a, ExprRef b)
{
    return binary(Kind::Or, a, b);
}
ExprRef
ExprBuilder::bXor(ExprRef a, ExprRef b)
{
    return binary(Kind::Xor, a, b);
}
ExprRef
ExprBuilder::shl(ExprRef a, ExprRef amount)
{
    return binary(Kind::Shl, a, amount);
}
ExprRef
ExprBuilder::lshr(ExprRef a, ExprRef amount)
{
    return binary(Kind::LShr, a, amount);
}
ExprRef
ExprBuilder::ashr(ExprRef a, ExprRef amount)
{
    return binary(Kind::AShr, a, amount);
}

ExprRef
ExprBuilder::bNot(ExprRef a)
{
    if (a->isConstant())
        return constant(~a->value(), a->width());
    if (a->kind() == Kind::Not)
        return a->kid(0);
    return intern(Kind::Not, a->width(), 0, 0, a, nullptr, nullptr, nullptr);
}

ExprRef
ExprBuilder::neg(ExprRef a)
{
    if (a->isConstant())
        return constant(0 - a->value(), a->width());
    if (a->kind() == Kind::Neg)
        return a->kid(0);
    return intern(Kind::Neg, a->width(), 0, 0, a, nullptr, nullptr, nullptr);
}

ExprRef
ExprBuilder::concat(ExprRef high, ExprRef low)
{
    unsigned w = high->width() + low->width();
    S2E_ASSERT(w <= 64, "concat width %u exceeds 64", w);
    if (high->isConstant() && low->isConstant())
        return constant((high->value() << low->width()) | low->value(), w);
    // concat(0, x) == zext(x)
    if (high->isConstant() && high->value() == 0)
        return zext(low, w);
    return intern(Kind::Concat, w, 0, 0, high, low, nullptr, nullptr);
}

ExprRef
ExprBuilder::extract(ExprRef a, unsigned offset, unsigned width)
{
    S2E_ASSERT(width >= 1 && offset + width <= a->width(),
               "extract [%u,+%u) out of w%u", offset, width, a->width());
    if (offset == 0 && width == a->width())
        return a;
    if (a->isConstant())
        return constant(a->value() >> offset, width);
    // Extract through Concat when fully contained in one side.
    if (a->kind() == Kind::Concat) {
        ExprRef high = a->kid(0);
        ExprRef low = a->kid(1);
        if (offset + width <= low->width())
            return extract(low, offset, width);
        if (offset >= low->width())
            return extract(high, offset - low->width(), width);
    }
    // Extract through ZExt/SExt when inside the original value.
    if (a->kind() == Kind::ZExt || a->kind() == Kind::SExt) {
        ExprRef inner = a->kid(0);
        if (offset + width <= inner->width())
            return extract(inner, offset, width);
        if (a->kind() == Kind::ZExt && offset >= inner->width())
            return constant(0, width);
    }
    // Extract of Extract composes.
    if (a->kind() == Kind::Extract)
        return extract(a->kid(0), a->aux() + offset, width);
    return intern(Kind::Extract, width, offset, 0, a, nullptr, nullptr,
                  nullptr);
}

ExprRef
ExprBuilder::zext(ExprRef a, unsigned width)
{
    S2E_ASSERT(width >= a->width() && width <= 64, "zext w%u -> w%u",
               a->width(), width);
    if (width == a->width())
        return a;
    if (a->isConstant())
        return constant(a->value(), width);
    if (a->kind() == Kind::ZExt)
        return zext(a->kid(0), width);
    return intern(Kind::ZExt, width, 0, 0, a, nullptr, nullptr, nullptr);
}

ExprRef
ExprBuilder::sext(ExprRef a, unsigned width)
{
    S2E_ASSERT(width >= a->width() && width <= 64, "sext w%u -> w%u",
               a->width(), width);
    if (width == a->width())
        return a;
    if (a->isConstant())
        return constant(
            static_cast<uint64_t>(signExtend(a->value(), a->width())),
            width);
    if (a->kind() == Kind::SExt)
        return sext(a->kid(0), width);
    return intern(Kind::SExt, width, 0, 0, a, nullptr, nullptr, nullptr);
}

ExprRef
ExprBuilder::compare(Kind kind, ExprRef a, ExprRef b)
{
    S2E_ASSERT(a->width() == b->width(), "%s width mismatch %u vs %u",
               kindName(kind), a->width(), b->width());
    if (a->isConstant() && b->isConstant())
        return boolean(
            foldBinary(kind, a->value(), b->value(), a->width()) != 0);
    if (a == b) {
        switch (kind) {
          case Kind::Eq:
          case Kind::Ule:
          case Kind::Sle:
            return true_;
          case Kind::Ult:
          case Kind::Slt:
            return false_;
          default:
            break;
        }
    }
    if (kind == Kind::Eq) {
        // Canonicalize constant to the right.
        if (a->isConstant())
            std::swap(a, b);
        // eq(x:w1, 1) == x ; eq(x:w1, 0) == not x
        if (a->width() == 1 && b->isConstant())
            return b->value() ? a : bNot(a);
        // eq(zext(x), c): compare at the narrow width (branch
        // conditions on widened flag bits fold back to the flag).
        if (a->kind() == Kind::ZExt && b->isConstant()) {
            unsigned iw = a->kid(0)->width();
            if (b->value() >> iw)
                return false_; // constant outside zext range
            return eq(a->kid(0), constant(b->value(), iw));
        }
        if (!a->isConstant() && !b->isConstant() && structLess(b, a))
            std::swap(a, b);
    }
    return intern(kind, 1, 0, 0, a, b, nullptr, nullptr);
}

ExprRef
ExprBuilder::eq(ExprRef a, ExprRef b)
{
    return compare(Kind::Eq, a, b);
}
ExprRef
ExprBuilder::ne(ExprRef a, ExprRef b)
{
    return bNot(eq(a, b));
}
ExprRef
ExprBuilder::ult(ExprRef a, ExprRef b)
{
    return compare(Kind::Ult, a, b);
}
ExprRef
ExprBuilder::ule(ExprRef a, ExprRef b)
{
    return compare(Kind::Ule, a, b);
}
ExprRef
ExprBuilder::slt(ExprRef a, ExprRef b)
{
    return compare(Kind::Slt, a, b);
}
ExprRef
ExprBuilder::sle(ExprRef a, ExprRef b)
{
    return compare(Kind::Sle, a, b);
}

ExprRef
ExprBuilder::ite(ExprRef cond, ExprRef thenE, ExprRef elseE)
{
    S2E_ASSERT(cond->width() == 1, "ite condition must be width 1");
    S2E_ASSERT(thenE->width() == elseE->width(), "ite arm width mismatch");
    if (cond->isConstant())
        return cond->value() ? thenE : elseE;
    if (thenE == elseE)
        return thenE;
    // ite(c, 1, 0) == c ; ite(c, 0, 1) == !c (width-1 arms)
    if (thenE->width() == 1 && thenE->isConstant() && elseE->isConstant()) {
        if (thenE->value() == 1 && elseE->value() == 0)
            return cond;
        if (thenE->value() == 0 && elseE->value() == 1)
            return bNot(cond);
    }
    return intern(Kind::Ite, thenE->width(), 0, 0, cond, thenE, elseE,
                  nullptr);
}

} // namespace s2e::expr
