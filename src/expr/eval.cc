#include "expr/eval.hh"

#include "expr/builder.hh"
#include "support/bitops.hh"

namespace s2e::expr {

namespace {

uint64_t
evalRec(ExprRef e, const Assignment &a,
        std::unordered_map<ExprRef, uint64_t> &memo)
{
    auto it = memo.find(e);
    if (it != memo.end())
        return it->second;

    uint64_t result = 0;
    switch (e->kind()) {
      case Kind::Constant:
        result = e->value();
        break;
      case Kind::Variable:
        result = truncate(a.lookup(e->varId()), e->width());
        break;
      case Kind::Not:
        result = truncate(~evalRec(e->kid(0), a, memo), e->width());
        break;
      case Kind::Neg:
        result = truncate(0 - evalRec(e->kid(0), a, memo), e->width());
        break;
      case Kind::Extract:
        result = truncate(evalRec(e->kid(0), a, memo) >> e->aux(),
                          e->width());
        break;
      case Kind::ZExt:
        result = evalRec(e->kid(0), a, memo);
        break;
      case Kind::SExt: {
        uint64_t v = evalRec(e->kid(0), a, memo);
        result = truncate(
            static_cast<uint64_t>(signExtend(v, e->kid(0)->width())),
            e->width());
        break;
      }
      case Kind::Concat: {
        uint64_t hi = evalRec(e->kid(0), a, memo);
        uint64_t lo = evalRec(e->kid(1), a, memo);
        result = (hi << e->kid(1)->width()) | lo;
        break;
      }
      case Kind::Ite:
        result = evalRec(e->kid(0), a, memo)
                     ? evalRec(e->kid(1), a, memo)
                     : evalRec(e->kid(2), a, memo);
        break;
      default: {
        uint64_t x = evalRec(e->kid(0), a, memo);
        uint64_t y = evalRec(e->kid(1), a, memo);
        // Comparisons operate at the operand width, not the result width.
        unsigned w = (e->width() == 1 && e->kid(0)->width() != 1)
                         ? e->kid(0)->width()
                         : e->width();
        switch (e->kind()) {
          case Kind::Eq:
          case Kind::Ult:
          case Kind::Ule:
          case Kind::Slt:
          case Kind::Sle:
            w = e->kid(0)->width();
            break;
          default:
            break;
        }
        result = ExprBuilder::foldBinary(e->kind(), x, y, w);
        break;
      }
    }
    memo[e] = result;
    return result;
}

} // namespace

uint64_t
evaluate(ExprRef e, const Assignment &assignment)
{
    std::unordered_map<ExprRef, uint64_t> memo;
    return evalRec(e, assignment, memo);
}

} // namespace s2e::expr
