/**
 * @file
 * Concrete evaluation of expressions under a variable assignment.
 * Used to validate solver models, to concretize symbolic values, and
 * by tests as a ground-truth oracle.
 */

#ifndef S2E_EXPR_EVAL_HH
#define S2E_EXPR_EVAL_HH

#include <cstdint>
#include <unordered_map>

#include "expr/expr.hh"

namespace s2e::expr {

/** Map from variable id to concrete value; absent variables read 0. */
class Assignment
{
  public:
    void
    set(ExprRef var, uint64_t value)
    {
        S2E_ASSERT(var->isVariable(), "Assignment::set on non-variable");
        values_[var->varId()] = value;
    }

    void setById(uint64_t id, uint64_t value) { values_[id] = value; }

    uint64_t
    lookup(uint64_t var_id) const
    {
        auto it = values_.find(var_id);
        return it == values_.end() ? 0 : it->second;
    }

    bool
    has(uint64_t var_id) const
    {
        return values_.count(var_id) != 0;
    }

    const std::unordered_map<uint64_t, uint64_t> &values() const
    {
        return values_;
    }

  private:
    std::unordered_map<uint64_t, uint64_t> values_;
};

/**
 * Evaluate an expression DAG to a concrete value (truncated to the
 * expression width). Shared nodes are evaluated once.
 */
uint64_t evaluate(ExprRef e, const Assignment &assignment);

/** Evaluate a width-1 expression as a boolean. */
inline bool
evaluateBool(ExprRef e, const Assignment &assignment)
{
    S2E_ASSERT(e->width() == 1, "evaluateBool on width-%u expr", e->width());
    return evaluate(e, assignment) != 0;
}

} // namespace s2e::expr

#endif // S2E_EXPR_EVAL_HH
