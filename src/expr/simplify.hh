/**
 * @file
 * Bitfield-theory expression simplifier (paper §5).
 *
 * Machine-code translation produces flag-extraction expressions full
 * of masks, shifts and bit tests. The simplifier runs two passes over
 * the DAG:
 *
 *  1. bottom-up *known bits*: propagate which individual bits of every
 *     subexpression are statically 0 or 1; fully-known subexpressions
 *     collapse to constants;
 *  2. top-down *demanded bits*: propagate which bits the consumers
 *     actually look at; operations that only affect ignored bits are
 *     removed.
 */

#ifndef S2E_EXPR_SIMPLIFY_HH
#define S2E_EXPR_SIMPLIFY_HH

#include "expr/absint/transfer.hh"
#include "expr/builder.hh"
#include "expr/expr.hh"
#include "support/bitops.hh"

namespace s2e::expr {

namespace absint {
struct Facts;
}

/**
 * Compute the known-bits lattice value for an expression. Exposed for
 * tests and for the solver's fast path (a constraint whose known bits
 * pin it to 0/1 needs no SAT call). Backed by the absint transfer
 * functions, so interval reasoning feeds bit facts too (a singleton
 * range pins every bit).
 */
KnownBits knownBits(ExprRef e);

/** Statistics from a simplification run. */
struct SimplifyStats {
    uint64_t nodesIn = 0;
    uint64_t nodesOut = 0;
    uint64_t constantsFolded = 0;
    uint64_t opsDropped = 0;
};

/**
 * Bitfield simplifier. Stateless apart from its builder reference and
 * a memo table; reuse one instance across queries for memo hits.
 */
class Simplifier
{
  public:
    explicit Simplifier(ExprBuilder &builder) : builder_(builder) {}

    /**
     * Simplify an expression. The result is equivalent on all bits
     * (the top-level demanded mask is the full width).
     */
    ExprRef simplify(ExprRef e);

    /**
     * Demanded-bits entry point: the result agrees with `e` on every
     * bit of `demanded` under every assignment; bits outside the mask
     * are unspecified. Exposed for the property-equivalence suite.
     */
    ExprRef
    simplifyDemandedBits(ExprRef e, uint64_t demanded)
    {
        return simplifyDemanded(e, demanded);
    }

    /**
     * Use whole-path absint facts for the known-bits collapse (nullptr
     * reverts to context-free). While facts are set, results are only
     * equivalent on assignments *satisfying the analyzed constraints*
     * — callers must restrict use to the query side of a satisfiability
     * check, never to the constraints themselves. The facts object
     * must outlive the simplify calls made under it.
     */
    void setFacts(const absint::Facts *facts);

    const SimplifyStats &stats() const { return stats_; }
    void resetStats() { stats_ = SimplifyStats(); }

  private:
    ExprRef simplifyDemanded(ExprRef e, uint64_t demanded);

    ExprBuilder &builder_;
    SimplifyStats stats_;
    const absint::Facts *facts_ = nullptr;
    absint::FactMap pureAbs_;  ///< context-free abstract-value cache
    absint::FactMap factsAbs_; ///< facts-scoped cache (per generation)
    uint64_t factsGen_ = 0;
    // Memo keyed by (expr, demanded mask).
    struct Key {
        ExprRef e;
        uint64_t demanded;
        bool operator==(const Key &o) const
        {
            return e == o.e && demanded == o.demanded;
        }
    };
    struct KeyHash {
        size_t
        operator()(const Key &k) const
        {
            return std::hash<const void *>()(k.e) ^
                   std::hash<uint64_t>()(k.demanded * 0x9e3779b97f4a7c15ULL);
        }
    };
    std::unordered_map<Key, ExprRef, KeyHash> memo_;
    // Separate memo while facts are active: facts-conditioned results
    // must never leak into (or out of) the context-free cache. Cleared
    // whenever the facts generation changes.
    std::unordered_map<Key, ExprRef, KeyHash> factsMemo_;
};

} // namespace s2e::expr

#endif // S2E_EXPR_SIMPLIFY_HH
