/**
 * @file
 * Bitfield-theory expression simplifier (paper §5).
 *
 * Machine-code translation produces flag-extraction expressions full
 * of masks, shifts and bit tests. The simplifier runs two passes over
 * the DAG:
 *
 *  1. bottom-up *known bits*: propagate which individual bits of every
 *     subexpression are statically 0 or 1; fully-known subexpressions
 *     collapse to constants;
 *  2. top-down *demanded bits*: propagate which bits the consumers
 *     actually look at; operations that only affect ignored bits are
 *     removed.
 */

#ifndef S2E_EXPR_SIMPLIFY_HH
#define S2E_EXPR_SIMPLIFY_HH

#include "expr/builder.hh"
#include "expr/expr.hh"
#include "support/bitops.hh"

namespace s2e::expr {

/**
 * Compute the known-bits lattice value for an expression. Exposed for
 * tests and for the solver's fast path (a constraint whose known bits
 * pin it to 0/1 needs no SAT call).
 */
KnownBits knownBits(ExprRef e);

/** Statistics from a simplification run. */
struct SimplifyStats {
    uint64_t nodesIn = 0;
    uint64_t nodesOut = 0;
    uint64_t constantsFolded = 0;
    uint64_t opsDropped = 0;
};

/**
 * Bitfield simplifier. Stateless apart from its builder reference and
 * a memo table; reuse one instance across queries for memo hits.
 */
class Simplifier
{
  public:
    explicit Simplifier(ExprBuilder &builder) : builder_(builder) {}

    /**
     * Simplify an expression. The result is equivalent on all bits
     * (the top-level demanded mask is the full width).
     */
    ExprRef simplify(ExprRef e);

    const SimplifyStats &stats() const { return stats_; }
    void resetStats() { stats_ = SimplifyStats(); }

  private:
    ExprRef simplifyDemanded(ExprRef e, uint64_t demanded);

    ExprBuilder &builder_;
    SimplifyStats stats_;
    // Memo keyed by (expr, demanded mask).
    struct Key {
        ExprRef e;
        uint64_t demanded;
        bool operator==(const Key &o) const
        {
            return e == o.e && demanded == o.demanded;
        }
    };
    struct KeyHash {
        size_t
        operator()(const Key &k) const
        {
            return std::hash<const void *>()(k.e) ^
                   std::hash<uint64_t>()(k.demanded * 0x9e3779b97f4a7c15ULL);
        }
    };
    std::unordered_map<Key, ExprRef, KeyHash> memo_;
};

} // namespace s2e::expr

#endif // S2E_EXPR_SIMPLIFY_HH
