/**
 * @file
 * Lightweight named-statistics registry. Engine components register
 * counters and timers here; benchmark harnesses snapshot and print
 * them (e.g., the solver-time fractions of Fig 9).
 *
 * Two access tiers: the string-keyed add()/get() API for cold paths,
 * and stable slot references (counterSlot/timerSlot) that hot paths
 * register once and then bump with a plain increment — no string
 * formatting and no map lookup per event. Slots stay valid for the
 * lifetime of the Stats object (std::map nodes do not move).
 */

#ifndef S2E_SUPPORT_STATS_HH
#define S2E_SUPPORT_STATS_HH

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace s2e {

/** A mutable bag of named counters (u64) and accumulated durations. */
class Stats
{
  public:
    /** Add delta to counter name (creating it at zero). */
    void
    add(const std::string &name, uint64_t delta = 1)
    {
        counters_[name] += delta;
    }

    void
    set(const std::string &name, uint64_t value)
    {
        counters_[name] = value;
    }

    /** Track a maximum (e.g., memory high watermark). */
    void
    high(const std::string &name, uint64_t value)
    {
        auto &slot = counters_[name];
        if (value > slot)
            slot = value;
    }

    uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    /** Accumulate wall-clock seconds under a named timer. */
    void
    addSeconds(const std::string &name, double secs)
    {
        seconds_[name] += secs;
    }

    double
    seconds(const std::string &name) const
    {
        auto it = seconds_.find(name);
        return it == seconds_.end() ? 0.0 : it->second;
    }

    /** Overwrite a timer (for flushed absolute values). */
    void
    setSeconds(const std::string &name, double secs)
    {
        seconds_[name] = secs;
    }

    // --- Hot-path slot API --------------------------------------------
    //
    // Register once (pays the map lookup), then update through the
    // returned reference in O(1). References remain valid as long as
    // the Stats object lives; clear() invalidates them.

    /** Stable reference to a counter slot (created at zero). */
    uint64_t &counterSlot(const std::string &name)
    {
        return counters_[name];
    }

    /** Stable reference to a timer slot (created at zero). */
    double &timerSlot(const std::string &name) { return seconds_[name]; }

    /** Slot-based high-watermark update. */
    static void
    raiseTo(uint64_t &slot, uint64_t value)
    {
        if (value > slot)
            slot = value;
    }

    const std::map<std::string, uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, double> &timers() const { return seconds_; }

    void
    clear()
    {
        counters_.clear();
        seconds_.clear();
    }

    /** Render all stats as "name = value" lines. */
    std::string toString() const;

  private:
    std::map<std::string, uint64_t> counters_;
    std::map<std::string, double> seconds_;
};

/** RAII wall-clock timer accumulating into a Stats entry. */
class ScopedTimer
{
  public:
    ScopedTimer(Stats &stats, std::string name)
        : slot_(&stats.timerSlot(name)),
          start_(std::chrono::steady_clock::now())
    {
    }

    /** Hot-path variant: accumulate into a pre-registered slot. */
    explicit ScopedTimer(double &slot)
        : slot_(&slot), start_(std::chrono::steady_clock::now())
    {
    }

    ~ScopedTimer()
    {
        auto end = std::chrono::steady_clock::now();
        *slot_ += std::chrono::duration<double>(end - start_).count();
    }

  private:
    double *slot_;
    std::chrono::steady_clock::time_point start_;
};

/**
 * Pointer-keyed cache of counter slots for per-site counters whose
 * site is a string literal (`prefix.site`). The first bump of a site
 * builds the composite name once; subsequent bumps are a short
 * pointer scan plus an increment — no strprintf, no map lookup.
 */
class SiteCounterCache
{
  public:
    SiteCounterCache(Stats &stats, std::string prefix)
        : stats_(stats), prefix_(std::move(prefix))
    {
    }

    uint64_t &
    slot(const char *site)
    {
        for (const auto &[key, slot] : cache_)
            if (key == site)
                return *slot;
        uint64_t &created = stats_.counterSlot(prefix_ + "." + site);
        cache_.emplace_back(site, &created);
        return created;
    }

  private:
    Stats &stats_;
    std::string prefix_;
    std::vector<std::pair<const char *, uint64_t *>> cache_;
};

} // namespace s2e

#endif // S2E_SUPPORT_STATS_HH
